#!/usr/bin/env sh
# CI gate: build everything, vet everything, and run the full test
# suite under the race detector (the server's worker pool must be
# race-clean). Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> GOMAXPROCS=1 go test (serial ingest fallback)"
GOMAXPROCS=1 go test ./internal/graph/ ./internal/cli/ ./internal/server/

echo "==> ingest benchmark smoke (-benchtime=1x)"
go test ./internal/graph/ -run='^$' -bench=. -benchtime=1x

echo "CI OK"
