#!/usr/bin/env sh
# CI gate: build everything, vet everything, and run the full test
# suite under the race detector (the server's worker pool must be
# race-clean). Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> single-dispatch gate (name switches only in internal/registry)"
# All ordering/kernel dispatch-by-name must live in internal/registry;
# a name switch anywhere else reintroduces the drift this repo removed.
if grep -rn --include='*.go' -e 'switch strings\.ToLower' -e 'case Kernel[A-Z]' \
    cmd internal examples ./*.go 2>/dev/null | grep -v '^internal/registry/'; then
    echo "FAIL: ordering/kernel name dispatch outside internal/registry" >&2
    exit 1
fi

echo "==> store encapsulation gate (data-dir layout private to internal/store)"
# Only internal/store may touch the on-disk layout (graphs/, orders/,
# results/, manifest.json). Anything else reaching into the data dir
# bypasses the checksums, residency accounting, and crash-safe manifest
# updates. Tests are exempt: failure-injection tests corrupt blobs in
# place on purpose.
if grep -rn --include='*.go' --exclude='*_test.go' \
    -E 'filepath\.Join\([^)]*"(graphs|orders|results|manifest\.json)"' \
    cmd internal examples ./*.go 2>/dev/null | grep -v '^internal/store/'; then
    echo "FAIL: data-dir layout accessed outside internal/store" >&2
    exit 1
fi

echo "==> kernel execution gate (query/server reach kernels via the registry only)"
# The query tier and HTTP layer must resolve kernels through
# internal/registry descriptors; importing internal/algos directly
# would reopen the dispatch-by-name drift the registry closed.
if grep -rln --include='*.go' '"gorder/internal/algos"' \
    internal/query internal/server cmd 2>/dev/null; then
    echo "FAIL: internal/algos imported outside the registry layer" >&2
    exit 1
fi

echo "==> map-free unit-heap gate (dense class indices only)"
# The unit heap's per-key-class head/tail indices are plain slices; a
# map reintroduces hashing on the greedy's hottest path.
if grep -n 'map\[' internal/core/unitheap.go; then
    echo "FAIL: map-backed structure in internal/core/unitheap.go" >&2
    exit 1
fi

echo "==> admission policy gate (rate limits and Retry-After live in fair + traffic.go)"
# Token buckets, Retry-After arithmetic, and shed forecasts are
# admission policy. Route handlers call the admit/shed helpers; one
# open-coding the policy inline fragments the SLO story across files.
if grep -rn --include='*.go' --exclude='*_test.go' \
    -e 'fair\.NewLimiter' -e '\.Allow(' -e 'Retry-After' \
    cmd internal examples ./*.go 2>/dev/null \
    | grep -v '^internal/fair/' | grep -v '^internal/server/traffic\.go'; then
    echo "FAIL: admission policy outside internal/fair + internal/server/traffic.go" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> greedy parity under race (optimized loop == seed reference, bit for bit)"
go test -race -run 'TestOrderOptimizedMatchesReference' -count=1 ./internal/core/

echo "==> parallel kernel parity under race (exec == serial oracles, bit for bit, workers 1/2/4/8)"
go test -race -count=1 ./internal/exec/

echo "==> parallel ordering smoke under race (boba + gorder-partitioned, workers=4, mid-size web graph)"
go test -race -count=1 -run 'TestParallelSmokeMidSize' ./internal/core/

echo "==> GOMAXPROCS=1 go test (serial ingest fallback + registry parity)"
GOMAXPROCS=1 go test ./internal/graph/ ./internal/cli/ ./internal/server/ ./internal/registry/
GOMAXPROCS=1 go test -run 'TestParity' .

echo "==> GOMAXPROCS=1 kernel-engine pass (worker counts above core count stay bit-identical)"
GOMAXPROCS=1 go test -count=1 ./internal/exec/

echo "==> GOMAXPROCS=1 parallel determinism pass (worker- and GOMAXPROCS-independent permutations)"
GOMAXPROCS=1 go test -count=1 \
    -run 'TestParallelOrderingsDeterministic|TestPartitionedWorkerIndependent|TestPartitionedGOMAXPROCSIndependent' \
    ./internal/order/ ./internal/core/

echo "==> store cold/warm smoke (artifact persisted, then served across reopen)"
go test -race ./internal/store/ -run 'TestStoreColdWarm' -count=1

echo "==> evolving-graph smoke under race (upload, 3 edit batches with deletes, decay repair, query parity on @latest)"
go test -race -count=1 \
    -run 'TestMutationEndToEnd|TestMutationAutoRepair|TestLineageSurvivesDaemonRestart' \
    ./internal/server/

echo "==> examples smoke (evolvinggraph runs the extend/monitor/repair loop end-to-end)"
go build ./examples/...
go run ./examples/evolvinggraph >/dev/null

echo "==> query cold/warm smoke (cold computes, warm repeat hits the result cache)"
go test -race ./internal/query/ -run 'TestQueryColdWarm' -count=1

echo "==> ingest benchmark smoke + regression diff (-benchtime=1x, gated by benchdiff)"
# Single-iteration timings are noisy, so benchdiff's time gate is loose
# (8x) and exists for pathological regressions only; the allocs/op gate
# is tight because allocation counts are machine-independent.
go test ./internal/graph/ -run='^$' -bench=. -benchtime=1x -benchmem \
    | go run ./cmd/benchdiff -baseline BENCH_ingest.json -min-match 4

echo "==> ordering benchmark smoke + regression diff (-benchtime=1x, gated by benchdiff)"
go test ./internal/core/ -run='^$' -bench='BenchmarkOrderWith/web120k' -benchtime=1x -benchmem \
    | go run ./cmd/benchdiff -baseline BENCH_gorder.json -min-match 4

echo "==> serving smoke (gorderbench mixed traffic at a store-backed daemon, zero errors)"
# Two seconds of closed-loop upload/order/query/edit traffic from two
# tenants against a freshly started gorderd. 429s count as shedding,
# not errors; any 5xx or transport failure fails the gate, and the
# query p99 gets a deliberately loose ceiling to catch pathological
# serialization without flaking on slow CI hosts.
SMOKEDIR=$(mktemp -d)
GD=''
trap 'if [ -n "$GD" ]; then kill "$GD" 2>/dev/null || true; fi; rm -rf "$SMOKEDIR"' EXIT
go build -o "$SMOKEDIR/gorderd" ./cmd/gorderd
go build -o "$SMOKEDIR/gorderbench" ./cmd/gorderbench
"$SMOKEDIR/gorderd" -addr 127.0.0.1:0 -workers 2 -manifest '' \
    -data-dir "$SMOKEDIR/data" >"$SMOKEDIR/gorderd.log" 2>&1 &
GD=$!
ADDR=''
i=0
while [ $i -lt 50 ]; do
    ADDR=$(awk '/listening on/ {print $NF}' "$SMOKEDIR/gorderd.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "FAIL: gorderd did not report a listen address" >&2
    cat "$SMOKEDIR/gorderd.log" >&2
    exit 1
fi
"$SMOKEDIR/gorderbench" -url "http://$ADDR" -duration 2s -concurrency 4 \
    -nodes 500 -tenants ci-a,ci-b -assert-zero-errors -assert-p99-ms 2000 \
    -json "$SMOKEDIR/bench.json" >/dev/null
kill "$GD"
wait "$GD" 2>/dev/null || true
GD=''

echo "CI OK"
