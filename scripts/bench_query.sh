#!/usr/bin/env sh
# Regenerate BENCH_query.json: percentile latency + cache-hit rate for
# the query tier's mixed single/batch kernel workload over the 1M-edge
# web graph (gen.Web, DefaultWeb, seed 0x90DE), served over a stored
# gorder artifact. Run from anywhere; writes to the repo root.
#
# Override the graph size with QUERY_BENCH_NODES (default 100000).
set -eu

cd "$(dirname "$0")/.."

QUERY_BENCH_JSON="$PWD/BENCH_query.json" \
    go test ./internal/query/ -run 'TestQueryLatencyHarness' -count=1 -v -timeout 30m

echo "wrote $PWD/BENCH_query.json"
