#!/usr/bin/env sh
# Runs the parallel-ordering scaling experiment (exact Gorder vs
# gorder-partitioned at 1/2/4/8 workers vs BOBA on the 1M-edge web
# workload) and records the result as BENCH_parallel_order.json at the
# repo root.
#
#   REPS=5 scripts/bench_parallel_order.sh      # more repetitions
#   SCALE=0.1 scripts/bench_parallel_order.sh   # smaller workload
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/bench -exp parallel \
	-reps "${REPS:-3}" -scale "${SCALE:-1.0}" -v \
	-parallel-json BENCH_parallel_order.json

echo "wrote BENCH_parallel_order.json"
