#!/usr/bin/env sh
# Runs the ingest benchmarks (edge-list parse, CSR build, binary load;
# serial vs parallel) and records the result as BENCH_ingest.json at
# the repo root. BENCHTIME overrides the per-benchmark time budget
# (default 1s; use e.g. BENCHTIME=1x for a smoke run).
set -eu

cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test ./internal/graph/ -run='^$' \
	-bench='^(BenchmarkReadEdgeList|BenchmarkFromEdges|BenchmarkReadBinary)$' \
	-benchmem -benchtime="${BENCHTIME:-1s}" -count=1 | tee "$raw"

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)
awk -v goversion="$(go env GOVERSION)" -v cores="$cores" '
BEGIN {
	printf "{\n"
	printf "  \"generated_by\": \"scripts/bench_ingest.sh\",\n"
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"cores\": %d,\n", cores
	printf "  \"benchmarks\": [\n"
	first = 1
}
/^Benchmark/ {
	name = $1; iters = $2; ns = $3
	bpo = "null"; apo = "null"; mbs = "null"
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op") bpo = $i
		if ($(i+1) == "allocs/op") apo = $i
		if ($(i+1) == "MB/s") mbs = $i
	}
	if (!first) printf ",\n"
	first = 0
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, iters, ns, mbs, bpo, apo
}
END {
	printf "\n  ]\n}\n"
}' "$raw" > BENCH_ingest.json

echo "wrote BENCH_ingest.json"
