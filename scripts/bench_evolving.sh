#!/usr/bin/env sh
# Runs the evolving-graph experiment (Gorder baseline, ten edit
# batches absorbed incrementally, then suffix repair vs full
# recompute on the grown graph) and records the result as
# BENCH_evolving.json at the repo root.
#
#   REPS=5 scripts/bench_evolving.sh      # more repetitions
#   SCALE=0.1 scripts/bench_evolving.sh   # smaller workload
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/bench -exp evolving \
	-reps "${REPS:-3}" -scale "${SCALE:-1.0}" -v \
	-evolving-json BENCH_evolving.json

echo "wrote BENCH_evolving.json"
