#!/usr/bin/env sh
# Runs the multicore kernel-engine experiment (serial oracles vs
# internal/exec at 1/2/4/8 workers on the gorder-ordered 1M-edge web
# workload, with per-run bit-identical parity checks) and records the
# result as BENCH_kernels.json at the repo root.
#
# On a single-core host the speedup column reads as engine overhead;
# the chunk-grid work-partition fields (edge imbalance, 4-worker
# speedup bound) are the machine-independent evidence that the
# partition scales. See EXPERIMENTS.md for the many-core recipe.
#
#   REPS=5 scripts/bench_kernels.sh      # more repetitions
#   SCALE=0.1 scripts/bench_kernels.sh   # smaller workload
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/bench -exp kernels \
	-reps "${REPS:-3}" -scale "${SCALE:-1.0}" -v \
	-kernels-json BENCH_kernels.json

echo "wrote BENCH_kernels.json"
