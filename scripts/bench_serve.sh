#!/usr/bin/env sh
# Regenerate BENCH_serve.json: per-route latency percentiles (p50 /
# p90 / p99 / p99.9), throughput, and shed/error counts for mixed
# upload/order/query/edit traffic against a store-backed gorderd at
# two closed-loop concurrency levels, plus the streaming-vs-buffered
# ingest peak-memory comparison on the ~1M-edge web graph
# (gen.Web 100k nodes). Run from anywhere; writes to the repo root.
#
# Override the per-level wall time with SERVE_BENCH_DURATION (default
# 10s) and the ingest graph size with SERVE_BENCH_INGEST_NODES
# (default 100000).
set -eu

cd "$(dirname "$0")/.."

DURATION="${SERVE_BENCH_DURATION:-10s}"
INGEST_NODES="${SERVE_BENCH_INGEST_NODES:-100000}"

WORKDIR=$(mktemp -d)
GD=''
trap 'if [ -n "$GD" ]; then kill "$GD" 2>/dev/null || true; fi; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/gorderd" ./cmd/gorderd
go build -o "$WORKDIR/gorderbench" ./cmd/gorderbench

"$WORKDIR/gorderd" -addr 127.0.0.1:0 -workers 2 -manifest '' \
    -data-dir "$WORKDIR/data" >"$WORKDIR/gorderd.log" 2>&1 &
GD=$!
ADDR=''
i=0
while [ $i -lt 50 ]; do
    ADDR=$(awk '/listening on/ {print $NF}' "$WORKDIR/gorderd.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "gorderd did not report a listen address" >&2
    cat "$WORKDIR/gorderd.log" >&2
    exit 1
fi

"$WORKDIR/gorderbench" -url "http://$ADDR" -duration "$DURATION" \
    -concurrency 4,16 -nodes 2000 -tenants acme,beta,free \
    -ingest-compare -ingest-nodes "$INGEST_NODES" \
    -json "$PWD/BENCH_serve.json"

kill "$GD"
wait "$GD" 2>/dev/null || true
GD=''

echo "wrote $PWD/BENCH_serve.json"
