#!/usr/bin/env sh
# Runs the Gorder greedy hot-path benchmarks (BenchmarkOrderWith window
# sweep + hub ablation, BenchmarkUnitHeapChurn) and records the result
# as BENCH_gorder.json at the repo root, including the speedup of each
# configuration over the embedded seed (pre-optimisation) baseline.
#
#   BENCHTIME=3x scripts/bench_gorder.sh      # more iterations
#   COUNT=3      scripts/bench_gorder.sh      # best-of-3 per config
#   PROFILE_DIR=/tmp scripts/bench_gorder.sh  # also write cpu/heap pprof
set -eu

cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

profileflags=""
if [ -n "${PROFILE_DIR:-}" ]; then
	profileflags="-cpuprofile $PROFILE_DIR/gorder_bench_cpu.pprof -memprofile $PROFILE_DIR/gorder_bench_mem.pprof"
fi

# shellcheck disable=SC2086
go test ./internal/core/ -run='^$' \
	-bench='^(BenchmarkOrderWith|BenchmarkUnitHeapChurn)$' \
	-benchmem -benchtime="${BENCHTIME:-1x}" -count="${COUNT:-1}" \
	$profileflags | tee "$raw"

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)
awk -v goversion="$(go env GOVERSION)" -v cores="$cores" '
BEGIN {
	# Seed baseline: commit 60fe5d5 (map-backed unit-heap class index,
	# per-bump interface-dispatched Inc/Dec), same machine class,
	# benchtime=1x. ns/op, allocs/op, placements/s per configuration.
	seed["BenchmarkOrderWith/web120k/w=1/hub=0"]   = "225600000 27 53216"
	seed["BenchmarkOrderWith/web120k/w=5/hub=0"]   = "209500000 28 57287"
	seed["BenchmarkOrderWith/web120k/w=16/hub=0"]  = "217300000 29 55246"
	seed["BenchmarkOrderWith/web120k/w=5/hub=64"]  = "106600000 27 112646"
	seed["BenchmarkOrderWith/web1M/w=1/hub=0"]     = "2746500000 29 36411"
	seed["BenchmarkOrderWith/web1M/w=5/hub=0"]     = "2910500000 29 34360"
	seed["BenchmarkOrderWith/web1M/w=16/hub=0"]    = "2758400000 33 36280"
	seed["BenchmarkOrderWith/web1M/w=5/hub=64"]    = "1208400000 29 82806"
	seed["BenchmarkUnitHeapChurn"]                 = "9920000 9 0"
	printf "{\n"
	printf "  \"generated_by\": \"scripts/bench_gorder.sh\",\n"
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"cores\": %d,\n", cores
	printf "  \"seed_baseline\": \"60fe5d5 map-backed class index, per-bump heap updates\",\n"
	printf "  \"benchmarks\": [\n"
	first = 1
}
/^Benchmark/ {
	name = $1; iters = $2; ns = $3
	bpo = "null"; apo = "null"; pps = "null"; edges = "null"
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op") bpo = $i
		if ($(i+1) == "allocs/op") apo = $i
		if ($(i+1) == "placements/s") pps = $i
		if ($(i+1) == "edges") edges = $i
	}
	# Strip the GOMAXPROCS suffix to match the seed table; keep the best
	# (minimum ns) run per name when COUNT > 1.
	base = name
	sub(/-[0-9]+$/, "", base)
	if (base in best && best[base] + 0 <= ns + 0) next
	best[base] = ns
	line = ""
	line = line sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, ", base, iters, ns)
	line = line sprintf("\"bytes_per_op\": %s, \"allocs_per_op\": %s, ", bpo, apo)
	line = line sprintf("\"placements_per_s\": %s, \"edges\": %s", pps, edges)
	if (base in seed) {
		split(seed[base], s, " ")
		line = line sprintf(", \"seed_ns_per_op\": %s, \"seed_allocs_per_op\": %s", s[1], s[2])
		if (s[3] + 0 > 0) line = line sprintf(", \"seed_placements_per_s\": %s", s[3])
		line = line sprintf(", \"speedup\": %.2f", s[1] / ns)
	}
	line = line "}"
	out[base] = line
	if (!(base in ord)) { ord[base] = ++n; names[n] = base }
}
END {
	for (i = 1; i <= n; i++) {
		if (!first) printf ",\n"
		first = 0
		printf "%s", out[names[i]]
	}
	printf "\n  ]\n}\n"
}' "$raw" > BENCH_gorder.json

echo "wrote BENCH_gorder.json"
