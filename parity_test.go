package gorder_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"

	"gorder"
	"gorder/internal/bench"
	"gorder/internal/cli"
	"gorder/internal/registry"
	"gorder/internal/server"
)

// These tests pin every consumer's view of the method and kernel
// catalogs to internal/registry, so a name added (or renamed) in one
// layer but not the others fails loudly instead of drifting.

func TestParityCLIMethodNames(t *testing.T) {
	if got, want := cli.MethodNames(), registry.MethodNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("cli.MethodNames() = %v, want registry catalog %v", got, want)
	}
}

func TestParityBenchContenders(t *testing.T) {
	var got []string
	for _, o := range bench.Orderings() {
		got = append(got, o.Name)
	}
	if want := registry.PaperContenderNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("bench contenders = %v, want %v", got, want)
	}
	var kn []string
	for _, k := range bench.Kernels() {
		kn = append(kn, k.Name)
	}
	var want []string
	for _, k := range registry.PaperKernels() {
		want = append(want, k.Name)
	}
	if !reflect.DeepEqual(kn, want) {
		t.Errorf("bench kernels = %v, want %v", kn, want)
	}
}

func TestParityFacadeKernelConstants(t *testing.T) {
	got := []string{
		gorder.KernelNQ, gorder.KernelBFS, gorder.KernelDFS, gorder.KernelSCC,
		gorder.KernelSP, gorder.KernelPR, gorder.KernelDS, gorder.KernelKcore,
		gorder.KernelDiam, gorder.KernelWCC, gorder.KernelTriangles, gorder.KernelLabelProp,
	}
	sort.Strings(got)
	if want := registry.KernelNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("facade kernel constants = %v, want registry catalog %v", got, want)
	}
	if !reflect.DeepEqual(gorder.KernelNames(), registry.KernelNames()) {
		t.Error("gorder.KernelNames() diverges from the registry catalog")
	}
}

// TestParityParallelFamilyNames pins the parallel-ordering family in
// the registry catalog: the lightweight reorderings and the
// partition-parallel Gorder must stay resolvable under these names
// (and the historical gorder-parallel alias), all cancellable and
// worker-aware.
func TestParityParallelFamilyNames(t *testing.T) {
	for _, name := range []string{
		"boba", "dbg", "hubsort", "hubcluster", "gorder-partitioned", "gorder-parallel",
	} {
		desc, ok := registry.Lookup(name)
		if !ok {
			t.Errorf("registry.Lookup(%q): not found", name)
			continue
		}
		if !desc.Cancellable {
			t.Errorf("%s (%s) is not cancellable", name, desc.Name)
		}
		consumesWorkers := false
		for _, f := range desc.Consumes {
			if f == registry.OptWorkers {
				consumesWorkers = true
			}
		}
		if !consumesWorkers {
			t.Errorf("%s (%s) does not consume the workers option", name, desc.Name)
		}
	}
}

func TestParityServerAdvertisedMethods(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/methods")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /methods: %s", resp.Status)
	}
	var body struct {
		Orderings []struct {
			Name        string `json:"name"`
			Cancellable bool   `json:"cancellable"`
			Cost        string `json:"cost"`
		} `json:"orderings"`
		Kernels []string `json:"kernels"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	var got, want []string
	for _, o := range body.Orderings {
		got = append(got, o.Name)
		if o.Cost == "" {
			t.Errorf("/methods entry %s has no cost class", o.Name)
		}
	}
	for _, o := range registry.Orderings() {
		want = append(want, o.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("server advertises %v, want registry catalog %v", got, want)
	}
	if !reflect.DeepEqual(body.Kernels, registry.KernelNames()) {
		t.Errorf("server kernels = %v, want %v", body.Kernels, registry.KernelNames())
	}
}
