package gorder_test

import (
	"fmt"

	"gorder"
)

// A minimal end-to-end use of the library: build a graph, compute the
// Gorder permutation, relabel, and run a kernel.
func ExampleOrder() {
	// A 6-cycle with chords: 0→1→2→3→4→5→0, plus 0→2 and 3→5.
	g := gorder.FromEdges(6, []gorder.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 0},
		{From: 0, To: 2}, {From: 3, To: 5},
	})
	perm := gorder.Order(g)
	fast := gorder.Apply(g, perm)
	fmt.Println("valid permutation:", perm.Validate() == nil)
	fmt.Println("edges preserved:", fast.NumEdges() == g.NumEdges())
	// Output:
	// valid permutation: true
	// edges preserved: true
}

// Orderings are compared on the objective they optimise; Gorder's
// score F dominates a random shuffle on any structured graph.
func ExampleScore() {
	g := gorder.NewSocialGraph(500, 42)
	gord := gorder.Score(g, gorder.Order(g), gorder.DefaultWindow)
	rnd := gorder.Score(g, gorder.RandomOrder(g, 1), gorder.DefaultWindow)
	fmt.Println("gorder beats random:", gord > rnd)
	// Output:
	// gorder beats random: true
}

// The cache simulator reports the counters the paper reads from perf.
func ExampleSimulateCache() {
	g := gorder.NewSocialGraph(2000, 7)
	report, err := gorder.SimulateCache(g, gorder.KernelBFS, gorder.SmallCache())
	if err != nil {
		panic(err)
	}
	fmt.Println("observed accesses:", report.Accesses > 0)
	fmt.Println("miss rate in [0,1]:", report.MissRate() >= 0 && report.MissRate() <= 1)
	// Output:
	// observed accesses: true
	// miss rate in [0,1]: true
}

// Kernels are order-independent in their results: relabeling the
// graph permutes the answers but does not change them.
func ExamplePageRank() {
	g := gorder.FromEdges(3, []gorder.Edge{
		{From: 0, To: 1}, {From: 2, To: 1},
	})
	ranks := gorder.PageRank(g, 50, 0.85)
	fmt.Println("vertex 1 ranks highest:", ranks[1] > ranks[0] && ranks[1] > ranks[2])
	// Output:
	// vertex 1 ranks highest: true
}

// Incremental ordering keeps old IDs stable while placing new
// vertices greedily.
func ExampleOrderIncremental() {
	g := gorder.NewSocialGraph(200, 1)
	base := gorder.Order(g)
	// Rebuild the graph with one extra vertex following vertex 0.
	var edges []gorder.Edge
	g.Edges(func(u, v gorder.NodeID) bool {
		edges = append(edges, gorder.Edge{From: u, To: v})
		return true
	})
	edges = append(edges, gorder.Edge{From: 200, To: 0})
	grown := gorder.FromEdgesDedup(201, edges)

	perm, err := gorder.OrderIncremental(grown, base, gorder.Options{})
	if err != nil {
		panic(err)
	}
	stable := true
	for u := 0; u < 200; u++ {
		stable = stable && perm[u] == base[u]
	}
	fmt.Println("old IDs stable:", stable)
	fmt.Println("new vertex appended at the end:", perm[200] == 200)
	// Output:
	// old IDs stable: true
	// new vertex appended at the end: true
}

// The reuse-distance profile explains miss rates without fixing a
// cache geometry.
func ExampleProfileReuse() {
	g := gorder.NewSocialGraph(1500, 2)
	profile, err := gorder.ProfileReuse(g, gorder.KernelBFS, 64, 4096)
	if err != nil {
		panic(err)
	}
	fmt.Println("more misses in a small cache:",
		profile.MissRatio(0) >= profile.MissRatio(1))
	// Output:
	// more misses in a small cache: true
}

// Orderings double as compression boosters (the paper's discussion).
func ExampleCompressedBitsPerEdge() {
	g := gorder.NewWebGraph(2000, 5)
	shuffled := gorder.Apply(g, gorder.RandomOrder(g, 1))
	ordered := gorder.Apply(g, gorder.Order(g))
	fmt.Println("ordering shrinks the encoding:",
		gorder.CompressedBitsPerEdge(ordered) < gorder.CompressedBitsPerEdge(shuffled))
	// Output:
	// ordering shrinks the encoding: true
}
