package gorder

import (
	"fmt"

	"gorder/internal/algos"
	"gorder/internal/cache"
	"gorder/internal/compress"
	"gorder/internal/mem"
	"gorder/internal/registry"
	"gorder/internal/reuse"
)

// CacheConfig describes a simulated cache hierarchy.
type CacheConfig = cache.Config

// CacheLevelConfig describes one level of a simulated hierarchy.
type CacheLevelConfig = cache.LevelConfig

// CacheReport is the statistics snapshot of a simulated run: L1
// references, per-level miss counts, overall miss rate and a modelled
// cycle total — the counters the paper reads from perf.
type CacheReport = cache.Report

// ReplicationCache returns the cache hierarchy of the replication's
// evaluation machine (32 KB L1 / 256 KB L2 / 20 MB L3).
func ReplicationCache() CacheConfig { return cache.ReplicationMachine() }

// SmallCache returns a scaled-down hierarchy (4 KB / 32 KB / 256 KB)
// that puts laptop-sized graphs under the same relative pressure the
// paper's billion-edge graphs put on a real L3.
func SmallCache() CacheConfig { return cache.SmallMachine() }

// Kernel names accepted by SimulateCache. The constants mirror the
// internal/registry kernel catalog (the parity test enforces this).
const (
	KernelNQ    = "NQ"
	KernelBFS   = "BFS"
	KernelDFS   = "DFS"
	KernelSCC   = "SCC"
	KernelSP    = "SP"
	KernelPR    = "PR"
	KernelDS    = "DS"
	KernelKcore = "Kcore"
	KernelDiam  = "Diam"
	// Extra kernels beyond the paper's nine.
	KernelWCC       = "WCC"
	KernelTriangles = "Tri"
	KernelLabelProp = "LP"
)

// KernelNames returns every kernel name SimulateCache accepts,
// sorted — the registry catalog verbatim.
func KernelNames() []string { return registry.KernelNames() }

// SimulateCache runs the named benchmark kernel on g with every data
// access routed through a simulated hierarchy, and returns the cache
// report. Use it to compare vertex orderings:
//
//	before, _ := gorder.SimulateCache(g, gorder.KernelPR, gorder.SmallCache())
//	after, _ := gorder.SimulateCache(gorder.Apply(g, gorder.Order(g)),
//	    gorder.KernelPR, gorder.SmallCache())
//	fmt.Println(before.MissRate(), "→", after.MissRate())
func SimulateCache(g *Graph, kernel string, cfg CacheConfig) (CacheReport, error) {
	h := cache.New(cfg)
	if err := runTracedKernel(g, kernel, h); err != nil {
		return CacheReport{}, err
	}
	return h.Report(), nil
}

// facadeKernelParams are the fixed, simulation-scale parameters the
// facade has always used: 10 PR iterations, 5 diameter samples with
// seed 1, Bellman–Ford from vertex 0, default LP sweeps.
var facadeKernelParams = registry.KernelParams{
	PageRankIters:   10,
	DiameterSamples: 5,
	Seed:            1,
	SPSource:        0,
}

// runTracedKernel executes the named kernel's traced variant against
// the given hierarchy, resolved through the registry catalog.
func runTracedKernel(g *Graph, kernel string, h *cache.Hierarchy) error {
	k, ok := registry.LookupKernel(kernel)
	if !ok {
		return fmt.Errorf("gorder: unknown kernel %q", kernel)
	}
	s := mem.NewSpace(h)
	t := algos.NewTracedGraph(g, s)
	k.RunTraced(g, t, s, facadeKernelParams)
	return nil
}

// ReuseProfile is the reuse-distance (LRU stack distance) analysis of
// a kernel's access stream — the machine-independent view of why an
// ordering changes miss rates. See ProfileReuse.
type ReuseProfile = reuse.Profile

// ProfileReuse runs the named kernel's traced variant and returns the
// reuse-distance profile of its cache-line access stream, with exact
// miss counts for the given cache capacities (in 64-byte lines,
// ascending). An access at reuse distance d hits in any LRU cache
// with more than d lines, so shorter distances == better ordering,
// independent of the hierarchy's geometry.
func ProfileReuse(g *Graph, kernel string, capacities ...int64) (ReuseProfile, error) {
	h := cache.New(SmallCache())
	an := reuse.NewAnalyzer(capacities...)
	h.SetObserver(an.Touch)
	if err := runTracedKernel(g, kernel, h); err != nil {
		return ReuseProfile{}, err
	}
	return an.Profile(), nil
}

// CompressedSize returns the size in bytes of g's out-adjacency under
// varint gap encoding — the extension experiment from the paper's
// discussion: a locality-aware ordering shrinks the encoding because
// neighbour deltas get small.
func CompressedSize(g *Graph) int64 { return compress.EncodedSize(g) }

// CompressedBitsPerEdge returns the gap-encoded size in bits per edge,
// the unit the WebGraph compression literature uses.
func CompressedBitsPerEdge(g *Graph) float64 { return compress.BitsPerEdge(g) }

// SimulateCacheObserved is SimulateCache with an observer callback
// invoked on every cache-line access — the hook used to record access
// traces (internal/trace) or attach custom analyses.
func SimulateCacheObserved(g *Graph, kernel string, cfg CacheConfig, observer func(line uint64)) (CacheReport, error) {
	h := cache.New(cfg)
	h.SetObserver(observer)
	if err := runTracedKernel(g, kernel, h); err != nil {
		return CacheReport{}, err
	}
	return h.Report(), nil
}
