// Command graphgen generates the synthetic benchmark graphs this
// repository substitutes for the paper's real-world datasets.
//
// Generate by model:
//
//	graphgen -type web -n 50000 -seed 7 -o wiki.graph
//	graphgen -type social -n 20000 -o pokec.txt -format text
//
// Or generate a registry dataset exactly as the benchmarks do:
//
//	graphgen -dataset sdarc-s -scale 1.0 -o sdarc.graph
package main

import (
	"flag"
	"fmt"
	"os"

	"gorder"
	"gorder/internal/bench"
	"gorder/internal/graph"
)

func main() {
	var (
		typ     = flag.String("type", "web", "generator: social|web|rmat|sbm|er|grid")
		n       = flag.Int("n", 10000, "vertex count (rmat rounds to a power of two)")
		m       = flag.Int("m", 0, "edge count (er only; default 8n)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		dataset = flag.String("dataset", "", "generate a benchmark registry dataset instead (e.g. sdarc-s)")
		scale   = flag.Float64("scale", 1.0, "registry dataset size multiplier")
		out     = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "binary", "output format: binary|text")
		stats   = flag.Bool("stats", true, "print graph statistics to stderr")
	)
	flag.Parse()

	g, err := build(*typ, *n, *m, *seed, *dataset, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, gorder.ComputeStats(g))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "binary":
		err = g.WriteBinary(w)
	case "text":
		err = g.WriteEdgeList(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func build(typ string, n, m int, seed uint64, dataset string, scale float64) (*graph.Graph, error) {
	if dataset != "" {
		ds, ok := bench.DatasetByName(dataset)
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q (see cmd/bench -list)", dataset)
		}
		return ds.Build(scale), nil
	}
	switch typ {
	case "social":
		return gorder.NewSocialGraph(n, seed), nil
	case "web":
		return gorder.NewWebGraph(n, seed), nil
	case "rmat":
		s := 4
		for 1<<uint(s+1) <= n {
			s++
		}
		return gorder.NewRMATGraph(s, 8, seed), nil
	case "sbm":
		return gorder.NewCommunityGraph(n, 20, 8, 3, seed), nil
	case "er":
		if m == 0 {
			m = 8 * n
		}
		return gorder.NewUniformGraph(n, m, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return gorder.NewGridGraph(side, side), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", typ)
	}
}
