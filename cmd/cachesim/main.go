// Command cachesim runs a benchmark kernel on a graph with every data
// access routed through the simulated cache hierarchy and prints the
// paper's cache statistics, optionally comparing a second ordering,
// profiling reuse distances, and recording/replaying access traces:
//
//	cachesim -i wiki.graph -kernel PR -machine small
//	cachesim -i wiki.graph -kernel PR -compare gorder -reuse
//	cachesim -i wiki.graph -kernel BFS -trace-out bfs.trc
//	cachesim -replay bfs.trc -machine replication
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gorder"
	"gorder/internal/cache"
	"gorder/internal/cli"
	"gorder/internal/trace"
)

func main() {
	var (
		in       = flag.String("i", "", "input graph (binary or text)")
		kernel   = flag.String("kernel", gorder.KernelPR, "kernel: "+strings.Join(gorder.KernelNames(), "|"))
		machine  = flag.String("machine", "small", "hierarchy: small|replication")
		compare  = flag.String("compare", "", "also run after this ordering: "+strings.Join(cli.MethodNames(), "|"))
		seed     = flag.Uint64("seed", 1, "seed for stochastic orderings")
		doReuse  = flag.Bool("reuse", false, "also print the reuse-distance profile")
		traceOut = flag.String("trace-out", "", "record the access trace to this file")
		replay   = flag.String("replay", "", "replay a recorded trace instead of running a kernel")
	)
	flag.Parse()

	cfg := gorder.SmallCache()
	if *machine == "replication" {
		cfg = gorder.ReplicationCache()
	}

	if *replay != "" {
		replayTrace(*replay, cfg)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "cachesim: -i (or -replay) is required")
		os.Exit(2)
	}
	g, err := cli.ReadGraph(*in)
	if err != nil {
		fail(err)
	}
	runOne("original", g, *kernel, cfg, *doReuse, *traceOut)
	if *compare != "" {
		perm, err := cli.ComputeOrdering(g, cli.OrderingSpec{Method: *compare, Seed: *seed})
		if err != nil {
			fail(err)
		}
		out := ""
		if *traceOut != "" {
			out = *traceOut + "." + *compare
		}
		runOne(*compare, gorder.Apply(g, perm), *kernel, cfg, *doReuse, out)
	}
}

func runOne(label string, g *gorder.Graph, kernel string, cfg gorder.CacheConfig, doReuse bool, traceOut string) {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w, err := trace.NewWriter(f)
		if err != nil {
			fail(err)
		}
		rep, err := gorder.SimulateCacheObserved(g, kernel, cfg, w.Touch)
		if err != nil {
			fail(err)
		}
		if err := w.Flush(); err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %s\n", label, fmtReport(rep))
		fmt.Printf("%-10s trace: %d accesses -> %s\n", label, w.Len(), traceOut)
	} else {
		rep, err := gorder.SimulateCache(g, kernel, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %s\n", label, fmtReport(rep))
	}
	if doReuse {
		printReuse(label, g, kernel, cfg)
	}
}

func replayTrace(path string, cfg gorder.CacheConfig) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	h := cache.New(cfg)
	lineSize := uint64(cfg.Levels[0].LineSize)
	n, err := trace.Replay(f, func(line uint64) { h.Access(line * lineSize) })
	if err != nil {
		fail(err)
	}
	fmt.Printf("replayed %d accesses from %s\n", n, path)
	fmt.Printf("%-10s %s\n", "trace", fmtReport(h.Report()))
}

// printReuse prints the reuse-distance profile with exact miss
// modelling at each configured level's capacity in lines.
func printReuse(label string, g *gorder.Graph, kernel string, cfg gorder.CacheConfig) {
	caps := make([]int64, 0, len(cfg.Levels))
	for _, l := range cfg.Levels {
		caps = append(caps, l.Size/l.LineSize)
	}
	p, err := gorder.ProfileReuse(g, kernel, caps...)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-10s reuse: mean-dist=%.0f cold=%d", label, p.MeanDistance(), p.Cold)
	for i, c := range p.Capacities {
		fmt.Printf(" mr@%d=%.2f%%", c, 100*p.MissRatio(i))
	}
	fmt.Println()
}

func fmtReport(r gorder.CacheReport) string {
	return fmt.Sprintf("refs=%d L1-mr=%.2f%% L3-ref=%d L3-r=%.2f%% cache-mr=%.2f%% cycles=%d",
		r.Accesses, 100*r.L1MissRate(), r.LLCRefs(), 100*r.LLCRatio(), 100*r.MissRate(), r.Cycles)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cachesim:", err)
	os.Exit(1)
}
