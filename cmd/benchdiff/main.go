// Command benchdiff gates benchmark regressions in CI: it parses
// `go test -bench -benchmem` output (stdin or a file argument), diffs
// it against a committed BENCH_*.json baseline, and exits nonzero when
// any benchmark blows past the thresholds.
//
//	go test ./internal/core/ -run '^$' -bench . -benchmem | \
//	    benchdiff -baseline BENCH_gorder.json
//
// The time gate is loose by design (baselines are recorded on a
// different machine than CI); the allocs gate is tight because alloc
// counts are machine-independent. See internal/benchdiff.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gorder/internal/benchdiff"
)

func main() {
	var (
		baseline    = flag.String("baseline", "", "BENCH_*.json baseline to diff against (required)")
		timeFactor  = flag.Float64("time-factor", 8, "fail when ns/op exceeds baseline x this (0 disables the time gate)")
		allocFactor = flag.Float64("alloc-factor", 1.3, "fail when allocs/op exceeds baseline x this + alloc-slack (0 disables)")
		allocSlack  = flag.Float64("alloc-slack", 4, "absolute allocs/op slack on top of alloc-factor")
		minMatch    = flag.Int("min-match", 1, "fail unless at least this many benchmarks matched the baseline")
	)
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline is required")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}

	ms, err := benchdiff.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	base, err := benchdiff.LoadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	th := benchdiff.Thresholds{
		TimeFactor:  *timeFactor,
		AllocFactor: *allocFactor,
		AllocSlack:  *allocSlack,
	}
	findings, matched := benchdiff.Compare(ms, base, th)
	regressed := benchdiff.Report(os.Stdout, findings)
	fmt.Printf("benchdiff: %d parsed, %d matched %s, %d regressed\n",
		len(ms), matched, *baseline, regressed)
	if matched < *minMatch {
		fmt.Fprintf(os.Stderr, "benchdiff: only %d benchmark(s) matched the baseline (want >= %d) — name drift?\n",
			matched, *minMatch)
		os.Exit(1)
	}
	if regressed > 0 {
		os.Exit(1)
	}
}
