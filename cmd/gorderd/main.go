// Command gorderd serves vertex orderings over HTTP: an asynchronous
// job queue in front of every ordering and evaluator in the library.
//
//	gorderd -addr :8080 -workers 4 -data ./datasets
//
// API (JSON everywhere; errors use {"error":{"code","message"}}):
//
//	POST /graphs?name=web          upload a graph (binary CSR or edge list)
//	GET  /graphs                   list registered graphs
//	GET  /graphs/{id}              one graph's stats (also name, name@vN, name@latest)
//	POST /graphs/{name}/edges      apply an edit batch {"add_nodes","add","del"}; builds the next version
//	GET  /graphs/{name}/lineage    list a graph's versions and ordering-quality record
//	POST /jobs                     submit {"kind":"order","graph":"web","method":"gorder"}
//	                               or {"kind":"repair","graph":"web"} to repair a decayed ordering
//	GET  /jobs                     list jobs
//	GET  /jobs/{id}                poll a job (queued/running/done/failed/canceled)
//	GET  /jobs/{id}/permutation    download a done order job's permutation
//	POST /query                    run a kernel: {"graph":"web","kernel":"BFS"}
//	POST /query/batch              run up to 256 queries: {"queries":[...]}
//	GET  /healthz                  liveness
//	GET  /metrics                  counters and gauges
//
// Queries execute registry kernels (BFS, SP, PR, Kcore, NQ, Tri) over
// the best stored ordering for the graph — explicit "order", else the
// latest ordering artifact, else natural order; the response reports
// which served it. Results are cached in memory and, for whole-graph
// kernels, materialized in the store. Queries are reads: they run on
// a separate concurrency limit and never wait behind ordering jobs.
//
// On SIGINT/SIGTERM the daemon stops accepting work, lets in-flight
// jobs finish within the grace period, and persists still-queued jobs
// to the manifest file, which the next start replays.
//
// With -data-dir the daemon keeps a persistent store: uploaded graphs
// and computed ordering permutations are written there and served
// again after a restart, and repeat order jobs are answered from the
// artifact cache without recomputation. -mem-budget bounds how many
// graph bytes stay resident in memory; least-recently-used graphs are
// evicted and transparently reloaded from disk when next needed.
//
// With a store, uploaded graphs become version 1 of a lineage and each
// edit batch appends the next version; a bare name (or name@latest)
// always resolves to the tip, so queries never see a stale graph, and
// name@vN pins an old version. Ordering artifacts are carried forward
// across versions incrementally and their quality F(pi) is tracked
// against the baseline; when the decay ratio falls below
// -decay-threshold a repair job is enqueued automatically (suffix
// re-placement, or a full recompute below -repair-full-below or after
// -max-repairs consecutive repairs).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gorder/internal/fair"
	"gorder/internal/server"
	"gorder/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent ordering jobs")
		queue     = flag.Int("queue", 64, "max queued (not yet running) jobs")
		timeout   = flag.Duration("timeout", 5*time.Minute, "default per-job deadline")
		grace     = flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight jobs")
		dataDir   = flag.String("data", "", "directory of graph files to preload (.bin .graph .txt .el .edges)")
		storeDir  = flag.String("data-dir", "", "persistent store directory for graphs and ordering artifacts ('' = in-memory only)")
		memBudget = flag.Int64("mem-budget", 0, "byte budget for graphs held resident in memory; evicted graphs reload from the store (0 = unlimited; needs -data-dir)")
		maxUpload = flag.Int64("max-upload", 32<<20, "max graph upload size in bytes")
		maxUpB    = flag.Int64("max-upload-bytes", 0, "alias for -max-upload (takes precedence when set)")
		tenRate   = flag.Float64("tenant-rate", 0, "per-tenant request rate limit in req/s, keyed by the X-Tenant header (0 disables)")
		tenBurst  = flag.Int("tenant-burst", 0, "per-tenant rate-limit burst (0 = one second of -tenant-rate)")
		tenWts    = flag.String("tenant-weights", "", "fair-queueing tenant weights as name=weight,... (unlisted tenants weigh 1)")
		tenQueue  = flag.Int("tenant-queue", 0, "max queued jobs per tenant (0 = no per-tenant cap below -queue)")
		manifest  = flag.String("manifest", "gorderd.manifest.json", "queued-job manifest persisted on shutdown ('' disables)")
		queryConc = flag.Int("query-concurrency", 0, "concurrent kernel queries (0 = 8); independent of -workers")
		queryTO   = flag.Duration("query-timeout", 30*time.Second, "default per-query deadline")
		queryCach = flag.Int64("query-cache", 0, "byte budget for the in-memory query result cache (0 = 64 MiB)")
		kWorkers  = flag.Int("kernel-workers", 1, "goroutines per kernel query for parallel kernels (0 = GOMAXPROCS, <= 1 = serial); results are identical either way")
		decayThr  = flag.Float64("decay-threshold", 0, "enqueue a repair when an ordering's quality decays below this ratio (0 = 0.93)")
		fullBelow = flag.Float64("repair-full-below", 0, "repair by full recompute when decay is below this ratio (0 = 0.85)")
		maxRep    = flag.Int("max-repairs", 0, "suffix repairs between full recomputes (0 = 3)")
		noRepair  = flag.Bool("no-auto-repair", false, "track ordering decay but never enqueue repair jobs automatically")
		verbose   = flag.Bool("v", false, "debug logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *maxUpB > 0 {
		*maxUpload = *maxUpB
	}
	if *kWorkers == 0 {
		*kWorkers = runtime.GOMAXPROCS(0)
	}
	weights, err := fair.ParseWeights(*tenWts)
	if err != nil {
		log.Error("parsing -tenant-weights", "err", err)
		os.Exit(1)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Config{Dir: *storeDir, MemBudget: *memBudget})
		if err != nil {
			log.Error("opening data store", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		log.Info("data store opened", "dir", *storeDir,
			"graphs", st.GraphCount(), "orders", st.OrderCount(), "mem_budget", *memBudget)
	} else if *memBudget != 0 {
		log.Error("-mem-budget requires -data-dir (evicted graphs must have a disk copy to reload from)")
		os.Exit(1)
	}

	srv := server.New(server.Config{
		Pool: server.PoolConfig{
			Workers:          *workers,
			QueueDepth:       *queue,
			DefaultTimeout:   *timeout,
			TenantQueueDepth: *tenQueue,
		},
		MaxUpload:         *maxUpload,
		Logger:            log,
		Store:             st,
		TenantRate:        *tenRate,
		TenantBurst:       *tenBurst,
		TenantWeights:     weights,
		QueryConcurrency:  *queryConc,
		QueryTimeout:      *queryTO,
		QueryResultBudget: *queryCach,
		KernelWorkers:     *kWorkers,
		DecayThreshold:    *decayThr,
		RepairFullBelow:   *fullBelow,
		MaxRepairs:        *maxRep,
		DisableAutoRepair: *noRepair,
	})

	if *dataDir != "" {
		n, err := srv.Reg.LoadDir(*dataDir)
		if err != nil {
			log.Error("loading dataset directory", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		log.Info("datasets preloaded", "dir", *dataDir, "graphs", n)
	}

	srv.Start()

	// Replay jobs a previous instance persisted at shutdown.
	if *manifest != "" {
		reqs, err := server.ReadManifest(*manifest)
		if err != nil {
			log.Error("reading job manifest", "path", *manifest, "err", err)
			os.Exit(1)
		}
		if len(reqs) > 0 {
			n := srv.Replay(reqs)
			log.Info("manifest replayed", "path", *manifest, "jobs", n, "skipped", len(reqs)-n)
			if err := server.WriteManifest(*manifest, nil); err != nil {
				log.Warn("clearing job manifest", "err", err)
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// The resolved address goes to stdout as a plain line so scripts
	// (and the smoke test) can find a :0-assigned port.
	fmt.Printf("gorderd listening on %s\n", ln.Addr())
	log.Info("gorderd up", "addr", ln.Addr().String(), "workers", *workers, "queue", *queue)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Info("shutdown signal received", "grace", *grace)
	case err := <-errCh:
		log.Error("http server failed", "err", err)
		os.Exit(1)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Warn("http shutdown incomplete", "err", err)
	}
	if err := srv.DrainAndPersist(*grace, *manifest); err != nil {
		log.Error("drain failed", "err", err)
		os.Exit(1)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Warn("closing data store", "err", err)
		}
	}
	log.Info("gorderd stopped")
}
