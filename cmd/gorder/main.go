// Command gorder computes a vertex ordering of a graph and writes the
// relabeled graph and/or the permutation.
//
//	gorder -i wiki.graph -method gorder -w 5 -o wiki-gorder.graph
//	gorder -i wiki.graph -method rcm -perm-out wiki.rcm.perm -eval
//	gorder -i wiki.graph -apply wiki.rcm.perm -o wiki-rcm.graph
//
// When the graph has grown since an ordering was computed, -base
// extends the saved permutation incrementally instead of recomputing:
// old vertices keep their positions and new vertices are placed
// greedily after them. -dirty-from N additionally re-places every
// vertex with id >= N jointly with the new ones (a suffix repair).
//
//	gorder -i wiki-v2.graph -base wiki.perm -perm-out wiki-v2.perm -eval
//
// Run with -list for the full catalog of methods and their
// capabilities, or -h for flag help.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gorder"
	"gorder/internal/cli"
	"gorder/internal/registry"
	"gorder/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gorder:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("i", "", "input graph (binary or text; - for stdin text)")
		method     = flag.String("method", "gorder", "ordering method: "+strings.Join(cli.MethodNames(), "|"))
		w          = flag.Int("w", gorder.DefaultWindow, "gorder window size")
		hub        = flag.Int("hub", 0, "gorder hub-skip threshold (0 = exact)")
		seed       = flag.Uint64("seed", 1, "seed for stochastic methods")
		ldgBins    = flag.Int("ldg-bins", 0, "LDG bin count (0 = default 64)")
		workers    = flag.Int("workers", 0, "worker bound for parallel methods (0 = GOMAXPROCS)")
		partitions = flag.Int("partitions", 0, "gorder-partitioned partition count (0 = default)")
		out        = flag.String("o", "", "write relabeled graph here (binary)")
		permOut    = flag.String("perm-out", "", "write the permutation here (one new id per line)")
		permIn     = flag.String("apply", "", "apply a saved permutation file instead of computing one")
		baseIn     = flag.String("base", "", "extend a saved gorder permutation incrementally to the (grown) input graph")
		dirtyFrom  = flag.Int("dirty-from", -1, "with -base: also re-place vertices with id >= N (-1 = only new vertices)")
		eval       = flag.Bool("eval", false, "print ordering quality metrics")
		list       = flag.Bool("list", false, "list the ordering catalog and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile here (pprof format)")
		memProfile = flag.String("memprofile", "", "write a heap profile here at exit (pprof format)")
	)
	flag.Parse()
	if *list {
		listMethods()
		return nil
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "gorder: -i is required")
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gorder:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gorder: memprofile:", err)
			}
		}()
	}
	g, err := cli.ReadGraph(*in)
	if err != nil {
		return err
	}
	var perm gorder.Permutation
	if *baseIn != "" {
		if *permIn != "" {
			return fmt.Errorf("-base and -apply are mutually exclusive")
		}
		f, err := os.Open(*baseIn)
		if err != nil {
			return err
		}
		base, err := gorder.ReadPermutation(f)
		f.Close()
		if err != nil {
			return err
		}
		var dirty []gorder.NodeID
		if *dirtyFrom >= 0 {
			for v := *dirtyFrom; v < len(base); v++ {
				dirty = append(dirty, gorder.NodeID(v))
			}
		}
		start := time.Now()
		perm, err = gorder.OrderIncrementalCtx(context.Background(), g, base,
			dirty, gorder.Options{Window: *w, HubThreshold: *hub})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "extended base ordering of %d vertices to %d (re-placed %d) in %s\n",
			len(base), g.NumNodes(), g.NumNodes()-len(base)+len(dirty), time.Since(start))
	} else if *permIn != "" {
		f, err := os.Open(*permIn)
		if err != nil {
			return err
		}
		perm, err = gorder.ReadPermutation(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(perm) != g.NumNodes() {
			return fmt.Errorf("permutation covers %d vertices, graph has %d", len(perm), g.NumNodes())
		}
	} else {
		start := time.Now()
		var err error
		perm, err = cli.ComputeOrdering(g, cli.OrderingSpec{
			Method: *method, Window: *w, Hub: *hub, Seed: *seed, LDGBins: *ldgBins,
			Workers: *workers, Partitions: *partitions,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "computed %s ordering of %d vertices in %s\n",
			*method, g.NumNodes(), time.Since(start))
	}

	if *eval {
		fmt.Printf("score_F(w=%d)  %d\n", *w, gorder.Score(g, perm, *w))
		fmt.Printf("bandwidth     %d\n", gorder.Bandwidth(g, perm))
		fmt.Printf("linear_cost   %.0f\n", gorder.LinearCost(g, perm))
		fmt.Printf("log_cost      %.0f\n", gorder.LogCost(g, perm))
		fmt.Printf("packing       %.3f\n", gorder.PackingFactor(g, perm))
	}
	// Outputs land atomically (temp file + rename): an interrupted run
	// never leaves a half-written permutation or graph under the target
	// name.
	if *permOut != "" {
		err := store.WriteFileAtomic(*permOut, 0o644, func(w io.Writer) error {
			_, err := perm.WriteTo(w)
			return err
		})
		if err != nil {
			return err
		}
	}
	if *out != "" {
		relabeled := gorder.Apply(g, perm)
		err := store.WriteFileAtomic(*out, 0o644, func(w io.Writer) error {
			return relabeled.WriteBinary(w)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// listMethods prints the registry's ordering catalog with capability
// metadata, one method per line.
func listMethods() {
	fmt.Printf("%-16s %-10s %-12s %-9s %s\n", "METHOD", "COST", "CANCELLABLE", "SEEDED", "ALIASES")
	for _, o := range registry.Orderings() {
		cancellable, seeded := "-", "-"
		if o.Cancellable {
			cancellable = "yes"
		}
		if o.Stochastic {
			seeded = "yes"
		}
		fmt.Printf("%-16s %-10s %-12s %-9s %s\n", strings.ToLower(o.Name),
			string(o.Cost), cancellable, seeded, strings.Join(o.Aliases, ","))
	}
}
