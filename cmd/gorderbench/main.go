// Command gorderbench drives mixed upload/order/query/edit traffic at
// a running gorderd and reports per-route latency percentiles (p50 /
// p90 / p99 / p99.9), throughput, and an error taxonomy where 429s
// count as load shedding, not failures.
//
//	gorderd -addr 127.0.0.1:8080 &
//	gorderbench -url http://127.0.0.1:8080 -duration 10s -concurrency 4,16
//
// Closed loop by default (each worker keeps one request in flight);
// -rate switches to open loop with latency measured from the arrival
// schedule, so server queueing is charged to the percentiles.
// -ingest-compare additionally (or, without -url, only) measures the
// streaming-vs-buffered ingest peak-memory ratio locally.
//
// -assert-zero-errors and -assert-p99-ms turn the run into a gate for
// CI smokes: exit 1 when the SLO is missed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gorder/internal/loadgen"
)

// report is the BENCH_serve.json shape.
type report struct {
	Generated     string                `json:"generated"`
	Target        string                `json:"target,omitempty"`
	Benchmarks    []loadgen.Result      `json:"benchmarks,omitempty"`
	IngestCompare *loadgen.IngestReport `json:"ingest_compare,omitempty"`
}

func main() {
	var (
		url        = flag.String("url", "", "gorderd base URL (e.g. http://127.0.0.1:8080)")
		duration   = flag.Duration("duration", 5*time.Second, "wall time per concurrency level")
		concs      = flag.String("concurrency", "4,16", "comma-separated closed-loop concurrency levels")
		rate       = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		mixFlag    = flag.String("mix", "", "operation mix as query=12,order=2,upload=1,edit=1, or a preset: default, query-heavy")
		kernels    = flag.String("kernels", "", "comma-separated kernels rotated across query ops (default BFS; query-heavy preset defaults to BFS,PR,SP,Tri)")
		tenants    = flag.String("tenants", "", "comma-separated X-Tenant values rotated across requests")
		graphName  = flag.String("graph", "bench", "name of the target graph (uploaded if absent)")
		nodes      = flag.Int("nodes", 2000, "node count of the generated target graph")
		seed       = flag.Uint64("seed", 1, "RNG seed for the mix, sources, and generated graphs")
		jsonOut    = flag.String("json", "", "write the report JSON to this file ('' = stdout)")
		benchName  = flag.String("name", "mixed", "benchmark name prefix in the report")
		zeroErrors = flag.Bool("assert-zero-errors", false, "exit 1 if any run saw a server or network error")
		p99Bound   = flag.Float64("assert-p99-ms", 0, "exit 1 if any run's query p99 exceeds this many ms (0 = no bound)")
		ingestCmp  = flag.Bool("ingest-compare", false, "measure streaming vs buffered ingest peak memory locally")
		ingestN    = flag.Int("ingest-nodes", 100_000, "node count for -ingest-compare (~12x edges)")
	)
	flag.Parse()

	if *url == "" && !*ingestCmp {
		fmt.Fprintln(os.Stderr, "gorderbench: -url is required (or -ingest-compare for the local measurement)")
		os.Exit(2)
	}
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}
	// The query-heavy preset is about exercising the kernel tier, so it
	// rotates over every parallel kernel unless -kernels overrides.
	if *kernels == "" && *mixFlag == "query-heavy" {
		*kernels = "BFS,PR,SP,Tri"
	}
	var kernelList []string
	if *kernels != "" {
		kernelList = strings.Split(*kernels, ",")
	}
	var tenantList []string
	if *tenants != "" {
		tenantList = strings.Split(*tenants, ",")
	}

	rep := report{Generated: time.Now().UTC().Format(time.RFC3339), Target: *url}
	failed := false

	if *url != "" {
		if err := loadgen.EnsureGraph(nil, *url, *graphName, *nodes, *seed); err != nil {
			fatal(err)
		}
		for _, c := range parseLevels(*concs) {
			res, err := loadgen.Run(loadgen.Config{
				URL:         *url,
				Duration:    *duration,
				Concurrency: c,
				Rate:        *rate,
				Mix:         mix,
				Tenants:     tenantList,
				Graph:       *graphName,
				Nodes:       *nodes,
				Kernels:     kernelList,
				Seed:        *seed,
			})
			if err != nil {
				fatal(err)
			}
			res.Name = fmt.Sprintf("%s-c%d", *benchName, c)
			if *rate > 0 {
				res.Name = fmt.Sprintf("%s-open-r%g-c%d", *benchName, *rate, c)
			}
			rep.Benchmarks = append(rep.Benchmarks, res)
			fmt.Fprintf(os.Stderr, "%s: %d requests, %.0f ok/s, %d shed, %d errors\n",
				res.Name, res.Requests, res.ThroughputRPS, res.Shed, res.Errors)
			if *zeroErrors && res.Errors > 0 {
				fmt.Fprintf(os.Stderr, "gorderbench: %s saw %d errors with -assert-zero-errors\n", res.Name, res.Errors)
				failed = true
			}
			if *p99Bound > 0 {
				for _, rt := range res.Routes {
					if rt.Route == loadgen.RouteQuery && float64(rt.P99Us)/1000 > *p99Bound {
						fmt.Fprintf(os.Stderr, "gorderbench: %s query p99 %.1fms exceeds the %.1fms bound\n",
							res.Name, float64(rt.P99Us)/1000, *p99Bound)
						failed = true
					}
				}
			}
		}
	}

	if *ingestCmp {
		ir, err := loadgen.IngestCompare(*ingestN, *seed)
		if err != nil {
			fatal(err)
		}
		rep.IngestCompare = &ir
		fmt.Fprintf(os.Stderr, "ingest: %d edges, buffered peak %.1f MiB vs streamed %.1f MiB (%.2fx)\n",
			ir.Edges, float64(ir.BufferedPeakB)/(1<<20), float64(ir.StreamingPeakB)/(1<<20), ir.Reduction)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if *jsonOut == "" {
		os.Stdout.Write(out)
	} else if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

// parseLevels parses the -concurrency list, tolerating blanks.
func parseLevels(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -concurrency level %q", part))
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{4}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gorderbench:", err)
	os.Exit(1)
}
