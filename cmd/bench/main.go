// Command bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index):
//
//	bench -exp all                  # everything (slow)
//	bench -exp table2,fig5,fig6     # a subset
//	bench -exp fig1 -scale 0.5 -v   # smaller datasets, with progress
//	bench -list                     # list datasets and experiments
//
// Output is aligned text on stdout; -md also writes a markdown file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gorder/internal/bench"
)

var experimentIDs = []string{
	"table1", "table2", "table3", "fig1", "fig3", "fig4", "fig5", "fig6", "figs1",
	"compress", "dial", "tlb", "cachegrid", "parallel", "evolving", "kernels", // extension experiments (see DESIGN.md)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 1.0, "dataset size multiplier")
		reps     = flag.Int("reps", 3, "timed repetitions per cell (median reported)")
		seed     = flag.Uint64("seed", 42, "seed for stochastic orderings/kernels")
		max      = flag.Int("datasets", 0, "limit to the first N datasets (0 = all)")
		verbose  = flag.Bool("v", false, "print progress to stderr")
		mdPath   = flag.String("md", "", "also write results as markdown to this file")
		chart    = flag.Bool("chart", false, "render each table's last column as a bar chart")
		jsonPath = flag.String("json", "", "also dump the raw runtime matrix as JSON to this file (matrix experiments only)")
		parJSON  = flag.String("parallel-json", "", "write the parallel-ordering scaling report as JSON to this file (implies -exp includes parallel)")
		evoJSON  = flag.String("evolving-json", "", "write the evolving-graph report as JSON to this file (implies -exp includes evolving)")
		kerJSON  = flag.String("kernels-json", "", "write the parallel-kernel scaling report as JSON to this file (implies -exp includes kernels)")
		list     = flag.Bool("list", false, "list experiments and datasets, then exit")
		prIters  = flag.Int("pr-iters", 100, "PageRank iterations (paper: 100)")
		diamSamp = flag.Int("diam-samples", 50, "Diameter SP samples (paper: 5000)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(experimentIDs, " "))
		fmt.Println("datasets:")
		for _, d := range bench.Datasets() {
			g := d.Build(*scale)
			fmt.Printf("  %-14s %-7s stands for %-12s n=%d m=%d\n",
				d.Name, d.Category, d.Counterpart, g.NumNodes(), g.NumEdges())
		}
		return
	}

	r := bench.NewRunner()
	r.Scale = *scale
	r.Reps = *reps
	r.Seed = *seed
	r.MaxDatasets = *max
	r.Params.PageRankIters = *prIters
	r.Params.DiameterSamples = *diamSamp
	if *verbose {
		r.Progress = os.Stderr
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, id := range experimentIDs {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			ok := false
			for _, known := range experimentIDs {
				if id == known {
					ok = true
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (known: %s)\n",
					id, strings.Join(experimentIDs, " "))
				os.Exit(2)
			}
			want[id] = true
		}
	}

	var tables []bench.Table
	add := func(ts ...bench.Table) { tables = append(tables, ts...) }
	// Cheap experiments first; the matrix-backed ones share one run.
	if want["table1"] {
		add(r.Table1())
	}
	if want["fig3"] {
		add(r.Fig3Table())
	}
	if want["fig4"] {
		add(r.Fig4Table())
	}
	if want["table2"] {
		add(r.Table2())
	}
	if want["fig5"] {
		add(r.Fig5Tables()...)
	}
	if want["fig6"] {
		add(r.Fig6Table())
	}
	if want["figs1"] {
		add(r.FigS1Tables()...)
	}
	if want["table3"] {
		add(r.Table3Tables()...)
	}
	if want["compress"] {
		add(r.CompressTable())
	}
	if want["dial"] {
		add(r.DialTable())
	}
	if want["tlb"] {
		add(r.TLBTable()...)
	}
	if want["cachegrid"] {
		add(r.CacheGridTable())
	}
	if want["parallel"] || *parJSON != "" {
		t, report := r.ParallelOrder()
		add(t)
		if *parJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*parJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
		}
	}
	if want["evolving"] || *evoJSON != "" {
		t, report := r.Evolving()
		add(t)
		if *evoJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*evoJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
		}
	}
	if want["kernels"] || *kerJSON != "" {
		t, report := r.ParallelKernels()
		add(t)
		if *kerJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*kerJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
		}
	}
	if want["fig1"] {
		add(r.Fig1Table())
	}

	for i := range tables {
		if err := tables[i].Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *chart && len(tables[i].Header) > 1 {
			col := len(tables[i].Header) - 1
			if err := bench.ChartColumn(os.Stdout, tables[i], col, 40); err == nil {
				fmt.Println()
			}
		}
		fmt.Println()
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(r.RunMatrix(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	if *mdPath != "" {
		var b strings.Builder
		for i := range tables {
			b.WriteString(tables[i].Markdown())
			b.WriteString("\n")
		}
		if err := os.WriteFile(*mdPath, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}
