// Benchmarks regenerating the paper's tables and figures (one bench
// per artefact, at reduced scale so `go test -bench=.` terminates in
// minutes) plus microbenchmarks and the design-choice ablations from
// DESIGN.md. For full-scale tables run `go run ./cmd/bench -exp all`.
package gorder_test

import (
	"fmt"
	"testing"

	"gorder"
	"gorder/internal/bench"
	"gorder/internal/core"
)

// benchRunner returns a runner small enough for testing.B iteration.
func benchRunner() *bench.Runner {
	r := bench.NewRunner()
	r.Scale = 0.1
	r.Reps = 1
	r.MaxDatasets = 3
	r.Params.PageRankIters = 20
	r.Params.DiameterSamples = 5
	return r
}

// BenchmarkTable1Datasets regenerates the dataset-features table.
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if t := r.Table1(); len(t.Rows) == 0 {
			b.Fatal("empty table1")
		}
	}
}

// BenchmarkTable2OrderingTime regenerates the ordering-time table
// (original paper's Table 9).
func BenchmarkTable2OrderingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if t := r.Table2(); len(t.Rows) == 0 {
			b.Fatal("empty table2")
		}
	}
}

// BenchmarkFig5Speedup regenerates the relative-runtime grid
// (original paper's Figure 9); Fig6 and FigS1 are derived views of
// the same matrix.
func BenchmarkFig5Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if ts := r.Fig5Tables(); len(ts) != 9 {
			b.Fatal("fig5 incomplete")
		}
		if t := r.Fig6Table(); len(t.Rows) != 10 {
			b.Fatal("fig6 incomplete")
		}
		if ts := r.FigS1Tables(); len(ts) != 9 {
			b.Fatal("figs1 incomplete")
		}
	}
}

// BenchmarkTable3CacheStats regenerates the PageRank cache-statistics
// tables (original paper's Tables 3–4).
func BenchmarkTable3CacheStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if ts := r.Table3Tables(); len(ts) == 0 {
			b.Fatal("empty table3")
		}
	}
}

// BenchmarkFig1CacheStall regenerates the CPU-vs-stall breakdown
// (Figure 1 in both papers).
func BenchmarkFig1CacheStall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if t := r.Fig1Table(); len(t.Rows) != 9 {
			b.Fatal("fig1 incomplete")
		}
	}
}

// BenchmarkFig4WindowSize regenerates the window-size sweep (original
// paper's Figure 8).
func BenchmarkFig4WindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if t := r.Fig4Table(); len(t.Rows) == 0 {
			b.Fatal("empty fig4")
		}
	}
}

// BenchmarkFig3AnnealingTuning regenerates the simulated-annealing
// grid (the replication's Figure 3).
func BenchmarkFig3AnnealingTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if t := r.Fig3Table(); len(t.Rows) == 0 {
			b.Fatal("empty fig3")
		}
	}
}

// --- Microbenchmarks ---------------------------------------------------

// BenchmarkGorderCompute measures the ordering computation itself at
// growing sizes (the scalability dimension of Table 2).
func BenchmarkGorderCompute(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		g := gorder.NewSocialGraph(n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportMetric(float64(g.NumEdges()), "edges")
			for i := 0; i < b.N; i++ {
				gorder.Order(g)
			}
		})
	}
}

// BenchmarkKernelsByOrdering times each kernel on a mid-size web
// graph under the Original order and under Gorder — the per-cell
// measurement Figure 5 aggregates.
func BenchmarkKernelsByOrdering(b *testing.B) {
	g := gorder.NewWebGraph(20000, 3)
	variants := map[string]*gorder.Graph{
		"original": g,
		"gorder":   gorder.Apply(g, gorder.Order(g)),
	}
	kernels := map[string]func(h *gorder.Graph){
		"NQ":    func(h *gorder.Graph) { gorder.NeighbourQuery(h) },
		"BFS":   func(h *gorder.Graph) { gorder.BFSAll(h) },
		"DFS":   func(h *gorder.Graph) { gorder.DFSAll(h) },
		"SCC":   func(h *gorder.Graph) { gorder.SCC(h) },
		"SP":    func(h *gorder.Graph) { gorder.ShortestPaths(h, 0) },
		"PR":    func(h *gorder.Graph) { gorder.PageRank(h, 20, 0.85) },
		"DS":    func(h *gorder.Graph) { gorder.DominatingSet(h) },
		"Kcore": func(h *gorder.Graph) { gorder.CoreNumbers(h) },
		"Diam":  func(h *gorder.Graph) { gorder.Diameter(h, 5, 1) },
	}
	for _, kname := range []string{"NQ", "BFS", "DFS", "SCC", "SP", "PR", "DS", "Kcore", "Diam"} {
		for _, vname := range []string{"original", "gorder"} {
			b.Run(kname+"/"+vname, func(b *testing.B) {
				h := variants[vname]
				run := kernels[kname]
				for i := 0; i < b.N; i++ {
					run(h)
				}
			})
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ----------------

// BenchmarkAblationQueue compares the paper's unit heap against a
// lazy binary heap inside the Gorder greedy loop — the claim the unit
// heap exists to support.
func BenchmarkAblationQueue(b *testing.B) {
	g := gorder.NewSocialGraph(20000, 5)
	for _, cfg := range []struct {
		name string
		opt  gorder.Options
	}{
		{"unitheap", gorder.Options{}},
		{"lazyheap", gorder.Options{UseLazyHeap: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gorder.OrderWithOptions(g, cfg.opt)
			}
		})
	}
}

// BenchmarkAblationHubSkip measures the hub-skip optimisation: the
// sibling-score expansion through high-out-degree in-neighbours
// dominates Gorder's cost on power-law graphs.
func BenchmarkAblationHubSkip(b *testing.B) {
	g := gorder.NewRMATGraph(14, 8, 9)
	for _, cfg := range []struct {
		name string
		opt  gorder.Options
	}{
		{"exact", gorder.Options{}},
		{"skip64", gorder.Options{HubThreshold: 64}},
		{"skip16", gorder.Options{HubThreshold: 16}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var score int64
			for i := 0; i < b.N; i++ {
				p := gorder.OrderWithOptions(g, cfg.opt)
				score = gorder.Score(g, p, gorder.DefaultWindow)
			}
			b.ReportMetric(float64(score), "F")
		})
	}
}

// BenchmarkAblationWindow measures how the window size trades
// ordering cost against ordering quality (the engine behind Fig 4).
func BenchmarkAblationWindow(b *testing.B) {
	g := gorder.NewWebGraph(20000, 11)
	for _, w := range []int{1, 5, 16, 64} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gorder.OrderWithOptions(g, gorder.Options{Window: w})
			}
		})
	}
}

// BenchmarkUnitHeapOps measures the raw queue operations.
func BenchmarkUnitHeapOps(b *testing.B) {
	const n = 1 << 16
	b.Run("inc-dec", func(b *testing.B) {
		h := core.NewUnitHeap(n)
		for i := 0; i < b.N; i++ {
			v := i & (n - 1)
			h.Inc(v)
			h.Dec(v)
		}
	})
	b.Run("extract-refill", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := core.NewUnitHeap(1024)
			for h.Len() > 0 {
				h.ExtractMax()
			}
		}
	})
}

// BenchmarkCacheSimOverhead measures the simulator's cost per access.
func BenchmarkCacheSimOverhead(b *testing.B) {
	g := gorder.NewWebGraph(5000, 1)
	b.Run("native-PR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gorder.PageRank(g, 5, 0.85)
		}
	})
	b.Run("simulated-PR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gorder.SimulateCache(g, gorder.KernelPR, gorder.SmallCache()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompressExtension regenerates the compression extension
// experiment: gap-encoded bits/edge under Random vs Gorder.
func BenchmarkCompressExtension(b *testing.B) {
	g := gorder.NewWebGraph(20000, 13)
	random := gorder.Apply(g, gorder.RandomOrder(g, 1))
	ordered := gorder.Apply(g, gorder.Order(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb := gorder.CompressedBitsPerEdge(random)
		gb := gorder.CompressedBitsPerEdge(ordered)
		if gb >= rb {
			b.Fatalf("gorder %.2f bits/edge not below random %.2f", gb, rb)
		}
	}
}

// BenchmarkIncrementalVsFull measures the evolving-graph extension:
// extending an ordering to 10% new vertices vs recomputing from
// scratch.
func BenchmarkIncrementalVsFull(b *testing.B) {
	g := gorder.NewSocialGraph(20000, 17)
	base := gorder.Order(g)
	var edges []gorder.Edge
	g.Edges(func(u, v gorder.NodeID) bool {
		edges = append(edges, gorder.Edge{From: u, To: v})
		return true
	})
	for v := gorder.NodeID(20000); v < 22000; v++ {
		for j := 0; j < 4; j++ {
			edges = append(edges, gorder.Edge{From: v, To: (v*7 + gorder.NodeID(j)*131) % 20000})
		}
	}
	g2 := gorder.FromEdgesDedup(22000, edges)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gorder.OrderIncremental(g2, base, gorder.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gorder.Order(g2)
		}
	})
}
