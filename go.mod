module gorder

go 1.22
