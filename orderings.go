package gorder

import (
	"context"

	"gorder/internal/core"
	"gorder/internal/order"
)

// Options configures the Gorder computation; see OrderWithOptions.
type Options = core.Options

// DefaultWindow is the paper's default window size w = 5.
const DefaultWindow = core.DefaultWindow

// AnnealOptions tunes the MinLA / MinLogA simulated annealing.
type AnnealOptions = order.AnnealOptions

// Order computes the Gorder permutation of g with the paper's default
// parameters (window w = 5, exact scores, unit-heap queue). This is
// the package's primary contribution: the greedy ordering that
// maximises the windowed locality score F(pi).
func Order(g *Graph) Permutation { return core.Order(g) }

// OrderWithOptions computes the Gorder permutation with explicit
// options (window size, hub-skip threshold, queue choice).
func OrderWithOptions(g *Graph, opt Options) Permutation { return core.OrderWith(g, opt) }

// OrderCtx computes the Gorder permutation with cooperative
// cancellation: the greedy loop checks ctx periodically and returns
// ctx.Err() (with a nil permutation) once the context is done. Order
// and OrderWithOptions are thin wrappers over this with
// context.Background(). Long-running services should prefer OrderCtx
// so deadlines and shutdown propagate into the ordering loop.
func OrderCtx(ctx context.Context, g *Graph, opt Options) (Permutation, error) {
	return core.OrderWithCtx(ctx, g, opt)
}

// OrderParallelCtx is OrderParallel with cooperative cancellation; see
// OrderCtx.
func OrderParallelCtx(ctx context.Context, g *Graph, opt Options, parallelism int) (Permutation, error) {
	return core.OrderParallelCtx(ctx, g, opt, parallelism)
}

// Original returns the identity permutation — the dataset's native
// order, the baseline the paper calls "Original".
func Original(g *Graph) Permutation { return order.Identity(g.NumNodes()) }

// RandomOrder returns a uniformly random permutation, the
// replication's worst-case benchmark.
func RandomOrder(g *Graph, seed uint64) Permutation { return order.Random(g.NumNodes(), seed) }

// RCM returns the Reverse Cuthill–McKee ordering (bandwidth-reducing
// BFS over the undirected view).
func RCM(g *Graph) Permutation { return order.RCM(g) }

// InDegSort orders vertices by descending in-degree.
func InDegSort(g *Graph) Permutation { return order.InDegSort(g) }

// ChDFS orders vertices by depth-first discovery time.
func ChDFS(g *Graph) Permutation { return order.ChDFS(g) }

// SlashBurn computes the simplified SlashBurn hub/spokes ordering.
func SlashBurn(g *Graph) Permutation { return order.SlashBurn(g) }

// LDG computes the Linear Deterministic Greedy bin ordering with the
// given bin size (the paper uses 64).
func LDG(g *Graph, binSize int) Permutation { return order.LDG(g, binSize) }

// MinLA approximately minimises the linear arrangement energy
// Σ|pi(u)-pi(v)| over edges by simulated annealing.
func MinLA(g *Graph, opt AnnealOptions) Permutation { return order.MinLA(g, opt) }

// MinLogA approximately minimises Σ log|pi(u)-pi(v)| over edges.
func MinLogA(g *Graph, opt AnnealOptions) Permutation { return order.MinLogA(g, opt) }

// Score evaluates the Gorder objective F(pi) for a permutation and
// window: the sum of neighbour- and sibling-relations between vertex
// pairs whose new IDs are within w of each other.
func Score(g *Graph, p Permutation, w int) int64 { return order.Score(g, p, w) }

// LinearCost evaluates the MinLA energy of a permutation.
func LinearCost(g *Graph, p Permutation) float64 { return order.LinearCost(g, p) }

// LogCost evaluates the MinLogA energy of a permutation.
func LogCost(g *Graph, p Permutation) float64 { return order.LogCost(g, p) }

// Bandwidth evaluates max|pi(u)-pi(v)| over edges, RCM's objective.
func Bandwidth(g *Graph, p Permutation) int64 { return order.Bandwidth(g, p) }

// HubSort places above-average in-degree vertices first (sorted by
// degree) and keeps cold vertices in original order — the lightweight
// frequency-based reordering of the follow-up literature (Balaji &
// Lucia, IISWC'18).
func HubSort(g *Graph) Permutation { return order.HubSort(g) }

// HubCluster moves above-average in-degree vertices to the front in
// their original relative order, cold vertices after — HubSort without
// the sort (Faldu et al., arXiv 2001.08448).
func HubCluster(g *Graph) Permutation { return order.HubCluster(g) }

// DBG computes Degree-Based Grouping: coarse degree classes laid out
// hottest-first with original order preserved inside each class.
func DBG(g *Graph) Permutation { return order.DBG(g) }

// BOBA computes the sort-free parallel ordering of arXiv 2306.10410:
// vertices in order of first appearance as a destination in the CSR
// edge stream, zero-in-degree vertices trailing in original order.
// Two O(m) passes; see order.BOBACtx for the cancellable, explicitly
// parallel form.
func BOBA(g *Graph) Permutation { return order.BOBA(g) }

// PackingFactor evaluates the hot-vertex packing metric of Faldu et
// al. (arXiv 2001.08448): average hot vertices per hot-occupied cache
// block, where hot means above-average in-degree and a block holds
// order.CacheBlockEntries consecutive new IDs.
func PackingFactor(g *Graph, p Permutation) float64 { return order.PackingFactor(g, p) }

// OrderIncremental extends an existing Gorder permutation to a grown
// graph: vertices 0..len(base)-1 keep their positions and the new
// vertices are placed greedily after them with the same windowed
// objective. This is the evolving-graph adaptation the paper's
// discussion calls for — it avoids re-running the full ordering on
// every batch of insertions. A base that is not a valid permutation
// of a prefix of g's vertices is an error, never a panic.
func OrderIncremental(g *Graph, base Permutation, opt Options) (Permutation, error) {
	return core.OrderIncremental(g, base, opt)
}

// OrderIncrementalCtx is OrderIncremental with cancellation and a
// dirty set: old vertices whose neighbourhoods changed (endpoints of
// inserted or deleted edges) are pulled out of the base order and
// re-placed greedily together with the new vertices, so the repair
// tolerates deletions, not just appended suffixes. Vertices neither
// new nor dirty keep their relative order. gorderd's quality monitor
// drives this as its decay-repair step.
func OrderIncrementalCtx(ctx context.Context, g *Graph, base Permutation, dirty []NodeID, opt Options) (Permutation, error) {
	return core.OrderIncrementalCtx(ctx, g, base, dirty, opt)
}

// ScoreDelta returns Score(gNew, p, w) - Score(gOld, pOld, w) in time
// proportional to the edit batch rather than the graph, where gNew
// derives from gOld by the given edge edits plus appended vertices and
// p extends pOld = p[:gOld.NumNodes()] without moving old vertices —
// the shape OrderIncrementalCtx produces with a nil dirty set. It is
// how the daemon's quality monitor tracks F(pi) across mutations.
func ScoreDelta(gOld, gNew *Graph, p Permutation, w int, added, removed []Edge) int64 {
	return order.ScoreDelta(gOld, gNew, p, w, added, removed)
}

// OrderParallel computes a partition-parallel approximation of Gorder
// with parallelism partitions and worker goroutines (<= 0 selects
// GOMAXPROCS workers over the default partition grid). It is
// OrderPartitioned with Workers = Partitions = parallelism, kept for
// the historical signature; new code should call OrderPartitioned.
func OrderParallel(g *Graph, opt Options, parallelism int) Permutation {
	return core.OrderParallel(g, opt, parallelism)
}

// PartitionedOptions configures OrderPartitioned: worker bound,
// partition count, and partitioner choice.
type PartitionedOptions = core.PartitionedOptions

// DefaultPartitions is the default OrderPartitioned partition count.
const DefaultPartitions = core.DefaultPartitions

// OrderPartitioned computes the partition-parallel Gorder: the graph
// is cut along the BOBA guide sequence (or a BFS/LDG partitioner),
// each partition's ghost-extended subgraph is ordered with the exact
// unit-heap greedy concurrently, and the partition orders are stitched
// by inter-partition edge weight. The permutation depends only on
// (g, opt, Partitions, Partitioner) — never on Workers or GOMAXPROCS.
// On a 1M-edge web graph it retains >90% of the exact F(pi) at a
// severalfold speedup; see BENCH_parallel_order.json.
func OrderPartitioned(g *Graph, opt Options, po PartitionedOptions) Permutation {
	return core.OrderPartitioned(g, opt, po)
}

// OrderPartitionedCtx is OrderPartitioned with cooperative
// cancellation; see OrderCtx.
func OrderPartitionedCtx(ctx context.Context, g *Graph, opt Options, po PartitionedOptions) (Permutation, error) {
	return core.OrderPartitionedCtx(ctx, g, opt, po)
}

// MultilevelOrder runs Gorder on a matching-coarsened graph and
// projects the order back to the full graph — a scalable
// approximation when the exact greedy (Order) is too slow.
// coarsenTo bounds the coarse graph's size (0 selects the default).
func MultilevelOrder(g *Graph, opt Options, coarsenTo int) Permutation {
	return core.MultilevelOrder(g, opt, coarsenTo)
}

// Multilevel computes a multilevel ordering with a caller-chosen
// coarse-level orderer (see order.MultilevelOptions); RCM by default.
func Multilevel(g *Graph, opt MultilevelOptions) Permutation {
	return order.Multilevel(g, opt)
}

// MultilevelOptions configures Multilevel.
type MultilevelOptions = order.MultilevelOptions
