package loadgen

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

// IngestReport quantifies what streaming ingest buys: the peak heap
// above baseline of parsing one edge list buffered (whole body in
// memory, the pre-streaming upload path) versus streamed (fixed
// parse buffer). Both parses produce bit-identical CSRs; the
// difference is purely how much of the raw text ever coexists with
// the parse state.
type IngestReport struct {
	Nodes          int     `json:"nodes"`
	Edges          int64   `json:"edges"`
	FileBytes      int64   `json:"file_bytes"`
	BufferedPeakB  uint64  `json:"buffered_peak_bytes"`
	StreamingPeakB uint64  `json:"streaming_peak_bytes"`
	Reduction      float64 `json:"peak_reduction"` // buffered / streaming
	BufferedMs     int64   `json:"buffered_ms"`
	StreamingMs    int64   `json:"streaming_ms"`
}

// peakDuring samples HeapAlloc while fn runs and returns the peak
// rise above the post-GC baseline. Sampling at a few hundred Hz
// catches the transient body+shards coexistence window that a single
// post-hoc reading would miss. GC is tightened for the measurement so
// HeapAlloc tracks the live set instead of accumulated garbage —
// without it, collection timing swamps the residency difference the
// comparison exists to show.
func peakDuring(fn func() error) (uint64, time.Duration, error) {
	old := debug.SetGCPercent(20)
	defer debug.SetGCPercent(old)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if a := s.HeapAlloc; a > peak.Load() {
					peak.Store(a)
				}
			}
		}
	}()
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	close(stop)
	<-done
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if a := end.HeapAlloc; a > peak.Load() {
		peak.Store(a)
	}
	p := peak.Load()
	if p < base {
		return 0, elapsed, err
	}
	return p - base, elapsed, err
}

// IngestCompare renders a web-shaped graph of n nodes (~12n edges) to
// a temp file, then parses it twice — os.ReadFile + buffered parse
// versus streamed from the open file — and reports the peak-memory
// ratio. This is the measurement behind the serving tier's "uploads
// larger than RAM headroom" claim.
func IngestCompare(n int, seed uint64) (IngestReport, error) {
	if n <= 0 {
		n = 100_000
	}
	g := gen.Web(n, gen.DefaultWeb, seed)
	dir, err := os.MkdirTemp("", "gorderbench-ingest-*")
	if err != nil {
		return IngestReport{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "web.el")
	f, err := os.Create(path)
	if err != nil {
		return IngestReport{}, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := g.WriteEdgeList(bw); err != nil {
		f.Close()
		return IngestReport{}, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return IngestReport{}, err
	}
	if err := f.Close(); err != nil {
		return IngestReport{}, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return IngestReport{}, err
	}
	rep := IngestReport{Nodes: g.NumNodes(), Edges: g.NumEdges(), FileBytes: fi.Size()}
	g = nil

	// Both closures emulate their server upload path exactly. Buffered
	// (the pre-streaming handler): read the whole body via io.ReadAll —
	// an HTTP body has no known length, so the buffer grows by doubling
	// — hash it, parse it, and keep the bytes live until registration
	// reads their length, as Registry.Add does. Streamed: tee through
	// the hash into the fixed-buffer incremental parser; the body is
	// never whole in memory.
	var parsed *graph.Graph
	bufPeak, bufDur, err := peakDuring(func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		data, err := io.ReadAll(bufio.NewReader(f))
		if err != nil {
			return err
		}
		digest := sha256.Sum256(data)
		parsed, err = graph.ReadEdgeListBytes(data)
		if err != nil {
			return err
		}
		if int64(len(data)) != fi.Size() || digest == [32]byte{} {
			return fmt.Errorf("loadgen: short buffered read")
		}
		return nil
	})
	if err != nil {
		return IngestReport{}, fmt.Errorf("loadgen: buffered parse: %w", err)
	}
	bufEdges := parsed.NumEdges()
	parsed = nil

	strPeak, strDur, err := peakDuring(func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		h := sha256.New()
		parsed, err = graph.ReadEdgeListStream(io.TeeReader(bufio.NewReader(f), h))
		if err != nil {
			return err
		}
		if len(h.Sum(nil)) == 0 {
			return fmt.Errorf("loadgen: empty digest")
		}
		return nil
	})
	if err != nil {
		return IngestReport{}, fmt.Errorf("loadgen: streaming parse: %w", err)
	}
	if parsed.NumEdges() != bufEdges {
		return IngestReport{}, fmt.Errorf("loadgen: parse disagreement: buffered %d edges, streamed %d",
			bufEdges, parsed.NumEdges())
	}
	parsed = nil

	rep.BufferedPeakB = bufPeak
	rep.StreamingPeakB = strPeak
	rep.BufferedMs = bufDur.Milliseconds()
	rep.StreamingMs = strDur.Milliseconds()
	if strPeak > 0 {
		rep.Reduction = float64(bufPeak) / float64(strPeak)
	}
	return rep, nil
}
