package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"gorder/internal/gen"
)

// Routes the generator exercises. Uploads and edits are writes,
// orders go through the job queue, queries through the read gate —
// together they cover every admission path the traffic tier has.
const (
	RouteUpload = "upload"
	RouteOrder  = "order"
	RouteQuery  = "query"
	RouteEdit   = "edit"
)

// Mix weights the operation mix. Zero-valued fields never run.
type Mix struct {
	Query  int `json:"query"`
	Order  int `json:"order"`
	Upload int `json:"upload"`
	Edit   int `json:"edit"`
}

// DefaultMix is query-heavy with a trickle of writes — the shape of a
// serving deployment.
var DefaultMix = Mix{Query: 12, Order: 2, Upload: 1, Edit: 1}

// QueryHeavyMix is the read-dominated preset for benchmarking the
// kernel tier itself: writes reduced to a keep-alive trickle so the
// run measures kernel execution and the result cache, not ingest.
var QueryHeavyMix = Mix{Query: 40, Order: 1, Upload: 1, Edit: 1}

// MixPresets are the named mixes -mix accepts in place of
// route=weight syntax.
var MixPresets = map[string]Mix{
	"default":     DefaultMix,
	"query-heavy": QueryHeavyMix,
}

func (m Mix) total() int { return m.Query + m.Order + m.Upload + m.Edit }

// pick maps a uniform draw in [0, total) to a route.
func (m Mix) pick(n int) string {
	if n -= m.Query; n < 0 {
		return RouteQuery
	}
	if n -= m.Order; n < 0 {
		return RouteOrder
	}
	if n -= m.Upload; n < 0 {
		return RouteUpload
	}
	return RouteEdit
}

// ParseMix parses "query=12,order=2,upload=1,edit=1" or a preset name
// from MixPresets ("default", "query-heavy").
func ParseMix(s string) (Mix, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return DefaultMix, nil
	}
	if m, ok := MixPresets[s]; ok {
		return m, nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: mix %q is not route=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: mix weight %q must be a non-negative integer", part)
		}
		switch name {
		case RouteQuery:
			m.Query = w
		case RouteOrder:
			m.Order = w
		case RouteUpload:
			m.Upload = w
		case RouteEdit:
			m.Edit = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown route %q (known: query, order, upload, edit)", name)
		}
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("loadgen: mix has no positive weights")
	}
	return m, nil
}

// Config describes one load run.
type Config struct {
	URL         string        // daemon base URL, e.g. http://127.0.0.1:8080
	Duration    time.Duration // wall time to drive traffic for
	Concurrency int           // closed-loop workers (and open-loop in-flight bound)
	Rate        float64       // open-loop arrival rate in req/s; 0 = closed loop
	Mix         Mix
	Tenants     []string // X-Tenant values rotated across requests ("" = none)
	Graph       string   // registered graph queries/orders/edits target
	Nodes       int      // node count of the target graph (query source range)
	// Kernels are rotated uniformly across query operations (default
	// BFS only). Non-source kernels ignore the source field at the
	// canonicalization layer, so any registry queryable name works.
	Kernels []string
	Seed    uint64
	Client  *http.Client // optional; defaults to a pooled client
}

// RouteStats is one route's slice of a Result: the error taxonomy and
// the latency distribution of its successful requests, microseconds.
// Shed (429) is backpressure working as designed, counted apart from
// errors.
type RouteStats struct {
	Route      string  `json:"route"`
	Count      int64   `json:"count"`
	OK         int64   `json:"ok"`
	Shed       int64   `json:"shed"`
	ClientErrs int64   `json:"client_errors"`
	ServerErrs int64   `json:"server_errors"`
	NetErrs    int64   `json:"net_errors"`
	P50Us      int64   `json:"p50_us"`
	P90Us      int64   `json:"p90_us"`
	P99Us      int64   `json:"p99_us"`
	P999Us     int64   `json:"p999_us"`
	MeanUs     float64 `json:"mean_us"`
	MaxUs      int64   `json:"max_us"`
}

// Result is one run's report.
type Result struct {
	Name          string       `json:"name"`
	Concurrency   int          `json:"concurrency"`
	RateRPS       float64      `json:"rate_rps,omitempty"`
	DurationS     float64      `json:"duration_s"`
	Requests      int64        `json:"requests"`
	OK            int64        `json:"ok"`
	Shed          int64        `json:"shed"`
	Errors        int64        `json:"errors"` // server + network
	ThroughputRPS float64      `json:"throughput_rps"`
	Routes        []RouteStats `json:"routes"`
}

// routeRec is one worker's accumulator for one route.
type routeRec struct {
	count, ok, shed, clientErr, serverErr, netErr int64
	lat                                           Hist
}

// worker owns its recorders and RNG; merged after the run.
type worker struct {
	recs map[string]*routeRec
	rng  *rand.Rand
}

func (w *worker) rec(route string) *routeRec {
	r := w.recs[route]
	if r == nil {
		r = &routeRec{}
		w.recs[route] = r
	}
	return r
}

// record classifies one response. Latency is recorded for successes
// only — percentiles describe served traffic, not rejection speed.
func (r *routeRec) record(status int, err error, us int64) {
	r.count++
	switch {
	case err != nil:
		r.netErr++
	case status == http.StatusTooManyRequests:
		r.shed++
	case status == http.StatusNotImplemented:
		// A capability the deployment lacks (edits without a store), not
		// an overload failure.
		r.clientErr++
	case status >= 500:
		r.serverErr++
	case status >= 400:
		r.clientErr++
	default:
		r.ok++
		r.lat.Record(us)
	}
}

// EnsureGraph uploads the target graph (generated deterministically
// from nodes and seed) under name; a re-upload of the same bytes
// deduplicates server-side, so this is idempotent.
func EnsureGraph(client *http.Client, url, name string, nodes int, seed uint64) error {
	if client == nil {
		client = http.DefaultClient
	}
	var buf bytes.Buffer
	if err := gen.BarabasiAlbert(nodes, 4, seed).WriteEdgeList(&buf); err != nil {
		return err
	}
	resp, err := client.Post(url+"/graphs?name="+name, "application/octet-stream", &buf)
	if err != nil {
		return fmt.Errorf("loadgen: uploading target graph: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("loadgen: uploading target graph: status %d: %s", resp.StatusCode, body)
	}
	return nil
}

// Run drives the configured traffic and reports. Closed loop
// (Rate == 0): Concurrency workers each keep one request in flight.
// Open loop (Rate > 0): arrivals fire on a fixed schedule and latency
// is measured from the scheduled start, so server-side queueing shows
// up in the percentiles instead of being absorbed by a slow client
// (no coordinated omission); Concurrency bounds the in-flight count.
func Run(cfg Config) (Result, error) {
	if cfg.URL == "" {
		return Result{}, fmt.Errorf("loadgen: URL is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.Graph == "" {
		cfg.Graph = "bench"
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2000
	}
	if len(cfg.Kernels) == 0 {
		cfg.Kernels = []string{"BFS"}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: cfg.Concurrency * 2,
				MaxIdleConns:        cfg.Concurrency * 2,
			},
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	workers := make([]*worker, cfg.Concurrency)
	for i := range workers {
		workers[i] = &worker{
			recs: make(map[string]*routeRec),
			rng:  rand.New(rand.NewSource(int64(cfg.Seed) + int64(i)*7919)),
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: one scheduler, Concurrency in-flight slots.
		sem := make(chan int, cfg.Concurrency)
		for i := 0; i < cfg.Concurrency; i++ {
			sem <- i
		}
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var seq int64
	open:
		for {
			select {
			case <-ctx.Done():
				break open
			case scheduled := <-tick.C:
				wi := <-sem
				w := workers[wi]
				seq++
				op := cfg.Mix.pick(w.rng.Intn(cfg.Mix.total()))
				tenant := pickTenant(cfg.Tenants, w.rng)
				src := w.rng.Intn(cfg.Nodes)
				kern := cfg.Kernels[w.rng.Intn(len(cfg.Kernels))]
				upSeed := cfg.Seed*1_000_003 + uint64(seq)
				wg.Add(1)
				go func() {
					defer wg.Done()
					status, err := doOp(client, cfg, op, kern, tenant, src, upSeed)
					w.rec(op).record(status, err, time.Since(scheduled).Microseconds())
					sem <- wi
				}()
			}
		}
	} else {
		// Closed loop: each worker keeps exactly one request in flight.
		for i := 0; i < cfg.Concurrency; i++ {
			wg.Add(1)
			go func(w *worker, wi int) {
				defer wg.Done()
				var seq int64
				for ctx.Err() == nil {
					seq++
					op := cfg.Mix.pick(w.rng.Intn(cfg.Mix.total()))
					tenant := pickTenant(cfg.Tenants, w.rng)
					src := w.rng.Intn(cfg.Nodes)
					kern := cfg.Kernels[w.rng.Intn(len(cfg.Kernels))]
					upSeed := cfg.Seed*1_000_003 + uint64(wi)*1_000_000 + uint64(seq)
					t0 := time.Now()
					status, err := doOp(client, cfg, op, kern, tenant, src, upSeed)
					w.rec(op).record(status, err, time.Since(t0).Microseconds())
				}
			}(workers[i], i)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge the per-worker recorders.
	merged := make(map[string]*routeRec)
	for _, w := range workers {
		for route, r := range w.recs {
			m := merged[route]
			if m == nil {
				m = &routeRec{}
				merged[route] = m
			}
			m.count += r.count
			m.ok += r.ok
			m.shed += r.shed
			m.clientErr += r.clientErr
			m.serverErr += r.serverErr
			m.netErr += r.netErr
			m.lat.Merge(&r.lat)
		}
	}
	res := Result{
		Concurrency: cfg.Concurrency,
		RateRPS:     cfg.Rate,
		DurationS:   elapsed.Seconds(),
	}
	for _, route := range []string{RouteQuery, RouteOrder, RouteUpload, RouteEdit} {
		r := merged[route]
		if r == nil {
			continue
		}
		res.Requests += r.count
		res.OK += r.ok
		res.Shed += r.shed
		res.Errors += r.serverErr + r.netErr
		res.Routes = append(res.Routes, RouteStats{
			Route:      route,
			Count:      r.count,
			OK:         r.ok,
			Shed:       r.shed,
			ClientErrs: r.clientErr,
			ServerErrs: r.serverErr,
			NetErrs:    r.netErr,
			P50Us:      r.lat.Quantile(0.50),
			P90Us:      r.lat.Quantile(0.90),
			P99Us:      r.lat.Quantile(0.99),
			P999Us:     r.lat.Quantile(0.999),
			MeanUs:     r.lat.Mean(),
			MaxUs:      r.lat.Max(),
		})
	}
	res.ThroughputRPS = float64(res.OK) / elapsed.Seconds()
	return res, nil
}

func pickTenant(tenants []string, rng *rand.Rand) string {
	if len(tenants) == 0 {
		return ""
	}
	return tenants[rng.Intn(len(tenants))]
}

// doOp executes one operation and returns the HTTP status (0 on a
// transport failure). kern is the rotated query kernel; the source
// field is sent unconditionally and canonicalized away by kernels
// that do not consume it.
func doOp(client *http.Client, cfg Config, op, kern, tenant string, src int, upSeed uint64) (int, error) {
	var (
		path string
		body []byte
	)
	switch op {
	case RouteQuery:
		path = "/query"
		body, _ = json.Marshal(map[string]any{
			"graph": cfg.Graph, "kernel": kern, "source": src,
		})
	case RouteOrder:
		path = "/jobs"
		body, _ = json.Marshal(map[string]any{
			"kind": "order", "graph": cfg.Graph, "method": "gorder",
		})
	case RouteUpload:
		var buf bytes.Buffer
		if err := gen.BarabasiAlbert(120+int(upSeed%128), 3, upSeed).WriteEdgeList(&buf); err != nil {
			return 0, err
		}
		path = fmt.Sprintf("/graphs?name=lg-%d", upSeed)
		body = buf.Bytes()
	case RouteEdit:
		path = "/graphs/" + cfg.Graph + "/edges"
		body, _ = json.Marshal(map[string]any{
			"add": []map[string]int{{"from": src, "to": (src + 1 + int(upSeed%97)) % cfg.Nodes}},
		})
	default:
		return 0, fmt.Errorf("loadgen: unknown op %q", op)
	}
	req, err := http.NewRequest(http.MethodPost, cfg.URL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode >= 400 && resp.StatusCode != 429 && os.Getenv("LOADGEN_DEBUG") != "" {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
		fmt.Fprintf(os.Stderr, "DEBUG %s -> %d %s\n", path, resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
