package loadgen

import (
	"math/rand"
	"testing"
)

// TestHistQuantileAccuracy: against a known uniform sample, every
// reported quantile must sit within one log-bucket (~3%) of exact.
func TestHistQuantileAccuracy(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(7))
	n := 200_000
	vals := make([]int64, n)
	for i := range vals {
		v := int64(rng.Intn(1_000_000))
		vals[i] = v
		h.Record(v)
	}
	if h.Count() != uint64(n) {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := q * 1_000_000 // uniform: quantile ~ q*max
		if got < want*0.93 || got > want*1.07 {
			t.Errorf("q%.3f = %.0f, want within 7%% of %.0f", q, got, want)
		}
	}
}

// TestHistSmallAndEdge: exact buckets below 32, empty hist, merge.
func TestHistSmallAndEdge(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist must report zeros")
	}
	for i := int64(0); i < 32; i++ {
		h.Record(i)
	}
	if got := h.Quantile(0.5); got < 14 || got > 17 {
		t.Fatalf("median of 0..31 = %d", got)
	}
	var a, b Hist
	a.Record(100)
	b.Record(1_000_000)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 1_000_000 {
		t.Fatalf("merge lost samples: count %d max %d", a.Count(), a.Max())
	}
	if got := a.Quantile(1); got != 1_000_000 {
		t.Fatalf("p100 = %d, want the max", got)
	}
}

// TestBucketMonotone: bucketOf must be monotone and bucketFloor its
// lower inverse.
func TestBucketMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<16; v++ {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, b, prev)
		}
		if f := bucketFloor(b); f > v {
			t.Fatalf("bucketFloor(%d) = %d > %d", b, f, v)
		}
		prev = b
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("query=6,order=2,upload=1,edit=1")
	if err != nil || m != (Mix{Query: 6, Order: 2, Upload: 1, Edit: 1}) {
		t.Fatalf("ParseMix: %+v, %v", m, err)
	}
	if m, err = ParseMix(""); err != nil || m != DefaultMix {
		t.Fatalf("empty mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"query", "query=-1", "bogus=3", "query=0,order=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		counts[DefaultMix.pick(i%DefaultMix.total())]++
	}
	if counts[RouteQuery] == 0 {
		t.Fatal("pick never chose the dominant route")
	}
}
