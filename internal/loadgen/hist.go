// Package loadgen drives mixed upload/order/query/edit traffic at a
// running gorderd and reports per-route latency percentiles,
// throughput, and an error taxonomy — the client half of the serving
// tier's SLO story. It also hosts the ingest peak-memory comparison
// that quantifies what streaming upload buys over whole-body
// buffering.
package loadgen

import "math/bits"

// Hist is a log-bucketed latency histogram: exact counts below 2^5
// microseconds, then 32 sub-buckets per power of two — bounded
// relative error (~3%) at any magnitude, fixed memory, O(1) record.
// Values are microseconds. Not safe for concurrent use; the collector
// owns one per worker and merges.
type Hist struct {
	counts []uint64
	total  uint64
	sum    float64
	max    int64
}

// subBits is the per-octave resolution: 2^subBits sub-buckets.
const subBits = 5

// bucketOf maps a value to its bucket index: identity below
// 2^subBits, then (octave, sub-bucket) above.
func bucketOf(v int64) int {
	if v < 1<<subBits {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := (v >> uint(exp-subBits)) & (1<<subBits - 1)
	return (exp-subBits+1)<<subBits + int(sub)
}

// bucketFloor is the smallest value mapping to bucket index i.
func bucketFloor(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	block := i >> subBits
	sub := int64(i & (1<<subBits - 1))
	exp := uint(block + subBits - 1)
	return 1<<exp + sub<<(exp-subBits)
}

// Record folds one microsecond sample in.
func (h *Hist) Record(us int64) {
	if us < 0 {
		us = 0
	}
	i := bucketOf(us)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.total++
	h.sum += float64(us)
	if us > h.max {
		h.max = us
	}
}

// Merge adds o's samples into h.
func (h *Hist) Merge(o *Hist) {
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count reports the number of recorded samples.
func (h *Hist) Count() uint64 { return h.total }

// Mean reports the average sample in microseconds.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max reports the largest recorded sample.
func (h *Hist) Max() int64 { return h.max }

// Quantile reports the q-quantile (0 < q <= 1) in microseconds: the
// floor of the bucket holding the q-th sample, clamped to the
// recorded max so a sparse top octave cannot overreport.
func (h *Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total-1 {
		return h.max
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := bucketFloor(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
