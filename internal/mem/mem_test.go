package mem

import (
	"testing"

	"gorder/internal/cache"
)

func newSpace() (*Space, *cache.Hierarchy) {
	h := cache.New(cache.Config{
		Levels:        []cache.LevelConfig{{Name: "L1", Size: 1 << 10, LineSize: 64, Ways: 4, Latency: 1}},
		MemoryLatency: 100,
	})
	return NewSpace(h), h
}

func TestU32RoundTrip(t *testing.T) {
	s, h := newSpace()
	a := s.NewU32(10)
	a.Set(3, 42)
	if got := a.Get(3); got != 42 {
		t.Fatalf("Get = %d, want 42", got)
	}
	if h.Report().Accesses != 2 {
		t.Fatalf("accesses = %d, want 2", h.Report().Accesses)
	}
	if a.Len() != 10 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestAllTypes(t *testing.T) {
	s, h := newSpace()
	i32 := s.NewI32(4)
	i64 := s.NewI64(4)
	f64 := s.NewF64(4)
	b := s.NewBool(4)
	i32.Set(0, -5)
	i64.Set(1, 1<<40)
	f64.Set(2, 3.5)
	b.Set(3, true)
	if i32.Get(0) != -5 || i64.Get(1) != 1<<40 || f64.Get(2) != 3.5 || !b.Get(3) {
		t.Fatal("typed round trips failed")
	}
	if i32.Len() != 4 || i64.Len() != 4 || f64.Len() != 4 || b.Len() != 4 {
		t.Fatal("lengths wrong")
	}
	if h.Report().Accesses != 8 {
		t.Fatalf("accesses = %d, want 8", h.Report().Accesses)
	}
}

func TestFill(t *testing.T) {
	s, h := newSpace()
	a := s.NewI32(7)
	a.Fill(-1)
	for i := 0; i < 7; i++ {
		if a.data[i] != -1 {
			t.Fatal("Fill missed an element")
		}
	}
	if h.Report().Accesses != 7 {
		t.Fatalf("Fill accesses = %d, want 7", h.Report().Accesses)
	}
}

func TestArraysDoNotShareLines(t *testing.T) {
	s, h := newSpace()
	a := s.NewU32(1)
	b := s.NewU32(1)
	a.Get(0)
	b.Get(0)
	r := h.Report()
	// Two distinct line-aligned arrays → two cold misses.
	if r.Levels[0].Misses != 2 {
		t.Fatalf("misses = %d, want 2 (arrays must not share a line)", r.Levels[0].Misses)
	}
}

func TestSpatialLocalityWithinArray(t *testing.T) {
	s, h := newSpace()
	a := s.NewU32(16) // exactly one 64-byte line
	for i := 0; i < 16; i++ {
		a.Get(i)
	}
	r := h.Report()
	if r.Levels[0].Misses != 1 {
		t.Fatalf("misses = %d, want 1 (16 u32 on one line)", r.Levels[0].Misses)
	}
}

func TestWrapSharesBacking(t *testing.T) {
	s, _ := newSpace()
	backing := []uint32{1, 2, 3}
	a := s.WrapU32(backing)
	a.Set(1, 99)
	if backing[1] != 99 {
		t.Fatal("WrapU32 copied instead of aliasing")
	}
	d := []int64{5, 6}
	w := s.WrapI64(d)
	if w.Get(1) != 6 {
		t.Fatal("WrapI64 wrong value")
	}
}

func TestHierarchyAccessor(t *testing.T) {
	s, h := newSpace()
	if s.Hierarchy() != h {
		t.Fatal("Hierarchy() did not return the backing hierarchy")
	}
}
