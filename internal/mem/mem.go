// Package mem provides typed array views whose every load and store
// is reported to a cache.Hierarchy at a realistic byte address. The
// traced kernel variants in internal/algos are written against these
// arrays, so the simulator observes exactly the data-access stream the
// native kernels produce over the same memory layout.
//
// A Space is a bump allocator for a synthetic address space: arrays
// are laid out contiguously and cache-line aligned, mimicking how the
// Go runtime would place the corresponding slices.
package mem

import "gorder/internal/cache"

// Space allocates addresses in a synthetic process address space and
// carries the hierarchy every array reports to.
type Space struct {
	h    *cache.Hierarchy
	next uint64
}

// NewSpace returns an empty address space backed by h. A non-zero
// base keeps line 0 out of the picture.
func NewSpace(h *cache.Hierarchy) *Space {
	return &Space{h: h, next: 1 << 12}
}

// Hierarchy returns the cache hierarchy this space reports to.
func (s *Space) Hierarchy() *cache.Hierarchy { return s.h }

const lineAlign = 64

// alloc reserves size bytes aligned to a cache line and returns the
// base address.
func (s *Space) alloc(size int64) uint64 {
	base := (s.next + lineAlign - 1) &^ uint64(lineAlign-1)
	s.next = base + uint64(size)
	return base
}

// U32 is a traced []uint32.
type U32 struct {
	data []uint32
	base uint64
	h    *cache.Hierarchy
}

// NewU32 allocates a zeroed traced array of n uint32 values.
func (s *Space) NewU32(n int) U32 {
	return U32{data: make([]uint32, n), base: s.alloc(int64(n) * 4), h: s.h}
}

// WrapU32 places an existing slice into the space without copying —
// used to register a graph's CSR arrays.
func (s *Space) WrapU32(d []uint32) U32 {
	return U32{data: d, base: s.alloc(int64(len(d)) * 4), h: s.h}
}

// Len returns the element count.
func (a U32) Len() int { return len(a.data) }

// Get loads element i through the cache model.
func (a U32) Get(i int) uint32 {
	a.h.Access(a.base + uint64(i)*4)
	return a.data[i]
}

// Set stores element i through the cache model.
func (a U32) Set(i int, v uint32) {
	a.h.Access(a.base + uint64(i)*4)
	a.data[i] = v
}

// I32 is a traced []int32.
type I32 struct {
	data []int32
	base uint64
	h    *cache.Hierarchy
}

// NewI32 allocates a zeroed traced array of n int32 values.
func (s *Space) NewI32(n int) I32 {
	return I32{data: make([]int32, n), base: s.alloc(int64(n) * 4), h: s.h}
}

// Len returns the element count.
func (a I32) Len() int { return len(a.data) }

// Get loads element i through the cache model.
func (a I32) Get(i int) int32 {
	a.h.Access(a.base + uint64(i)*4)
	return a.data[i]
}

// Set stores element i through the cache model.
func (a I32) Set(i int, v int32) {
	a.h.Access(a.base + uint64(i)*4)
	a.data[i] = v
}

// Fill sets every element to v, touching memory like a memset loop.
func (a I32) Fill(v int32) {
	for i := range a.data {
		a.Set(i, v)
	}
}

// I64 is a traced []int64.
type I64 struct {
	data []int64
	base uint64
	h    *cache.Hierarchy
}

// NewI64 allocates a zeroed traced array of n int64 values.
func (s *Space) NewI64(n int) I64 {
	return I64{data: make([]int64, n), base: s.alloc(int64(n) * 8), h: s.h}
}

// WrapI64 places an existing slice into the space without copying.
func (s *Space) WrapI64(d []int64) I64 {
	return I64{data: d, base: s.alloc(int64(len(d)) * 8), h: s.h}
}

// Len returns the element count.
func (a I64) Len() int { return len(a.data) }

// Get loads element i through the cache model.
func (a I64) Get(i int) int64 {
	a.h.Access(a.base + uint64(i)*8)
	return a.data[i]
}

// Set stores element i through the cache model.
func (a I64) Set(i int, v int64) {
	a.h.Access(a.base + uint64(i)*8)
	a.data[i] = v
}

// F64 is a traced []float64.
type F64 struct {
	data []float64
	base uint64
	h    *cache.Hierarchy
}

// NewF64 allocates a zeroed traced array of n float64 values.
func (s *Space) NewF64(n int) F64 {
	return F64{data: make([]float64, n), base: s.alloc(int64(n) * 8), h: s.h}
}

// Len returns the element count.
func (a F64) Len() int { return len(a.data) }

// Get loads element i through the cache model.
func (a F64) Get(i int) float64 {
	a.h.Access(a.base + uint64(i)*8)
	return a.data[i]
}

// Set stores element i through the cache model.
func (a F64) Set(i int, v float64) {
	a.h.Access(a.base + uint64(i)*8)
	a.data[i] = v
}

// Bool is a traced []bool (one byte per element, like Go's).
type Bool struct {
	data []bool
	base uint64
	h    *cache.Hierarchy
}

// NewBool allocates a zeroed traced array of n bools.
func (s *Space) NewBool(n int) Bool {
	return Bool{data: make([]bool, n), base: s.alloc(int64(n)), h: s.h}
}

// Len returns the element count.
func (a Bool) Len() int { return len(a.data) }

// Get loads element i through the cache model.
func (a Bool) Get(i int) bool {
	a.h.Access(a.base + uint64(i))
	return a.data[i]
}

// Set stores element i through the cache model.
func (a Bool) Set(i int, v bool) {
	a.h.Access(a.base + uint64(i))
	a.data[i] = v
}
