package stats

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEqual(got, c.want) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Errorf("Quantile(1) = %v, want 9", got)
	}
	// Input must not be modified.
	if xs[0] != 5 || xs[3] != 3 {
		t.Error("Quantile modified its input")
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{1}); got != 0 {
		t.Errorf("Stddev(single) = %v, want 0", got)
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, math.Sqrt(32.0/7.0)) {
		t.Errorf("Stddev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty slice not infinite")
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 5, 20, 5})
	want := []int{3, 1, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRankHistogram(t *testing.T) {
	series := [][]float64{
		{1, 2, 3}, // a first, b second, c third
		{2, 1, 3}, // b first, a second, c third
		{1, 3, 2}, // a first, c second, b third
	}
	hist := RankHistogram(series)
	if hist[0][0] != 2 || hist[0][1] != 1 {
		t.Errorf("contender 0 hist = %v, want [2 1 0]", hist[0])
	}
	if hist[2][2] != 2 || hist[2][1] != 1 {
		t.Errorf("contender 2 hist = %v, want [0 1 2]", hist[2])
	}
}

func TestMeanRank(t *testing.T) {
	series := [][]float64{{1, 2}, {2, 1}}
	mr := MeanRank(series)
	if !almostEqual(mr[0], 1.5) || !almostEqual(mr[1], 1.5) {
		t.Errorf("MeanRank = %v, want [1.5 1.5]", mr)
	}
}

// Quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Ranks is a permutation-compatible assignment: sorting by rank sorts
// by score, and every rank is within [1, n].
func TestQuickRanksConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(10)) // force ties
		}
		ranks := Ranks(scores)
		type pair struct {
			s float64
			r int
		}
		ps := make([]pair, n)
		for i := range ps {
			if ranks[i] < 1 || ranks[i] > n {
				return false
			}
			ps[i] = pair{scores[i], ranks[i]}
		}
		slices.SortFunc(ps, func(a, b pair) int { return a.r - b.r })
		for i := 1; i < n; i++ {
			if ps[i-1].s > ps[i].s {
				return false
			}
			if ps[i-1].s == ps[i].s && ps[i-1].r != ps[i].r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
