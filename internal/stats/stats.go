// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics over repeated timings and rank
// aggregation across experiment series (used for the paper's Figure 6).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Stddev returns the sample standard deviation of xs (n-1 in the
// denominator), or 0 when len(xs) < 2.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Ranks assigns competition ranks (1 = best) to the given scores,
// smaller scores ranking first. Ties receive the same rank and the
// following rank is skipped, as in standard competition ranking.
func Ranks(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]int, len(scores))
	for pos, i := range idx {
		if pos > 0 && scores[i] == scores[idx[pos-1]] {
			ranks[i] = ranks[idx[pos-1]]
		} else {
			ranks[i] = pos + 1
		}
	}
	return ranks
}

// RankHistogram aggregates ranks over many series. series[s][c] is the
// score of contender c in series s (smaller is better). The result
// hist[c][r-1] counts how many series placed contender c at rank r.
// All series must have the same number of contenders.
func RankHistogram(series [][]float64) [][]int {
	if len(series) == 0 {
		return nil
	}
	nc := len(series[0])
	hist := make([][]int, nc)
	for c := range hist {
		hist[c] = make([]int, nc)
	}
	for _, s := range series {
		if len(s) != nc {
			panic("stats: ragged series in RankHistogram")
		}
		for c, r := range Ranks(s) {
			hist[c][r-1]++
		}
	}
	return hist
}

// MeanRank returns the average rank of each contender over the series,
// a convenient scalar summary of RankHistogram.
func MeanRank(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	nc := len(series[0])
	sum := make([]float64, nc)
	for _, s := range series {
		for c, r := range Ranks(s) {
			sum[c] += float64(r)
		}
	}
	for c := range sum {
		sum[c] /= float64(len(series))
	}
	return sum
}
