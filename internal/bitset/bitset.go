// Package bitset provides a fixed-size bit set used by graph traversals
// and ordering algorithms to track visited vertices with one bit per
// vertex, which keeps the tracking structure itself cache-friendly.
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New to allocate capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set able to hold bits 0..n-1, all initially clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet sets bit i and reports whether it was already set.
func (s *Set) TestAndSet(i int) bool {
	w, m := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := s.words[w]&m != 0
	s.words[w] |= m
	return old
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit without reallocating.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// NextClear returns the index of the first clear bit at or after from,
// or -1 if every bit in [from, Len) is set.
func (s *Set) NextClear(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= s.n {
		return -1
	}
	wi := from / wordBits
	// Treat bits below from as set so they are skipped.
	w := ^s.words[wi] &^ (1<<(uint(from)%wordBits) - 1)
	for {
		if w != 0 {
			i := wi*wordBits + bits.TrailingZeros64(w)
			if i < s.n {
				return i
			}
			return -1
		}
		wi++
		if wi >= len(s.words) {
			return -1
		}
		w = ^s.words[wi]
	}
}

// NextSet returns the index of the first set bit at or after from, or -1
// if there is none.
func (s *Set) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= s.n {
		return -1
	}
	wi := from / wordBits
	w := s.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		i := from + bits.TrailingZeros64(w)
		if i < s.n {
			return i
		}
		return -1
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			i := wi*wordBits + bits.TrailingZeros64(s.words[wi])
			if i < s.n {
				return i
			}
			return -1
		}
	}
	return -1
}
