package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Errorf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count after Clear = %d, want 7", got)
	}
}

func TestTestAndSet(t *testing.T) {
	s := New(10)
	if s.TestAndSet(3) {
		t.Error("TestAndSet on clear bit reported set")
	}
	if !s.TestAndSet(3) {
		t.Error("TestAndSet on set bit reported clear")
	}
	if !s.Test(3) {
		t.Error("bit 3 not set")
	}
}

func TestReset(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", s.Count())
	}
}

func TestNextClear(t *testing.T) {
	s := New(130)
	for i := 0; i < 130; i++ {
		s.Set(i)
	}
	if got := s.NextClear(0); got != -1 {
		t.Errorf("NextClear(full) = %d, want -1", got)
	}
	s.Clear(77)
	if got := s.NextClear(0); got != 77 {
		t.Errorf("NextClear(0) = %d, want 77", got)
	}
	if got := s.NextClear(77); got != 77 {
		t.Errorf("NextClear(77) = %d, want 77", got)
	}
	if got := s.NextClear(78); got != -1 {
		t.Errorf("NextClear(78) = %d, want -1", got)
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	if got := s.NextSet(0); got != -1 {
		t.Errorf("NextSet(empty) = %d, want -1", got)
	}
	s.Set(5)
	s.Set(200)
	if got := s.NextSet(0); got != 5 {
		t.Errorf("NextSet(0) = %d, want 5", got)
	}
	if got := s.NextSet(6); got != 200 {
		t.Errorf("NextSet(6) = %d, want 200", got)
	}
	if got := s.NextSet(201); got != -1 {
		t.Errorf("NextSet(201) = %d, want -1", got)
	}
	if got := s.NextSet(500); got != -1 {
		t.Errorf("NextSet(past end) = %d, want -1", got)
	}
}

// TestQuickAgainstMap drives a Set with random operations and compares
// against a map-based reference implementation.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		s := New(n)
		ref := make(map[int]bool)
		for op := 0; op < 1000; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Test(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		// NextSet walk must enumerate exactly the reference set.
		seen := 0
		for i := s.NextSet(0); i != -1; i = s.NextSet(i + 1) {
			if !ref[i] {
				return false
			}
			seen++
		}
		return seen == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNextClear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Set(i)
			}
		}
		from := rng.Intn(n)
		got := s.NextClear(from)
		want := -1
		for i := from; i < n; i++ {
			if !s.Test(i) {
				want = i
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
