package fair

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a Limiter's clock deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestLimiterBurstAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(2, 3) // 2 tokens/s, burst 3
	l.now = clk.now

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("take %d within burst rejected", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("4th take within the same instant admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after %v outside (0, 1s] at 2 tokens/s", retry)
	}
	// Another tenant has its own bucket.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("fresh tenant rejected")
	}
	// Half a second refills one token at 2/s.
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("refilled token rejected")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("second take after a one-token refill admitted")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatal("rate 0 must mean unlimited")
		}
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("a"); !ok {
		t.Fatal("nil limiter must admit")
	}
}

func TestLimiterTenantCap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(1, 1)
	l.now = clk.now
	for i := 0; i < maxTenantState+100; i++ {
		l.Allow(fmt.Sprintf("t%d", i))
		clk.advance(time.Millisecond)
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > maxTenantState {
		t.Fatalf("bucket map grew to %d, cap is %d", n, maxTenantState)
	}
}

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights(" vip=4, batch=1 ")
	if err != nil {
		t.Fatal(err)
	}
	if w.of("vip") != 4 || w.of("batch") != 1 || w.of("other") != 1 {
		t.Fatalf("weights parsed wrong: %v", w)
	}
	if w, err := ParseWeights(""); err != nil || w != nil {
		t.Fatalf("empty spec should be nil, nil; got %v, %v", w, err)
	}
	for _, bad := range []string{"vip", "vip=0", "vip=-1", "vip=x", "=3"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Fatalf("ParseWeights(%q) accepted", bad)
		}
	}
}

func TestMultiQueueFIFOWithinTenant(t *testing.T) {
	q := NewMultiQueue[int](nil)
	for i := 0; i < 5; i++ {
		q.Push("a", i)
	}
	for i := 0; i < 5; i++ {
		_, v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestMultiQueueInterleavesTenants is the fair-queueing core property:
// with equal weights, a tenant holding one item is served after at
// most one item from each other waiting tenant, no matter how deep the
// other queues are.
func TestMultiQueueInterleavesTenants(t *testing.T) {
	q := NewMultiQueue[int](nil)
	for i := 0; i < 100; i++ {
		q.Push("flood", i)
	}
	q.Push("quiet", 0)
	// The quiet tenant joined at the current virtual time, so it must be
	// popped within the first 2 grants.
	for i := 0; i < 2; i++ {
		tenant, _, ok := q.Pop()
		if !ok {
			t.Fatal("unexpected empty queue")
		}
		if tenant == "quiet" {
			return
		}
	}
	t.Fatal("quiet tenant's single item not served within 2 pops of a 100-deep flood")
}

func TestMultiQueueWeights(t *testing.T) {
	q := NewMultiQueue[int](Weights{"vip": 3})
	for i := 0; i < 40; i++ {
		q.Push("vip", i)
		q.Push("std", i)
	}
	vip := 0
	for i := 0; i < 20; i++ {
		tenant, _, _ := q.Pop()
		if tenant == "vip" {
			vip++
		}
	}
	// Weight 3:1 should give the vip tenant ~15 of the first 20 grants.
	if vip < 13 || vip > 17 {
		t.Fatalf("vip got %d of 20 grants at weight 3:1", vip)
	}
}

func TestGateImmediateWhenFree(t *testing.T) {
	g := NewGate(2, 4, nil)
	ctx := context.Background()
	if err := g.Acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	g.Release()
	g.Release()
}

func TestGateWaiterCapPerTenant(t *testing.T) {
	g := NewGate(1, 2, nil)
	ctx := context.Background()
	if err := g.Acquire(ctx, "a"); err != nil { // holds the only slot
		t.Fatal(err)
	}
	errs := make(chan error, 4)
	for i := 0; i < 2; i++ {
		go func() { errs <- g.Acquire(ctx, "flood") }()
	}
	waitFor(t, func() bool { return g.Waiting() == 2 })
	// The flooder's room is full; its own next arrival bounces...
	if err := g.Acquire(ctx, "flood"); !errors.Is(err, ErrWaitersFull) {
		t.Fatalf("3rd flood waiter got %v, want ErrWaitersFull", err)
	}
	// ...but another tenant still gets a seat.
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, "quiet") }()
	waitFor(t, func() bool { return g.Waiting() == 3 })

	g.Release() // one grant: quiet or flood, fair order
	g.Release()
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("quiet tenant: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("flood waiter: %v", err)
		}
	}
}

// TestGateStarvationBound is the deterministic fairness guarantee the
// e2e test exercises over HTTP: with the single slot held and a
// 10-deep flood queue already parked, a quiet tenant that then arrives
// is granted within 2 releases.
func TestGateStarvationBound(t *testing.T) {
	g := NewGate(1, 16, nil)
	ctx := context.Background()
	if err := g.Acquire(ctx, "hold"); err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 16)
	for i := 0; i < 10; i++ {
		go func() {
			if g.Acquire(ctx, "flood") == nil {
				grants <- "flood"
			}
		}()
	}
	waitFor(t, func() bool { return g.Waiting() == 10 })
	go func() {
		if g.Acquire(ctx, "quiet") == nil {
			grants <- "quiet"
		}
	}()
	waitFor(t, func() bool { return g.Waiting() == 11 })

	seen := []string{}
	for i := 0; i < 11; i++ {
		g.Release()
		seen = append(seen, <-grants)
	}
	quietAt := -1
	for i, tenant := range seen {
		if tenant == "quiet" {
			quietAt = i
		}
	}
	if quietAt < 0 || quietAt >= 2 {
		t.Fatalf("quiet tenant granted at position %d of %v; bound is 2", quietAt, seen)
	}
}

func TestGateCancelWhileWaiting(t *testing.T) {
	g := NewGate(1, 8, nil)
	bg := context.Background()
	if err := g.Acquire(bg, "hold"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	errCh := make(chan error, 1)
	go func() { errCh <- g.Acquire(ctx, "a") }()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("waiting = %d after cancellation", g.Waiting())
	}
	// The slot still works: release then reacquire immediately.
	g.Release()
	if err := g.Acquire(bg, "b"); err != nil {
		t.Fatal(err)
	}
	g.Release()
}

// TestGateSlotNeverLost hammers acquire/release/cancel from many
// goroutines and then verifies every slot is recoverable — the
// granted-vs-canceled race must hand raced slots onward, not leak them.
func TestGateSlotNeverLost(t *testing.T) {
	const slots = 4
	g := NewGate(slots, 64, nil)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%5)
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(j%3)*time.Millisecond)
				err := g.Acquire(ctx, tenant)
				if err == nil {
					g.Release()
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	// All slots must be reacquirable without blocking.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < slots; i++ {
		if err := g.Acquire(ctx, "final"); err != nil {
			t.Fatalf("slot %d lost: %v", i, err)
		}
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("fresh EWMA not 0")
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first observation should seed the value; got %v", e.Value())
	}
	e.Observe(200)
	if v := e.Value(); v != 150 {
		t.Fatalf("0.5-smoothed 100→200 = %v, want 150", v)
	}
}

// waitFor polls cond until true or the deadline; the gate delivers
// waiter registration asynchronously, so tests synchronize on state.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
