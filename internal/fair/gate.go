package fair

import (
	"context"
	"errors"
	"sync"
)

// ErrWaitersFull reports that a tenant's waiting room is at capacity —
// the signal the HTTP layer maps to 429.
var ErrWaitersFull = errors.New("fair: tenant waiting room full")

// Gate is a weighted-fair slot gate: up to `slots` holders at once,
// with waiters queued per tenant and granted in stride order. A
// flooding tenant therefore cannot push a quiet tenant's wait past one
// weighted round — with equal weights, at most one grant from every
// other waiting tenant plus one in-flight request sits between a quiet
// tenant's arrival and its grant, no matter how many waiters the
// flooder has parked. Each tenant's waiting room is capped; past the
// cap its own new arrivals are rejected without touching anyone else.
type Gate struct {
	mu      sync.Mutex // guards everything below; grants close waiter channels under it
	free    int
	perCap  int
	q       *MultiQueue[*waiter]
	live    map[string]int // un-granted, un-canceled waiters per tenant
	waiting int
}

type waiter struct {
	tenant   string
	ch       chan struct{}
	granted  bool
	canceled bool
}

// NewGate builds a gate with `slots` concurrent holders, a per-tenant
// waiting-room cap of perTenantCap, and the given scheduling weights.
func NewGate(slots, perTenantCap int, weights Weights) *Gate {
	if slots < 1 {
		slots = 1
	}
	if perTenantCap < 1 {
		perTenantCap = 1
	}
	return &Gate{
		free:   slots,
		perCap: perTenantCap,
		q:      NewMultiQueue[*waiter](weights),
		live:   make(map[string]int),
	}
}

// Acquire obtains a slot for tenant, waiting fairly if none is free.
// It returns ErrWaitersFull when the tenant's waiting room is at
// capacity and ctx.Err() when the context expires first. A nil return
// must be paired with Release.
func (g *Gate) Acquire(ctx context.Context, tenant string) error {
	if tenant == "" {
		tenant = DefaultTenant
	}
	g.mu.Lock()
	if g.free > 0 && g.waiting == 0 {
		g.free--
		g.mu.Unlock()
		return nil
	}
	if g.live[tenant] >= g.perCap {
		g.mu.Unlock()
		return ErrWaitersFull
	}
	w := &waiter{tenant: tenant, ch: make(chan struct{})}
	g.q.Push(tenant, w)
	g.live[tenant]++
	g.waiting++
	g.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The grant raced our cancellation: the slot is ours, but the
			// caller is leaving, so hand it straight to the next waiter.
			g.grantNextLocked()
		} else {
			w.canceled = true
			g.live[tenant]--
			g.waiting--
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot, handing it to the next waiter in weighted
// fair order if any.
func (g *Gate) Release() {
	g.mu.Lock()
	g.grantNextLocked()
	g.mu.Unlock()
}

// grantNextLocked gives one slot to the next un-canceled waiter, or
// banks it as free when nobody waits. Canceled waiters are discarded
// lazily here — their tenant accounting was already unwound.
func (g *Gate) grantNextLocked() {
	for {
		_, w, ok := g.q.Pop()
		if !ok {
			g.free++
			return
		}
		if w.canceled {
			continue
		}
		w.granted = true
		g.live[w.tenant]--
		g.waiting--
		close(w.ch)
		return
	}
}

// Waiting reports the number of live waiters — the queue length the
// load shedder turns into a wait estimate.
func (g *Gate) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}
