// Package fair holds the traffic-policy primitives of the serving
// tier: per-tenant token-bucket rate limiting, weighted fair queueing
// (stride scheduling) between tenants, a fair slot gate for read-path
// admission, and the EWMA the load shedders estimate wait times with.
//
// The package is deliberately separate from internal/server: the HTTP
// layer decides *where* policy applies (which routes, which headers)
// and this package decides *how* (when a request is admitted, which
// tenant goes next). CI greps keep the policy arithmetic out of the
// handler files.
package fair

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultTenant is the key used for traffic that carries no tenant
// identity (no X-Tenant header).
const DefaultTenant = "default"

// maxTenantState bounds the per-tenant maps a hostile client could
// grow by inventing tenant names; past it, state for idle tenants is
// discarded (they simply start fresh, which for a limiter means a
// full burst — safe, and bounded memory matters more).
const maxTenantState = 4096

// ---- token-bucket rate limiting ----------------------------------------

// Limiter applies a per-tenant token-bucket rate limit: every tenant
// gets its own bucket of `burst` tokens refilled at `rate` tokens per
// second. Rate <= 0 disables limiting (Allow always admits).
type Limiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter. burst <= 0 defaults to
// max(1, ceil(rate)) — one second of traffic.
func NewLimiter(rate float64, burst int) *Limiter {
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &Limiter{
		rate:    rate,
		burst:   b,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// Allow takes one token from tenant's bucket. When the bucket is
// empty it reports false plus how long until the next token exists —
// the Retry-After the HTTP layer should send with the 429.
func (l *Limiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTenantState {
			l.evictIdleLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	// Refill for the time elapsed since the last take, capped at burst.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictIdleLocked drops buckets that have been full (idle long enough
// to have refilled completely) — their state is indistinguishable from
// a fresh bucket anyway.
func (l *Limiter) evictIdleLocked(now time.Time) {
	for k, b := range l.buckets {
		dt := now.Sub(b.last).Seconds()
		if math.Min(l.burst, b.tokens+dt*l.rate) >= l.burst {
			delete(l.buckets, k)
		}
	}
	// Hostile churn can keep every bucket hot; bounded memory wins over
	// perfect accounting, so drop arbitrary entries past the cap.
	for k := range l.buckets {
		if len(l.buckets) < maxTenantState {
			break
		}
		delete(l.buckets, k)
	}
}

// ---- weighted stride scheduling -----------------------------------------

// strideOne is the stride numerator: a tenant of weight w advances its
// pass by strideOne/w per grant, so higher weights are picked
// proportionally more often.
const strideOne = 1 << 20

// Weights maps tenant name to scheduling weight. Missing tenants get
// weight 1; weights below 1 are treated as 1.
type Weights map[string]int

func (w Weights) of(tenant string) int64 {
	if v, ok := w[tenant]; ok && v > 1 {
		return int64(v)
	}
	return 1
}

// ParseWeights parses a "name=weight,name=weight" flag value.
func ParseWeights(s string) (Weights, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	w := make(Weights)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("fair: weight %q is not name=weight", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("fair: weight %q must be a positive integer", part)
		}
		w[name] = n
	}
	return w, nil
}

// MultiQueue is a weighted fair FIFO-of-FIFOs: items are pushed per
// tenant and popped in stride order — each tenant's items stay FIFO,
// and tenants share the pop rate in proportion to their weights, so a
// tenant that floods its own queue cannot delay another tenant's items
// by more than one weighted round. Not safe for concurrent use; the
// owner locks.
type MultiQueue[T any] struct {
	weights Weights
	queues  map[string][]T
	pass    map[string]int64
	vt      int64 // virtual time: pass of the most recent grant
	size    int
}

// NewMultiQueue builds an empty queue with the given tenant weights
// (nil = all weight 1).
func NewMultiQueue[T any](weights Weights) *MultiQueue[T] {
	return &MultiQueue[T]{
		weights: weights,
		queues:  make(map[string][]T),
		pass:    make(map[string]int64),
	}
}

// Push appends v to tenant's queue. A tenant (re)joining after idling
// starts at the current virtual time, so it cannot burn banked credit
// to monopolize the scheduler.
func (q *MultiQueue[T]) Push(tenant string, v T) {
	if len(q.queues[tenant]) == 0 {
		if p, ok := q.pass[tenant]; !ok || p < q.vt {
			q.pass[tenant] = q.vt
		}
		if len(q.pass) > maxTenantState {
			// Keep only passes of tenants with queued items; the rest
			// restart from the virtual time anyway.
			for k := range q.pass {
				if len(q.queues[k]) == 0 {
					delete(q.pass, k)
				}
			}
		}
	}
	q.queues[tenant] = append(q.queues[tenant], v)
	q.size++
}

// Pop removes and returns the next item under weighted fair order:
// the head of the non-empty tenant queue with the smallest pass
// (ties broken by tenant name for determinism).
func (q *MultiQueue[T]) Pop() (tenant string, v T, ok bool) {
	if q.size == 0 {
		return "", v, false
	}
	first := true
	var best string
	var bestPass int64
	for t, items := range q.queues {
		if len(items) == 0 {
			continue
		}
		p := q.pass[t]
		if first || p < bestPass || (p == bestPass && t < best) {
			first, best, bestPass = false, t, p
		}
	}
	items := q.queues[best]
	v = items[0]
	var zero T
	items[0] = zero // release the reference for GC
	if len(items) == 1 {
		delete(q.queues, best)
	} else {
		q.queues[best] = items[1:]
	}
	q.size--
	q.vt = bestPass
	q.pass[best] = bestPass + strideOne/q.weights.of(best)
	return best, v, true
}

// Len reports the total queued item count.
func (q *MultiQueue[T]) Len() int { return q.size }

// TenantLen reports one tenant's queued item count.
func (q *MultiQueue[T]) TenantLen(tenant string) int { return len(q.queues[tenant]) }

// Tenants returns the tenants with queued items, sorted.
func (q *MultiQueue[T]) Tenants() []string {
	out := make([]string, 0, len(q.queues))
	for t, items := range q.queues {
		if len(items) > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// ---- EWMA ---------------------------------------------------------------

// EWMA is a concurrency-safe exponentially weighted moving average,
// used to estimate service times for wait-estimate load shedding.
// The zero value (alpha 0) uses a default smoothing of 0.2.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	v     float64
	seen  bool
}

// NewEWMA builds an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Observe folds in one sample.
func (e *EWMA) Observe(v float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.alpha
	if a <= 0 || a > 1 {
		a = 0.2
	}
	if !e.seen {
		e.v, e.seen = v, true
		return
	}
	e.v = a*v + (1-a)*e.v
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v
}
