package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"strings"
	"testing"
)

// sameGraph compares all four CSR arrays — Equal only checks the out
// direction, but the parallel builders must reproduce the in-CSR
// bit-for-bit too.
func sameGraph(g, h *Graph) bool {
	return g.Equal(h) && slices.Equal(g.inIdx, h.inIdx) && slices.Equal(g.inAdj, h.inAdj)
}

// withParallelism runs fn with the ingest worker count forced to k and
// restores the automatic default afterwards.
func withParallelism(k int, fn func()) {
	SetIngestParallelism(k)
	defer SetIngestParallelism(0)
	fn()
}

// messyEdges generates an edge list with duplicates and self-loops —
// the shapes real SNAP/Konect files contain.
func messyEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		switch {
		case len(edges) > 0 && rng.Intn(4) == 0: // duplicate an earlier edge
			edges = append(edges, edges[rng.Intn(len(edges))])
		case rng.Intn(8) == 0: // self-loop
			u := NodeID(rng.Intn(n))
			edges = append(edges, Edge{u, u})
		default:
			edges = append(edges, Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))})
		}
	}
	return edges
}

func TestSetIngestParallelism(t *testing.T) {
	defer SetIngestParallelism(0)
	SetIngestParallelism(7)
	if got := IngestParallelism(); got != 7 {
		t.Fatalf("IngestParallelism() = %d, want 7", got)
	}
	SetIngestParallelism(-3)
	if got := IngestParallelism(); got != 0 {
		t.Fatalf("negative parallelism should clamp to automatic, got %d", got)
	}
	w, forced := ingestWorkers()
	if forced || w != runtime.GOMAXPROCS(0) {
		t.Fatalf("automatic workers = (%d, forced=%v), want (%d, false)", w, forced, runtime.GOMAXPROCS(0))
	}
}

// The parallel CSR builder must be bit-identical to the serial oracle
// on randomized graphs of varied size, duplicate density, and
// self-loop density — for both the plain and the dedup builder.
func TestParallelBuildMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(300)
		m := rng.Intn(8 * n)
		edges := messyEdges(rng, n, m)
		var want, wantDedup *Graph
		withParallelism(1, func() {
			want = FromEdges(n, edges)
			wantDedup = FromEdgesDedup(n, edges)
		})
		for _, workers := range []int{2, 3, 4, 8} {
			var got, gotDedup *Graph
			withParallelism(workers, func() {
				got = FromEdges(n, edges)
				gotDedup = FromEdgesDedup(n, edges)
			})
			if !sameGraph(want, got) {
				t.Fatalf("trial %d: FromEdges differs at %d workers (n=%d m=%d)", trial, workers, n, m)
			}
			if !sameGraph(wantDedup, gotDedup) {
				t.Fatalf("trial %d: FromEdgesDedup differs at %d workers (n=%d m=%d)", trial, workers, n, m)
			}
		}
	}
}

// Sharded construction (the form the parallel parser hands over) must
// equal single-slice construction regardless of how edges are split.
func TestShardedBuildMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(100)
		edges := messyEdges(rng, n, rng.Intn(5*n))
		want := FromEdges(n, edges)
		// Split into random contiguous shards.
		var shards [][]Edge
		for rest := edges; len(rest) > 0; {
			k := 1 + rng.Intn(len(rest))
			shards = append(shards, rest[:k])
			rest = rest[k:]
		}
		for _, workers := range []int{1, 4} {
			withParallelism(workers, func() {
				if got := build(n, shards, false); !sameGraph(want, got) {
					t.Fatalf("trial %d: sharded build differs at %d workers", trial, workers)
				}
			})
		}
	}
}

func TestOutOfRangePanicsParallel(t *testing.T) {
	defer SetIngestParallelism(0)
	SetIngestParallelism(4)
	defer func() {
		SetIngestParallelism(0)
		if recover() == nil {
			t.Error("expected panic on out-of-range edge under forced parallelism")
		}
	}()
	FromEdges(2, []Edge{{0, 1}, {1, 2}})
}

// writeMessyEdgeList renders edges as text with the whitespace and
// comment variety the parser must tolerate.
func writeMessyEdgeList(rng *rand.Rand, edges []Edge) []byte {
	var sb bytes.Buffer
	sb.WriteString("# header comment\n% konect-style comment\n")
	for _, e := range edges {
		switch rng.Intn(6) {
		case 0:
			sb.WriteString("\n") // blank line
		case 1:
			fmt.Fprintf(&sb, "# comment %d\n", rng.Intn(100))
		}
		sep := " "
		if rng.Intn(3) == 0 {
			sep = "\t"
		}
		lead := ""
		if rng.Intn(5) == 0 {
			lead = "  "
		}
		eol := "\n"
		if rng.Intn(7) == 0 {
			eol = "\r\n"
		}
		fmt.Fprintf(&sb, "%s%d%s%d%s", lead, e.From, sep, e.To, eol)
	}
	return sb.Bytes()
}

// The parallel parser must agree with the serial parser on randomized
// inputs — same graph, for every worker count, at every chunk split.
func TestParallelReadEdgeListMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		edges := messyEdges(rng, n, rng.Intn(6*n))
		data := writeMessyEdgeList(rng, edges)
		want, err := readEdgeListSerial(data)
		if err != nil {
			t.Fatalf("trial %d: serial parse: %v", trial, err)
		}
		for _, workers := range []int{2, 3, 5, 9} {
			got, err := readEdgeListParallel(data, workers)
			if err != nil {
				t.Fatalf("trial %d: parallel parse (%d workers): %v", trial, workers, err)
			}
			if !sameGraph(want, got) {
				t.Fatalf("trial %d: parallel parse differs at %d workers", trial, workers)
			}
		}
	}
}

// Malformed input must fail identically — same line number, same
// message — no matter which chunk the bad line lands in.
func TestParallelReadEdgeListErrorParity(t *testing.T) {
	badLines := []string{
		"17 oops\n",                // non-numeric field
		"17\n",                     // missing field
		"0 4294967296\n",           // past the NodeID range
		"99999999999999999999 1\n", // int64 overflow
	}
	mk := func(bad string, badLine, total int) []byte {
		var sb strings.Builder
		for i := 1; i <= total; i++ {
			if i == badLine {
				sb.WriteString(bad)
			} else {
				fmt.Fprintf(&sb, "%d %d\n", i, i+1)
			}
		}
		return []byte(sb.String())
	}
	for _, badLine := range []int{1, 13, 50, 99, 100} {
		bad := badLines[badLine%len(badLines)]
		data := mk(bad, badLine, 100)
		_, serialErr := readEdgeListSerial(data)
		if serialErr == nil {
			t.Fatalf("bad line %d: serial parse accepted malformed input", badLine)
		}
		for _, workers := range []int{2, 3, 7} {
			_, parallelErr := readEdgeListParallel(data, workers)
			if parallelErr == nil {
				t.Fatalf("bad line %d: parallel parse (%d workers) accepted malformed input", badLine, workers)
			}
			if parallelErr.Error() != serialErr.Error() {
				t.Fatalf("bad line %d, %d workers: error %q, serial says %q",
					badLine, workers, parallelErr, serialErr)
			}
		}
	}
}

// Chunk boundaries must never split a line: a file of wide multi-digit
// lines parsed with worker counts that place boundaries mid-number
// must match the serial parse exactly.
func TestParallelReadEdgeListChunkBoundaries(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 101; i++ {
		fmt.Fprintf(&sb, "%d %d\n", 1000000+i*7919, 2000000+i*104729)
	}
	data := []byte(sb.String())
	want, err := readEdgeListSerial(data)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 16; workers++ {
		got, err := readEdgeListParallel(data, workers)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if !sameGraph(want, got) {
			t.Fatalf("%d workers: parse differs from serial", workers)
		}
	}
}

// The public entry must produce identical results whichever path the
// knob selects.
func TestReadEdgeListBytesKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	edges := messyEdges(rng, 80, 400)
	data := writeMessyEdgeList(rng, edges)
	var want, got *Graph
	var err error
	withParallelism(1, func() { want, err = ReadEdgeListBytes(data) })
	if err != nil {
		t.Fatal(err)
	}
	withParallelism(6, func() { got, err = ReadEdgeListBytes(data) })
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(want, got) {
		t.Fatal("ReadEdgeListBytes differs between serial and forced-parallel")
	}
}

// Undirected's merge-based closure must equal the edge-expansion
// oracle it replaced, in both directions, at any worker count.
func TestUndirectedMatchesExpansionOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(150)
		g := FromEdges(n, messyEdges(rng, n, rng.Intn(6*n)))
		expanded := make([]Edge, 0, 2*int(g.NumEdges()))
		g.Edges(func(u, v NodeID) bool {
			expanded = append(expanded, Edge{u, v}, Edge{v, u})
			return true
		})
		var want *Graph
		withParallelism(1, func() { want = FromEdgesDedup(n, expanded) })
		for _, workers := range []int{1, 4} {
			withParallelism(workers, func() {
				if got := g.Undirected(); !sameGraph(want, got) {
					t.Fatalf("trial %d: Undirected differs from oracle at %d workers", trial, workers)
				}
			})
		}
	}
}

// ReadBinary must reproduce the original graph exactly — including
// the derived in-CSR — serial and parallel.
func TestReadBinaryDirectMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(120)
		g := FromEdges(n, messyEdges(rng, n, rng.Intn(6*n)))
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			withParallelism(workers, func() {
				h, err := ReadBinaryBytes(buf.Bytes())
				if err != nil {
					t.Fatalf("trial %d (%d workers): %v", trial, workers, err)
				}
				if !sameGraph(g, h) {
					t.Fatalf("trial %d (%d workers): binary round trip differs", trial, workers)
				}
			})
		}
	}
}

// A hand-crafted binary file with unsorted neighbour lists must come
// out sorted — the invariant FromEdges used to restore on load.
func TestReadBinarySortsUnsortedAdjacency(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	binary.Write(&buf, binary.LittleEndian, [2]int64{3, 3})
	binary.Write(&buf, binary.LittleEndian, []int64{0, 3, 3, 3})
	binary.Write(&buf, binary.LittleEndian, []NodeID{2, 0, 1}) // unsorted
	g, err := ReadBinaryBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := FromEdges(3, []Edge{{0, 2}, {0, 0}, {0, 1}})
	if !sameGraph(want, g) {
		t.Fatalf("out(0) = %v, want sorted [0 1 2]", g.OutNeighbors(0))
	}
}

func TestReadBinaryBytesRejectsGarbage(t *testing.T) {
	mk := func(parts ...any) []byte {
		var buf bytes.Buffer
		buf.Write(binaryMagic[:])
		for _, p := range parts {
			binary.Write(&buf, binary.LittleEndian, p)
		}
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"empty":             nil,
		"wrong magic":       []byte("NOTAGRPH stuff"),
		"truncated header":  mk(int64(4)),
		"negative n":        mk([2]int64{-1, 0}),
		"implausible n":     mk([2]int64{1 << 40, 0}),
		"missing offsets":   mk([2]int64{4, 2}),
		"bad first offset":  mk([2]int64{1, 1}, []int64{1, 1}, []NodeID{0}),
		"offset mismatch":   mk([2]int64{1, 2}, []int64{0, 1}, []NodeID{0, 0}),
		"non-monotone":      mk([2]int64{2, 1}, []int64{0, 2, 1}, []NodeID{0}),
		"missing adjacency": mk([2]int64{2, 3}, []int64{0, 2, 3}),
		"neighbour range":   mk([2]int64{2, 2}, []int64{0, 1, 2}, []NodeID{0, 7}),
	}
	for name, data := range cases {
		if _, err := ReadBinaryBytes(data); err == nil {
			t.Errorf("%s: ReadBinaryBytes accepted corrupt input", name)
		}
	}
}

// The direct binary loader must not materialize an O(m) []Edge slice:
// total allocation during the load stays within the graph's own CSR
// footprint plus bounded slack. The old pipeline allocated an 8m-byte
// edge list plus a second CSR build, which busts this budget at the
// sizes below.
func TestReadBinaryAllocationBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 14
	m := 1 << 18
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
	}
	g := FromEdges(n, edges)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Budget: out/in offset arrays, out/in adjacency arrays, the
	// scatter cursor, and 1 MiB of slack for everything else. The
	// eliminated []Edge alone is 8m = 2 MiB over this.
	budget := uint64(2*8*(n+1) + 2*4*m + 8*n + 1<<20)
	for _, workers := range []int{1, 4} {
		withParallelism(workers, func() {
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			h, err := ReadBinaryBytes(data)
			runtime.ReadMemStats(&after)
			if err != nil {
				t.Fatal(err)
			}
			if !sameGraph(g, h) {
				t.Fatalf("%d workers: loaded graph differs", workers)
			}
			if delta := after.TotalAlloc - before.TotalAlloc; delta > budget {
				t.Errorf("%d workers: ReadBinaryBytes allocated %d bytes, budget %d — is an edge list being materialized?",
					workers, delta, budget)
			}
		})
	}
}
