package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync/atomic"
)

// The datasets the paper downloads come as whitespace-separated edge
// lists ("u v" per line, # comments). We support that format plus a
// compact binary CSR format for fast reloading of generated datasets.
//
// Both loaders are parallel by default: the edge list is split into
// line-aligned chunks parsed on ingestWorkers() goroutines, and the
// binary format feeds its decoded CSR straight to fromCSR. See
// parallel.go for the worker-count knob and serial fallback rules.

// ReadEdgeList parses a text edge list. Lines starting with '#' or '%'
// are comments; blank lines are skipped. The vertex count is
// max(endpoint)+1 — the convention SNAP and Konect files follow.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return ReadEdgeListBytes(data)
}

// ReadEdgeListBytes parses a text edge list already held in memory,
// skipping the io.Reader copy — the daemon's upload path and the CLI's
// file loads land here.
func ReadEdgeListBytes(data []byte) (*Graph, error) {
	workers, forced := ingestWorkers()
	if workers <= 1 || (!forced && len(data) < serialByteCutoff) {
		return readEdgeListSerial(data)
	}
	return readEdgeListParallel(data, workers)
}

// nextLine splits data at the first '\n', stripping a trailing '\r'
// from the returned line (CRLF input), mirroring bufio.ScanLines.
func nextLine(data []byte) (line, rest []byte) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line, rest = data[:i], data[i+1:]
	} else {
		line, rest = data, nil
	}
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, rest
}

// parseEdgeLine parses one edge-list line. skip reports a comment or
// blank line; errors are returned bare for the caller to wrap with the
// global line number.
func parseEdgeLine(line []byte) (u, v int64, skip bool, err error) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	if i == len(line) || line[i] == '#' || line[i] == '%' {
		return 0, 0, true, nil
	}
	u, rest, err := parseUint(line[i:])
	if err != nil {
		return 0, 0, false, err
	}
	v, _, err = parseUint(rest)
	if err != nil {
		return 0, 0, false, err
	}
	// NodeID is uint32; an endpoint past math.MaxUint32 would wrap in
	// the NodeID(u) conversion and silently corrupt the edge, so refuse
	// the file outright.
	if u > math.MaxUint32 || v > math.MaxUint32 {
		return 0, 0, false, fmt.Errorf("endpoint %d exceeds the 32-bit NodeID range", max(u, v))
	}
	return u, v, false, nil
}

// parseUint reads one decimal field from b, returning the value and
// the remainder after the field. The digits are accumulated in place —
// no string conversion, no allocation — because this is the hot path
// of every text-format load.
func parseUint(b []byte) (int64, []byte, error) {
	i := 0
	for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
		i++
	}
	start := i
	var v int64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		d := int64(b[i] - '0')
		if v > (math.MaxInt64-d)/10 {
			return 0, nil, errors.New("integer field overflows int64")
		}
		v = v*10 + d
		i++
	}
	if i == start {
		return 0, nil, errors.New("expected integer field")
	}
	return v, b[i:], nil
}

// readEdgeListSerial is the single-goroutine oracle the parallel
// parser is tested against.
func readEdgeListSerial(data []byte) (*Graph, error) {
	edges := make([]Edge, 0, len(data)/16+1)
	maxID := int64(-1)
	lineNo := 0
	for len(data) > 0 {
		var line []byte
		line, data = nextLine(data)
		lineNo++
		u, v, skip, err := parseEdgeLine(line)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if skip {
			continue
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{NodeID(u), NodeID(v)})
	}
	return FromEdges(int(maxID+1), edges), nil
}

// readEdgeListParallel splits data into line-aligned chunks and parses
// them concurrently. The per-chunk edge slices are handed to the CSR
// builder as shards in chunk order, which preserves the exact edge
// sequence of a serial parse; per-chunk line counts reconstruct global
// line numbers for error messages.
func readEdgeListParallel(data []byte, workers int) (*Graph, error) {
	shards, maxID, _, errLine, err := parseBlock(data, workers)
	if err != nil {
		return nil, fmt.Errorf("graph: line %d: %w", errLine, err)
	}
	return build(int(maxID+1), shards, false), nil
}

// parseBlock parses one block of edge-list text into per-worker edge
// shards, splitting it into line-aligned chunks parsed concurrently.
// Shard concatenation order equals the serial edge sequence. It
// returns the shards, the largest endpoint seen (-1 if none), the
// number of lines consumed, and on failure the bare parse error with
// its block-local 1-based line number. The streaming loader calls this
// once per buffered block; the buffered loader once for the whole file.
func parseBlock(data []byte, workers int) (shards [][]Edge, maxID int64, lines, errLine int, err error) {
	starts := chunkStarts(data, workers)
	type chunkResult struct {
		edges   []Edge
		maxID   int64
		lines   int // lines consumed (up to and including an erroring one)
		err     error
		errLine int // chunk-local line number of err
	}
	chunks := make([]chunkResult, len(starts))
	runParallel(len(starts), func(w int) {
		c := &chunks[w]
		c.maxID = -1
		end := len(data)
		if w+1 < len(starts) {
			end = starts[w+1]
		}
		part := data[starts[w]:end]
		c.edges = make([]Edge, 0, len(part)/16+1)
		for len(part) > 0 {
			var line []byte
			line, part = nextLine(part)
			c.lines++
			u, v, skip, err := parseEdgeLine(line)
			if err != nil {
				c.err, c.errLine = err, c.lines
				return
			}
			if skip {
				continue
			}
			if u > c.maxID {
				c.maxID = u
			}
			if v > c.maxID {
				c.maxID = v
			}
			c.edges = append(c.edges, Edge{NodeID(u), NodeID(v)})
		}
	})
	// The earliest erroring chunk holds the first bad line, and every
	// chunk before it parsed to completion, so its line count prefix is
	// exact — the reported line number matches the serial parse.
	maxID = -1
	shards = make([][]Edge, 0, len(chunks))
	for i := range chunks {
		c := &chunks[i]
		if c.err != nil {
			return nil, 0, 0, lines + c.errLine, c.err
		}
		lines += c.lines
		if c.maxID > maxID {
			maxID = c.maxID
		}
		shards = append(shards, c.edges)
	}
	return shards, maxID, lines, 0, nil
}

// chunkStarts returns strictly increasing chunk start offsets, each
// aligned to the byte after a '\n', so no line straddles two chunks.
func chunkStarts(data []byte, workers int) []int {
	starts := make([]int, 1, workers)
	for w := 1; w < workers; w++ {
		p := int(int64(len(data)) * int64(w) / int64(workers))
		if p <= starts[len(starts)-1] {
			continue
		}
		j := bytes.IndexByte(data[p:], '\n')
		if j < 0 {
			break
		}
		p += j + 1
		if p > starts[len(starts)-1] && p < len(data) {
			starts = append(starts, p)
		}
	}
	return starts
}

// WriteEdgeList writes g as a text edge list with a descriptive header
// comment, in CSR order.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# directed graph: %d nodes %d edges\n", g.n, g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v NodeID) bool {
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// The binary format's 8-byte magic is a 7-byte prefix plus a format-
// version byte. Version '1' (v0) is the original layout: magic,
// header, arrays, nothing after. Version '2' (v1) appends a CRC32-IEEE
// footer over everything before it, so torn or bit-flipped files are
// detected on load. WriteBinary emits v1; readers accept both.
var (
	binaryMagic   = [8]byte{'G', 'O', 'R', 'D', 'C', 'S', 'R', '1'} // v0: no footer
	binaryMagicV1 = [8]byte{'G', 'O', 'R', 'D', 'C', 'S', 'R', '2'} // v1: CRC32 footer
)

// Sentinel errors for binary-graph decoding. Callers that manage
// stored blobs (internal/store) use these to tell corruption — a
// truncated payload or a checksum mismatch, where the blob must be
// discarded — from a format mismatch, where the bytes were never a
// gorder binary graph at all.
var (
	// ErrBadMagic reports bytes that are not a gorder binary graph
	// (wrong magic or an unknown format version).
	ErrBadMagic = errors.New("not a gorder binary graph file")
	// ErrTruncated reports a structurally valid prefix that ends before
	// the header, arrays, or checksum footer are complete.
	ErrTruncated = errors.New("truncated binary graph file")
	// ErrChecksum reports a v1 file whose CRC32 footer does not match
	// its contents.
	ErrChecksum = errors.New("binary graph checksum mismatch")
)

// WriteBinary writes g in the compact binary CSR format (v1): magic
// with version byte, n, m, the out-offset and out-adjacency arrays
// little-endian, then a CRC32-IEEE footer over all preceding bytes.
// The in-direction is rebuilt on load.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sum := crc32.NewIEEE()
	cw := io.MultiWriter(bw, sum)
	if _, err := cw.Write(binaryMagicV1[:]); err != nil {
		return err
	}
	hdr := [2]int64{int64(g.n), g.NumEdges()}
	if err := binary.Write(cw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, g.outIdx); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, sum.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary loads a graph written by WriteBinary (either format
// version). The decoded out-CSR arrays become the graph's storage
// directly and the in-CSR is derived by a counting pass — no
// intermediate edge list, so peak load memory is the graph itself plus
// the raw payload.
func ReadBinary(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading payload: %w", err)
	}
	return ReadBinaryBytes(data)
}

// ReadBinaryBytes decodes a binary CSR graph already held in memory
// (an upload body, an mmap) without ReadBinary's payload copy. It
// accepts both format versions and verifies the v1 checksum footer;
// failures wrap ErrBadMagic, ErrTruncated, or ErrChecksum.
func ReadBinaryBytes(data []byte) (*Graph, error) {
	if len(data) < 8 || [7]byte(data[:7]) != [7]byte(binaryMagic[:7]) {
		return nil, fmt.Errorf("graph: %w", ErrBadMagic)
	}
	switch data[7] {
	case binaryMagic[7]: // v0: no footer
		return readBinaryPayload(data[8:])
	case binaryMagicV1[7]: // v1: verify and strip the CRC32 footer
		if len(data) < 12 {
			return nil, fmt.Errorf("graph: reading checksum footer: %w", ErrTruncated)
		}
		body, foot := data[:len(data)-4], data[len(data)-4:]
		want := binary.LittleEndian.Uint32(foot)
		if got := crc32.ChecksumIEEE(body); got != want {
			return nil, fmt.Errorf("graph: %w (file says %08x, contents sum to %08x)",
				ErrChecksum, want, got)
		}
		return readBinaryPayload(body[8:])
	default:
		return nil, fmt.Errorf("graph: %w (unknown format version %q)", ErrBadMagic, data[7])
	}
}

func readBinaryPayload(b []byte) (*Graph, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("graph: reading header: %w", ErrTruncated)
	}
	n := int64(binary.LittleEndian.Uint64(b))
	m := int64(binary.LittleEndian.Uint64(b[8:]))
	if n < 0 || m < 0 || n > 1<<32 {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, m)
	}
	b = b[16:]
	// Size checks precede every allocation so a corrupt header cannot
	// provoke a huge make.
	if int64(len(b)) < (n+1)*8 {
		return nil, fmt.Errorf("graph: reading offsets: %w", ErrTruncated)
	}
	outIdx := make([]int64, n+1)
	for i := range outIdx {
		outIdx[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	b = b[(n+1)*8:]
	if outIdx[0] != 0 || outIdx[n] != m {
		return nil, errors.New("graph: corrupt offset array")
	}
	for i := int64(0); i < n; i++ {
		if outIdx[i] > outIdx[i+1] {
			return nil, errors.New("graph: non-monotone offset array")
		}
	}
	if int64(len(b)) < m*4 {
		return nil, fmt.Errorf("graph: reading adjacency: %w", ErrTruncated)
	}
	outAdj := make([]NodeID, m)
	var badNeighbor atomic.Int64
	badNeighbor.Store(-1)
	workers := csrWorkers(m)
	runParallel(workers, func(w int) {
		lo, hi := span(int(m), workers, w)
		for i := lo; i < hi; i++ {
			v := binary.LittleEndian.Uint32(b[i*4:])
			if int64(v) >= n {
				badNeighbor.Store(int64(v))
			}
			outAdj[i] = NodeID(v)
		}
	})
	if v := badNeighbor.Load(); v >= 0 {
		return nil, fmt.Errorf("graph: neighbour %d out of range", v)
	}
	return fromCSR(int(n), outIdx, outAdj), nil
}
