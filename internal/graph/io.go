package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// The datasets the paper downloads come as whitespace-separated edge
// lists ("u v" per line, # comments). We support that format plus a
// compact binary CSR format for fast reloading of generated datasets.

// ReadEdgeList parses a text edge list. Lines starting with '#' or '%'
// are comments; blank lines are skipped. The vertex count is
// max(endpoint)+1 — the convention SNAP and Konect files follow.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		// Trim leading spaces and skip comments/blanks.
		i := 0
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i == len(line) || line[i] == '#' || line[i] == '%' {
			continue
		}
		u, rest, err := parseUint(line[i:])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		v, _, err := parseUint(rest)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		// NodeID is uint32; an endpoint past math.MaxUint32 would wrap
		// in the NodeID(u) conversion below and silently corrupt the
		// edge, so refuse the file outright.
		if u > math.MaxUint32 || v > math.MaxUint32 {
			return nil, fmt.Errorf("graph: line %d: endpoint %d exceeds the 32-bit NodeID range", lineNo, max(u, v))
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{NodeID(u), NodeID(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return FromEdges(int(maxID+1), edges), nil
}

// parseUint reads one decimal field from b, returning the value and
// the remainder after the field and any following separator space.
func parseUint(b []byte) (int64, []byte, error) {
	i := 0
	for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
		i++
	}
	start := i
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		i++
	}
	if i == start {
		return 0, nil, errors.New("expected integer field")
	}
	v, err := strconv.ParseInt(string(b[start:i]), 10, 64)
	if err != nil {
		return 0, nil, err
	}
	return v, b[i:], nil
}

// WriteEdgeList writes g as a text edge list with a descriptive header
// comment, in CSR order.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# directed graph: %d nodes %d edges\n", g.n, g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v NodeID) bool {
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

var binaryMagic = [8]byte{'G', 'O', 'R', 'D', 'C', 'S', 'R', '1'}

// WriteBinary writes g in the compact binary CSR format: magic, n, m,
// then the out-offset and out-adjacency arrays little-endian. The
// in-direction is rebuilt on load.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := [2]int64{int64(g.n), g.NumEdges()}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outIdx); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("graph: not a gorder binary graph file")
	}
	var hdr [2]int64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n, m := hdr[0], hdr[1]
	if n < 0 || m < 0 || n > 1<<32 {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, m)
	}
	outIdx := make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, outIdx); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if outIdx[0] != 0 || outIdx[n] != m {
		return nil, errors.New("graph: corrupt offset array")
	}
	for i := int64(0); i < n; i++ {
		if outIdx[i] > outIdx[i+1] {
			return nil, errors.New("graph: non-monotone offset array")
		}
	}
	outAdj := make([]NodeID, m)
	if err := binary.Read(br, binary.LittleEndian, outAdj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	edges := make([]Edge, 0, m)
	for u := int64(0); u < n; u++ {
		for _, v := range outAdj[outIdx[u]:outIdx[u+1]] {
			if int64(v) >= n {
				return nil, fmt.Errorf("graph: neighbour %d out of range", v)
			}
			edges = append(edges, Edge{NodeID(u), v})
		}
	}
	return FromEdges(int(n), edges), nil
}
