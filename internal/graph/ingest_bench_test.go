package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"testing"
)

// Ingest benchmarks: edge-list parsing, CSR construction, and the
// binary loader, serial vs parallel. scripts/bench_ingest.sh runs
// these and records BENCH_ingest.json. The workload is a ~1M-edge
// random graph — big enough that the parallel paths engage even in
// automatic mode.

var benchIngest struct {
	once  sync.Once
	n     int
	edges []Edge
	text  []byte // edge-list rendering of edges
	bin   []byte // binary CSR rendering
}

func benchSetup(b *testing.B) {
	benchIngest.once.Do(func() {
		rng := rand.New(rand.NewSource(42))
		n := 1 << 17
		m := 1 << 20
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
		}
		text := make([]byte, 0, 14*m)
		for _, e := range edges {
			text = strconv.AppendUint(text, uint64(e.From), 10)
			text = append(text, ' ')
			text = strconv.AppendUint(text, uint64(e.To), 10)
			text = append(text, '\n')
		}
		g := FromEdges(n, edges)
		var bb bytes.Buffer
		if err := g.WriteBinary(&bb); err != nil {
			panic(err)
		}
		benchIngest.n = n
		benchIngest.edges = edges
		benchIngest.text = text
		benchIngest.bin = bb.Bytes()
	})
	b.Helper()
}

// benchParallelisms is the worker-count axis: the serial oracle, a
// fixed 4-way point for cross-machine comparability, and whatever this
// machine's GOMAXPROCS gives (skipped if it duplicates an earlier
// point).
func benchParallelisms() []int {
	ps := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		ps = append(ps, p)
	}
	return ps
}

func benchLabel(k int) string {
	if k == 1 {
		return "serial"
	}
	return fmt.Sprintf("parallel-p%d", k)
}

func BenchmarkReadEdgeList(b *testing.B) {
	benchSetup(b)
	for _, k := range benchParallelisms() {
		b.Run(benchLabel(k), func(b *testing.B) {
			SetIngestParallelism(k)
			defer SetIngestParallelism(0)
			b.SetBytes(int64(len(benchIngest.text)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReadEdgeListBytes(benchIngest.text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFromEdges(b *testing.B) {
	benchSetup(b)
	for _, k := range benchParallelisms() {
		b.Run(benchLabel(k), func(b *testing.B) {
			SetIngestParallelism(k)
			defer SetIngestParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FromEdges(benchIngest.n, benchIngest.edges)
			}
		})
	}
}

func BenchmarkReadBinary(b *testing.B) {
	benchSetup(b)
	for _, k := range benchParallelisms() {
		b.Run("direct-"+benchLabel(k), func(b *testing.B) {
			SetIngestParallelism(k)
			defer SetIngestParallelism(0)
			b.SetBytes(int64(len(benchIngest.bin)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReadBinaryBytes(benchIngest.bin); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The pre-optimization pipeline, kept here as the regression
	// reference: decode, materialize an []Edge, rebuild both CSR
	// directions from scratch.
	b.Run("via-edges-reference", func(b *testing.B) {
		SetIngestParallelism(1)
		defer SetIngestParallelism(0)
		b.SetBytes(int64(len(benchIngest.bin)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := readBinaryViaEdges(benchIngest.bin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// readBinaryViaEdges reproduces the old ReadBinary pipeline for the
// benchmark baseline: decode the CSR payload, expand it to an O(m)
// edge list, and hand that to FromEdges.
func readBinaryViaEdges(data []byte) (*Graph, error) {
	b := data[len(binaryMagic)+16:]
	n := int64(binary.LittleEndian.Uint64(data[len(binaryMagic):]))
	m := int64(binary.LittleEndian.Uint64(data[len(binaryMagic)+8:]))
	outIdx := make([]int64, n+1)
	for i := range outIdx {
		outIdx[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	b = b[(n+1)*8:]
	outAdj := make([]NodeID, m)
	for i := range outAdj {
		outAdj[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	edges := make([]Edge, 0, m)
	for u := int64(0); u < n; u++ {
		for _, v := range outAdj[outIdx[u]:outIdx[u+1]] {
			edges = append(edges, Edge{NodeID(u), v})
		}
	}
	return FromEdges(int(n), edges), nil
}
