package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment

0 1
0	2
  1 3
3 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d, want 4, 4", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(3, 0) {
		t.Error("missing parsed edges")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0", "a b", "0 x", "0 99999999999999999999"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", bad)
		}
	}
}

func TestReadEdgeListRejectsOutOfRangeEndpoints(t *testing.T) {
	// NodeID is uint32: endpoints past math.MaxUint32 must be rejected,
	// not silently truncated by the NodeID(u) conversion.
	cases := map[string]string{
		"source too large": "4294967296 1\n",
		"target too large": "0 1\n1 4294967296\n",
		"way too large":    "0 1099511627776\n",
	}
	for name, in := range cases {
		_, err := ReadEdgeList(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "NodeID range") {
			t.Errorf("%s: error %v does not mention the NodeID range", name, err)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("edge list round trip changed the graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("binary round trip changed the graph")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a graph file at all"),
		append(append([]byte{}, binaryMagic[:]...), 0xFF), // truncated header
	}
	for i, b := range cases {
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: ReadBinary succeeded on garbage", i)
		}
	}
}

// TestReadBinaryErrorSentinels pins the corruption-vs-format-mismatch
// contract internal/store relies on: bad magic and unknown versions
// wrap ErrBadMagic, short files wrap ErrTruncated, and a v1 file with
// a flipped byte wraps ErrChecksum.
func TestReadBinaryErrorSentinels(t *testing.T) {
	var buf bytes.Buffer
	if err := diamond().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := buf.Bytes()

	check := func(name string, data []byte, want error) {
		t.Helper()
		_, err := ReadBinaryBytes(data)
		if !errors.Is(err, want) {
			t.Errorf("%s: error %v, want %v", name, err, want)
		}
	}
	check("empty", nil, ErrBadMagic)
	check("wrong magic", []byte("NOTAGRPHxxxxxxxx"), ErrBadMagic)
	check("unknown version", append([]byte("GORDCSR9"), v1[8:]...), ErrBadMagic)
	check("magic only", v1[:8], ErrTruncated)
	// A longer cut of a v1 file leaves 4 trailing bytes that misread as
	// the footer, so the CRC check reports it — still corruption-class,
	// just via the checksum sentinel.
	check("mid-header cut", v1[:12], ErrChecksum)
	check("mid-array cut", v1[:len(v1)-6], ErrChecksum)

	flipped := append([]byte(nil), v1...)
	flipped[10] ^= 0x01
	check("flipped header byte", flipped, ErrChecksum)
	flipped = append([]byte(nil), v1...)
	flipped[len(flipped)-1] ^= 0x01
	check("flipped footer byte", flipped, ErrChecksum)

	// A truncated v0 file has no footer to fail first: the payload
	// checks themselves must classify it.
	var v0 bytes.Buffer
	v0.Write(binaryMagic[:])
	binary.Write(&v0, binary.LittleEndian, [2]int64{3, 3})
	binary.Write(&v0, binary.LittleEndian, []int64{0, 3, 3, 3})
	check("v0 missing adjacency", v0.Bytes(), ErrTruncated)
}

// TestReadBinaryAcceptsV0 guards backward compatibility: files in the
// original footer-less layout (version byte '1') still load and equal
// their v1 round trip.
func TestReadBinaryAcceptsV0(t *testing.T) {
	g := diamond()
	var v0 bytes.Buffer
	v0.Write(binaryMagic[:])
	binary.Write(&v0, binary.LittleEndian, [2]int64{int64(g.NumNodes()), g.NumEdges()})
	binary.Write(&v0, binary.LittleEndian, g.OutIndex())
	binary.Write(&v0, binary.LittleEndian, g.OutAdjacency())
	h, err := ReadBinaryBytes(v0.Bytes())
	if err != nil {
		t.Fatalf("v0 file rejected: %v", err)
	}
	if !g.Equal(h) {
		t.Error("v0 load changed the graph")
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(5*n))
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 1+rng.Intn(4*n))
		// Ensure the max vertex appears so n survives the trip: add a
		// self-loop on n-1.
		g = FromEdges(n, appendEdges(g, Edge{NodeID(n - 1), NodeID(n - 1)}))
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func appendEdges(g *Graph, extra ...Edge) []Edge {
	var edges []Edge
	g.Edges(func(u, v NodeID) bool {
		edges = append(edges, Edge{u, v})
		return true
	})
	return append(edges, extra...)
}
