package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment

0 1
0	2
  1 3
3 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d, want 4, 4", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(3, 0) {
		t.Error("missing parsed edges")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0", "a b", "0 x", "0 99999999999999999999"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", bad)
		}
	}
}

func TestReadEdgeListRejectsOutOfRangeEndpoints(t *testing.T) {
	// NodeID is uint32: endpoints past math.MaxUint32 must be rejected,
	// not silently truncated by the NodeID(u) conversion.
	cases := map[string]string{
		"source too large": "4294967296 1\n",
		"target too large": "0 1\n1 4294967296\n",
		"way too large":    "0 1099511627776\n",
	}
	for name, in := range cases {
		_, err := ReadEdgeList(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "NodeID range") {
			t.Errorf("%s: error %v does not mention the NodeID range", name, err)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("edge list round trip changed the graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("binary round trip changed the graph")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a graph file at all"),
		append(append([]byte{}, binaryMagic[:]...), 0xFF), // truncated header
	}
	for i, b := range cases {
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: ReadBinary succeeded on garbage", i)
		}
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(5*n))
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		h, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 1+rng.Intn(4*n))
		// Ensure the max vertex appears so n survives the trip: add a
		// self-loop on n-1.
		g = FromEdges(n, appendEdges(g, Edge{NodeID(n - 1), NodeID(n - 1)}))
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func appendEdges(g *Graph, extra ...Edge) []Edge {
	var edges []Edge
	g.Edges(func(u, v NodeID) bool {
		edges = append(edges, Edge{u, v})
		return true
	})
	return append(edges, extra...)
}
