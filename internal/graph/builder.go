package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed edge used when constructing a Graph.
type Edge struct {
	From, To NodeID
}

// FromEdges builds a Graph with n vertices from the given directed
// edge list. Parallel edges are kept (the benchmark datasets may
// contain them); use FromEdgesDedup to collapse them. It panics if an
// endpoint is out of range or n is negative.
func FromEdges(n int, edges []Edge) *Graph {
	return build(n, edges, false)
}

// FromEdgesDedup builds a Graph with n vertices, collapsing duplicate
// edges. Self-loops are kept: the paper's kernels tolerate them and
// some web crawls contain them.
func FromEdgesDedup(n int, edges []Edge) *Graph {
	return build(n, edges, true)
}

func build(n int, edges []Edge, dedup bool) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	for _, e := range edges {
		if int(e.From) >= n || int(e.To) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.From, e.To, n))
		}
	}
	g := &Graph{n: n}
	g.outIdx, g.outAdj = buildCSR(n, edges, false, dedup)
	g.inIdx, g.inAdj = buildCSR(n, edges, true, dedup)
	if dedup && len(g.outAdj) != len(g.inAdj) {
		// Dedup must agree in both directions; a mismatch means a bug.
		panic("graph: inconsistent dedup between directions")
	}
	return g
}

// buildCSR counting-sorts edges into a CSR array. With reverse set the
// edge direction is flipped, producing the in-adjacency. Each
// neighbour list comes out sorted ascending.
func buildCSR(n int, edges []Edge, reverse, dedup bool) (idx []int64, adj []NodeID) {
	idx = make([]int64, n+1)
	for _, e := range edges {
		src := e.From
		if reverse {
			src = e.To
		}
		idx[src+1]++
	}
	for i := 0; i < n; i++ {
		idx[i+1] += idx[i]
	}
	adj = make([]NodeID, len(edges))
	cursor := make([]int64, n)
	copy(cursor, idx[:n])
	for _, e := range edges {
		src, dst := e.From, e.To
		if reverse {
			src, dst = dst, src
		}
		adj[cursor[src]] = dst
		cursor[src]++
	}
	for u := 0; u < n; u++ {
		lst := adj[idx[u]:idx[u+1]]
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
	}
	if !dedup {
		return idx, adj
	}
	// Collapse duplicates in place, then compact.
	newIdx := make([]int64, n+1)
	w := int64(0)
	for u := 0; u < n; u++ {
		newIdx[u] = w
		var prev NodeID
		first := true
		for _, v := range adj[idx[u]:idx[u+1]] {
			if first || v != prev {
				adj[w] = v
				w++
				prev, first = v, false
			}
		}
	}
	newIdx[n] = w
	return newIdx, adj[:w:w]
}

// Undirected returns the symmetric closure of g: for every edge (u,v)
// both (u,v) and (v,u) exist, with duplicates collapsed. Several
// baseline orderings (RCM, SlashBurn, LDG) operate on this view.
func (g *Graph) Undirected() *Graph {
	edges := make([]Edge, 0, 2*len(g.outAdj))
	g.Edges(func(u, v NodeID) bool {
		edges = append(edges, Edge{u, v}, Edge{v, u})
		return true
	})
	return FromEdgesDedup(g.n, edges)
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	cp := &Graph{n: g.n}
	cp.outIdx = append([]int64(nil), g.outIdx...)
	cp.outAdj = append([]NodeID(nil), g.outAdj...)
	cp.inIdx = append([]int64(nil), g.inIdx...)
	cp.inAdj = append([]NodeID(nil), g.inAdj...)
	return cp
}

// Equal reports whether two graphs have identical vertex counts and
// adjacency structure.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.outAdj) != len(h.outAdj) {
		return false
	}
	for i := range g.outIdx {
		if g.outIdx[i] != h.outIdx[i] {
			return false
		}
	}
	for i := range g.outAdj {
		if g.outAdj[i] != h.outAdj[i] {
			return false
		}
	}
	return true
}
