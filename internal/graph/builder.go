package graph

import (
	"fmt"
	"slices"
)

// Edge is a directed edge used when constructing a Graph.
type Edge struct {
	From, To NodeID
}

// FromEdges builds a Graph with n vertices from the given directed
// edge list. Parallel edges are kept (the benchmark datasets may
// contain them); use FromEdgesDedup to collapse them. It panics if an
// endpoint is out of range or n is negative.
func FromEdges(n int, edges []Edge) *Graph {
	return build(n, [][]Edge{edges}, false)
}

// FromEdgesDedup builds a Graph with n vertices, collapsing duplicate
// edges. Self-loops are kept: the paper's kernels tolerate them and
// some web crawls contain them.
func FromEdgesDedup(n int, edges []Edge) *Graph {
	return build(n, [][]Edge{edges}, true)
}

// build constructs the graph from edge shards — the per-worker slices
// the parallel edge-list parser produces. Shard order is significant:
// the edge sequence is the concatenation of the shards, and both
// builders place each vertex's neighbours in that order before
// sorting, so serial and parallel construction yield identical arrays.
func build(n int, shards [][]Edge, dedup bool) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	m := int64(0)
	for _, sh := range shards {
		m += int64(len(sh))
	}
	workers := csrWorkers(m)
	validateShards(n, shards, workers)
	g := &Graph{n: n}
	if workers > 1 {
		g.outIdx, g.outAdj = buildCSRParallel(n, shards, false, dedup, workers)
		g.inIdx, g.inAdj = buildCSRParallel(n, shards, true, dedup, workers)
	} else {
		g.outIdx, g.outAdj = buildCSRSerial(n, shards, false, dedup)
		g.inIdx, g.inAdj = buildCSRSerial(n, shards, true, dedup)
	}
	if dedup && len(g.outAdj) != len(g.inAdj) {
		// Dedup must agree in both directions; a mismatch means a bug.
		panic("graph: inconsistent dedup between directions")
	}
	return g
}

// validateShards panics on the first out-of-range endpoint. Running it
// up front keeps the construction passes panic-free, which matters
// because a panic inside a worker goroutine would kill the process
// instead of unwinding to the caller.
func validateShards(n int, shards [][]Edge, workers int) {
	type bad struct {
		e  Edge
		ok bool
	}
	found := make([]bad, workers)
	runParallel(workers, func(w int) {
		for _, sh := range shards {
			lo, hi := span(len(sh), workers, w)
			for _, e := range sh[lo:hi] {
				if int(e.From) >= n || int(e.To) >= n {
					found[w] = bad{e, true}
					return
				}
			}
		}
	})
	for _, b := range found {
		if b.ok {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", b.e.From, b.e.To, n))
		}
	}
}

// buildCSRSerial counting-sorts edges into a CSR array on one
// goroutine — the oracle the parallel builder is tested against. With
// reverse set the edge direction is flipped, producing the
// in-adjacency. Each neighbour list comes out sorted ascending.
func buildCSRSerial(n int, shards [][]Edge, reverse, dedup bool) (idx []int64, adj []NodeID) {
	idx = make([]int64, n+1)
	m := 0
	for _, sh := range shards {
		m += len(sh)
		for _, e := range sh {
			src := e.From
			if reverse {
				src = e.To
			}
			idx[src+1]++
		}
	}
	for i := 0; i < n; i++ {
		idx[i+1] += idx[i]
	}
	adj = make([]NodeID, m)
	cursor := make([]int64, n)
	copy(cursor, idx[:n])
	for _, sh := range shards {
		for _, e := range sh {
			src, dst := e.From, e.To
			if reverse {
				src, dst = dst, src
			}
			adj[cursor[src]] = dst
			cursor[src]++
		}
	}
	sortAdjacency(idx, adj, 0, n)
	if !dedup {
		return idx, adj
	}
	return dedupAdjacency(n, idx, adj)
}

// buildCSRParallel is the multi-core counting sort: per-vertex-range
// degree histograms merged by a prefix sum, then a scatter pass where
// each worker owns a contiguous vertex range and writes only the
// adjacency slots of its own vertices — disjoint writes, no atomics.
// Every worker scans all shards in order, so each neighbour list
// receives its entries in exactly the sequence the serial scatter
// produces, and the final sort pass yields identical arrays.
func buildCSRParallel(n int, shards [][]Edge, reverse, dedup bool, workers int) (idx []int64, adj []NodeID) {
	idx = make([]int64, n+1)
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		vlo, vhi := NodeID(lo), NodeID(hi)
		for _, sh := range shards {
			for _, e := range sh {
				src := e.From
				if reverse {
					src = e.To
				}
				if src >= vlo && src < vhi {
					idx[src+1]++
				}
			}
		}
	})
	for i := 0; i < n; i++ {
		idx[i+1] += idx[i]
	}
	adj = make([]NodeID, idx[n])
	cursor := make([]int64, n)
	copy(cursor, idx[:n])
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		vlo, vhi := NodeID(lo), NodeID(hi)
		for _, sh := range shards {
			for _, e := range sh {
				src, dst := e.From, e.To
				if reverse {
					src, dst = dst, src
				}
				if src >= vlo && src < vhi {
					adj[cursor[src]] = dst
					cursor[src]++
				}
			}
		}
	})
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		sortAdjacency(idx, adj, lo, hi)
	})
	if !dedup {
		return idx, adj
	}
	return dedupAdjacencyParallel(n, idx, adj, workers)
}

// sortAdjacency sorts the neighbour lists of vertices [ulo, uhi).
// Counting-scatter already emits a vertex's neighbours in edge-list
// order, which for generator output and CSR round trips is usually
// ascending, so the common case is a pure check.
func sortAdjacency(idx []int64, adj []NodeID, ulo, uhi int) {
	for u := ulo; u < uhi; u++ {
		lst := adj[idx[u]:idx[u+1]]
		if !slices.IsSorted(lst) {
			slices.Sort(lst)
		}
	}
}

// dedupAdjacency collapses duplicates in place, then compacts —
// adjacency lists must already be sorted.
func dedupAdjacency(n int, idx []int64, adj []NodeID) ([]int64, []NodeID) {
	newIdx := make([]int64, n+1)
	w := int64(0)
	for u := 0; u < n; u++ {
		newIdx[u] = w
		var prev NodeID
		first := true
		for _, v := range adj[idx[u]:idx[u+1]] {
			if first || v != prev {
				adj[w] = v
				w++
				prev, first = v, false
			}
		}
	}
	newIdx[n] = w
	return newIdx, adj[:w:w]
}

// dedupAdjacencyParallel collapses duplicates with a count pass, a
// prefix sum, and a compaction pass into a fresh array, each
// partitioned by vertex range.
func dedupAdjacencyParallel(n int, idx []int64, adj []NodeID, workers int) ([]int64, []NodeID) {
	newIdx := make([]int64, n+1)
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		for u := lo; u < hi; u++ {
			lst := adj[idx[u]:idx[u+1]]
			uniq := int64(0)
			for i, v := range lst {
				if i == 0 || v != lst[i-1] {
					uniq++
				}
			}
			newIdx[u+1] = uniq
		}
	})
	for i := 0; i < n; i++ {
		newIdx[i+1] += newIdx[i]
	}
	out := make([]NodeID, newIdx[n])
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		for u := lo; u < hi; u++ {
			lst := adj[idx[u]:idx[u+1]]
			pos := newIdx[u]
			for i, v := range lst {
				if i == 0 || v != lst[i-1] {
					out[pos] = v
					pos++
				}
			}
		}
	})
	return newIdx, out
}

// fromCSR wraps existing out-CSR arrays (which it takes ownership of)
// into a Graph, deriving the in-CSR by a counting pass over the
// out-adjacency instead of materializing an O(m) edge list. Offsets
// must be validated (monotone, outIdx[n] == len(outAdj)) and every
// neighbour must be < n; neighbour lists are sorted in place where
// needed to restore the package invariant.
func fromCSR(n int, outIdx []int64, outAdj []NodeID) *Graph {
	workers := csrWorkers(int64(len(outAdj)))
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		sortAdjacency(outIdx, outAdj, lo, hi)
	})
	inIdx := make([]int64, n+1)
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		vlo, vhi := NodeID(lo), NodeID(hi)
		for _, v := range outAdj {
			if v >= vlo && v < vhi {
				inIdx[v+1]++
			}
		}
	})
	for i := 0; i < n; i++ {
		inIdx[i+1] += inIdx[i]
	}
	inAdj := make([]NodeID, len(outAdj))
	cursor := make([]int64, n)
	copy(cursor, inIdx[:n])
	// Scatter scans sources in ascending order, so each in-neighbour
	// list comes out already sorted — no sort pass needed.
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		vlo, vhi := NodeID(lo), NodeID(hi)
		for u := 0; u < n; u++ {
			for _, v := range outAdj[outIdx[u]:outIdx[u+1]] {
				if v >= vlo && v < vhi {
					inAdj[cursor[v]] = NodeID(u)
					cursor[v]++
				}
			}
		}
	})
	return &Graph{n: n, outIdx: outIdx, outAdj: outAdj, inIdx: inIdx, inAdj: inAdj}
}

// Undirected returns the symmetric closure of g: for every edge (u,v)
// both (u,v) and (v,u) exist, with duplicates collapsed. Several
// baseline orderings (RCM, SlashBurn, LDG) operate on this view.
//
// Vertex u's closure neighbours are the sorted union of its out- and
// in-lists, both already sorted, so the closure is built by
// per-vertex-range merge passes — no O(m) edge-list expansion. The
// closure is symmetric, so the in-CSR aliases the out-CSR.
func (g *Graph) Undirected() *Graph {
	n := g.n
	workers := csrWorkers(2 * int64(len(g.outAdj)))
	idx := make([]int64, n+1)
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		var buf []NodeID
		for u := lo; u < hi; u++ {
			buf = unionSorted(buf[:0], g.OutNeighbors(NodeID(u)), g.InNeighbors(NodeID(u)))
			idx[u+1] = int64(len(buf))
		}
	})
	for i := 0; i < n; i++ {
		idx[i+1] += idx[i]
	}
	adj := make([]NodeID, idx[n])
	runParallel(workers, func(w int) {
		lo, hi := span(n, workers, w)
		for u := lo; u < hi; u++ {
			dst := adj[idx[u]:idx[u]:idx[u+1]]
			unionSorted(dst, g.OutNeighbors(NodeID(u)), g.InNeighbors(NodeID(u)))
		}
	})
	return &Graph{n: n, outIdx: idx, outAdj: adj, inIdx: idx, inAdj: adj}
}

// unionSorted appends the sorted union of two sorted lists to dst,
// dropping duplicates both within and across the inputs.
func unionSorted(dst []NodeID, a, b []NodeID) []NodeID {
	var last NodeID
	have := false
	emit := func(v NodeID) {
		if !have || v != last {
			dst = append(dst, v)
			last, have = v, true
		}
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			emit(a[i])
			i++
		} else {
			emit(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		emit(a[i])
	}
	for ; j < len(b); j++ {
		emit(b[j])
	}
	return dst
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	cp := &Graph{n: g.n}
	cp.outIdx = append([]int64(nil), g.outIdx...)
	cp.outAdj = append([]NodeID(nil), g.outAdj...)
	cp.inIdx = append([]int64(nil), g.inIdx...)
	cp.inAdj = append([]NodeID(nil), g.inAdj...)
	return cp
}

// Equal reports whether two graphs have identical vertex counts and
// adjacency structure.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.outAdj) != len(h.outAdj) {
		return false
	}
	for i := range g.outIdx {
		if g.outIdx[i] != h.outIdx[i] {
			return false
		}
	}
	for i := range g.outAdj {
		if g.outAdj[i] != h.outAdj[i] {
			return false
		}
	}
	return true
}
