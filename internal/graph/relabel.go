package graph

import "fmt"

// Relabel returns a new graph in which vertex u of g becomes vertex
// perm[u]. perm must be a permutation of 0..N-1; Relabel panics
// otherwise. This is the operation every ordering method feeds:
// compute a permutation, relabel, and run the kernels on the result.
func (g *Graph) Relabel(perm []NodeID) *Graph {
	if len(perm) != g.n {
		panic(fmt.Sprintf("graph: permutation length %d for graph with %d vertices", len(perm), g.n))
	}
	seen := make([]bool, g.n)
	for _, p := range perm {
		if int(p) >= g.n || seen[p] {
			panic("graph: not a permutation")
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, len(g.outAdj))
	g.Edges(func(u, v NodeID) bool {
		edges = append(edges, Edge{perm[u], perm[v]})
		return true
	})
	return FromEdges(g.n, edges)
}
