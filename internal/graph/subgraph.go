package graph

// InducedSubgraph returns the subgraph induced by the given vertices
// (which must be distinct) and the mapping from new local IDs back to
// the original ones: local vertex i corresponds to vertices[i].
// Edges with exactly both endpoints in the set are kept.
func (g *Graph) InducedSubgraph(vertices []NodeID) (sub *Graph, toGlobal []NodeID) {
	toLocal := make(map[NodeID]NodeID, len(vertices))
	toGlobal = append([]NodeID(nil), vertices...)
	for i, v := range vertices {
		if int(v) >= g.n {
			panic("graph: induced vertex out of range")
		}
		if _, dup := toLocal[v]; dup {
			panic("graph: duplicate vertex in induced set")
		}
		toLocal[v] = NodeID(i)
	}
	var edges []Edge
	for _, u := range vertices {
		lu := toLocal[u]
		for _, v := range g.OutNeighbors(u) {
			if lv, ok := toLocal[v]; ok {
				edges = append(edges, Edge{From: lu, To: lv})
			}
		}
	}
	return FromEdges(len(vertices), edges), toGlobal
}
