// Package graph implements the directed-graph substrate the paper's
// experiments run on: a Compressed Sparse Row (CSR) representation with
// both out- and in-adjacency, builders from edge lists, text and binary
// I/O, vertex relabeling under a permutation, and basic statistics.
//
// Vertices are dense integers 0..N-1 stored as uint32 (the paper's
// largest dataset has under 10^8 vertices). Neighbour lists are sorted
// ascending, so traversals visit neighbours in lexicographic order as
// the paper specifies, and equal graphs have identical representations.
package graph

// NodeID identifies a vertex. IDs are dense: a graph with N vertices
// uses exactly the IDs 0..N-1.
type NodeID = uint32

// Graph is an immutable directed graph in CSR form. Both directions
// are materialised: OutNeighbors serves forward traversals and
// InNeighbors serves pull-style kernels (PageRank) and the Gorder
// sibling score. The zero value is the empty graph.
type Graph struct {
	n      int
	outIdx []int64 // len n+1; outAdj[outIdx[u]:outIdx[u+1]] = out-neighbours of u
	outAdj []NodeID
	inIdx  []int64
	inAdj  []NodeID
}

// NumNodes returns the number of vertices N.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges M.
func (g *Graph) NumEdges() int64 { return int64(len(g.outAdj)) }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outIdx[u+1] - g.outIdx[u])
}

// InDegree returns the in-degree of u.
func (g *Graph) InDegree(u NodeID) int {
	return int(g.inIdx[u+1] - g.inIdx[u])
}

// Degree returns the total degree (in + out) of u.
func (g *Graph) Degree(u NodeID) int { return g.OutDegree(u) + g.InDegree(u) }

// OutNeighbors returns the out-neighbours of u in ascending ID order.
// The returned slice aliases the graph's storage and must not be
// modified.
func (g *Graph) OutNeighbors(u NodeID) []NodeID {
	return g.outAdj[g.outIdx[u]:g.outIdx[u+1]]
}

// InNeighbors returns the in-neighbours of u in ascending ID order.
// The returned slice aliases the graph's storage and must not be
// modified.
func (g *Graph) InNeighbors(u NodeID) []NodeID {
	return g.inAdj[g.inIdx[u]:g.inIdx[u+1]]
}

// HasEdge reports whether the directed edge (u, v) exists, by binary
// search over u's sorted out-neighbour list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	adj := g.OutNeighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// Edges calls fn for every directed edge (u, v) in CSR order. It stops
// early if fn returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(NodeID(u)) {
			if !fn(NodeID(u), v) {
				return
			}
		}
	}
}

// MemoryBytes estimates the heap footprint of the CSR arrays (both
// directions). The residency budget in internal/store charges graphs
// against this figure.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.outIdx)+len(g.inIdx))*8 + int64(len(g.outAdj)+len(g.inAdj))*4
}

// OutIndex exposes the raw CSR offset array (length N+1). It aliases
// internal storage and must not be modified; the traced kernels use it
// to replay the exact memory layout through the cache simulator.
func (g *Graph) OutIndex() []int64 { return g.outIdx }

// OutAdjacency exposes the raw out-neighbour array (length M). It
// aliases internal storage and must not be modified.
func (g *Graph) OutAdjacency() []NodeID { return g.outAdj }

// InIndex exposes the raw in-CSR offset array (length N+1), aliasing
// internal storage.
func (g *Graph) InIndex() []int64 { return g.inIdx }

// InAdjacency exposes the raw in-neighbour array (length M), aliasing
// internal storage.
func (g *Graph) InAdjacency() []NodeID { return g.inAdj }
