package graph

import (
	"fmt"
	"slices"
)

// EditStats summarises what an ApplyEdits call actually changed.
// Requested edits that were already satisfied (adding an edge that
// exists, deleting one that does not) are reported rather than failed,
// so clients can replay batches idempotently.
type EditStats struct {
	Added       int // edges newly present
	Deleted     int // edges removed
	SkippedAdds int // add requests for edges already present
	MissedDels  int // delete requests for edges not present
}

// ApplyEdits derives a new graph from g by appending addNodes fresh
// vertices (IDs g.NumNodes()..g.NumNodes()+addNodes-1) and applying a
// batch of edge deletions followed by insertions. g is not modified —
// versioned stores keep both.
//
// Deletes run before adds, so a batch that removes and re-adds the
// same edge leaves it present. Duplicate requests within a batch
// collapse. Self-loops are allowed, matching FromEdgesDedup. An
// endpoint outside the grown vertex range or a negative addNodes is an
// error (never a panic): mutation batches arrive from network clients.
//
// The new out-CSR is produced by per-vertex sorted merges of the old
// adjacency with the edit lists — no O(m) edge-list materialisation —
// and the in-CSR is derived by a counting pass, like ReadBinary.
func ApplyEdits(g *Graph, addNodes int, add, del []Edge) (*Graph, EditStats, error) {
	var st EditStats
	if addNodes < 0 {
		return nil, st, fmt.Errorf("graph: negative addNodes %d", addNodes)
	}
	n, n2 := g.NumNodes(), g.NumNodes()+addNodes
	for _, e := range del {
		if int(e.From) >= n2 || int(e.To) >= n2 {
			return nil, st, fmt.Errorf("graph: delete edge (%d,%d) out of range for n=%d", e.From, e.To, n2)
		}
	}
	for _, e := range add {
		if int(e.From) >= n2 || int(e.To) >= n2 {
			return nil, st, fmt.Errorf("graph: add edge (%d,%d) out of range for n=%d", e.From, e.To, n2)
		}
	}
	byEdge := func(a, b Edge) int {
		if a.From != b.From {
			if a.From < b.From {
				return -1
			}
			return 1
		}
		if a.To != b.To {
			if a.To < b.To {
				return -1
			}
			return 1
		}
		return 0
	}
	del = slices.Clone(del)
	slices.SortFunc(del, byEdge)
	del = slices.CompactFunc(del, func(a, b Edge) bool { return a == b })
	add = slices.Clone(add)
	slices.SortFunc(add, byEdge)
	add = slices.CompactFunc(add, func(a, b Edge) bool { return a == b })

	// Size pass: count each vertex's post-edit out-degree and classify
	// the requests. The edit lists are sorted by (From, To) and each
	// vertex's old adjacency is sorted by To, so a three-way merge per
	// vertex does both at once.
	idx := make([]int64, n2+1)
	di, ai := 0, 0
	for u := 0; u < n2; u++ {
		var old []NodeID
		if u < n {
			old = g.OutNeighbors(NodeID(u))
		}
		dlo := di
		for di < len(del) && int(del[di].From) == u {
			di++
		}
		alo := ai
		for ai < len(add) && int(add[ai].From) == u {
			ai++
		}
		deg := len(old)
		for _, e := range del[dlo:di] {
			if _, found := slices.BinarySearch(old, e.To); found {
				st.Deleted++
				deg--
			} else {
				st.MissedDels++
			}
		}
		for _, e := range add[alo:ai] {
			present := false
			if _, found := slices.BinarySearch(old, e.To); found {
				// Still present only if this batch did not delete it.
				if _, gone := slices.BinarySearchFunc(del[dlo:di], e, byEdge); !gone {
					present = true
				}
			}
			if present {
				st.SkippedAdds++
			} else {
				st.Added++
				deg++
			}
		}
		idx[u+1] = idx[u] + int64(deg)
	}

	adj := make([]NodeID, idx[n2])
	di, ai = 0, 0
	for u := 0; u < n2; u++ {
		var old []NodeID
		if u < n {
			old = g.OutNeighbors(NodeID(u))
		}
		dlo := di
		for di < len(del) && int(del[di].From) == u {
			di++
		}
		alo := ai
		for ai < len(add) && int(add[ai].From) == u {
			ai++
		}
		dels, adds := del[dlo:di], add[alo:ai]
		w := idx[u]
		oi := 0
		emit := func(v NodeID) {
			adj[w] = v
			w++
		}
		for _, e := range adds {
			// Old survivors below the inserted neighbour first.
			for oi < len(old) && old[oi] < e.To {
				if _, gone := slices.BinarySearchFunc(dels, Edge{NodeID(u), old[oi]}, byEdge); !gone {
					emit(old[oi])
				}
				oi++
			}
			if oi < len(old) && old[oi] == e.To {
				if _, gone := slices.BinarySearchFunc(dels, e, byEdge); gone {
					emit(e.To) // deleted then re-added
				} else {
					emit(old[oi]) // already present, add skipped
				}
				oi++
				continue
			}
			emit(e.To)
		}
		for ; oi < len(old); oi++ {
			if _, gone := slices.BinarySearchFunc(dels, Edge{NodeID(u), old[oi]}, byEdge); !gone {
				emit(old[oi])
			}
		}
		if w != idx[u+1] {
			panic("graph: ApplyEdits degree mismatch")
		}
	}
	return fromCSR(n2, idx, adj), st, nil
}
