package graph

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// diamond returns the 4-vertex test graph 0->1, 0->2, 1->3, 2->3, 3->0.
func diamond() *Graph {
	return FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}})
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
	}
	return FromEdges(n, edges)
}

func randomPerm(rng *rand.Rand, n int) []NodeID {
	p := make([]NodeID, n)
	for i := range p {
		p[i] = NodeID(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestFromEdgesBasic(t *testing.T) {
	g := diamond()
	if g.NumNodes() != 4 || g.NumEdges() != 5 {
		t.Fatalf("n=%d m=%d, want 4, 5", g.NumNodes(), g.NumEdges())
	}
	wantOut := map[NodeID][]NodeID{0: {1, 2}, 1: {3}, 2: {3}, 3: {0}}
	for u, want := range wantOut {
		got := g.OutNeighbors(u)
		if len(got) != len(want) {
			t.Fatalf("out(%d) = %v, want %v", u, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("out(%d) = %v, want %v", u, got, want)
			}
		}
	}
	wantIn := map[NodeID][]NodeID{0: {3}, 1: {0}, 2: {0}, 3: {1, 2}}
	for u, want := range wantIn {
		got := g.InNeighbors(u)
		if len(got) != len(want) {
			t.Fatalf("in(%d) = %v, want %v", u, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("in(%d) = %v, want %v", u, got, want)
			}
		}
	}
}

func TestDegrees(t *testing.T) {
	g := diamond()
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 || g.Degree(0) != 3 {
		t.Errorf("degrees of 0 = out %d in %d total %d", g.OutDegree(0), g.InDegree(0), g.Degree(0))
	}
	if g.OutDegree(3) != 1 || g.InDegree(3) != 2 {
		t.Errorf("degrees of 3 = out %d in %d", g.OutDegree(3), g.InDegree(3))
	}
}

func TestHasEdge(t *testing.T) {
	g := diamond()
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, false}, {1, 0, false},
		{3, 0, true}, {2, 3, true}, {1, 1, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d, %d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestFromEdgesDedup(t *testing.T) {
	g := FromEdgesDedup(3, []Edge{{0, 1}, {0, 1}, {0, 1}, {1, 2}, {2, 2}, {2, 2}})
	if g.NumEdges() != 3 {
		t.Fatalf("deduped m = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 2) {
		t.Error("dedup dropped a real edge")
	}
	if len(g.OutNeighbors(0)) != 1 {
		t.Errorf("out(0) = %v after dedup", g.OutNeighbors(0))
	}
}

func TestParallelEdgesKept(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}, {0, 1}})
	if g.NumEdges() != 2 || len(g.OutNeighbors(0)) != 2 {
		t.Error("FromEdges collapsed parallel edges")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph not empty")
	}
	g2 := FromEdges(5, nil)
	if g2.OutDegree(4) != 0 || g2.InDegree(0) != 0 {
		t.Error("edgeless graph has nonzero degree")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range edge")
		}
	}()
	FromEdges(2, []Edge{{0, 2}})
}

func TestUndirected(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 0}, {1, 2}})
	u := g.Undirected()
	if u.NumEdges() != 4 { // 0-1 both ways, 1-2 both ways
		t.Fatalf("undirected m = %d, want 4", u.NumEdges())
	}
	for _, e := range []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !u.HasEdge(e.From, e.To) {
			t.Errorf("undirected missing (%d,%d)", e.From, e.To)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := diamond()
	cp := g.Clone()
	if !g.Equal(cp) {
		t.Fatal("clone not equal to original")
	}
	other := FromEdges(4, []Edge{{0, 1}})
	if g.Equal(other) {
		t.Fatal("distinct graphs reported equal")
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := diamond()
	count := 0
	g.Edges(func(u, v NodeID) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("visited %d edges, want 3", count)
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := diamond()
	id := []NodeID{0, 1, 2, 3}
	if !g.Relabel(id).Equal(g) {
		t.Error("identity relabel changed the graph")
	}
}

func TestRelabelSwap(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}})
	h := g.Relabel([]NodeID{1, 0})
	if !h.HasEdge(1, 0) || h.HasEdge(0, 1) {
		t.Error("swap relabel did not move the edge")
	}
}

func TestRelabelRejectsNonPermutation(t *testing.T) {
	g := diamond()
	for _, bad := range [][]NodeID{
		{0, 1, 2},    // wrong length
		{0, 1, 2, 2}, // repeat
		{0, 1, 2, 4}, // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Relabel(%v) did not panic", bad)
				}
			}()
			g.Relabel(bad)
		}()
	}
}

// Relabeling preserves edge count and the degree multiset, and the
// in/out CSR views always describe the same edge set.
func TestQuickRelabelInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(4*n))
		perm := randomPerm(rng, n)
		h := g.Relabel(perm)
		if h.NumEdges() != g.NumEdges() || h.NumNodes() != g.NumNodes() {
			return false
		}
		// Degree multiset preserved under the permutation mapping.
		for u := 0; u < n; u++ {
			if g.OutDegree(NodeID(u)) != h.OutDegree(perm[u]) ||
				g.InDegree(NodeID(u)) != h.InDegree(perm[u]) {
				return false
			}
		}
		// Every original edge exists translated.
		ok := true
		g.Edges(func(u, v NodeID) bool {
			if !h.HasEdge(perm[u], perm[v]) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// In-adjacency is exactly the transpose of out-adjacency.
func TestQuickInOutConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(5*n))
		var outEdges, inEdges []Edge
		g.Edges(func(u, v NodeID) bool {
			outEdges = append(outEdges, Edge{u, v})
			return true
		})
		for v := 0; v < n; v++ {
			for _, u := range g.InNeighbors(NodeID(v)) {
				inEdges = append(inEdges, Edge{u, NodeID(v)})
			}
		}
		if len(outEdges) != len(inEdges) {
			return false
		}
		cmpEdge := func(a, b Edge) int {
			if a.From != b.From {
				return cmp.Compare(a.From, b.From)
			}
			return cmp.Compare(a.To, b.To)
		}
		slices.SortFunc(outEdges, cmpEdge)
		slices.SortFunc(inEdges, cmpEdge)
		for i := range outEdges {
			if outEdges[i] != inEdges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Neighbour lists are always sorted ascending (lexicographic visit
// order, as the paper's traversals require).
func TestQuickSortedAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(6*n))
		for u := 0; u < n; u++ {
			adj := g.OutNeighbors(NodeID(u))
			for i := 1; i < len(adj); i++ {
				if adj[i-1] > adj[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestComputeStats(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {0, 2}, {1, 1}, {2, 0}})
	s := ComputeStats(g)
	if s.Nodes != 5 || s.Edges != 4 {
		t.Errorf("stats n=%d m=%d", s.Nodes, s.Edges)
	}
	if s.MaxOutDegree != 2 || s.SelfLoops != 1 {
		t.Errorf("stats max_out=%d loops=%d", s.MaxOutDegree, s.SelfLoops)
	}
	if s.Isolated != 2 { // vertices 3 and 4
		t.Errorf("isolated = %d, want 2", s.Isolated)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	h := DegreeHistogram(g)
	// Degrees: v0 total 1, v1 total 2, v2 total 1.
	if h[1] != 2 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
}
