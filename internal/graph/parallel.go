package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Ingestion — edge-list parsing, CSR construction, the binary loader,
// and Undirected — fans out across GOMAXPROCS workers by default. The
// parallel paths are bit-identical to the serial ones: same CSR
// arrays, same sorted neighbour lists, so downstream orderings and
// tests cannot tell them apart. The serial code is kept as the oracle
// and is used automatically for small inputs, where goroutine fan-out
// costs more than it saves.

const (
	// serialEdgeCutoff is the edge count below which CSR construction
	// stays on the serial path when the parallelism is automatic.
	serialEdgeCutoff = 1 << 14
	// serialByteCutoff is the input size below which edge-list parsing
	// stays on the serial path when the parallelism is automatic.
	serialByteCutoff = 1 << 16
)

// ingestParallelism is the configured worker count; 0 means automatic
// (GOMAXPROCS with the small-input cutoffs above).
var ingestParallelism atomic.Int32

// SetIngestParallelism sets the worker count used by ReadEdgeList,
// FromEdges, ReadBinary, and Undirected. k == 0 restores the default:
// GOMAXPROCS workers, with small inputs handled serially. k == 1
// forces the serial reference path. k > 1 forces exactly k workers
// even for inputs below the serial cutoffs, which is how the tests
// exercise the parallel code on any machine.
func SetIngestParallelism(k int) {
	if k < 0 {
		k = 0
	}
	ingestParallelism.Store(int32(k))
}

// IngestParallelism reports the configured worker count (0 = automatic).
func IngestParallelism() int { return int(ingestParallelism.Load()) }

// ingestWorkers resolves the effective worker count. forced reports
// that the count was set explicitly with SetIngestParallelism, which
// bypasses the small-input serial cutoffs.
func ingestWorkers() (workers int, forced bool) {
	if k := ingestParallelism.Load(); k > 0 {
		return int(k), true
	}
	return runtime.GOMAXPROCS(0), false
}

// csrWorkers picks the worker count for a CSR-construction pass over m
// edges: 1 (serial) unless the input is big enough or the caller
// forced a count.
func csrWorkers(m int64) int {
	workers, forced := ingestWorkers()
	if workers <= 1 || (!forced && m < serialEdgeCutoff) {
		return 1
	}
	return workers
}

// runParallel runs fn(w) for w in [0, workers) on that many goroutines
// and waits for all of them. workers <= 1 runs inline.
func runParallel(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			fn(w)
		}()
	}
	fn(0)
	wg.Wait()
}

// span returns the w-th of `workers` near-equal contiguous half-open
// ranges covering [0, n).
func span(n, workers, w int) (lo, hi int) {
	lo = int(int64(n) * int64(w) / int64(workers))
	hi = int(int64(n) * int64(w+1) / int64(workers))
	return lo, hi
}
