package graph

import (
	"bytes"
	"fmt"
	"io"
)

// Streaming edge-list ingest: parse a text edge list incrementally
// from an io.Reader without ever materializing the whole body. The
// reader is consumed in fixed-size buffers; each buffer is cut at its
// last newline and the complete-line prefix goes through the same
// sharded parallel parser the buffered loader uses (parseBlock), with
// the partial tail carried into the next buffer. Peak memory is the
// parse buffer plus the accumulated edge shards plus the final CSR —
// the raw text never exists in memory at once, which is what lets
// gorderd accept uploads much larger than its RAM headroom would
// otherwise allow.

// DefaultStreamBuffer is the per-round parse buffer of
// ReadEdgeListStream: big enough to amortize the sharded parser's
// fan-out, small enough that buffering is not "the whole upload".
const DefaultStreamBuffer = 4 << 20

// ReadEdgeListStream parses a text edge list incrementally from r with
// the default buffer size. Identical semantics to ReadEdgeListBytes —
// same comment/blank-line rules, same error line numbers, bit-identical
// CSR — at bounded peak memory.
func ReadEdgeListStream(r io.Reader) (*Graph, error) {
	return ReadEdgeListStreamBuffer(r, DefaultStreamBuffer)
}

// ReadEdgeListStreamBuffer is ReadEdgeListStream with an explicit
// buffer size (minimum 4 KiB), exposed so tests can force many small
// rounds and benchmarks can explore the buffer/throughput trade.
func ReadEdgeListStreamBuffer(r io.Reader, bufSize int) (*Graph, error) {
	if bufSize < 4<<10 {
		bufSize = 4 << 10
	}
	workers, forced := ingestWorkers()
	buf := make([]byte, 0, bufSize)
	var shards [][]Edge
	maxID := int64(-1)
	lineBase := 0
	for {
		// Fill the buffer as far as the reader allows this round.
		var rerr error
		for len(buf) < cap(buf) && rerr == nil {
			var n int
			n, rerr = r.Read(buf[len(buf):cap(buf)])
			buf = buf[:len(buf)+n]
		}
		if rerr != nil && rerr != io.EOF {
			return nil, fmt.Errorf("graph: reading edge list: %w", rerr)
		}
		eof := rerr == io.EOF

		// Cut at the last newline; at EOF the unterminated tail is a
		// complete final line and parses too.
		block, rest := buf, []byte(nil)
		if !eof {
			i := bytes.LastIndexByte(buf, '\n')
			if i < 0 {
				// One line larger than the whole buffer: refuse rather than
				// silently fall back to unbounded buffering.
				return nil, fmt.Errorf("graph: line %d: line exceeds the %d-byte streaming buffer",
					lineBase+1, cap(buf))
			}
			block, rest = buf[:i+1], buf[i+1:]
		}
		if len(block) > 0 {
			wk := workers
			if wk > 1 && !forced && len(block) < serialByteCutoff {
				wk = 1
			}
			s, mx, lines, errLine, err := parseBlock(block, wk)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineBase+errLine, err)
			}
			lineBase += lines
			if mx > maxID {
				maxID = mx
			}
			shards = append(shards, s...)
		}
		if eof {
			break
		}
		// Slide the partial tail to the front of the buffer (overlapping
		// copy into the same backing array is fine: dst precedes src).
		buf = buf[:copy(buf[:cap(buf)], rest)]
	}
	return build(int(maxID+1), shards, false), nil
}

// SniffBinary reports whether prefix begins with the binary CSR magic
// (any format version). Upload handlers peek a few bytes to route a
// body to the binary decoder or the streaming text parser; version
// validation stays in ReadBinaryBytes.
func SniffBinary(prefix []byte) bool {
	return len(prefix) >= 7 && [7]byte(prefix[:7]) == [7]byte(binaryMagic[:7])
}
