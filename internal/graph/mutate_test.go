package graph

import (
	"math/rand"
	"testing"
)

// oracle: rebuild from the edited edge list with FromEdgesDedup.
func applyEditsOracle(g *Graph, addNodes int, add, del []Edge) *Graph {
	gone := make(map[Edge]bool, len(del))
	for _, e := range del {
		gone[e] = true
	}
	var edges []Edge
	g.Edges(func(u, v NodeID) bool {
		if !gone[Edge{u, v}] {
			edges = append(edges, Edge{u, v})
		}
		return true
	})
	edges = append(edges, add...)
	return FromEdgesDedup(g.NumNodes()+addNodes, edges)
}

func randMutGraph(rng *rand.Rand, n, m int) *Graph {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
	}
	return FromEdgesDedup(n, edges)
}

func TestApplyEditsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		g := randMutGraph(rng, n, rng.Intn(5*n))
		addNodes := rng.Intn(8)
		n2 := n + addNodes
		var add, del []Edge
		for i := 0; i < rng.Intn(12); i++ {
			add = append(add, Edge{NodeID(rng.Intn(n2)), NodeID(rng.Intn(n2))})
		}
		// Mix of real and phantom deletes.
		g.Edges(func(u, v NodeID) bool {
			if rng.Intn(10) == 0 {
				del = append(del, Edge{u, v})
			}
			return true
		})
		for i := 0; i < rng.Intn(4); i++ {
			del = append(del, Edge{NodeID(rng.Intn(n2)), NodeID(rng.Intn(n2))})
		}
		got, st, err := ApplyEdits(g, addNodes, add, del)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := applyEditsOracle(g, addNodes, add, del)
		if !got.Equal(want) {
			t.Fatalf("trial %d: CSR mismatch (n=%d addNodes=%d add=%v del=%v)", trial, n, addNodes, add, del)
		}
		if int64(st.Added-st.Deleted) != got.NumEdges()-g.NumEdges() {
			t.Fatalf("trial %d: stats %+v inconsistent with edge counts %d→%d",
				trial, st, g.NumEdges(), got.NumEdges())
		}
		// In-CSR consistent with out-CSR.
		for u := 0; u < got.NumNodes(); u++ {
			for _, v := range got.OutNeighbors(NodeID(u)) {
				found := false
				for _, x := range got.InNeighbors(v) {
					if x == NodeID(u) {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: edge (%d,%d) missing from in-CSR", trial, u, v)
				}
			}
		}
	}
}

func TestApplyEditsDeleteThenReadd(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	g2, st, err := ApplyEdits(g, 0, []Edge{{0, 1}}, []Edge{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasEdge(0, 1) {
		t.Fatal("delete+re-add in one batch should leave the edge present")
	}
	if st.Added != 1 || st.Deleted != 1 {
		t.Fatalf("stats %+v, want Added=1 Deleted=1", st)
	}
}

func TestApplyEditsIdempotentRequests(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}})
	g2, st, err := ApplyEdits(g, 0,
		[]Edge{{0, 1}, {0, 1}, {1, 2}}, // present, duplicate, new
		[]Edge{{2, 0}, {2, 0}})         // absent, duplicate
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 1 || st.SkippedAdds != 1 || st.Deleted != 0 || st.MissedDels != 1 {
		t.Fatalf("stats %+v", st)
	}
	if !g2.HasEdge(0, 1) || !g2.HasEdge(1, 2) {
		t.Fatal("edges missing after idempotent batch")
	}
}

func TestApplyEditsNewVertices(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}})
	g2, st, err := ApplyEdits(g, 2, []Edge{{2, 0}, {3, 2}, {1, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 4 || st.Added != 3 {
		t.Fatalf("n=%d stats %+v", g2.NumNodes(), st)
	}
	if !g2.HasEdge(2, 0) || !g2.HasEdge(3, 2) || !g2.HasEdge(1, 3) {
		t.Fatal("edges to new vertices missing")
	}
	if g.NumNodes() != 2 {
		t.Fatal("source graph mutated")
	}
}

func TestApplyEditsErrors(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}})
	if _, _, err := ApplyEdits(g, -1, nil, nil); err == nil {
		t.Error("negative addNodes accepted")
	}
	if _, _, err := ApplyEdits(g, 1, []Edge{{0, 3}}, nil); err == nil {
		t.Error("out-of-range add accepted")
	}
	if _, _, err := ApplyEdits(g, 0, nil, []Edge{{5, 0}}); err == nil {
		t.Error("out-of-range delete accepted")
	}
}
