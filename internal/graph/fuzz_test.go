package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList cross-checks the serial and parallel edge-list
// parsers on arbitrary bytes: both must accept or reject together,
// with byte-identical error messages (same global line numbers), and
// on acceptance produce bit-identical graphs at several worker counts
// so chunk boundaries land everywhere — mid-line, mid-number, inside
// comments, on CRLF pairs.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"0 1\n",
		"0 1",
		"# comment\n% comment\n\n0 1\n1 2\n2 0\n",
		"  7\t8\n8 9\r\n9 7\r\n",
		"a b\n",
		"0\n",
		"0 x\n",
		"0 4294967296\n",
		"99999999999999999999 1\n",
		"1 2 trailing junk\n",
		"\r\n\r\n0 1\r\n",
		strings.Repeat("12345 67890\n", 257),
		"# only comments\n% nothing else\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The format's vertex count is max(endpoint)+1, so a single
		// 8-digit line legitimately asks for hundreds of MB of CSR
		// arrays. Cap endpoint width to keep fuzzing exploring parser
		// and chunking logic instead of exhausting memory; wider
		// fields still get coverage up to the cap via the seeds.
		digits := 0
		for _, c := range data {
			if c >= '0' && c <= '9' {
				if digits++; digits > 6 {
					t.Skip("endpoint magnitude capped for fuzzing")
				}
			} else {
				digits = 0
			}
		}
		want, serialErr := readEdgeListSerial(data)
		for _, workers := range []int{2, 3, 5} {
			got, parallelErr := readEdgeListParallel(data, workers)
			if (serialErr == nil) != (parallelErr == nil) {
				t.Fatalf("%d workers: serial err %v, parallel err %v", workers, serialErr, parallelErr)
			}
			if serialErr != nil {
				if serialErr.Error() != parallelErr.Error() {
					t.Fatalf("%d workers: error mismatch: serial %q, parallel %q",
						workers, serialErr, parallelErr)
				}
				continue
			}
			if !sameGraph(want, got) {
				t.Fatalf("%d workers: parallel parse produced a different graph", workers)
			}
		}
	})
}
