package graph

import "fmt"

// Stats summarises a graph the way the paper's Table 1 reports its
// datasets: size plus the degree-distribution features (skew, maxima)
// that drive cache behaviour.
type Stats struct {
	Nodes        int
	Edges        int64
	MaxOutDegree int
	MaxInDegree  int
	AvgDegree    float64 // average out-degree, m/n
	SelfLoops    int64
	Isolated     int // vertices with no in- or out-edges
}

// ComputeStats scans g once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	if s.Nodes > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Nodes)
	}
	for u := 0; u < g.NumNodes(); u++ {
		id := NodeID(u)
		od, ind := g.OutDegree(id), g.InDegree(id)
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		if ind > s.MaxInDegree {
			s.MaxInDegree = ind
		}
		if od == 0 && ind == 0 {
			s.Isolated++
		}
		for _, v := range g.OutNeighbors(id) {
			if v == id {
				s.SelfLoops++
			}
		}
	}
	return s
}

// String renders the stats in one line, convenient for CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d avg_deg=%.2f max_out=%d max_in=%d self_loops=%d isolated=%d",
		s.Nodes, s.Edges, s.AvgDegree, s.MaxOutDegree, s.MaxInDegree, s.SelfLoops, s.Isolated)
}

// DegreeHistogram returns counts[d] = number of vertices with total
// degree d, up to and including the maximum degree.
func DegreeHistogram(g *Graph) []int64 {
	maxd := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.Degree(NodeID(u)); d > maxd {
			maxd = d
		}
	}
	counts := make([]int64, maxd+1)
	for u := 0; u < g.NumNodes(); u++ {
		counts[g.Degree(NodeID(u))]++
	}
	return counts
}
