package graph

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// chunkyReader returns at most max bytes per Read, exercising the
// partial-fill path of the streaming loader.
type chunkyReader struct {
	data []byte
	max  int
}

func (r *chunkyReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, fmt.Errorf("unexpected read past EOF")
	}
	n := min(min(len(p), r.max), len(r.data))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	if len(r.data) == 0 {
		return n, io.EOF
	}
	return n, nil
}

// randomEdgeList renders a reproducible messy edge list: comments,
// blank lines, tabs, CRLF on some lines, no trailing newline when odd.
func randomEdgeList(seed int64, n, m int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("# header comment\n\n% konect-style comment\n")
	for i := 0; i < m; i++ {
		sep := " "
		if rng.Intn(3) == 0 {
			sep = "\t"
		}
		fmt.Fprintf(&b, "%d%s%d", rng.Intn(n), sep, rng.Intn(n))
		if rng.Intn(5) == 0 {
			b.WriteString("\r\n")
		} else {
			b.WriteString("\n")
		}
		if rng.Intn(17) == 0 {
			b.WriteString("\n# interior comment\n")
		}
	}
	data := []byte(b.String())
	if seed%2 == 1 {
		data = bytes.TrimRight(data, "\n") // exercise the unterminated final line
	}
	return data
}

// TestStreamMatchesSerial: the streaming loader must produce a graph
// bit-identical to the serial oracle on the same bytes, across buffer
// sizes that force single- and many-round parses and reader chunk
// sizes that force partial fills.
func TestStreamMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		data := randomEdgeList(seed, 500, 3000)
		want, err := readEdgeListSerial(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, bufSize := range []int{4 << 10, 8 << 10, 1 << 20} {
			for _, readMax := range []int{1 << 30, 1000, 7} {
				got, err := ReadEdgeListStreamBuffer(&chunkyReader{data: data, max: readMax}, bufSize)
				if err != nil {
					t.Fatalf("seed %d buf %d read %d: %v", seed, bufSize, readMax, err)
				}
				if !got.Equal(want) {
					t.Fatalf("seed %d buf %d read %d: stream CSR differs from serial", seed, bufSize, readMax)
				}
			}
		}
	}
}

// TestStreamErrorLineNumbers: a bad line deep in the input must report
// the same global line number the buffered loaders report, even when
// the error lands many buffer rounds in.
func TestStreamErrorLineNumbers(t *testing.T) {
	var b strings.Builder
	b.WriteString("# c\n")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&b, "%d %d\n", i%97, (i+1)%97)
	}
	b.WriteString("12 oops\n1 2\n")
	data := []byte(b.String())

	_, serialErr := readEdgeListSerial(data)
	if serialErr == nil {
		t.Fatal("serial parse accepted the bad line")
	}
	_, streamErr := ReadEdgeListStreamBuffer(bytes.NewReader(data), 4<<10)
	if streamErr == nil {
		t.Fatal("stream parse accepted the bad line")
	}
	if streamErr.Error() != serialErr.Error() {
		t.Fatalf("stream error %q != serial error %q", streamErr, serialErr)
	}
}

func TestStreamOverlongLine(t *testing.T) {
	data := []byte("1 2\n" + strings.Repeat("9", 10<<10)) // one 10 KiB "line"
	_, err := ReadEdgeListStreamBuffer(&chunkyReader{data: data, max: 512}, 4<<10)
	if err == nil || !strings.Contains(err.Error(), "streaming buffer") {
		t.Fatalf("overlong line not refused: %v", err)
	}
}

func TestStreamEmptyAndCommentOnly(t *testing.T) {
	for _, in := range []string{"", "# only comments\n\n% more\n"} {
		g, err := ReadEdgeListStreamBuffer(strings.NewReader(in), 4<<10)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if g.NumNodes() != 0 || g.NumEdges() != 0 {
			t.Fatalf("%q: got %d nodes %d edges", in, g.NumNodes(), g.NumEdges())
		}
	}
}

func TestStreamRejectsOversizeEndpoint(t *testing.T) {
	_, err := ReadEdgeListStreamBuffer(strings.NewReader("1 4294967296\n"), 4<<10)
	if err == nil || !strings.Contains(err.Error(), "NodeID") {
		t.Fatalf("oversize endpoint not refused: %v", err)
	}
}

func TestSniffBinary(t *testing.T) {
	var buf bytes.Buffer
	if err := FromEdges(3, []Edge{{0, 1}, {1, 2}}).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !SniffBinary(buf.Bytes()) {
		t.Fatal("binary CSR bytes not recognized")
	}
	if SniffBinary([]byte("0 1\n1 2\n")) {
		t.Fatal("text edge list sniffed as binary")
	}
	if SniffBinary([]byte("GORD")) {
		t.Fatal("short prefix sniffed as binary")
	}
}

// TestStreamParallelWorkers forces the sharded path inside each block.
func TestStreamParallelWorkers(t *testing.T) {
	SetIngestParallelism(4)
	defer SetIngestParallelism(0)
	data := randomEdgeList(2, 300, 2000)
	want, err := readEdgeListSerial(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListStreamBuffer(bytes.NewReader(data), 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("forced-parallel stream CSR differs from serial")
	}
}
