package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/cache"
)

// naiveDistances computes reuse distances with an explicit LRU stack:
// the distance of an access is the current stack index of its line.
func naiveDistances(trace []uint64) []int64 {
	var stack []uint64
	out := make([]int64, 0, len(trace))
	for _, line := range trace {
		pos := -1
		for i, l := range stack {
			if l == line {
				pos = i
				break
			}
		}
		if pos == -1 {
			out = append(out, Infinite)
			stack = append([]uint64{line}, stack...)
			continue
		}
		out = append(out, int64(pos))
		copy(stack[1:pos+1], stack[:pos])
		stack[0] = line
	}
	return out
}

func TestSimpleSequence(t *testing.T) {
	a := NewAnalyzer(1, 2, 4)
	// Trace: A B A  → A cold, B cold, A distance 1.
	a.Touch(10)
	a.Touch(20)
	a.Touch(10)
	p := a.Profile()
	if p.Total != 3 || p.Cold != 2 {
		t.Fatalf("total=%d cold=%d", p.Total, p.Cold)
	}
	// distance 1 → bucket 1.
	if p.Buckets[1] != 1 {
		t.Fatalf("buckets = %v", p.Buckets)
	}
	// Capacity 1: dist 1 >= 1 → miss. Capacity 2: dist 1 < 2 → hit.
	if p.Misses[0] != 1 || p.Misses[1] != 0 || p.Misses[2] != 0 {
		t.Fatalf("misses = %v", p.Misses)
	}
}

func TestDistanceZero(t *testing.T) {
	a := NewAnalyzer(1)
	a.Touch(5)
	a.Touch(5)
	p := a.Profile()
	if p.Buckets[0] != 1 {
		t.Fatalf("immediate reuse not in bucket 0: %v", p.Buckets)
	}
	if p.Misses[0] != 0 {
		t.Fatalf("distance-0 access missed in capacity-1 cache")
	}
}

// Aggregate counts match the naive LRU-stack reference on random
// traces.
func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLines := 1 + rng.Intn(40)
		trace := make([]uint64, 300)
		for i := range trace {
			trace[i] = uint64(rng.Intn(nLines)) * 64
		}
		caps := []int64{1, 2, 4, 8, 16, 32}
		a := NewAnalyzer(caps...)
		for _, l := range trace {
			a.Touch(l)
		}
		p := a.Profile()
		ref := naiveDistances(trace)
		var cold uint64
		misses := make([]uint64, len(caps))
		for _, d := range ref {
			if d == Infinite {
				cold++
				continue
			}
			for i, c := range caps {
				if d >= c {
					misses[i]++
				}
			}
		}
		if p.Cold != cold {
			return false
		}
		for i := range caps {
			if p.Misses[i] != misses[i] {
				return false
			}
		}
		return p.Total == uint64(len(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Compaction must not change results: long trace over few lines
// triggers it (now > 4*distinct + 1024).
func TestCompactionPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nLines = 16
	trace := make([]uint64, 8000)
	for i := range trace {
		trace[i] = uint64(rng.Intn(nLines)) * 64
	}
	a := NewAnalyzer(4, 8, 16)
	for _, l := range trace {
		a.Touch(l)
	}
	p := a.Profile()
	ref := naiveDistances(trace)
	var wantMiss4 uint64
	for _, d := range ref {
		if d != Infinite && d >= 4 {
			wantMiss4++
		}
	}
	if p.Misses[0] != wantMiss4 {
		t.Fatalf("after compaction misses[4] = %d, want %d", p.Misses[0], wantMiss4)
	}
	if p.Cold != nLines {
		t.Fatalf("cold = %d, want %d", p.Cold, nLines)
	}
}

// Cross-validation with the cache simulator: a single-level
// fully-associative LRU cache of capacity C lines must miss exactly
// when the reuse distance is >= C (plus cold misses).
func TestQuickAgreesWithFullyAssociativeSimulator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capLines = 8
		h := cache.New(cache.Config{
			Levels: []cache.LevelConfig{{
				Name: "L", Size: capLines * 64, LineSize: 64, Ways: capLines, Latency: 1,
			}},
			MemoryLatency: 10,
		})
		a := NewAnalyzer(capLines)
		nLines := 1 + rng.Intn(30)
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(nLines)) * 64
			h.Access(addr)
			a.Touch(addr >> 6)
		}
		sim := h.Report().MemRefs
		model := a.Profile()
		return sim == model.Misses[0]+model.Cold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMissRatioAndMeanDistance(t *testing.T) {
	a := NewAnalyzer(2)
	for i := 0; i < 4; i++ {
		a.Touch(uint64(i))
	}
	for i := 0; i < 4; i++ {
		a.Touch(uint64(i)) // each at distance 3
	}
	p := a.Profile()
	if got := p.MissRatio(0); got != 1.0 { // 4 cold + 4 at distance 3 >= 2
		t.Fatalf("MissRatio = %v, want 1", got)
	}
	if md := p.MeanDistance(); md < 2 || md > 4 {
		t.Fatalf("MeanDistance = %v, want ≈3", md)
	}
}

func TestEmptyProfile(t *testing.T) {
	p := NewAnalyzer(4).Profile()
	if p.MissRatio(0) != 0 || p.MeanDistance() != 0 {
		t.Fatal("empty profile not zeroed")
	}
}

func TestPanicsOnDescendingCapacities(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending capacities accepted")
		}
	}()
	NewAnalyzer(8, 4)
}
