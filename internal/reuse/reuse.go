// Package reuse computes LRU reuse distances (stack distances) over a
// cache-line access stream. The reuse-distance profile is the
// machine-independent explanation of the paper's effect: a vertex
// ordering speeds an algorithm up exactly when it shortens reuse
// distances, because an access whose distance is d hits in every
// fully-associative LRU cache with capacity > d lines, regardless of
// the hierarchy's exact geometry.
//
// The analyzer uses the classic Bennett–Kruskal algorithm: a Fenwick
// tree over access times counts the distinct lines touched since the
// previous access to the same line, giving O(log n) per access. The
// time axis is compacted periodically so memory stays proportional to
// the number of distinct lines, not the trace length.
package reuse

import (
	"math/bits"
	"slices"
)

// Infinite is the distance reported for cold (first-ever) accesses.
const Infinite = int64(-1)

// Analyzer ingests a stream of cache-line addresses via Touch and
// maintains both a log₂-bucketed distance histogram and exact miss
// counts for a configured set of cache capacities.
type Analyzer struct {
	capacities []int64  // line counts to evaluate, ascending
	misses     []uint64 // accesses with distance >= capacities[i]
	cold       uint64
	total      uint64
	buckets    []uint64 // buckets[b] = accesses with 2^b <= distance < 2^(b+1)

	lastTime map[uint64]int32 // line -> time of previous access
	tree     []int32          // Fenwick tree over times; 1 = live mark
	now      int32            // next time slot (== len of logical time axis)
	live     int32            // number of live marks (= distinct lines seen)
}

// NewAnalyzer returns an analyzer that additionally tracks exact miss
// counts for the given cache capacities (in lines). Capacities may be
// nil if only the histogram is wanted.
func NewAnalyzer(capacities ...int64) *Analyzer {
	caps := append([]int64(nil), capacities...)
	for i := 1; i < len(caps); i++ {
		if caps[i] < caps[i-1] {
			panic("reuse: capacities must be ascending")
		}
	}
	return &Analyzer{
		capacities: caps,
		misses:     make([]uint64, len(caps)),
		lastTime:   make(map[uint64]int32),
		tree:       make([]int32, 1),
	}
}

// fenwick helpers over a.tree (1-based).

func (a *Analyzer) add(i int32, delta int32) {
	for ; int(i) < len(a.tree); i += i & (-i) {
		a.tree[i] += delta
	}
}

func (a *Analyzer) prefix(i int32) int32 {
	var s int32
	for ; i > 0; i -= i & (-i) {
		s += a.tree[i]
	}
	return s
}

// grow ensures the tree can hold time slot t (1-based index t+1).
func (a *Analyzer) grow() {
	if int(a.now)+2 <= len(a.tree) {
		return
	}
	// Doubling loses Fenwick partial sums; rebuild by re-adding the
	// live marks (amortised O(1) per Touch across doublings).
	size := 2 * len(a.tree)
	if size < 1024 {
		size = 1024
	}
	a.tree = make([]int32, size)
	for _, t := range a.lastTime {
		a.add(t+1, 1)
	}
}

// compact rebuilds the time axis keeping only live marks, preserving
// their order. Memory then shrinks to O(distinct lines).
func (a *Analyzer) compact() {
	type mark struct {
		line uint64
		t    int32
	}
	marks := make([]mark, 0, len(a.lastTime))
	for line, t := range a.lastTime {
		marks = append(marks, mark{line, t})
	}
	// Sort by old time to preserve recency order.
	slices.SortFunc(marks, func(a, b mark) int { return int(a.t) - int(b.t) })
	a.tree = make([]int32, nextPow2(len(marks)*2+2))
	a.now = 0
	for i := range marks {
		a.lastTime[marks[i].line] = a.now
		a.add(a.now+1, 1)
		a.now++
	}
}

func nextPow2(n int) int {
	if n < 1024 {
		return 1024
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// Touch records one access to the given cache line.
func (a *Analyzer) Touch(line uint64) {
	a.total++
	prev, seen := a.lastTime[line]
	var dist int64
	if !seen {
		a.cold++
		a.live++
		dist = Infinite
	} else {
		// Distinct lines strictly after prev: live marks in (prev, now).
		dist = int64(a.prefix(a.now) - a.prefix(prev+1))
		a.add(prev+1, -1)
		b := bucketOf(dist)
		for len(a.buckets) <= b {
			a.buckets = append(a.buckets, 0)
		}
		a.buckets[b]++
		// Capacities are ascending, so the capacities this access
		// misses in form a prefix.
		for i := 0; i < len(a.capacities); i++ {
			if dist < a.capacities[i] {
				break
			}
			a.misses[i]++
		}
	}
	a.grow()
	a.lastTime[line] = a.now
	a.add(a.now+1, 1)
	a.now++
	// Compact when the dead portion of the time axis dominates.
	if int(a.now) > 4*len(a.lastTime)+1024 {
		a.compact()
	}
}

// bucketOf maps a distance to its log2 bucket (distance 0 → bucket 0,
// 1 → 1, 2..3 → 2, 4..7 → 3, ...).
func bucketOf(d int64) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// Profile is the analysis result.
type Profile struct {
	Total uint64 // accesses
	Cold  uint64 // first-ever accesses (infinite distance)
	// Buckets[b] counts accesses with log2 bucket b; bucket 0 holds
	// distance 0, bucket b>0 holds [2^(b-1), 2^b).
	Buckets []uint64
	// Capacities and Misses pair up: Misses[i] is the number of
	// non-cold accesses whose distance >= Capacities[i]; a
	// fully-associative LRU cache with that many lines would miss
	// exactly Misses[i]+Cold times.
	Capacities []int64
	Misses     []uint64
}

// Profile returns a snapshot of the analysis.
func (a *Analyzer) Profile() Profile {
	return Profile{
		Total:      a.total,
		Cold:       a.cold,
		Buckets:    append([]uint64(nil), a.buckets...),
		Capacities: append([]int64(nil), a.capacities...),
		Misses:     append([]uint64(nil), a.misses...),
	}
}

// MissRatio returns the modelled miss ratio (cold misses included)
// for the i-th configured capacity.
func (p Profile) MissRatio(i int) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Misses[i]+p.Cold) / float64(p.Total)
}

// MeanDistance returns the arithmetic mean of finite reuse distances,
// approximated from bucket midpoints. It is the scalar locality
// summary used in reports.
func (p Profile) MeanDistance() float64 {
	var sum, count float64
	for b, c := range p.Buckets {
		if c == 0 {
			continue
		}
		mid := 0.0
		if b > 0 {
			lo := int64(1) << uint(b-1)
			hi := int64(1)<<uint(b) - 1
			mid = float64(lo+hi) / 2
		}
		sum += mid * float64(c)
		count += float64(c)
	}
	if count == 0 {
		return 0
	}
	return sum / count
}
