package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

func TestReadGraphFromSniffsBinary(t *testing.T) {
	g := gen.Ring(10)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraphFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("binary sniff round trip failed")
	}
}

func TestReadGraphFromSniffsText(t *testing.T) {
	text := "# comment\n0 1\n1 2\n"
	h, err := ReadGraphFrom(bytes.NewReader([]byte(text)))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 3 || h.NumEdges() != 2 {
		t.Fatalf("sniffed text graph n=%d m=%d", h.NumNodes(), h.NumEdges())
	}
}

func TestReadGraphFromRejectsGarbage(t *testing.T) {
	if _, err := ReadGraphFrom(bytes.NewReader([]byte("completely bogus"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadGraphFile(t *testing.T) {
	g := gen.Ring(6)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	h, err := ReadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("file round trip failed")
	}
	if _, err := ReadGraph(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestComputeOrderingAllMethods(t *testing.T) {
	g := gen.BarabasiAlbert(120, 4, 1)
	for _, m := range MethodNames() {
		p, err := ComputeOrdering(g, OrderingSpec{Method: m, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	// Case-insensitive.
	if _, err := ComputeOrdering(g, OrderingSpec{Method: "GORDER"}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeOrderingUnknown(t *testing.T) {
	g := graph.FromEdges(2, nil)
	if _, err := ComputeOrdering(g, OrderingSpec{Method: "metis"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
