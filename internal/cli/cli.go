// Package cli holds the logic shared by the command-line tools:
// format-sniffing graph loading and ordering dispatch by name. It
// exists so the cmd/ mains stay thin and this logic is unit-tested.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gorder/internal/core"
	"gorder/internal/graph"
	"gorder/internal/order"
)

// ReadGraph loads a graph from path, accepting both the binary CSR
// format and text edge lists (sniffed in that order). "-" reads a
// text edge list from stdin. The whole file is read up front so the
// parallel loaders can chunk it in place.
func ReadGraph(path string) (*graph.Graph, error) {
	if path == "-" {
		return graph.ReadEdgeList(os.Stdin)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadGraphBytes(data)
}

// ReadGraphBytes sniffs the format of an in-memory graph file: binary
// first (by magic), then text edge list. Upload handlers and the file
// loader share this path so both get the parallel ingest pipeline
// without an io.Reader round trip.
func ReadGraphBytes(data []byte) (*graph.Graph, error) {
	if g, err := graph.ReadBinaryBytes(data); err == nil {
		return g, nil
	}
	return graph.ReadEdgeListBytes(data)
}

// ReadGraphFrom sniffs the format of a seekable stream: binary first,
// then text edge list.
func ReadGraphFrom(f io.ReadSeeker) (*graph.Graph, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return ReadGraphBytes(data)
}

// OrderingSpec configures ComputeOrdering.
type OrderingSpec struct {
	Method string // case-insensitive ordering name
	Window int    // gorder window (0 = default)
	Hub    int    // gorder hub-skip threshold (0 = exact)
	Seed   uint64 // seed for stochastic methods
}

// methodNames lists the orderings ComputeOrdering accepts.
var methodNames = []string{
	"chdfs", "dbg", "gorder", "gorder-parallel", "hubsort", "indegsort",
	"ldg", "minla", "minloga", "multilevel", "original", "random", "rcm",
	"slashburn", "slashburn-full",
}

// MethodNames returns the accepted ordering names, sorted.
func MethodNames() []string {
	out := append([]string(nil), methodNames...)
	sort.Strings(out)
	return out
}

// ComputeOrdering dispatches an ordering by name.
func ComputeOrdering(g *graph.Graph, spec OrderingSpec) (order.Permutation, error) {
	return ComputeOrderingCtx(context.Background(), g, spec)
}

// ComputeOrderingCtx dispatches an ordering by name with cooperative
// cancellation. The Gorder variants check ctx inside their greedy
// loops; the cheap baselines run to completion but the dispatcher
// refuses to start once ctx is done, so a deadline bounds every
// method's queue-to-start latency even when it cannot interrupt the
// method itself.
func ComputeOrderingCtx(ctx context.Context, g *graph.Graph, spec OrderingSpec) (order.Permutation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch strings.ToLower(spec.Method) {
	case "gorder":
		return core.OrderWithCtx(ctx, g, core.Options{Window: spec.Window, HubThreshold: spec.Hub})
	case "gorder-parallel":
		return core.OrderParallelCtx(ctx, g, core.Options{Window: spec.Window, HubThreshold: spec.Hub}, 0)
	case "multilevel":
		var coarseErr error
		p := order.Multilevel(g, order.MultilevelOptions{
			OrderCoarse: func(cg *graph.Graph) order.Permutation {
				cp, err := core.OrderWithCtx(ctx, cg, core.Options{Window: spec.Window, HubThreshold: spec.Hub})
				if err != nil {
					coarseErr = err
					return order.Identity(cg.NumNodes())
				}
				return cp
			},
		})
		if coarseErr != nil {
			return nil, coarseErr
		}
		return p, nil
	case "original":
		return order.Identity(g.NumNodes()), nil
	case "random":
		return order.Random(g.NumNodes(), spec.Seed), nil
	case "rcm":
		return order.RCM(g), nil
	case "indegsort":
		return order.InDegSort(g), nil
	case "chdfs":
		return order.ChDFS(g), nil
	case "slashburn":
		return order.SlashBurn(g), nil
	case "slashburn-full":
		return order.SlashBurnFull(g, 0), nil
	case "hubsort":
		return order.HubSort(g), nil
	case "dbg":
		return order.DBG(g), nil
	case "ldg":
		return order.LDG(g, 64), nil
	case "minla":
		return order.MinLA(g, order.AnnealOptions{Seed: spec.Seed}), nil
	case "minloga":
		return order.MinLogA(g, order.AnnealOptions{Seed: spec.Seed}), nil
	default:
		return nil, fmt.Errorf("unknown ordering %q (known: %s)",
			spec.Method, strings.Join(MethodNames(), " "))
	}
}
