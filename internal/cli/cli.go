// Package cli holds the logic shared by the command-line tools:
// format-sniffing graph loading and a thin adapter from flag-level
// ordering specs to the registry. It exists so the cmd/ mains stay
// thin and this logic is unit-tested. All ordering dispatch lives in
// internal/registry; this package only translates an OrderingSpec
// into registry.Options.
package cli

import (
	"context"
	"io"
	"os"

	"gorder/internal/graph"
	"gorder/internal/order"
	"gorder/internal/registry"
)

// ReadGraph loads a graph from path, accepting both the binary CSR
// format and text edge lists (sniffed in that order). "-" reads a
// text edge list from stdin. The whole file is read up front so the
// parallel loaders can chunk it in place.
func ReadGraph(path string) (*graph.Graph, error) {
	if path == "-" {
		return graph.ReadEdgeList(os.Stdin)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadGraphBytes(data)
}

// ReadGraphBytes sniffs the format of an in-memory graph file: binary
// first (by magic), then text edge list. Upload handlers and the file
// loader share this path so both get the parallel ingest pipeline
// without an io.Reader round trip.
func ReadGraphBytes(data []byte) (*graph.Graph, error) {
	if g, err := graph.ReadBinaryBytes(data); err == nil {
		return g, nil
	}
	return graph.ReadEdgeListBytes(data)
}

// ReadGraphFrom sniffs the format of a seekable stream: binary first,
// then text edge list.
func ReadGraphFrom(f io.ReadSeeker) (*graph.Graph, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return ReadGraphBytes(data)
}

// OrderingSpec configures ComputeOrdering. It is the flag/JSON-level
// view of registry.Options plus the method name.
type OrderingSpec struct {
	Method     string // case-insensitive ordering name
	Window     int    // gorder window (0 = default)
	Hub        int    // gorder hub-skip threshold (0 = exact)
	Seed       uint64 // seed for stochastic methods
	LDGBins    int    // LDG bin count (0 = registry.DefaultLDGBins)
	Workers    int    // parallel-method worker bound (0 = GOMAXPROCS)
	Partitions int    // gorder-partitioned partition count (0 = default)
}

// options translates the spec into registry options.
func (s OrderingSpec) options() registry.Options {
	return registry.Options{
		Window:       s.Window,
		HubThreshold: s.Hub,
		Seed:         s.Seed,
		LDGBins:      s.LDGBins,
		Workers:      s.Workers,
		Partitions:   s.Partitions,
	}
}

// MethodNames returns the accepted ordering names, sorted. It is the
// registry catalog verbatim.
func MethodNames() []string {
	return registry.MethodNames()
}

// ComputeOrdering dispatches an ordering by name.
func ComputeOrdering(g *graph.Graph, spec OrderingSpec) (order.Permutation, error) {
	return ComputeOrderingCtx(context.Background(), g, spec)
}

// ComputeOrderingCtx dispatches an ordering by name with cooperative
// cancellation, via the registry. Kept as a compatibility shim for
// callers written against the pre-registry API.
func ComputeOrderingCtx(ctx context.Context, g *graph.Graph, spec OrderingSpec) (order.Permutation, error) {
	return registry.Compute(ctx, g, spec.Method, spec.options())
}
