package algos

import (
	"gorder/internal/gen"
	"gorder/internal/graph"
)

// Betweenness centrality (Brandes' algorithm): another staple kernel
// for a graph library, and another BFS-shaped access pattern for the
// ordering experiments. The exact algorithm is O(n·m); Betweenness
// samples sources (Brandes–Pich approximation) with a deterministic
// seed, and BetweennessExact runs all sources.

// BetweennessExact computes exact betweenness centrality over
// unit-weight directed shortest paths.
func BetweennessExact(g *graph.Graph) []float64 {
	bc := make([]float64, g.NumNodes())
	for s := 0; s < g.NumNodes(); s++ {
		brandesFrom(g, graph.NodeID(s), 1, bc)
	}
	return bc
}

// Betweenness approximates betweenness centrality from `samples`
// random sources, scaling contributions by n/samples so values are
// comparable to the exact ones in expectation.
func Betweenness(g *graph.Graph, samples int, seed uint64) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n == 0 || samples <= 0 {
		return bc
	}
	if samples >= n {
		return BetweennessExact(g)
	}
	rng := gen.NewRNG(seed)
	scale := float64(n) / float64(samples)
	for i := 0; i < samples; i++ {
		brandesFrom(g, graph.NodeID(rng.Intn(n)), scale, bc)
	}
	return bc
}

// brandesFrom accumulates source s's dependency contributions into bc.
func brandesFrom(g *graph.Graph, s graph.NodeID, scale float64, bc []float64) {
	n := g.NumNodes()
	sigma := make([]float64, n) // shortest-path counts
	dist := make([]int32, n)
	delta := make([]float64, n) // dependencies
	for i := range dist {
		dist[i] = Unreached
	}
	// preds stores, per vertex, the CSR-flattened predecessor list.
	preds := make([][]graph.NodeID, n)

	order := make([]graph.NodeID, 0, n) // BFS visit order
	sigma[s] = 1
	dist[s] = 0
	order = append(order, s)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, w := range g.OutNeighbors(v) {
			if dist[w] == Unreached {
				dist[w] = dist[v] + 1
				order = append(order, w)
			}
			if dist[w] == dist[v]+1 {
				sigma[w] += sigma[v]
				preds[w] = append(preds[w], v)
			}
		}
	}
	// Dependency accumulation in reverse BFS order.
	for i := len(order) - 1; i > 0; i-- {
		w := order[i]
		coeff := (1 + delta[w]) / sigma[w]
		for _, v := range preds[w] {
			delta[v] += sigma[v] * coeff
		}
		bc[w] += delta[w] * scale
	}
}
