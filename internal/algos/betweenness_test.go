package algos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// naiveBetweenness enumerates all shortest paths explicitly via
// per-pair path counting — exponentially safer ground truth for tiny
// graphs.
func naiveBetweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		// BFS distances and path counts from s.
		dist, _ := BFSFrom(g, graph.NodeID(s))
		sigma := make([]float64, n)
		sigma[s] = 1
		// Process in distance order.
		byDist := make([][]graph.NodeID, 0)
		maxd := int32(0)
		for _, d := range dist {
			if d > maxd {
				maxd = d
			}
		}
		byDist = make([][]graph.NodeID, maxd+1)
		for v := 0; v < n; v++ {
			if dist[v] >= 0 {
				byDist[dist[v]] = append(byDist[dist[v]], graph.NodeID(v))
			}
		}
		for d := int32(0); d < maxd; d++ {
			for _, v := range byDist[d] {
				for _, w := range g.OutNeighbors(v) {
					if dist[w] == d+1 {
						sigma[w] += sigma[v]
					}
				}
			}
		}
		// For every target t, walk dependencies: delta accumulation.
		delta := make([]float64, n)
		for d := maxd; d > 0; d-- {
			for _, w := range byDist[d] {
				for v := 0; v < n; v++ {
					if dist[v] == d-1 && g.HasEdge(graph.NodeID(v), w) {
						delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
					}
				}
				if int(w) != s {
					bc[w] += delta[w]
				}
			}
		}
	}
	return bc
}

func TestBetweennessPath(t *testing.T) {
	// Path 0→1→2→3: interior vertices carry all pass-through paths.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}})
	bc := BetweennessExact(g)
	// Vertex 1 lies on paths 0→2, 0→3; vertex 2 on 0→3, 1→3.
	if bc[1] != 2 || bc[2] != 2 {
		t.Fatalf("bc = %v, want interior 2, 2", bc)
	}
	if bc[0] != 0 || bc[3] != 0 {
		t.Fatalf("endpoints nonzero: %v", bc)
	}
}

func TestBetweennessDiamondSplit(t *testing.T) {
	// 0→{1,2}→3: two equal shortest paths, each middle vertex gets ½.
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3},
	})
	bc := BetweennessExact(g)
	if math.Abs(bc[1]-0.5) > 1e-12 || math.Abs(bc[2]-0.5) > 1e-12 {
		t.Fatalf("bc = %v, want 0.5 for both middles", bc)
	}
}

func TestQuickBetweennessMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := randGraph(rng, n, rng.Intn(3*n))
		got := BetweennessExact(g)
		want := naiveBetweenness(g)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Betweenness is relabel-equivariant.
func TestQuickBetweennessRelabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randGraph(rng, n, rng.Intn(4*n))
		perm := order.Random(n, uint64(seed))
		h := g.Relabel(perm)
		a := BetweennessExact(g)
		b := BetweennessExact(h)
		for u := 0; u < n; u++ {
			if math.Abs(a[u]-b[perm[u]]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBetweennessSampledFallsBackToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 12, 40)
	exact := BetweennessExact(g)
	all := Betweenness(g, 100, 1) // samples >= n → exact
	for i := range exact {
		if math.Abs(exact[i]-all[i]) > 1e-9 {
			t.Fatal("samples >= n did not reduce to exact")
		}
	}
}

func TestBetweennessSampledReasonable(t *testing.T) {
	// On a star all pass-through centrality is at the hub; sampling
	// must still rank the hub first.
	var edges []graph.Edge
	for i := 1; i <= 20; i++ {
		edges = append(edges,
			graph.Edge{From: graph.NodeID(i), To: 0},
			graph.Edge{From: 0, To: graph.NodeID(i)})
	}
	g := graph.FromEdges(21, edges)
	bc := Betweenness(g, 5, 3)
	for v := 1; v <= 20; v++ {
		if bc[v] > bc[0] {
			t.Fatalf("leaf %d outranks hub: %v > %v", v, bc[v], bc[0])
		}
	}
}

func TestBetweennessEmpty(t *testing.T) {
	if bc := Betweenness(graph.FromEdges(0, nil), 3, 1); len(bc) != 0 {
		t.Error("empty graph mishandled")
	}
}
