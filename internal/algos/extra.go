package algos

import (
	"gorder/internal/graph"
)

// Extra kernels beyond the paper's nine: the most common remaining
// workloads a graph-processing library is expected to ship. They use
// the same CSR substrate, benefit from vertex orderings the same way,
// and have traced variants (extra_traced.go) for the cache
// experiments.

// WCC computes weakly connected components (edge direction ignored)
// with a union-find over the out-edges, using union by size and path
// halving. It returns dense component IDs (numbered by smallest
// member) and the component count.
func WCC(g *graph.Graph) (comp []int32, count int) {
	n := g.NumNodes()
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	g.Edges(func(u, v graph.NodeID) bool {
		union(int32(u), int32(v))
		return true
	})
	comp = make([]int32, n)
	remap := make(map[int32]int32, 16)
	for v := 0; v < n; v++ {
		root := find(int32(v))
		id, ok := remap[root]
		if !ok {
			id = int32(count)
			remap[root] = id
			count++
		}
		comp[v] = id
	}
	return comp, count
}

// TriangleCount counts the triangles of the undirected view of g with
// the forward (compact-forward) algorithm: each triangle {a, b, c}
// with a < b < c in degeneracy-friendly rank order is counted once at
// its smallest-rank vertex via sorted-adjacency intersection.
func TriangleCount(g *graph.Graph) int64 {
	u := g.Undirected()
	n := u.NumNodes()
	// Rank by degree ascending so high-degree vertices come last and
	// each intersection runs over the two smaller forward lists.
	rank := make([]int32, n)
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sortByDegree(u, order)
	for pos, v := range order {
		rank[v] = int32(pos)
	}
	// forward[v] = neighbours of v with higher rank, in rank order.
	forward := make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		for _, w := range u.OutNeighbors(graph.NodeID(v)) {
			if rank[w] > rank[v] {
				forward[v] = append(forward[v], w)
			}
		}
		sortByRank(rank, forward[v])
	}
	var triangles int64
	for v := 0; v < n; v++ {
		fv := forward[v]
		for _, w := range fv {
			triangles += intersectByRank(rank, fv, forward[w])
		}
	}
	return triangles
}

func sortByDegree(g *graph.Graph, order []graph.NodeID) {
	// Counting sort by degree keeps this O(n + maxdeg) and stable.
	maxd := 0
	for _, v := range order {
		if d := g.OutDegree(v); d > maxd {
			maxd = d
		}
	}
	buckets := make([][]graph.NodeID, maxd+1)
	for _, v := range order {
		d := g.OutDegree(v)
		buckets[d] = append(buckets[d], v)
	}
	i := 0
	for _, b := range buckets {
		for _, v := range b {
			order[i] = v
			i++
		}
	}
}

func sortByRank(rank []int32, list []graph.NodeID) {
	// Insertion sort: forward lists are short on sparse graphs.
	for i := 1; i < len(list); i++ {
		v := list[i]
		j := i - 1
		for j >= 0 && rank[list[j]] > rank[v] {
			list[j+1] = list[j]
			j--
		}
		list[j+1] = v
	}
}

func intersectByRank(rank []int32, a, b []graph.NodeID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ra, rb := rank[a[i]], rank[b[j]]
		switch {
		case ra < rb:
			i++
		case ra > rb:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// DefaultLabelPropIters bounds the label-propagation sweeps; sparse
// social graphs converge in a handful.
const DefaultLabelPropIters = 20

// LabelPropagation runs deterministic asynchronous label propagation
// for community detection over the undirected view: vertices sweep in
// ID order adopting the most frequent label among their neighbours
// (lowest label on ties), until a sweep changes nothing or maxIters
// is hit. Labels are then compacted to dense community IDs.
func LabelPropagation(g *graph.Graph, maxIters int) (labels []int32, communities int) {
	u := g.Undirected()
	n := u.NumNodes()
	if maxIters <= 0 {
		maxIters = DefaultLabelPropIters
	}
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	counts := make(map[int32]int, 16)
	for it := 0; it < maxIters; it++ {
		changed := false
		for v := 0; v < n; v++ {
			adj := u.OutNeighbors(graph.NodeID(v))
			if len(adj) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, w := range adj {
				counts[labels[w]]++
			}
			best, bestCount := labels[v], 0
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != labels[v] {
				labels[v] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	remap := make(map[int32]int32, 16)
	for v := 0; v < n; v++ {
		id, ok := remap[labels[v]]
		if !ok {
			id = int32(communities)
			remap[labels[v]] = id
			communities++
		}
		labels[v] = id
	}
	return labels, communities
}
