package algos

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

// DOBFS must compute exactly the distances plain BFS computes.
func TestQuickDOBFSMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := randGraph(rng, n, rng.Intn(6*n))
		src := graph.NodeID(rng.Intn(n))
		a, ra := BFSFrom(g, src)
		b, rb := DOBFS(g, src)
		if ra != rb {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// A dense well-connected graph drives the bottom-up branch; the
// distances must still match.
func TestDOBFSBottomUpPath(t *testing.T) {
	g := gen.ErdosRenyi(300, 300*40, 7) // avg degree ≈ 40: frontier blows up fast
	a, ra := BFSFrom(g, 0)
	b, rb := DOBFS(g, 0)
	if ra != rb {
		t.Fatalf("reached %d vs %d", ra, rb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dist[%d] = %d vs %d", i, a[i], b[i])
		}
	}
	// Sanity: the graph is dense enough that most vertices sit within
	// 2 hops, so the bottom-up condition (frontier edges > unexplored
	// edges / alpha and frontier > n/beta) actually triggered.
	twoHop := 0
	for _, d := range a {
		if d >= 0 && d <= 2 {
			twoHop++
		}
	}
	if twoHop < 250 {
		t.Skip("graph unexpectedly sparse; bottom-up branch may not have run")
	}
}

func TestDOBFSUnreachable(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}})
	dist, reached := DOBFS(g, 0)
	if reached != 2 || dist[2] != Unreached || dist[3] != Unreached {
		t.Fatalf("dist = %v reached = %d", dist, reached)
	}
}

func TestDOBFSSingleton(t *testing.T) {
	g := graph.FromEdges(1, nil)
	dist, reached := DOBFS(g, 0)
	if reached != 1 || dist[0] != 0 {
		t.Fatalf("singleton: %v %d", dist, reached)
	}
}
