package algos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

func randGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n))}
	}
	return graph.FromEdgesDedup(n, edges)
}

func TestNeighbourQuery(t *testing.T) {
	// 0 -> {1, 2}; outdeg(1)=1 (1->2), outdeg(2)=0.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}})
	q := NeighbourQuery(g)
	want := []int64{1, 0, 0}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("NQ = %v, want %v", q, want)
		}
	}
}

func TestBFSFromDistances(t *testing.T) {
	// 0 -> 1 -> 2, 0 -> 3; 4 unreachable.
	g := graph.FromEdges(5, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 0, To: 3}})
	dist, reached := BFSFrom(g, 0)
	want := []int32{0, 1, 2, 1, Unreached}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
	if reached != 4 {
		t.Errorf("reached = %d, want 4", reached)
	}
}

func TestBFSAllCoversEverything(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{From: 0, To: 1}, {From: 3, To: 4}})
	seq := BFSAll(g)
	if len(seq) != 5 {
		t.Fatalf("BFSAll visited %d vertices, want 5", len(seq))
	}
	seen := make([]bool, 5)
	for _, v := range seq {
		if seen[v] {
			t.Fatal("vertex visited twice")
		}
		seen[v] = true
	}
}

func TestDFSAllPreorder(t *testing.T) {
	// 0 -> {1, 3}, 1 -> {2}: preorder 0,1,2,3.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 3}, {From: 1, To: 2}})
	seq := DFSAll(g)
	want := []graph.NodeID{0, 1, 2, 3}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("DFS = %v, want %v", seq, want)
		}
	}
}

// kosaraju is the reference SCC implementation for cross-checking.
func kosaraju(g *graph.Graph) []int32 {
	n := g.NumNodes()
	visited := make([]bool, n)
	var finish []graph.NodeID
	var stack []graph.NodeID
	// First pass: record finish order with an explicit post-order DFS.
	state := make([]int, n) // adjacency cursor
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		stack = append(stack[:0], graph.NodeID(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			adj := g.OutNeighbors(u)
			if state[u] < len(adj) {
				v := adj[state[u]]
				state[u]++
				if !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
				continue
			}
			finish = append(finish, u)
			stack = stack[:len(stack)-1]
		}
	}
	// Second pass on the transpose in reverse finish order.
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var c int32
	for i := len(finish) - 1; i >= 0; i-- {
		s := finish[i]
		if comp[s] != -1 {
			continue
		}
		stack = append(stack[:0], s)
		comp[s] = c
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.InNeighbors(u) {
				if comp[v] == -1 {
					comp[v] = c
					stack = append(stack, v)
				}
			}
		}
		c++
	}
	return comp
}

func sameComponents(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int32]int32)
	bwd := make(map[int32]int32)
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := bwd[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func TestSCCSmall(t *testing.T) {
	// Cycle 0->1->2->0 plus tail 2->3.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 2, To: 3}})
	comp, count := SCC(g)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] || comp[3] == comp[0] {
		t.Fatalf("comp = %v", comp)
	}
}

func TestQuickSCCMatchesKosaraju(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := randGraph(rng, n, rng.Intn(4*n))
		comp, count := SCC(g)
		ref := kosaraju(g)
		maxRef := int32(-1)
		for _, c := range ref {
			if c > maxRef {
				maxRef = c
			}
		}
		return int32(count) == maxRef+1 && sameComponents(comp, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Bellman-Ford on unit weights must agree with BFS distances.
func TestQuickBellmanFordMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randGraph(rng, n, rng.Intn(4*n))
		src := graph.NodeID(rng.Intn(n))
		bf := BellmanFord(g, src)
		bfs, _ := BFSFrom(g, src)
		for i := range bf {
			if bf[i] != bfs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 1)
	rank := PageRank(g, 30, DefaultDamping)
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank sum = %v, want 1", sum)
	}
}

func TestPageRankStar(t *testing.T) {
	// All leaves point at the centre; the centre must dominate.
	edges := make([]graph.Edge, 0, 9)
	for i := 1; i < 10; i++ {
		edges = append(edges, graph.Edge{From: graph.NodeID(i), To: 0})
	}
	g := graph.FromEdges(10, edges)
	rank := PageRank(g, 50, DefaultDamping)
	for i := 1; i < 10; i++ {
		if rank[0] <= rank[i] {
			t.Fatalf("centre rank %v not above leaf %v", rank[0], rank[i])
		}
	}
}

func TestPageRankEmpty(t *testing.T) {
	if got := PageRank(graph.FromEdges(0, nil), 10, DefaultDamping); got != nil {
		t.Errorf("PageRank(empty) = %v", got)
	}
}

// PageRank is invariant under relabeling: rank(new id) == rank(old id).
func TestQuickPageRankRelabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randGraph(rng, n, rng.Intn(5*n))
		perm := order.Random(n, uint64(seed))
		h := g.Relabel(perm)
		ra := PageRank(g, 20, DefaultDamping)
		rb := PageRank(h, 20, DefaultDamping)
		for u := 0; u < n; u++ {
			if math.Abs(ra[u]-rb[perm[u]]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The greedy dominating set must actually dominate: every vertex is in
// the set or out-neighbour-covered by a set member.
func TestQuickDominatingSetDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := randGraph(rng, n, rng.Intn(4*n))
		set := DominatingSet(g)
		inSet := make([]bool, n)
		covered := make([]bool, n)
		for _, u := range set {
			if inSet[u] {
				return false // duplicates
			}
			inSet[u] = true
			covered[u] = true
			for _, v := range g.OutNeighbors(u) {
				covered[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if !covered[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDominatingSetStar(t *testing.T) {
	edges := make([]graph.Edge, 0, 9)
	for i := 1; i < 10; i++ {
		edges = append(edges, graph.Edge{From: 0, To: graph.NodeID(i)})
	}
	g := graph.FromEdges(10, edges)
	set := DominatingSet(g)
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("DominatingSet(star) = %v, want [0]", set)
	}
}

// naiveCores is the O(n^2) reference peeling for cross-checking.
func naiveCores(g *graph.Graph) []int32 {
	u := g.Undirected()
	n := u.NumNodes()
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = u.OutDegree(graph.NodeID(v))
	}
	core := make([]int32, n)
	level := 0
	for left := n; left > 0; left-- {
		best := -1
		for v := 0; v < n; v++ {
			if !removed[v] && (best == -1 || deg[v] < deg[best]) {
				best = v
			}
		}
		if deg[best] > level {
			level = deg[best]
		}
		core[best] = int32(level)
		removed[best] = true
		for _, w := range u.OutNeighbors(graph.NodeID(best)) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return core
}

func TestQuickCoreNumbersMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randGraph(rng, n, rng.Intn(4*n))
		got := CoreNumbers(g)
		want := naiveCores(g)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCoreNumbersClique(t *testing.T) {
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				edges = append(edges, graph.Edge{From: graph.NodeID(i), To: graph.NodeID(j)})
			}
		}
	}
	g := graph.FromEdges(5, edges)
	for _, c := range CoreNumbers(g) {
		if c != 4 {
			t.Fatalf("clique core numbers = %v, want all 4", CoreNumbers(g))
		}
	}
}

func TestDiameterRing(t *testing.T) {
	// Directed ring of 10: max distance from any vertex is 9.
	g := gen.Ring(10)
	if d := Diameter(g, 5, 1); d != 9 {
		t.Errorf("ring diameter = %d, want 9", d)
	}
}

func TestDiameterDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	if Diameter(g, 10, 7) != Diameter(g, 10, 7) {
		t.Error("Diameter not deterministic in seed")
	}
}

// All kernels produce relabel-consistent results: the visit structure
// changes, but scalar invariants (SCC count, core multiset, diameter
// upper bound via same sources is not comparable — use SCC/cores).
func TestQuickKernelsRelabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randGraph(rng, n, rng.Intn(5*n))
		perm := order.Random(n, uint64(seed)+99)
		h := g.Relabel(perm)
		_, ca := SCC(g)
		_, cb := SCC(h)
		if ca != cb {
			return false
		}
		coreA, coreB := CoreNumbers(g), CoreNumbers(h)
		for u := 0; u < n; u++ {
			if coreA[u] != coreB[perm[u]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
