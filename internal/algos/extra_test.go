package algos

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/cache"
	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/mem"
	"gorder/internal/order"
)

// bfsComponents is the reference WCC: BFS over the undirected view.
func bfsComponents(g *graph.Graph) []int32 {
	u := g.Undirected()
	n := u.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var c int32
	var queue []graph.NodeID
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = c
		queue = append(queue[:0], graph.NodeID(s))
		for head := 0; head < len(queue); head++ {
			for _, w := range u.OutNeighbors(queue[head]) {
				if comp[w] == -1 {
					comp[w] = c
					queue = append(queue, w)
				}
			}
		}
		c++
	}
	return comp
}

func TestWCCSmall(t *testing.T) {
	// Two components: {0,1,2} (via directed edges) and {3,4}.
	g := graph.FromEdges(5, []graph.Edge{{From: 0, To: 1}, {From: 2, To: 1}, {From: 4, To: 3}})
	comp, count := WCC(g)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Fatalf("comp = %v", comp)
	}
}

func TestQuickWCCMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := randGraph(rng, n, rng.Intn(3*n))
		got, count := WCC(g)
		want := bfsComponents(g)
		maxWant := int32(-1)
		for _, c := range want {
			if c > maxWant {
				maxWant = c
			}
		}
		if int32(count) != maxWant+1 {
			return false
		}
		return sameComponents(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// naiveTriangles enumerates all vertex triples — the ground truth.
func naiveTriangles(g *graph.Graph) int64 {
	u := g.Undirected()
	n := u.NumNodes()
	var count int64
	for a := graph.NodeID(0); int(a) < n; a++ {
		for b := a + 1; int(b) < n; b++ {
			if !u.HasEdge(a, b) {
				continue
			}
			for c := b + 1; int(c) < n; c++ {
				if u.HasEdge(a, c) && u.HasEdge(b, c) {
					count++
				}
			}
		}
	}
	return count
}

func TestTriangleCountSmall(t *testing.T) {
	// A triangle plus a pendant edge.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 2, To: 3}})
	if got := TriangleCount(g); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
}

func TestTriangleCountClique(t *testing.T) {
	var edges []graph.Edge
	const k = 6
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, graph.Edge{From: graph.NodeID(i), To: graph.NodeID(j)})
		}
	}
	g := graph.FromEdges(k, edges)
	want := int64(k * (k - 1) * (k - 2) / 6)
	if got := TriangleCount(g); got != want {
		t.Fatalf("K%d triangles = %d, want %d", k, got, want)
	}
}

func TestQuickTriangleCountMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := randGraph(rng, n, rng.Intn(4*n))
		return TriangleCount(g) == naiveTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Triangle count is relabel-invariant.
func TestQuickTriangleCountRelabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randGraph(rng, n, rng.Intn(5*n))
		h := g.Relabel(order.Random(n, uint64(seed)))
		return TriangleCount(g) == TriangleCount(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	// Two 4-cliques joined by one edge: two communities expected.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges,
				graph.Edge{From: graph.NodeID(i), To: graph.NodeID(j)},
				graph.Edge{From: graph.NodeID(i + 4), To: graph.NodeID(j + 4)})
		}
	}
	edges = append(edges, graph.Edge{From: 3, To: 4})
	g := graph.FromEdges(8, edges)
	labels, count := LabelPropagation(g, 0)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first clique split: %v", labels)
	}
	if labels[5] != labels[6] || labels[6] != labels[7] {
		t.Errorf("second clique split: %v", labels)
	}
	if count < 1 || count > 3 {
		t.Errorf("communities = %d, want a small number", count)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g := gen.SBM(400, 8, 10, 1, 3)
	a, ca := LabelPropagation(g, 0)
	b, cb := LabelPropagation(g, 0)
	if ca != cb {
		t.Fatal("community counts differ across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("labels differ across runs")
		}
	}
}

func TestLabelPropagationIsolated(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	labels, count := LabelPropagation(g, 0)
	if count != 2 { // {0,1} and {2}
		t.Fatalf("communities = %d, want 2 (labels %v)", count, labels)
	}
}

// Traced extra kernels must agree with their native counterparts.
func TestQuickExtraTracedMatchesNative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randGraph(rng, n, rng.Intn(4*n))
		s := mem.NewSpace(cache.New(cache.SmallMachine()))
		tg := NewTracedGraph(g, s)

		wc, wn := WCC(g)
		tc, tn := TracedWCC(g, tg, s)
		if wn != tn || !sameComponents(wc, tc) {
			return false
		}
		if TriangleCount(g) != TracedTriangleCount(g, s) {
			return false
		}
		la, ca := LabelPropagation(g, 7)
		lb, cb := TracedLabelPropagation(g, s, 7)
		if ca != cb {
			return false
		}
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
