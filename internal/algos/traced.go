package algos

import (
	"gorder/internal/bheap"
	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/mem"
)

// TracedGraph is a CSR graph whose array accesses go through the
// cache simulator. The underlying arrays alias the source graph — the
// traced kernels see the same data at modelled addresses laid out the
// way the native slices are.
//
// Tracing covers the data arrays the paper's perf counters would see
// dominate: the CSR index/adjacency arrays and every per-vertex state
// array of a kernel. Transient control state (loop counters, DFS call
// frames) stays native, as it would live in registers or the stack's
// permanently-hot cache lines.
type TracedGraph struct {
	n      int
	outIdx mem.I64
	outAdj mem.U32
	inIdx  mem.I64
	inAdj  mem.U32
}

// NewTracedGraph registers g's CSR arrays in the address space.
func NewTracedGraph(g *graph.Graph, s *mem.Space) *TracedGraph {
	return &TracedGraph{
		n:      g.NumNodes(),
		outIdx: s.WrapI64(g.OutIndex()),
		outAdj: s.WrapU32(g.OutAdjacency()),
		inIdx:  s.WrapI64(g.InIndex()),
		inAdj:  s.WrapU32(g.InAdjacency()),
	}
}

// NumNodes returns the vertex count.
func (t *TracedGraph) NumNodes() int { return t.n }

// outRange loads the CSR bounds of u's out-neighbour list.
func (t *TracedGraph) outRange(u int) (int64, int64) {
	return t.outIdx.Get(u), t.outIdx.Get(u + 1)
}

func (t *TracedGraph) inRange(u int) (int64, int64) {
	return t.inIdx.Get(u), t.inIdx.Get(u + 1)
}

// TracedNeighbourQuery mirrors NeighbourQuery through the simulator.
func TracedNeighbourQuery(t *TracedGraph, s *mem.Space) []int64 {
	q := s.NewI64(t.n)
	for u := 0; u < t.n; u++ {
		lo, hi := t.outRange(u)
		var sum int64
		for p := lo; p < hi; p++ {
			v := int(t.outAdj.Get(int(p)))
			vlo, vhi := t.outRange(v)
			sum += vhi - vlo
		}
		q.Set(u, sum)
	}
	out := make([]int64, t.n)
	for i := range out {
		out[i] = q.Get(i)
	}
	return out
}

// TracedBFSAll mirrors BFSAll through the simulator.
func TracedBFSAll(t *TracedGraph, s *mem.Space) []graph.NodeID {
	visited := s.NewBool(t.n)
	queue := s.NewU32(t.n)
	qlen := 0
	seq := make([]graph.NodeID, 0, t.n)
	for src := 0; src < t.n; src++ {
		if visited.Get(src) {
			continue
		}
		visited.Set(src, true)
		queue.Set(qlen, uint32(src))
		qlen++
		for head := len(seq); head < qlen; head++ {
			u := int(queue.Get(head))
			seq = append(seq, graph.NodeID(u))
			lo, hi := t.outRange(u)
			for p := lo; p < hi; p++ {
				v := int(t.outAdj.Get(int(p)))
				if !visited.Get(v) {
					visited.Set(v, true)
					queue.Set(qlen, uint32(v))
					qlen++
				}
			}
		}
	}
	return seq
}

// TracedDFSAll mirrors DFSAll through the simulator.
func TracedDFSAll(t *TracedGraph, s *mem.Space) []graph.NodeID {
	visited := s.NewBool(t.n)
	stack := s.NewU32(t.n + 1)
	seq := make([]graph.NodeID, 0, t.n)
	for src := 0; src < t.n; src++ {
		if visited.Get(src) {
			continue
		}
		top := 0
		stack.Set(top, uint32(src))
		top++
		for top > 0 {
			top--
			u := int(stack.Get(top))
			if visited.Get(u) {
				continue
			}
			visited.Set(u, true)
			seq = append(seq, graph.NodeID(u))
			lo, hi := t.outRange(u)
			for p := hi - 1; p >= lo; p-- {
				v := int(t.outAdj.Get(int(p)))
				if !visited.Get(v) {
					if top >= stack.Len() {
						grown := s.NewU32(stack.Len() * 2)
						for i := 0; i < top; i++ {
							grown.Set(i, stack.Get(i))
						}
						stack = grown
					}
					stack.Set(top, uint32(v))
					top++
				}
			}
		}
	}
	return seq
}

// TracedSCC mirrors SCC (iterative Tarjan) through the simulator.
func TracedSCC(t *TracedGraph, s *mem.Space) (comp []int32, count int) {
	n := t.n
	const none = int32(-1)
	compA := s.NewI32(n)
	index := s.NewI32(n)
	lowlink := s.NewI32(n)
	onStack := s.NewBool(n)
	index.Fill(none)
	compA.Fill(none)
	tstack := s.NewU32(n)
	tlen := 0
	var nextIndex int32
	type frame struct {
		v   int
		pos int64
		end int64
	}
	var frames []frame
	for src := 0; src < n; src++ {
		if index.Get(src) != none {
			continue
		}
		lo, hi := t.outRange(src)
		frames = append(frames[:0], frame{src, lo, hi})
		index.Set(src, nextIndex)
		lowlink.Set(src, nextIndex)
		nextIndex++
		tstack.Set(tlen, uint32(src))
		tlen++
		onStack.Set(src, true)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.pos < f.end {
				w := int(t.outAdj.Get(int(f.pos)))
				f.pos++
				if index.Get(w) == none {
					index.Set(w, nextIndex)
					lowlink.Set(w, nextIndex)
					nextIndex++
					tstack.Set(tlen, uint32(w))
					tlen++
					onStack.Set(w, true)
					wlo, whi := t.outRange(w)
					frames = append(frames, frame{w, wlo, whi})
					advanced = true
					break
				}
				if onStack.Get(w) && index.Get(w) < lowlink.Get(f.v) {
					lowlink.Set(f.v, index.Get(w))
				}
			}
			if advanced {
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink.Get(v) < lowlink.Get(p.v) {
					lowlink.Set(p.v, lowlink.Get(v))
				}
			}
			if lowlink.Get(v) == index.Get(v) {
				for {
					w := int(tstack.Get(tlen - 1))
					tlen--
					onStack.Set(w, false)
					compA.Set(w, int32(count))
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = compA.Get(i)
	}
	return comp, count
}

// TracedBellmanFord mirrors BellmanFord through the simulator.
func TracedBellmanFord(t *TracedGraph, s *mem.Space, src graph.NodeID) []int32 {
	dist := s.NewI32(t.n)
	tracedBellmanFordInto(t, dist, src)
	out := make([]int32, t.n)
	for i := range out {
		out[i] = dist.Get(i)
	}
	return out
}

func tracedBellmanFordInto(t *TracedGraph, dist mem.I32, src graph.NodeID) {
	dist.Fill(Unreached)
	dist.Set(int(src), 0)
	for {
		changed := false
		for u := 0; u < t.n; u++ {
			du := dist.Get(u)
			if du == Unreached {
				continue
			}
			lo, hi := t.outRange(u)
			for p := lo; p < hi; p++ {
				v := int(t.outAdj.Get(int(p)))
				dv := dist.Get(v)
				if dv == Unreached || du+1 < dv {
					dist.Set(v, du+1)
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// TracedPageRank mirrors PageRank (pull form) through the simulator.
func TracedPageRank(t *TracedGraph, s *mem.Space, iters int, damping float64) []float64 {
	n := t.n
	if n == 0 {
		return nil
	}
	rank := s.NewF64(n)
	next := s.NewF64(n)
	contrib := s.NewF64(n)
	// Same reciprocal-out-degree hoist as the untraced kernel: the op
	// order must match exactly for the traced-parity tolerance to hold.
	invDeg := s.NewF64(n)
	var dangling []int
	for u := 0; u < n; u++ {
		lo, hi := t.outRange(u)
		if d := hi - lo; d > 0 {
			invDeg.Set(u, 1/float64(d))
		} else {
			dangling = append(dangling, u)
		}
	}
	for i := 0; i < n; i++ {
		rank.Set(i, 1/float64(n))
	}
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			contrib.Set(u, rank.Get(u)*invDeg.Get(u))
		}
		danglingMass := 0.0
		for _, u := range dangling {
			danglingMass += rank.Get(u)
		}
		base := (1-damping)/float64(n) + damping*danglingMass/float64(n)
		for v := 0; v < n; v++ {
			lo, hi := t.inRange(v)
			sum := 0.0
			for p := lo; p < hi; p++ {
				u := int(t.inAdj.Get(int(p)))
				sum += contrib.Get(u)
			}
			next.Set(v, base+damping*sum)
		}
		rank, next = next, rank
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = rank.Get(i)
	}
	return out
}

// TracedDominatingSet mirrors DominatingSet. The per-vertex state
// (gain, covered) and all graph accesses are traced; the priority
// heap's internal reorganisation is not (its compact arrays are hot
// and identical across orderings, so it adds only constant noise).
func TracedDominatingSet(t *TracedGraph, s *mem.Space) []graph.NodeID {
	n := t.n
	if n == 0 {
		return nil
	}
	covered := s.NewBool(n)
	gain := s.NewI64(n)
	h := bheap.Max(n)
	enc := func(u int, g int64) int64 { return g*int64(n) - int64(u) }
	for u := 0; u < n; u++ {
		lo, hi := t.outRange(u)
		g := hi - lo + 1
		gain.Set(u, g)
		h.Push(u, enc(u, g))
	}
	var set []graph.NodeID
	remaining := n
	cover := func(v int) {
		if covered.Get(v) {
			return
		}
		covered.Set(v, true)
		remaining--
		if h.Contains(v) {
			gain.Set(v, gain.Get(v)-1)
			h.Update(v, enc(v, gain.Get(v)))
		}
		lo, hi := t.inRange(v)
		for p := lo; p < hi; p++ {
			x := int(t.inAdj.Get(int(p)))
			if h.Contains(x) {
				gain.Set(x, gain.Get(x)-1)
				h.Update(x, enc(x, gain.Get(x)))
			}
		}
	}
	for remaining > 0 && h.Len() > 0 {
		u, _ := h.Pop()
		if gain.Get(u) <= 0 {
			continue
		}
		set = append(set, graph.NodeID(u))
		cover(u)
		lo, hi := t.outRange(u)
		for p := lo; p < hi; p++ {
			cover(int(t.outAdj.Get(int(p))))
		}
	}
	return set
}

// TracedCoreNumbers mirrors CoreNumbers. The undirected view is built
// natively (it is input preparation, not the measured kernel) and its
// CSR arrays are registered in the space; degrees and core numbers are
// traced; the heap is native for the same reason as in
// TracedDominatingSet.
func TracedCoreNumbers(g *graph.Graph, s *mem.Space) []int32 {
	u := g.Undirected()
	tu := NewTracedGraph(u, s)
	n := tu.n
	core := s.NewI32(n)
	deg := s.NewI64(n)
	h := bheap.Min(n)
	for v := 0; v < n; v++ {
		lo, hi := tu.outRange(v)
		deg.Set(v, hi-lo)
		h.Push(v, hi-lo)
	}
	var level int64
	for h.Len() > 0 {
		v, d := h.Pop()
		if d > level {
			level = d
		}
		core.Set(v, int32(level))
		lo, hi := tu.outRange(v)
		for p := lo; p < hi; p++ {
			w := int(tu.outAdj.Get(int(p)))
			if h.Contains(w) && deg.Get(w) > d {
				deg.Set(w, deg.Get(w)-1)
				h.Update(w, deg.Get(w))
			}
		}
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = core.Get(i)
	}
	return out
}

// TracedDiameter mirrors Diameter: repeated traced SP runs from
// seeded random sources (the same sources the native kernel picks for
// the same seed), reusing one traced distance array.
func TracedDiameter(t *TracedGraph, s *mem.Space, samples int, seed uint64) int32 {
	if t.n == 0 || samples <= 0 {
		return 0
	}
	rng := gen.NewRNG(seed)
	dist := s.NewI32(t.n)
	var diam int32
	for i := 0; i < samples; i++ {
		src := graph.NodeID(rng.Intn(t.n))
		tracedBellmanFordInto(t, dist, src)
		for v := 0; v < t.n; v++ {
			if d := dist.Get(v); d > diam {
				diam = d
			}
		}
	}
	return diam
}
