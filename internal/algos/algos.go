// Package algos implements the paper's nine benchmark kernels — NQ,
// BFS, DFS, SCC, SP, PageRank, DS, Kcore and Diameter — over the CSR
// graph substrate. Each kernel also has a traced variant (traced*.go)
// that issues its memory accesses through the cache simulator, which
// is how the cache-statistics experiments observe the effect of a
// vertex ordering.
package algos

import (
	"gorder/internal/bheap"
	"gorder/internal/gen"
	"gorder/internal/graph"
)

// Unreached marks vertices not reached by a traversal in distance
// arrays.
const Unreached int32 = -1

// NeighbourQuery is the paper's NQ kernel: for every vertex u it
// computes q_u, the sum of the out-degrees of u's out-neighbours. The
// arbitrary per-neighbour operation forces the neighbours' data into
// cache, which is what the kernel exists to measure.
func NeighbourQuery(g *graph.Graph) []int64 {
	n := g.NumNodes()
	q := make([]int64, n)
	for u := 0; u < n; u++ {
		var sum int64
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			sum += int64(g.OutDegree(v))
		}
		q[u] = sum
	}
	return q
}

// BFSFrom runs a breadth-first search over out-edges from src and
// returns hop distances (Unreached where not reachable) and the number
// of vertices reached. Neighbours are visited in ascending ID
// (lexicographic) order, as the paper specifies.
func BFSFrom(g *graph.Graph, src graph.NodeID) (dist []int32, reached int) {
	n := g.NumNodes()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	queue := make([]graph.NodeID, 0, n)
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist, len(queue)
}

// BFSFromInto is BFSFrom over caller-owned buffers, for serving many
// single-source traversals without per-call allocation. dist must have
// length NumNodes with every entry Unreached; queue is appended to
// (pass queue[:0] to reuse its capacity). It returns the visit
// sequence: exactly the vertices whose dist entries were written, so a
// caller can restore the all-Unreached invariant in O(reached) instead
// of refilling the whole array.
func BFSFromInto(g *graph.Graph, src graph.NodeID, dist []int32, queue []graph.NodeID) []graph.NodeID {
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// BFSAll traverses the whole graph breadth-first, restarting from the
// lowest-numbered unvisited vertex, and returns the visit sequence.
// This is the BFS benchmark kernel: it touches every vertex and edge.
func BFSAll(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	visited := make([]bool, n)
	seq := make([]graph.NodeID, 0, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		start := len(seq)
		seq = append(seq, graph.NodeID(s))
		for head := start; head < len(seq); head++ {
			u := seq[head]
			for _, v := range g.OutNeighbors(u) {
				if !visited[v] {
					visited[v] = true
					seq = append(seq, v)
				}
			}
		}
	}
	return seq
}

// DFSAll traverses the whole graph depth-first (iterative, preorder),
// restarting from the lowest-numbered unvisited vertex, visiting
// neighbours in ascending ID order, and returns the visit sequence.
func DFSAll(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	visited := make([]bool, n)
	seq := make([]graph.NodeID, 0, n)
	stack := make([]graph.NodeID, 0, 64)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		stack = append(stack[:0], graph.NodeID(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[u] {
				continue
			}
			visited[u] = true
			seq = append(seq, u)
			adj := g.OutNeighbors(u)
			for i := len(adj) - 1; i >= 0; i-- {
				if !visited[adj[i]] {
					stack = append(stack, adj[i])
				}
			}
		}
	}
	return seq
}

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative, so million-vertex graphs do not overflow the goroutine
// stack). It returns the component ID of every vertex and the number
// of components. Component IDs are assigned in completion order.
func SCC(g *graph.Graph) (comp []int32, count int) {
	n := g.NumNodes()
	const none = int32(-1)
	comp = make([]int32, n)
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = none
		comp[i] = none
	}
	var stack []graph.NodeID // Tarjan's SCC stack
	var nextIndex int32

	// Explicit DFS call frames: vertex plus position in its adjacency.
	type frame struct {
		v   graph.NodeID
		pos int
	}
	var frames []frame
	for s := 0; s < n; s++ {
		if index[s] != none {
			continue
		}
		frames = append(frames[:0], frame{graph.NodeID(s), 0})
		index[s] = nextIndex
		lowlink[s] = nextIndex
		nextIndex++
		stack = append(stack, graph.NodeID(s))
		onStack[s] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			adj := g.OutNeighbors(f.v)
			advanced := false
			for f.pos < len(adj) {
				w := adj[f.pos]
				f.pos++
				if index[w] == none {
					index[w] = nextIndex
					lowlink[w] = nextIndex
					nextIndex++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v finished: pop its frame, emit component if root.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(count)
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// BellmanFord is the paper's SP kernel: unit-weight shortest paths
// from src by repeated relaxation sweeps over all edges until a sweep
// changes nothing. Real-world graphs have small diameter, so the
// number of sweeps is small, but each sweep streams the whole CSR —
// the access pattern the ordering experiments measure.
func BellmanFord(g *graph.Graph, src graph.NodeID) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	for {
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			if du == Unreached {
				continue
			}
			for _, v := range g.OutNeighbors(graph.NodeID(u)) {
				if dist[v] == Unreached || du+1 < dist[v] {
					dist[v] = du + 1
					changed = true
				}
			}
		}
		if !changed {
			return dist
		}
	}
}

// DefaultPageRankIters and DefaultDamping are the paper's PageRank
// parameters: 100 power iterations with damping 0.85.
const (
	DefaultPageRankIters = 100
	DefaultDamping       = 0.85
)

// PageRank runs the power-iteration PageRank for the given number of
// iterations. Each iteration pulls rank from in-neighbours (gather
// form), the memory-bound pattern the paper benchmarks. Dangling-mass
// is redistributed uniformly, so ranks sum to 1.
func PageRank(g *graph.Graph, iters int, damping float64) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n) // rank[u]*invDeg[u], refreshed per iteration
	// Reciprocal out-degrees and the dangling-vertex list are
	// loop-invariant: hoisting them replaces a division per vertex per
	// iteration with one division per vertex per run. Multiplying by the
	// reciprocal rounds differently from dividing, so ranks moved within
	// FP tolerance when this landed; all parity checks are
	// tolerance-based, and the parallel engine (internal/exec) matches
	// this exact op order bitwise.
	invDeg := make([]float64, n)
	var dangling []graph.NodeID
	for u := 0; u < n; u++ {
		if d := g.OutDegree(graph.NodeID(u)); d > 0 {
			invDeg[u] = 1 / float64(d)
		} else {
			dangling = append(dangling, graph.NodeID(u))
		}
	}
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			contrib[u] = rank[u] * invDeg[u]
		}
		danglingMass := 0.0
		for _, u := range dangling {
			danglingMass += rank[u]
		}
		base := (1-damping)/float64(n) + damping*danglingMass/float64(n)
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.NodeID(v)) {
				sum += contrib[u]
			}
			next[v] = base + damping*sum
		}
		rank, next = next, rank
	}
	return rank
}

// DominatingSet computes a greedy dominating set: repeatedly take the
// vertex covering the most still-uncovered vertices (itself plus its
// out-neighbours), until everything is covered. Ties break to the
// lowest ID via the indexed heap's ordering on equal keys being
// unspecified — so ties are resolved explicitly by key encoding.
func DominatingSet(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	covered := make([]bool, n)
	// gain[u] = number of uncovered vertices in {u} ∪ out(u).
	// Encode key as gain*n - u so the max-heap breaks ties toward
	// smaller IDs deterministically.
	h := bheap.Max(n)
	enc := func(u int, gain int64) int64 { return gain*int64(n) - int64(u) }
	gain := make([]int64, n)
	for u := 0; u < n; u++ {
		gain[u] = int64(g.OutDegree(graph.NodeID(u)) + 1)
		h.Push(u, enc(u, gain[u]))
	}
	var set []graph.NodeID
	remaining := n
	cover := func(v graph.NodeID) {
		if covered[v] {
			return
		}
		covered[v] = true
		remaining--
		// v no longer needs covering: every potential coverer of v
		// loses one gain. Those are v itself and v's in-neighbours.
		if h.Contains(int(v)) {
			gain[v]--
			h.Update(int(v), enc(int(v), gain[v]))
		}
		for _, x := range g.InNeighbors(v) {
			if h.Contains(int(x)) {
				gain[x]--
				h.Update(int(x), enc(int(x), gain[x]))
			}
		}
	}
	for remaining > 0 && h.Len() > 0 {
		u, _ := h.Pop()
		if gain[u] <= 0 {
			// u and its whole out-neighbourhood are covered (an
			// uncovered u always has gain >= 1 from itself).
			continue
		}
		set = append(set, graph.NodeID(u))
		cover(graph.NodeID(u))
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			cover(v)
		}
	}
	return set
}

// CoreNumbers computes the k-core decomposition over total (in+out)
// degree using a binary heap, the structure the replication uses:
// repeatedly remove the minimum-degree vertex; its core number is the
// largest degree seen at any removal so far.
func CoreNumbers(g *graph.Graph) []int32 {
	u := g.Undirected()
	n := u.NumNodes()
	core := make([]int32, n)
	deg := make([]int64, n)
	h := bheap.Min(n)
	for v := 0; v < n; v++ {
		deg[v] = int64(u.OutDegree(graph.NodeID(v)))
		h.Push(v, deg[v])
	}
	var level int32
	for h.Len() > 0 {
		v, d := h.Pop()
		if int32(d) > level {
			level = int32(d)
		}
		core[v] = level
		for _, w := range u.OutNeighbors(graph.NodeID(v)) {
			if h.Contains(int(w)) && deg[w] > d {
				deg[w]--
				h.Update(int(w), deg[w])
			}
		}
	}
	return core
}

// DefaultDiameterSamples is a laptop-scale stand-in for the paper's
// 5000 shortest-path restarts.
const DefaultDiameterSamples = 20

// Diameter estimates the graph diameter the way the paper does: run
// the SP kernel from `samples` random sources and return the largest
// finite distance seen. Accuracy is not the point — the workload is.
func Diameter(g *graph.Graph, samples int, seed uint64) int32 {
	n := g.NumNodes()
	if n == 0 || samples <= 0 {
		return 0
	}
	rng := gen.NewRNG(seed)
	var diam int32
	for s := 0; s < samples; s++ {
		src := graph.NodeID(rng.Intn(n))
		dist := BellmanFord(g, src)
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
