package algos

import "gorder/internal/graph"

// Direction-optimising BFS (Beamer et al.), the standard fast BFS on
// low-diameter graphs: frontier expansion switches from top-down
// (scan the frontier's out-edges) to bottom-up (scan unvisited
// vertices' in-edges) when the frontier gets large, cutting the edges
// examined on the dense middle levels. It computes exactly the same
// distances as BFSFrom — the tests enforce that — while exercising a
// different access pattern, which makes it a useful extra kernel for
// the ordering experiments.

// dobfsAlpha and dobfsBeta are the standard switching heuristics:
// go bottom-up when the frontier's out-edges exceed 1/alpha of the
// unexplored edges; return top-down when the frontier shrinks below
// n/beta vertices.
const (
	dobfsAlpha = 14
	dobfsBeta  = 24
)

// DOBFS returns hop distances from src over out-edges (Unreached
// where unreachable) and the number of vertices reached.
func DOBFS(g *graph.Graph, src graph.NodeID) (dist []int32, reached int) {
	n := g.NumNodes()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	reached = 1

	frontier := []graph.NodeID{src}
	frontierEdges := int64(g.OutDegree(src))
	unexploredEdges := g.NumEdges() - frontierEdges
	level := int32(0)

	for len(frontier) > 0 {
		level++
		if frontierEdges > unexploredEdges/dobfsAlpha && len(frontier) > n/dobfsBeta {
			// Bottom-up: every unvisited vertex looks for a parent in
			// the current frontier via its in-edges.
			var next []graph.NodeID
			for v := 0; v < n; v++ {
				if dist[v] != Unreached {
					continue
				}
				for _, u := range g.InNeighbors(graph.NodeID(v)) {
					if dist[u] == level-1 {
						dist[v] = level
						next = append(next, graph.NodeID(v))
						break
					}
				}
			}
			frontier = next
		} else {
			// Top-down: expand the frontier's out-edges.
			var next []graph.NodeID
			for _, u := range frontier {
				for _, v := range g.OutNeighbors(u) {
					if dist[v] == Unreached {
						dist[v] = level
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		reached += len(frontier)
		frontierEdges = 0
		for _, v := range frontier {
			frontierEdges += int64(g.OutDegree(v))
		}
		unexploredEdges -= frontierEdges
		if unexploredEdges < 0 {
			unexploredEdges = 0
		}
	}
	return dist, reached
}
