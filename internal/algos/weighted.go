package algos

import (
	"gorder/internal/bheap"
	"gorder/internal/gen"
	"gorder/internal/graph"
)

// Weighted shortest paths: the paper's SP kernel is Bellman–Ford,
// whose reason to exist is weighted edges; the library therefore
// ships the weighted forms too. Weights live in a parallel array
// aligned with the CSR out-adjacency (weights[i] belongs to
// OutAdjacency()[i]), so a relabeled graph needs relabeled weights —
// RandomWeights derives them from the edge's endpoints to stay
// order-independent.

// WeightedInfinity marks unreachable vertices in weighted distance
// arrays.
const WeightedInfinity = int64(-1)

// RandomWeights returns per-edge weights in [1, maxWeight] aligned
// with g's CSR edge order. Each weight is a hash of the edge's
// endpoints and the seed, so the same logical edge gets the same
// weight under any vertex relabeling of the *original* IDs — use it
// on the graph you relabel *before* relabeling, or derive weights per
// relabeled graph consistently from endpoint pairs.
func RandomWeights(g *graph.Graph, maxWeight int32, seed uint64) []int32 {
	if maxWeight < 1 {
		maxWeight = 1
	}
	weights := make([]int32, 0, g.NumEdges())
	g.Edges(func(u, v graph.NodeID) bool {
		h := gen.NewRNG(seed ^ (uint64(u)<<32 | uint64(v)))
		weights = append(weights, 1+int32(h.Intn(int(maxWeight))))
		return true
	})
	return weights
}

// DijkstraWeighted computes single-source shortest paths over
// non-negative edge weights with a binary-heap Dijkstra. weights must
// align with g's CSR edge order; it panics on a length mismatch or a
// negative weight.
func DijkstraWeighted(g *graph.Graph, weights []int32, src graph.NodeID) []int64 {
	n := g.NumNodes()
	if int64(len(weights)) != g.NumEdges() {
		panic("algos: weights length does not match edge count")
	}
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = WeightedInfinity
	}
	h := bheap.Min(n)
	dist[src] = 0
	h.Push(int(src), 0)
	outIdx := g.OutIndex()
	outAdj := g.OutAdjacency()
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue // stale (bheap.Update keeps it exact, but be safe)
		}
		for p := outIdx[u]; p < outIdx[u+1]; p++ {
			w := weights[p]
			if w < 0 {
				panic("algos: negative weight in Dijkstra")
			}
			v := outAdj[p]
			nd := du + int64(w)
			if dist[v] == WeightedInfinity {
				dist[v] = nd
				h.Push(int(v), nd)
			} else if nd < dist[v] {
				dist[v] = nd
				if h.Contains(int(v)) {
					h.Update(int(v), nd)
				} else {
					h.Push(int(v), nd)
				}
			}
		}
	}
	return dist
}

// BellmanFordWeighted computes single-source shortest paths by
// relaxation sweeps, exactly like the paper's unit-weight SP kernel
// but over explicit weights. Negative weights are allowed as long as
// no negative cycle is reachable; ok reports false if one is detected
// (after n sweeps).
func BellmanFordWeighted(g *graph.Graph, weights []int32, src graph.NodeID) (dist []int64, ok bool) {
	n := g.NumNodes()
	if int64(len(weights)) != g.NumEdges() {
		panic("algos: weights length does not match edge count")
	}
	dist = make([]int64, n)
	for i := range dist {
		dist[i] = WeightedInfinity
	}
	dist[src] = 0
	outIdx := g.OutIndex()
	outAdj := g.OutAdjacency()
	for sweep := 0; ; sweep++ {
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			if du == WeightedInfinity {
				continue
			}
			for p := outIdx[u]; p < outIdx[u+1]; p++ {
				v := outAdj[p]
				nd := du + int64(weights[p])
				if dist[v] == WeightedInfinity || nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			return dist, true
		}
		if sweep >= n {
			return dist, false // negative cycle
		}
	}
}
