package algos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/cache"
	"gorder/internal/core"
	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/mem"
	"gorder/internal/order"
)

func newTestSpace() *mem.Space {
	return mem.NewSpace(cache.New(cache.SmallMachine()))
}

// Every traced kernel must compute exactly what its native counterpart
// computes — tracing may only observe, never change, the algorithm.
func TestQuickTracedMatchesNative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randGraph(rng, n, rng.Intn(5*n))
		s := newTestSpace()
		tg := NewTracedGraph(g, s)

		nq := NeighbourQuery(g)
		tnq := TracedNeighbourQuery(tg, s)
		for i := range nq {
			if nq[i] != tnq[i] {
				return false
			}
		}
		bfs, tbfs := BFSAll(g), TracedBFSAll(tg, s)
		dfs, tdfs := DFSAll(g), TracedDFSAll(tg, s)
		if len(bfs) != len(tbfs) || len(dfs) != len(tdfs) {
			return false
		}
		for i := range bfs {
			if bfs[i] != tbfs[i] || dfs[i] != tdfs[i] {
				return false
			}
		}
		comp, count := SCC(g)
		tcomp, tcount := TracedSCC(tg, s)
		if count != tcount {
			return false
		}
		for i := range comp {
			if comp[i] != tcomp[i] {
				return false
			}
		}
		src := graph.NodeID(rng.Intn(n))
		bf, tbf := BellmanFord(g, src), TracedBellmanFord(tg, s, src)
		for i := range bf {
			if bf[i] != tbf[i] {
				return false
			}
		}
		pr := PageRank(g, 10, DefaultDamping)
		tpr := TracedPageRank(tg, s, 10, DefaultDamping)
		for i := range pr {
			if math.Abs(pr[i]-tpr[i]) > 1e-12 {
				return false
			}
		}
		ds, tds := DominatingSet(g), TracedDominatingSet(tg, s)
		if len(ds) != len(tds) {
			return false
		}
		for i := range ds {
			if ds[i] != tds[i] {
				return false
			}
		}
		cores, tcores := CoreNumbers(g), TracedCoreNumbers(g, s)
		for i := range cores {
			if cores[i] != tcores[i] {
				return false
			}
		}
		if Diameter(g, 5, 42) != TracedDiameter(tg, s, 5, 42) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTracedProducesAccesses(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	s := newTestSpace()
	tg := NewTracedGraph(g, s)
	TracedBFSAll(tg, s)
	r := s.Hierarchy().Report()
	if r.Accesses == 0 {
		t.Fatal("traced BFS produced no accesses")
	}
	// BFS reads at least one index pair and one adjacency entry per
	// edge, plus visited updates: comfortably above m.
	if r.Accesses < uint64(g.NumEdges()) {
		t.Errorf("accesses = %d below edge count %d", r.Accesses, g.NumEdges())
	}
}

// The central claim of the paper, observed through the simulator: a
// locality-aware ordering (Gorder) yields a lower PageRank cache-miss
// rate than a random ordering of the same graph.
func TestOrderingChangesMissRate(t *testing.T) {
	g := gen.Web(4000, gen.DefaultWeb, 3)

	missRate := func(h *graph.Graph) float64 {
		s := mem.NewSpace(cache.New(cache.SmallMachine()))
		tg := NewTracedGraph(h, s)
		TracedPageRank(tg, s, 5, DefaultDamping)
		return s.Hierarchy().Report().MissRate()
	}

	randomised := g.Relabel(order.Random(g.NumNodes(), 7))
	gordered := g.Relabel(core.Order(g))
	mrRandom := missRate(randomised)
	mrGorder := missRate(gordered)
	if mrGorder >= mrRandom {
		t.Errorf("Gorder miss rate %.4f not below random %.4f", mrGorder, mrRandom)
	}
}

func TestTracedEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	s := newTestSpace()
	tg := NewTracedGraph(g, s)
	if TracedPageRank(tg, s, 5, DefaultDamping) != nil {
		t.Error("PR on empty graph not nil")
	}
	if TracedDominatingSet(tg, s) != nil {
		t.Error("DS on empty graph not nil")
	}
	if TracedDiameter(tg, s, 3, 1) != 0 {
		t.Error("diameter of empty graph not 0")
	}
}
