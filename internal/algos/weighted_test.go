package algos

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/graph"
)

func unitWeights(g *graph.Graph) []int32 {
	w := make([]int32, g.NumEdges())
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestDijkstraSmall(t *testing.T) {
	// 0 -(1)-> 1 -(1)-> 2, and a heavier shortcut 0 -(5)-> 2.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}})
	// CSR edge order for vertex 0 is (0,1), (0,2) then (1,2).
	weights := []int32{1, 5, 1}
	dist := DijkstraWeighted(g, weights, 0)
	want := []int64{0, 1, 2}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestWeightedUnreachable(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	d := DijkstraWeighted(g, unitWeights(g), 0)
	if d[2] != WeightedInfinity {
		t.Fatalf("unreachable distance = %d", d[2])
	}
	bf, ok := BellmanFordWeighted(g, unitWeights(g), 0)
	if !ok || bf[2] != WeightedInfinity {
		t.Fatalf("BF unreachable = %d ok=%v", bf[2], ok)
	}
}

// On unit weights both weighted algorithms reduce to BFS.
func TestQuickWeightedUnitMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randGraph(rng, n, rng.Intn(5*n))
		src := graph.NodeID(rng.Intn(n))
		bfs, _ := BFSFrom(g, src)
		w := unitWeights(g)
		dj := DijkstraWeighted(g, w, src)
		bf, ok := BellmanFordWeighted(g, w, src)
		if !ok {
			return false
		}
		for i := range bfs {
			want := int64(bfs[i])
			if bfs[i] == Unreached {
				want = WeightedInfinity
			}
			if dj[i] != want || bf[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Dijkstra and Bellman–Ford agree on random positive weights.
func TestQuickDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randGraph(rng, n, rng.Intn(5*n))
		weights := make([]int32, g.NumEdges())
		for i := range weights {
			weights[i] = 1 + int32(rng.Intn(20))
		}
		src := graph.NodeID(rng.Intn(n))
		dj := DijkstraWeighted(g, weights, src)
		bf, ok := BellmanFordWeighted(g, weights, src)
		if !ok {
			return false
		}
		for i := range dj {
			if dj[i] != bf[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBellmanFordNegativeEdgeOK(t *testing.T) {
	// 0 -(4)-> 1, 0 -(5)-> 2, 2 -(-3)-> 1: shortest to 1 is 2.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 2, To: 1}})
	dist, ok := BellmanFordWeighted(g, []int32{4, 5, -3}, 0)
	if !ok || dist[1] != 2 {
		t.Fatalf("dist = %v ok = %v", dist, ok)
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}})
	if _, ok := BellmanFordWeighted(g, []int32{-1, -1}, 0); ok {
		t.Fatal("negative cycle not detected")
	}
}

func TestDijkstraPanics(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("length mismatch", func() { DijkstraWeighted(g, nil, 0) })
	mustPanic("negative weight", func() { DijkstraWeighted(g, []int32{-2}, 0) })
}

func TestRandomWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 30, 120)
	w := RandomWeights(g, 10, 7)
	if int64(len(w)) != g.NumEdges() {
		t.Fatalf("len = %d", len(w))
	}
	for _, x := range w {
		if x < 1 || x > 10 {
			t.Fatalf("weight %d out of [1,10]", x)
		}
	}
	// Deterministic in the seed.
	w2 := RandomWeights(g, 10, 7)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("weights not deterministic")
		}
	}
}
