package algos

import (
	"gorder/internal/graph"
	"gorder/internal/mem"
)

// TracedWCC mirrors WCC through the simulator. Union-find is a
// pointer-chasing workload: the parent-array walk is exactly the kind
// of access pattern vertex orderings help, since a component's
// representatives get nearby IDs under a locality order.
func TracedWCC(g *graph.Graph, t *TracedGraph, s *mem.Space) (comp []int32, count int) {
	n := t.n
	parent := s.NewI32(n)
	size := s.NewI32(n)
	for i := 0; i < n; i++ {
		parent.Set(i, int32(i))
		size.Set(i, 1)
	}
	find := func(x int32) int32 {
		for {
			p := parent.Get(int(x))
			if p == x {
				return x
			}
			gp := parent.Get(int(p))
			parent.Set(int(x), gp) // path halving
			x = gp
		}
	}
	for u := 0; u < n; u++ {
		lo, hi := t.outRange(u)
		for pos := lo; pos < hi; pos++ {
			v := int32(t.outAdj.Get(int(pos)))
			ra, rb := find(int32(u)), find(v)
			if ra == rb {
				continue
			}
			if size.Get(int(ra)) < size.Get(int(rb)) {
				ra, rb = rb, ra
			}
			parent.Set(int(rb), ra)
			size.Set(int(ra), size.Get(int(ra))+size.Get(int(rb)))
		}
	}
	comp = make([]int32, n)
	remap := make(map[int32]int32, 16)
	for v := 0; v < n; v++ {
		root := find(int32(v))
		id, ok := remap[root]
		if !ok {
			id = int32(count)
			remap[root] = id
			count++
		}
		comp[v] = id
	}
	return comp, count
}

// TracedTriangleCount mirrors TriangleCount. The ranking and forward-
// list construction are order-invariant preparation and run natively;
// the counting phase — the intersections that dominate the runtime —
// is traced over a flattened forward-CSR layout, matching how an
// optimised implementation would store it.
func TracedTriangleCount(g *graph.Graph, s *mem.Space) int64 {
	u := g.Undirected()
	n := u.NumNodes()
	rankNative := make([]int32, n)
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sortByDegree(u, order)
	for pos, v := range order {
		rankNative[v] = int32(pos)
	}
	// Build the flattened forward CSR natively.
	fIdx := make([]int64, n+1)
	for v := 0; v < n; v++ {
		for _, w := range u.OutNeighbors(graph.NodeID(v)) {
			if rankNative[w] > rankNative[graph.NodeID(v)] {
				fIdx[v+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		fIdx[i+1] += fIdx[i]
	}
	fAdj := make([]graph.NodeID, fIdx[n])
	cursor := append([]int64(nil), fIdx[:n]...)
	for v := 0; v < n; v++ {
		var lst []graph.NodeID
		for _, w := range u.OutNeighbors(graph.NodeID(v)) {
			if rankNative[w] > rankNative[graph.NodeID(v)] {
				lst = append(lst, w)
			}
		}
		sortByRank(rankNative, lst)
		copy(fAdj[cursor[v]:], lst)
	}
	// Traced counting phase.
	idx := s.WrapI64(fIdx)
	adj := s.WrapU32(fAdj)
	rank := s.NewI32(n)
	for i := 0; i < n; i++ {
		rank.Set(i, rankNative[i])
	}
	var triangles int64
	for v := 0; v < n; v++ {
		vlo, vhi := idx.Get(v), idx.Get(v+1)
		for p := vlo; p < vhi; p++ {
			w := int(adj.Get(int(p)))
			wlo, whi := idx.Get(w), idx.Get(w+1)
			i, j := vlo, wlo
			for i < vhi && j < whi {
				ra := rank.Get(int(adj.Get(int(i))))
				rb := rank.Get(int(adj.Get(int(j))))
				switch {
				case ra < rb:
					i++
				case ra > rb:
					j++
				default:
					triangles++
					i++
					j++
				}
			}
		}
	}
	return triangles
}

// TracedLabelPropagation mirrors LabelPropagation. Labels are traced;
// the per-vertex frequency map is transient working state and stays
// native (its size is a vertex's degree, identical across orderings).
func TracedLabelPropagation(g *graph.Graph, s *mem.Space, maxIters int) (labelsOut []int32, communities int) {
	u := g.Undirected()
	tu := NewTracedGraph(u, s)
	n := tu.n
	if maxIters <= 0 {
		maxIters = DefaultLabelPropIters
	}
	labels := s.NewI32(n)
	for i := 0; i < n; i++ {
		labels.Set(i, int32(i))
	}
	counts := make(map[int32]int, 16)
	for it := 0; it < maxIters; it++ {
		changed := false
		for v := 0; v < n; v++ {
			lo, hi := tu.outRange(v)
			if lo == hi {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for p := lo; p < hi; p++ {
				w := int(tu.outAdj.Get(int(p)))
				counts[labels.Get(w)]++
			}
			cur := labels.Get(v)
			best, bestCount := cur, 0
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != cur {
				labels.Set(v, best)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	labelsOut = make([]int32, n)
	remap := make(map[int32]int32, 16)
	for v := 0; v < n; v++ {
		l := labels.Get(v)
		id, ok := remap[l]
		if !ok {
			id = int32(communities)
			remap[l] = id
			communities++
		}
		labelsOut[v] = id
	}
	return labelsOut, communities
}
