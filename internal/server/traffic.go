package server

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gorder/internal/fair"
)

// The traffic tier: this file is where admission policy attaches to
// HTTP — which header names a tenant, which routes are exempt, which
// status codes and envelopes overload maps to. The policy arithmetic
// itself (buckets, strides, wait forecasts) lives in internal/fair;
// a CI grep keeps it there.

// tenantHeader names the tenant identity header.
const tenantHeader = "X-Tenant"

// tenantOf extracts the request's tenant: the X-Tenant header,
// trimmed and length-capped, or the default tenant when absent.
func tenantOf(r *http.Request) string {
	t := strings.TrimSpace(r.Header.Get(tenantHeader))
	if t == "" {
		return fair.DefaultTenant
	}
	if len(t) > 64 {
		t = t[:64]
	}
	return t
}

// writeRetryError writes the uniform error envelope plus a
// Retry-After header (whole seconds, rounded up, at least 1) — every
// 429 the traffic tier produces goes through here so clients can
// always back off by the server's own estimate.
func (s *Server) writeRetryError(w http.ResponseWriter, status int, code string,
	retryAfter time.Duration, format string, args ...any) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeError(w, status, code, format, args...)
}

// initTraffic builds the per-tenant limiter and the shed counters;
// called from New.
func (s *Server) initTraffic(m *Metrics) {
	if s.cfg.TenantRate > 0 {
		s.limiter = fair.NewLimiter(s.cfg.TenantRate, s.cfg.TenantBurst)
	}
	s.rateLimited = m.Counter("rate_limited_total")
	s.jobsShed = m.Counter("jobs_shed_total")
	s.queryShed = m.Counter("query_shed_total")
}

// rateLimitExempt lists the routes that must answer even for a tenant
// over budget: health probes and metrics scrapes are how operators see
// an overload, so they are never limited.
func rateLimitExempt(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// admit applies the per-tenant rate limit to one request. A false
// return means the 429 (with Retry-After) is already written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter == nil || rateLimitExempt(r.URL.Path) {
		return true
	}
	tenant := tenantOf(r)
	ok, retry := s.limiter.Allow(tenant)
	if !ok {
		s.rateLimited.Inc()
		s.writeRetryError(w, http.StatusTooManyRequests, "rate_limited", retry,
			"tenant %q is over its %.3g req/s rate limit", tenant, s.cfg.TenantRate)
		return false
	}
	return true
}

// shedJob is the job tier's admission forecast: when the queue-wait
// estimate already exceeds the job's own run deadline, accepting the
// job just parks it past the point the client stops caring — shed it
// now with a 429 and the forecast as Retry-After instead. A true
// return means the response is written.
func (s *Server) shedJob(w http.ResponseWriter, req *JobRequest) bool {
	est := s.Pool.EstimatedWait()
	if est == 0 {
		return false
	}
	deadline := s.Pool.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		deadline = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if est <= deadline {
		return false
	}
	s.jobsShed.Inc()
	s.writeRetryError(w, http.StatusTooManyRequests, "job_shed", est,
		"forecast queue wait %s exceeds the job deadline %s; shed at admission",
		est.Round(time.Millisecond), deadline)
	return true
}

// shedQuery is the read tier's forecast: with waiters already queued,
// estimate the wait for one more and shed when it cannot fit inside
// the request's own deadline — a fast 429 beats a guaranteed 504.
func (s *Server) shedQuery(w http.ResponseWriter, ctx context.Context) bool {
	waiting := s.qgate.Waiting()
	if waiting == 0 {
		return false
	}
	est := time.Duration(s.querySvc.Value() * float64(waiting) /
		float64(s.queryConc) * float64(time.Millisecond))
	if est == 0 {
		return false
	}
	dl, ok := ctx.Deadline()
	if !ok || est <= time.Until(dl) {
		return false
	}
	s.queryShed.Inc()
	s.writeRetryError(w, http.StatusTooManyRequests, "query_shed", est,
		"forecast gate wait %s exceeds the query deadline; shed at admission",
		est.Round(time.Millisecond))
	return true
}
