package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gorder/internal/gen"
)

func TestRegistryLoadDir(t *testing.T) {
	dir := t.TempDir()
	// One text edge list, one binary CSR, one ignored extension, one
	// subdirectory.
	if err := os.WriteFile(filepath.Join(dir, "tiny.el"), []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gen.Ring(16).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ring16.bin"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.md"), []byte("# not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(NewMetrics())
	n, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d graphs, want 2", n)
	}
	g, info, ok := r.Get("ring16")
	if !ok || g.NumNodes() != 16 || info.Name != "ring16" {
		t.Fatalf("ring16 lookup: ok=%v nodes=%d", ok, g.NumNodes())
	}
	if _, _, ok := r.Get("notes"); ok {
		t.Fatal("non-graph file was registered")
	}
	if got := len(r.List()); got != 2 {
		t.Fatalf("List has %d entries, want 2", got)
	}
}

func TestRegistryLoadDirCorruptFileFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.el"), []byte("zap pow"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(NewMetrics()).LoadDir(dir); err == nil {
		t.Fatal("corrupt dataset dir loaded without error")
	}
}

// Every successful parse is timed into the ingest metrics; a dedup
// hit (same bytes again) skips the parse and must not count.
func TestRegistryRecordsIngestMetrics(t *testing.T) {
	m := NewMetrics()
	r := NewRegistry(m)
	if _, _, err := r.Add("tiny", []byte("0 1\n1 2\n")); err != nil {
		t.Fatal(err)
	}
	if _, created, err := r.Add("alias", []byte("0 1\n1 2\n")); err != nil || created {
		t.Fatalf("dedup upload: created=%v err=%v", created, err)
	}
	snap := m.Snapshot()
	if snap["ingest_total"] != 1 {
		t.Errorf("ingest_total = %d, want 1 (dedup hits must not re-parse)", snap["ingest_total"])
	}
	if snap["ingest_edges_total"] != 2 {
		t.Errorf("ingest_edges_total = %d, want 2", snap["ingest_edges_total"])
	}
	if _, ok := snap["ingest_ms_total"]; !ok {
		t.Error("ingest_ms_total missing from metrics snapshot")
	}
}

func TestRegistryRejectsEmptyName(t *testing.T) {
	r := NewRegistry(NewMetrics())
	if _, _, err := r.Add("   ", []byte("0 1\n")); err == nil {
		t.Fatal("blank name accepted")
	}
}

func TestMetricsWriteJSON(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("alpha_total")
	c.Add(3)
	g := m.Gauge("beta_depth")
	g.Set(-2)
	m.Func("gamma_func", func() int64 { return 7 })

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"alpha_total": 3`, `"beta_depth": -2`, `"gamma_func": 7`, `"uptime_seconds"`} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics JSON missing %s:\n%s", want, out)
		}
	}
	// Keys come out sorted.
	if strings.Index(out, "alpha_total") > strings.Index(out, "beta_depth") {
		t.Errorf("keys unsorted:\n%s", out)
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	m := NewMetrics()
	m.Counter("dup")
	m.Gauge("dup")
}
