package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
	"gorder/internal/store"
)

// newTestServer builds a started server + httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.DrainAndPersist(5*time.Second, "")
	})
	return s, ts
}

// edgeListBytes renders g as an uploadable text edge list.
func edgeListBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeJSON[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func postGraph(t *testing.T, ts *httptest.Server, name string, data []byte) GraphInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/graphs?name="+name, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload %s: status %d: %s", name, resp.StatusCode, body)
	}
	return decodeJSON[GraphInfo](t, resp.Body)
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) JobStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit job: status %d: %s", resp.StatusCode, b)
	}
	return decodeJSON[JobStatus](t, resp.Body)
}

// waitJob polls GET /jobs/{id} until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeJSON[JobStatus](t, resp.Body)
		resp.Body.Close()
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestEndToEndOrderJob is the acceptance flow: upload a graph, run a
// gorder job to completion, download the permutation, and confirm it
// validates and beats the identity ordering on the Gorder score.
func TestEndToEndOrderJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 2, QueueDepth: 8}})
	g := gen.BarabasiAlbert(600, 4, 42)
	info := postGraph(t, ts, "ba600", edgeListBytes(t, g))
	if info.Nodes != 600 {
		t.Fatalf("uploaded graph has %d nodes, want 600", info.Nodes)
	}

	job := postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "ba600", Method: "gorder"})
	st := waitJob(t, ts, job.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	if st.Metrics["score_F"] <= 0 {
		t.Fatalf("done job reported score_F = %v", st.Metrics["score_F"])
	}

	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/permutation")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("permutation download: status %d", resp.StatusCode)
	}
	perm, err := order.ReadPermutation(resp.Body)
	if err != nil {
		t.Fatalf("downloaded permutation invalid: %v", err)
	}
	if len(perm) != g.NumNodes() {
		t.Fatalf("permutation covers %d vertices, want %d", len(perm), g.NumNodes())
	}
	w := 5
	gain := order.Score(g, perm, w)
	base := order.Score(g, order.Identity(g.NumNodes()), w)
	if gain <= base {
		t.Fatalf("gorder score %d does not beat identity %d", gain, base)
	}
}

// TestDeadlineCancelsJob is the acceptance criterion that a job
// exceeding its deadline turns canceled instead of blocking a worker.
func TestDeadlineCancelsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 8}})
	g := gen.BarabasiAlbert(30000, 8, 7)
	postGraph(t, ts, "big", edgeListBytes(t, g))

	job := postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "big", Method: "gorder", TimeoutMs: 1})
	st := waitJob(t, ts, job.ID)
	if st.State != StateCanceled {
		t.Fatalf("deadline job ended %s, want canceled", st.State)
	}
	// The worker must be free again: a quick job still completes.
	quick := postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "big", Method: "original"})
	if st := waitJob(t, ts, quick.ID); st.State != StateDone {
		t.Fatalf("follow-up job ended %s, want done", st.State)
	}
	if got := s.Metrics.Snapshot()["jobs_canceled"]; got < 1 {
		t.Fatalf("jobs_canceled = %d, want >= 1", got)
	}
	// The canceled job has no permutation to download.
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/permutation")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("canceled job permutation: status %d, want 409", resp.StatusCode)
	}
}

// TestDeadlineCancelsAnnealJob proves the per-job deadline interrupts
// the simulated-annealing baselines mid-run — the two most expensive
// methods after Gorder — and that the cancellation shows up in the
// per-ordering metrics the registry hook feeds.
func TestDeadlineCancelsAnnealJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 8}})
	g := gen.BarabasiAlbert(30000, 8, 7)
	postGraph(t, ts, "big", edgeListBytes(t, g))

	for _, method := range []string{"minla", "minloga"} {
		job := postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "big", Method: method, TimeoutMs: 1})
		if st := waitJob(t, ts, job.ID); st.State != StateCanceled {
			t.Fatalf("%s deadline job ended %s, want canceled", method, st.State)
		}
	}
	snap := s.Metrics.Snapshot()
	for _, method := range []string{"minla", "minloga"} {
		if got := snap["ordering_runs_"+method]; got < 1 {
			t.Errorf("ordering_runs_%s = %d, want >= 1", method, got)
		}
		if got := snap["ordering_canceled_"+method]; got < 1 {
			t.Errorf("ordering_canceled_%s = %d, want >= 1", method, got)
		}
	}
}

func TestEvalJobScoresOrderJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 2, QueueDepth: 8}})
	g := gen.Web(500, gen.DefaultWeb, 3)
	postGraph(t, ts, "web", edgeListBytes(t, g))

	oj := postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "web", Method: "rcm"})
	if st := waitJob(t, ts, oj.ID); st.State != StateDone {
		t.Fatalf("order job ended %s", st.State)
	}
	ej := postJob(t, ts, JobRequest{Kind: KindEval, Graph: "web", OfJob: oj.ID, Kernel: "PR"})
	st := waitJob(t, ts, ej.ID)
	if st.State != StateDone {
		t.Fatalf("eval job ended %s (%s)", st.State, st.Error)
	}
	for _, key := range []string{"score_F", "bandwidth", "linear_cost", "log_cost", "l1_miss_rate", "sim_cycles"} {
		if _, ok := st.Metrics[key]; !ok {
			t.Errorf("eval metrics missing %s: %v", key, st.Metrics)
		}
	}
	// Identity-baseline eval (no of_job) also works.
	base := postJob(t, ts, JobRequest{Kind: KindEval, Graph: "web"})
	if st := waitJob(t, ts, base.ID); st.State != StateDone {
		t.Fatalf("baseline eval ended %s (%s)", st.State, st.Error)
	}
}

func TestUploadDeduplicatesByContent(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1}})
	data := edgeListBytes(t, gen.Ring(64))
	a := postGraph(t, ts, "first", data)
	b := postGraph(t, ts, "second", data)
	if a.ID != b.ID {
		t.Fatalf("same bytes got two IDs: %s vs %s", a.ID, b.ID)
	}
	if n := s.Metrics.Snapshot()["graphs_loaded"]; n != 1 {
		t.Fatalf("graphs_loaded = %d, want 1 (dedup)", n)
	}
	// Both names resolve.
	for _, ref := range []string{"first", "second", a.ID} {
		resp, err := http.Get(ts.URL + "/graphs/" + ref)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /graphs/%s: status %d", ref, resp.StatusCode)
		}
	}
}

func TestUploadSizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxUpload: 128, Pool: PoolConfig{Workers: 1}})
	big := bytes.Repeat([]byte("0 1\n"), 100)
	resp, err := http.Post(ts.URL+"/graphs?name=big", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413", resp.StatusCode)
	}
	env := decodeJSON[map[string]apiError](t, resp.Body)
	if env["error"].Code != "too_large" {
		t.Fatalf("error envelope = %+v", env)
	}
}

func TestQueueDepthLimitRejects(t *testing.T) {
	// One worker pinned on a slow job; a depth-1 queue accepts one more
	// and rejects the third with 429.
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 1, DefaultTimeout: 30 * time.Second}})
	g := gen.BarabasiAlbert(20000, 8, 1)
	postGraph(t, ts, "slow", edgeListBytes(t, g))

	postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "slow", Method: "gorder"})
	// Give the worker a moment to pick up the first job; then fill the
	// queue slot and overflow it.
	deadline := time.Now().Add(5 * time.Second)
	var gotFull bool
	for time.Now().Before(deadline) && !gotFull {
		body, _ := json.Marshal(JobRequest{Kind: KindOrder, Graph: "slow", Method: "gorder"})
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			env := decodeJSON[map[string]apiError](t, resp.Body)
			if env["error"].Code != "queue_full" {
				t.Fatalf("429 envelope = %+v", env)
			}
			gotFull = true
		}
		resp.Body.Close()
	}
	if !gotFull {
		t.Fatal("queue never reported full")
	}
}

func TestBadRequestsGetEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1}})
	postGraph(t, ts, "ring", edgeListBytes(t, gen.Ring(16)))

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"wrong method healthz", http.MethodPost, "/healthz", "", 405, "method_not_allowed"},
		{"wrong method metrics", http.MethodDelete, "/metrics", "", 405, "method_not_allowed"},
		{"wrong method permutation", http.MethodPut, "/jobs/job-000001", "", 405, "method_not_allowed"},
		{"upload without name", http.MethodPost, "/graphs", "0 1\n", 400, "missing_name"},
		{"upload garbage", http.MethodPost, "/graphs?name=bad", "this is not a graph", 400, "bad_graph"},
		{"job bad json", http.MethodPost, "/jobs", "{", 400, "bad_request"},
		{"job unknown field", http.MethodPost, "/jobs", `{"kind":"order","graph":"ring","bogus":1}`, 400, "bad_request"},
		{"job unknown kind", http.MethodPost, "/jobs", `{"kind":"explode","graph":"ring"}`, 400, "unknown_kind"},
		{"job unknown method", http.MethodPost, "/jobs", `{"kind":"order","graph":"ring","method":"metis"}`, 400, "unknown_method"},
		{"job unknown graph", http.MethodPost, "/jobs", `{"kind":"order","graph":"nope"}`, 400, "graph_not_found"},
		{"job negative timeout", http.MethodPost, "/jobs", `{"kind":"order","graph":"ring","timeout_ms":-5}`, 400, "bad_timeout"},
		{"missing job", http.MethodGet, "/jobs/job-999999", "", 404, "job_not_found"},
		{"missing graph", http.MethodGet, "/graphs/nope", "", 404, "graph_not_found"},
		{"bad subresource", http.MethodGet, "/jobs/job-000001/frobnicate", "", 404, "not_found"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.wantStatus {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, body)
			continue
		}
		env := decodeJSON[map[string]apiError](t, resp.Body)
		resp.Body.Close()
		if env["error"].Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, env["error"].Code, tc.wantCode)
		}
	}
}

func TestMetricsEndpointCounts(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1}})
	postGraph(t, ts, "ring", edgeListBytes(t, gen.Ring(32)))
	job := postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "ring", Method: "rcm"})
	waitJob(t, ts, job.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap := decodeJSON[map[string]int64](t, resp.Body)
	if snap["jobs_submitted"] < 1 || snap["jobs_completed"] < 1 {
		t.Fatalf("metrics did not count the job: %v", snap)
	}
	if snap["graphs_loaded"] != 1 {
		t.Fatalf("graphs_loaded = %d", snap["graphs_loaded"])
	}
	if _, ok := snap["uptime_seconds"]; !ok {
		t.Fatal("metrics missing uptime_seconds")
	}
	if snap["http_requests_total"] < 4 {
		t.Fatalf("http_requests_total = %d", snap["http_requests_total"])
	}
}

func TestShutdownPersistsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "queued.json")

	s := New(Config{Pool: PoolConfig{Workers: 1, QueueDepth: 16, DefaultTimeout: 30 * time.Second}})
	s.Start()
	data := edgeListBytes(t, gen.BarabasiAlbert(20000, 8, 2))
	if _, _, err := s.Reg.Add("big", data); err != nil {
		t.Fatal(err)
	}
	// First job occupies the worker; the rest stay queued.
	first, err := s.Pool.Submit(JobRequest{Kind: KindOrder, Graph: "big", Method: "gorder"})
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		st, _ := s.Pool.Get(first.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never started (state %s)", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	var queuedIDs []string
	for i := 0; i < 3; i++ {
		st, err := s.Pool.Submit(JobRequest{Kind: KindOrder, Graph: "big", Method: "rcm"})
		if err != nil {
			t.Fatal(err)
		}
		queuedIDs = append(queuedIDs, st.ID)
	}
	// Shut down with a tiny grace period: the in-flight gorder job gets
	// canceled, the queued ones go to the manifest.
	if err := s.DrainAndPersist(50*time.Millisecond, manifest); err != nil {
		t.Fatal(err)
	}
	// Submissions after shutdown are refused.
	if _, err := s.Pool.Submit(JobRequest{Kind: KindOrder, Graph: "big"}); err == nil {
		t.Fatal("submit after shutdown succeeded")
	}
	// Queued jobs are terminal (canceled), not stuck.
	for _, id := range queuedIDs {
		st, ok := s.Pool.Get(id)
		if !ok || st.State != StateCanceled {
			t.Fatalf("queued job %s state %s, want canceled", id, st.State)
		}
	}

	reqs, err := ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("manifest has %d jobs, want 3", len(reqs))
	}

	// A fresh server replays the manifest.
	s2 := New(Config{Pool: PoolConfig{Workers: 2, QueueDepth: 16}})
	s2.Start()
	defer s2.DrainAndPersist(5*time.Second, "")
	if _, _, err := s2.Reg.Add("big", data); err != nil {
		t.Fatal(err)
	}
	if n := s2.Replay(reqs); n != 3 {
		t.Fatalf("replayed %d jobs, want 3", n)
	}
}

func TestReplaySkipsUnknownGraphs(t *testing.T) {
	s := New(Config{Pool: PoolConfig{Workers: 1}})
	s.Start()
	defer s.DrainAndPersist(time.Second, "")
	n := s.Replay([]JobRequest{{Kind: KindOrder, Graph: "ghost", Method: "rcm"}})
	if n != 0 {
		t.Fatalf("replayed %d jobs against an empty registry", n)
	}
}

func TestManifestRoundTripAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if reqs, err := ReadManifest(path); err != nil || reqs != nil {
		t.Fatalf("missing manifest: %v, %v", reqs, err)
	}
	in := []JobRequest{{Kind: KindOrder, Graph: "g", Method: "gorder", TimeoutMs: 500}}
	if err := WriteManifest(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	// Writing an empty list removes the file.
	if err := WriteManifest(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err != nil {
		t.Fatal(err)
	}
	if reqs, _ := ReadManifest(path); reqs != nil {
		t.Fatalf("stale manifest survived: %+v", reqs)
	}
}

func TestConcurrentSubmitAndPoll(t *testing.T) {
	// Hammer the API from many goroutines; run under -race this is the
	// worker pool's data-race certification.
	s, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 4, QueueDepth: 256}})
	postGraph(t, ts, "ring", edgeListBytes(t, gen.Ring(128)))

	const clients = 8
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			var ids []string
			for i := 0; i < 5; i++ {
				body, _ := json.Marshal(JobRequest{Kind: KindOrder, Graph: "ring", Method: "rcm"})
				resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				st := JobStatus{}
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				ids = append(ids, st.ID)
			}
			for _, id := range ids {
				deadline := time.Now().Add(30 * time.Second)
				for {
					st, ok := s.Pool.Get(id)
					if ok && (st.State == StateDone || st.State == StateFailed) {
						if st.State != StateDone {
							errs <- fmt.Errorf("job %s: %s", id, st.Error)
							return
						}
						break
					}
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("job %s stuck", id)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics.Snapshot()["jobs_completed"]; got != clients*5 {
		t.Fatalf("jobs_completed = %d, want %d", got, clients*5)
	}
}

// newStoreServer builds a store-backed test server over dir.
func newStoreServer(t *testing.T, dir string, budget int64) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir, MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Pool:  PoolConfig{Workers: 2, QueueDepth: 8},
		Store: st,
	})
	t.Cleanup(func() { st.Close() })
	return s, ts
}

func metricsSnapshot(t *testing.T, ts *httptest.Server) map[string]int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return decodeJSON[map[string]int64](t, resp.Body)
}

// TestStoreBackedServerArtifactCache is the amortization flow: the
// first order job computes and persists, the identical second job is
// answered from the artifact store without running the ordering.
func TestStoreBackedServerArtifactCache(t *testing.T) {
	s, ts := newStoreServer(t, t.TempDir(), 0)
	postGraph(t, ts, "ba", edgeListBytes(t, gen.BarabasiAlbert(400, 4, 9)))

	req := JobRequest{Kind: KindOrder, Graph: "ba", Method: "gorder", Window: 5}
	st1 := waitJob(t, ts, postJob(t, ts, req).ID)
	if st1.State != StateDone {
		t.Fatalf("first job ended %s (%s)", st1.State, st1.Error)
	}
	if st1.Metrics["cache_hit"] != 0 {
		t.Fatal("first job reported a cache hit on an empty store")
	}
	snap := metricsSnapshot(t, ts)
	if snap["store_misses_total"] < 1 || snap["store_orders"] != 1 {
		t.Fatalf("after cold job: misses=%d orders=%d", snap["store_misses_total"], snap["store_orders"])
	}
	runsBefore := snap["ordering_runs_gorder"]
	if runsBefore != 1 {
		t.Fatalf("ordering_runs_gorder = %d after one job", runsBefore)
	}

	// An alias spelling with defaulted options maps to the same artifact.
	st2 := waitJob(t, ts, postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "ba", Method: "Gorder"}).ID)
	if st2.State != StateDone {
		t.Fatalf("second job ended %s (%s)", st2.State, st2.Error)
	}
	if st2.Metrics["cache_hit"] != 1 {
		t.Fatalf("repeat job metrics = %v, want cache_hit", st2.Metrics)
	}
	if st2.Metrics["score_F"] != st1.Metrics["score_F"] {
		t.Fatalf("cached score_F %v != computed %v", st2.Metrics["score_F"], st1.Metrics["score_F"])
	}
	snap = metricsSnapshot(t, ts)
	if snap["store_hits_total"] < 1 {
		t.Fatalf("store_hits_total = %d after repeat job", snap["store_hits_total"])
	}
	if snap["ordering_runs_gorder"] != runsBefore {
		t.Fatalf("repeat job recomputed: runs %d -> %d", runsBefore, snap["ordering_runs_gorder"])
	}
	// Both permutations download identically.
	for _, id := range []string{st1.ID, st2.ID} {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/permutation")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("permutation of %s: %v status %d", id, err, resp.StatusCode)
		}
		resp.Body.Close()
	}
	_ = s
}

// TestPartitionedJobWorkersCacheKey: the job API accepts the parallel
// family with a workers field, and — because workers is pure
// scheduling — jobs that differ only in workers map to one cached
// artifact.
func TestPartitionedJobWorkersCacheKey(t *testing.T) {
	_, ts := newStoreServer(t, t.TempDir(), 0)
	postGraph(t, ts, "web", edgeListBytes(t, gen.Web(800, gen.DefaultWeb, 21)))

	st1 := waitJob(t, ts, postJob(t, ts, JobRequest{
		Kind: KindOrder, Graph: "web", Method: "gorder-partitioned", Workers: 4,
	}).ID)
	if st1.State != StateDone {
		t.Fatalf("partitioned job ended %s (%s)", st1.State, st1.Error)
	}
	if st1.Metrics["cache_hit"] != 0 {
		t.Fatal("first partitioned job reported a cache hit on an empty store")
	}

	// Same ordering, different worker bound: must be served from the
	// artifact store because the permutation cannot differ.
	st2 := waitJob(t, ts, postJob(t, ts, JobRequest{
		Kind: KindOrder, Graph: "web", Method: "gorder-partitioned", Workers: 1,
	}).ID)
	if st2.State != StateDone {
		t.Fatalf("repeat partitioned job ended %s (%s)", st2.State, st2.Error)
	}
	if st2.Metrics["cache_hit"] != 1 {
		t.Fatalf("workers=1 repeat metrics = %v, want cache_hit", st2.Metrics)
	}
	if st2.Metrics["score_F"] != st1.Metrics["score_F"] {
		t.Fatalf("cached score_F %v != computed %v", st2.Metrics["score_F"], st1.Metrics["score_F"])
	}

	// A different partition count is a different artifact.
	st3 := waitJob(t, ts, postJob(t, ts, JobRequest{
		Kind: KindOrder, Graph: "web", Method: "gorder-partitioned", Partitions: 4,
	}).ID)
	if st3.State != StateDone {
		t.Fatalf("partitions=4 job ended %s (%s)", st3.State, st3.Error)
	}
	if st3.Metrics["cache_hit"] != 0 {
		t.Fatal("partitions=4 job hit the partitions=default artifact")
	}

	// The lightweight parallel orderings are reachable through the job
	// API with a worker bound too.
	for _, m := range []string{"boba", "hubcluster", "dbg"} {
		st := waitJob(t, ts, postJob(t, ts, JobRequest{
			Kind: KindOrder, Graph: "web", Method: m, Workers: 2,
		}).ID)
		if st.State != StateDone {
			t.Fatalf("%s job ended %s (%s)", m, st.State, st.Error)
		}
	}
}

// TestGreedyWorkMetrics: a Gorder job reports its priority-queue op
// and placement counts through the core.OrderStats context carrier,
// the registry observation carries them, and /metrics aggregates them
// into ordering_heap_ops_total / ordering_placements_total.
func TestGreedyWorkMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 4}})
	g := gen.Web(600, gen.DefaultWeb, 3)
	postGraph(t, ts, "web", edgeListBytes(t, g))

	snap := metricsSnapshot(t, ts)
	if snap["ordering_heap_ops_total"] != 0 || snap["ordering_placements_total"] != 0 {
		t.Fatalf("work counters non-zero before any job: heap_ops=%d placements=%d",
			snap["ordering_heap_ops_total"], snap["ordering_placements_total"])
	}

	st := waitJob(t, ts, postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "web", Method: "gorder"}).ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	snap = metricsSnapshot(t, ts)
	placed := snap["ordering_placements_total"]
	if placed != int64(g.NumNodes()) {
		t.Errorf("ordering_placements_total = %d, want %d", placed, g.NumNodes())
	}
	ops := snap["ordering_heap_ops_total"]
	if ops <= placed {
		t.Errorf("ordering_heap_ops_total = %d, implausibly low for %d placements", ops, placed)
	}

	// A second job accumulates on top.
	st = waitJob(t, ts, postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "web", Method: "gorder", Window: 3}).ID)
	if st.State != StateDone {
		t.Fatalf("second job ended %s (%s)", st.State, st.Error)
	}
	snap = metricsSnapshot(t, ts)
	if got := snap["ordering_placements_total"]; got != 2*int64(g.NumNodes()) {
		t.Errorf("ordering_placements_total = %d after two jobs, want %d", got, 2*g.NumNodes())
	}
	if got := snap["ordering_heap_ops_total"]; got <= ops {
		t.Errorf("ordering_heap_ops_total did not grow: %d -> %d", ops, got)
	}
}

// TestStoreBackedServerRestart rebuilds the server over the same data
// directory and expects the full catalog and artifact cache back.
func TestStoreBackedServerRestart(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(300, 3, 5)

	_, ts := newStoreServer(t, dir, 0)
	info := postGraph(t, ts, "ba", edgeListBytes(t, g))
	st := waitJob(t, ts, postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "ba", Method: "rcm"}).ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	ts.Close()

	_, ts2 := newStoreServer(t, dir, 0)
	resp, err := http.Get(ts2.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	graphs := decodeJSON[map[string][]GraphInfo](t, resp.Body)["graphs"]
	resp.Body.Close()
	if len(graphs) != 1 || graphs[0].ID != info.ID || graphs[0].Name != "ba" {
		t.Fatalf("restarted catalog = %+v", graphs)
	}
	if graphs[0].Resident || !graphs[0].OnDisk {
		t.Fatalf("restarted graph resident=%v on_disk=%v, want false/true",
			graphs[0].Resident, graphs[0].OnDisk)
	}

	// The repeat job is a pure artifact hit — no ordering run at all.
	st2 := waitJob(t, ts2, postJob(t, ts2, JobRequest{Kind: KindOrder, Graph: info.ID, Method: "rcm"}).ID)
	if st2.State != StateDone || st2.Metrics["cache_hit"] != 1 {
		t.Fatalf("restarted repeat job: state=%s metrics=%v", st2.State, st2.Metrics)
	}
	snap := metricsSnapshot(t, ts2)
	if snap["ordering_runs_rcm"] != 0 {
		t.Fatalf("restarted daemon recomputed: ordering_runs_rcm = %d", snap["ordering_runs_rcm"])
	}
	if snap["store_hits_total"] != 1 {
		t.Fatalf("store_hits_total = %d", snap["store_hits_total"])
	}
	// Serving the job pulled the graph resident.
	resp, err = http.Get(ts2.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	graphs = decodeJSON[map[string][]GraphInfo](t, resp.Body)["graphs"]
	resp.Body.Close()
	if !graphs[0].Resident {
		t.Error("graph not resident after serving a job")
	}
}

// TestStoreBackedServerEviction keeps the daemon under a byte budget:
// uploading past it evicts, yet every graph stays servable.
func TestStoreBackedServerEviction(t *testing.T) {
	budget := gen.Ring(256).MemoryBytes() * 2
	s, ts := newStoreServer(t, t.TempDir(), budget)
	for i := 0; i < 3; i++ {
		postGraph(t, ts, fmt.Sprintf("ring%d", i), edgeListBytes(t, gen.Ring(256-i)))
	}
	snap := metricsSnapshot(t, ts)
	if snap["store_evictions_total"] < 1 {
		t.Fatalf("no evictions under budget %d: %v", budget, snap)
	}
	if snap["store_resident_bytes"] > budget {
		t.Fatalf("resident bytes %d exceed budget %d", snap["store_resident_bytes"], budget)
	}
	for i := 0; i < 3; i++ {
		st := waitJob(t, ts, postJob(t, ts, JobRequest{
			Kind: KindOrder, Graph: fmt.Sprintf("ring%d", i), Method: "rcm",
		}).ID)
		if st.State != StateDone {
			t.Fatalf("job on ring%d ended %s (%s)", i, st.State, st.Error)
		}
	}
	_ = s
}
