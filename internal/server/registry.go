package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	"gorder/internal/cli"
	"gorder/internal/graph"
)

// GraphInfo is the public description of a registered graph.
type GraphInfo struct {
	ID    string    `json:"id"`    // content hash prefix — stable across restarts
	Name  string    `json:"name"`  // caller-chosen label (filename stem for preloads)
	Nodes int       `json:"nodes"` //
	Edges int64     `json:"edges"`
	Bytes int64     `json:"bytes"` // size of the source file/upload
	Added time.Time `json:"added"`
}

// Registry holds the named graphs the daemon can run jobs against.
// Graphs are deduplicated by content hash: uploading the same bytes
// twice (under any name) yields the same ID and stores one copy.
type Registry struct {
	mu     sync.RWMutex
	byID   map[string]*regEntry
	byName map[string]string // latest name -> id
	graphs *Counter          // registered graph count (metric)
	bytes  *Counter          // cumulative accepted upload bytes (metric)

	ingests      *Counter // parses performed (dedup hits excluded)
	ingestMillis *Counter // cumulative parse+build wall time, ms
	ingestEdges  *Counter // cumulative edges ingested
}

type regEntry struct {
	info GraphInfo
	g    *graph.Graph
}

// NewRegistry returns an empty registry wired to m's metrics.
func NewRegistry(m *Metrics) *Registry {
	return &Registry{
		byID:         make(map[string]*regEntry),
		byName:       make(map[string]string),
		graphs:       m.Counter("graphs_loaded"),
		bytes:        m.Counter("graphs_bytes_accepted"),
		ingests:      m.Counter("ingest_total"),
		ingestMillis: m.Counter("ingest_ms_total"),
		ingestEdges:  m.Counter("ingest_edges_total"),
	}
}

// graphID derives the registry ID from the source bytes: the first 16
// hex digits of the SHA-256 — short enough for URLs, long enough that
// collisions are out of the question at any realistic fleet size.
func graphID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Add parses data (binary CSR or text edge list, sniffed) and
// registers it under name. If the identical bytes are already
// registered the existing entry is returned with created == false and
// the name is added as an alias.
func (r *Registry) Add(name string, data []byte) (GraphInfo, bool, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return GraphInfo{}, false, fmt.Errorf("graph name is required")
	}
	id := graphID(data)

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[id]; ok {
		r.byName[name] = id
		return e.info, false, nil
	}
	start := time.Now()
	g, err := cli.ReadGraphBytes(data)
	if err != nil {
		return GraphInfo{}, false, fmt.Errorf("parsing graph %q: %w", name, err)
	}
	r.ingests.Inc()
	r.ingestMillis.Add(time.Since(start).Milliseconds())
	r.ingestEdges.Add(g.NumEdges())
	info := GraphInfo{
		ID:    id,
		Name:  name,
		Nodes: g.NumNodes(),
		Edges: g.NumEdges(),
		Bytes: int64(len(data)),
		Added: time.Now().UTC(),
	}
	r.byID[id] = &regEntry{info: info, g: g}
	r.byName[name] = id
	r.graphs.Inc()
	r.bytes.Add(int64(len(data)))
	return info, true, nil
}

// graphFileExts are the dataset filename extensions LoadDir accepts.
var graphFileExts = map[string]bool{
	".bin": true, ".graph": true, ".txt": true, ".el": true, ".edges": true,
}

// LoadDir registers every graph file in dir (non-recursive), named by
// filename stem. Unparseable files abort the load — a corrupt dataset
// directory is a deployment error, not something to skip silently.
func (r *Registry) LoadDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, de := range entries {
		if de.IsDir() || !graphFileExts[filepath.Ext(de.Name())] {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return loaded, err
		}
		name := strings.TrimSuffix(de.Name(), filepath.Ext(de.Name()))
		if _, _, err := r.Add(name, data); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}

// Get resolves a graph by ID or, failing that, by name.
func (r *Registry) Get(ref string) (*graph.Graph, GraphInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byID[ref]
	if !ok {
		if id, named := r.byName[ref]; named {
			e, ok = r.byID[id], true
		}
	}
	if !ok {
		return nil, GraphInfo{}, false
	}
	return e.g, e.info, true
}

// List returns every registered graph, sorted by name then ID.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e.info)
	}
	slices.SortFunc(out, func(a, b GraphInfo) int {
		if c := strings.Compare(a.Name, b.Name); c != 0 {
			return c
		}
		return strings.Compare(a.ID, b.ID)
	})
	return out
}
