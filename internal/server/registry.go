package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"gorder/internal/cli"
	"gorder/internal/graph"
	"gorder/internal/store"
)

// GraphInfo is the public description of a registered graph.
type GraphInfo struct {
	ID    string    `json:"id"`    // content hash prefix — stable across restarts
	Name  string    `json:"name"`  // caller-chosen label (filename stem for preloads)
	Nodes int       `json:"nodes"` //
	Edges int64     `json:"edges"`
	Bytes int64     `json:"bytes"` // size of the source file/upload
	Added time.Time `json:"added"`
	// Resident reports whether the graph is currently held in memory;
	// OnDisk whether a persistent blob backs it. A store-less registry
	// reports resident and not on disk for everything.
	Resident bool `json:"resident"`
	OnDisk   bool `json:"on_disk"`
	// Lineage/Version/Latest are set when the lookup resolved through
	// a versioned lineage (a bare name, name@latest, or name@vN with a
	// store attached): which lineage, which version this info describes,
	// and the lineage's current tip version.
	Lineage string `json:"lineage,omitempty"`
	Version int    `json:"version,omitempty"`
	Latest  int    `json:"latest,omitempty"`
}

// Registry holds the named graphs the daemon can run jobs against.
// Graphs are deduplicated by content hash: uploading the same bytes
// twice (under any name) yields the same ID and stores one copy.
//
// With a store attached the registry keeps only the catalog metadata;
// the graphs themselves live in the store's residency cache (LRU
// under a byte budget) with their blobs on disk, and survive restarts.
type Registry struct {
	mu     sync.RWMutex
	byID   map[string]*regEntry
	byName map[string]string // latest name -> id
	store  *store.Store      // nil: graphs pinned in memory below
	graphs *Counter          // registered graph count (metric)
	bytes  *Counter          // cumulative accepted upload bytes (metric)

	ingests      *Counter // parses performed (dedup hits excluded)
	ingestMillis *Counter // cumulative parse+build wall time, ms
	ingestEdges  *Counter // cumulative edges ingested
}

type regEntry struct {
	info GraphInfo
	g    *graph.Graph // nil when a store holds the graph
}

// NewRegistry returns an empty registry wired to m's metrics.
func NewRegistry(m *Metrics) *Registry {
	return &Registry{
		byID:         make(map[string]*regEntry),
		byName:       make(map[string]string),
		graphs:       m.Counter("graphs_loaded"),
		bytes:        m.Counter("graphs_bytes_accepted"),
		ingests:      m.Counter("ingest_total"),
		ingestMillis: m.Counter("ingest_ms_total"),
		ingestEdges:  m.Counter("ingest_edges_total"),
	}
}

// AttachStore backs the registry with st: graphs already in the store
// are registered (metadata only — they become resident on first use)
// and future Adds persist through it. Call before serving traffic.
func (r *Registry) AttachStore(st *store.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
	for _, meta := range st.Catalog() {
		r.byID[meta.Digest] = &regEntry{info: GraphInfo{
			ID:    meta.Digest,
			Name:  meta.Name,
			Nodes: meta.Nodes,
			Edges: meta.Edges,
			Bytes: meta.SrcBytes,
			Added: meta.Added,
		}}
		r.graphs.Inc()
	}
	for name, digest := range st.Names() {
		if _, ok := r.byID[digest]; ok {
			r.byName[name] = digest
		}
	}
}

// graphID derives the registry ID from the source bytes: the first 16
// hex digits of the SHA-256 — short enough for URLs, long enough that
// collisions are out of the question at any realistic fleet size.
func graphID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Add parses data (binary CSR or text edge list, sniffed) and
// registers it under name. If the identical bytes are already
// registered the existing entry is returned with created == false and
// the name is added as an alias.
func (r *Registry) Add(name string, data []byte) (GraphInfo, bool, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return GraphInfo{}, false, fmt.Errorf("graph name is required")
	}
	id := graphID(data)

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[id]; ok {
		r.byName[name] = id
		if r.store != nil {
			if err := r.store.SetName(name, id); err != nil {
				return GraphInfo{}, false, fmt.Errorf("recording alias %q: %w", name, err)
			}
		}
		return r.annotateLocked(e.info), false, nil
	}
	start := time.Now()
	g, err := cli.ReadGraphBytes(data)
	if err != nil {
		return GraphInfo{}, false, fmt.Errorf("parsing graph %q: %w", name, err)
	}
	r.ingests.Inc()
	r.ingestMillis.Add(time.Since(start).Milliseconds())
	r.ingestEdges.Add(g.NumEdges())
	info := GraphInfo{
		ID:    id,
		Name:  name,
		Nodes: g.NumNodes(),
		Edges: g.NumEdges(),
		Bytes: int64(len(data)),
		Added: time.Now().UTC(),
	}
	e := &regEntry{info: info}
	if r.store != nil {
		// Persist before registering: an upload either lands durably or
		// fails visibly, never registers RAM-only by accident.
		if err := r.store.PutGraph(id, name, g, int64(len(data))); err != nil {
			return GraphInfo{}, false, err
		}
	} else {
		e.g = g
	}
	r.byID[id] = e
	r.byName[name] = id
	r.graphs.Inc()
	r.bytes.Add(int64(len(data)))
	return r.annotateLocked(info), true, nil
}

// AddParsed registers an already-parsed graph under name with the
// given content digest — the streaming upload path, where the body was
// hashed and parsed incrementally and never existed as one buffer.
// Semantics match Add on the same bytes: identical content (by digest)
// deduplicates to the existing entry with created == false.
func (r *Registry) AddParsed(name, id string, g *graph.Graph, srcBytes int64, parse time.Duration) (GraphInfo, bool, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return GraphInfo{}, false, fmt.Errorf("graph name is required")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[id]; ok {
		r.byName[name] = id
		if r.store != nil {
			if err := r.store.SetName(name, id); err != nil {
				return GraphInfo{}, false, fmt.Errorf("recording alias %q: %w", name, err)
			}
		}
		return r.annotateLocked(e.info), false, nil
	}
	r.ingests.Inc()
	r.ingestMillis.Add(parse.Milliseconds())
	r.ingestEdges.Add(g.NumEdges())
	info := GraphInfo{
		ID:    id,
		Name:  name,
		Nodes: g.NumNodes(),
		Edges: g.NumEdges(),
		Bytes: srcBytes,
		Added: time.Now().UTC(),
	}
	e := &regEntry{info: info}
	if r.store != nil {
		if err := r.store.PutGraph(id, name, g, srcBytes); err != nil {
			return GraphInfo{}, false, err
		}
	} else {
		e.g = g
	}
	r.byID[id] = e
	r.byName[name] = id
	r.graphs.Inc()
	r.bytes.Add(srcBytes)
	return r.annotateLocked(info), true, nil
}

// annotateLocked fills the dynamic residency fields of an info
// snapshot.
func (r *Registry) annotateLocked(info GraphInfo) GraphInfo {
	if r.store == nil {
		info.Resident, info.OnDisk = true, false
	} else {
		info.Resident, info.OnDisk = r.store.Resident(info.ID), true
	}
	return info
}

// graphFileExts are the dataset filename extensions LoadDir accepts.
var graphFileExts = map[string]bool{
	".bin": true, ".graph": true, ".txt": true, ".el": true, ".edges": true,
}

// LoadDir registers every graph file in dir (non-recursive), named by
// filename stem. Unparseable files abort the load — a corrupt dataset
// directory is a deployment error, not something to skip silently.
func (r *Registry) LoadDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, de := range entries {
		if de.IsDir() || !graphFileExts[filepath.Ext(de.Name())] {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return loaded, err
		}
		name := strings.TrimSuffix(de.Name(), filepath.Ext(de.Name()))
		if _, _, err := r.Add(name, data); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}

// parseRef splits a version-qualified graph reference: "name@vN"
// pins version N, "name@latest" follows the tip (same as the bare
// name, but explicit). Anything without a well-formed qualifier is a
// plain reference (versioned reports false) and resolves as before —
// digest first, then name — so names containing '@' that never meant
// a version keep working.
func parseRef(ref string) (name string, version int, versioned bool) {
	i := strings.LastIndexByte(ref, '@')
	if i <= 0 || i == len(ref)-1 {
		return ref, 0, false
	}
	name, tag := ref[:i], ref[i+1:]
	if tag == "latest" {
		return name, 0, true
	}
	if strings.HasPrefix(tag, "v") {
		if n, err := strconv.Atoi(tag[1:]); err == nil && n >= 1 {
			return name, n, true
		}
	}
	return ref, 0, false
}

// resolveLocked maps a reference to its entry: a registered digest, a
// version-qualified lineage member (store required), or a name — in
// that order. Lineage-resolved lookups also report which lineage and
// version the reference landed on.
func (r *Registry) resolveLocked(ref string) (*regEntry, GraphInfo, bool) {
	if e, ok := r.byID[ref]; ok {
		return e, e.info, true
	}
	name, want, versioned := parseRef(ref)
	if versioned && r.store != nil {
		digest, resolved, latest, err := r.store.ResolveVersion(name, want)
		if err == nil {
			if e, ok := r.byID[digest]; ok {
				info := e.info
				info.Lineage, info.Version, info.Latest = name, resolved, latest
				return e, info, true
			}
		}
		return nil, GraphInfo{}, false
	}
	if id, named := r.byName[ref]; named {
		if e, ok := r.byID[id]; ok {
			info := e.info
			if r.store != nil {
				if _, resolved, latest, err := r.store.ResolveVersion(ref, 0); err == nil {
					info.Lineage, info.Version, info.Latest = ref, resolved, latest
				}
			}
			return e, info, true
		}
	}
	return nil, GraphInfo{}, false
}

// Stat resolves a graph's metadata by ID, version reference
// (name@vN, name@latest), or name — without loading an evicted graph
// back into memory. Use this for validation and listing; Get for
// actually running against the graph.
func (r *Registry) Stat(ref string) (GraphInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, info, ok := r.resolveLocked(ref)
	if !ok {
		return GraphInfo{}, false
	}
	return r.annotateLocked(info), true
}

// Get resolves a graph by ID, version reference, or name. With a
// store attached this may reload an evicted graph from disk; a graph
// whose blob turns out corrupt is deregistered (the store already
// dropped the blob and healed any lineage it tipped) and reported as
// absent, so the content can be re-uploaded.
func (r *Registry) Get(ref string) (*graph.Graph, GraphInfo, bool) {
	r.mu.RLock()
	e, info, ok := r.resolveLocked(ref)
	if !ok {
		r.mu.RUnlock()
		return nil, GraphInfo{}, false
	}
	if r.store == nil {
		g := e.g
		r.mu.RUnlock()
		return g, info, true
	}
	r.mu.RUnlock()

	g, err := r.store.GetGraph(info.ID)
	if err != nil {
		if errors.Is(err, store.ErrCorrupt) || errors.Is(err, store.ErrUnknownGraph) {
			r.drop(info.ID)
		}
		return nil, info, false
	}
	return g, info, true
}

// Advance registers g as the next version of the named lineage — the
// mutation path behind POST /graphs/{name}/edges. The graph is
// serialized to derive its content digest (the same ID an upload of
// those bytes would get), appended to the store lineage, and the name
// repointed at the new tip. Requires a store: version history has to
// live somewhere that survives restarts.
func (r *Registry) Advance(name string, g *graph.Graph) (GraphInfo, error) {
	if r.store == nil {
		return GraphInfo{}, fmt.Errorf("versioned mutation requires a persistent store")
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		return GraphInfo{}, fmt.Errorf("serializing mutated graph: %w", err)
	}
	data := buf.Bytes()
	id := graphID(data)

	r.mu.Lock()
	defer r.mu.Unlock()
	ver, err := r.store.AppendVersion(name, id, g, int64(len(data)))
	if err != nil {
		return GraphInfo{}, err
	}
	e, ok := r.byID[id]
	if !ok {
		e = &regEntry{info: GraphInfo{
			ID:    id,
			Name:  name,
			Nodes: g.NumNodes(),
			Edges: g.NumEdges(),
			Bytes: int64(len(data)),
			Added: time.Now().UTC(),
		}}
		r.byID[id] = e
		r.graphs.Inc()
		r.bytes.Add(int64(len(data)))
	}
	r.byName[name] = id
	info := e.info
	info.Lineage, info.Version, info.Latest = name, ver, ver
	return r.annotateLocked(info), nil
}

// drop removes a graph the store can no longer serve. Names that
// pointed at it follow their lineage's healed tip (the store repoints
// lineages when it drops a blob) instead of vanishing, so a corrupt
// tip degrades a name to the previous version rather than a 404.
func (r *Registry) drop(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byID, id)
	for name, d := range r.byName {
		if d != id {
			continue
		}
		if r.store != nil {
			if tip, _, _, err := r.store.ResolveVersion(name, 0); err == nil {
				if _, ok := r.byID[tip]; ok {
					r.byName[name] = tip
					continue
				}
			}
		}
		delete(r.byName, name)
	}
}

// List returns every registered graph, sorted by name then ID.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, r.annotateLocked(e.info))
	}
	slices.SortFunc(out, func(a, b GraphInfo) int {
		if c := strings.Compare(a.Name, b.Name); c != 0 {
			return c
		}
		return strings.Compare(a.ID, b.ID)
	})
	return out
}
