package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"gorder"
	"gorder/internal/core"
	"gorder/internal/fair"
	"gorder/internal/order"
	"gorder/internal/query"
	"gorder/internal/registry"
	"gorder/internal/store"
)

// Config configures a Server. The zero value is usable: one worker, a
// 64-deep queue, 5-minute default deadline, 32 MiB upload cap, no
// persistence.
type Config struct {
	Pool      PoolConfig
	MaxUpload int64 // bytes accepted on POST /graphs; <= 0 means 32 MiB
	Logger    *slog.Logger
	// Store, when set, persists graphs and ordering artifacts: the
	// registry is backed by it (catalog restored on construction, LRU
	// residency under its byte budget), ordering jobs consult the
	// artifact cache before computing and persist results after, and
	// the store_* metrics are exported.
	Store *store.Store

	// Query-tier knobs. Queries run on the HTTP goroutines behind
	// their own gate — never in the compute worker pool — so these are
	// independent of Pool.Workers.
	QueryConcurrency  int           // concurrent queries; <= 0 means 8
	QueryWaitCap      int           // queued waiters per tenant before 429; <= 0 means 64
	QueryTimeout      time.Duration // default per-query deadline; <= 0 means 30s
	QueryResultBudget int64         // result-cache LRU bytes; <= 0 means 64 MiB
	QueryGraphBudget  int64         // relabeled-graph LRU bytes; <= 0 means 256 MiB
	KernelWorkers     int           // goroutines per parallel kernel; <= 1 means serial

	// Traffic-tier knobs. TenantRate is the per-tenant request rate in
	// requests/second (<= 0 disables rate limiting entirely);
	// TenantBurst is the bucket size (<= 0 means one second of rate).
	// TenantWeights are the fair-queueing weights shared by the job
	// queue and the query read gate (nil = all tenants equal). Tenants
	// are named by the X-Tenant request header.
	TenantRate    float64
	TenantBurst   int
	TenantWeights fair.Weights

	// Mutation-tier knobs (POST /graphs/{name}/edges; store required).
	// DecayThreshold is the quality ratio below which a repair job is
	// enqueued (<= 0 means 0.93); RepairFullBelow the ratio below which
	// the repair recomputes from scratch instead of re-placing the
	// suffix (<= 0 means 0.85); MaxRepairs how many incremental repairs
	// may run between full recomputes (<= 0 means 3). DisableAutoRepair
	// stops mutations from enqueueing repair jobs — the quality record
	// still updates, and repairs can be submitted manually via POST
	// /jobs {"kind":"repair"}.
	DecayThreshold    float64
	RepairFullBelow   float64
	MaxRepairs        int
	DisableAutoRepair bool
}

// Server glues the registry, the pool, and the metrics into the HTTP
// JSON API gorderd serves. Construct with New, then Start the workers
// and mount Handler on an http.Server.
type Server struct {
	cfg     Config
	log     *slog.Logger
	Metrics *Metrics
	Reg     *Registry
	Pool    *Pool
	Query   *query.Executor
	mux     *http.ServeMux

	// mutMu serializes lineage mutations: versions form a chain, so
	// two edits must not both extend the same tip.
	mutMu sync.Mutex

	httpRequests *Counter
	httpErrors   *Counter

	// Traffic-tier plumbing: the per-tenant rate limiter (nil when
	// disabled) and the admission counters.
	limiter     *fair.Limiter
	rateLimited *Counter
	jobsShed    *Counter
	queryShed   *Counter

	// Query-tier plumbing: the weighted-fair read gate, the service
	// EWMA its shedder forecasts with, and the counters (the executor's
	// own counters are exported as Func metrics).
	qgate         *fair.Gate
	queryConc     int
	querySvc      *fair.EWMA
	queryRequests *Counter
	queryErrors   *Counter
	queryRejected *Counter
	queryBatches  *Counter
	queryMS       *Counter
	queryKernel   map[string]*Counter

	// Per-ordering instrumentation, fed by the registry's observation
	// hook: runs, cumulative wall milliseconds, and cancellations,
	// keyed by lowercase ordering name.
	orderingRuns     map[string]*Counter
	orderingMS       map[string]*Counter
	orderingCanceled map[string]*Counter

	// Aggregate greedy-work counters across all methods, from the
	// core.OrderStats carrier the registry threads through every
	// computation.
	orderingHeapOps    *Counter
	orderingPlacements *Counter
}

// New builds a Server (workers not yet started; call Start).
func New(cfg Config) *Server {
	if cfg.MaxUpload <= 0 {
		cfg.MaxUpload = 32 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Pool.Weights == nil {
		cfg.Pool.Weights = cfg.TenantWeights
	}
	m := NewMetrics()
	s := &Server{
		cfg:          cfg,
		log:          cfg.Logger,
		Metrics:      m,
		Reg:          NewRegistry(m),
		httpRequests: m.Counter("http_requests_total"),
		httpErrors:   m.Counter("http_errors_total"),

		orderingRuns:     make(map[string]*Counter),
		orderingMS:       make(map[string]*Counter),
		orderingCanceled: make(map[string]*Counter),

		orderingHeapOps:    m.Counter("ordering_heap_ops_total"),
		orderingPlacements: m.Counter("ordering_placements_total"),
	}
	if st := cfg.Store; st != nil {
		s.Reg.AttachStore(st)
		m.Func("store_hits_total", st.Hits)
		m.Func("store_misses_total", st.Misses)
		m.Func("store_evictions_total", st.Evictions)
		m.Func("store_resident_bytes", st.ResidentBytes)
		m.Func("store_graph_reloads_total", st.Reloads)
		m.Func("store_graphs", st.GraphCount)
		m.Func("store_orders", st.OrderCount)
		m.Func("store_results", st.ResultCount)
		m.Func("store_result_hits_total", st.ResultHits)
		m.Func("store_result_misses_total", st.ResultMisses)
	}
	s.initQuery(m)
	s.initTraffic(m)
	// Pre-register one counter triple per catalog ordering so /metrics
	// exposes every method from startup (zeros included) and the
	// observation hook never registers metrics concurrently.
	for _, desc := range registry.Orderings() {
		key := strings.ToLower(desc.Name)
		s.orderingRuns[key] = m.Counter("ordering_runs_" + key)
		s.orderingMS[key] = m.Counter("ordering_ms_" + key)
		s.orderingCanceled[key] = m.Counter("ordering_canceled_" + key)
	}
	s.Pool = NewPool(cfg.Pool, m, cfg.Logger, s.execute)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/methods", s.handleMethods)
	s.mux.HandleFunc("/graphs", s.handleGraphs)
	s.mux.HandleFunc("/graphs/", s.handleGraphByID)
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/query/batch", s.handleQueryBatch)
	return s
}

// Start launches the worker pool.
func (s *Server) Start() { s.Pool.Start() }

// Shutdown drains the pool; see Pool.Shutdown.
func (s *Server) Shutdown(ctx context.Context) []JobRequest {
	return s.Pool.Shutdown(ctx)
}

// Handler returns the daemon's HTTP handler: request counting, then
// per-tenant rate limiting, then the route mux.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.httpRequests.Inc()
		if !s.admit(w, r) {
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// ---- response envelopes -------------------------------------------------

// apiError is the uniform error envelope every endpoint returns:
// {"error":{"code":"not_found","message":"..."}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	s.httpErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// methodNotAllowed writes the envelope and the Allow header the RFC
// asks for.
func (s *Server) methodNotAllowed(w http.ResponseWriter, r *http.Request, allowed ...string) {
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
		"%s is not allowed on %s (allowed: %s)", r.Method, r.URL.Path, strings.Join(allowed, ", "))
}

// ---- endpoints ----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.Metrics.WriteJSON(w)
}

// methodInfo is the /methods view of one registry ordering: the
// canonical name plus the capability metadata a client needs to pick
// a method and set expectations (can it be canceled mid-run? does the
// seed matter? roughly how expensive is it?).
type methodInfo struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Stochastic  bool     `json:"stochastic"`
	Cancellable bool     `json:"cancellable"`
	Cost        string   `json:"cost"`
}

// handleMethods serves GET /methods: the ordering and kernel catalogs
// the daemon accepts, straight from the registry.
func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	descs := registry.Orderings()
	infos := make([]methodInfo, len(descs))
	for i, d := range descs {
		infos[i] = methodInfo{
			Name:        d.Name,
			Aliases:     d.Aliases,
			Stochastic:  d.Stochastic,
			Cancellable: d.Cancellable,
			Cost:        string(d.Cost),
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"orderings": infos,
		"kernels":   registry.KernelNames(),
	})
}

// handleGraphs serves GET /graphs (list) and POST /graphs (streaming
// upload; see upload.go). Uploads send the raw graph bytes (binary
// CSR or text edge list) as the body with the name in the ?name=
// query parameter.
func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.writeJSON(w, http.StatusOK, map[string]any{"graphs": s.Reg.List()})
	case http.MethodPost:
		s.handleGraphUpload(w, r)
	default:
		s.methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

// handleGraphByID routes /graphs/{ref} and its subresources. The ref
// may be a digest, a name, or a version reference (name@vN,
// name@latest); the subresources address lineages by name.
func (s *Server) handleGraphByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/graphs/")
	ref, sub, hasSub := strings.Cut(rest, "/")
	switch {
	case ref == "" || (hasSub && sub != "edges" && sub != "lineage"):
		s.writeError(w, http.StatusNotFound, "not_found", "no such route %s", r.URL.Path)
	case sub == "edges":
		s.handleGraphEdges(w, r, ref)
	case sub == "lineage":
		s.handleGraphLineage(w, r, ref)
	default:
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, r, http.MethodGet)
			return
		}
		info, ok := s.Reg.Stat(ref)
		if !ok {
			s.writeError(w, http.StatusNotFound, "graph_not_found", "no graph %q", ref)
			return
		}
		s.writeJSON(w, http.StatusOK, info)
	}
}

// maxJobBody caps POST /jobs bodies; job descriptions are tiny.
const maxJobBody = 64 << 10

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Pool.List()})
	case http.MethodPost:
		var req JobRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_request", "decoding job: %v", err)
			return
		}
		if code, msg := s.validateJob(&req); code != "" {
			s.writeError(w, http.StatusBadRequest, code, "%s", msg)
			return
		}
		// The header is the tenant identity; a body-supplied tenant only
		// survives for headerless submissions (manifest replay goes
		// through Submit directly and keeps its recorded tenant).
		if t := tenantOf(r); t != fair.DefaultTenant || req.Tenant == "" {
			req.Tenant = t
		}
		if s.shedJob(w, &req) {
			return
		}
		status, err := s.Pool.Submit(req)
		switch {
		case errors.Is(err, ErrQueueFull):
			s.writeRetryError(w, http.StatusTooManyRequests, "queue_full",
				s.Pool.EstimatedWait(),
				"the job queue is at its depth limit; retry later")
			return
		case errors.Is(err, ErrTenantQueueFull):
			s.writeRetryError(w, http.StatusTooManyRequests, "tenant_queue_full",
				s.Pool.EstimatedWait(),
				"tenant %q is at its queued-job cap; retry later", req.Tenant)
			return
		case errors.Is(err, ErrShuttingDown):
			s.writeError(w, http.StatusServiceUnavailable, "shutting_down",
				"the server is draining; submit to another replica")
			return
		case err != nil:
			s.writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		s.log.Info("job submitted", "job", status.ID, "kind", req.Kind,
			"graph", req.Graph, "method", req.Method)
		s.writeJSON(w, http.StatusAccepted, status)
	default:
		s.methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

// validateJob rejects requests that could never run, so mistakes fail
// at submit time with a message instead of queueing up a doomed job.
func (s *Server) validateJob(req *JobRequest) (code, msg string) {
	switch req.Kind {
	case KindOrder:
		if req.Method == "" {
			req.Method = "gorder"
		}
		if _, ok := registry.Lookup(req.Method); !ok {
			return "unknown_method", fmt.Sprintf("unknown ordering %q (known: %s)",
				req.Method, strings.Join(registry.MethodNames(), " "))
		}
	case KindEval:
		if req.Kernel != "" {
			if _, ok := registry.LookupKernel(req.Kernel); !ok {
				return "unknown_kernel", fmt.Sprintf("unknown kernel %q (known: %s)",
					req.Kernel, strings.Join(registry.KernelNames(), " "))
			}
		}
	case KindRepair:
		if s.cfg.Store == nil {
			return "no_store", "repair jobs require the daemon to run with a persistent store (-data-dir)"
		}
		if req.Graph != "" {
			if _, ok := s.cfg.Store.Lineage(req.Graph); !ok {
				return "unknown_lineage", fmt.Sprintf("no graph lineage %q to repair", req.Graph)
			}
		}
	default:
		return "unknown_kind", fmt.Sprintf("unknown job kind %q (known: %s, %s, %s)",
			req.Kind, KindOrder, KindEval, KindRepair)
	}
	if req.Graph == "" {
		return "missing_graph", "job requires a graph ID or name"
	}
	// Stat, not Get: validation must not pull an evicted graph back
	// into memory just to check it exists.
	if _, ok := s.Reg.Stat(req.Graph); !ok {
		return "graph_not_found", fmt.Sprintf("no graph %q registered", req.Graph)
	}
	if req.TimeoutMs < 0 {
		return "bad_timeout", "timeout_ms must be >= 0"
	}
	return "", ""
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	switch {
	case id == "":
		s.writeError(w, http.StatusNotFound, "not_found", "no such route %s", r.URL.Path)
	case sub == "":
		status, ok := s.Pool.Get(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "job_not_found", "no job %q", id)
			return
		}
		s.writeJSON(w, http.StatusOK, status)
	case sub == "permutation":
		perm, status, ok := s.Pool.Permutation(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "job_not_found", "no job %q", id)
			return
		}
		if status.State != StateDone || perm == nil {
			s.writeError(w, http.StatusConflict, "not_ready",
				"job %s is %s; a permutation is only available from a done order job",
				id, status.State)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := order.WritePermutation(w, perm); err != nil {
			s.log.Warn("permutation download aborted", "job", id, "err", err)
		}
	default:
		s.writeError(w, http.StatusNotFound, "not_found", "no such route %s", r.URL.Path)
	}
}

// ---- job execution ------------------------------------------------------

// observeOrdering folds one registry observation into the per-method
// counters. Observations for unknown methods (a failed lookup leaves
// Ordering empty) are dropped.
func (s *Server) observeOrdering(obs registry.Observation) {
	key := strings.ToLower(obs.Ordering)
	if c, ok := s.orderingRuns[key]; ok {
		c.Inc()
	} else {
		return
	}
	s.orderingMS[key].Add(obs.Duration.Milliseconds())
	if obs.Canceled {
		s.orderingCanceled[key].Inc()
	}
	s.orderingHeapOps.Add(obs.HeapOps)
	s.orderingPlacements.Add(obs.Placements)
}

// execute is the pool's executor: it resolves the graph, runs the
// ordering or evaluation with the job's context, and returns the
// metrics that end up in the job status.
func (s *Server) execute(ctx context.Context, req JobRequest, found func(order.Permutation)) (map[string]float64, error) {
	g, info, ok := s.Reg.Get(req.Graph)
	if !ok {
		// The graph was known at submit time but may since have been
		// deregistered (a store-backed graph whose blob went corrupt).
		return nil, fmt.Errorf("graph %q is no longer registered", req.Graph)
	}
	w := req.Window
	if w <= 0 {
		w = core.DefaultWindow
	}
	switch req.Kind {
	case KindOrder:
		opts := registry.Options{
			Window: req.Window, HubThreshold: req.Hub, Seed: req.Seed, LDGBins: req.LDGBins,
			Workers: req.Workers, Partitions: req.Partitions,
		}
		// The artifact cache keys on graph digest + canonical method +
		// canonicalized options, so every spelling of the same job maps
		// to one artifact. A hit skips the ordering computation entirely
		// — the amortization the store exists for.
		var method, optKey string
		var copts registry.Options
		if st := s.cfg.Store; st != nil {
			if desc, ok := registry.Lookup(req.Method); ok {
				if c, key, err := registry.OptionsKey(req.Method, opts); err == nil {
					method, optKey, copts = strings.ToLower(desc.Name), key, c
				}
			}
			if optKey != "" {
				if perm, ok := st.GetOrder(info.ID, method, optKey, g.NumNodes()); ok {
					found(perm)
					f := order.Score(g, perm, w)
					s.recordOrderingQuality(info.ID, g, method, optKey, copts, perm, w, f, false)
					return map[string]float64{
						"score_F":   float64(f),
						"bandwidth": float64(order.Bandwidth(g, perm)),
						"cache_hit": 1,
					}, nil
				}
			}
		}
		perm, obs, err := registry.ComputeObserved(ctx, g, req.Method, opts)
		s.observeOrdering(obs)
		if err != nil {
			return nil, err
		}
		found(perm)
		f := order.Score(g, perm, w)
		if optKey != "" {
			if err := s.cfg.Store.PutOrder(info.ID, method, optKey, perm); err != nil {
				s.log.Warn("persisting ordering artifact failed", "graph", info.ID,
					"method", method, "err", err)
			} else {
				// A fresh full computation is the quality monitor's ground
				// truth: (re-)baseline any lineage this graph tips.
				s.recordOrderingQuality(info.ID, g, method, optKey, copts, perm, w, f, true)
			}
		}
		return map[string]float64{
			"score_F":   float64(f),
			"bandwidth": float64(order.Bandwidth(g, perm)),
		}, nil
	case KindEval:
		perm := order.Identity(g.NumNodes())
		if req.OfJob != "" {
			p, status, ok := s.Pool.Permutation(req.OfJob)
			if !ok {
				return nil, fmt.Errorf("of_job %q does not exist", req.OfJob)
			}
			if status.State != StateDone || p == nil {
				return nil, fmt.Errorf("of_job %q is %s, not a done order job", req.OfJob, status.State)
			}
			perm = p
		}
		if len(perm) != g.NumNodes() {
			return nil, fmt.Errorf("permutation from %q covers %d vertices, graph has %d",
				req.OfJob, len(perm), g.NumNodes())
		}
		metrics := map[string]float64{
			"score_F":     float64(order.Score(g, perm, w)),
			"bandwidth":   float64(order.Bandwidth(g, perm)),
			"linear_cost": order.LinearCost(g, perm),
			"log_cost":    order.LogCost(g, perm),
		}
		if req.Kernel != "" {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rep, err := gorder.SimulateCache(gorder.Apply(g, perm), req.Kernel, gorder.SmallCache())
			if err != nil {
				return nil, err
			}
			metrics["l1_miss_rate"] = rep.L1MissRate()
			metrics["cache_miss_rate"] = rep.MissRate()
			metrics["llc_ratio"] = rep.LLCRatio()
			metrics["sim_cycles"] = float64(rep.Cycles)
		}
		return metrics, nil
	case KindRepair:
		return s.executeRepair(ctx, g, info, found)
	default:
		return nil, fmt.Errorf("unknown job kind %q", req.Kind)
	}
}

// DrainAndPersist performs the daemon's graceful-exit sequence: drain
// the pool within the grace period and persist any still-queued jobs
// to manifestPath so the next start can replay them.
func (s *Server) DrainAndPersist(grace time.Duration, manifestPath string) error {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	queued := s.Shutdown(ctx)
	if manifestPath == "" {
		return nil
	}
	if err := WriteManifest(manifestPath, queued); err != nil {
		return fmt.Errorf("persisting job manifest: %w", err)
	}
	if len(queued) > 0 {
		s.log.Info("queued jobs persisted", "count", len(queued), "path", manifestPath)
	}
	return nil
}

// Replay submits previously persisted job requests (from a shutdown
// manifest), logging and skipping any that no longer validate — e.g.
// jobs naming graphs that are not registered this run.
func (s *Server) Replay(reqs []JobRequest) int {
	n := 0
	for _, req := range reqs {
		if code, msg := s.validateJob(&req); code != "" {
			s.log.Warn("skipping manifest job", "code", code, "reason", msg)
			continue
		}
		if _, err := s.Pool.Submit(req); err != nil {
			s.log.Warn("skipping manifest job", "err", err)
			continue
		}
		n++
	}
	return n
}
