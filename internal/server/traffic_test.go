package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gorder/internal/gen"
	"gorder/internal/order"
	"gorder/internal/query"
	"gorder/internal/store"
)

// tenantDo issues one request under an X-Tenant identity and returns
// the response with the body drained into the second return.
func tenantDo(t *testing.T, ts *httptest.Server, method, path, tenant string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// TestStreamingUploadParity pins the streaming ingest path: a text
// upload must land with the content digest the buffered path computed
// (sha256 of the body), deduplicate against itself, route binary CSR
// through the sniffer, and produce a graph queries can run on.
func TestStreamingUploadParity(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 4}})
	g := gen.BarabasiAlbert(4000, 4, 11)
	data := edgeListBytes(t, g)

	info := postGraph(t, ts, "text", data)
	sum := sha256.Sum256(data)
	if want := hex.EncodeToString(sum[:8]); info.ID != want {
		t.Fatalf("streamed upload ID %s, want content digest %s", info.ID, want)
	}
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("streamed graph is %d nodes / %d edges, want %d / %d",
			info.Nodes, info.Edges, g.NumNodes(), g.NumEdges())
	}
	if info.Bytes != int64(len(data)) {
		t.Fatalf("recorded %d upload bytes, want %d", info.Bytes, len(data))
	}

	// The same bytes under another name deduplicate: 200, same ID.
	resp, body := tenantDo(t, ts, http.MethodPost, "/graphs?name=text2", "", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate upload: status %d: %s", resp.StatusCode, body)
	}
	var dup GraphInfo
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != info.ID {
		t.Fatalf("duplicate upload got ID %s, want %s", dup.ID, info.ID)
	}

	// Binary CSR routes through the sniffer to the binary decoder.
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	binfo := postGraph(t, ts, "binform", bin.Bytes())
	if binfo.Nodes != g.NumNodes() || binfo.Edges != g.NumEdges() {
		t.Fatalf("binary upload is %d nodes / %d edges, want %d / %d",
			binfo.Nodes, binfo.Edges, g.NumNodes(), g.NumEdges())
	}

	// The streamed graph serves queries end to end.
	postQuery(t, ts, query.Request{Graph: "text", Kernel: "BFS"}, http.StatusOK)
}

// TestUploadBodyCap: a body over -max-upload-bytes gets a clean 413
// envelope — even though the limit fires mid-stream — and the daemon
// keeps serving smaller uploads afterwards.
func TestUploadBodyCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxUpload: 8 << 10, Pool: PoolConfig{Workers: 1, QueueDepth: 4}})
	big := edgeListBytes(t, gen.BarabasiAlbert(3000, 4, 3))
	if len(big) <= 8<<10 {
		t.Fatalf("test graph renders to %d bytes, need > %d", len(big), 8<<10)
	}
	resp, body := tenantDo(t, ts, http.MethodPost, "/graphs?name=big", "", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize upload: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "too_large") {
		t.Fatalf("oversize upload envelope missing too_large: %s", body)
	}
	postGraph(t, ts, "small", edgeListBytes(t, gen.BarabasiAlbert(100, 3, 3)))
}

// TestTenantRateLimit: per-tenant token buckets with Retry-After on
// the 429, independent buckets per tenant, and exemption for the
// operator routes.
func TestTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{
		TenantRate:  1,
		TenantBurst: 2,
		Pool:        PoolConfig{Workers: 1, QueueDepth: 4},
	})
	var last *http.Response
	codes := make([]int, 3)
	for i := range codes {
		last, _ = tenantDo(t, ts, http.MethodGet, "/graphs", "alpha", nil)
		codes[i] = last.StatusCode
	}
	if codes[0] != 200 || codes[1] != 200 || codes[2] != 429 {
		t.Fatalf("burst-2 tenant saw %v, want [200 200 429]", codes)
	}
	ra, err := strconv.Atoi(last.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer >= 1", last.Header.Get("Retry-After"))
	}

	// Another tenant has its own bucket; so does headerless traffic.
	if resp, _ := tenantDo(t, ts, http.MethodGet, "/graphs", "beta", nil); resp.StatusCode != 200 {
		t.Fatalf("tenant beta limited by tenant alpha's bucket: %d", resp.StatusCode)
	}
	if resp, _ := tenantDo(t, ts, http.MethodGet, "/graphs", "", nil); resp.StatusCode != 200 {
		t.Fatalf("default tenant limited by tenant alpha's bucket: %d", resp.StatusCode)
	}

	// Health and metrics answer even for an exhausted tenant.
	for _, path := range []string{"/healthz", "/metrics"} {
		if resp, _ := tenantDo(t, ts, http.MethodGet, path, "alpha", nil); resp.StatusCode != 200 {
			t.Fatalf("exempt route %s limited: %d", path, resp.StatusCode)
		}
	}
	if snap := metricsSnapshot(t, ts); snap["rate_limited_total"] < 1 {
		t.Fatalf("rate_limited_total = %d, want >= 1", snap["rate_limited_total"])
	}
}

// TestQueueWaitSurfaced: a job that sat behind another must report its
// queue wait separately from its run time, and the wait must land in
// the job_queue_wait_ms_total counter.
func TestQueueWaitSurfaced(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 8}})
	postGraph(t, ts, "big", edgeListBytes(t, gen.BarabasiAlbert(30000, 8, 7)))

	j1 := postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "big", Method: "minloga"})
	j2 := postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "big", Method: "minloga"})
	st2 := waitJob(t, ts, j2.ID)
	st1 := waitJob(t, ts, j1.ID)
	if st1.State != StateDone || st2.State != StateDone {
		t.Fatalf("jobs ended %s / %s", st1.State, st2.State)
	}
	if st2.QueueWaitMs <= 0 {
		t.Fatalf("second job behind a busy worker reports queue_wait_ms = %d, want > 0", st2.QueueWaitMs)
	}
	if snap := metricsSnapshot(t, ts); snap["job_queue_wait_ms_total"] < st2.QueueWaitMs {
		t.Fatalf("job_queue_wait_ms_total = %d, want >= %d",
			snap["job_queue_wait_ms_total"], st2.QueueWaitMs)
	}
}

// TestFairDequeueAcrossTenants pins the pool's dequeue order
// deterministically: with a blocking executor, a quiet tenant's job
// submitted after a noisy tenant's flood must run immediately after
// the in-flight job, not after the flood.
func TestFairDequeueAcrossTenants(t *testing.T) {
	var mu sync.Mutex
	var ran []string
	step := make(chan struct{})
	exec := func(ctx context.Context, req JobRequest, found func(order.Permutation)) (map[string]float64, error) {
		mu.Lock()
		ran = append(ran, req.Graph)
		mu.Unlock()
		<-step
		return nil, nil
	}
	p := NewPool(PoolConfig{Workers: 1, QueueDepth: 16}, NewMetrics(), nil, exec)
	p.Start()
	submit := func(tenant, label string) {
		t.Helper()
		if _, err := p.Submit(JobRequest{Kind: KindEval, Graph: label, Tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}
	ranLen := func() int { mu.Lock(); defer mu.Unlock(); return len(ran) }

	submit("noisy", "blocker")
	for deadline := time.Now().Add(5 * time.Second); ranLen() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		submit("noisy", fmt.Sprintf("noisy-%d", i))
	}
	submit("quiet", "quiet")
	for i := 0; i < 7; i++ {
		step <- struct{}{}
	}
	for deadline := time.Now().Add(5 * time.Second); ranLen() < 7; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 7 jobs ran", ranLen())
		}
		time.Sleep(time.Millisecond)
	}
	p.Shutdown(context.Background())
	if ran[1] != "quiet" {
		t.Fatalf("dequeue order %v: the quiet tenant's job must follow the blocker, not the flood", ran)
	}
}

// TestTenantQueueCapHTTP: with a per-tenant queue cap, one tenant's
// flood hits tenant_queue_full while another tenant still submits.
func TestTenantQueueCapHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pool: PoolConfig{Workers: 1, QueueDepth: 8, TenantQueueDepth: 1},
	})
	postGraph(t, ts, "mid", edgeListBytes(t, gen.BarabasiAlbert(20000, 6, 5)))
	jobBody, _ := json.Marshal(JobRequest{Kind: KindOrder, Graph: "mid", Method: "minloga"})

	codes := make([]int, 3)
	var lastBody []byte
	for i := range codes {
		resp, body := tenantDo(t, ts, http.MethodPost, "/jobs", "noisy", jobBody)
		codes[i] = resp.StatusCode
		if resp.StatusCode == 429 {
			lastBody = body
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("tenant-cap 429 carries no Retry-After")
			}
		}
	}
	if codes[2] != 429 {
		t.Fatalf("third rapid submission got %v, want the tenant cap's 429", codes)
	}
	if !strings.Contains(string(lastBody), "tenant_queue_full") {
		t.Fatalf("cap envelope missing tenant_queue_full: %s", lastBody)
	}
	if resp, body := tenantDo(t, ts, http.MethodPost, "/jobs", "quiet", jobBody); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quiet tenant blocked by noisy tenant's cap: %d: %s", resp.StatusCode, body)
	}
}

// TestQuietTenantNotStarvedUnderReadFlood is the fair-queueing
// acceptance e2e: one read slot, four goroutines flooding queries
// under one tenant, and a quiet tenant running ten sequential queries
// through the same gate. Every quiet query must succeed while the
// flood is live — the weighted-fair gate admits the quiet tenant
// within one round regardless of the flood's waiting depth.
func TestQuietTenantNotStarvedUnderReadFlood(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pool:             PoolConfig{Workers: 1, QueueDepth: 8},
		QueryConcurrency: 1,
		QueryWaitCap:     64,
	})
	postGraph(t, ts, "g", edgeListBytes(t, gen.BarabasiAlbert(3000, 4, 1)))

	postTenantQuery := func(tenant string, src int) int {
		s := src
		body, _ := json.Marshal(query.Request{Graph: "g", Kernel: "BFS", Source: &s})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
		if err != nil {
			return -1
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var noisyOK, noisyShed, noisyBad atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch code := postTenantQuery("noisy", rng.Intn(3000)); code {
				case http.StatusOK:
					noisyOK.Add(1)
				case http.StatusTooManyRequests:
					noisyShed.Add(1)
				default:
					noisyBad.Add(1)
				}
			}
		}(int64(i))
	}
	time.Sleep(100 * time.Millisecond) // let the flood park waiters

	start := time.Now()
	for i := 0; i < 10; i++ {
		if code := postTenantQuery("quiet", i); code != http.StatusOK {
			t.Errorf("quiet query %d under read flood: status %d", i, code)
		}
	}
	quietElapsed := time.Since(start)
	close(stop)
	wg.Wait()

	if t.Failed() {
		t.Fatalf("quiet tenant starved (flood: %d ok, %d shed, %d other)",
			noisyOK.Load(), noisyShed.Load(), noisyBad.Load())
	}
	if noisyOK.Load() == 0 {
		t.Fatal("the flood itself made no progress")
	}
	if noisyBad.Load() > 0 {
		t.Fatalf("flood saw %d non-200/429 responses", noisyBad.Load())
	}
	// Loose wall bound: ten fair admissions through a churning gate.
	if quietElapsed > 10*time.Second {
		t.Fatalf("quiet tenant needed %s for 10 queries", quietElapsed)
	}
}

// TestMixedTrafficRace hammers one store-backed daemon with eight
// goroutines of mixed uploads, order jobs, queries, and lineage edits
// under four tenants: no 5xx, and every accepted job reaches a
// terminal, successful state (none lost, none failed).
func TestMixedTrafficRace(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Pool:             PoolConfig{Workers: 2, QueueDepth: 128},
		Store:            st,
		QueryConcurrency: 4,
	})
	t.Cleanup(func() { st.Close() })
	postGraph(t, ts, "mix", edgeListBytes(t, gen.BarabasiAlbert(2000, 4, 8)))

	const goroutines, iters = 8, 12
	var mu sync.Mutex
	var jobIDs []string
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", gi%4)
			rng := rand.New(rand.NewSource(int64(gi)))
			do := func(path string, body []byte) (*http.Response, []byte) {
				req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return nil, nil
				}
				req.Header.Set("X-Tenant", tenant)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return nil, nil
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("%s returned %d: %s", path, resp.StatusCode, b)
				}
				return resp, b
			}
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // upload a fresh graph
					var buf bytes.Buffer
					if err := gen.BarabasiAlbert(150+7*gi+i, 3, uint64(100*gi+i)).WriteEdgeList(&buf); err != nil {
						t.Error(err)
						continue
					}
					do(fmt.Sprintf("/graphs?name=up-%d-%d", gi, i), buf.Bytes())
				case 1: // order the shared graph
					body, _ := json.Marshal(JobRequest{Kind: KindOrder, Graph: "mix", Method: "gorder"})
					if resp, b := do("/jobs", body); resp != nil && resp.StatusCode == http.StatusAccepted {
						var js JobStatus
						if err := json.Unmarshal(b, &js); err == nil {
							mu.Lock()
							jobIDs = append(jobIDs, js.ID)
							mu.Unlock()
						}
					}
				case 2: // query the shared graph
					s := rng.Intn(2000)
					body, _ := json.Marshal(query.Request{Graph: "mix", Kernel: "BFS", Source: &s})
					do("/query", body)
				case 3: // mutate the shared lineage
					body, _ := json.Marshal(map[string]any{
						"add": []map[string]int{{"from": rng.Intn(2000), "to": rng.Intn(2000)}},
					})
					do("/graphs/mix/edges", body)
				}
			}
		}(gi)
	}
	wg.Wait()
	if len(jobIDs) == 0 {
		t.Fatal("no order jobs were accepted")
	}
	for _, id := range jobIDs {
		if st := waitJob(t, ts, id); st.State != StateDone {
			t.Errorf("job %s ended %s: %s", id, st.State, st.Error)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after the mixed run: %v %v", err, resp)
	}
	resp.Body.Close()
}
