package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/query"
	"gorder/internal/store"
)

// postEdges submits one mutation batch and decodes the response when
// the status matches; on a mismatch it fails the test with the body.
func postEdges(t *testing.T, ts *httptest.Server, name string, req editRequest, wantStatus int) *editResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/graphs/"+name+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /graphs/%s/edges: status %d, want %d: %s", name, resp.StatusCode, wantStatus, b)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	out := decodeJSON[editResponse](t, resp.Body)
	return &out
}

// getLineage fetches GET /graphs/{name}/lineage.
func getLineage(t *testing.T, ts *httptest.Server, name string) (versions []versionView, quality *qualityView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/graphs/" + name + "/lineage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET lineage %s: status %d: %s", name, resp.StatusCode, b)
	}
	var out struct {
		Versions []versionView `json:"versions"`
		Quality  *qualityView  `json:"quality"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Versions, out.Quality
}

func getGraphInfo(t *testing.T, ts *httptest.Server, ref string, wantStatus int) GraphInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/graphs/" + ref)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /graphs/%s: status %d, want %d: %s", ref, resp.StatusCode, wantStatus, b)
	}
	if wantStatus != http.StatusOK {
		return GraphInfo{}
	}
	return decodeJSON[GraphInfo](t, resp.Body)
}

// growthBatch builds a deterministic mutation batch against the mirror
// graph: extra new vertices each following a spread of existing ones,
// plus the first dels existing edges removed.
func growthBatch(g *graph.Graph, extra, dels int) editRequest {
	n := g.NumNodes()
	req := editRequest{AddNodes: extra}
	for v := n; v < n+extra; v++ {
		for j := 0; j < 3; j++ {
			req.Add = append(req.Add, edgeSpec{From: v, To: (v*31 + j*577) % n})
		}
	}
	g.Edges(func(u, v graph.NodeID) bool {
		if len(req.Del) < dels {
			req.Del = append(req.Del, edgeSpec{From: int(u), To: int(v)})
			return true
		}
		return false
	})
	return req
}

// applyMirror applies req to the local mirror the same way the server
// does, so the test always knows the expected shape of the tip.
func applyMirror(t *testing.T, g *graph.Graph, req editRequest) *graph.Graph {
	t.Helper()
	add := make([]graph.Edge, len(req.Add))
	for i, e := range req.Add {
		add[i] = graph.Edge{From: graph.NodeID(e.From), To: graph.NodeID(e.To)}
	}
	del := make([]graph.Edge, len(req.Del))
	for i, e := range req.Del {
		del[i] = graph.Edge{From: graph.NodeID(e.From), To: graph.NodeID(e.To)}
	}
	g2, _, err := graph.ApplyEdits(g, req.AddNodes, add, del)
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

// TestMutationEndToEnd is the tentpole acceptance flow: upload, order,
// three edit batches with deletions, and queries on the moving tip —
// @latest always reflects the newest version while pinned versions
// keep serving their own.
func TestMutationEndToEnd(t *testing.T) {
	_, ts := newStoreServer(t, t.TempDir(), 0)
	g := gen.BarabasiAlbert(500, 4, 7)
	postGraph(t, ts, "soc", edgeListBytes(t, g))

	st := waitJob(t, ts, postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "soc", Method: "gorder"}).ID)
	if st.State != StateDone {
		t.Fatalf("order job ended %s (%s)", st.State, st.Error)
	}
	if _, q := getLineage(t, ts, "soc"); q == nil || q.Method != "gorder" {
		t.Fatalf("order job did not seed a quality baseline: %+v", q)
	}

	mirror := g
	for i := 1; i <= 3; i++ {
		req := growthBatch(mirror, 20, 5)
		resp := postEdges(t, ts, "soc", req, http.StatusOK)
		mirror = applyMirror(t, mirror, req)
		if resp.Graph.Version != i+1 || resp.Graph.Latest != i+1 {
			t.Fatalf("batch %d: version %d/latest %d, want %d", i, resp.Graph.Version, resp.Graph.Latest, i+1)
		}
		if resp.Graph.Nodes != mirror.NumNodes() || resp.Graph.Edges != mirror.NumEdges() {
			t.Fatalf("batch %d: tip %d/%d nodes/edges, mirror %d/%d",
				i, resp.Graph.Nodes, resp.Graph.Edges, mirror.NumNodes(), mirror.NumEdges())
		}
		if resp.EdgesDeleted == 0 {
			t.Fatalf("batch %d deleted no edges", i)
		}
		if resp.OrdersExtended == 0 {
			t.Fatalf("batch %d extended no ordering artifacts", i)
		}
		if resp.Quality == nil || resp.Quality.Decay <= 0 {
			t.Fatalf("batch %d: quality not tracked: %+v", i, resp.Quality)
		}
	}

	// The bare name and @latest follow the tip; @v1 pins the original.
	tip := getGraphInfo(t, ts, "soc", http.StatusOK)
	if tip.Version != 4 || tip.Latest != 4 || tip.Nodes != 560 {
		t.Fatalf("tip = v%d/%d with %d nodes, want v4/4 with 560", tip.Version, tip.Latest, tip.Nodes)
	}
	if latest := getGraphInfo(t, ts, "soc@latest", http.StatusOK); latest.ID != tip.ID {
		t.Fatalf("soc@latest resolved %s, tip is %s", latest.ID, tip.ID)
	}
	v1 := getGraphInfo(t, ts, "soc@v1", http.StatusOK)
	if v1.Version != 1 || v1.Latest != 4 || v1.Nodes != 500 {
		t.Fatalf("soc@v1 = v%d/%d with %d nodes, want v1/4 with 500", v1.Version, v1.Latest, v1.Nodes)
	}
	getGraphInfo(t, ts, "soc@v9", http.StatusNotFound)
	if vs, _ := getLineage(t, ts, "soc"); len(vs) != 4 {
		t.Fatalf("lineage has %d versions, want 4", len(vs))
	}

	// A query sourced at a vertex that only exists after the mutations
	// succeeds on @latest and is rejected on the pinned first version:
	// the name never serves a stale graph.
	src := 550
	resp := postQuery(t, ts, query.Request{Graph: "soc", Kernel: "BFS", Source: &src}, http.StatusOK)
	if resp.Graph != tip.ID {
		t.Fatalf("query on the name ran against %s, tip is %s", resp.Graph, tip.ID)
	}
	if resp.Ordering.Method != "gorder" {
		t.Fatalf("tip query served by %q ordering, want the carried-forward gorder artifact",
			resp.Ordering.Method)
	}
	postQuery(t, ts, query.Request{Graph: "soc@v1", Kernel: "BFS", Source: &src}, http.StatusBadRequest)
	old := postQuery(t, ts, query.Request{Graph: "soc@v1", Kernel: "NQ"}, http.StatusOK)
	if old.Graph != v1.ID {
		t.Fatalf("pinned query ran against %s, want v1 digest %s", old.Graph, v1.ID)
	}
}

// TestMutationAutoRepair drives the decay monitor: with the threshold
// set above any achievable ratio, the first mutation enqueues a repair
// job, which re-places the suffix and bumps the repair counter without
// touching the baseline.
func TestMutationAutoRepair(t *testing.T) {
	dir := t.TempDir()
	stq, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Pool:           PoolConfig{Workers: 1, QueueDepth: 8},
		Store:          stq,
		DecayThreshold: 1.5, // unreachable: every mutation counts as decayed
	})
	t.Cleanup(func() { stq.Close() })

	g := gen.BarabasiAlbert(400, 4, 11)
	postGraph(t, ts, "soc", edgeListBytes(t, g))
	if st := waitJob(t, ts, postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "soc", Method: "gorder"}).ID); st.State != StateDone {
		t.Fatalf("order job ended %s (%s)", st.State, st.Error)
	}

	resp := postEdges(t, ts, "soc", growthBatch(g, 20, 5), http.StatusOK)
	if resp.RepairJob == "" {
		t.Fatalf("no repair enqueued at decay %.3f under an unreachable threshold", resp.Quality.Decay)
	}
	rst := waitJob(t, ts, resp.RepairJob)
	if rst.State != StateDone {
		t.Fatalf("repair job ended %s (%s)", rst.State, rst.Error)
	}
	if rst.Metrics["repaired_vertices"] != 20 {
		t.Fatalf("repair re-placed %v vertices, want the 20 added since baseline", rst.Metrics["repaired_vertices"])
	}
	if rst.Metrics["decay_after"] < rst.Metrics["decay_before"] {
		t.Fatalf("repair worsened decay: %.3f -> %.3f",
			rst.Metrics["decay_before"], rst.Metrics["decay_after"])
	}
	_, q := getLineage(t, ts, "soc")
	if q == nil || q.Repairs != 1 {
		t.Fatalf("quality after repair = %+v, want repairs == 1", q)
	}
	if q.CleanNodes != 400 {
		t.Fatalf("repair moved the baseline: clean_nodes %d, want 400", q.CleanNodes)
	}
	_ = s
}

// TestLineageSurvivesDaemonRestart reopens the store under a fresh
// server: versions, the carried-forward ordering artifact, and the
// quality record all come back without rerunning any job.
func TestLineageSurvivesDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	run := func(work func(s *Server, ts *httptest.Server)) {
		stq, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Pool: PoolConfig{Workers: 1, QueueDepth: 8}, Store: stq, DisableAutoRepair: true})
		s.Start()
		ts := httptest.NewServer(s.Handler())
		work(s, ts)
		ts.Close()
		s.DrainAndPersist(5*time.Second, "")
		stq.Close()
	}

	g := gen.BarabasiAlbert(300, 4, 3)
	var tipID, v1ID string
	run(func(s *Server, ts *httptest.Server) {
		v1ID = postGraph(t, ts, "soc", edgeListBytes(t, g)).ID
		if st := waitJob(t, ts, postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "soc", Method: "gorder"}).ID); st.State != StateDone {
			t.Fatalf("order job ended %s (%s)", st.State, st.Error)
		}
		mirror := g
		for i := 0; i < 2; i++ {
			req := growthBatch(mirror, 10, 3)
			tipID = postEdges(t, ts, "soc", req, http.StatusOK).Graph.ID
			mirror = applyMirror(t, mirror, req)
		}
	})

	run(func(s *Server, ts *httptest.Server) {
		tip := getGraphInfo(t, ts, "soc", http.StatusOK)
		if tip.ID != tipID || tip.Version != 3 || tip.Latest != 3 {
			t.Fatalf("restarted tip = %s v%d/%d, want %s v3/3", tip.ID, tip.Version, tip.Latest, tipID)
		}
		if v1 := getGraphInfo(t, ts, "soc@v1", http.StatusOK); v1.ID != v1ID {
			t.Fatalf("restarted soc@v1 = %s, want %s", v1.ID, v1ID)
		}
		vs, q := getLineage(t, ts, "soc")
		if len(vs) != 3 {
			t.Fatalf("restarted lineage has %d versions, want 3", len(vs))
		}
		if q == nil || q.Method != "gorder" {
			t.Fatalf("quality record lost across restart: %+v", q)
		}
		// The tip's extended artifact survived: a fresh query is served
		// over gorder without any new order job.
		resp := postQuery(t, ts, query.Request{Graph: "soc", Kernel: "PR"}, http.StatusOK)
		if resp.Ordering.Method != "gorder" {
			t.Fatalf("restarted query served by %q, want the persisted gorder artifact", resp.Ordering.Method)
		}
	})
}

// TestCorruptTipServesPreviousVersion corrupts the tip's blob on disk:
// the first resolve fails and deregisters it, after which the name
// serves the healed previous version instead of a 404.
func TestCorruptTipServesPreviousVersion(t *testing.T) {
	dir := t.TempDir()
	s, ts := newStoreServer(t, dir, 1) // 1-byte budget: nothing stays resident
	g := gen.BarabasiAlbert(300, 4, 5)
	postGraph(t, ts, "soc", edgeListBytes(t, g))
	tip := postEdges(t, ts, "soc", growthBatch(g, 10, 0), http.StatusOK)

	matches, err := filepath.Glob(filepath.Join(dir, "*", tip.Graph.ID))
	if err != nil || len(matches) != 1 {
		t.Fatalf("locating tip blob %s: %v (%d matches)", tip.Graph.ID, err, len(matches))
	}
	blob, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(matches[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := s.Reg.Get("soc"); ok {
		t.Fatal("corrupt tip resolved successfully")
	}
	g2, info, ok := s.Reg.Get("soc")
	if !ok {
		t.Fatal("name did not heal to the previous version")
	}
	if info.Nodes != 300 || g2.NumNodes() != 300 {
		t.Fatalf("healed graph has %d nodes, want the original 300", g2.NumNodes())
	}
	if ti := getGraphInfo(t, ts, "soc", http.StatusOK); ti.Version != 1 || ti.Latest != 1 {
		t.Fatalf("healed lineage reports v%d/%d, want v1/1", ti.Version, ti.Latest)
	}
}

// TestMutationValidation covers the endpoint's failure envelopes.
func TestMutationValidation(t *testing.T) {
	_, plain := newTestServer(t, Config{Pool: PoolConfig{Workers: 1}})
	postEdges(t, plain, "x", editRequest{AddNodes: 1}, http.StatusNotImplemented)

	_, ts := newStoreServer(t, t.TempDir(), 0)
	postGraph(t, ts, "soc", edgeListBytes(t, gen.BarabasiAlbert(50, 3, 1)))
	postEdges(t, ts, "nope", editRequest{AddNodes: 1}, http.StatusNotFound)
	postEdges(t, ts, "soc@v1", editRequest{AddNodes: 1}, http.StatusBadRequest)
	postEdges(t, ts, "soc", editRequest{}, http.StatusBadRequest)
	postEdges(t, ts, "soc", editRequest{AddNodes: -1}, http.StatusBadRequest)
	postEdges(t, ts, "soc", editRequest{Add: []edgeSpec{{From: -1, To: 2}}}, http.StatusBadRequest)
	postEdges(t, ts, "soc", editRequest{Add: []edgeSpec{{From: 0, To: 5000}}}, http.StatusBadRequest)

	// Repair jobs validate their lineage at submit time.
	body, _ := json.Marshal(JobRequest{Kind: KindRepair, Graph: "nope"})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("repair of unknown lineage: status %d, want 400", resp.StatusCode)
	}
}

// TestParseRef pins the version-reference grammar.
func TestParseRef(t *testing.T) {
	cases := []struct {
		ref       string
		name      string
		version   int
		versioned bool
	}{
		{"web", "web", 0, false},
		{"web@latest", "web", 0, true},
		{"web@v1", "web", 1, true},
		{"web@v12", "web", 12, true},
		{"web@v0", "web@v0", 0, false},
		{"web@", "web@", 0, false},
		{"@v1", "@v1", 0, false},
		{"web@vx", "web@vx", 0, false},
		{"a@b@v2", "a@b", 2, true},
	}
	for _, c := range cases {
		name, ver, versioned := parseRef(c.ref)
		if name != c.name || ver != c.version || versioned != c.versioned {
			t.Errorf("parseRef(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.ref, name, ver, versioned, c.name, c.version, c.versioned)
		}
	}
}
