package server

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"net/http"
	"time"

	"gorder/internal/graph"
)

// Streaming graph ingest: POST /graphs parses the body incrementally
// — a few-byte peek routes binary CSR to the buffered decoder, and
// everything else flows through the streaming edge-list parser in
// fixed-size blocks. The raw text of a large upload never exists in
// memory at once; peak memory is the parse buffer plus the edge
// shards plus the final CSR, which is what lets the daemon accept
// uploads far beyond what whole-body buffering would allow. The body
// is hashed as it streams so the resulting graph gets the exact
// content digest a buffered upload of the same bytes gets — dedup
// across the two paths stays intact.

// countingReader counts bytes as they stream through, so the registry
// records the upload size without the body ever being buffered.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// handleGraphUpload serves POST /graphs.
func (s *Server) handleGraphUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		s.writeError(w, http.StatusBadRequest, "missing_name",
			"upload requires a ?name= query parameter")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUpload)
	br := bufio.NewReaderSize(body, 32<<10)
	prefix, err := br.Peek(8)
	if err != nil && err != io.EOF {
		s.writeUploadError(w, err)
		return
	}
	h := sha256.New()
	cr := &countingReader{r: io.TeeReader(br, h)}
	start := time.Now()
	var g *graph.Graph
	if graph.SniffBinary(prefix) {
		// Binary CSR is already the in-memory layout; its decoder needs
		// the packed arrays whole, and the format is compact enough that
		// buffering it under MaxUpload is the cheap path.
		data, rerr := io.ReadAll(cr)
		if rerr != nil {
			s.writeUploadError(w, rerr)
			return
		}
		g, err = graph.ReadBinaryBytes(data)
	} else {
		g, err = graph.ReadEdgeListStream(cr)
	}
	if err != nil {
		s.writeUploadError(w, err)
		return
	}
	id := hex.EncodeToString(h.Sum(nil)[:8])
	info, created, err := s.Reg.AddParsed(name, id, g, cr.n, time.Since(start))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_graph", "%v", err)
		return
	}
	status := http.StatusOK // deduplicated: existing graph
	if created {
		status = http.StatusCreated
		s.log.Info("graph registered", "id", info.ID, "name", info.Name,
			"nodes", info.Nodes, "edges", info.Edges, "bytes", info.Bytes)
	}
	s.writeJSON(w, status, info)
}

// writeUploadError maps a body read or parse failure onto the
// envelope: the MaxBytesReader limit becomes a clean 413 — even when
// it surfaces mid-parse, many megabytes into a streamed body — and
// everything else is a 400.
func (s *Server) writeUploadError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			"upload exceeds the %d-byte limit", tooBig.Limit)
		return
	}
	s.writeError(w, http.StatusBadRequest, "bad_graph", "%v", err)
}
