package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"gorder/internal/fair"
	"gorder/internal/order"
	"gorder/internal/store"
)

// Job states. A job moves queued → running → one of the terminal
// states; canceled covers both explicit deadlines and server shutdown.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job kinds.
const (
	KindOrder  = "order"  // compute a permutation of a registered graph
	KindEval   = "eval"   // score a permutation / run the cache simulator
	KindRepair = "repair" // re-place decayed suffix of a lineage's tracked ordering
)

// JobRequest is the client-supplied description of a job (the POST
// /jobs body). It is also what the shutdown manifest persists, so it
// must stay plain data.
type JobRequest struct {
	Kind   string `json:"kind"`             // "order" or "eval"
	Graph  string `json:"graph"`            // registered graph ID or name
	Method string `json:"method,omitempty"` // ordering name for order jobs
	Window int    `json:"window,omitempty"` // gorder window (0 = default)
	Hub    int    `json:"hub,omitempty"`    // gorder hub-skip threshold
	Seed   uint64 `json:"seed,omitempty"`   // seed for stochastic methods
	// LDGBins sets the LDG bin count (0 = the default 64).
	LDGBins int `json:"ldg_bins,omitempty"`
	// Workers bounds the worker goroutines of parallel methods
	// (0 = GOMAXPROCS). Scheduling only: it never changes the
	// permutation, so the artifact cache ignores it.
	Workers int `json:"workers,omitempty"`
	// Partitions sets the gorder-partitioned partition count
	// (0 = the default).
	Partitions int `json:"partitions,omitempty"`
	// OfJob points an eval job at a completed order job whose
	// permutation it should score; empty scores the identity ordering.
	OfJob string `json:"of_job,omitempty"`
	// Kernel, when set on an eval job, additionally runs the named
	// traced kernel (PR, BFS, ...) under the small cache hierarchy and
	// reports the miss rates.
	Kernel string `json:"kernel,omitempty"`
	// TimeoutMs bounds the job's run time; 0 uses the pool default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Tenant is the fair-queueing identity the job runs under (set from
	// the X-Tenant header by the HTTP layer; empty means the default
	// tenant). Tenants share the worker pool in weighted fair order and
	// each has its own queued-job cap.
	Tenant string `json:"tenant,omitempty"`
}

// JobStatus is the public view of a job (the GET /jobs/{id} body).
// QueueWaitMs (created → started) and DurationMs (started → finished)
// are reported separately so saturation — long waits in front of
// normal compute times — is diagnosable from outside.
type JobStatus struct {
	ID          string             `json:"id"`
	Request     JobRequest         `json:"request"`
	State       string             `json:"state"`
	Error       string             `json:"error,omitempty"`
	Created     time.Time          `json:"created"`
	Started     *time.Time         `json:"started,omitempty"`
	Finished    *time.Time         `json:"finished,omitempty"`
	QueueWaitMs int64              `json:"queue_wait_ms"`
	DurationMs  int64              `json:"duration_ms,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// job is the pool's internal record. Fields after the embedded status
// are guarded by the pool mutex; perm is written once by the worker
// before the state flips to done and read only afterwards.
type job struct {
	status JobStatus
	perm   order.Permutation
}

// ErrQueueFull is returned by Submit when the pending queue is at its
// depth limit — the backpressure signal the API maps to HTTP 429.
var ErrQueueFull = errors.New("server: job queue full")

// ErrTenantQueueFull is returned by Submit when the submitting
// tenant's own share of the queue is exhausted while the global queue
// still has room — one tenant cannot occupy the whole queue.
var ErrTenantQueueFull = errors.New("server: tenant job queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("server: shutting down")

// PoolConfig sizes the worker pool.
type PoolConfig struct {
	Workers        int           // concurrent jobs; <= 0 means 1
	QueueDepth     int           // max pending jobs; <= 0 means 64
	DefaultTimeout time.Duration // per-job deadline when the request has none; <= 0 means 5m
	// TenantQueueDepth caps one tenant's queued (not running) jobs;
	// <= 0 means QueueDepth — no per-tenant admission cap, which keeps
	// a single-tenant deployment able to use its whole queue. Set it
	// lower (e.g. half) in multi-tenant deployments so one flooding
	// tenant leaves admission headroom for the others.
	TenantQueueDepth int
	// Weights are the fair-queueing tenant weights (nil = all equal).
	Weights fair.Weights
}

// Pool runs jobs on a fixed set of worker goroutines over a bounded
// weighted-fair queue: jobs queue per tenant and workers drain tenants
// in stride order, so tenants share throughput by weight and a tenant
// flooding its own queue cannot delay another tenant's job by more
// than one weighted round. The queue is mutex-guarded rather than a
// channel so shutdown can atomically stop intake and hand the
// still-pending requests back for manifest persistence.
type Pool struct {
	cfg  PoolConfig
	exec func(ctx context.Context, req JobRequest, found func(order.Permutation)) (map[string]float64, error)
	log  *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	pending *fair.MultiQueue[*job]
	jobs    map[string]*job
	orderOf []string // submission order, for listing
	seq     int

	closed bool

	// svcMs tracks the moving average job service time; EstimatedWait
	// turns it and the queue depth into the wait forecast the admission
	// layer sheds on.
	svcMs *fair.EWMA

	submitted *Counter
	completed *Counter
	failed    *Counter
	canceled  *Counter
	rejected  *Counter
	queueWait *Counter
	depth     *Gauge
	busy      *Gauge
}

// NewPool builds a pool wired to m. exec runs one job: it receives the
// job's context and request, calls found with the permutation as soon
// as one exists (order jobs), and returns the job's metrics. Call
// Start to launch the workers.
func NewPool(cfg PoolConfig, m *Metrics, logger *slog.Logger,
	exec func(ctx context.Context, req JobRequest, found func(order.Permutation)) (map[string]float64, error)) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Minute
	}
	if cfg.TenantQueueDepth <= 0 {
		cfg.TenantQueueDepth = cfg.QueueDepth
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:        cfg,
		exec:       exec,
		log:        logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		pending:    fair.NewMultiQueue[*job](cfg.Weights),
		jobs:       make(map[string]*job),
		svcMs:      fair.NewEWMA(0.2),
		submitted:  m.Counter("jobs_submitted"),
		completed:  m.Counter("jobs_completed"),
		failed:     m.Counter("jobs_failed"),
		canceled:   m.Counter("jobs_canceled"),
		rejected:   m.Counter("jobs_rejected"),
		queueWait:  m.Counter("job_queue_wait_ms_total"),
		depth:      m.Gauge("queue_depth"),
		busy:       m.Gauge("workers_busy"),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Start launches the worker goroutines.
func (p *Pool) Start() {
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// Submit validates and enqueues a job, returning its initial status.
// The request's tenant (default when empty) decides which fair queue
// it joins; both the global depth cap and the tenant's own cap apply.
func (p *Pool) Submit(req JobRequest) (JobStatus, error) {
	if req.Kind != KindOrder && req.Kind != KindEval && req.Kind != KindRepair {
		return JobStatus{}, fmt.Errorf("unknown job kind %q", req.Kind)
	}
	if req.Tenant == "" {
		req.Tenant = fair.DefaultTenant
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rejected.Inc()
		return JobStatus{}, ErrShuttingDown
	}
	if p.pending.Len() >= p.cfg.QueueDepth {
		p.rejected.Inc()
		return JobStatus{}, ErrQueueFull
	}
	if p.pending.TenantLen(req.Tenant) >= p.cfg.TenantQueueDepth {
		p.rejected.Inc()
		return JobStatus{}, ErrTenantQueueFull
	}
	p.seq++
	j := &job{status: JobStatus{
		ID:      fmt.Sprintf("job-%06d", p.seq),
		Request: req,
		State:   StateQueued,
		Created: time.Now().UTC(),
	}}
	p.jobs[j.status.ID] = j
	p.orderOf = append(p.orderOf, j.status.ID)
	p.pending.Push(req.Tenant, j)
	p.depth.Set(int64(p.pending.Len()))
	p.submitted.Inc()
	p.cond.Signal()
	return j.status, nil
}

// EstimatedWait forecasts how long a job submitted now would sit in
// the queue: queued jobs times the average service time, divided
// across the workers. Zero until the first job completes — admission
// shedding only engages once there is evidence of how slow jobs are.
func (p *Pool) EstimatedWait() time.Duration {
	p.mu.Lock()
	depth := p.pending.Len()
	p.mu.Unlock()
	if depth == 0 {
		return 0
	}
	ms := p.svcMs.Value() * float64(depth) / float64(p.cfg.Workers)
	return time.Duration(ms * float64(time.Millisecond))
}

// Get returns a job's status snapshot.
func (p *Pool) Get(id string) (JobStatus, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshotLocked(), true
}

// Permutation returns a completed order job's permutation.
func (p *Pool) Permutation(id string) (order.Permutation, JobStatus, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	return j.perm, j.snapshotLocked(), true
}

// List returns every job in submission order.
func (p *Pool) List() []JobStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]JobStatus, 0, len(p.orderOf))
	for _, id := range p.orderOf {
		out = append(out, p.jobs[id].snapshotLocked())
	}
	return out
}

// snapshotLocked deep-copies the mutable status parts so callers can
// serialise them outside the lock.
func (j *job) snapshotLocked() JobStatus {
	s := j.status
	if j.status.Metrics != nil {
		s.Metrics = make(map[string]float64, len(j.status.Metrics))
		for k, v := range j.status.Metrics {
			s.Metrics[k] = v
		}
	}
	return s
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.pending.Len() == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		_, j, _ := p.pending.Pop()
		p.depth.Set(int64(p.pending.Len()))
		now := time.Now().UTC()
		j.status.State = StateRunning
		j.status.Started = &now
		j.status.QueueWaitMs = now.Sub(j.status.Created).Milliseconds()
		p.queueWait.Add(j.status.QueueWaitMs)
		p.mu.Unlock()

		p.runJob(j)
	}
}

func (p *Pool) runJob(j *job) {
	p.busy.Add(1)
	defer p.busy.Add(-1)

	timeout := p.cfg.DefaultTimeout
	if j.status.Request.TimeoutMs > 0 {
		timeout = time.Duration(j.status.Request.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(p.baseCtx, timeout)
	defer cancel()

	start := time.Now()
	metrics, err := p.exec(ctx, j.status.Request, func(perm order.Permutation) {
		p.mu.Lock()
		j.perm = perm
		p.mu.Unlock()
	})
	elapsed := time.Since(start)
	finished := time.Now().UTC()
	p.svcMs.Observe(float64(elapsed) / float64(time.Millisecond))

	p.mu.Lock()
	j.status.Finished = &finished
	j.status.DurationMs = elapsed.Milliseconds()
	j.status.Metrics = metrics
	switch {
	case err == nil:
		j.status.State = StateDone
		p.completed.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status.State = StateCanceled
		j.status.Error = err.Error()
		p.canceled.Inc()
	default:
		j.status.State = StateFailed
		j.status.Error = err.Error()
		p.failed.Inc()
	}
	state := j.status.State
	p.mu.Unlock()

	p.log.Info("job finished",
		"job", j.status.ID, "kind", j.status.Request.Kind,
		"graph", j.status.Request.Graph, "method", j.status.Request.Method,
		"state", state, "duration", elapsed.Round(time.Millisecond))
}

// Shutdown drains the pool: intake stops immediately, workers finish
// their in-flight jobs (canceled via the base context once ctx
// expires), and the still-queued requests are returned for manifest
// persistence. Queued jobs are marked canceled so pollers see a
// terminal state.
func (p *Pool) Shutdown(ctx context.Context) []JobRequest {
	p.mu.Lock()
	p.closed = true
	now := time.Now().UTC()
	var drained []*job
	for {
		_, j, ok := p.pending.Pop()
		if !ok {
			break
		}
		j.status.State = StateCanceled
		j.status.Error = "server shut down before the job started"
		j.status.Finished = &now
		p.canceled.Inc()
		drained = append(drained, j)
	}
	// The fair queue drains in stride order; the manifest should replay
	// in submission order, which the zero-padded IDs sort by.
	slices.SortFunc(drained, func(a, b *job) int {
		return strings.Compare(a.status.ID, b.status.ID)
	})
	var queued []JobRequest
	for _, j := range drained {
		queued = append(queued, j.status.Request)
	}
	p.depth.Set(0)
	p.cond.Broadcast()
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline hit: cancel in-flight jobs and wait for the
		// workers to notice.
		p.baseCancel()
		<-done
	}
	p.baseCancel()
	return queued
}

// manifest is the on-disk shape of the queued-job manifest gorderd
// writes on shutdown and replays on the next start.
type manifest struct {
	SavedAt time.Time    `json:"saved_at"`
	Jobs    []JobRequest `json:"jobs"`
}

// WriteManifest persists the given queued-job requests to path,
// atomically (temp file + fsync + rename via store.WriteFileAtomic,
// so a crash mid-write never leaves a torn manifest). An empty list
// removes any stale manifest instead.
func WriteManifest(path string, reqs []JobRequest) error {
	if len(reqs) == 0 {
		err := os.Remove(path)
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	data, err := json.MarshalIndent(manifest{SavedAt: time.Now().UTC(), Jobs: reqs}, "", "  ")
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// ReadManifest loads a manifest written by WriteManifest. A missing
// file is an empty manifest, not an error.
func ReadManifest(path string) ([]JobRequest, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: corrupt job manifest %s: %w", path, err)
	}
	return m.Jobs, nil
}
