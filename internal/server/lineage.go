package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gorder/internal/core"
	"gorder/internal/graph"
	"gorder/internal/order"
	"gorder/internal/registry"
	"gorder/internal/store"
)

// The mutation tier: POST /graphs/{name}/edges derives version N+1 of
// a named lineage from its tip, carries every ordering artifact of the
// old tip forward incrementally, and keeps a per-lineage quality
// record whose decay signal drives automatic repair jobs. GET
// /graphs/{name}/lineage exposes the version history and quality
// state. All of it requires a persistent store — version history has
// to survive restarts to mean anything.

// Default quality-monitor thresholds when Config leaves them zero,
// validated on evolving-graph workloads (see examples/evolvinggraph):
// below defaultDecayThreshold the suffix placed since the baseline is
// re-ordered jointly (retains ~90% of a full recompute at a fraction
// of the cost); below defaultRepairFullBelow — or after
// defaultMaxRepairs incremental repairs, or once the tracked churn
// overflows — only a full recompute restores quality.
const (
	defaultDecayThreshold  = 0.93
	defaultRepairFullBelow = 0.85
	defaultMaxRepairs      = 3
)

func (s *Server) decayThreshold() float64 {
	if s.cfg.DecayThreshold > 0 {
		return s.cfg.DecayThreshold
	}
	return defaultDecayThreshold
}

func (s *Server) repairFullBelow() float64 {
	if s.cfg.RepairFullBelow > 0 {
		return s.cfg.RepairFullBelow
	}
	return defaultRepairFullBelow
}

func (s *Server) maxRepairs() int {
	if s.cfg.MaxRepairs > 0 {
		return s.cfg.MaxRepairs
	}
	return defaultMaxRepairs
}

// edgeSpec is one directed edge in a mutation batch.
type edgeSpec struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// editRequest is the POST /graphs/{name}/edges body: vertices to
// append and edges to insert and delete. Deletes apply before adds;
// already-satisfied requests are counted, not failed, so batches
// replay idempotently.
type editRequest struct {
	AddNodes int        `json:"add_nodes,omitempty"`
	Add      []edgeSpec `json:"add,omitempty"`
	Del      []edgeSpec `json:"del,omitempty"`
}

// qualityView is the quality stanza of mutation and lineage responses.
type qualityView struct {
	Method        string  `json:"method"`
	OptKey        string  `json:"opt_key,omitempty"`
	Decay         float64 `json:"decay"`
	ScoreF        int64   `json:"score_F"`
	BaselineF     int64   `json:"baseline_F"`
	Packing       float64 `json:"packing"`
	CleanNodes    int     `json:"clean_nodes"`
	Repairs       int     `json:"repairs"`
	DirtyTracked  int     `json:"dirty_tracked"`
	DirtyOverflow bool    `json:"dirty_overflow,omitempty"`
}

func viewQuality(q store.Quality) *qualityView {
	if q.Method == "" {
		return nil
	}
	return &qualityView{
		Method: q.Method, OptKey: q.OptKey,
		Decay: q.Decay(), ScoreF: q.CurF, BaselineF: q.BaseF,
		Packing: q.CurPacking, CleanNodes: q.CleanNodes, Repairs: q.Repairs,
		DirtyTracked: len(q.Dirty), DirtyOverflow: q.DirtyOverflow,
	}
}

// editResponse is the POST /graphs/{name}/edges answer.
type editResponse struct {
	Graph          GraphInfo    `json:"graph"`
	EdgesAdded     int          `json:"edges_added"`
	EdgesDeleted   int          `json:"edges_deleted"`
	SkippedAdds    int          `json:"skipped_adds,omitempty"`
	MissedDels     int          `json:"missed_dels,omitempty"`
	OrdersExtended int          `json:"orders_extended"`
	Quality        *qualityView `json:"quality,omitempty"`
	RepairJob      string       `json:"repair_job,omitempty"`
}

// handleGraphEdges serves POST /graphs/{name}/edges: build version
// N+1 of the lineage from its tip. One mutation runs at a time
// (s.mutMu): versions form a chain, so concurrent edits must serialize
// on the tip they extend.
func (s *Server) handleGraphEdges(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	st := s.cfg.Store
	if st == nil {
		s.writeError(w, http.StatusNotImplemented, "no_store",
			"graph mutation requires the daemon to run with a persistent store (-data-dir)")
		return
	}
	if _, _, versioned := parseRef(name); versioned {
		s.writeError(w, http.StatusBadRequest, "bad_ref",
			"mutations apply to a lineage's tip; use the bare name, not %q", name)
		return
	}
	var req editRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxUpload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "decoding edit batch: %v", err)
		return
	}
	if req.AddNodes < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "add_nodes must be >= 0")
		return
	}
	if req.AddNodes == 0 && len(req.Add) == 0 && len(req.Del) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty_batch", "edit batch changes nothing")
		return
	}
	add, err := toEdges(req.Add)
	if err == nil {
		var del []graph.Edge
		del, err = toEdges(req.Del)
		if err == nil {
			s.applyEdit(w, r, name, req.AddNodes, add, del)
			return
		}
	}
	s.writeError(w, http.StatusBadRequest, "bad_edge", "%v", err)
}

func toEdges(specs []edgeSpec) ([]graph.Edge, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make([]graph.Edge, len(specs))
	for i, e := range specs {
		if e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("edge %d→%d has a negative endpoint", e.From, e.To)
		}
		out[i] = graph.Edge{From: graph.NodeID(e.From), To: graph.NodeID(e.To)}
	}
	return out, nil
}

// applyEdit performs the serialized mutation: resolve tip, apply the
// batch, advance the lineage, carry orderings forward, update the
// quality record, and enqueue a repair if the decay signal crossed the
// threshold.
func (s *Server) applyEdit(w http.ResponseWriter, r *http.Request, name string, addNodes int, add, del []graph.Edge) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()

	if _, _, _, err := s.cfg.Store.ResolveVersion(name, 0); err != nil {
		s.writeError(w, http.StatusNotFound, "graph_not_found",
			"no graph lineage %q; upload it first (POST /graphs?name=%s)", name, name)
		return
	}
	gOld, infoOld, ok := s.Reg.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "graph_not_found",
			"lineage %q's tip is no longer loadable", name)
		return
	}
	gNew, stats, err := graph.ApplyEdits(gOld, addNodes, add, del)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_edit", "%v", err)
		return
	}
	info, err := s.Reg.Advance(name, gNew)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "advance_failed",
			"persisting version %s@v? failed: %v", name, err)
		return
	}
	extended, qual := s.extendOrders(r.Context(), name, infoOld.ID, info.ID, gOld, gNew, add, del)

	resp := editResponse{
		Graph:        info,
		EdgesAdded:   stats.Added,
		EdgesDeleted: stats.Deleted,
		SkippedAdds:  stats.SkippedAdds,
		MissedDels:   stats.MissedDels,

		OrdersExtended: extended,
		Quality:        viewQuality(qual),
	}
	if resp.Quality != nil && resp.Quality.Decay < s.decayThreshold() && !s.cfg.DisableAutoRepair {
		status, err := s.Pool.Submit(JobRequest{Kind: KindRepair, Graph: name})
		if err != nil {
			s.log.Warn("auto-repair submit failed", "graph", name, "err", err)
		} else {
			resp.RepairJob = status.ID
			s.log.Info("auto-repair enqueued", "graph", name, "job", status.ID,
				"decay", fmt.Sprintf("%.3f", resp.Quality.Decay))
		}
	}
	s.log.Info("graph mutated", "name", name, "version", info.Version, "id", info.ID,
		"nodes", info.Nodes, "edges", info.Edges,
		"added", stats.Added, "deleted", stats.Deleted, "orders_extended", extended)
	s.writeJSON(w, http.StatusOK, resp)
}

// extendOrders carries every ordering artifact of the old tip forward
// to the new one: each base permutation is extended in place
// (positions of surviving vertices unchanged, new vertices placed
// greedily at the suffix) and stored under the new digest with the
// same method/options key. The lineage's tracked quality record, if
// any, rolls its F(pi) forward with ScoreDelta — time proportional to
// the batch, never a full rescore — and accumulates the churn the
// suffix repair cannot fix (edits between two old vertices).
func (s *Server) extendOrders(ctx context.Context, name, oldDigest, newDigest string, gOld, gNew *graph.Graph, add, del []graph.Edge) (int, store.Quality) {
	st := s.cfg.Store
	qual, hasQual := st.GetQuality(name)
	extended := 0
	for _, k := range st.OrdersFor(oldDigest) {
		base, ok := st.GetOrder(oldDigest, k.Method, k.OptKey, gOld.NumNodes())
		if !ok {
			continue
		}
		tracked := hasQual && qual.Method == k.Method && qual.OptKey == k.OptKey
		var opt core.Options
		if tracked {
			ropts, w := qualityOptions(qual)
			opt = core.Options{Window: w, HubThreshold: ropts.HubThreshold}
		}
		perm, err := core.OrderIncrementalCtx(ctx, gNew, base, nil, opt)
		if err != nil {
			s.log.Warn("extending ordering failed", "graph", name,
				"method", k.Method, "err", err)
			continue
		}
		if err := st.PutOrder(newDigest, k.Method, k.OptKey, perm); err != nil {
			s.log.Warn("persisting extended ordering failed", "graph", name,
				"method", k.Method, "err", err)
			continue
		}
		extended++
		if tracked {
			_, w := qualityOptions(qual)
			qual.CurF += order.ScoreDelta(gOld, gNew, perm, w, add, del)
			qual.CurEdges = gNew.NumEdges()
			qual.CurPacking = order.PackingFactor(gNew, perm)
			accumulateDirty(&qual, add, del)
		}
	}
	if hasQual {
		if err := st.SetQuality(name, qual); err != nil {
			s.log.Warn("persisting quality record failed", "graph", name, "err", err)
		}
	}
	return extended, qual
}

// accumulateDirty records the churn endpoints an incremental suffix
// repair cannot reach: endpoints of deleted edges, and of inserted
// edges between two vertices that were both already placed at the last
// baseline. New-vertex insertions are excluded — the repair re-places
// everything past CleanNodes anyway. Overflow past store.MaxDirtyTracked
// (applied by SetQuality) forces the next repair to a full recompute.
func accumulateDirty(q *store.Quality, add, del []graph.Edge) {
	clean := graph.NodeID(q.CleanNodes)
	seen := make(map[graph.NodeID]struct{}, len(q.Dirty))
	for _, v := range q.Dirty {
		seen[v] = struct{}{}
	}
	mark := func(v graph.NodeID) {
		if v < clean {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				q.Dirty = append(q.Dirty, v)
			}
		}
	}
	for _, e := range del {
		mark(e.From)
		mark(e.To)
	}
	for _, e := range add {
		if e.From < clean && e.To < clean {
			mark(e.From)
			mark(e.To)
		}
	}
}

// qualityOptions reconstructs the tracked ordering's registry options
// and effective window from the persisted record. Undecodable options
// (format drift across versions) degrade to defaults rather than fail.
func qualityOptions(q store.Quality) (registry.Options, int) {
	var ropts registry.Options
	if q.OptionsJSON != "" {
		if err := json.Unmarshal([]byte(q.OptionsJSON), &ropts); err != nil {
			ropts = registry.Options{}
		}
	}
	w := q.Window
	if w <= 0 {
		w = core.DefaultWindow
	}
	return ropts, w
}

// recordOrderingQuality seeds or re-baselines the quality record of
// every lineage whose tip is the graph just ordered. A freshly
// computed ordering is ground truth, so it re-baselines the tracked
// record (computed == true, the only path that resets decay); an
// artifact-cache hit may be a mutation-extended permutation whose
// quality has already drifted, so it only seeds lineages with no
// record yet.
func (s *Server) recordOrderingQuality(digest string, g *graph.Graph, method, optKey string, copts registry.Options, perm order.Permutation, w int, f int64, computed bool) {
	st := s.cfg.Store
	if st == nil || method == "" {
		return
	}
	var packing float64
	packed := false
	for _, li := range st.Lineages() {
		if li.Versions[len(li.Versions)-1].Digest != digest {
			continue
		}
		if li.Quality != nil {
			if li.Quality.Method != method || li.Quality.OptKey != optKey {
				continue // lineage tracks a different ordering
			}
			if !computed {
				continue // never re-baseline from a possibly-extended artifact
			}
		}
		if !packed {
			packing, packed = order.PackingFactor(g, perm), true
		}
		optsJSON, _ := json.Marshal(copts)
		q := store.Quality{
			Method: method, OptKey: optKey, OptionsJSON: string(optsJSON), Window: w,
			BaseF: f, BaseEdges: g.NumEdges(), BasePacking: packing,
			CurF: f, CurEdges: g.NumEdges(), CurPacking: packing,
			CleanNodes: g.NumNodes(),
		}
		if err := st.SetQuality(li.Name, q); err != nil {
			s.log.Warn("seeding quality baseline failed", "graph", li.Name, "err", err)
			continue
		}
		s.log.Info("quality baseline recorded", "graph", li.Name, "method", method,
			"score_F", f, "nodes", g.NumNodes())
	}
}

// executeRepair runs a KindRepair job: restore the tracked ordering's
// quality on the lineage's tip. The policy, validated on evolving
// workloads: still healthy → no-op (a stale queued repair); moderate
// decay → re-place everything ordered since the baseline jointly
// (CleanNodes..n), keeping the baseline so repeated repairs cannot
// mask real decay; deep decay, overflowed churn tracking, or too many
// repairs since the last full ordering → full recompute, which is the
// only step that re-baselines.
func (s *Server) executeRepair(ctx context.Context, g *graph.Graph, info GraphInfo, found func(order.Permutation)) (map[string]float64, error) {
	st := s.cfg.Store
	if st == nil {
		return nil, errors.New("repair jobs require a persistent store")
	}
	name := info.Lineage
	if name == "" {
		return nil, fmt.Errorf("graph %q is not a lineage tip; repair targets a lineage by name", info.ID)
	}
	q, ok := st.GetQuality(name)
	if !ok || q.Method == "" {
		return nil, fmt.Errorf("lineage %q has no tracked ordering; run an order job on it first", name)
	}
	decayBefore := q.Decay()
	if decayBefore >= s.decayThreshold() {
		// The decay healed between enqueue and execution (an earlier
		// repair in the queue, or a re-baselining order job).
		return map[string]float64{"noop": 1, "decay": decayBefore}, nil
	}
	ropts, w := qualityOptions(q)
	full := q.DirtyOverflow || q.Repairs >= s.maxRepairs() || decayBefore < s.repairFullBelow()
	n := g.NumNodes()
	base, haveBase := st.GetOrder(info.ID, q.Method, q.OptKey, n)
	if !haveBase {
		full = true // nothing to extend: the tip's artifact vanished
	}

	var perm order.Permutation
	var err error
	if full {
		var obs registry.Observation
		perm, obs, err = registry.ComputeObserved(ctx, g, q.Method, ropts)
		s.observeOrdering(obs)
	} else {
		dirty := make([]graph.NodeID, 0, n-q.CleanNodes)
		for v := q.CleanNodes; v < n; v++ {
			dirty = append(dirty, graph.NodeID(v))
		}
		perm, err = core.OrderIncrementalCtx(ctx, g, base, dirty,
			core.Options{Window: w, HubThreshold: ropts.HubThreshold})
	}
	if err != nil {
		return nil, err
	}
	found(perm)
	if err := st.PutOrder(info.ID, q.Method, q.OptKey, perm); err != nil {
		return nil, fmt.Errorf("persisting repaired ordering: %w", err)
	}
	s.Query.InvalidateOrdering(info.ID, q.Method, q.OptKey)

	f := order.Score(g, perm, w)
	q.CurF, q.CurEdges, q.CurPacking = f, g.NumEdges(), order.PackingFactor(g, perm)
	if full {
		q.BaseF, q.BaseEdges, q.BasePacking = f, q.CurEdges, q.CurPacking
		q.CleanNodes, q.Repairs = n, 0
		q.Dirty, q.DirtyOverflow = nil, false
	} else {
		q.Repairs++
	}
	if err := st.SetQuality(name, q); err != nil {
		return nil, fmt.Errorf("persisting repaired quality record: %w", err)
	}
	mode := "suffix"
	if full {
		mode = "full"
	}
	s.log.Info("lineage repaired", "graph", name, "mode", mode,
		"decay_before", fmt.Sprintf("%.3f", decayBefore),
		"decay_after", fmt.Sprintf("%.3f", q.Decay()), "score_F", f)
	metrics := map[string]float64{
		"score_F":      float64(f),
		"decay_before": decayBefore,
		"decay_after":  q.Decay(),
		"packing":      q.CurPacking,
	}
	if full {
		metrics["full_recompute"] = 1
	} else {
		metrics["repaired_vertices"] = float64(n - q.CleanNodes)
	}
	return metrics, nil
}

// ---- GET /graphs/{name}/lineage ----------------------------------------

// versionView is one entry of the lineage endpoint's history.
type versionView struct {
	Version int       `json:"version"`
	Digest  string    `json:"digest"`
	Nodes   int       `json:"nodes"`
	Edges   int64     `json:"edges"`
	Added   time.Time `json:"added"`
	Orders  int       `json:"orders"`
}

// handleGraphLineage serves GET /graphs/{name}/lineage: the version
// history and quality state of one named graph.
func (s *Server) handleGraphLineage(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	st := s.cfg.Store
	if st == nil {
		s.writeError(w, http.StatusNotImplemented, "no_store",
			"lineages require the daemon to run with a persistent store (-data-dir)")
		return
	}
	li, ok := st.Lineage(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "graph_not_found", "no graph lineage %q", name)
		return
	}
	versions := make([]versionView, len(li.Versions))
	for i, v := range li.Versions {
		versions[i] = versionView{
			Version: v.Version, Digest: v.Digest,
			Nodes: v.Nodes, Edges: v.Edges, Added: v.Added,
			Orders: len(st.OrdersFor(v.Digest)),
		}
	}
	resp := map[string]any{
		"name":     li.Name,
		"versions": versions,
	}
	if li.Quality != nil {
		resp["quality"] = viewQuality(*li.Quality)
	}
	s.writeJSON(w, http.StatusOK, resp)
}
