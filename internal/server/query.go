package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"gorder/internal/graph"
	"gorder/internal/query"
	"gorder/internal/registry"
)

// The query endpoints: POST /query and POST /query/batch execute
// registry kernels against registered graphs through the
// internal/query executor. Queries are reads — they run on the HTTP
// goroutine behind their own concurrency gate and never enter the
// compute worker pool, so a long ordering job can saturate every
// worker without adding a microsecond to query latency.

// Query-path defaults when Config leaves the knobs zero.
const (
	defaultQueryConcurrency = 8
	defaultQueryWaitCap     = 64
	defaultQueryTimeout     = 30 * time.Second
)

// regSource adapts the server's graph registry to the executor's
// Source interface.
type regSource struct{ r *Registry }

func (s regSource) Stat(ref string) (string, int, bool) {
	info, ok := s.r.Stat(ref)
	return info.ID, info.Nodes, ok
}

func (s regSource) Resolve(ref string) (*graph.Graph, string, bool) {
	g, info, ok := s.r.Get(ref)
	return g, info.ID, ok
}

// readGate is the query tier's admission control: a slot semaphore
// sized to the read concurrency limit plus a bounded waiting room,
// mirroring the job queue's depth-cap discipline. Full waiting room →
// 429, so overload degrades into fast rejections instead of a convoy.
type readGate struct {
	slots   chan struct{}
	waitCap int64
	waiting atomic.Int64
}

func newReadGate(concurrency, waitCap int) *readGate {
	return &readGate{
		slots:   make(chan struct{}, concurrency),
		waitCap: int64(waitCap),
	}
}

// errGateFull reports a full waiting room.
var errGateFull = errors.New("query gate full")

func (g *readGate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.waiting.Add(1) > g.waitCap {
		g.waiting.Add(-1)
		return errGateFull
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *readGate) release() { <-g.slots }

// initQuery builds the executor, gate, and metrics; called from New.
func (s *Server) initQuery(m *Metrics) {
	s.Query = query.New(query.Config{
		Source:       regSource{s.Reg},
		Store:        s.cfg.Store,
		ResultBudget: s.cfg.QueryResultBudget,
		GraphBudget:  s.cfg.QueryGraphBudget,
	})
	conc := s.cfg.QueryConcurrency
	if conc <= 0 {
		conc = defaultQueryConcurrency
	}
	waitCap := s.cfg.QueryWaitCap
	if waitCap <= 0 {
		waitCap = defaultQueryWaitCap
	}
	s.qgate = newReadGate(conc, waitCap)

	s.queryRequests = m.Counter("query_requests_total")
	s.queryErrors = m.Counter("query_errors_total")
	s.queryRejected = m.Counter("query_rejected_total")
	s.queryBatches = m.Counter("query_batch_total")
	s.queryMS = m.Counter("query_ms_total")
	m.Func("query_cache_hits_total", s.Query.CacheHits)
	m.Func("query_cache_misses_total", s.Query.CacheMisses)
	m.Func("query_materialized_hits_total", s.Query.MaterializedHits)
	m.Func("query_kernel_runs_total", s.Query.KernelRuns)
	m.Func("query_relabel_builds_total", s.Query.RelabelBuilds)
	m.Func("query_result_cache_bytes", s.Query.ResultCacheBytes)
	m.Func("query_graph_cache_bytes", s.Query.GraphCacheBytes)
	// Pre-register one counter per queryable kernel so /metrics shows
	// the full query surface from startup, zeros included.
	s.queryKernel = make(map[string]*Counter)
	for _, name := range registry.QueryableKernelNames() {
		key := strings.ToLower(name)
		s.queryKernel[key] = m.Counter("query_total_" + key)
	}
}

// queryContext applies the per-request deadline: the request's
// timeout_ms when given, the server default otherwise.
func (s *Server) queryContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.QueryTimeout
	if d <= 0 {
		d = defaultQueryTimeout
	}
	if timeoutMs > 0 && time.Duration(timeoutMs)*time.Millisecond < d {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// writeQueryError maps an executor error onto the uniform envelope.
func (s *Server) writeQueryError(w http.ResponseWriter, qerr *query.Error) {
	s.queryErrors.Inc()
	s.writeError(w, qerr.Status, qerr.Code, "%s", qerr.Message)
}

// admitQuery runs the gate; a false return means the response is
// already written.
func (s *Server) admitQuery(w http.ResponseWriter, ctx context.Context) bool {
	switch err := s.qgate.acquire(ctx); {
	case errors.Is(err, errGateFull):
		s.queryRejected.Inc()
		s.writeError(w, http.StatusTooManyRequests, "query_busy",
			"the query tier is at its concurrency limit; retry later")
		return false
	case err != nil:
		s.queryErrors.Inc()
		s.writeError(w, http.StatusGatewayTimeout, "query_timeout",
			"query deadline exceeded while waiting for a slot")
		return false
	}
	return true
}

// handleQuery serves POST /query: one kernel execution.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	s.queryRequests.Inc()
	var req query.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "bad_request", "decoding query: %v", err)
		return
	}
	if req.TimeoutMs < 0 {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "bad_timeout", "timeout_ms must be >= 0")
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMs)
	defer cancel()
	if !s.admitQuery(w, ctx) {
		return
	}
	defer s.qgate.release()

	start := time.Now()
	resp, qerr := s.Query.Run(ctx, req)
	s.queryMS.Add(time.Since(start).Milliseconds())
	if qerr != nil {
		s.writeQueryError(w, qerr)
		return
	}
	if c, ok := s.queryKernel[strings.ToLower(resp.Kernel)]; ok {
		c.Inc()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// batchRequest is the POST /query/batch body.
type batchRequest struct {
	Queries []query.Request `json:"queries"`
}

// maxBatchBody caps /query/batch bodies: MaxBatch queries of modest
// size fit comfortably.
const maxBatchBody = 1 << 20

// handleQueryBatch serves POST /query/batch: up to query.MaxBatch
// queries whose same-graph members share residency, the relabeled
// graph, and traversal scratch. Items come back positionally; each
// succeeds or fails on its own.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	s.queryRequests.Inc()
	s.queryBatches.Inc()
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "bad_request", "decoding batch: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "empty_batch", "batch has no queries")
		return
	}
	if len(req.Queries) > query.MaxBatch {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "batch_too_large",
			"batch of %d exceeds the %d-query limit", len(req.Queries), query.MaxBatch)
		return
	}
	ctx, cancel := s.queryContext(r, 0)
	defer cancel()
	if !s.admitQuery(w, ctx) {
		return
	}
	defer s.qgate.release()

	start := time.Now()
	items := s.Query.RunBatch(ctx, req.Queries)
	s.queryMS.Add(time.Since(start).Milliseconds())
	ok := 0
	for _, it := range items {
		if it.Error != nil {
			s.queryErrors.Inc()
			continue
		}
		ok++
		if c, found := s.queryKernel[strings.ToLower(it.Response.Kernel)]; found {
			c.Inc()
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"items": items,
		"ok":    ok,
	})
}
