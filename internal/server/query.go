package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"gorder/internal/fair"
	"gorder/internal/graph"
	"gorder/internal/query"
	"gorder/internal/registry"
)

// The query endpoints: POST /query and POST /query/batch execute
// registry kernels against registered graphs through the
// internal/query executor. Queries are reads — they run on the HTTP
// goroutine behind their own concurrency gate and never enter the
// compute worker pool, so a long ordering job can saturate every
// worker without adding a microsecond to query latency.

// Query-path defaults when Config leaves the knobs zero.
const (
	defaultQueryConcurrency = 8
	defaultQueryWaitCap     = 64
	defaultQueryTimeout     = 30 * time.Second
)

// regSource adapts the server's graph registry to the executor's
// Source interface.
type regSource struct{ r *Registry }

func (s regSource) Stat(ref string) (string, int, bool) {
	info, ok := s.r.Stat(ref)
	return info.ID, info.Nodes, ok
}

func (s regSource) Resolve(ref string) (*graph.Graph, string, bool) {
	g, info, ok := s.r.Get(ref)
	return g, info.ID, ok
}

// initQuery builds the executor, the weighted-fair read gate, and the
// metrics; called from New. The gate admits queries in per-tenant
// stride order (internal/fair.Gate), so a tenant flooding the read
// path cannot push another tenant's queries past one weighted round;
// each tenant's waiting room is capped at QueryWaitCap → 429, so
// overload degrades into fast rejections instead of a convoy.
func (s *Server) initQuery(m *Metrics) {
	s.Query = query.New(query.Config{
		Source:       regSource{s.Reg},
		Store:        s.cfg.Store,
		ResultBudget: s.cfg.QueryResultBudget,
		GraphBudget:  s.cfg.QueryGraphBudget,
		Workers:      s.cfg.KernelWorkers,
	})
	conc := s.cfg.QueryConcurrency
	if conc <= 0 {
		conc = defaultQueryConcurrency
	}
	waitCap := s.cfg.QueryWaitCap
	if waitCap <= 0 {
		waitCap = defaultQueryWaitCap
	}
	s.queryConc = conc
	s.qgate = fair.NewGate(conc, waitCap, s.cfg.TenantWeights)
	s.querySvc = fair.NewEWMA(0.2)

	s.queryRequests = m.Counter("query_requests_total")
	s.queryErrors = m.Counter("query_errors_total")
	s.queryRejected = m.Counter("query_rejected_total")
	s.queryBatches = m.Counter("query_batch_total")
	s.queryMS = m.Counter("query_ms_total")
	m.Func("query_cache_hits_total", s.Query.CacheHits)
	m.Func("query_cache_misses_total", s.Query.CacheMisses)
	m.Func("query_materialized_hits_total", s.Query.MaterializedHits)
	m.Func("query_kernel_runs_total", s.Query.KernelRuns)
	m.Func("query_relabel_builds_total", s.Query.RelabelBuilds)
	m.Func("query_result_cache_bytes", s.Query.ResultCacheBytes)
	m.Func("query_graph_cache_bytes", s.Query.GraphCacheBytes)
	// Pre-register one counter per queryable kernel so /metrics shows
	// the full query surface from startup, zeros included; kernels with
	// a parallel variant also expose their multicore-run counts.
	s.queryKernel = make(map[string]*Counter)
	for _, name := range registry.QueryableKernelNames() {
		key := strings.ToLower(name)
		s.queryKernel[key] = m.Counter("query_total_" + key)
	}
	m.Func("query_kernel_workers", func() int64 { return int64(s.Query.Workers()) })
	for _, k := range registry.Kernels() {
		if k.Query == nil || !k.Parallel {
			continue
		}
		name := k.Name
		m.Func("query_parallel_runs_total_"+strings.ToLower(name),
			func() int64 { return s.Query.ParallelRuns(name) })
	}
}

// queryContext applies the per-request deadline: the request's
// timeout_ms when given, the server default otherwise.
func (s *Server) queryContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.QueryTimeout
	if d <= 0 {
		d = defaultQueryTimeout
	}
	if timeoutMs > 0 && time.Duration(timeoutMs)*time.Millisecond < d {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// writeQueryError maps an executor error onto the uniform envelope.
func (s *Server) writeQueryError(w http.ResponseWriter, qerr *query.Error) {
	s.queryErrors.Inc()
	s.writeError(w, qerr.Status, qerr.Code, "%s", qerr.Message)
}

// admitQuery sheds, then runs the fair gate under the request's
// tenant; a false return means the response is already written.
func (s *Server) admitQuery(w http.ResponseWriter, r *http.Request, ctx context.Context) bool {
	if s.shedQuery(w, ctx) {
		return false
	}
	switch err := s.qgate.Acquire(ctx, tenantOf(r)); {
	case errors.Is(err, fair.ErrWaitersFull):
		s.queryRejected.Inc()
		s.writeError(w, http.StatusTooManyRequests, "query_busy",
			"the query tier is at its concurrency limit; retry later")
		return false
	case err != nil:
		s.queryErrors.Inc()
		s.writeError(w, http.StatusGatewayTimeout, "query_timeout",
			"query deadline exceeded while waiting for a slot")
		return false
	}
	return true
}

// handleQuery serves POST /query: one kernel execution.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	s.queryRequests.Inc()
	var req query.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "bad_request", "decoding query: %v", err)
		return
	}
	if req.TimeoutMs < 0 {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "bad_timeout", "timeout_ms must be >= 0")
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMs)
	defer cancel()
	if !s.admitQuery(w, r, ctx) {
		return
	}
	defer s.qgate.Release()

	start := time.Now()
	resp, qerr := s.Query.Run(ctx, req)
	elapsed := time.Since(start)
	s.queryMS.Add(elapsed.Milliseconds())
	s.querySvc.Observe(float64(elapsed) / float64(time.Millisecond))
	if qerr != nil {
		s.writeQueryError(w, qerr)
		return
	}
	if c, ok := s.queryKernel[strings.ToLower(resp.Kernel)]; ok {
		c.Inc()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// batchRequest is the POST /query/batch body.
type batchRequest struct {
	Queries []query.Request `json:"queries"`
}

// maxBatchBody caps /query/batch bodies: MaxBatch queries of modest
// size fit comfortably.
const maxBatchBody = 1 << 20

// handleQueryBatch serves POST /query/batch: up to query.MaxBatch
// queries whose same-graph members share residency, the relabeled
// graph, and traversal scratch. Items come back positionally; each
// succeeds or fails on its own.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	s.queryRequests.Inc()
	s.queryBatches.Inc()
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "bad_request", "decoding batch: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "empty_batch", "batch has no queries")
		return
	}
	if len(req.Queries) > query.MaxBatch {
		s.queryErrors.Inc()
		s.writeError(w, http.StatusBadRequest, "batch_too_large",
			"batch of %d exceeds the %d-query limit", len(req.Queries), query.MaxBatch)
		return
	}
	ctx, cancel := s.queryContext(r, 0)
	defer cancel()
	if !s.admitQuery(w, r, ctx) {
		return
	}
	defer s.qgate.Release()

	start := time.Now()
	items := s.Query.RunBatch(ctx, req.Queries)
	elapsed := time.Since(start)
	s.queryMS.Add(elapsed.Milliseconds())
	s.querySvc.Observe(float64(elapsed) / float64(time.Millisecond))
	ok := 0
	for _, it := range items {
		if it.Error != nil {
			s.queryErrors.Inc()
			continue
		}
		ok++
		if c, found := s.queryKernel[strings.ToLower(it.Response.Kernel)]; found {
			c.Inc()
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"items": items,
		"ok":    ok,
	})
}
