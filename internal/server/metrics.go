// Package server is the ordering-as-a-service layer: a graph registry,
// an asynchronous job queue with a bounded worker pool, and the HTTP
// JSON API the gorderd daemon serves. It turns the library's orderings
// and evaluators into long-running, cancellable, observable jobs — the
// surface future scaling work (sharding, batching, caching) plugs
// into. Everything is stdlib-only, matching the rest of the repo.
package server

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric, safe for
// concurrent use — the hand-rolled equivalent of expvar.Int, kept
// local so the daemon controls its own export format.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0; counters only go up).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 metric (queue depth, busy workers).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Metrics is a registry of named counters and gauges with a JSON
// export, served at GET /metrics.
type Metrics struct {
	start time.Time
	mu    sync.Mutex
	vars  map[string]func() int64
}

// NewMetrics returns an empty metrics registry whose uptime clock
// starts now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), vars: make(map[string]func() int64)}
}

// Counter registers (or returns the value source of) a named counter.
func (m *Metrics) Counter(name string) *Counter {
	c := &Counter{}
	m.register(name, c.Value)
	return c
}

// Gauge registers a named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	g := &Gauge{}
	m.register(name, g.Value)
	return g
}

// Func registers a named metric computed on demand.
func (m *Metrics) Func(name string, fn func() int64) {
	m.register(name, fn)
}

func (m *Metrics) register(name string, fn func() int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.vars[name]; dup {
		panic("server: duplicate metric " + name)
	}
	m.vars[name] = fn
}

// Snapshot returns the current value of every metric plus
// uptime_seconds, in a plain map ready for JSON encoding.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.vars)+1)
	for name, fn := range m.vars {
		out[name] = fn()
	}
	out["uptime_seconds"] = int64(time.Since(m.start).Seconds())
	return out
}

// WriteJSON writes the snapshot as a single JSON object with sorted
// keys, one metric per line — diff- and grep-friendly.
func (m *Metrics) WriteJSON(w io.Writer) error {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ",\n"
		if i == len(names)-1 {
			sep = "\n"
		}
		key, _ := json.Marshal(name)
		if _, err := io.WriteString(w, "  "+string(key)+": "+
			strconv.FormatInt(snap[name], 10)+sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
