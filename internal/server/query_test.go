package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gorder/internal/gen"
	"gorder/internal/query"
	"gorder/internal/registry"
)

// postQuery submits one query and returns the decoded response, after
// asserting the status.
func postQuery(t *testing.T, ts *httptest.Server, req query.Request, wantStatus int) *query.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /query: status %d, want %d: %s", resp.StatusCode, wantStatus, b)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	out := decodeJSON[query.Response](t, resp.Body)
	return &out
}

// TestQueryEndToEnd is the acceptance flow: upload → order → query
// (BFS + PageRank) with registry parity, repeat-query cache hit with
// zero kernel recomputation, and a materialized PageRank surviving a
// daemon restart.
func TestQueryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(500, 4, 21)
	_, ts := newStoreServer(t, dir, 0)
	info := postGraph(t, ts, "ba", edgeListBytes(t, g))
	st := waitJob(t, ts, postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "ba", Method: "gorder"}).ID)
	if st.State != StateDone {
		t.Fatalf("order job ended %s (%s)", st.State, st.Error)
	}

	// BFS from the hub over the freshly stored ordering: per-vertex
	// parity with a direct registry run on the natural graph.
	targets := []int{0, 3, 250, 499}
	bfs := postQuery(t, ts, query.Request{Graph: "ba", Kernel: "BFS", Targets: targets}, http.StatusOK)
	if bfs.Ordering.Method != "gorder" || bfs.Ordering.Source != "latest" {
		t.Fatalf("BFS served over %+v, want the stored gorder artifact", bfs.Ordering)
	}
	if bfs.CacheHit {
		t.Fatal("first BFS query reported a cache hit")
	}
	k, _ := registry.LookupKernel("BFS")
	want, err := k.Query(context.Background(), g, registry.KernelParams{SPSource: int(registry.HubSource(g))},
		new(registry.QueryScratch))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range bfs.Values {
		if v.Node != targets[i] || v.Value != want.Value(v.Node) {
			t.Fatalf("BFS value %d = %+v, want node %d value %v",
				i, v, targets[i], want.Value(targets[i]))
		}
	}

	// PageRank parity within FP tolerance (summation order differs on
	// the reordered graph).
	pr := postQuery(t, ts, query.Request{Graph: info.ID, Kernel: "PR", Targets: targets}, http.StatusOK)
	kpr, _ := registry.LookupKernel("PR")
	wantPR, err := kpr.Query(context.Background(), g, registry.KernelParams{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pr.Values {
		wv := wantPR.Value(targets[i])
		if math.Abs(v.Value-wv) > 1e-9*(1+math.Abs(wv)) {
			t.Fatalf("PR value at %d = %v, want %v", targets[i], v.Value, wv)
		}
	}

	// Repeat PR query: a cache hit with zero new kernel runs.
	runs := metricsSnapshot(t, ts)["query_kernel_runs_total"]
	again := postQuery(t, ts, query.Request{Graph: "ba", Kernel: "PR", Targets: targets}, http.StatusOK)
	if !again.CacheHit {
		t.Fatal("repeat PR query missed the result cache")
	}
	snap := metricsSnapshot(t, ts)
	if snap["query_kernel_runs_total"] != runs {
		t.Fatalf("repeat query recomputed: kernel runs %d -> %d",
			runs, snap["query_kernel_runs_total"])
	}
	if snap["query_cache_hits_total"] < 1 || snap["query_total_pr"] < 2 {
		t.Fatalf("query metrics after repeat: %v", snap)
	}
	ts.Close()

	// Restart: the materialized PageRank serves with zero kernel runs.
	_, ts2 := newStoreServer(t, dir, 0)
	revived := postQuery(t, ts2, query.Request{Graph: info.ID, Kernel: "PR", Targets: targets}, http.StatusOK)
	if !revived.CacheHit || !revived.Materialized {
		t.Fatalf("restarted PR query: hit=%v materialized=%v, want both",
			revived.CacheHit, revived.Materialized)
	}
	if revived.Ordering.Method != "gorder" || revived.Ordering.Source != "cache" {
		t.Fatalf("restarted PR ordering = %+v", revived.Ordering)
	}
	for i, v := range revived.Values {
		if v.Value != pr.Values[i].Value {
			t.Fatalf("materialized value %d = %v, want %v", i, v.Value, pr.Values[i].Value)
		}
	}
	snap = metricsSnapshot(t, ts2)
	if snap["query_kernel_runs_total"] != 0 {
		t.Fatalf("restarted daemon ran %d kernels for a materialized result",
			snap["query_kernel_runs_total"])
	}
	if snap["query_materialized_hits_total"] != 1 || snap["store_result_hits_total"] != 1 {
		t.Fatalf("materialization counters after restart: %v", snap)
	}
}

// TestReadsNotBlockedByCompute pins the read/compute separation: with
// every worker busy on a long ordering job, queries and catalog reads
// still answer immediately.
func TestReadsNotBlockedByCompute(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 8}})
	postGraph(t, ts, "small", edgeListBytes(t, gen.BarabasiAlbert(200, 3, 4)))
	big := gen.BarabasiAlbert(30000, 8, 7)
	postGraph(t, ts, "big", edgeListBytes(t, big))

	// Saturate the only worker with a stream of annealing jobs — each
	// runs a few hundred milliseconds, so the pool stays busy for the
	// whole read window.
	jobs := make([]string, 8)
	for i := range jobs {
		jobs[i] = postJob(t, ts, JobRequest{Kind: KindOrder, Graph: "big", Method: "minloga"}).ID
	}

	// Reads must complete while the worker is pinned.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postQuery(t, ts, query.Request{Graph: "small", Kernel: "BFS"}, http.StatusOK)
		if resp.Ordering.Method != "natural" {
			t.Errorf("store-less query served over %q", resp.Ordering.Method)
		}
		r, err := http.Get(ts.URL + "/graphs")
		if err != nil || r.StatusCode != http.StatusOK {
			t.Errorf("GET /graphs during compute: %v status %d", err, r.StatusCode)
		}
		if err == nil {
			r.Body.Close()
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reads queued behind the compute worker pool")
	}

	// The worker is still grinding through the job backlog — the reads
	// did not wait for the compute pool to drain.
	unfinished := 0
	for _, id := range jobs {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeJSON[JobStatus](t, resp.Body)
		resp.Body.Close()
		if st.State == StateQueued || st.State == StateRunning {
			unfinished++
		}
	}
	if unfinished == 0 {
		t.Fatal("every compute job finished before the reads; the test raced the pool")
	}
	for _, id := range jobs {
		waitJob(t, ts, id)
	}
}

// TestQueryValidationEnvelopes: submit-time validation speaks the same
// JSON error envelope as the job queue, with structured codes.
func TestQueryValidationEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 4}})
	postGraph(t, ts, "ring", edgeListBytes(t, gen.Ring(64)))
	src := func(v int) *int { return &v }

	cases := []struct {
		name   string
		req    query.Request
		status int
		code   string
	}{
		{"unknown kernel", query.Request{Graph: "ring", Kernel: "Frobnicate"}, 404, "unknown_kernel"},
		{"order-dependent kernel", query.Request{Graph: "ring", Kernel: "DFS"}, 400, "kernel_not_queryable"},
		{"unknown graph", query.Request{Graph: "nope", Kernel: "BFS"}, 404, "unknown_graph"},
		{"out-of-range source", query.Request{Graph: "ring", Kernel: "BFS", Source: src(64)}, 400, "source_out_of_range"},
		{"out-of-range target", query.Request{Graph: "ring", Kernel: "BFS", Targets: []int{99}}, 400, "target_out_of_range"},
		{"unknown ordering", query.Request{Graph: "ring", Kernel: "BFS", Order: "zorder"}, 400, "unknown_order"},
		{"artifact-less ordering", query.Request{Graph: "ring", Kernel: "BFS", Order: "gorder"}, 409, "order_not_ready"},
	}
	for _, tc := range cases {
		body, _ := json.Marshal(tc.req)
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		envelope := decodeJSON[map[string]apiError](t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status || envelope["error"].Code != tc.code {
			t.Errorf("%s: status %d code %q, want %d %q",
				tc.name, resp.StatusCode, envelope["error"].Code, tc.status, tc.code)
		}
		if envelope["error"].Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	// Malformed and over-specified JSON get the envelope too.
	for _, body := range []string{"{not json", `{"graph":"ring","kernel":"BFS","bogus":1}`} {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		envelope := decodeJSON[map[string]apiError](t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || envelope["error"].Code != "bad_request" {
			t.Errorf("body %q: status %d code %q", body, resp.StatusCode, envelope["error"].Code)
		}
	}
	// Wrong method gets 405 with Allow.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Errorf("GET /query: status %d allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

func TestQueryBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: PoolConfig{Workers: 1, QueueDepth: 4}})
	postGraph(t, ts, "ba", edgeListBytes(t, gen.BarabasiAlbert(300, 3, 8)))

	queries := make([]query.Request, 6)
	for i := range queries {
		src := i * 11
		queries[i] = query.Request{Graph: "ba", Kernel: "BFS", Source: &src}
	}
	queries[5] = query.Request{Graph: "ba", Kernel: "NoSuch"}
	body, _ := json.Marshal(map[string]any{"queries": queries})
	resp, err := http.Post(ts.URL+"/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out := decodeJSON[struct {
		Items []query.BatchItem `json:"items"`
		OK    int               `json:"ok"`
	}](t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.OK != 5 || len(out.Items) != 6 {
		t.Fatalf("batch: status %d ok=%d items=%d", resp.StatusCode, out.OK, len(out.Items))
	}
	for i, it := range out.Items[:5] {
		if it.Response == nil || it.Response.Kernel != "BFS" {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
	if out.Items[5].Error == nil || out.Items[5].Error.Code != "unknown_kernel" {
		t.Fatalf("bad item error = %+v", out.Items[5].Error)
	}
	if got := s.Metrics.Snapshot()["query_total_bfs"]; got != 5 {
		t.Errorf("query_total_bfs = %d, want 5", got)
	}

	// Oversized and empty batches are rejected up front.
	over, _ := json.Marshal(map[string]any{
		"queries": make([]query.Request, query.MaxBatch+1),
	})
	for _, tc := range []struct {
		body []byte
		code string
	}{
		{over, "batch_too_large"},
		{[]byte(`{"queries":[]}`), "empty_batch"},
	} {
		resp, err := http.Post(ts.URL+"/query/batch", "application/json", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		envelope := decodeJSON[map[string]apiError](t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || envelope["error"].Code != tc.code {
			t.Errorf("batch %s: status %d code %q", tc.code, resp.StatusCode, envelope["error"].Code)
		}
	}
}
