package cmdtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// startGorderd launches the daemon on a kernel-assigned port and
// returns its base URL plus the running process. The daemon announces
// the resolved address on stdout.
func startGorderd(t *testing.T, extraArgs ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-grace", "10s"}, extraArgs...)
	cmd := exec.Command(filepath.Join(binDir, "gorderd"), args...)
	cmd.Dir = t.TempDir() // keep any default manifest writes out of the repo
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "gorderd listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("gorderd never announced its address")
		return "", nil
	}
}

func httpJSON[T any](t *testing.T, method, url, contentType string, body io.Reader) (int, T) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, v
}

// TestGorderdSmoke drives the daemon end to end over real HTTP:
// health check, graph upload, gorder job to completion, permutation
// download (validated and score-checked), metrics, and a clean
// SIGTERM shutdown.
func TestGorderdSmoke(t *testing.T) {
	base, cmd := startGorderd(t)

	// Liveness.
	if code, _ := httpJSON[map[string]any](t, http.MethodGet, base+"/healthz", "", nil); code != 200 {
		t.Fatalf("healthz: status %d", code)
	}

	// Generate a dataset with the existing tooling and upload it.
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	run(t, "graphgen", "-type", "social", "-n", "800", "-seed", "11", "-format", "text", "-o", graphPath)
	data, err := os.ReadFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	code, info := httpJSON[map[string]any](t, http.MethodPost,
		base+"/graphs?name=social800", "application/octet-stream", bytes.NewReader(data))
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d (%v)", code, info)
	}

	// Submit a gorder job and poll it to done.
	jobBody := `{"kind":"order","graph":"social800","method":"gorder","window":5}`
	code, job := httpJSON[map[string]any](t, http.MethodPost, base+"/jobs", "application/json", strings.NewReader(jobBody))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, job)
	}
	id, _ := job["id"].(string)
	if id == "" {
		t.Fatalf("job response has no id: %v", job)
	}
	var state string
	for deadline := time.Now().Add(60 * time.Second); time.Now().Before(deadline); {
		_, st := httpJSON[map[string]any](t, http.MethodGet, base+"/jobs/"+id, "", nil)
		state, _ = st["state"].(string)
		if state == "done" || state == "failed" || state == "canceled" {
			if state != "done" {
				t.Fatalf("job ended %s: %v", state, st)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("job stuck in state %q", state)
	}

	// Download and validate the permutation; it must beat identity.
	resp, err := http.Get(base + "/jobs/" + id + "/permutation")
	if err != nil {
		t.Fatal(err)
	}
	perm, err := order.ReadPermutation(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("downloaded permutation invalid: %v", err)
	}
	g, err := graph.ReadEdgeList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != g.NumNodes() {
		t.Fatalf("permutation covers %d vertices, graph has %d", len(perm), g.NumNodes())
	}
	if got, base0 := order.Score(g, perm, 5), order.Score(g, order.Identity(g.NumNodes()), 5); got <= base0 {
		t.Fatalf("gorder score %d does not beat identity %d", got, base0)
	}

	// Metrics counted the work.
	if code, snap := httpJSON[map[string]int64](t, http.MethodGet, base+"/metrics", "", nil); code != 200 ||
		snap["jobs_completed"] < 1 || snap["graphs_loaded"] < 1 {
		t.Fatalf("metrics: status %d snapshot %v", code, snap)
	}

	// Graceful shutdown: SIGTERM, clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gorderd exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gorderd ignored SIGTERM")
	}
}

// TestGorderdPreloadsDataDir checks the -data preload path: a dataset
// directory's graphs are queryable without an upload.
func TestGorderdPreloadsDataDir(t *testing.T) {
	dataDir := t.TempDir()
	run(t, "graphgen", "-type", "er", "-n", "64", "-seed", "5", "-o", filepath.Join(dataDir, "er64.bin"))
	base, cmd := startGorderd(t, "-data", dataDir)

	code, gi := httpJSON[map[string]any](t, http.MethodGet, base+"/graphs/er64", "", nil)
	if code != http.StatusOK {
		t.Fatalf("preloaded graph lookup: status %d (%v)", code, gi)
	}
	if n, _ := gi["nodes"].(float64); int(n) != 64 {
		t.Fatalf("preloaded graph nodes = %v, want 64", gi["nodes"])
	}

	jobBody := `{"kind":"eval","graph":"er64"}`
	code, job := httpJSON[map[string]any](t, http.MethodPost, base+"/jobs", "application/json", strings.NewReader(jobBody))
	if code != http.StatusAccepted {
		t.Fatalf("eval submit: status %d (%v)", code, job)
	}

	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gorderd exited uncleanly: %v", err)
	}
}

// TestGorderdManifestReplay shuts a daemon down with queued jobs and
// confirms the next instance replays them from the manifest.
func TestGorderdManifestReplay(t *testing.T) {
	workDir := t.TempDir()
	dataDir := t.TempDir()
	manifest := filepath.Join(workDir, "m.json")
	// A graph big enough that a gorder job occupies the single worker
	// while more jobs pile up behind it.
	run(t, "graphgen", "-type", "social", "-n", "30000", "-seed", "3", "-o", filepath.Join(dataDir, "big.bin"))

	base, cmd := startGorderd(t, "-data", dataDir, "-workers", "1", "-manifest", manifest, "-grace", "2s")
	for i := 0; i < 4; i++ {
		body := `{"kind":"order","graph":"big","method":"gorder"}`
		code, st := httpJSON[map[string]any](t, http.MethodPost, base+"/jobs", "application/json", strings.NewReader(body))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d (%v)", i, code, st)
		}
	}
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gorderd exited uncleanly: %v", err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m struct {
		Jobs []map[string]any `json:"jobs"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs) == 0 {
		t.Fatal("manifest persisted no queued jobs")
	}

	// Second instance replays them.
	base2, cmd2 := startGorderd(t, "-data", dataDir, "-workers", "2", "-manifest", manifest)
	code, list := httpJSON[map[string][]map[string]any](t, http.MethodGet, base2+"/jobs", "", nil)
	if code != http.StatusOK {
		t.Fatalf("job list: status %d", code)
	}
	if len(list["jobs"]) != len(m.Jobs) {
		t.Fatalf("replayed %d jobs, manifest had %d", len(list["jobs"]), len(m.Jobs))
	}
	// The manifest is consumed so a crash loop cannot double-submit.
	if _, err := os.Stat(manifest); !os.IsNotExist(err) {
		t.Fatalf("manifest not cleared after replay: %v", err)
	}
	cmd2.Process.Signal(syscall.SIGTERM)
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("second gorderd exited uncleanly: %v", err)
	}
}

// TestGorderdStoreSurvivesRestart is the persistence acceptance flow:
// a graph uploaded to a -data-dir daemon and the ordering it computed
// both outlive the process. The restarted daemon lists the graph
// without re-upload and answers the repeat job from the artifact
// store instead of recomputing.
func TestGorderdStoreSurvivesRestart(t *testing.T) {
	storeDir := t.TempDir()
	srcDir := t.TempDir()
	graphPath := filepath.Join(srcDir, "g.txt")
	run(t, "graphgen", "-type", "social", "-n", "900", "-seed", "21", "-format", "text", "-o", graphPath)
	data, err := os.ReadFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}

	submitAndWait := func(base string) map[string]any {
		t.Helper()
		body := `{"kind":"order","graph":"social900","method":"gorder","window":6}`
		code, job := httpJSON[map[string]any](t, http.MethodPost, base+"/jobs", "application/json", strings.NewReader(body))
		if code != http.StatusAccepted {
			t.Fatalf("submit: status %d (%v)", code, job)
		}
		id, _ := job["id"].(string)
		for deadline := time.Now().Add(60 * time.Second); time.Now().Before(deadline); {
			_, st := httpJSON[map[string]any](t, http.MethodGet, base+"/jobs/"+id, "", nil)
			switch st["state"] {
			case "done":
				return st
			case "failed", "canceled":
				t.Fatalf("job ended %v: %v", st["state"], st)
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatal("job never finished")
		return nil
	}

	base, cmd := startGorderd(t, "-data-dir", storeDir)
	code, info := httpJSON[map[string]any](t, http.MethodPost,
		base+"/graphs?name=social900", "application/octet-stream", bytes.NewReader(data))
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d (%v)", code, info)
	}
	st1 := submitAndWait(base)
	metrics1, _ := st1["metrics"].(map[string]any)
	score1, _ := metrics1["score_F"].(float64)
	if hit, _ := metrics1["cache_hit"].(float64); hit != 0 {
		t.Fatalf("first job claims a cache hit: %v", metrics1)
	}
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gorderd exited uncleanly: %v", err)
	}

	// Restart against the same data dir: catalog and artifacts return.
	base2, cmd2 := startGorderd(t, "-data-dir", storeDir)
	code, gi := httpJSON[map[string]any](t, http.MethodGet, base2+"/graphs/social900", "", nil)
	if code != http.StatusOK {
		t.Fatalf("restarted daemon lost the graph: status %d (%v)", code, gi)
	}
	if n, _ := gi["nodes"].(float64); int(n) != 900 {
		t.Fatalf("restored graph nodes = %v, want 900", gi["nodes"])
	}
	if onDisk, _ := gi["on_disk"].(bool); !onDisk {
		t.Fatalf("restored graph not marked on_disk: %v", gi)
	}

	st2 := submitAndWait(base2)
	metrics2, _ := st2["metrics"].(map[string]any)
	if hit, _ := metrics2["cache_hit"].(float64); hit != 1 {
		t.Fatalf("repeat job not served from the store: %v", metrics2)
	}
	if score2, _ := metrics2["score_F"].(float64); score2 != score1 {
		t.Fatalf("cached score_F %v differs from original %v", metrics2["score_F"], score1)
	}
	_, snap := httpJSON[map[string]int64](t, http.MethodGet, base2+"/metrics", "", nil)
	if snap["store_hits_total"] < 1 {
		t.Fatalf("store_hits_total = %d after repeat job", snap["store_hits_total"])
	}
	if snap["ordering_runs_gorder"] != 0 {
		t.Fatalf("restarted daemon recomputed the ordering %d times", snap["ordering_runs_gorder"])
	}

	cmd2.Process.Signal(syscall.SIGTERM)
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("second gorderd exited uncleanly: %v", err)
	}
}
