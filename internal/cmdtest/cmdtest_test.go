// Package cmdtest builds the command-line tools and drives them
// end-to-end: generate → order → simulate → benchmark, including the
// trace record/replay and permutation apply flows, plus the gorderd
// daemon's upload → job → permutation HTTP round trip.
package cmdtest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "gorder-cmdtest")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"graphgen", "gorder", "cachesim", "bench", "gorderd"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "gorder/cmd/"+tool)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			panic("building " + tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/cmdtest → repo root
}

func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func runExpectError(t *testing.T, tool string, args ...string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", tool, args, out)
	}
}

func TestPipeline(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	run(t, "graphgen", "-type", "web", "-n", "2000", "-seed", "3", "-o", graphPath)
	if fi, err := os.Stat(graphPath); err != nil || fi.Size() == 0 {
		t.Fatal("graphgen produced no file")
	}

	permPath := filepath.Join(dir, "g.perm")
	orderedPath := filepath.Join(dir, "g-ord.bin")
	out := run(t, "gorder", "-i", graphPath, "-method", "gorder",
		"-eval", "-perm-out", permPath, "-o", orderedPath)
	if !strings.Contains(out, "score_F") || !strings.Contains(out, "bandwidth") {
		t.Errorf("gorder -eval output missing metrics:\n%s", out)
	}
	// Applying the saved permutation reproduces the same metrics.
	out2 := run(t, "gorder", "-i", graphPath, "-apply", permPath, "-eval")
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "score_F") && !strings.Contains(out2, line) {
			t.Errorf("applied permutation score differs:\n%s\nvs\n%s", out, out2)
		}
	}

	sim := run(t, "cachesim", "-i", graphPath, "-kernel", "PR", "-compare", "gorder", "-reuse")
	if !strings.Contains(sim, "L1-mr") || !strings.Contains(sim, "reuse:") {
		t.Errorf("cachesim output malformed:\n%s", sim)
	}
	if strings.Count(sim, "\n") < 4 {
		t.Errorf("cachesim did not print both orderings:\n%s", sim)
	}
}

// TestListAndLDGBins covers the registry-backed catalog listing and
// the -ldg-bins option end to end.
func TestListAndLDGBins(t *testing.T) {
	out := run(t, "gorder", "-list")
	for _, want := range []string{"METHOD", "gorder", "slashburn-full", "minla", "ldg"} {
		if !strings.Contains(out, want) {
			t.Errorf("gorder -list output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n < 15 {
		t.Errorf("gorder -list printed %d lines, want the full catalog:\n%s", n, out)
	}

	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	run(t, "graphgen", "-type", "social", "-n", "1500", "-seed", "2", "-o", graphPath)
	permA := filepath.Join(dir, "a.perm")
	permB := filepath.Join(dir, "b.perm")
	run(t, "gorder", "-i", graphPath, "-method", "ldg", "-perm-out", permA)
	run(t, "gorder", "-i", graphPath, "-method", "ldg", "-ldg-bins", "8", "-perm-out", permB)
	a, err := os.ReadFile(permA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(permB)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(b) {
		t.Error("-ldg-bins 8 produced the same permutation as the default bins")
	}
}

func TestTraceRecordReplay(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	run(t, "graphgen", "-type", "social", "-n", "1000", "-o", graphPath)
	tracePath := filepath.Join(dir, "bfs.trc")
	rec := run(t, "cachesim", "-i", graphPath, "-kernel", "BFS", "-trace-out", tracePath)
	rep := run(t, "cachesim", "-replay", tracePath)
	// The replayed report must equal the recorded one.
	extract := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "refs=") {
				return strings.TrimSpace(line[strings.Index(line, "refs="):])
			}
		}
		return ""
	}
	if extract(rec) == "" || extract(rec) != extract(rep) {
		t.Errorf("record/replay mismatch:\nrec: %s\nrep: %s", extract(rec), extract(rep))
	}
}

func TestGraphgenRegistryAndFormats(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "g.txt")
	run(t, "graphgen", "-dataset", "epinion-s", "-scale", "0.2", "-format", "text", "-o", txt)
	data, err := os.ReadFile(txt)
	if err != nil || !strings.HasPrefix(string(data), "#") {
		t.Fatalf("text output malformed: %v", err)
	}
	// The gorder tool must accept the text format too.
	run(t, "gorder", "-i", txt, "-method", "rcm", "-eval")
	runExpectError(t, "graphgen", "-dataset", "no-such-dataset")
	runExpectError(t, "graphgen", "-type", "no-such-type")
}

func TestBenchListAndSmallExperiment(t *testing.T) {
	list := run(t, "bench", "-list", "-scale", "0.02")
	for _, want := range []string{"table1", "fig5", "compress", "dial", "epinion-s", "sdarc-s"} {
		if !strings.Contains(list, want) {
			t.Errorf("bench -list missing %q", want)
		}
	}
	out := run(t, "bench", "-exp", "table1", "-scale", "0.02", "-datasets", "2", "-chart")
	if !strings.Contains(out, "table1") || !strings.Contains(out, "epinion-s") {
		t.Errorf("bench table1 output malformed:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Errorf("-chart produced no bars:\n%s", out)
	}
	runExpectError(t, "bench", "-exp", "no-such-exp")
}

// TestGorderProfiles: -cpuprofile and -memprofile write non-empty
// pprof files even though the command exits through its normal output
// path (the profile defers must flush before exit).
func TestGorderProfiles(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	run(t, "graphgen", "-type", "web", "-n", "3000", "-seed", "5", "-o", graphPath)

	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	permPath := filepath.Join(dir, "g.perm")
	run(t, "gorder", "-i", graphPath, "-method", "gorder", "-w", "5",
		"-cpuprofile", cpu, "-memprofile", mem, "-perm-out", permPath)
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if fi, err := os.Stat(permPath); err != nil || fi.Size() == 0 {
		t.Error("profiled run did not still write the permutation")
	}
}

func TestGorderRejectsBadInputs(t *testing.T) {
	runExpectError(t, "gorder", "-i", "/does/not/exist")
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	run(t, "graphgen", "-type", "er", "-n", "50", "-o", graphPath)
	runExpectError(t, "gorder", "-i", graphPath, "-method", "metis")
	// Permutation length mismatch.
	badPerm := filepath.Join(dir, "bad.perm")
	if err := os.WriteFile(badPerm, []byte("0\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runExpectError(t, "gorder", "-i", graphPath, "-apply", badPerm)
}
