// Package trace records and replays cache-line access traces in a
// compact binary format. Recording a kernel's trace once lets any
// number of cache configurations or reuse-distance analyses be
// evaluated later without re-running the kernel — the workflow
// hardware papers use with tools like DineroIV, reproduced here for
// the ordering experiments.
//
// Format: an 8-byte magic, then one zigzag-varint delta per access
// (delta of the line address from the previous access). Graph kernels
// under a locality-aware ordering produce small deltas, so their
// traces compress well — the trace size itself is yet another
// locality metric.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

var magic = [8]byte{'G', 'O', 'R', 'D', 'T', 'R', 'C', '1'}

// Writer streams line addresses to an underlying writer. Close (or
// Flush) must be called to drain the buffer.
type Writer struct {
	bw   *bufio.Writer
	prev uint64
	n    uint64
	err  error
}

// NewWriter starts a trace on w, writing the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Touch records one access to the given cache line. Errors are
// latched and surfaced by Flush, so Touch is usable as a
// cache.Hierarchy observer callback.
func (t *Writer) Touch(line uint64) {
	if t.err != nil {
		return
	}
	delta := int64(line) - int64(t.prev)
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], zigzag(delta))
	if _, err := t.bw.Write(buf[:n]); err != nil {
		t.err = err
		return
	}
	t.prev = line
	t.n++
}

// Len returns the number of accesses recorded so far.
func (t *Writer) Len() uint64 { return t.n }

// Flush drains buffered output and returns any latched error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Reader streams a trace back.
type Reader struct {
	br   *bufio.Reader
	prev uint64
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: not a gorder trace file")
	}
	return &Reader{br: br}, nil
}

// Next returns the next line address. It returns io.EOF when the
// trace is exhausted.
func (r *Reader) Next() (uint64, error) {
	u, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("trace: %w", err)
	}
	line := uint64(int64(r.prev) + unzigzag(u))
	r.prev = line
	return line, nil
}

// Replay streams every access of a trace into fn and returns the
// access count.
func Replay(r io.Reader, fn func(line uint64)) (uint64, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	var count uint64
	for {
		line, err := tr.Next()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		fn(line)
		count++
	}
}
