package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/cache"
	"gorder/internal/reuse"
)

func record(t *testing.T, lines []uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		w.Touch(l)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != uint64(len(lines)) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(lines))
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	lines := []uint64{5, 6, 6, 100, 3, 1 << 40, 0}
	data := record(t, lines)
	var got []uint64
	n, err := Replay(bytes.NewReader(data), func(l uint64) { got = append(got, l) })
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(lines)) {
		t.Fatalf("count = %d", n)
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("replay[%d] = %d, want %d", i, got[i], lines[i])
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lines := make([]uint64, rng.Intn(500))
		for i := range lines {
			lines[i] = uint64(rng.Int63n(1 << 50))
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, l := range lines {
			w.Touch(l)
		}
		if w.Flush() != nil {
			return false
		}
		i := 0
		n, err := Replay(bytes.NewReader(buf.Bytes()), func(l uint64) {
			if i < len(lines) && l != lines[i] {
				i = len(lines) + 1 // poison
			}
			i++
		})
		return err == nil && n == uint64(len(lines)) && i == len(lines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short header accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("WRONGMAG01234"))); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	data := record(t, []uint64{1 << 40, 2 << 40})
	// Chop mid-varint: the reader must surface an error, not EOF.
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first access should survive: %v", err)
	}
	_, err = r.Next()
	if err == nil || err == io.EOF {
		t.Errorf("truncated varint returned %v, want a real error", err)
	}
}

// Local traces are smaller than scattered ones — the format's delta
// encoding makes trace size itself a locality measure.
func TestLocalTracesCompressBetter(t *testing.T) {
	seqLines := make([]uint64, 4096)
	for i := range seqLines {
		seqLines[i] = uint64(i)
	}
	rng := rand.New(rand.NewSource(1))
	rndLines := make([]uint64, 4096)
	for i := range rndLines {
		rndLines[i] = uint64(rng.Int63n(1 << 40))
	}
	seq := record(t, seqLines)
	scattered := record(t, rndLines)
	if len(seq)*3 > len(scattered) {
		t.Errorf("sequential trace %dB not much smaller than scattered %dB", len(seq), len(scattered))
	}
}

// Recording through the hierarchy observer and replaying into a reuse
// analyzer gives identical results to attaching the analyzer live.
func TestRecordReplayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := cache.New(cache.SmallMachine())
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := reuse.NewAnalyzer(8, 64)
	h.SetObserver(func(line uint64) {
		w.Touch(line)
		live.Touch(line)
	})
	for i := 0; i < 3000; i++ {
		h.Access(uint64(rng.Intn(1 << 18)))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed := reuse.NewAnalyzer(8, 64)
	if _, err := Replay(bytes.NewReader(buf.Bytes()), replayed.Touch); err != nil {
		t.Fatal(err)
	}
	a, b := live.Profile(), replayed.Profile()
	if a.Total != b.Total || a.Cold != b.Cold || a.Misses[0] != b.Misses[0] || a.Misses[1] != b.Misses[1] {
		t.Fatalf("profiles differ: %+v vs %+v", a, b)
	}
}
