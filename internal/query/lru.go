package query

import "sync"

// byteLRU is a byte-budgeted LRU over string keys, shared by the
// executor's result cache and relabeled-graph cache. It mirrors the
// store's residency discipline: admit unconditionally, then evict
// least-recently-used entries until the budget holds (a single entry
// larger than the whole budget is still admitted — evicting the thing
// just computed would only guarantee recomputation).
type byteLRU struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	entries   map[string]*lruEntry
	head      *lruEntry // most recently used
	tail      *lruEntry // least recently used
	evictions int64
}

type lruEntry struct {
	key        string
	value      any
	size       int64
	prev, next *lruEntry
}

func newByteLRU(budget int64) *byteLRU {
	return &byteLRU{budget: budget, entries: make(map[string]*lruEntry)}
}

// get returns the cached value and marks it most recently used.
func (c *byteLRU) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.unlink(e)
	c.pushFront(e)
	return e.value, true
}

// put admits (or refreshes) key and evicts down to the budget.
func (c *byteLRU) put(key string, value any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.bytes += size - e.size
		e.value, e.size = value, size
		c.unlink(e)
		c.pushFront(e)
	} else {
		e = &lruEntry{key: key, value: value, size: size}
		c.entries[key] = e
		c.bytes += size
		c.pushFront(e)
	}
	for c.bytes > c.budget && c.tail != nil && c.tail != c.head {
		ev := c.tail
		c.unlink(ev)
		delete(c.entries, ev.key)
		c.bytes -= ev.size
		c.evictions++
	}
}

// remove drops key if present, reporting whether it was held. The
// executor uses it to invalidate relabeled graphs whose ordering
// artifact a repair job has just replaced.
func (c *byteLRU) remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.entries, e.key)
	c.bytes -= e.size
	return true
}

func (c *byteLRU) stats() (entries int, bytes, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes, c.evictions
}

func (c *byteLRU) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *byteLRU) pushFront(e *lruEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
