package query

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"gorder/internal/gen"
	"gorder/internal/registry"
	"gorder/internal/store"
)

// TestQueryLatencyHarness is the driver behind scripts/bench_query.sh:
// it runs a mixed single/batch kernel workload against the 1M-edge web
// graph and writes percentile latencies, cache-hit rates, and the
// ordering serving each scenario to the JSON file named by
// QUERY_BENCH_JSON. Skipped in normal test runs — it takes tens of
// seconds by design.
func TestQueryLatencyHarness(t *testing.T) {
	outPath := os.Getenv("QUERY_BENCH_JSON")
	if outPath == "" {
		t.Skip("set QUERY_BENCH_JSON=<path> to run the query latency harness")
	}
	nodes := 100000 // ~1M edges with DefaultWeb — the bench workload core uses
	if s := os.Getenv("QUERY_BENCH_NODES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1000 {
			t.Fatalf("QUERY_BENCH_NODES = %q: need an integer >= 1000", s)
		}
		nodes = v
	}

	g := gen.Web(nodes, gen.DefaultWeb, 0x90DE)
	t.Logf("workload: web graph n=%d m=%d", g.NumNodes(), g.NumEdges())
	src := newFakeSource()
	src.add("web", "bench", g)
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutGraph("bench", "web", g, g.MemoryBytes()); err != nil {
		t.Fatal(err)
	}
	orderStart := time.Now()
	perm, _, err := registry.ComputeObserved(context.Background(), g, "gorder", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, optKey, err := registry.OptionsKey("gorder", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutOrder("bench", "gorder", optKey, perm); err != nil {
		t.Fatal(err)
	}
	t.Logf("gorder ordering computed in %v", time.Since(orderStart))
	rcmPerm, _, err := registry.ComputeObserved(context.Background(), g, "rcm", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, rcmKey, err := registry.OptionsKey("rcm", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutOrder("bench", "rcm", rcmKey, rcmPerm); err != nil {
		t.Fatal(err)
	}

	// Budget sized so the cold scenarios' per-vertex vectors (~400 KB per
	// BFS result at n=100k) don't evict each other before the warm
	// replays — this harness measures the warm path, not eviction.
	newExec := func() *Executor {
		return New(Config{Source: src, Store: st, ResultBudget: 512 << 20})
	}
	ctx := context.Background()
	run := func(e *Executor, req Request) *Response {
		resp, qerr := e.Run(ctx, req)
		if qerr != nil {
			t.Fatalf("query %+v: %v", req, qerr)
		}
		return resp
	}

	type row struct {
		Name         string  `json:"name"`
		Queries      int     `json:"queries"`
		Ordering     string  `json:"ordering"`
		CacheHitRate float64 `json:"cache_hit_rate"`
		P50us        float64 `json:"p50_us"`
		P90us        float64 `json:"p90_us"`
		P99us        float64 `json:"p99_us"`
		MeanUs       float64 `json:"mean_us"`
		QPS          float64 `json:"qps"`
	}
	makeRow := func(name, ordering string, lat []float64, hits int) row {
		sorted := append([]float64(nil), lat...)
		sort.Float64s(sorted)
		pct := func(p float64) float64 {
			i := int(p*float64(len(sorted))+0.999999) - 1
			if i < 0 {
				i = 0
			}
			if i >= len(sorted) {
				i = len(sorted) - 1
			}
			return sorted[i]
		}
		var sum float64
		for _, v := range sorted {
			sum += v
		}
		mean := sum / float64(len(sorted))
		return row{
			Name: name, Queries: len(lat), Ordering: ordering,
			CacheHitRate: float64(hits) / float64(len(lat)),
			P50us:        pct(0.50), P90us: pct(0.90), P99us: pct(0.99),
			MeanUs: mean, QPS: 1e6 / mean,
		}
	}

	var rows []row

	// Every cold BFS scenario measures the SAME source set — BFS cost
	// varies a lot by source on a web graph, so distinct source sets
	// would make the ordering and batch comparisons incomparable. Each
	// scenario runs on its OWN executor, released (with a forced GC)
	// before the next one starts: a shared result cache would serve
	// later scenarios from memory, and executors kept alive across
	// scenarios would grow the heap so later timed loops pay more GC
	// than earlier ones. One untimed warmup query per scenario keeps the
	// one-off relabel build out of the timed samples.
	const coldN = 128
	const batchSize = 64
	warmup := nodes - 1
	scenarioDone := func(e **Executor) {
		*e = nil
		runtime.GC()
	}
	timeSingles := func(name, order string) row {
		e := newExec()
		defer scenarioDone(&e)
		run(e, Request{Graph: "web", Kernel: "BFS", Source: &warmup, Order: order})
		lat := make([]float64, coldN)
		hitsBefore := e.CacheHits()
		for i := range lat {
			s := i
			start := time.Now()
			resp := run(e, Request{Graph: "web", Kernel: "BFS", Source: &s, Order: order})
			lat[i] = float64(time.Since(start).Microseconds())
			if resp.Ordering.Method != order {
				t.Fatalf("%s served over %q", name, resp.Ordering.Method)
			}
		}
		return makeRow(name, order, lat, int(e.CacheHits()-hitsBefore))
	}
	coldRow := timeSingles("bfs_single_cold", "gorder")
	rows = append(rows, coldRow)
	rows = append(rows, timeSingles("bfs_single_cold", "natural"))

	// Single BFS, warm: populate untimed, then replay — pure cache hits.
	{
		e := newExec()
		lat := make([]float64, coldN)
		for i := range lat {
			s := i
			run(e, Request{Graph: "web", Kernel: "BFS", Source: &s, Order: "gorder"})
		}
		hitsBefore := e.CacheHits()
		for i := range lat {
			s := i
			start := time.Now()
			run(e, Request{Graph: "web", Kernel: "BFS", Source: &s, Order: "gorder"})
			lat[i] = float64(time.Since(start).Microseconds())
		}
		rows = append(rows, makeRow("bfs_single_warm", "gorder", lat, int(e.CacheHits()-hitsBefore)))
		scenarioDone(&e)
	}

	// Batched BFS, cold: the same sources in batches of 64 against one
	// (graph, ordering) group; per-query latency is batch time / size.
	timeBatches := func(name, ordering string, e *Executor, reqs []Request) row {
		var lat []float64
		hitsBefore := e.CacheHits()
		for b := 0; b < len(reqs)/batchSize; b++ {
			chunk := reqs[b*batchSize : (b+1)*batchSize]
			start := time.Now()
			items := e.RunBatch(ctx, chunk)
			perQuery := float64(time.Since(start).Microseconds()) / batchSize
			for i, it := range items {
				if it.Error != nil {
					t.Fatalf("%s batch %d item %d: %v", name, b, i, it.Error)
				}
				lat = append(lat, perQuery)
			}
		}
		return makeRow(name, ordering, lat, int(e.CacheHits()-hitsBefore))
	}
	singleOrderReqs := make([]Request, coldN)
	for i := range singleOrderReqs {
		s := i
		singleOrderReqs[i] = Request{Graph: "web", Kernel: "BFS", Source: &s, Order: "gorder"}
	}
	var batchRow row
	{
		e := newExec()
		run(e, Request{Graph: "web", Kernel: "BFS", Source: &warmup, Order: "gorder"})
		batchRow = timeBatches(fmt.Sprintf("bfs_batch%d_cold", batchSize), "gorder",
			e, singleOrderReqs)
		rows = append(rows, batchRow)
		scenarioDone(&e)
	}

	// Mixed-ordering workload under a graph budget that holds only ONE
	// relabeled graph at a time: singles alternating between two stored
	// orderings thrash residency (artifact reload + relabel on every
	// query), while a batch groups by ordering and pays each relabel
	// once per group. This is the coalescing the batch endpoint exists
	// for, so it defines the headline batch-vs-single speedup.
	ogBytes := int64(g.NumNodes())*16 + g.NumEdges()*8 + int64(g.NumNodes())*4
	tightExec := func() *Executor {
		return New(Config{Source: src, Store: st,
			ResultBudget: 512 << 20, GraphBudget: ogBytes * 3 / 2})
	}
	mixedReqs := make([]Request, coldN)
	for i := range mixedReqs {
		s := i
		ord := "gorder"
		if i%2 == 1 {
			ord = "rcm"
		}
		mixedReqs[i] = Request{Graph: "web", Kernel: "BFS", Source: &s, Order: ord}
	}
	var mixedSingleRow, mixedBatchRow row
	var singleRelabels, batchRelabels int64
	{
		e := tightExec()
		lat := make([]float64, coldN)
		for i, req := range mixedReqs {
			start := time.Now()
			run(e, req)
			lat[i] = float64(time.Since(start).Microseconds())
		}
		mixedSingleRow = makeRow("bfs_mixed_order_single_cold", "gorder+rcm", lat, 0)
		rows = append(rows, mixedSingleRow)
		singleRelabels = e.RelabelBuilds()
		scenarioDone(&e)
	}
	{
		e := tightExec()
		mixedBatchRow = timeBatches(fmt.Sprintf("bfs_mixed_order_batch%d_cold", batchSize),
			"gorder+rcm", e, mixedReqs)
		rows = append(rows, mixedBatchRow)
		batchRelabels = e.RelabelBuilds()
		scenarioDone(&e)
	}
	t.Logf("mixed-order relabel builds: %d single vs %d batched", singleRelabels, batchRelabels)

	// PageRank: cold (distinct iteration counts) then warm repeats of
	// the default — the materialized whole-graph path.
	{
		e := newExec()
		run(e, Request{Graph: "web", Kernel: "BFS", Source: &warmup, Order: "gorder"})
		var lat []float64
		hitsBefore := e.CacheHits()
		for _, iters := range []int{0, 10, 30} {
			start := time.Now()
			run(e, Request{Graph: "web", Kernel: "PR", Iters: iters, Order: "gorder"})
			lat = append(lat, float64(time.Since(start).Microseconds()))
		}
		rows = append(rows, makeRow("pr_cold", "gorder", lat, int(e.CacheHits()-hitsBefore)))

		lat = lat[:0]
		hitsBefore = e.CacheHits()
		for i := 0; i < coldN; i++ {
			start := time.Now()
			run(e, Request{Graph: "web", Kernel: "PR", Order: "gorder"})
			lat = append(lat, float64(time.Since(start).Microseconds()))
		}
		rows = append(rows, makeRow("pr_warm", "gorder", lat, int(e.CacheHits()-hitsBefore)))
		scenarioDone(&e)
	}

	speedup := mixedSingleRow.MeanUs / mixedBatchRow.MeanUs
	out := map[string]any{
		"generated_by": "scripts/bench_query.sh",
		"go":           runtime.Version(),
		"cores":        runtime.NumCPU(),
		"workload": fmt.Sprintf("web graph n=%d m=%d (gen.Web DefaultWeb seed 0x90DE), gorder artifact key %s",
			g.NumNodes(), g.NumEdges(), optKey),
		// Mixed-ordering singles vs the same requests batched: batching
		// coalesces artifact residency + relabeling per ordering group.
		"batch_vs_single_speedup":            speedup,
		"batch_vs_single_same_order_speedup": coldRow.MeanUs / batchRow.MeanUs,
		"mixed_order_relabel_builds": map[string]int64{
			"single": singleRelabels, "batch": batchRelabels,
		},
		"benchmarks": rows,
	}
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (batch-vs-single speedup %.2fx)", outPath, speedup)
}
