package query

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
	"gorder/internal/registry"
	"gorder/internal/store"
)

// fakeSource serves fixed graphs by name or digest, standing in for
// the server's registry. onStat, when set, runs after each Stat —
// tests use it to advance a name to a new version mid-request, the
// interleave a concurrent edit produces.
type fakeSource struct {
	graphs map[string]*graph.Graph // digest -> graph
	names  map[string]string       // name -> digest
	onStat func()
}

func newFakeSource() *fakeSource {
	return &fakeSource{graphs: map[string]*graph.Graph{}, names: map[string]string{}}
}

func (f *fakeSource) add(name, digest string, g *graph.Graph) {
	f.graphs[digest] = g
	f.names[name] = digest
}

func (f *fakeSource) resolve(ref string) (string, *graph.Graph, bool) {
	if g, ok := f.graphs[ref]; ok {
		return ref, g, true
	}
	if d, ok := f.names[ref]; ok {
		return d, f.graphs[d], true
	}
	return "", nil, false
}

func (f *fakeSource) Stat(ref string) (string, int, bool) {
	d, g, ok := f.resolve(ref)
	if !ok {
		return "", 0, false
	}
	if f.onStat != nil {
		f.onStat()
	}
	return d, g.NumNodes(), true
}

func (f *fakeSource) Resolve(ref string) (*graph.Graph, string, bool) {
	d, g, ok := f.resolve(ref)
	return g, d, ok
}

// reversePerm relabels vertex u to n-1-u: a drastic reordering, so any
// forgotten source/vector mapping fails loudly.
func reversePerm(n int) order.Permutation {
	p := make(order.Permutation, n)
	for i := range p {
		p[i] = graph.NodeID(n - 1 - i)
	}
	return p
}

// newTestExec builds an executor over one 300-vertex graph named
// "web", with a store (rooted in a temp dir) holding a reverse-order
// "gorder" artifact.
func newTestExec(t *testing.T, cfg Config) (*Executor, *store.Store, *graph.Graph) {
	t.Helper()
	g := gen.BarabasiAlbert(300, 3, 5)
	src := newFakeSource()
	src.add("web", "d1", g)
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.PutGraph("d1", "web", g, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.PutOrder("d1", "gorder", "abcd", reversePerm(g.NumNodes())); err != nil {
		t.Fatal(err)
	}
	cfg.Source, cfg.Store = src, st
	return New(cfg), st, g
}

// directResult runs a kernel's Query straight on the natural graph —
// the parity oracle every executor path must match.
func directResult(t *testing.T, g *graph.Graph, kernel string, p registry.KernelParams) registry.KernelResult {
	t.Helper()
	k, ok := registry.LookupKernel(kernel)
	if !ok || k.Query == nil {
		t.Fatalf("kernel %s not queryable", kernel)
	}
	if p.SPSource < 0 {
		for _, f := range k.QueryConsumes {
			if f == registry.KOptSource {
				p.SPSource = int(registry.HubSource(g))
			}
		}
	}
	res, err := k.Query(context.Background(), g, p, new(registry.QueryScratch))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestQueryOrderingInvariance is the tier's core correctness property:
// every queryable kernel returns the same answer (FP tolerance for PR)
// whether served over the natural order or a stored reordering.
func TestQueryOrderingInvariance(t *testing.T) {
	ex, _, g := newTestExec(t, Config{})
	ctx := context.Background()
	for _, kernel := range registry.QueryableKernelNames() {
		natural, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: kernel, Order: "natural"})
		if qerr != nil {
			t.Fatalf("%s natural: %v", kernel, qerr)
		}
		// A second executor so the result cache cannot mask a broken
		// ordered path.
		ex2, _, _ := newTestExec(t, Config{})
		ordered, qerr := ex2.Run(ctx, Request{Graph: "web", Kernel: kernel, Order: "gorder"})
		if qerr != nil {
			t.Fatalf("%s ordered: %v", kernel, qerr)
		}
		if natural.Ordering.Method != "natural" || ordered.Ordering.Method != "gorder" {
			t.Fatalf("%s orderings = %q vs %q", kernel,
				natural.Ordering.Method, ordered.Ordering.Method)
		}
		if len(natural.Summary) == 0 {
			t.Fatalf("%s: empty summary", kernel)
		}
		for key, nv := range natural.Summary {
			if ov := ordered.Summary[key]; math.Abs(nv-ov) > 1e-9*(1+math.Abs(nv)) {
				t.Errorf("%s summary %q: natural %v vs ordered %v", kernel, key, nv, ov)
			}
		}
		// Per-vertex parity through the direct oracle.
		want := directResult(t, g, kernel, registry.KernelParams{SPSource: -1})
		if want.VectorLen() == 0 {
			continue
		}
		for _, resp := range []*Response{natural, ordered} {
			vals, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: kernel,
				Order: resp.Ordering.Method, Targets: []int{0, 1, 150, 299}})
			if qerr != nil {
				t.Fatalf("%s targets: %v", kernel, qerr)
			}
			for _, v := range vals.Values {
				if wv := want.Value(v.Node); math.Abs(v.Value-wv) > 1e-12*(1+math.Abs(wv)) {
					t.Errorf("%s vertex %d via %s: %v, want %v",
						kernel, v.Node, resp.Ordering.Method, v.Value, wv)
				}
			}
		}
	}
}

// TestQueryColdWarm is the CI smoke: the first query computes, the
// repeat is a cache hit with zero new kernel runs.
func TestQueryColdWarm(t *testing.T) {
	ex, _, _ := newTestExec(t, Config{})
	ctx := context.Background()
	cold, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: "PR"})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if cold.CacheHit || ex.KernelRuns() != 1 {
		t.Fatalf("cold: hit=%v runs=%d", cold.CacheHit, ex.KernelRuns())
	}
	// The empty-order request resolved the stored artifact.
	if cold.Ordering.Method != "gorder" || cold.Ordering.Source != "latest" {
		t.Fatalf("cold ordering = %+v, want latest gorder", cold.Ordering)
	}
	warm, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: "PR"})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if !warm.CacheHit || ex.KernelRuns() != 1 {
		t.Fatalf("warm: hit=%v runs=%d (kernel recomputed)", warm.CacheHit, ex.KernelRuns())
	}
	if warm.Ordering.Source != "cache" || warm.Ordering.Method != "gorder" {
		t.Fatalf("warm ordering = %+v", warm.Ordering)
	}
	if !reflect.DeepEqual(cold.Summary, warm.Summary) {
		t.Error("cached summary differs from computed")
	}
}

func TestQueryOrderingSelection(t *testing.T) {
	ex, st, g := newTestExec(t, Config{})
	ctx := context.Background()

	// Explicit method with no artifact → 409, never a silent fallback
	// and never an inline ordering computation.
	if _, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: "BFS", Order: "rcm"}); qerr == nil ||
		qerr.Status != 409 || qerr.Code != "order_not_ready" {
		t.Fatalf("missing artifact error = %+v", qerr)
	}
	// Unknown method → 400 at submit time.
	if _, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: "BFS", Order: "zorder"}); qerr == nil ||
		qerr.Status != 400 || qerr.Code != "unknown_order" {
		t.Fatalf("unknown order error = %+v", qerr)
	}
	// A fresher artifact becomes the empty-order default.
	if err := st.PutOrder("d1", "rcm", "ffff", reversePerm(g.NumNodes())); err != nil {
		t.Fatal(err)
	}
	resp, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: "BFS"})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if resp.Ordering.Method != "rcm" || resp.Ordering.Source != "latest" {
		t.Fatalf("ordering = %+v, want latest rcm", resp.Ordering)
	}
	// Store-less executors always serve natural order.
	src := newFakeSource()
	src.add("web", "d1", g)
	bare := New(Config{Source: src})
	resp, qerr = bare.Run(ctx, Request{Graph: "web", Kernel: "BFS"})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if resp.Ordering.Method != "natural" || resp.Ordering.Source != "natural" {
		t.Fatalf("store-less ordering = %+v", resp.Ordering)
	}
	// A repeat with an explicit ordering is a legitimate cache hit —
	// result keys deliberately exclude the ordering because results
	// are order-invariant — so probe the 409 with an uncached source.
	probe := 42
	if _, qerr := bare.Run(ctx, Request{Graph: "web", Kernel: "BFS", Source: &probe,
		Order: "gorder"}); qerr == nil || qerr.Status != 409 {
		t.Fatalf("store-less explicit order error = %+v", qerr)
	}
}

func TestQueryValidation(t *testing.T) {
	ex, _, g := newTestExec(t, Config{})
	ctx := context.Background()
	n := g.NumNodes()
	src := func(v int) *int { return &v }
	cases := []struct {
		name   string
		req    Request
		status int
		code   string
	}{
		{"unknown kernel", Request{Graph: "web", Kernel: "Frobnicate"}, 404, "unknown_kernel"},
		{"order-dependent kernel", Request{Graph: "web", Kernel: "DFS"}, 400, "kernel_not_queryable"},
		{"unknown graph", Request{Graph: "nope", Kernel: "BFS"}, 404, "unknown_graph"},
		{"source too large", Request{Graph: "web", Kernel: "BFS", Source: src(n)}, 400, "source_out_of_range"},
		{"negative explicit source ok as hub", Request{Graph: "web", Kernel: "SP", Source: src(-5)}, 0, ""},
		{"target out of range", Request{Graph: "web", Kernel: "BFS", Targets: []int{n}}, 400, "target_out_of_range"},
		{"top too large", Request{Graph: "web", Kernel: "PR", Top: MaxTop + 1}, 400, "invalid_params"},
		{"negative iters", Request{Graph: "web", Kernel: "PR", Iters: -3}, 400, "invalid_params"},
	}
	for _, tc := range cases {
		_, qerr := ex.Run(ctx, tc.req)
		if tc.status == 0 {
			if qerr != nil {
				t.Errorf("%s: unexpected error %+v", tc.name, qerr)
			}
			continue
		}
		if qerr == nil || qerr.Status != tc.status || qerr.Code != tc.code {
			t.Errorf("%s: error = %+v, want %d/%s", tc.name, qerr, tc.status, tc.code)
		}
	}
}

// TestBatchCoalescesGroupWork: a batch of per-source queries against
// one (graph, ordering) builds the relabeled graph once and matches
// the direct oracle per source.
func TestBatchCoalescesGroupWork(t *testing.T) {
	ex, _, g := newTestExec(t, Config{})
	reqs := make([]Request, 8)
	for i := range reqs {
		s := i * 7
		reqs[i] = Request{Graph: "web", Kernel: "BFS", Source: &s, Order: "gorder",
			Targets: []int{0, 299}}
	}
	items := ex.RunBatch(context.Background(), reqs)
	if len(items) != len(reqs) {
		t.Fatalf("items = %d, want %d", len(items), len(reqs))
	}
	for i, it := range items {
		if it.Error != nil {
			t.Fatalf("item %d: %+v", i, it.Error)
		}
		if it.Response.Ordering.Method != "gorder" {
			t.Fatalf("item %d served over %q", i, it.Response.Ordering.Method)
		}
		want := directResult(t, g, "BFS", registry.KernelParams{SPSource: i * 7})
		for _, v := range it.Response.Values {
			if v.Value != want.Value(v.Node) {
				t.Errorf("item %d vertex %d = %v, want %v", i, v.Node, v.Value, want.Value(v.Node))
			}
		}
	}
	if ex.RelabelBuilds() != 1 {
		t.Errorf("relabel builds = %d, want 1 for a single-group batch", ex.RelabelBuilds())
	}
	if ex.KernelRuns() != int64(len(reqs)) {
		t.Errorf("kernel runs = %d, want %d", ex.KernelRuns(), len(reqs))
	}
	// Mixed batches fail per item, not wholesale.
	bad := []Request{{Graph: "web", Kernel: "BFS"}, {Graph: "web", Kernel: "Nope"}}
	items = ex.RunBatch(context.Background(), bad)
	if items[0].Error != nil || items[1].Error == nil {
		t.Errorf("mixed batch: item0 err=%+v item1 err=%+v", items[0].Error, items[1].Error)
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	in := &cachedResult{
		res: registry.KernelResult{
			Kernel:  "PR",
			Summary: map[string]float64{"sum": 1.25, "max": 0.031, "iters": 20},
			Floats:  []float64{0.5, 0.25, 0.125, 0.0625},
		},
		method: "gorder", optKey: "abcd",
	}
	out, err := decodeResult(encodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
	for _, res := range []registry.KernelResult{
		{Kernel: "BFS", Summary: map[string]float64{"ecc": 4}, Int32s: []int32{0, 1, -1}},
		{Kernel: "NQ", Summary: map[string]float64{}, Int64s: []int64{9, 1 << 40}},
		{Kernel: "Tri", Summary: map[string]float64{"triangles": 12}},
	} {
		got, err := decodeResult(encodeResult(&cachedResult{res: res}))
		if err != nil {
			t.Fatalf("%s: %v", res.Kernel, err)
		}
		if !reflect.DeepEqual(&cachedResult{res: res}, got) {
			t.Errorf("%s round trip mismatch", res.Kernel)
		}
	}
	// Corruption in any region must error, never panic or misread.
	blob := encodeResult(in)
	for _, mut := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-3] },       // truncated
		func(b []byte) []byte { b[0] = 'X'; return b },      // magic
		func(b []byte) []byte { b[6] = 0xFF; return b },     // string length
		func(b []byte) []byte { return append(b, 1, 2, 3) }, // trailing junk
		// The u32 vector length sits just before the 4 float64s.
		func(b []byte) []byte { b[len(b)-33] = 0xEE; return b },
	} {
		b := append([]byte(nil), blob...)
		if _, err := decodeResult(mut(b)); err == nil {
			t.Error("corrupt blob decoded cleanly")
		}
	}
}

// TestMaterializedResultLifecycle: whole-graph results evicted from
// the in-memory LRU reload from the store with correct bytes; a
// corrupt store blob is dropped and recomputed.
func TestMaterializedResultLifecycle(t *testing.T) {
	// A budget that holds exactly one PR-sized result, so the second
	// kernel's result evicts the first.
	ex, st, _ := newTestExec(t, Config{ResultBudget: 4000})
	ctx := context.Background()
	first, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: "PR", Targets: []int{3}})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if st.ResultCount() != 1 {
		t.Fatalf("result artifacts = %d, want 1 after a whole-graph query", st.ResultCount())
	}
	if _, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: "Kcore"}); qerr != nil {
		t.Fatal(qerr)
	}
	// PR was evicted from the LRU; the repeat must be served from the
	// materialized artifact, not recomputed.
	runs := ex.KernelRuns()
	again, qerr := ex.Run(ctx, Request{Graph: "web", Kernel: "PR", Targets: []int{3}})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if ex.KernelRuns() != runs {
		t.Fatalf("kernel recomputed despite materialized artifact")
	}
	if !again.CacheHit || !again.Materialized {
		t.Fatalf("reload flags: hit=%v materialized=%v", again.CacheHit, again.Materialized)
	}
	if again.Values[0] != first.Values[0] || again.Ordering.Method != first.Ordering.Method {
		t.Fatalf("disk reload differs: %+v vs %+v", again, first)
	}

	// Corrupt the artifact on disk: the next cold read recomputes and
	// re-materializes, mirroring the store's corrupt-graph behavior.
	entries, err := os.ReadDir(filepath.Join(st.Dir(), "results"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(st.Dir(), "results", e.Name()),
			[]byte("bitrot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ex2, _, _ := newTestExec(t, Config{})
	ex2.cfg.Store = st // point the fresh executor at the corrupted store
	recomputed, qerr := ex2.Run(ctx, Request{Graph: "d1", Kernel: "PR", Targets: []int{3}})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if recomputed.CacheHit || ex2.KernelRuns() == 0 {
		t.Fatalf("corrupt artifact served: hit=%v runs=%d", recomputed.CacheHit, ex2.KernelRuns())
	}
	if recomputed.Values[0].Value != first.Values[0].Value {
		t.Errorf("recomputed value %v != original %v", recomputed.Values[0], first.Values[0])
	}
	if st.ResultCount() == 0 {
		t.Error("recomputed result not re-materialized")
	}
}

func TestTopKSelection(t *testing.T) {
	ex, _, g := newTestExec(t, Config{})
	// Natural order, so values match the oracle bit for bit (an ordered
	// run would differ by FP summation order — covered elsewhere).
	resp, qerr := ex.Run(context.Background(),
		Request{Graph: "web", Kernel: "PR", Top: 5, Order: "natural"})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if len(resp.Values) != 5 {
		t.Fatalf("top-5 returned %d values", len(resp.Values))
	}
	want := directResult(t, g, "PR", registry.KernelParams{})
	for i, v := range resp.Values {
		if v.Value != want.Value(v.Node) {
			t.Errorf("top[%d] node %d = %v, want %v", i, v.Node, v.Value, want.Value(v.Node))
		}
		if i > 0 && v.Value > resp.Values[i-1].Value {
			t.Errorf("top-K not descending at %d", i)
		}
	}
	// No vertex outside the selection beats the cutoff.
	cutoff := resp.Values[len(resp.Values)-1].Value
	selected := map[int]bool{}
	for _, v := range resp.Values {
		selected[v.Node] = true
	}
	for v := 0; v < g.NumNodes(); v++ {
		if !selected[v] && want.Value(v) > cutoff {
			t.Fatalf("vertex %d (%v) beats the top-K cutoff %v", v, want.Value(v), cutoff)
		}
	}
}

// TestQueryServesPinnedVersionDuringEdit: runOne pins a digest via
// Stat at admission; if a concurrent edit advances the name before
// the graph loads, the query must fall back to the pinned version's
// immutable ID and answer from that snapshot instead of 404ing.
func TestQueryServesPinnedVersionDuringEdit(t *testing.T) {
	g1 := gen.BarabasiAlbert(300, 3, 5)
	g2 := gen.BarabasiAlbert(400, 3, 6)
	src := newFakeSource()
	src.add("web", "d1", g1)
	src.graphs["d2"] = g2
	// The "edit" lands between the admission Stat and the graph load:
	// every Stat on "web" repoints the name at the new version.
	src.onStat = func() { src.names["web"] = "d2" }
	ex := New(Config{Source: src})

	source := 0
	resp, qerr := ex.Run(context.Background(), Request{Graph: "web", Kernel: "bfs", Source: &source})
	if qerr != nil {
		t.Fatalf("query during version advance: %d %s: %s", qerr.Status, qerr.Code, qerr.Message)
	}
	if resp.Graph != "d1" {
		t.Fatalf("served digest %q, want the pinned version d1", resp.Graph)
	}

	// The next request resolves the advanced name up front and serves
	// the new version.
	resp, qerr = ex.Run(context.Background(), Request{Graph: "web", Kernel: "bfs", Source: &source})
	if qerr != nil {
		t.Fatalf("query after version advance: %d %s: %s", qerr.Status, qerr.Code, qerr.Message)
	}
	if resp.Graph != "d2" {
		t.Fatalf("served digest %q, want the advanced version d2", resp.Graph)
	}
}
