// Package query is gorderd's ordered-kernel query tier: it executes
// registry kernels against stored graphs at request rates, serving
// each query over the best ordering available — the paper's thesis
// ("a good ordering makes the kernels fast") turned into a read path.
//
// The executor composes the repository's existing tiers instead of
// re-implementing them: kernels and their canonical parameter hashing
// come from internal/registry (the only dispatch-by-name site),
// graphs and ordering artifacts are pinned through internal/store,
// and results are cached in an LRU byte budget plus — for whole-graph
// kernels — materialized as store artifacts that survive restarts.
// Results always live in the caller's (natural) vertex ID space:
// sources are mapped forward through the ordering's permutation and
// result vectors mapped back, so the ordering in use is invisible in
// the payload and visible only in the response's ordering stanza and
// the latency.
package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gorder/internal/graph"
	"gorder/internal/order"
	"gorder/internal/registry"
	"gorder/internal/store"
)

// MaxBatch bounds one /query/batch submission, mirroring the job
// queue's bounded-FIFO discipline.
const MaxBatch = 256

// MaxTop bounds the top-K value selection a response will carry.
const MaxTop = 1000

// maxPageRankIters bounds per-request PR work so a single query cannot
// monopolize the read path.
const maxPageRankIters = 10000

// Default cache budgets (bytes) when the config leaves them zero.
const (
	DefaultResultBudget = 64 << 20
	DefaultGraphBudget  = 256 << 20
)

// Source is the graph-resolution surface the executor needs from the
// server's registry: cheap metadata lookup for validation and keying,
// and full resolution (possibly reloading an evicted graph) for
// compute. Both accept an ID or name reference.
type Source interface {
	// Stat resolves ref to its digest and vertex count without forcing
	// the graph resident.
	Stat(ref string) (digest string, nodes int, ok bool)
	// Resolve returns the natural-order graph and its digest, loading
	// it from the store if evicted.
	Resolve(ref string) (*graph.Graph, string, bool)
}

// Config wires an Executor.
type Config struct {
	Source Source
	// Store, when non-nil, supplies ordering artifacts (the "latest
	// cached artifact" fallback) and persists whole-graph results.
	Store *store.Store
	// ResultBudget and GraphBudget are LRU byte budgets for decoded
	// results and relabeled graphs; zero means the defaults.
	ResultBudget int64
	GraphBudget  int64
	// Workers is the goroutine count handed to kernels with a parallel
	// variant (> 1 engages the multicore engine; <= 1 keeps every
	// kernel serial). Scheduling only: parallel results are
	// parity-pinned to serial, so Workers is applied after cache
	// keying and never splits the result caches.
	Workers int
}

// Request is one kernel query.
type Request struct {
	// Graph references a registered graph by ID or name.
	Graph string `json:"graph"`
	// Kernel names a queryable registry kernel (case-insensitive).
	Kernel string `json:"kernel"`
	// Source is the traversal source for BFS/SP. Omitted, it defaults
	// to the graph's hub (max out-degree, lowest ID on ties) — resolved
	// on the natural-order graph so the cache key never depends on the
	// ordering in use.
	Source *int `json:"source,omitempty"`
	// Iters overrides the PR iteration count (<= 0 = kernel default).
	Iters int `json:"iters,omitempty"`
	// Order selects the ordering to execute over: empty = latest
	// stored artifact (else natural), "natural" = no reordering, or an
	// ordering method name whose artifact must already exist (queries
	// never compute orderings — that is the job queue's work).
	Order string `json:"order,omitempty"`
	// Top asks for the K largest per-vertex values (<= MaxTop).
	Top int `json:"top,omitempty"`
	// Targets asks for the values of specific vertices.
	Targets []int `json:"targets,omitempty"`
	// TimeoutMs caps this query's wall time (0 = server default).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// OrderingUsed reports which vertex ordering served a query.
type OrderingUsed struct {
	// Method is the ordering method ("gorder", ...) or "natural".
	Method string `json:"method"`
	// Key is the ordering artifact's canonical options key.
	Key string `json:"key,omitempty"`
	// Source says how the ordering was chosen: "explicit" (named in
	// the request), "latest" (newest stored artifact), "natural" (no
	// artifact available), or "cache" (result reused; Method/Key name
	// the ordering that originally computed it).
	Source string `json:"source"`
}

// Value is one per-vertex result entry, in natural vertex IDs.
type Value struct {
	Node  int     `json:"node"`
	Value float64 `json:"value"`
}

// Response is the answer to one Request.
type Response struct {
	Graph        string             `json:"graph"`
	Kernel       string             `json:"kernel"`
	ParamKey     string             `json:"param_key"`
	Ordering     OrderingUsed       `json:"ordering"`
	CacheHit     bool               `json:"cache_hit"`
	Materialized bool               `json:"materialized,omitempty"`
	Summary      map[string]float64 `json:"summary"`
	Values       []Value            `json:"values,omitempty"`
	ElapsedUs    int64              `json:"elapsed_us"`
}

// Error is a structured query failure, carrying the HTTP status the
// server layer should map it to.
type Error struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

func errf(status int, code, format string, args ...any) *Error {
	return &Error{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// Executor runs queries. Safe for concurrent use.
type Executor struct {
	cfg     Config
	results *byteLRU // resultKey -> *cachedResult
	graphs  *byteLRU // graphKey  -> *orderedGraph

	hubMu sync.Mutex
	hubs  map[string]int // digest -> hub vertex (natural IDs)

	scratch sync.Pool // *registry.QueryScratch

	kernelRuns       atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	materializedHits atomic.Int64
	relabelBuilds    atomic.Int64
	materializeFails atomic.Int64
	parallelRuns     map[string]*atomic.Int64 // kernel name -> multicore runs
}

// orderedGraph is a relabeled-graph cache entry: the graph in its
// ordering's ID space plus the permutation that maps natural IDs in.
type orderedGraph struct {
	g    *graph.Graph
	perm order.Permutation // nil for natural order
}

func (o *orderedGraph) memBytes() int64 {
	b := int64(o.g.NumNodes())*16 + o.g.NumEdges()*8
	return b + int64(len(o.perm))*4
}

// New returns an executor over cfg. cfg.Source is required.
func New(cfg Config) *Executor {
	if cfg.Source == nil {
		panic("query: Config.Source is required")
	}
	if cfg.ResultBudget <= 0 {
		cfg.ResultBudget = DefaultResultBudget
	}
	if cfg.GraphBudget <= 0 {
		cfg.GraphBudget = DefaultGraphBudget
	}
	par := make(map[string]*atomic.Int64)
	for _, k := range registry.Kernels() {
		if k.Query != nil && k.Parallel {
			par[k.Name] = new(atomic.Int64)
		}
	}
	return &Executor{
		cfg:          cfg,
		results:      newByteLRU(cfg.ResultBudget),
		graphs:       newByteLRU(cfg.GraphBudget),
		hubs:         make(map[string]int),
		scratch:      sync.Pool{New: func() any { return new(registry.QueryScratch) }},
		parallelRuns: par,
	}
}

// Run executes one query.
func (e *Executor) Run(ctx context.Context, req Request) (*Response, *Error) {
	var st groupState
	defer st.release(e)
	return e.runOne(ctx, req, &st)
}

// BatchItem is one slot of a batch response: exactly one of Response
// and Error is set, positionally matching the submitted queries.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    *Error    `json:"error,omitempty"`
}

// RunBatch executes a batch, coalescing queries against the same
// (graph, ordering) pair so graph residency, the relabeled graph, and
// the traversal scratch buffers are set up once per group rather than
// once per query. Items map 1:1 to reqs.
func (e *Executor) RunBatch(ctx context.Context, reqs []Request) []BatchItem {
	items := make([]BatchItem, len(reqs))
	// Group positionally by (digest, order). Unresolvable graphs fail
	// per-item, inside runOne, with the usual envelope.
	groups := make(map[string][]int)
	var groupOrder []string
	for i, req := range reqs {
		var key string
		if digest, _, ok := e.cfg.Source.Stat(req.Graph); ok {
			key = digest + "|" + req.Order
		} else {
			key = "?" + req.Graph + "|" + req.Order
		}
		if _, seen := groups[key]; !seen {
			groupOrder = append(groupOrder, key)
		}
		groups[key] = append(groups[key], i)
	}
	for _, key := range groupOrder {
		var st groupState
		for _, i := range groups[key] {
			resp, qerr := e.runOne(ctx, reqs[i], &st)
			if qerr != nil {
				items[i].Error = qerr
			} else {
				items[i].Response = resp
			}
		}
		st.release(e)
	}
	return items
}

// groupState carries the per-(graph, ordering) work a batch amortizes:
// the resolved natural graph, the relabeled graph and permutation, and
// the borrowed traversal scratch. The zero value is ready.
type groupState struct {
	natural *graph.Graph
	digest  string
	og      *orderedGraph
	used    OrderingUsed
	scratch *registry.QueryScratch
}

func (st *groupState) release(e *Executor) {
	if st.scratch != nil {
		e.scratch.Put(st.scratch)
		st.scratch = nil
	}
}

// runOne executes req, reusing whatever st has already resolved.
func (e *Executor) runOne(ctx context.Context, req Request, st *groupState) (*Response, *Error) {
	start := time.Now()

	k, ok := registry.LookupKernel(req.Kernel)
	if !ok {
		return nil, errf(404, "unknown_kernel", "unknown kernel %q; queryable kernels: %s",
			req.Kernel, strings.Join(registry.QueryableKernelNames(), " "))
	}
	if k.Query == nil {
		return nil, errf(400, "kernel_not_queryable",
			"kernel %q has order-dependent output and cannot be queried; queryable kernels: %s",
			k.Name, strings.Join(registry.QueryableKernelNames(), " "))
	}
	digest, nodes, ok := e.cfg.Source.Stat(req.Graph)
	if !ok {
		return nil, errf(404, "unknown_graph", "graph %q is not registered", req.Graph)
	}
	if req.Top < 0 || req.Top > MaxTop {
		return nil, errf(400, "invalid_params", "top must be in [0, %d], got %d", MaxTop, req.Top)
	}
	if req.Iters < 0 || req.Iters > maxPageRankIters {
		return nil, errf(400, "invalid_params", "iters must be in [0, %d], got %d",
			maxPageRankIters, req.Iters)
	}
	for _, t := range req.Targets {
		if t < 0 || t >= nodes {
			return nil, errf(400, "target_out_of_range",
				"target vertex %d out of range [0, %d)", t, nodes)
		}
	}

	params := registry.KernelParams{SPSource: -1, PageRankIters: req.Iters}
	if req.Source != nil {
		params.SPSource = *req.Source
	}
	if consumesSource(k) {
		if params.SPSource >= nodes {
			return nil, errf(400, "source_out_of_range",
				"source vertex %d out of range [0, %d)", params.SPSource, nodes)
		}
		if params.SPSource < 0 {
			hub, qerr := e.hubSource(req.Graph, digest, st)
			if qerr != nil {
				return nil, qerr
			}
			params.SPSource = hub
		}
	}

	params, paramKey, err := registry.KernelKey(k.Name, params)
	if err != nil {
		return nil, errf(400, "invalid_params", "%v", err)
	}
	kname := strings.ToLower(k.Name)
	resultKey := digest + "|" + kname + "|" + paramKey

	respond := func(c *cachedResult, used OrderingUsed, cacheHit, materialized bool) (*Response, *Error) {
		values, qerr := shapeValues(&c.res, req.Targets, req.Top)
		if qerr != nil {
			return nil, qerr
		}
		return &Response{
			Graph:        digest,
			Kernel:       k.Name,
			ParamKey:     paramKey,
			Ordering:     used,
			CacheHit:     cacheHit,
			Materialized: materialized,
			Summary:      c.res.Summary,
			Values:       values,
			ElapsedUs:    time.Since(start).Microseconds(),
		}, nil
	}

	if v, ok := e.results.get(resultKey); ok {
		e.cacheHits.Add(1)
		c := v.(*cachedResult)
		return respond(c, cachedOrdering(c), true, false)
	}
	if e.cfg.Store != nil && k.WholeGraph {
		if data, ok := e.cfg.Store.GetResult(digest, kname, paramKey); ok {
			if c, derr := decodeResult(data); derr == nil && c.res.Kernel == k.Name {
				e.materializedHits.Add(1)
				e.results.put(resultKey, c, c.memBytes())
				return respond(c, cachedOrdering(c), true, true)
			}
			// Undecodable blob (format drift): fall through and
			// recompute; the rewrite below replaces it.
		}
	}
	e.cacheMisses.Add(1)

	og, used, qerr := e.orderedGraphFor(req, digest, st)
	if qerr != nil {
		return nil, qerr
	}
	if err := ctx.Err(); err != nil {
		return nil, errf(504, "query_timeout", "query deadline exceeded before kernel ran")
	}

	runParams := params
	if consumesSource(k) && og.perm != nil {
		runParams.SPSource = int(og.perm[params.SPSource])
	}
	// Workers rides outside the cache key (parallel output is
	// parity-pinned to serial), so it is applied only now, after keying.
	if k.Parallel {
		runParams.Workers = e.cfg.Workers
	}
	if st.scratch == nil {
		st.scratch = e.scratch.Get().(*registry.QueryScratch)
	}
	res, kerr := k.Query(ctx, og.g, runParams, st.scratch)
	if kerr != nil {
		if ctx.Err() != nil {
			return nil, errf(504, "query_timeout", "query deadline exceeded mid-kernel: %v", kerr)
		}
		return nil, errf(400, "invalid_params", "%v", kerr)
	}
	e.kernelRuns.Add(1)
	if runParams.Workers > 1 {
		if c := e.parallelRuns[k.Name]; c != nil {
			c.Add(1)
		}
	}
	mapResultBack(&res, og.perm)

	c := &cachedResult{res: res}
	if used.Method != "natural" {
		c.method, c.optKey = used.Method, used.Key
	}
	e.results.put(resultKey, c, c.memBytes())
	if e.cfg.Store != nil && k.WholeGraph {
		if err := e.cfg.Store.PutResult(digest, kname, paramKey, encodeResult(c)); err != nil {
			e.materializeFails.Add(1)
		}
	}
	return respond(c, used, false, false)
}

// hubSource resolves (and caches per digest) the default traversal
// source on the natural-order graph.
func (e *Executor) hubSource(ref, digest string, st *groupState) (int, *Error) {
	e.hubMu.Lock()
	hub, ok := e.hubs[digest]
	e.hubMu.Unlock()
	if ok {
		return hub, nil
	}
	g, qerr := e.naturalGraph(ref, digest, st)
	if qerr != nil {
		return 0, qerr
	}
	if g.NumNodes() == 0 {
		return 0, errf(400, "source_out_of_range", "graph %s has no vertices", digest)
	}
	hub = int(registry.HubSource(g))
	e.hubMu.Lock()
	e.hubs[digest] = hub
	e.hubMu.Unlock()
	return hub, nil
}

// naturalGraph resolves the natural-order graph into st. The digest
// was pinned at admission; if a concurrent edit advanced ref to a
// newer version since, the pinned version is still registered under
// its immutable ID, so fall back to resolving by digest — each query
// serves a consistent snapshot instead of 404ing mid-edit.
func (e *Executor) naturalGraph(ref, digest string, st *groupState) (*graph.Graph, *Error) {
	if st.natural != nil && st.digest == digest {
		return st.natural, nil
	}
	g, d, ok := e.cfg.Source.Resolve(ref)
	if !ok || d != digest {
		g, d, ok = e.cfg.Source.Resolve(digest)
		if !ok || d != digest {
			return nil, errf(404, "unknown_graph", "graph %q is no longer loadable", ref)
		}
	}
	st.natural, st.digest = g, digest
	return g, nil
}

// orderedGraphFor resolves which ordering serves req and returns the
// graph relabeled into it (cached under the executor's graph budget),
// reusing st's resolution when the batch group already did this work.
func (e *Executor) orderedGraphFor(req Request, digest string, st *groupState) (*orderedGraph, OrderingUsed, *Error) {
	if st.og != nil && st.digest == digest {
		return st.og, st.used, nil
	}
	method, optKey, srcTag, qerr := e.chooseOrdering(digest, req.Order)
	if qerr != nil {
		return nil, OrderingUsed{}, qerr
	}
	used := OrderingUsed{Method: method, Key: optKey, Source: srcTag}

	g, qerr := e.naturalGraph(req.Graph, digest, st)
	if qerr != nil {
		return nil, OrderingUsed{}, qerr
	}
	if method == "natural" {
		st.og, st.used = &orderedGraph{g: g}, used
		return st.og, used, nil
	}

	graphKey := digest + "|" + method + "|" + optKey
	if v, ok := e.graphs.get(graphKey); ok {
		st.og, st.used = v.(*orderedGraph), used
		return st.og, used, nil
	}
	perm, ok := e.cfg.Store.GetOrder(digest, method, optKey, g.NumNodes())
	if !ok && req.Order == "" {
		// A repair job can replace the latest artifact between
		// chooseOrdering listing it and the read here; re-choose once
		// against the current latest before giving up.
		if method, optKey, _, qerr = e.chooseOrdering(digest, req.Order); qerr != nil {
			return nil, OrderingUsed{}, qerr
		}
		used = OrderingUsed{Method: method, Key: optKey, Source: srcTag}
		if method == "natural" {
			st.og, st.used = &orderedGraph{g: g}, used
			return st.og, used, nil
		}
		graphKey = digest + "|" + method + "|" + optKey
		if v, cached := e.graphs.get(graphKey); cached {
			st.og, st.used = v.(*orderedGraph), used
			return st.og, used, nil
		}
		perm, ok = e.cfg.Store.GetOrder(digest, method, optKey, g.NumNodes())
	}
	if !ok {
		return nil, OrderingUsed{}, errf(409, "order_not_ready",
			"ordering artifact %s/%s for graph %s is gone; re-run the ordering job",
			method, optKey, digest)
	}
	og := &orderedGraph{g: g.Relabel(perm), perm: perm}
	e.relabelBuilds.Add(1)
	e.graphs.put(graphKey, og, og.memBytes())
	st.og, st.used = og, used
	return og, used, nil
}

// chooseOrdering implements the ordering-selection policy: explicit
// method → its latest stored artifact (409 if absent — the read path
// never computes orderings); empty → latest artifact of any method,
// else natural; "natural" → natural.
func (e *Executor) chooseOrdering(digest, orderReq string) (method, optKey, srcTag string, qerr *Error) {
	switch {
	case orderReq == "natural":
		return "natural", "", "natural", nil
	case orderReq == "":
		if e.cfg.Store != nil {
			if m, k, ok := e.cfg.Store.LatestOrder(digest, ""); ok {
				return m, k, "latest", nil
			}
		}
		return "natural", "", "natural", nil
	default:
		desc, ok := registry.Lookup(orderReq)
		if !ok {
			return "", "", "", errf(400, "unknown_order",
				"unknown ordering %q; methods: natural %s",
				orderReq, strings.Join(registry.MethodNames(), " "))
		}
		m := strings.ToLower(desc.Name)
		if e.cfg.Store != nil {
			if _, k, ok := e.cfg.Store.LatestOrder(digest, m); ok {
				return m, k, "explicit", nil
			}
		}
		return "", "", "", errf(409, "order_not_ready",
			"no %s ordering artifact for graph %s; submit an ordering job first", m, digest)
	}
}

// cachedOrdering reports a cached result's provenance.
func cachedOrdering(c *cachedResult) OrderingUsed {
	if c.method == "" {
		return OrderingUsed{Method: "natural", Source: "cache"}
	}
	return OrderingUsed{Method: c.method, Key: c.optKey, Source: "cache"}
}

// consumesSource reports whether k's Query reads a traversal source.
func consumesSource(k registry.Kernel) bool {
	for _, f := range k.QueryConsumes {
		if f == registry.KOptSource {
			return true
		}
	}
	return false
}

// mapResultBack relabels res's per-vertex vector from the ordering's
// ID space back to natural IDs (out[v] = vec[perm[v]]), in place.
func mapResultBack(res *registry.KernelResult, perm order.Permutation) {
	if perm == nil {
		return
	}
	switch {
	case res.Int32s != nil:
		out := make([]int32, len(res.Int32s))
		for v := range out {
			out[v] = res.Int32s[perm[v]]
		}
		res.Int32s = out
	case res.Int64s != nil:
		out := make([]int64, len(res.Int64s))
		for v := range out {
			out[v] = res.Int64s[perm[v]]
		}
		res.Int64s = out
	case res.Floats != nil:
		out := make([]float64, len(res.Floats))
		for v := range out {
			out[v] = res.Floats[perm[v]]
		}
		res.Floats = out
	}
}

// shapeValues selects the response's value entries: explicit targets
// win, else the top-K by value (descending, vertex ID ascending on
// ties), else none — whole vectors are served from materialized
// artifacts, not JSON.
func shapeValues(res *registry.KernelResult, targets []int, top int) ([]Value, *Error) {
	n := res.VectorLen()
	if len(targets) > 0 {
		if n == 0 {
			return nil, errf(400, "invalid_params",
				"kernel %s has no per-vertex values", res.Kernel)
		}
		out := make([]Value, len(targets))
		for i, t := range targets {
			if t >= n {
				return nil, errf(400, "target_out_of_range",
					"target vertex %d out of range [0, %d)", t, n)
			}
			out[i] = Value{Node: t, Value: res.Value(t)}
		}
		return out, nil
	}
	if top <= 0 || n == 0 {
		return nil, nil
	}
	if top > n {
		top = n
	}
	// O(n·K) selection: K is capped small, n can be millions.
	sel := make([]Value, 0, top)
	minIdx := -1
	for v := 0; v < n; v++ {
		val := res.Value(v)
		if len(sel) < top {
			sel = append(sel, Value{Node: v, Value: val})
			if minIdx < 0 || val < sel[minIdx].Value {
				minIdx = len(sel) - 1
			}
			continue
		}
		if val <= sel[minIdx].Value {
			continue
		}
		sel[minIdx] = Value{Node: v, Value: val}
		minIdx = 0
		for i := 1; i < len(sel); i++ {
			if sel[i].Value < sel[minIdx].Value {
				minIdx = i
			}
		}
	}
	sort.Slice(sel, func(i, j int) bool {
		if sel[i].Value != sel[j].Value {
			return sel[i].Value > sel[j].Value
		}
		return sel[i].Node < sel[j].Node
	})
	return sel, nil
}

// InvalidateOrdering drops the relabeled-graph cache entry for one
// ordering artifact. The daemon calls it after a repair job replaces
// the stored permutation for (digest, method, optKey): subsequent
// queries naming that ordering rebuild the relabeled graph from the
// repaired artifact instead of serving the superseded layout. Cached
// results need no invalidation — result keys carry no ordering and
// result vectors live in natural vertex IDs, so they are correct under
// any permutation of the same digest.
func (e *Executor) InvalidateOrdering(digest, method, optKey string) {
	e.graphs.remove(digest + "|" + method + "|" + optKey)
}

// ---- metrics ------------------------------------------------------------

// KernelRuns returns how many kernel executions the executor has paid.
func (e *Executor) KernelRuns() int64 { return e.kernelRuns.Load() }

// CacheHits returns in-memory result-cache hits.
func (e *Executor) CacheHits() int64 { return e.cacheHits.Load() }

// CacheMisses returns result-cache misses (compute or disk reload).
func (e *Executor) CacheMisses() int64 { return e.cacheMisses.Load() }

// MaterializedHits returns results served from store artifacts.
func (e *Executor) MaterializedHits() int64 { return e.materializedHits.Load() }

// RelabelBuilds returns how many relabeled graphs were constructed.
func (e *Executor) RelabelBuilds() int64 { return e.relabelBuilds.Load() }

// MaterializeFails returns failed result-artifact writes.
func (e *Executor) MaterializeFails() int64 { return e.materializeFails.Load() }

// ParallelRuns returns how many times the named kernel ran on the
// multicore engine (0 for kernels without a parallel variant).
func (e *Executor) ParallelRuns(kernel string) int64 {
	if c := e.parallelRuns[kernel]; c != nil {
		return c.Load()
	}
	return 0
}

// Workers reports the executor's configured kernel worker count.
func (e *Executor) Workers() int { return e.cfg.Workers }

// ResultCacheBytes returns the result LRU's current footprint.
func (e *Executor) ResultCacheBytes() int64 {
	_, b, _ := e.results.stats()
	return b
}

// GraphCacheBytes returns the relabeled-graph LRU's current footprint.
func (e *Executor) GraphCacheBytes() int64 {
	_, b, _ := e.graphs.stats()
	return b
}
