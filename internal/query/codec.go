package query

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"gorder/internal/registry"
)

// The materialization codec: a kernel result plus the ordering that
// computed it, encoded as a little-endian blob the store persists
// verbatim. Results are stored in the caller's (natural) ID space, so
// a blob written under one ordering satisfies queries served under any
// other — the ordering fields exist only so responses can report what
// did the work. The store's CRC covers bit-rot; decode errors here
// mean a format change and read as a cache miss, never a failure.

// codecMagic versions the blob layout.
const codecMagic = "GQR1"

// vector-kind tags.
const (
	vecNone byte = iota
	vecInt32
	vecInt64
	vecFloat64
)

// cachedResult is what the result cache and the materialization codec
// carry: the natural-ID-space result and the ordering that produced it.
type cachedResult struct {
	res    registry.KernelResult
	method string // ordering method that computed it ("" = natural)
	optKey string
}

func (c *cachedResult) memBytes() int64 {
	return c.res.MemBytes() + int64(len(c.method)+len(c.optKey)) + 32
}

func encodeResult(c *cachedResult) []byte {
	var buf bytes.Buffer
	buf.WriteString(codecMagic)
	writeString(&buf, c.res.Kernel)
	writeString(&buf, c.method)
	writeString(&buf, c.optKey)

	keys := make([]string, 0, len(c.res.Summary))
	for k := range c.res.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeU32(&buf, uint32(len(keys)))
	for _, k := range keys {
		writeString(&buf, k)
		writeU64(&buf, math.Float64bits(c.res.Summary[k]))
	}

	switch {
	case c.res.Int32s != nil:
		buf.WriteByte(vecInt32)
		writeU32(&buf, uint32(len(c.res.Int32s)))
		for _, v := range c.res.Int32s {
			writeU32(&buf, uint32(v))
		}
	case c.res.Int64s != nil:
		buf.WriteByte(vecInt64)
		writeU32(&buf, uint32(len(c.res.Int64s)))
		for _, v := range c.res.Int64s {
			writeU64(&buf, uint64(v))
		}
	case c.res.Floats != nil:
		buf.WriteByte(vecFloat64)
		writeU32(&buf, uint32(len(c.res.Floats)))
		for _, v := range c.res.Floats {
			writeU64(&buf, math.Float64bits(v))
		}
	default:
		buf.WriteByte(vecNone)
	}
	return buf.Bytes()
}

func decodeResult(data []byte) (*cachedResult, error) {
	r := &byteReader{data: data}
	if string(r.take(len(codecMagic))) != codecMagic {
		return nil, fmt.Errorf("result blob: bad magic")
	}
	c := &cachedResult{}
	c.res.Kernel = r.str()
	c.method = r.str()
	c.optKey = r.str()

	nsum := int(r.u32())
	if r.err == nil && nsum > len(data) {
		return nil, fmt.Errorf("result blob: summary count %d exceeds blob", nsum)
	}
	c.res.Summary = make(map[string]float64, nsum)
	for i := 0; i < nsum && r.err == nil; i++ {
		k := r.str()
		c.res.Summary[k] = math.Float64frombits(r.u64())
	}

	kind := r.byte()
	if kind != vecNone {
		n := int(r.u32())
		if r.err == nil && n > len(data) {
			return nil, fmt.Errorf("result blob: vector length %d exceeds blob", n)
		}
		switch kind {
		case vecInt32:
			vec := make([]int32, n)
			for i := range vec {
				vec[i] = int32(r.u32())
			}
			c.res.Int32s = vec
		case vecInt64:
			vec := make([]int64, n)
			for i := range vec {
				vec[i] = int64(r.u64())
			}
			c.res.Int64s = vec
		case vecFloat64:
			vec := make([]float64, n)
			for i := range vec {
				vec[i] = math.Float64frombits(r.u64())
			}
			c.res.Floats = vec
		default:
			return nil, fmt.Errorf("result blob: unknown vector kind %d", kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != r.off {
		return nil, fmt.Errorf("result blob: %d trailing bytes", len(r.data)-r.off)
	}
	return c, nil
}

// ---- little-endian primitives -------------------------------------------

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeString(buf *bytes.Buffer, s string) {
	writeU32(buf, uint32(len(s)))
	buf.WriteString(s)
}

// byteReader is a bounds-checked cursor: the first short read latches
// err and every later read returns zeros, so decode loops stay simple.
type byteReader struct {
	data []byte
	off  int
	err  error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		if r.err == nil {
			r.err = fmt.Errorf("result blob: truncated at offset %d", r.off)
		}
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *byteReader) str() string {
	n := int(r.u32())
	if r.err == nil && n > len(r.data)-r.off {
		r.err = fmt.Errorf("result blob: string length %d exceeds blob", n)
		return ""
	}
	return string(r.take(n))
}
