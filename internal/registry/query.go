package registry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"gorder/internal/algos"
	"gorder/internal/exec"
	"gorder/internal/graph"
)

// This file is the kernel catalog's query surface: the result type,
// canonical parameter hashing, and the per-kernel Query entry points
// the internal/query tier executes. Like ordering computation, every
// kernel-by-name decision stays inside this package — internal/query
// and internal/server only resolve descriptors through LookupKernel
// (CI greps that neither imports internal/algos directly).

// KernelResult is the value a queryable kernel produces: a scalar
// summary plus at most one per-vertex vector, indexed by the vertex
// IDs of the graph the kernel ran on. The query tier relabels vectors
// back to the caller's ID space, caches them, and materializes
// whole-graph results as store artifacts.
type KernelResult struct {
	// Kernel is the canonical kernel name ("BFS", "PR", ...).
	Kernel string
	// Summary holds the kernel's scalar outputs (reached count,
	// eccentricity, triangle count, ...). Always non-nil.
	Summary map[string]float64
	// At most one of the vectors is non-nil.
	Int32s []int32
	Int64s []int64
	Floats []float64
}

// MemBytes estimates the result's in-memory footprint, for the query
// tier's LRU byte accounting.
func (r *KernelResult) MemBytes() int64 {
	const entryOverhead = 64
	b := int64(entryOverhead + 48*len(r.Summary))
	b += 4 * int64(len(r.Int32s))
	b += 8 * int64(len(r.Int64s))
	b += 8 * int64(len(r.Floats))
	return b
}

// VectorLen returns the length of the result's per-vertex vector, or
// 0 for summary-only results.
func (r *KernelResult) VectorLen() int {
	switch {
	case r.Int32s != nil:
		return len(r.Int32s)
	case r.Int64s != nil:
		return len(r.Int64s)
	case r.Floats != nil:
		return len(r.Floats)
	}
	return 0
}

// Value returns the vector entry for vertex v as a float64 (distances
// and core numbers widen exactly; NQ sums stay well under 2^53).
func (r *KernelResult) Value(v int) float64 {
	switch {
	case r.Int32s != nil:
		return float64(r.Int32s[v])
	case r.Int64s != nil:
		return float64(r.Int64s[v])
	case r.Floats != nil:
		return r.Floats[v]
	}
	return 0
}

// QueryScratch holds the reusable traversal buffers a queryable
// kernel may borrow, so a batch of same-graph queries pays the
// frontier-buffer setup once instead of per request. The zero value
// is ready; not safe for concurrent use.
type QueryScratch struct {
	dist  []int32        // full length, all Unreached between calls
	queue []graph.NodeID // visit-order buffer, reused for capacity
	par   exec.Scratch   // parallel engine buffers (frontiers, contribs)
}

// buffers returns the distance and queue buffers sized for n
// vertices. The distance buffer's entries are all Unreached; callers
// must restore that invariant (reset exactly the entries they wrote)
// before returning.
func (s *QueryScratch) buffers(n int) ([]int32, []graph.NodeID) {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		for i := range s.dist {
			s.dist[i] = algos.Unreached
		}
	}
	return s.dist[:n], s.queue[:0]
}

// KernelOptionField names one KernelParams field in a kernel's
// QueryConsumes list.
type KernelOptionField string

// The KernelParams fields a queryable kernel can consume.
const (
	// KOptSource is the traversal source (KernelParams.SPSource).
	KOptSource KernelOptionField = "source"
	// KOptIters is the PageRank iteration count.
	KOptIters KernelOptionField = "iters"
	// KOptWorkers is the parallel-engine goroutine count
	// (KernelParams.Workers). Consumed but never keyed: parallel
	// results are parity-pinned to serial, so the same cache entry
	// serves any worker count.
	KOptWorkers KernelOptionField = "workers"
)

// CanonicalKernelParams normalizes p for the named kernel: fields the
// kernel's Query does not consume are zeroed and consumed fields left
// at their documented-default sentinel are replaced by the default, so
// every spelling of the same effective query maps to one KernelParams
// value — the property the result caches key on. The source field is
// kept as given (the query tier resolves the hub default against the
// natural-order graph before keying, so the key never depends on the
// ordering in use).
func CanonicalKernelParams(name string, p KernelParams) (KernelParams, error) {
	k, ok := LookupKernel(name)
	if !ok {
		return KernelParams{}, fmt.Errorf("unknown kernel %q", name)
	}
	var c KernelParams
	for _, f := range k.QueryConsumes {
		switch f {
		case KOptSource:
			c.SPSource = p.SPSource
		case KOptIters:
			c.PageRankIters = p.PageRankIters
			if c.PageRankIters <= 0 {
				c.PageRankIters = algos.DefaultPageRankIters
			}
		case KOptWorkers:
			// Scheduling only — canonically zero. The execution layer
			// re-applies its Workers setting after keying, so parallel
			// and serial runs share one cache entry (their results are
			// parity-pinned).
		}
	}
	return c, nil
}

// KernelKey returns the canonical params plus a short stable digest of
// (canonical kernel, canonical params) — the suffix the query result
// caches and store artifacts are keyed with, mirroring OptionsKey for
// ordering artifacts.
func KernelKey(name string, p KernelParams) (KernelParams, string, error) {
	c, err := CanonicalKernelParams(name, p)
	if err != nil {
		return KernelParams{}, "", err
	}
	k, _ := LookupKernel(name)
	enc := fmt.Sprintf("%s|src=%d|it=%d",
		strings.ToLower(k.Name), c.SPSource, c.PageRankIters)
	sum := sha256.Sum256([]byte(enc))
	return c, hex.EncodeToString(sum[:4]), nil
}

// QueryableKernelNames returns the canonical names of the kernels the
// query tier can serve, sorted.
func QueryableKernelNames() []string {
	var out []string
	for _, k := range kernels {
		if k.Query != nil {
			out = append(out, k.Name)
		}
	}
	return out
}

// HubSource resolves the default (-1) traversal source the way the SP
// kernel does: the vertex with the largest out-degree, lowest ID on
// ties. The query tier calls this on the natural-order graph, so the
// resolved source names the same logical vertex whatever ordering
// serves the query.
func HubSource(g *graph.Graph) graph.NodeID {
	return spSource(g, KernelParams{SPSource: -1})
}

// checkSource validates a per-source kernel's resolved source.
func checkSource(g *graph.Graph, p KernelParams) (graph.NodeID, error) {
	if p.SPSource < 0 || p.SPSource >= g.NumNodes() {
		return 0, fmt.Errorf("source %d out of range [0, %d)", p.SPSource, g.NumNodes())
	}
	return graph.NodeID(p.SPSource), nil
}

// ---- per-kernel query entry points --------------------------------------

// parScratch borrows the parallel-engine buffers from s, tolerating a
// nil scratch (the exec kernels allocate their own then).
func parScratch(s *QueryScratch) *exec.Scratch {
	if s == nil {
		return nil
	}
	return &s.par
}

func queryBFS(ctx context.Context, g *graph.Graph, p KernelParams, s *QueryScratch) (KernelResult, error) {
	src, err := checkSource(g, p)
	if err != nil {
		return KernelResult{}, err
	}
	if p.Workers > 1 {
		dist, reached, err := exec.DOBFS(ctx, g, src, p.Workers, parScratch(s))
		if err != nil {
			return KernelResult{}, err
		}
		var ecc int32
		for _, d := range dist {
			if d > ecc {
				ecc = d
			}
		}
		return KernelResult{
			Kernel:  "BFS",
			Summary: map[string]float64{"reached": float64(reached), "ecc": float64(ecc)},
			Int32s:  dist,
		}, nil
	}
	n := g.NumNodes()
	dist, queue := s.buffers(n)
	queue = algos.BFSFromInto(g, src, dist, queue)
	out := make([]int32, n)
	for i := range out {
		out[i] = algos.Unreached
	}
	var ecc int32
	for _, v := range queue {
		out[v] = dist[v]
		if dist[v] > ecc {
			ecc = dist[v]
		}
		dist[v] = algos.Unreached // restore the scratch invariant
	}
	reached := len(queue)
	s.queue = queue[:0]
	return KernelResult{
		Kernel:  "BFS",
		Summary: map[string]float64{"reached": float64(reached), "ecc": float64(ecc)},
		Int32s:  out,
	}, nil
}

func querySP(ctx context.Context, g *graph.Graph, p KernelParams, s *QueryScratch) (KernelResult, error) {
	src, err := checkSource(g, p)
	if err != nil {
		return KernelResult{}, err
	}
	var dist []int32
	if p.Workers > 1 {
		dist, err = exec.ShortestPaths(ctx, g, src, p.Workers, parScratch(s))
		if err != nil {
			return KernelResult{}, err
		}
	} else {
		dist = algos.BellmanFord(g, src)
	}
	var ecc int32
	reached := 0
	for _, d := range dist {
		if d == algos.Unreached {
			continue
		}
		reached++
		if d > ecc {
			ecc = d
		}
	}
	return KernelResult{
		Kernel:  "SP",
		Summary: map[string]float64{"reached": float64(reached), "ecc": float64(ecc)},
		Int32s:  dist,
	}, nil
}

func queryPR(ctx context.Context, g *graph.Graph, p KernelParams, s *QueryScratch) (KernelResult, error) {
	iters := p.PageRankIters
	if iters <= 0 {
		iters = algos.DefaultPageRankIters
	}
	var rank []float64
	if p.Workers > 1 {
		var err error
		rank, err = exec.PageRank(ctx, g, iters, algos.DefaultDamping, p.Workers, parScratch(s))
		if err != nil {
			return KernelResult{}, err
		}
	} else {
		rank = algos.PageRank(g, iters, algos.DefaultDamping)
	}
	var sum, max float64
	for _, r := range rank {
		sum += r
		if r > max {
			max = r
		}
	}
	return KernelResult{
		Kernel:  "PR",
		Summary: map[string]float64{"iters": float64(iters), "sum": sum, "max": max},
		Floats:  rank,
	}, nil
}

func queryKcore(_ context.Context, g *graph.Graph, _ KernelParams, _ *QueryScratch) (KernelResult, error) {
	core := algos.CoreNumbers(g)
	var max int32
	for _, c := range core {
		if c > max {
			max = c
		}
	}
	return KernelResult{
		Kernel:  "Kcore",
		Summary: map[string]float64{"max_core": float64(max)},
		Int32s:  core,
	}, nil
}

func queryNQ(_ context.Context, g *graph.Graph, _ KernelParams, _ *QueryScratch) (KernelResult, error) {
	q := algos.NeighbourQuery(g)
	var sum, max int64
	for _, v := range q {
		sum += v
		if v > max {
			max = v
		}
	}
	return KernelResult{
		Kernel:  "NQ",
		Summary: map[string]float64{"sum": float64(sum), "max": float64(max)},
		Int64s:  q,
	}, nil
}

func queryTri(ctx context.Context, g *graph.Graph, p KernelParams, s *QueryScratch) (KernelResult, error) {
	var tri int64
	if p.Workers > 1 {
		var err error
		tri, err = exec.TriangleCount(ctx, g, p.Workers, parScratch(s))
		if err != nil {
			return KernelResult{}, err
		}
	} else {
		tri = algos.TriangleCount(g)
	}
	return KernelResult{
		Kernel:  "Tri",
		Summary: map[string]float64{"triangles": float64(tri)},
	}, nil
}
