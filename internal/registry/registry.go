// Package registry is the single source of truth for the vertex
// orderings and benchmark kernels the repo exposes. Every consumer —
// the cmd/ tools via internal/cli, the experiment harness in
// internal/bench, the gorderd service in internal/server, and the
// public facade — resolves names through the catalogs here, so adding
// an ordering or a kernel is one descriptor in one file and every
// execution path (including cancellation and instrumentation) picks it
// up for free.
//
// The ordering catalog is alphabetised and enumerable; lookups are
// case-insensitive over canonical names and aliases. Each descriptor
// carries capability metadata (stochastic, cancellable, cost class) so
// services can advertise what a method will do before running it, and
// every computation funnels through one instrumented code path
// (ComputeObserved) that reports wall time and cancellation outcome.
package registry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gorder/internal/core"
	"gorder/internal/graph"
	"gorder/internal/order"
)

// GorderName is the canonical name of the paper's contribution, the
// ordering every relative-runtime figure normalises against.
const GorderName = "Gorder"

// DefaultLDGBins is the LDG bin capacity both papers use: 64, so one
// bin matches a cache line of 4-byte entries.
const DefaultLDGBins = 64

// Options is the unified parameter set every ordering draws from.
// Each method reads only the fields it understands; zero values select
// the documented defaults, so the zero Options is always valid.
type Options struct {
	// Window is the Gorder window size w (0 = core.DefaultWindow).
	Window int
	// HubThreshold is the Gorder hub-skip threshold (0 = exact scores
	// for Gorder; for Gorder-Partitioned, 0 = the partitioned default
	// and negative forces exact scores).
	HubThreshold int
	// Seed drives the stochastic methods (Random, MinLA, MinLogA).
	Seed uint64
	// LDGBins is the LDG bin capacity (0 = DefaultLDGBins).
	LDGBins int
	// Workers bounds the goroutines of the parallel methods (BOBA,
	// DBG, HubSort, HubCluster, Gorder-Partitioned); <= 0 selects
	// GOMAXPROCS. Pure scheduling: it never changes the permutation,
	// so CanonicalOptions drops it and artifact caches ignore it.
	Workers int
	// Partitions is the Gorder-Partitioned partition count
	// (0 = core.DefaultPartitions). Unlike Workers it is part of the
	// result and therefore of the cache key.
	Partitions int
}

func (o Options) ldgBins() int {
	if o.LDGBins <= 0 {
		return DefaultLDGBins
	}
	return o.LDGBins
}

func (o Options) partitions() int {
	if o.Partitions <= 0 {
		return core.DefaultPartitions
	}
	return o.Partitions
}

func (o Options) gorder() core.Options {
	return core.Options{Window: o.Window, HubThreshold: o.HubThreshold}
}

// OptionField names one Options field in an Ordering's Consumes list.
type OptionField string

// The Options fields a method can consume.
const (
	OptWindow     OptionField = "window"
	OptHub        OptionField = "hub"
	OptSeed       OptionField = "seed"
	OptLDGBins    OptionField = "ldg_bins"
	OptWorkers    OptionField = "workers"
	OptPartitions OptionField = "partitions"
)

// CanonicalOptions normalizes o for the named ordering: fields the
// method does not consume are zeroed, and consumed fields left at
// their zero value are replaced by the documented default. Every
// spelling of the same effective parameters therefore maps to one
// Options value — the property artifact caches key on.
//
// OptWorkers is special: the parallel methods consume it for
// scheduling, but every worker count produces the bit-identical
// permutation (pinned by their determinism tests), so the canonical
// form always carries Workers == 0 and cached artifacts are shared
// across worker spellings.
func CanonicalOptions(name string, o Options) (Options, error) {
	desc, ok := Lookup(name)
	if !ok {
		return Options{}, fmt.Errorf("unknown ordering %q (known: %s)",
			name, strings.Join(MethodNames(), " "))
	}
	var c Options
	for _, f := range desc.Consumes {
		switch f {
		case OptWindow:
			c.Window = o.Window
			if c.Window <= 0 {
				c.Window = core.DefaultWindow
			}
		case OptHub:
			c.HubThreshold = o.HubThreshold
		case OptSeed:
			c.Seed = o.Seed
		case OptLDGBins:
			c.LDGBins = o.ldgBins()
		case OptWorkers:
			// Scheduling only — canonically zero; see above.
		case OptPartitions:
			c.Partitions = o.partitions()
		}
	}
	return c, nil
}

// OptionsKey returns the canonical options plus a short stable digest
// of (canonical method, canonical options) — the cache key suffix
// internal/store names ordering artifacts with. Two requests share a
// key exactly when the registry would compute the same permutation
// for them (modulo stochastic methods, whose seed is part of the key).
func OptionsKey(name string, o Options) (Options, string, error) {
	c, err := CanonicalOptions(name, o)
	if err != nil {
		return Options{}, "", err
	}
	desc, _ := Lookup(name)
	// Workers is intentionally absent: it never changes the permutation.
	enc := fmt.Sprintf("%s|w=%d|h=%d|s=%d|b=%d|p=%d",
		strings.ToLower(desc.Name), c.Window, c.HubThreshold, c.Seed, c.LDGBins, c.Partitions)
	sum := sha256.Sum256([]byte(enc))
	return c, hex.EncodeToString(sum[:4]), nil
}

// CostClass is the coarse cost label of an ordering, so callers can
// pick deadlines (and users can pick methods) without benchmarking.
type CostClass string

const (
	// CostTrivial orderings are O(n) with tiny constants (Original, Random).
	CostTrivial CostClass = "trivial"
	// CostCheap orderings are one pass over the edges (degree sorts, traversals).
	CostCheap CostClass = "cheap"
	// CostModerate orderings do a few passes or keep per-bin state.
	CostModerate CostClass = "moderate"
	// CostExpensive orderings run an optimisation loop that dominates
	// every kernel's runtime (Gorder, simulated annealing).
	CostExpensive CostClass = "expensive"
)

// ComputeFunc computes a permutation of g under opt, honouring ctx as
// far as the method's Cancellable flag promises.
type ComputeFunc func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error)

// Ordering describes one catalog entry: the canonical (display) name,
// accepted aliases, capability metadata, and the computation itself.
type Ordering struct {
	// Name is the canonical display name ("Gorder", "MinLA", ...).
	// The lowercase form is the CLI/API spelling; lookups accept any case.
	Name string
	// Aliases are additional accepted lookup names (lowercase).
	Aliases []string
	// Stochastic methods consume Options.Seed; deterministic ones ignore it.
	Stochastic bool
	// Cancellable methods check ctx inside their main loop and return
	// promptly once it is done. Non-cancellable methods only refuse to
	// start on an already-done context.
	Cancellable bool
	// Cost is the coarse cost class.
	Cost CostClass
	// Consumes lists the Options fields the method actually reads.
	// CanonicalOptions zeroes everything else, so artifact caches do
	// not split on parameters the method ignores. Stochastic methods
	// must list OptSeed (the catalog test enforces this).
	Consumes []OptionField
	// Compute runs the method. Use the package-level Compute /
	// ComputeObserved to get instrumentation and name resolution.
	Compute ComputeFunc
}

// startChecked wraps a method that cannot be interrupted: the context
// is consulted once, before any work starts, so a deadline still
// bounds queue-to-start latency.
func startChecked(f func(g *graph.Graph, opt Options) order.Permutation) ComputeFunc {
	return func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return f(g, opt), nil
	}
}

// orderings is the catalog, alphabetised by case-insensitive name.
// THIS IS THE ONLY ORDERING-DISPATCH SITE IN THE REPOSITORY: every
// name-to-implementation decision happens by lookup into this slice.
var orderings = []Ordering{
	{
		Name: "BOBA", Cancellable: true, Cost: CostCheap,
		Consumes: []OptionField{OptWorkers},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			return order.BOBACtx(ctx, g, opt.Workers)
		},
	},
	{
		Name: "ChDFS", Cost: CostCheap,
		Compute: startChecked(func(g *graph.Graph, _ Options) order.Permutation {
			return order.ChDFS(g)
		}),
	},
	{
		Name: "DBG", Cancellable: true, Cost: CostCheap,
		Consumes: []OptionField{OptWorkers},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			return order.DBGCtx(ctx, g, opt.Workers)
		},
	},
	{
		Name: GorderName, Cancellable: true, Cost: CostExpensive,
		Consumes: []OptionField{OptWindow, OptHub},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			return core.OrderWithCtx(ctx, g, opt.gorder())
		},
	},
	{
		// The partition-parallel Gorder; "gorder-parallel" survives as
		// an alias from when the chunk-parallel variant was a separate
		// catalog entry.
		Name: "Gorder-Partitioned", Aliases: []string{"gorder-parallel"},
		Cancellable: true, Cost: CostExpensive,
		Consumes: []OptionField{OptWindow, OptHub, OptWorkers, OptPartitions},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			return core.OrderPartitionedCtx(ctx, g, opt.gorder(), core.PartitionedOptions{
				Workers:    opt.Workers,
				Partitions: opt.partitions(),
			})
		},
	},
	{
		Name: "HubCluster", Cancellable: true, Cost: CostCheap,
		Consumes: []OptionField{OptWorkers},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			return order.HubClusterCtx(ctx, g, opt.Workers)
		},
	},
	{
		Name: "HubSort", Cancellable: true, Cost: CostCheap,
		Consumes: []OptionField{OptWorkers},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			return order.HubSortCtx(ctx, g, opt.Workers)
		},
	},
	{
		Name: "InDegSort", Cost: CostCheap,
		Compute: startChecked(func(g *graph.Graph, _ Options) order.Permutation {
			return order.InDegSort(g)
		}),
	},
	{
		Name: "LDG", Cost: CostModerate, Consumes: []OptionField{OptLDGBins},
		Compute: startChecked(func(g *graph.Graph, opt Options) order.Permutation {
			return order.LDG(g, opt.ldgBins())
		}),
	},
	{
		Name: "MinLA", Stochastic: true, Cancellable: true, Cost: CostExpensive,
		Consumes: []OptionField{OptSeed},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			return order.MinLACtx(ctx, g, order.AnnealOptions{Seed: opt.Seed})
		},
	},
	{
		Name: "MinLogA", Stochastic: true, Cancellable: true, Cost: CostExpensive,
		Consumes: []OptionField{OptSeed},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			return order.MinLogACtx(ctx, g, order.AnnealOptions{Seed: opt.Seed})
		},
	},
	{
		Name: "Multilevel", Cancellable: true, Cost: CostModerate,
		Consumes: []OptionField{OptWindow, OptHub},
		Compute: func(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
			var coarseErr error
			p := order.Multilevel(g, order.MultilevelOptions{
				OrderCoarse: func(cg *graph.Graph) order.Permutation {
					cp, err := core.OrderWithCtx(ctx, cg, opt.gorder())
					if err != nil {
						coarseErr = err
						return order.Identity(cg.NumNodes())
					}
					return cp
				},
			})
			if coarseErr != nil {
				return nil, coarseErr
			}
			return p, nil
		},
	},
	{
		Name: "Original", Aliases: []string{"identity"}, Cost: CostTrivial,
		Compute: startChecked(func(g *graph.Graph, _ Options) order.Permutation {
			return order.Identity(g.NumNodes())
		}),
	},
	{
		Name: "Random", Stochastic: true, Cost: CostTrivial, Consumes: []OptionField{OptSeed},
		Compute: startChecked(func(g *graph.Graph, opt Options) order.Permutation {
			return order.Random(g.NumNodes(), opt.Seed)
		}),
	},
	{
		Name: "RCM", Cost: CostCheap,
		Compute: startChecked(func(g *graph.Graph, _ Options) order.Permutation {
			return order.RCM(g)
		}),
	},
	{
		Name: "SlashBurn", Cost: CostModerate,
		Compute: startChecked(func(g *graph.Graph, _ Options) order.Permutation {
			return order.SlashBurn(g)
		}),
	},
	{
		Name: "SlashBurn-Full", Cost: CostModerate,
		Compute: startChecked(func(g *graph.Graph, _ Options) order.Permutation {
			return order.SlashBurnFull(g, 0)
		}),
	},
}

// paperContenderNames lists the replication's ten contenders in the
// presentation order of its figures (Metis is omitted for the reasons
// both papers give; see DESIGN.md §2).
var paperContenderNames = []string{
	"Original", "Random", "MinLA", "MinLogA", "RCM",
	"InDegSort", "ChDFS", "SlashBurn", "LDG", GorderName,
}

// byName resolves lowercase names and aliases to catalog indices.
var byName = func() map[string]int {
	m := make(map[string]int, 2*len(orderings))
	add := func(name string, i int) {
		key := strings.ToLower(name)
		if _, dup := m[key]; dup {
			panic("registry: duplicate ordering name " + key)
		}
		m[key] = i
	}
	for i, o := range orderings {
		add(o.Name, i)
		for _, a := range o.Aliases {
			add(a, i)
		}
	}
	return m
}()

// Orderings returns the full catalog, alphabetised by name.
func Orderings() []Ordering {
	return append([]Ordering(nil), orderings...)
}

// Names returns the canonical ordering names, alphabetised.
func Names() []string {
	out := make([]string, len(orderings))
	for i, o := range orderings {
		out[i] = o.Name
	}
	return out
}

// MethodNames returns the lowercase (CLI/API) spelling of every
// canonical ordering name, sorted — the contract cli.MethodNames and
// the server's advertised method list are defined by.
func MethodNames() []string {
	out := make([]string, len(orderings))
	for i, o := range orderings {
		out[i] = strings.ToLower(o.Name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves an ordering by canonical name or alias, case-
// insensitively.
func Lookup(name string) (Ordering, bool) {
	i, ok := byName[strings.ToLower(name)]
	if !ok {
		return Ordering{}, false
	}
	return orderings[i], true
}

// PaperContenders returns the replication's ten contenders in the
// presentation order of its figures.
func PaperContenders() []Ordering {
	out := make([]Ordering, len(paperContenderNames))
	for i, name := range paperContenderNames {
		o, ok := Lookup(name)
		if !ok {
			panic("registry: paper contender " + name + " not in catalog")
		}
		out[i] = o
	}
	return out
}

// PaperContenderNames returns the contenders' canonical names in
// presentation order.
func PaperContenderNames() []string {
	return append([]string(nil), paperContenderNames...)
}

// Observation reports one instrumented ordering computation: which
// method ran, how long it took, and how it ended. It is what the
// gorderd /metrics per-method counters and the bench harness's
// ordering-time tables are built from.
type Observation struct {
	// Ordering is the canonical name of the method that ran.
	Ordering string
	// Duration is the wall time of the computation.
	Duration time.Duration
	// Canceled reports whether the computation ended on a context
	// cancellation or deadline rather than completing.
	Canceled bool
	// Err is the computation's error, if any (includes the ctx error
	// when Canceled).
	Err error
	// HeapOps and Placements are the priority-queue operation and
	// vertex-placement counts the method reported through the
	// core.OrderStats context carrier. Zero for methods that do not
	// report (only the Gorder greedy family does today).
	HeapOps    int64
	Placements int64
}

// Observer receives every Observation produced by Compute and
// ComputeObserved.
type Observer func(Observation)

var (
	obsMu     sync.Mutex
	obsSeq    int
	observers = map[int]Observer{}
)

// AddObserver registers fn to be called (synchronously) after every
// ordering computation in the process. The returned function removes
// the registration.
func AddObserver(fn Observer) (remove func()) {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsSeq++
	id := obsSeq
	observers[id] = fn
	return func() {
		obsMu.Lock()
		defer obsMu.Unlock()
		delete(observers, id)
	}
}

func notify(o Observation) {
	obsMu.Lock()
	fns := make([]Observer, 0, len(observers))
	for _, fn := range observers {
		fns = append(fns, fn)
	}
	obsMu.Unlock()
	for _, fn := range fns {
		fn(o)
	}
}

// ComputeObserved resolves name, runs the ordering under ctx, and
// returns the permutation together with the timing observation. This
// is the one instrumented code path every consumer shares; the
// observation is also delivered to registered observers.
func ComputeObserved(ctx context.Context, g *graph.Graph, name string, opt Options) (order.Permutation, Observation, error) {
	desc, ok := Lookup(name)
	if !ok {
		return nil, Observation{}, fmt.Errorf("unknown ordering %q (known: %s)",
			name, strings.Join(MethodNames(), " "))
	}
	// Refuse to start once ctx is done: a deadline bounds every
	// method's queue-to-start latency even when the method itself
	// cannot be interrupted (or is too small to hit a cancel check).
	if err := ctx.Err(); err != nil {
		obs := Observation{Ordering: desc.Name, Canceled: true, Err: err}
		notify(obs)
		return nil, obs, err
	}
	st := new(core.OrderStats)
	ctx = core.WithOrderStats(ctx, st)
	start := time.Now()
	perm, err := desc.Compute(ctx, g, opt)
	obs := Observation{
		Ordering:   desc.Name,
		Duration:   time.Since(start),
		Canceled:   errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded),
		Err:        err,
		HeapOps:    st.HeapOps(),
		Placements: st.Placements(),
	}
	notify(obs)
	return perm, obs, err
}

// Compute is ComputeObserved without the observation return — the
// convenience entry point for callers that only need the permutation.
func Compute(ctx context.Context, g *graph.Graph, name string, opt Options) (order.Permutation, error) {
	perm, _, err := ComputeObserved(ctx, g, name, opt)
	return perm, err
}
