package registry

import (
	"context"
	"sort"
	"strings"

	"gorder/internal/algos"
	"gorder/internal/graph"
	"gorder/internal/mem"
)

// KernelParams carries the kernel parameters experiments may scale
// away from the paper's defaults. Each kernel reads only the fields it
// understands.
type KernelParams struct {
	// PageRankIters is the PR power-iteration count.
	PageRankIters int
	// DiameterSamples is the Diam SP source-sample count.
	DiameterSamples int
	// Seed drives the stochastic kernels (Diam's source choice).
	Seed uint64
	// SPSource is the Bellman–Ford source vertex; a negative value
	// selects the vertex with the largest out-degree (lowest ID on
	// ties), which is order-invariant because relabeling preserves
	// degrees — every ordering then runs SP from the same logical hub.
	SPSource int
	// LabelPropIters bounds the LP kernel's sweeps (<= 0 = default).
	LabelPropIters int
	// Workers sets the goroutine count for kernels with a parallel
	// variant (Kernel.Parallel): > 1 dispatches to internal/exec, <= 1
	// runs the serial kernel. Scheduling only — parallel results are
	// parity-pinned to the serial oracles, so Workers never enters
	// kernel keys (mirroring the ordering Workers option).
	Workers int
}

// DefaultKernelParams are the paper's kernel parameters with the
// laptop-scale diameter sample count and the hub SP source.
func DefaultKernelParams() KernelParams {
	return KernelParams{
		PageRankIters:   algos.DefaultPageRankIters,
		DiameterSamples: algos.DefaultDiameterSamples,
		Seed:            1,
		SPSource:        -1,
	}
}

// Kernel describes one benchmark algorithm: a native entry point for
// wall-clock timing and a traced entry point for the cache-statistics
// experiments.
type Kernel struct {
	// Name is the canonical kernel name ("PR", "BFS", ...).
	Name string
	// Paper marks the nine kernels of the paper's evaluation; the rest
	// are this reproduction's extra workloads.
	Paper bool
	// Run executes the kernel natively.
	Run func(g *graph.Graph, p KernelParams)
	// RunTraced executes the traced variant. It receives both the
	// traced view and the source graph (for order-invariant setup such
	// as picking the SP source or building Kcore's undirected view).
	RunTraced func(g *graph.Graph, t *algos.TracedGraph, s *mem.Space, p KernelParams)
	// Query, when non-nil, makes the kernel servable by the query
	// tier: it produces a KernelResult whose summary and vector are
	// invariant under relabeling (so results computed on any ordering
	// map back to the caller's ID space exactly). Kernels whose
	// natural output is order-dependent (visit sequences, component
	// labels) leave it nil. ctx bounds the execution: the parallel
	// variants poll it between chunks and return its error mid-run.
	Query func(ctx context.Context, g *graph.Graph, p KernelParams, s *QueryScratch) (KernelResult, error)
	// Parallel marks kernels whose Query dispatches to the multicore
	// engine (internal/exec) when KernelParams.Workers > 1.
	Parallel bool
	// WholeGraph marks source-independent queryable kernels whose
	// full result the query tier may materialize as a store artifact.
	WholeGraph bool
	// QueryConsumes lists the KernelParams fields Query reads;
	// CanonicalKernelParams zeroes everything else so result caches
	// do not split on parameters the kernel ignores.
	QueryConsumes []KernelOptionField
}

// spSource resolves the Bellman–Ford source for p on g.
func spSource(g *graph.Graph, p KernelParams) graph.NodeID {
	if p.SPSource >= 0 {
		return graph.NodeID(p.SPSource)
	}
	best := graph.NodeID(0)
	for v := 1; v < g.NumNodes(); v++ {
		if g.OutDegree(graph.NodeID(v)) > g.OutDegree(best) {
			best = graph.NodeID(v)
		}
	}
	return best
}

// kernels is the catalog, alphabetised by case-insensitive name.
// THIS IS THE ONLY KERNEL-DISPATCH SITE IN THE REPOSITORY.
var kernels = []Kernel{
	{
		Name: "BFS", Paper: true, Parallel: true,
		Query: queryBFS, QueryConsumes: []KernelOptionField{KOptSource, KOptWorkers},
		Run: func(g *graph.Graph, _ KernelParams) { algos.BFSAll(g) },
		RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ KernelParams) {
			algos.TracedBFSAll(t, s)
		},
	},
	{
		Name: "DFS", Paper: true,
		Run: func(g *graph.Graph, _ KernelParams) { algos.DFSAll(g) },
		RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ KernelParams) {
			algos.TracedDFSAll(t, s)
		},
	},
	{
		Name: "Diam", Paper: true,
		Run: func(g *graph.Graph, p KernelParams) {
			algos.Diameter(g, p.DiameterSamples, p.Seed)
		},
		RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, p KernelParams) {
			algos.TracedDiameter(t, s, p.DiameterSamples, p.Seed)
		},
	},
	{
		Name: "DS", Paper: true,
		Run: func(g *graph.Graph, _ KernelParams) { algos.DominatingSet(g) },
		RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ KernelParams) {
			algos.TracedDominatingSet(t, s)
		},
	},
	{
		Name: "Kcore", Paper: true,
		Query: queryKcore, WholeGraph: true,
		Run: func(g *graph.Graph, _ KernelParams) { algos.CoreNumbers(g) },
		RunTraced: func(g *graph.Graph, _ *algos.TracedGraph, s *mem.Space, _ KernelParams) {
			algos.TracedCoreNumbers(g, s)
		},
	},
	{
		Name: "LP",
		Run: func(g *graph.Graph, p KernelParams) {
			algos.LabelPropagation(g, p.LabelPropIters)
		},
		RunTraced: func(g *graph.Graph, _ *algos.TracedGraph, s *mem.Space, p KernelParams) {
			algos.TracedLabelPropagation(g, s, p.LabelPropIters)
		},
	},
	{
		Name: "NQ", Paper: true,
		Query: queryNQ, WholeGraph: true,
		Run: func(g *graph.Graph, _ KernelParams) { algos.NeighbourQuery(g) },
		RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ KernelParams) {
			algos.TracedNeighbourQuery(t, s)
		},
	},
	{
		Name: "PR", Paper: true, Parallel: true,
		Query: queryPR, WholeGraph: true, QueryConsumes: []KernelOptionField{KOptIters, KOptWorkers},
		Run: func(g *graph.Graph, p KernelParams) {
			algos.PageRank(g, p.PageRankIters, algos.DefaultDamping)
		},
		RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, p KernelParams) {
			algos.TracedPageRank(t, s, p.PageRankIters, algos.DefaultDamping)
		},
	},
	{
		Name: "SCC", Paper: true,
		Run: func(g *graph.Graph, _ KernelParams) { algos.SCC(g) },
		RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ KernelParams) {
			algos.TracedSCC(t, s)
		},
	},
	{
		Name: "SP", Paper: true, Parallel: true,
		Query: querySP, QueryConsumes: []KernelOptionField{KOptSource, KOptWorkers},
		Run: func(g *graph.Graph, p KernelParams) {
			algos.BellmanFord(g, spSource(g, p))
		},
		RunTraced: func(g *graph.Graph, t *algos.TracedGraph, s *mem.Space, p KernelParams) {
			algos.TracedBellmanFord(t, s, spSource(g, p))
		},
	},
	{
		Name: "Tri", Parallel: true,
		Query: queryTri, WholeGraph: true, QueryConsumes: []KernelOptionField{KOptWorkers},
		Run: func(g *graph.Graph, _ KernelParams) { algos.TriangleCount(g) },
		RunTraced: func(g *graph.Graph, _ *algos.TracedGraph, s *mem.Space, _ KernelParams) {
			algos.TracedTriangleCount(g, s)
		},
	},
	{
		Name: "WCC",
		Run:  func(g *graph.Graph, _ KernelParams) { algos.WCC(g) },
		RunTraced: func(g *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ KernelParams) {
			algos.TracedWCC(g, t, s)
		},
	},
}

// paperKernelNames lists the paper's nine kernels in the presentation
// order of its figures and tables.
var paperKernelNames = []string{
	"NQ", "BFS", "DFS", "SCC", "SP", "PR", "DS", "Kcore", "Diam",
}

// kernelByName resolves lowercase kernel names to catalog indices.
var kernelByName = func() map[string]int {
	m := make(map[string]int, len(kernels))
	for i, k := range kernels {
		key := strings.ToLower(k.Name)
		if _, dup := m[key]; dup {
			panic("registry: duplicate kernel name " + key)
		}
		m[key] = i
	}
	return m
}()

// Kernels returns the full kernel catalog, alphabetised by name.
func Kernels() []Kernel {
	return append([]Kernel(nil), kernels...)
}

// KernelNames returns the canonical kernel names, sorted.
func KernelNames() []string {
	out := make([]string, len(kernels))
	for i, k := range kernels {
		out[i] = k.Name
	}
	sort.Strings(out)
	return out
}

// LookupKernel resolves a kernel by name, case-insensitively.
func LookupKernel(name string) (Kernel, bool) {
	i, ok := kernelByName[strings.ToLower(name)]
	if !ok {
		return Kernel{}, false
	}
	return kernels[i], true
}

// PaperKernels returns the paper's nine kernels in presentation order.
func PaperKernels() []Kernel {
	out := make([]Kernel, len(paperKernelNames))
	for i, name := range paperKernelNames {
		k, ok := LookupKernel(name)
		if !ok {
			panic("registry: paper kernel " + name + " not in catalog")
		}
		out[i] = k
	}
	return out
}
