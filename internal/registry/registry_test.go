package registry

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"gorder/internal/core"
	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

func TestCatalogAlphabetised(t *testing.T) {
	names := Names()
	if !sort.SliceIsSorted(names, func(a, b int) bool {
		return strings.ToLower(names[a]) < strings.ToLower(names[b])
	}) {
		t.Errorf("ordering catalog not alphabetised: %v", names)
	}
	kn := make([]string, 0, len(kernels))
	for _, k := range kernels {
		kn = append(kn, k.Name)
	}
	if !sort.SliceIsSorted(kn, func(a, b int) bool {
		return strings.ToLower(kn[a]) < strings.ToLower(kn[b])
	}) {
		t.Errorf("kernel catalog not alphabetised: %v", kn)
	}
}

func TestLookupCaseInsensitiveAndAliases(t *testing.T) {
	for _, name := range []string{"gorder", "GORDER", "Gorder", "slashburn-full", "identity"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if o, _ := Lookup("identity"); o.Name != "Original" {
		t.Errorf("alias identity resolved to %q, want Original", o.Name)
	}
	if _, ok := Lookup("metis"); ok {
		t.Error("Lookup(metis) succeeded; Metis is out of scope")
	}
}

func TestEveryOrderingComputesValidPermutation(t *testing.T) {
	g := gen.BarabasiAlbert(150, 4, 1)
	for _, o := range Orderings() {
		p, err := o.Compute(context.Background(), g, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", o.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid permutation: %v", o.Name, err)
		}
	}
}

func TestComputeUnknownOrdering(t *testing.T) {
	g := graph.FromEdges(2, nil)
	if _, err := Compute(context.Background(), g, "metis", Options{}); err == nil {
		t.Fatal("unknown ordering accepted")
	}
}

func TestEveryOrderingRefusesDoneContext(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, o := range Orderings() {
		if _, err := Compute(ctx, g, o.Name, Options{}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", o.Name, err)
		}
	}
}

func TestLDGBinsOption(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 1)
	p64, err := Compute(context.Background(), g, "ldg", Options{})
	if err != nil {
		t.Fatal(err)
	}
	p8, err := Compute(context.Background(), g, "ldg", Options{LDGBins: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range p64 {
		if p64[i] != p8[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("LDGBins=8 produced the same ordering as the default 64 bins")
	}
	// The default is the documented 64.
	pDefault := order.LDG(g, DefaultLDGBins)
	for i := range p64 {
		if p64[i] != pDefault[i] {
			t.Fatal("zero LDGBins does not match the documented default of 64")
		}
	}
}

func TestSeedReachesStochasticMethods(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 1)
	for _, name := range []string{"random", "minla", "minloga"} {
		a, err := Compute(context.Background(), g, name, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compute(context.Background(), g, name, Options{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 99 produced identical permutations", name)
		}
	}
}

func TestObserversSeeComputations(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 1)
	var seen []Observation
	remove := AddObserver(func(o Observation) { seen = append(seen, o) })
	defer remove()

	if _, obs, err := ComputeObserved(context.Background(), g, "rcm", Options{}); err != nil {
		t.Fatal(err)
	} else if obs.Ordering != "RCM" || obs.Canceled || obs.Duration < 0 {
		t.Errorf("bad observation %+v", obs)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, obs, err := ComputeObserved(ctx, g, "gorder", Options{}); err == nil {
		t.Fatal("expired deadline not honoured")
	} else if !obs.Canceled {
		t.Errorf("observation not marked canceled: %+v", obs)
	}

	if len(seen) != 2 {
		t.Fatalf("observer saw %d observations, want 2", len(seen))
	}
	remove()
	if _, err := Compute(context.Background(), g, "original", Options{}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Error("removed observer still notified")
	}
}

func TestPaperContendersAndKernels(t *testing.T) {
	cs := PaperContenders()
	if len(cs) != 10 {
		t.Fatalf("contenders = %d, want 10", len(cs))
	}
	if cs[len(cs)-1].Name != GorderName {
		t.Errorf("last contender %q, want %s", cs[len(cs)-1].Name, GorderName)
	}
	ks := PaperKernels()
	if len(ks) != 9 {
		t.Fatalf("paper kernels = %d, want 9", len(ks))
	}
	for _, k := range ks {
		if !k.Paper {
			t.Errorf("kernel %s from PaperKernels not marked Paper", k.Name)
		}
		if k.Run == nil || k.RunTraced == nil {
			t.Errorf("kernel %s missing an entry point", k.Name)
		}
	}
	for _, k := range Kernels() {
		if k.Run == nil || k.RunTraced == nil {
			t.Errorf("kernel %s missing an entry point", k.Name)
		}
	}
}

func TestLookupKernel(t *testing.T) {
	for _, name := range []string{"PR", "pr", "Kcore", "KCORE", "WCC", "Tri", "LP"} {
		if _, ok := LookupKernel(name); !ok {
			t.Errorf("LookupKernel(%q) failed", name)
		}
	}
	if _, ok := LookupKernel("nope"); ok {
		t.Error("bogus kernel found")
	}
}

// TestCanonicalOptions pins the normalization the artifact cache keys
// on: unconsumed fields zeroed, consumed zero-values defaulted.
func TestCanonicalOptions(t *testing.T) {
	// Gorder ignores seed and LDG bins; window 0 means the default.
	c, err := CanonicalOptions("gorder", Options{Seed: 99, LDGBins: 7})
	if err != nil {
		t.Fatal(err)
	}
	if c != (Options{Window: core.DefaultWindow}) {
		t.Errorf("gorder canonical = %+v", c)
	}
	// RCM consumes nothing: every spelling collapses to the zero Options.
	c, err = CanonicalOptions("RCM", Options{Window: 9, Seed: 5, LDGBins: 3, HubThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c != (Options{}) {
		t.Errorf("rcm canonical = %+v, want zero", c)
	}
	// LDG defaults its bin count.
	c, err = CanonicalOptions("ldg", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.LDGBins != DefaultLDGBins {
		t.Errorf("ldg canonical bins = %d, want %d", c.LDGBins, DefaultLDGBins)
	}
	if _, err := CanonicalOptions("nope", Options{}); err == nil {
		t.Error("unknown ordering canonicalised without error")
	}
}

// TestOptionsKey checks the cache-key digest: stable across
// equivalent spellings, distinct across effective parameter changes,
// and sensitive to the seed only for stochastic methods.
func TestOptionsKey(t *testing.T) {
	key := func(name string, o Options) string {
		t.Helper()
		_, k, err := OptionsKey(name, o)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key("gorder", Options{}) != key("GORDER", Options{Window: core.DefaultWindow, Seed: 42}) {
		t.Error("equivalent gorder spellings got different keys")
	}
	if key("gorder", Options{Window: 3}) == key("gorder", Options{Window: 4}) {
		t.Error("different windows share a key")
	}
	if key("gorder", Options{}) == key("rcm", Options{}) {
		t.Error("different methods share a key")
	}
	if key("random", Options{Seed: 1}) == key("random", Options{Seed: 2}) {
		t.Error("stochastic method ignores the seed in its key")
	}
	if key("minla", Options{Seed: 1}) == key("random", Options{Seed: 1}) {
		t.Error("minla and random share a key")
	}
}

// TestStochasticConsumesSeed enforces the catalog invariant
// CanonicalOptions depends on: a stochastic method must declare
// OptSeed (else its cache key would collide across seeds), and a
// deterministic one must not (else identical runs would miss).
func TestStochasticConsumesSeed(t *testing.T) {
	for _, o := range Orderings() {
		consumesSeed := false
		for _, f := range o.Consumes {
			if f == OptSeed {
				consumesSeed = true
			}
		}
		if o.Stochastic != consumesSeed {
			t.Errorf("%s: stochastic=%v but consumes-seed=%v", o.Name, o.Stochastic, consumesSeed)
		}
	}
}

// TestWorkersNeverInKey pins the Workers contract: the parallel
// methods consume Workers for scheduling, but every spelling of the
// worker count — including the GOMAXPROCS default — must map to the
// same canonical options and the same artifact cache key, because the
// permutation is worker-independent.
func TestWorkersNeverInKey(t *testing.T) {
	for _, name := range []string{"boba", "dbg", "hubsort", "hubcluster", "gorder-partitioned"} {
		base, kBase, err := OptionsKey(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if base.Workers != 0 {
			t.Errorf("%s: canonical workers = %d, want 0", name, base.Workers)
		}
		for _, workers := range []int{1, 4, 8} {
			c, k, err := OptionsKey(name, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if c != base || k != kBase {
				t.Errorf("%s: workers=%d split the cache key (%+v %s vs %+v %s)",
					name, workers, c, k, base, kBase)
			}
		}
	}
}

// TestPartitionedOptionsKey pins Gorder-Partitioned's key semantics:
// partition count is part of the result (distinct keys), the zero
// value canonicalises to the default, and the gorder-parallel alias
// shares the canonical entry's keys.
func TestPartitionedOptionsKey(t *testing.T) {
	key := func(o Options) string {
		t.Helper()
		_, k, err := OptionsKey("gorder-partitioned", o)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	c, _, err := OptionsKey("gorder-partitioned", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Partitions != core.DefaultPartitions {
		t.Errorf("canonical partitions = %d, want %d", c.Partitions, core.DefaultPartitions)
	}
	if key(Options{}) != key(Options{Partitions: core.DefaultPartitions, Workers: 8, Seed: 3}) {
		t.Error("equivalent partitioned spellings got different keys")
	}
	if key(Options{Partitions: 4}) == key(Options{Partitions: 8}) {
		t.Error("different partition counts share a key")
	}
	if key(Options{}) == mustKey(t, "gorder", Options{}) {
		t.Error("gorder-partitioned and gorder share a key")
	}
	_, aliasKey, err := OptionsKey("gorder-parallel", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aliasKey != key(Options{}) {
		t.Error("gorder-parallel alias does not share gorder-partitioned's key")
	}
}

func mustKey(t *testing.T, name string, o Options) string {
	t.Helper()
	_, k, err := OptionsKey(name, o)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestParallelFamilyCapabilities pins the capability metadata of the
// lightweight parallel reordering family.
func TestParallelFamilyCapabilities(t *testing.T) {
	for _, name := range []string{"BOBA", "DBG", "HubSort", "HubCluster"} {
		desc, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s missing from catalog", name)
		}
		if !desc.Cancellable {
			t.Errorf("%s: not marked Cancellable", name)
		}
		if desc.Cost != CostCheap {
			t.Errorf("%s: cost = %s, want %s", name, desc.Cost, CostCheap)
		}
		if desc.Stochastic {
			t.Errorf("%s: marked stochastic", name)
		}
	}
	desc, ok := Lookup("gorder-partitioned")
	if !ok {
		t.Fatal("gorder-partitioned missing from catalog")
	}
	if !desc.Cancellable || desc.Cost != CostExpensive {
		t.Errorf("gorder-partitioned capabilities wrong: %+v", desc)
	}
}
