package registry

import (
	"context"
	"reflect"
	"testing"

	"gorder/internal/algos"
	"gorder/internal/gen"
	"gorder/internal/graph"
)

func TestQueryableKernelSet(t *testing.T) {
	want := []string{"BFS", "Kcore", "NQ", "PR", "SP", "Tri"}
	if got := QueryableKernelNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("queryable kernels = %v, want %v", got, want)
	}
	// Order-dependent kernels must stay out: their outputs (visit
	// sequences, component label choices) change under relabeling, so
	// serving them from an arbitrary ordering would be wrong.
	for _, name := range []string{"DFS", "SCC", "WCC", "LP", "Diam", "DS"} {
		k, ok := LookupKernel(name)
		if !ok {
			t.Fatalf("kernel %s missing from catalog", name)
		}
		if k.Query != nil {
			t.Errorf("order-dependent kernel %s is queryable", name)
		}
	}
	// Whole-graph kernels are exactly the source-independent ones.
	for _, k := range kernels {
		if k.Query == nil {
			continue
		}
		hasSource := false
		for _, f := range k.QueryConsumes {
			if f == KOptSource {
				hasSource = true
			}
		}
		if k.WholeGraph == hasSource {
			t.Errorf("kernel %s: WholeGraph=%v but consumes-source=%v",
				k.Name, k.WholeGraph, hasSource)
		}
	}
}

func TestKernelKeyCanonicalization(t *testing.T) {
	// Unconsumed fields never split the key: a BFS query keys the same
	// whatever PR iteration count rides along.
	_, k1, err := KernelKey("BFS", KernelParams{SPSource: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := KernelKey("bfs", KernelParams{SPSource: 3, PageRankIters: 99, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("BFS keys split on unconsumed params: %s vs %s", k1, k2)
	}
	_, k3, _ := KernelKey("BFS", KernelParams{SPSource: 4})
	if k1 == k3 {
		t.Error("BFS keys for different sources collide")
	}

	// The PR default iteration count and its explicit spelling are one
	// key; a different count is another.
	cDefault, kDefault, _ := KernelKey("PR", KernelParams{})
	_, kExplicit, _ := KernelKey("PR", KernelParams{PageRankIters: algos.DefaultPageRankIters})
	if kDefault != kExplicit {
		t.Errorf("PR default-iters spellings split: %s vs %s", kDefault, kExplicit)
	}
	if cDefault.PageRankIters != algos.DefaultPageRankIters {
		t.Errorf("canonical PR iters = %d, want default %d",
			cDefault.PageRankIters, algos.DefaultPageRankIters)
	}
	if _, kOther, _ := KernelKey("PR", KernelParams{PageRankIters: 5}); kOther == kDefault {
		t.Error("PR keys for different iteration counts collide")
	}

	if _, _, err := KernelKey("NoSuchKernel", KernelParams{}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestQueryBFSMatchesDirectTraversal(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 11)
	k, _ := LookupKernel("BFS")
	var scratch QueryScratch

	// Two runs from different sources through one scratch: results must
	// match fresh per-run traversals, proving the buffer reset between
	// calls is complete.
	for _, src := range []int{0, 17} {
		res, err := k.Query(context.Background(), g, KernelParams{SPSource: src}, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		want := freshBFS(g, graph.NodeID(src))
		if !reflect.DeepEqual(res.Int32s, want) {
			t.Fatalf("src %d: scratch-based BFS diverges from fresh traversal", src)
		}
		reached := 0
		for _, d := range want {
			if d != algos.Unreached {
				reached++
			}
		}
		if int(res.Summary["reached"]) != reached {
			t.Errorf("src %d: reached = %v, want %d", src, res.Summary["reached"], reached)
		}
	}

	if _, err := k.Query(context.Background(), g, KernelParams{SPSource: g.NumNodes()}, &scratch); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := k.Query(context.Background(), g, KernelParams{SPSource: -1}, &scratch); err == nil {
		t.Error("unresolved hub sentinel accepted by the kernel")
	}
}

// freshBFS is an independent reference traversal using only the public
// BFS building block, with fresh buffers every time.
func freshBFS(g *graph.Graph, src graph.NodeID) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = algos.Unreached
	}
	algos.BFSFromInto(g, src, dist, nil)
	return dist
}

func TestHubSourceIsDegreeInvariant(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 3)
	hub := HubSource(g)
	for v := 0; v < g.NumNodes(); v++ {
		if g.OutDegree(graph.NodeID(v)) > g.OutDegree(hub) {
			t.Fatalf("vertex %d out-degrees the hub %d", v, hub)
		}
		if g.OutDegree(graph.NodeID(v)) == g.OutDegree(hub) && graph.NodeID(v) < hub {
			t.Fatalf("hub %d is not the lowest-ID max-degree vertex (%d ties)", hub, v)
		}
	}
}
