package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

func TestQuickHubOrderingsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		g := randGraph(rng, n, rng.Intn(4*n))
		for _, p := range []Permutation{HubSort(g), DBG(g)} {
			if len(p) != n || p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHubSortPlacesHubsFirst(t *testing.T) {
	// Star into vertex 7: it is the only above-average in-degree vertex.
	edges := make([]graph.Edge, 0, 8)
	for i := 0; i < 6; i++ {
		edges = append(edges, graph.Edge{From: graph.NodeID(i), To: 7})
	}
	g := graph.FromEdges(8, edges)
	p := HubSort(g)
	if p[7] != 0 {
		t.Errorf("hub position = %d, want 0", p[7])
	}
	// Cold vertices keep their relative order after the hub block.
	for i := 0; i < 5; i++ {
		if p[i] >= p[i+1] && i+1 != 7 {
			t.Errorf("cold order broken: p[%d]=%d p[%d]=%d", i, p[i], i+1, p[i+1])
		}
	}
}

func TestHubSortEmpty(t *testing.T) {
	if len(HubSort(graph.FromEdges(0, nil))) != 0 || len(DBG(graph.FromEdges(0, nil))) != 0 {
		t.Error("empty graph mishandled")
	}
}

func TestDBGPreservesIntraClassOrder(t *testing.T) {
	// Uniform degrees → single class → identity.
	g := gen.Ring(50)
	p := DBG(g)
	for i, v := range p {
		if int(v) != i {
			t.Fatalf("uniform-degree DBG not identity: %v", p)
		}
	}
}

func TestDBGHotFirst(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 5, 3)
	p := DBG(g)
	// The max-in-degree vertex must land in the first few percent.
	hub := graph.NodeID(0)
	for v := 1; v < g.NumNodes(); v++ {
		if g.InDegree(graph.NodeID(v)) > g.InDegree(hub) {
			hub = graph.NodeID(v)
		}
	}
	if int(p[hub]) > g.NumNodes()/10 {
		t.Errorf("hottest vertex at position %d of %d", p[hub], g.NumNodes())
	}
}

func TestHubOrderingsBeatRandomOnScore(t *testing.T) {
	g := gen.BarabasiAlbert(1500, 5, 9)
	w := 5
	rnd := Score(g, Random(g.NumNodes(), 1), w)
	if s := Score(g, HubSort(g), w); s <= rnd {
		t.Errorf("HubSort F=%d not above random %d", s, rnd)
	}
	if s := Score(g, DBG(g), w); s <= rnd {
		t.Errorf("DBG F=%d not above random %d", s, rnd)
	}
}
