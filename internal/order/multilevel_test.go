package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

func TestQuickMultilevelValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		g := randGraph(rng, n, rng.Intn(4*n))
		for _, coarsenTo := range []int{0, 4, 32} {
			p := Multilevel(g, MultilevelOptions{CoarsenTo: coarsenTo})
			if len(p) != n || p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMultilevelEmptyAndTiny(t *testing.T) {
	if len(Multilevel(graph.FromEdges(0, nil), MultilevelOptions{})) != 0 {
		t.Error("empty graph mishandled")
	}
	p := Multilevel(graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}}), MultilevelOptions{CoarsenTo: 1})
	if p.Validate() != nil {
		t.Error("tiny graph invalid")
	}
}

func TestMultilevelKeepsMatchedPairsAdjacent(t *testing.T) {
	// Disjoint heavy pairs: 0-1, 2-3, 4-5 (double edges so matching
	// picks them), each matched pair must be adjacent in the result.
	var edges []graph.Edge
	for i := 0; i < 6; i += 2 {
		a, b := graph.NodeID(i), graph.NodeID(i+1)
		edges = append(edges, graph.Edge{From: a, To: b}, graph.Edge{From: b, To: a})
	}
	g := graph.FromEdges(6, edges)
	p := Multilevel(g, MultilevelOptions{CoarsenTo: 2})
	for i := 0; i < 6; i += 2 {
		d := int64(p[i]) - int64(p[i+1])
		if d != 1 && d != -1 {
			t.Errorf("pair (%d,%d) not adjacent: positions %d, %d", i, i+1, p[i], p[i+1])
		}
	}
}

func TestMultilevelBeatsRandomOnCommunities(t *testing.T) {
	g := gen.SBM(3000, 30, 10, 1, 4)
	w := 5
	ml := Score(g, Multilevel(g, MultilevelOptions{CoarsenTo: 256}), w)
	rnd := Score(g, Random(g.NumNodes(), 1), w)
	orig := Score(g, Identity(g.NumNodes()), w)
	if ml <= rnd*3 {
		t.Errorf("multilevel F=%d not well above random %d", ml, rnd)
	}
	// SBM IDs are shuffled, so the original order has no community
	// locality; multilevel must beat it clearly.
	if ml <= orig {
		t.Errorf("multilevel F=%d not above original %d", ml, orig)
	}
}

func TestMultilevelCustomCoarseOrderer(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 4, 6)
	called := false
	p := Multilevel(g, MultilevelOptions{
		CoarsenTo: 64,
		OrderCoarse: func(cg *graph.Graph) Permutation {
			called = true
			if cg.NumNodes() > 2*64 {
				t.Errorf("coarse graph has %d vertices, want <= ~128", cg.NumNodes())
			}
			return Identity(cg.NumNodes())
		},
	})
	if !called {
		t.Fatal("coarse orderer never invoked")
	}
	if p.Validate() != nil {
		t.Fatal("invalid permutation")
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := gen.Web(2000, gen.DefaultWeb, 3)
	a := Multilevel(g, MultilevelOptions{})
	b := Multilevel(g, MultilevelOptions{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("multilevel not deterministic")
		}
	}
}
