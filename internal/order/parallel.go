package order

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gorder/internal/graph"
)

// Lightweight *parallel* reordering machinery. Every ordering in this
// file follows the same contract:
//
//   - workers sets the number of goroutines (<= 0 selects GOMAXPROCS)
//     and NEVER affects the result: work is divided over a fixed chunk
//     grid whose geometry depends only on the input size, per-chunk
//     results land in per-chunk slots, and cross-chunk combination is
//     either commutative (atomic min) or an exact prefix sum — so the
//     permutation is bit-identical at any worker count and GOMAXPROCS.
//   - ctx is checked between chunks; the first cancellation aborts the
//     computation with ctx.Err() and a nil permutation.
//
// This determinism is what lets the artifact cache treat the worker
// count as an execution detail rather than part of the cache key, and
// it is pinned by TestParallelOrderingsDeterministic.

// gridChunkTarget is the fixed upper bound on the parallel chunk grid.
// It is a constant (not a function of the worker count) so the chunk
// boundaries — and therefore the output — are machine-independent;
// 256 chunks keep every core busy up to far more cores than we target
// while staying coarse enough that the per-chunk overhead vanishes.
const gridChunkTarget = 256

// gridFor returns the chunk count for an input of the given size:
// gridChunkTarget, shrunk so no chunk is empty, and at least 1.
func gridFor(total int) int {
	chunks := gridChunkTarget
	if total < chunks {
		chunks = total
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// chunkRange returns the half-open [lo, hi) range of chunk c in an
// even split of total items over the grid.
func chunkRange(total, chunks, c int) (lo, hi int) {
	return c * total / chunks, (c + 1) * total / chunks
}

// resolveWorkers maps the public workers knob to a goroutine count.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// forChunks runs fn(c) for every chunk index in [0, chunks) on up to
// `workers` goroutines. Chunks are claimed from a shared counter, so
// scheduling is nondeterministic but fn must only write per-chunk
// state. ctx is polled before each claimed chunk; once it is done the
// remaining chunks are skipped and ctx.Err() is returned.
func forChunks(ctx context.Context, workers, chunks int, fn func(c int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = resolveWorkers(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(c)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks || ctx.Err() != nil {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// BOBA computes the sort-free parallel ordering of arXiv 2306.10410
// with default parallelism; see BOBACtx.
func BOBA(g *graph.Graph) Permutation {
	p, _ := BOBACtx(context.Background(), g, 0)
	return p
}

// BOBACtx computes the BOBA ordering (Boosting Block-based Adjacency,
// arXiv 2306.10410): vertices are placed in order of their *first
// appearance as a destination* in the CSR edge stream. High in-degree
// vertices appear early and often in that stream, so the prefix of
// the new ID space concentrates the hot vertices much like a degree
// sort — but the whole computation is two O(m) passes with no sort:
//
//	pass 1  first[v] = min stream position where v appears (atomic min)
//	pass 2  each chunk emits the vertices whose first appearance falls
//	        inside it, in stream order; chunk outputs concatenate in
//	        chunk order
//
// Vertices that never appear as a destination (in-degree 0) follow in
// original order, preserving whatever locality they had. Both passes
// parallelise over the fixed chunk grid, so the result is identical
// at any worker count.
func BOBACtx(ctx context.Context, g *graph.Graph, workers int) (Permutation, error) {
	n := g.NumNodes()
	if n == 0 {
		return Permutation{}, ctx.Err()
	}
	adj := g.OutAdjacency()
	m := len(adj)
	sentinel := int64(m)
	first := make([]int64, n)
	for i := range first {
		first[i] = sentinel
	}
	chunks := gridFor(m)
	if m > 0 {
		err := forChunks(ctx, workers, chunks, func(c int) {
			lo, hi := chunkRange(m, chunks, c)
			for i := lo; i < hi; i++ {
				v := adj[i]
				pos := int64(i)
				for {
					cur := atomic.LoadInt64(&first[v])
					if cur <= pos || atomic.CompareAndSwapInt64(&first[v], cur, pos) {
						break
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}
	locals := make([][]graph.NodeID, chunks)
	if m > 0 {
		err := forChunks(ctx, workers, chunks, func(c int) {
			lo, hi := chunkRange(m, chunks, c)
			var buf []graph.NodeID
			for i := lo; i < hi; i++ {
				if v := adj[i]; first[v] == int64(i) {
					buf = append(buf, v)
				}
			}
			locals[c] = buf
		})
		if err != nil {
			return nil, err
		}
	}
	seq := make([]graph.NodeID, 0, n)
	for _, buf := range locals {
		seq = append(seq, buf...)
	}
	for v := 0; v < n; v++ {
		if first[v] == sentinel {
			seq = append(seq, graph.NodeID(v))
		}
	}
	return FromSequence(seq), nil
}

// splitHotCold partitions the vertices into hot (in-degree strictly
// above the average) and cold, each in ascending ID order, using a
// count/prefix-sum/fill pass over the fixed chunk grid. This is the
// shared "parallel bucket fill" under HubSort, HubCluster and DBG.
func splitHotCold(ctx context.Context, g *graph.Graph, workers int) (hot, cold []graph.NodeID, err error) {
	n := g.NumNodes()
	avg := float64(g.NumEdges()) / float64(n)
	inIdx := g.InIndex()
	chunks := gridFor(n)
	hotCount := make([]int, chunks)
	if err := forChunks(ctx, workers, chunks, func(c int) {
		lo, hi := chunkRange(n, chunks, c)
		cnt := 0
		for v := lo; v < hi; v++ {
			if float64(inIdx[v+1]-inIdx[v]) > avg {
				cnt++
			}
		}
		hotCount[c] = cnt
	}); err != nil {
		return nil, nil, err
	}
	totalHot := 0
	for _, c := range hotCount {
		totalHot += c
	}
	hot = make([]graph.NodeID, totalHot)
	cold = make([]graph.NodeID, n-totalHot)
	// Exclusive prefix sums give each chunk its write offsets in both
	// output arrays; the fill pass then writes without contention.
	hotOff := make([]int, chunks)
	coldOff := make([]int, chunks)
	h, cd := 0, 0
	for c := 0; c < chunks; c++ {
		hotOff[c], coldOff[c] = h, cd
		lo, hi := chunkRange(n, chunks, c)
		h += hotCount[c]
		cd += (hi - lo) - hotCount[c]
	}
	if err := forChunks(ctx, workers, chunks, func(c int) {
		lo, hi := chunkRange(n, chunks, c)
		ho, co := hotOff[c], coldOff[c]
		for v := lo; v < hi; v++ {
			if float64(inIdx[v+1]-inIdx[v]) > avg {
				hot[ho] = graph.NodeID(v)
				ho++
			} else {
				cold[co] = graph.NodeID(v)
				co++
			}
		}
	}); err != nil {
		return nil, nil, err
	}
	return hot, cold, nil
}

// HubSortCtx is HubSort with explicit parallelism and cancellation:
// the hot/cold split runs as a parallel bucket fill, then the hot
// block is sorted by descending in-degree (ties by ascending ID, so
// the result matches the serial implementation bit for bit).
func HubSortCtx(ctx context.Context, g *graph.Graph, workers int) (Permutation, error) {
	n := g.NumNodes()
	if n == 0 {
		return Permutation{}, ctx.Err()
	}
	hot, cold, err := splitHotCold(ctx, g, workers)
	if err != nil {
		return nil, err
	}
	sort.Slice(hot, func(a, b int) bool {
		da, db := g.InDegree(hot[a]), g.InDegree(hot[b])
		if da != db {
			return da > db
		}
		return hot[a] < hot[b]
	})
	return FromSequence(append(hot, cold...)), nil
}

// HubClusterCtx computes HubCluster (Faldu et al., arXiv 2001.08448):
// the hot vertices move to the front *in their original relative
// order* — no sort at all — and the cold vertices follow, also in
// original order. It packs the hot working set like HubSort while
// preserving intra-hot locality, and costs only the two parallel
// bucket-fill passes.
func HubClusterCtx(ctx context.Context, g *graph.Graph, workers int) (Permutation, error) {
	n := g.NumNodes()
	if n == 0 {
		return Permutation{}, ctx.Err()
	}
	hot, cold, err := splitHotCold(ctx, g, workers)
	if err != nil {
		return nil, err
	}
	return FromSequence(append(hot, cold...)), nil
}

// dbgClassCount is the number of DBG degree classes: seven geometric
// thresholds around the average degree plus the tail class.
const dbgClassCount = 8

// dbgClass maps an in-degree to its DBG class under the paper's
// geometric thresholds (class 0 hottest).
func dbgClass(d, avg float64) int {
	switch {
	case d > 32*avg:
		return 0
	case d > 16*avg:
		return 1
	case d > 8*avg:
		return 2
	case d > 4*avg:
		return 3
	case d > 2*avg:
		return 4
	case d > avg:
		return 5
	case d > avg/2:
		return 6
	default:
		return 7
	}
}

// DBGCtx is Degree-Based Grouping with explicit parallelism and
// cancellation. Classification is embarrassingly parallel; the bucket
// fill runs as a count pass per (chunk, class), an exact prefix sum,
// and a contention-free write pass — identical output to the serial
// DBG at any worker count.
func DBGCtx(ctx context.Context, g *graph.Graph, workers int) (Permutation, error) {
	n := g.NumNodes()
	if n == 0 {
		return Permutation{}, ctx.Err()
	}
	avg := float64(g.NumEdges()) / float64(n)
	if avg < 1 {
		avg = 1
	}
	inIdx := g.InIndex()
	chunks := gridFor(n)
	counts := make([][dbgClassCount]int, chunks)
	if err := forChunks(ctx, workers, chunks, func(c int) {
		lo, hi := chunkRange(n, chunks, c)
		var cnt [dbgClassCount]int
		for v := lo; v < hi; v++ {
			cnt[dbgClass(float64(inIdx[v+1]-inIdx[v]), avg)]++
		}
		counts[c] = cnt
	}); err != nil {
		return nil, err
	}
	// offsets[c][k] = write position of chunk c's first class-k vertex:
	// classes are laid out hottest-first, chunks in chunk (= ID) order
	// inside each class — exactly the serial append order.
	offsets := make([][dbgClassCount]int, chunks)
	pos := 0
	for k := 0; k < dbgClassCount; k++ {
		for c := 0; c < chunks; c++ {
			offsets[c][k] = pos
			pos += counts[c][k]
		}
	}
	seq := make([]graph.NodeID, n)
	if err := forChunks(ctx, workers, chunks, func(c int) {
		lo, hi := chunkRange(n, chunks, c)
		off := offsets[c]
		for v := lo; v < hi; v++ {
			k := dbgClass(float64(inIdx[v+1]-inIdx[v]), avg)
			seq[off[k]] = graph.NodeID(v)
			off[k]++
		}
	}); err != nil {
		return nil, err
	}
	return FromSequence(seq), nil
}
