package order

import (
	"math"

	"gorder/internal/graph"
)

// The quality functions different orderings optimise. These are
// evaluation tools: MinLA/MinLogA minimise LinearCost/LogCost, RCM
// targets Bandwidth, and Gorder maximises Score.

// LinearCost returns the MinLA energy sum over edges of |pi(u)-pi(v)|.
// Self-loops contribute zero.
func LinearCost(g *graph.Graph, p Permutation) float64 {
	total := 0.0
	g.Edges(func(u, v graph.NodeID) bool {
		total += math.Abs(float64(p[u]) - float64(p[v]))
		return true
	})
	return total
}

// LogCost returns the MinLogA energy sum over edges of
// log(|pi(u)-pi(v)|). Self-loops and duplicate positions are skipped
// (log 0 is undefined; self-loops are the only way distance can be 0).
func LogCost(g *graph.Graph, p Permutation) float64 {
	total := 0.0
	g.Edges(func(u, v graph.NodeID) bool {
		if d := math.Abs(float64(p[u]) - float64(p[v])); d > 0 {
			total += math.Log(d)
		}
		return true
	})
	return total
}

// Bandwidth returns max over edges of |pi(u)-pi(v)|, the quantity RCM
// is designed to reduce.
func Bandwidth(g *graph.Graph, p Permutation) int64 {
	var bw int64
	g.Edges(func(u, v graph.NodeID) bool {
		d := int64(p[u]) - int64(p[v])
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
		return true
	})
	return bw
}

// Score returns the Gorder objective F(pi) with window w:
//
//	F(pi) = sum over pairs with 0 < pi(u)-pi(v) <= w of S(u, v)
//	S(u, v) = Ss(u, v) + Sn(u, v)
//
// where Sn counts edges between u and v (0..2) and Ss counts their
// common in-neighbours. This is an independent O(n·w·d) evaluation
// used to validate and benchmark the greedy algorithm in
// internal/core, not the algorithm's own bookkeeping.
func Score(g *graph.Graph, p Permutation, w int) int64 {
	seq := p.Sequence()
	var total int64
	for i := range seq {
		for j := i - w; j < i; j++ {
			if j < 0 {
				continue
			}
			total += PairScore(g, seq[i], seq[j])
		}
	}
	return total
}

// CacheBlockEntries is the number of vertex entries per cache block
// assumed by PackingFactor: a 64-byte line holding 4-byte vertex data.
const CacheBlockEntries = 16

// PackingFactor returns the hot-vertex packing metric of Faldu et
// al. (arXiv 2001.08448, §III): the average number of hot vertices per
// cache block that contains at least one hot vertex, where a vertex is
// hot when its in-degree exceeds the graph average and a block is
// CacheBlockEntries consecutive new IDs. A perfect ordering packs hot
// vertices densely (factor → CacheBlockEntries); a random ordering
// scatters them (factor → 1), forcing the working set across many more
// lines. Returns 0 when the graph has no hot vertices.
func PackingFactor(g *graph.Graph, p Permutation) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	avg := float64(g.NumEdges()) / float64(n)
	hotBlocks := 0
	hotTotal := 0
	numBlocks := (n + CacheBlockEntries - 1) / CacheBlockEntries
	counts := make([]int32, numBlocks)
	for v := 0; v < n; v++ {
		if float64(g.InDegree(graph.NodeID(v))) > avg {
			b := int(p[v]) / CacheBlockEntries
			if counts[b] == 0 {
				hotBlocks++
			}
			counts[b]++
			hotTotal++
		}
	}
	if hotBlocks == 0 {
		return 0
	}
	return float64(hotTotal) / float64(hotBlocks)
}

// PairScore returns S(u, v) = Ss(u, v) + Sn(u, v) for a single vertex
// pair.
func PairScore(g *graph.Graph, u, v graph.NodeID) int64 {
	var s int64
	if g.HasEdge(u, v) {
		s++
	}
	if g.HasEdge(v, u) {
		s++
	}
	return s + commonInNeighbors(g, u, v)
}

// commonInNeighbors counts |N_in(u) ∩ N_in(v)| by merging the two
// sorted in-neighbour lists.
func commonInNeighbors(g *graph.Graph, u, v graph.NodeID) int64 {
	a, b := g.InNeighbors(u), g.InNeighbors(v)
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}
