package order

import (
	"math"

	"gorder/internal/graph"
)

// The quality functions different orderings optimise. These are
// evaluation tools: MinLA/MinLogA minimise LinearCost/LogCost, RCM
// targets Bandwidth, and Gorder maximises Score.

// LinearCost returns the MinLA energy sum over edges of |pi(u)-pi(v)|.
// Self-loops contribute zero.
func LinearCost(g *graph.Graph, p Permutation) float64 {
	total := 0.0
	g.Edges(func(u, v graph.NodeID) bool {
		total += math.Abs(float64(p[u]) - float64(p[v]))
		return true
	})
	return total
}

// LogCost returns the MinLogA energy sum over edges of
// log(|pi(u)-pi(v)|). Self-loops and duplicate positions are skipped
// (log 0 is undefined; self-loops are the only way distance can be 0).
func LogCost(g *graph.Graph, p Permutation) float64 {
	total := 0.0
	g.Edges(func(u, v graph.NodeID) bool {
		if d := math.Abs(float64(p[u]) - float64(p[v])); d > 0 {
			total += math.Log(d)
		}
		return true
	})
	return total
}

// Bandwidth returns max over edges of |pi(u)-pi(v)|, the quantity RCM
// is designed to reduce.
func Bandwidth(g *graph.Graph, p Permutation) int64 {
	var bw int64
	g.Edges(func(u, v graph.NodeID) bool {
		d := int64(p[u]) - int64(p[v])
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
		return true
	})
	return bw
}

// Score returns the Gorder objective F(pi) with window w:
//
//	F(pi) = sum over pairs with 0 < pi(u)-pi(v) <= w of S(u, v)
//	S(u, v) = Ss(u, v) + Sn(u, v)
//
// where Sn counts edges between u and v (0..2) and Ss counts their
// common in-neighbours. This is an independent O(n·w·d) evaluation
// used to validate and benchmark the greedy algorithm in
// internal/core, not the algorithm's own bookkeeping.
func Score(g *graph.Graph, p Permutation, w int) int64 {
	seq := p.Sequence()
	var total int64
	for i := range seq {
		for j := i - w; j < i; j++ {
			if j < 0 {
				continue
			}
			total += PairScore(g, seq[i], seq[j])
		}
	}
	return total
}

// PairScore returns S(u, v) = Ss(u, v) + Sn(u, v) for a single vertex
// pair.
func PairScore(g *graph.Graph, u, v graph.NodeID) int64 {
	var s int64
	if g.HasEdge(u, v) {
		s++
	}
	if g.HasEdge(v, u) {
		s++
	}
	return s + commonInNeighbors(g, u, v)
}

// commonInNeighbors counts |N_in(u) ∩ N_in(v)| by merging the two
// sorted in-neighbour lists.
func commonInNeighbors(g *graph.Graph, u, v graph.NodeID) int64 {
	a, b := g.InNeighbors(u), g.InNeighbors(v)
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}
