package order

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

func TestQuickParallelOrderingsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		g := randGraph(rng, n, rng.Intn(4*n))
		for _, p := range []Permutation{BOBA(g), HubCluster(g)} {
			if len(p) != n || p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// BOBA's defining property: vertex u precedes v whenever u's first
// appearance as a destination in the CSR stream precedes v's, and
// never-destination vertices trail in ID order.
func TestBOBAFirstAppearanceOrder(t *testing.T) {
	g := gen.BarabasiAlbert(800, 4, 13)
	p := BOBA(g)
	adj := g.OutAdjacency()
	first := make(map[graph.NodeID]int)
	for i, v := range adj {
		if _, ok := first[v]; !ok {
			first[v] = i
		}
	}
	seq := p.Sequence()
	prevFirst := -1
	i := 0
	for ; i < len(seq); i++ {
		f, ok := first[seq[i]]
		if !ok {
			break // start of the zero-in-degree tail
		}
		if f < prevFirst {
			t.Fatalf("position %d: first-appearance %d after %d", i, f, prevFirst)
		}
		prevFirst = f
	}
	prevID := graph.NodeID(0)
	for ; i < len(seq); i++ {
		if _, ok := first[seq[i]]; ok {
			t.Fatalf("destination vertex %d in the zero-in-degree tail", seq[i])
		}
		if seq[i] < prevID {
			t.Fatalf("zero-in-degree tail not in ID order at position %d", i)
		}
		prevID = seq[i]
	}
}

// HubCluster keeps both blocks in original relative order and places
// every hot vertex before every cold one.
func TestHubClusterBlocks(t *testing.T) {
	g := gen.BarabasiAlbert(1200, 5, 17)
	p := HubCluster(g)
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	hotOf := func(v graph.NodeID) bool { return float64(g.InDegree(v)) > avg }
	seq := p.Sequence()
	seenCold := false
	var prevHot, prevCold graph.NodeID
	haveHot, haveCold := false, false
	for i, v := range seq {
		if hotOf(v) {
			if seenCold {
				t.Fatalf("hot vertex %d at position %d after a cold vertex", v, i)
			}
			if haveHot && v < prevHot {
				t.Fatalf("hot block out of ID order at position %d", i)
			}
			prevHot, haveHot = v, true
		} else {
			seenCold = true
			if haveCold && v < prevCold {
				t.Fatalf("cold block out of ID order at position %d", i)
			}
			prevCold, haveCold = v, true
		}
	}
}

// The worker count is pure scheduling: every parallel ordering must be
// bit-identical at any worker count, including the serial path.
func TestParallelOrderingsDeterministic(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"web":  gen.Web(400, gen.DefaultWeb, 7),
		"ba":   gen.BarabasiAlbert(300, 5, 11),
		"sbm":  gen.SBM(350, 5, 8, 2, 3),
		"ring": gen.Ring(100),
	}
	type method struct {
		name string
		run  func(ctx context.Context, g *graph.Graph, workers int) (Permutation, error)
	}
	methods := []method{
		{"boba", BOBACtx},
		{"hubsort", HubSortCtx},
		{"hubcluster", HubClusterCtx},
		{"dbg", DBGCtx},
	}
	ctx := context.Background()
	for gname, g := range graphs {
		for _, m := range methods {
			base, err := m.run(ctx, g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := base.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", m.name, gname, err)
			}
			for _, workers := range []int{2, 3, 8, 0} {
				p, err := m.run(ctx, g, workers)
				if err != nil {
					t.Fatal(err)
				}
				for u := range base {
					if base[u] != p[u] {
						t.Fatalf("%s/%s: workers=%d diverges from workers=1 at vertex %d",
							m.name, gname, workers, u)
					}
				}
			}
		}
	}
}

// The parallel implementations must match their original serial
// counterparts bit for bit.
func TestParallelMatchesSerialHubOrderings(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 5, 3)
	hs, err := HubSortCtx(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := HubSort(g)
	for u := range want {
		if want[u] != hs[u] {
			t.Fatalf("HubSortCtx diverges from HubSort at vertex %d", u)
		}
	}
	db, err := DBGCtx(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantD := DBG(g)
	for u := range wantD {
		if wantD[u] != db[u] {
			t.Fatalf("DBGCtx diverges from DBG at vertex %d", u)
		}
	}
}

func TestParallelOrderingsCanceled(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 6, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func(context.Context, *graph.Graph, int) (Permutation, error){
		"boba": BOBACtx, "hubsort": HubSortCtx, "hubcluster": HubClusterCtx, "dbg": DBGCtx,
	} {
		p, err := run(ctx, g, 4)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if p != nil {
			t.Errorf("%s: canceled run returned a permutation", name)
		}
	}
}

func TestParallelOrderingsDeadline(t *testing.T) {
	// Already-expired deadline: the first ctx poll must abort the run.
	g := gen.BarabasiAlbert(3000, 6, 15)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := BOBACtx(ctx, g, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("BOBACtx: err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := DBGCtx(ctx, g, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("DBGCtx: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestBFSPartitionCoversDisjoint(t *testing.T) {
	for _, k := range []int{1, 2, 7, 16} {
		g := gen.SBM(500, 10, 8, 1, 4)
		parts, err := BFSPartition(context.Background(), g, k)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, g.NumNodes())
		total := 0
		for _, members := range parts {
			for _, v := range members {
				if seen[v] {
					t.Fatalf("k=%d: vertex %d in two partitions", k, v)
				}
				seen[v] = true
				total++
			}
		}
		if total != g.NumNodes() {
			t.Fatalf("k=%d: partitions cover %d of %d vertices", k, total, g.NumNodes())
		}
		if len(parts) != k {
			t.Fatalf("k=%d: got %d partitions", k, len(parts))
		}
	}
}

func TestLDGPartitionCoversDisjoint(t *testing.T) {
	g := gen.SBM(500, 10, 8, 1, 4)
	parts, err := LDGPartition(context.Background(), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.NumNodes())
	total := 0
	for _, members := range parts {
		if len(members) == 0 {
			t.Fatal("LDGPartition returned an empty partition")
		}
		for _, v := range members {
			if seen[v] {
				t.Fatalf("vertex %d in two partitions", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != g.NumNodes() {
		t.Fatalf("partitions cover %d of %d vertices", total, g.NumNodes())
	}
}

func TestBFSPartitionCanceled(t *testing.T) {
	g := gen.BarabasiAlbert(20000, 6, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BFSPartition(ctx, g, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
