package order

import (
	"sort"

	"gorder/internal/graph"
)

// Multilevel ordering: both papers drop Metis because its memory use
// does not scale, but the multilevel idea behind it — coarsen by
// matching, solve small, project back — works fine for *ordering* at
// a fraction of the cost. Multilevel coarsens the graph with greedy
// heavy-edge matching until it is small, orders the coarse graph with
// any expensive method (Gorder, typically — see core.MultilevelOrder),
// and expands supervertices back into their members, keeping matched
// pairs adjacent at every level.

// MultilevelOptions configures Multilevel.
type MultilevelOptions struct {
	// CoarsenTo stops coarsening when at most this many supervertices
	// remain (default 2048).
	CoarsenTo int
	// MaxLevels bounds the coarsening depth (default 20).
	MaxLevels int
	// OrderCoarse orders the coarsest graph. Nil defaults to RCM,
	// which is cheap and locality-friendly; core.MultilevelOrder
	// passes Gorder here.
	OrderCoarse func(g *graph.Graph) Permutation
}

// mlLevel is one coarsening level: an undirected weighted adjacency
// plus the mapping from this level's vertices to the two (or one)
// finer-level vertices they merge.
type mlLevel struct {
	adj    []map[int32]int64
	first  []int32 // finer-level member
	second []int32 // second member or -1
}

// Multilevel computes the multilevel ordering of g.
func Multilevel(g *graph.Graph, opt MultilevelOptions) Permutation {
	n := g.NumNodes()
	if n == 0 {
		return Permutation{}
	}
	if opt.CoarsenTo <= 0 {
		opt.CoarsenTo = 2048
	}
	if opt.MaxLevels <= 0 {
		opt.MaxLevels = 20
	}
	if opt.OrderCoarse == nil {
		opt.OrderCoarse = func(cg *graph.Graph) Permutation { return RCM(cg) }
	}

	// Level 0: undirected view with unit weights (parallel directions
	// merge into weight).
	u := g.Undirected()
	adj := make([]map[int32]int64, n)
	for v := 0; v < n; v++ {
		m := make(map[int32]int64)
		for _, w := range u.OutNeighbors(graph.NodeID(v)) {
			if int(w) != v {
				m[int32(w)]++
			}
		}
		adj[v] = m
	}

	var levels []mlLevel
	for len(adj) > opt.CoarsenTo && len(levels) < opt.MaxLevels {
		lvl, coarse := coarsen(adj)
		if len(coarse) >= len(adj) { // matching stalled
			break
		}
		levels = append(levels, lvl)
		adj = coarse
	}

	// Order the coarsest graph.
	coarseSeq := opt.OrderCoarse(toGraph(adj)).Sequence()

	// Expand back down: replace each supervertex by its members.
	seq := make([]graph.NodeID, 0, n)
	cur := make([]int32, len(coarseSeq))
	for i, v := range coarseSeq {
		cur[i] = int32(v)
	}
	for li := len(levels) - 1; li >= 0; li-- {
		lvl := levels[li]
		next := make([]int32, 0, 2*len(cur))
		for _, v := range cur {
			next = append(next, lvl.first[v])
			if lvl.second[v] >= 0 {
				next = append(next, lvl.second[v])
			}
		}
		cur = next
	}
	for _, v := range cur {
		seq = append(seq, graph.NodeID(v))
	}
	return FromSequence(seq)
}

// coarsen performs one round of greedy heavy-edge matching, visiting
// vertices in ascending degree order (light vertices first, the
// classic heuristic) and matching each with its heaviest unmatched
// neighbour.
func coarsen(adj []map[int32]int64) (mlLevel, []map[int32]int64) {
	n := len(adj)
	visit := make([]int32, n)
	for i := range visit {
		visit[i] = int32(i)
	}
	sort.SliceStable(visit, func(a, b int) bool {
		return len(adj[visit[a]]) < len(adj[visit[b]])
	})
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	for _, v := range visit {
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW int64
		for w, wt := range adj[v] {
			if match[w] == -1 && (wt > bestW || (wt == bestW && (best == -1 || w < best))) {
				best, bestW = w, wt
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v // matched with itself
		}
	}
	// Assign coarse IDs: one per pair (smaller member decides order).
	coarseID := make([]int32, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	lvl := mlLevel{}
	var nc int32
	for v := int32(0); v < int32(n); v++ {
		if coarseID[v] != -1 {
			continue
		}
		m := match[v]
		coarseID[v] = nc
		lvl.first = append(lvl.first, v)
		if m != v && m >= 0 {
			coarseID[m] = nc
			lvl.second = append(lvl.second, m)
		} else {
			lvl.second = append(lvl.second, -1)
		}
		nc++
	}
	// Build the coarse adjacency.
	coarse := make([]map[int32]int64, nc)
	for i := range coarse {
		coarse[i] = make(map[int32]int64)
	}
	for v := 0; v < n; v++ {
		cv := coarseID[v]
		for w, wt := range adj[v] {
			cw := coarseID[w]
			if cv != cw {
				coarse[cv][cw] += wt
			}
		}
	}
	lvl.adj = adj
	return lvl, coarse
}

// toGraph converts a weighted adjacency to an unweighted graph.Graph
// for the coarse orderer (weights guided the matching; the orderer
// sees topology).
func toGraph(adj []map[int32]int64) *graph.Graph {
	var edges []graph.Edge
	for v, m := range adj {
		for w := range m {
			edges = append(edges, graph.Edge{From: graph.NodeID(v), To: graph.NodeID(w)})
		}
	}
	return graph.FromEdgesDedup(len(adj), edges)
}
