package order

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"gorder/internal/graph"
)

// Permutation files are plain text — one new ID per line, line number
// = old ID — so they interoperate with the ordering files the
// original Gorder release and the replication's scripts exchange.

// WriteTo writes p in the text format. It returns the number of bytes
// written.
func (p Permutation) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	for _, v := range p {
		n, err := fmt.Fprintln(bw, v)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// WritePermutation writes p in the text format — the function-form
// twin of WriteTo, used where an io.Writer pipeline (such as the
// daemon's permutation-download endpoint) wants a plain error.
func WritePermutation(w io.Writer, p Permutation) error {
	_, err := p.WriteTo(w)
	return err
}

// ReadPermutation parses the text format and validates the result.
func ReadPermutation(r io.Reader) (Permutation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var p Permutation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		v, err := strconv.ParseUint(txt, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("order: line %d: %w", lineNo, err)
		}
		p = append(p, graph.NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("order: reading permutation: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
