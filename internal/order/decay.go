package order

import "gorder/internal/graph"

// ScoreDelta returns Score(gNew, p, w) - Score(gOld, pOld, w) without
// rescoring either graph, where gNew was derived from gOld by the
// given edge edits (plus any number of appended vertices) and p
// extends the old permutation pOld = p[:gOld.NumNodes()]: every old
// vertex must hold the position it had under pOld, with the new
// vertices occupying the trailing positions. That is exactly the shape
// core.OrderIncrementalCtx produces with a nil dirty set, so a quality
// monitor can maintain F(pi) across mutation batches in time
// proportional to the batch, not the graph.
//
// Only window pairs whose score can have changed are rescored: a pair
// (a, b) is affected only if S_s or S_n changed, which requires the
// in-neighbourhood or incident edges of a or b to have changed — and
// every changed edge (x, u) alters only in(u), out(x), and the shared
// in-neighbour x itself. Marking both endpoints of every edit plus all
// appended vertices therefore covers every affected pair with at least
// one marked endpoint. Edits that were no-ops (adds of present edges,
// deletes of absent ones) may be passed freely; their pairs rescore to
// a zero delta.
func ScoreDelta(gOld, gNew *graph.Graph, p Permutation, w int, added, removed []graph.Edge) int64 {
	nOld, nNew := gOld.NumNodes(), gNew.NumNodes()
	if len(p) != nNew || w <= 0 {
		return 0
	}
	mark := make([]bool, nNew)
	for v := nOld; v < nNew; v++ {
		mark[v] = true
	}
	for _, e := range append(append([]graph.Edge(nil), added...), removed...) {
		if int(e.From) < nNew && int(e.To) < nNew {
			mark[e.From], mark[e.To] = true, true
		}
	}
	seq := p.Sequence()
	var delta int64
	for d := 0; d < nNew; d++ {
		if !mark[d] {
			continue
		}
		i := int(p[d])
		lo, hi := i-w, i+w
		if lo < 0 {
			lo = 0
		}
		if hi > nNew-1 {
			hi = nNew - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			other := seq[j]
			// Pairs with two marked endpoints are visited twice; keep
			// the visit from the lower position.
			if mark[other] && j < i {
				continue
			}
			delta += PairScore(gNew, graph.NodeID(d), other)
			if d < nOld && int(other) < nOld {
				delta -= PairScore(gOld, graph.NodeID(d), other)
			}
		}
	}
	return delta
}
