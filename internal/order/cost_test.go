package order

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/graph"
)

func path3() *graph.Graph {
	return graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
}

func TestLinearCost(t *testing.T) {
	g := path3()
	if got := LinearCost(g, Identity(3)); got != 2 {
		t.Errorf("LinearCost(identity) = %v, want 2", got)
	}
	// Order 1,0,2: edge 0-1 distance 1, edge 1-2 distance 2.
	if got := LinearCost(g, Permutation{1, 0, 2}); got != 3 {
		t.Errorf("LinearCost = %v, want 3", got)
	}
}

func TestLogCost(t *testing.T) {
	g := path3()
	if got := LogCost(g, Identity(3)); got != 0 { // log 1 + log 1
		t.Errorf("LogCost(identity) = %v, want 0", got)
	}
	want := math.Log(2)
	if got := LogCost(g, Permutation{1, 0, 2}); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogCost = %v, want %v", got, want)
	}
}

func TestLogCostSelfLoop(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 0}, {From: 0, To: 1}})
	got := LogCost(g, Identity(2))
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("LogCost with self-loop = %v", got)
	}
}

func TestBandwidth(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 3}, {From: 1, To: 2}})
	if got := Bandwidth(g, Identity(4)); got != 3 {
		t.Errorf("Bandwidth = %d, want 3", got)
	}
}

func TestPairScore(t *testing.T) {
	// 2 -> 0, 2 -> 1 (common in-neighbour), plus 0 -> 1.
	g := graph.FromEdges(3, []graph.Edge{{From: 2, To: 0}, {From: 2, To: 1}, {From: 0, To: 1}})
	if got := PairScore(g, 0, 1); got != 2 { // Ss=1 (vertex 2), Sn=1 (edge 0->1)
		t.Errorf("PairScore(0,1) = %d, want 2", got)
	}
	if got := PairScore(g, 1, 0); got != 2 { // symmetric
		t.Errorf("PairScore(1,0) = %d, want 2", got)
	}
	// Mutual edges count twice in Sn.
	g2 := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}})
	if got := PairScore(g2, 0, 1); got != 2 {
		t.Errorf("mutual PairScore = %d, want 2", got)
	}
}

func TestScoreWindow(t *testing.T) {
	// Path 0->1->2 with identity order.
	g := path3()
	// w=1: pairs (1,0) and (2,1): each Sn=1, Ss=0 → F=2.
	if got := Score(g, Identity(3), 1); got != 2 {
		t.Errorf("Score w=1 = %d, want 2", got)
	}
	// w=2 adds pair (2,0): Sn=0, Ss=0 (in-neighbour sets {1} vs {0} wait:
	// in(2) = {1}, in(0) = {} → 0). F stays 2.
	if got := Score(g, Identity(3), 2); got != 2 {
		t.Errorf("Score w=2 = %d, want 2", got)
	}
}

func TestScoreSymmetricUnderReversal(t *testing.T) {
	// F counts unordered close pairs, so reversing the order preserves it.
	rng := rand.New(rand.NewSource(9))
	g := randGraph(rng, 30, 120)
	p := Identity(30)
	rev := make(Permutation, 30)
	for i := range rev {
		rev[i] = graph.NodeID(29 - i)
	}
	for _, w := range []int{1, 3, 7} {
		if a, b := Score(g, p, w), Score(g, rev, w); a != b {
			t.Errorf("w=%d: Score(id)=%d != Score(reversed)=%d", w, a, b)
		}
	}
}

// Score with w >= n-1 is order-independent (every pair is in window).
func TestQuickScoreFullWindowInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randGraph(rng, n, rng.Intn(3*n))
		p := Permutation(randPerm(rng, n))
		q := Permutation(randPerm(rng, n))
		return Score(g, p, n-1) == Score(g, q, n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Score is monotone non-decreasing in the window size.
func TestQuickScoreMonotoneInWindow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randGraph(rng, n, rng.Intn(3*n))
		p := Permutation(randPerm(rng, n))
		prev := int64(0)
		for w := 1; w < n; w++ {
			s := Score(g, p, w)
			if s < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// packingTestGraph has exactly four hot vertices (0..3, in-degree 9)
// among 64 vertices whose baseline in-degree is 1: m = 96, average
// in-degree 1.5, so hot means in-degree > 1.5.
func packingTestGraph() *graph.Graph {
	var edges []graph.Edge
	for v := 0; v < 64; v++ {
		edges = append(edges, graph.Edge{From: graph.NodeID((v + 1) % 64), To: graph.NodeID(v)})
	}
	for h := 0; h < 4; h++ {
		for s := 10; s < 18; s++ {
			edges = append(edges, graph.Edge{From: graph.NodeID(s), To: graph.NodeID(h)})
		}
	}
	return graph.FromEdges(64, edges)
}

func TestPackingFactorHandComputed(t *testing.T) {
	g := packingTestGraph()
	// Identity: hot vertices 0..3 share cache block 0 → 4 hot vertices
	// in 1 hot block.
	if got := PackingFactor(g, Identity(64)); got != 4 {
		t.Errorf("identity packing factor = %v, want 4", got)
	}
	// Spread: one hot vertex per block (positions 0, 16, 32, 48) → 4
	// hot vertices in 4 hot blocks.
	spread := make(Permutation, 64)
	taken := make([]bool, 64)
	for h := 0; h < 4; h++ {
		spread[h] = uint32(16 * h)
		taken[16*h] = true
	}
	next := 0
	for v := 4; v < 64; v++ {
		for taken[next] {
			next++
		}
		spread[v] = uint32(next)
		taken[next] = true
	}
	if got := PackingFactor(g, spread); got != 1 {
		t.Errorf("spread packing factor = %v, want 1", got)
	}
}

func TestPackingFactorHubClusterMaximal(t *testing.T) {
	// HubCluster packs the hot set contiguously from position 0, which
	// achieves the best possible packing factor for the graph.
	g := packingTestGraph()
	got := PackingFactor(g, HubCluster(g))
	if got != 4 { // 4 hot vertices fit one block
		t.Errorf("HubCluster packing factor = %v, want 4", got)
	}
}

func TestPackingFactorEdgeCases(t *testing.T) {
	if got := PackingFactor(graph.FromEdges(0, nil), Permutation{}); got != 0 {
		t.Errorf("empty graph = %v, want 0", got)
	}
	// Uniform in-degree: no vertex is strictly above average → 0.
	ring := make([]graph.Edge, 8)
	for v := 0; v < 8; v++ {
		ring[v] = graph.Edge{From: graph.NodeID(v), To: graph.NodeID((v + 1) % 8)}
	}
	if got := PackingFactor(graph.FromEdges(8, ring), Identity(8)); got != 0 {
		t.Errorf("uniform graph = %v, want 0", got)
	}
}

func TestQuickPackingFactorBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		g := randGraph(rng, n, rng.Intn(5*n))
		pf := PackingFactor(g, Random(n, uint64(seed)))
		if pf == 0 {
			return true // no hot vertices
		}
		return pf >= 1 && pf <= CacheBlockEntries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
