package order

import (
	"sort"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

// Random returns a uniformly random permutation — the replication's
// added worst-case benchmark.
func Random(n int, seed uint64) Permutation {
	return Permutation(gen.NewRNG(seed).Perm(n))
}

// InDegSort orders vertices by descending in-degree, ties broken by
// original ID ("DegSort" in the papers). Vertices of similar degree
// end up on the same cache line.
func InDegSort(g *graph.Graph) Permutation {
	n := g.NumNodes()
	seq := make([]graph.NodeID, n)
	for i := range seq {
		seq[i] = graph.NodeID(i)
	}
	sort.SliceStable(seq, func(a, b int) bool {
		return g.InDegree(seq[a]) > g.InDegree(seq[b])
	})
	return FromSequence(seq)
}

// ChDFS orders vertices by depth-first discovery time ("children
// depth-first search"). Traversal starts at vertex 0, explores
// out-neighbours in ascending original-ID order, and restarts at the
// lowest-numbered unvisited vertex until all vertices are placed —
// exactly how the DFS kernel itself walks the graph, which is why this
// ordering serves DFS so well in the replication.
func ChDFS(g *graph.Graph) Permutation {
	n := g.NumNodes()
	seq := make([]graph.NodeID, 0, n)
	visited := make([]bool, n)
	stack := make([]graph.NodeID, 0, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		stack = append(stack[:0], graph.NodeID(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[u] {
				continue
			}
			visited[u] = true
			seq = append(seq, u)
			adj := g.OutNeighbors(u)
			// Push in reverse so the smallest neighbour is visited first.
			for i := len(adj) - 1; i >= 0; i-- {
				if !visited[adj[i]] {
					stack = append(stack, adj[i])
				}
			}
		}
	}
	return FromSequence(seq)
}

// RCM computes the Reverse Cuthill–McKee ordering over the undirected
// view of g: a BFS that starts from a minimum-degree vertex of each
// component, enqueues neighbours in ascending degree order, and
// reverses the final visit sequence. It minimises bandwidth on
// mesh-like graphs and, per the papers, is the strongest simple
// challenger to Gorder for BFS-shaped kernels.
func RCM(g *graph.Graph) Permutation {
	u := g.Undirected()
	n := u.NumNodes()
	// Vertices sorted by degree once; used to pick component starts.
	byDegree := make([]graph.NodeID, n)
	for i := range byDegree {
		byDegree[i] = graph.NodeID(i)
	}
	sort.SliceStable(byDegree, func(a, b int) bool {
		return u.OutDegree(byDegree[a]) < u.OutDegree(byDegree[b])
	})
	seq := make([]graph.NodeID, 0, n)
	visited := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	var nbuf []graph.NodeID
	for _, s := range byDegree {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			seq = append(seq, v)
			nbuf = append(nbuf[:0], u.OutNeighbors(v)...)
			sort.SliceStable(nbuf, func(a, b int) bool {
				return u.OutDegree(nbuf[a]) < u.OutDegree(nbuf[b])
			})
			for _, w := range nbuf {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	// Reverse the Cuthill–McKee sequence.
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	return FromSequence(seq)
}

// SlashBurn computes the simplified SlashBurn ordering the replication
// describes: repeatedly move one highest-degree hub to the front of
// the order, remove it, and move vertices that thereby become isolated
// to the back; iterate until no vertex remains. Degrees are over the
// undirected view. Among equal-degree hubs the lowest ID is taken, so
// the ordering is deterministic.
func SlashBurn(g *graph.Graph) Permutation {
	u := g.Undirected()
	n := u.NumNodes()
	deg := make([]int32, n)
	// buckets[d] holds vertices of current degree d; lazy entries are
	// filtered on pop (classic lazy bucket queue).
	maxDeg := 0
	for i := 0; i < n; i++ {
		deg[i] = int32(u.OutDegree(graph.NodeID(i)))
		if int(deg[i]) > maxDeg {
			maxDeg = int(deg[i])
		}
	}
	buckets := make([][]graph.NodeID, maxDeg+1)
	for i := n - 1; i >= 0; i-- { // reverse so lowest IDs pop first
		buckets[deg[i]] = append(buckets[deg[i]], graph.NodeID(i))
	}
	removed := make([]bool, n)
	front := make([]graph.NodeID, 0, n)
	back := make([]graph.NodeID, 0, n)
	remaining := n

	// Move all initially isolated vertices straight to the back.
	for _, v := range buckets[0] {
		removed[v] = true
		back = append(back, v)
		remaining--
	}
	buckets[0] = buckets[0][:0]

	// The maximum live degree never increases (removals only decrement
	// degrees), so the bucket scan proceeds monotonically downward.
	cur := maxDeg
	for remaining > 0 {
		// Find the highest-degree live vertex.
		var hub graph.NodeID
		found := false
		for cur > 0 && !found {
			b := buckets[cur]
			for len(b) > 0 {
				v := b[len(b)-1]
				b = b[:len(b)-1]
				if !removed[v] && deg[v] == int32(cur) {
					hub, found = v, true
					break
				}
			}
			buckets[cur] = b
			if !found {
				cur--
			}
		}
		if !found {
			break // only isolated vertices left; handled below
		}
		removed[hub] = true
		front = append(front, hub)
		remaining--
		for _, w := range u.OutNeighbors(hub) {
			if removed[w] {
				continue
			}
			deg[w]--
			if deg[w] == 0 {
				removed[w] = true
				back = append(back, w)
				remaining--
			} else {
				buckets[deg[w]] = append(buckets[deg[w]], w)
			}
		}
	}
	// Anything left (shouldn't happen) goes to the back in ID order.
	for v := 0; v < n; v++ {
		if !removed[v] {
			back = append(back, graph.NodeID(v))
		}
	}
	// Final order: hubs in removal order, then isolated-at-removal
	// vertices in reverse removal order (later burns sit closer to the
	// hubs that caused them).
	seq := front
	for i := len(back) - 1; i >= 0; i-- {
		seq = append(seq, back[i])
	}
	return FromSequence(seq)
}

// LDG computes the Linear Deterministic Greedy bin ordering: stream
// vertices in original order into bins of capacity binSize (the papers
// use 64 so a bin matches a cache line of 4-byte entries), placing
// each vertex in the bin maximising (1+|N(u) ∩ B|)·(1-|B|/binSize).
// The final order concatenates the bins. Neighbourhoods are over the
// undirected view.
func LDG(g *graph.Graph, binSize int) Permutation {
	bins := ldgBins(g, binSize)
	seq := make([]graph.NodeID, 0, g.NumNodes())
	for _, b := range bins {
		seq = append(seq, b...)
	}
	return FromSequence(seq)
}

// ldgBins runs the LDG streaming placement and returns the bins
// themselves (vertices in placement order). LDG concatenates them
// into an ordering; LDGPartition hands them to the partition-parallel
// Gorder as partitions.
func ldgBins(g *graph.Graph, binSize int) [][]graph.NodeID {
	if binSize < 1 {
		binSize = 64
	}
	u := g.Undirected()
	n := u.NumNodes()
	numBins := (n + binSize - 1) / binSize
	binOf := make([]int32, n)
	for i := range binOf {
		binOf[i] = -1
	}
	binSizeCount := make([]int, numBins)
	bins := make([][]graph.NodeID, numBins)
	nbrCount := make(map[int32]int, 16)
	for v := 0; v < n; v++ {
		for k := range nbrCount {
			delete(nbrCount, k)
		}
		for _, w := range u.OutNeighbors(graph.NodeID(v)) {
			if b := binOf[w]; b >= 0 {
				nbrCount[b]++
			}
		}
		best, bestScore := -1, -1.0
		consider := func(b int, cnt int) {
			if binSizeCount[b] >= binSize {
				return
			}
			score := (1 + float64(cnt)) * (1 - float64(binSizeCount[b])/float64(binSize))
			if score > bestScore || (score == bestScore && b < best) {
				best, bestScore = b, score
			}
		}
		for b, cnt := range nbrCount {
			consider(int(b), cnt)
		}
		// Also consider the emptiest bin as the cnt=0 fallback.
		minB := -1
		for b := 0; b < numBins; b++ {
			if binSizeCount[b] < binSize && (minB < 0 || binSizeCount[b] < binSizeCount[minB]) {
				minB = b
				if binSizeCount[b] == 0 {
					break // cannot beat an empty bin
				}
			}
		}
		if minB >= 0 {
			consider(minB, 0)
		}
		binOf[v] = int32(best)
		binSizeCount[best]++
		bins[best] = append(bins[best], graph.NodeID(v))
	}
	return bins
}
