package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

func TestSlashBurnFullValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		g := randGraph(rng, n, rng.Intn(4*n))
		for _, k := range []int{0, 1, 3, n} {
			p := SlashBurnFull(g, k)
			if len(p) != n || p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSlashBurnFullEmpty(t *testing.T) {
	if p := SlashBurnFull(graph.FromEdges(0, nil), 1); len(p) != 0 {
		t.Errorf("empty graph: %v", p)
	}
}

func TestSlashBurnFullStar(t *testing.T) {
	// Star: the hub must go first; every leaf becomes a singleton
	// spoke and goes to the back.
	edges := make([]graph.Edge, 0, 10)
	for i := 1; i <= 10; i++ {
		edges = append(edges, graph.Edge{From: 0, To: graph.NodeID(i)})
	}
	g := graph.FromEdges(11, edges)
	p := SlashBurnFull(g, 1)
	if p[0] != 0 {
		t.Errorf("hub position = %d, want 0", p[0])
	}
	for v := 1; v <= 10; v++ {
		if int(p[v]) < 1 {
			t.Errorf("leaf %d at position %d", v, p[v])
		}
	}
}

func TestSlashBurnFullTwoCommunities(t *testing.T) {
	// Two cliques joined through a single bridge hub. Removing the
	// bridge separates them; the smaller community should be burned to
	// the back, the larger continue as the giant component.
	var edges []graph.Edge
	addClique := func(members []graph.NodeID) {
		for _, a := range members {
			for _, b := range members {
				if a != b {
					edges = append(edges, graph.Edge{From: a, To: b})
				}
			}
		}
	}
	big := []graph.NodeID{0, 1, 2, 3, 4, 5}
	small := []graph.NodeID{6, 7, 8}
	addClique(big)
	addClique(small)
	// Bridge vertex 9 connects to everything (max degree).
	for v := graph.NodeID(0); v < 9; v++ {
		edges = append(edges, graph.Edge{From: 9, To: v}, graph.Edge{From: v, To: 9})
	}
	g := graph.FromEdges(10, edges)
	p := SlashBurnFull(g, 1)
	if p[9] != 0 {
		t.Fatalf("bridge hub at position %d, want 0", p[9])
	}
	// The small clique's positions must all be after the big clique's.
	maxBig, minSmall := graph.NodeID(0), graph.NodeID(10)
	for _, v := range big {
		if p[v] > maxBig {
			maxBig = p[v]
		}
	}
	for _, v := range small {
		if p[v] < minSmall {
			minSmall = p[v]
		}
	}
	if minSmall < maxBig {
		t.Errorf("small community (min pos %d) not after big (max pos %d): %v", minSmall, maxBig, p)
	}
}

func TestSlashBurnFullVsSimplifiedScore(t *testing.T) {
	// Both variants must comfortably beat random on the Gorder score
	// for a hub-and-spoke graph; this is the comparison the
	// replication's §2.3 discrepancy is about.
	g := gen.BarabasiAlbert(2000, 5, 11)
	full := Score(g, SlashBurnFull(g, 0), 5)
	simp := Score(g, SlashBurn(g), 5)
	rnd := Score(g, Random(g.NumNodes(), 1), 5)
	if full <= rnd || simp <= rnd {
		t.Errorf("scores: full=%d simplified=%d random=%d", full, simp, rnd)
	}
}

func TestSlashBurnFullDefaultK(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 2)
	p0 := SlashBurnFull(g, 0)
	pd := SlashBurnFull(g, g.NumNodes()/200)
	for i := range p0 {
		if p0[i] != pd[i] {
			t.Fatal("k<=0 did not select the paper's 0.5% default")
		}
	}
}
