package order

import (
	"context"
	"math"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

// AnnealOptions tunes the simulated-annealing heuristic behind MinLA
// and MinLogA, following the replication's formulation: temperature
// decreases linearly, T(s) = 1 - s/S, and an energy-increasing swap is
// accepted with probability exp(-e / (K·T)).
type AnnealOptions struct {
	// Steps is the number of swap attempts S. Zero means the
	// replication's default, S = m.
	Steps int
	// K is the standard energy k. Zero means local search (only
	// improving swaps are accepted) — which the replication found as
	// good as any tuned K. Negative means the default K = m/n.
	K float64
	// Seed drives the random swap choices.
	Seed uint64
}

// MinLA approximately minimises the linear arrangement energy
// sum |pi(u)-pi(v)| by simulated annealing.
func MinLA(g *graph.Graph, opt AnnealOptions) Permutation {
	p, _ := MinLACtx(context.Background(), g, opt)
	return p
}

// MinLACtx is MinLA with cooperative cancellation: the annealing loop
// checks ctx periodically and returns ctx.Err() (with a nil
// permutation) once the context is done. With the default S = m steps
// the annealing is the most expensive baseline after Gorder itself, so
// service deadlines must be able to interrupt it.
func MinLACtx(ctx context.Context, g *graph.Graph, opt AnnealOptions) (Permutation, error) {
	return anneal(ctx, g, opt, func(d float64) float64 { return d })
}

// MinLogA approximately minimises sum log|pi(u)-pi(v)|.
func MinLogA(g *graph.Graph, opt AnnealOptions) Permutation {
	p, _ := MinLogACtx(context.Background(), g, opt)
	return p
}

// MinLogACtx is MinLogA with cooperative cancellation; see MinLACtx.
func MinLogACtx(ctx context.Context, g *graph.Graph, opt AnnealOptions) (Permutation, error) {
	return anneal(ctx, g, opt, func(d float64) float64 {
		if d <= 0 {
			return 0
		}
		return math.Log(d)
	})
}

// annealCancelInterval is how many swap attempts run between context
// checks: frequent enough that a deadline interrupts within
// microseconds, rare enough that ctx.Err() stays off the hot path.
const annealCancelInterval = 1024

// anneal runs the swap-based annealing with the given per-edge
// distance cost. Each step picks two vertices, computes the exact
// energy delta of swapping their positions in O(deg_a + deg_b), and
// accepts per the Metropolis rule.
func anneal(ctx context.Context, g *graph.Graph, opt AnnealOptions, cost func(float64) float64) (Permutation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n < 2 {
		return Identity(n), nil
	}
	m := int(g.NumEdges())
	steps := opt.Steps
	if steps == 0 {
		steps = m
	}
	k := opt.K
	if k < 0 {
		k = float64(m) / float64(n)
	}
	rng := gen.NewRNG(opt.Seed)
	p := Identity(n)

	// Merged incidence lists (out + in neighbours, with multiplicity)
	// let the delta of a swap be computed locally.
	inc := make([][]graph.NodeID, n)
	for u := 0; u < n; u++ {
		id := graph.NodeID(u)
		l := make([]graph.NodeID, 0, g.Degree(id))
		l = append(l, g.OutNeighbors(id)...)
		l = append(l, g.InNeighbors(id)...)
		inc[u] = l
	}
	// energyAt returns a's contribution with a at position pa, b fixed
	// at pb. Edges between a and b are counted once from a's side and
	// skipped from b's, and their distance is unchanged by a swap
	// anyway; self-loops contribute 0.
	contrib := func(a graph.NodeID, pa float64, b graph.NodeID) float64 {
		e := 0.0
		for _, w := range inc[a] {
			if w == a || w == b {
				continue
			}
			e += cost(math.Abs(pa - float64(p[w])))
		}
		return e
	}
	for s := 0; s < steps; s++ {
		if s%annealCancelInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		pa, pb := float64(p[a]), float64(p[b])
		before := contrib(a, pa, b) + contrib(b, pb, a)
		after := contrib(a, pb, b) + contrib(b, pa, a)
		e := after - before
		accept := e < 0
		if !accept && k > 0 {
			t := 1 - float64(s)/float64(steps)
			if t > 0 && rng.Float64() < math.Exp(-e/(k*t)) {
				accept = true
			}
		}
		if accept {
			p[a], p[b] = p[b], p[a]
		}
	}
	return p, nil
}
