package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

// Every ordering method must return a valid permutation on arbitrary
// graphs — the fundamental contract of the framework.
func TestQuickAllOrderingsValid(t *testing.T) {
	methods := map[string]func(g *graph.Graph, seed uint64) Permutation{
		"random":    func(g *graph.Graph, seed uint64) Permutation { return Random(g.NumNodes(), seed) },
		"indegsort": func(g *graph.Graph, _ uint64) Permutation { return InDegSort(g) },
		"chdfs":     func(g *graph.Graph, _ uint64) Permutation { return ChDFS(g) },
		"rcm":       func(g *graph.Graph, _ uint64) Permutation { return RCM(g) },
		"slashburn": func(g *graph.Graph, _ uint64) Permutation { return SlashBurn(g) },
		"ldg":       func(g *graph.Graph, _ uint64) Permutation { return LDG(g, 8) },
		"minla": func(g *graph.Graph, seed uint64) Permutation {
			return MinLA(g, AnnealOptions{Steps: 200, Seed: seed})
		},
		"minloga": func(g *graph.Graph, seed uint64) Permutation {
			return MinLogA(g, AnnealOptions{Steps: 200, K: -1, Seed: seed})
		},
	}
	for name, method := range methods {
		method := method
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(60)
				g := randGraph(rng, n, rng.Intn(4*n))
				p := method(g, uint64(seed))
				return len(p) == n && p.Validate() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRandomDeterministicInSeed(t *testing.T) {
	a, b := Random(100, 7), Random(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic in seed")
		}
	}
}

func TestInDegSortOrder(t *testing.T) {
	// In-degrees: v0=0, v1=2, v2=1.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 2, To: 1}, {From: 0, To: 2}})
	p := InDegSort(g)
	if p[1] != 0 || p[2] != 1 || p[0] != 2 {
		t.Errorf("InDegSort = %v, want [2 0 1]", p)
	}
}

func TestInDegSortTieBreakByID(t *testing.T) {
	g := graph.FromEdges(3, nil) // all in-degree 0
	p := InDegSort(g)
	for i, v := range p {
		if int(v) != i {
			t.Fatalf("tie-break not by ID: %v", p)
		}
	}
}

func TestChDFSPreorder(t *testing.T) {
	// 0 -> {1, 3}, 1 -> {2}: DFS preorder from 0 is 0,1,2,3.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 3}, {From: 1, To: 2}})
	p := ChDFS(g)
	wantSeq := []graph.NodeID{0, 1, 2, 3}
	seq := p.Sequence()
	for i := range wantSeq {
		if seq[i] != wantSeq[i] {
			t.Fatalf("ChDFS sequence = %v, want %v", seq, wantSeq)
		}
	}
}

func TestChDFSCoversDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}})
	p := ChDFS(g)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	seq := p.Sequence()
	want := []graph.NodeID{0, 1, 2, 3}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", seq, want)
		}
	}
}

func TestRCMReducesBandwidthOnShuffledGrid(t *testing.T) {
	g := gen.Grid(8, 8)
	shuffled := g.Relabel(Random(g.NumNodes(), 3))
	before := Bandwidth(shuffled, Identity(shuffled.NumNodes()))
	after := Bandwidth(shuffled, RCM(shuffled))
	if after >= before {
		t.Errorf("RCM bandwidth %d not below shuffled %d", after, before)
	}
	// An 8x8 grid has optimal bandwidth 8; RCM should get close.
	if after > 16 {
		t.Errorf("RCM bandwidth %d far from optimal 8", after)
	}
}

func TestSlashBurnHubFirst(t *testing.T) {
	// Star: vertex 0 linked with everyone. SlashBurn must place the hub
	// at position 0.
	edges := make([]graph.Edge, 0, 10)
	for i := 1; i <= 10; i++ {
		edges = append(edges, graph.Edge{From: 0, To: graph.NodeID(i)})
	}
	g := graph.FromEdges(11, edges)
	p := SlashBurn(g)
	if p[0] != 0 {
		t.Errorf("hub position = %d, want 0", p[0])
	}
}

func TestSlashBurnIsolatedLast(t *testing.T) {
	// One edge 0-1 plus isolated vertices 2, 3.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}})
	p := SlashBurn(g)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p[2] < 2 || p[3] < 2 {
		t.Errorf("isolated vertices not at back: %v", p)
	}
}

func TestLDGBinCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randGraph(rng, 100, 400)
	const k = 8
	p := LDG(g, k)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Positions [i*k, (i+1)*k) form a bin; validity is mostly the
	// capacity property: every vertex got a position, no bin overflows
	// by construction since positions are unique. Check neighbours of a
	// clique end up in one bin.
	clique := graph.FromEdges(20, cliqueEdges(4))
	pc := LDG(clique, k)
	bin := func(v graph.NodeID) int { return int(pc[v]) / k }
	// Vertices 1..3 stream after 0 and should join its bin.
	for v := graph.NodeID(1); v < 4; v++ {
		if bin(v) != bin(0) {
			t.Errorf("clique vertex %d in bin %d, want %d", v, bin(v), bin(0))
		}
	}
}

func cliqueEdges(k int) []graph.Edge {
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				edges = append(edges, graph.Edge{From: graph.NodeID(i), To: graph.NodeID(j)})
			}
		}
	}
	return edges
}

func TestMinLAImprovesShuffledRing(t *testing.T) {
	ring := gen.Ring(64)
	shuffled := ring.Relabel(Random(64, 11))
	before := LinearCost(shuffled, Identity(64))
	p := MinLA(shuffled, AnnealOptions{Steps: 50000, Seed: 1}) // K=0: local search
	after := LinearCost(shuffled, p)
	if after >= before {
		t.Errorf("MinLA cost %v not below initial %v", after, before)
	}
}

func TestMinLogAImproves(t *testing.T) {
	ring := gen.Ring(64)
	shuffled := ring.Relabel(Random(64, 12))
	before := LogCost(shuffled, Identity(64))
	p := MinLogA(shuffled, AnnealOptions{Steps: 50000, Seed: 2})
	after := LogCost(shuffled, p)
	if after >= before {
		t.Errorf("MinLogA cost %v not below initial %v", after, before)
	}
}

func TestAnnealHighKIsRandomish(t *testing.T) {
	// With huge K every swap is accepted, so the result should NOT
	// improve the energy the way local search does — mirroring the
	// replication's Figure 3 observation.
	ring := gen.Ring(64)
	shuffled := ring.Relabel(Random(64, 13))
	local := LinearCost(shuffled, MinLA(shuffled, AnnealOptions{Steps: 20000, Seed: 3}))
	hot := LinearCost(shuffled, MinLA(shuffled, AnnealOptions{Steps: 20000, K: 1e12, Seed: 3}))
	if hot <= local {
		t.Errorf("hot annealing (%v) unexpectedly beat local search (%v)", hot, local)
	}
}

func TestAnnealTinyGraphs(t *testing.T) {
	for n := 0; n <= 2; n++ {
		g := graph.FromEdges(n, nil)
		p := MinLA(g, AnnealOptions{Steps: 10})
		if len(p) != n || p.Validate() != nil {
			t.Errorf("n=%d: invalid permutation %v", n, p)
		}
	}
}
