package order

import (
	"context"

	"gorder/internal/graph"
)

// Hub-aware lightweight orderings from the follow-up literature the
// replication cites (Balaji & Lucia, "When is Graph Reordering an
// Optimization?", IISWC 2018; Faldu et al.'s HubSort/HubCluster/DBG
// family, arXiv 2001.08448). They cost a single pass plus (for
// HubSort) a sort of the hot vertices, and our wall-clock experiments
// (EXPERIMENTS.md, "host effect") show why they matter: clustering
// the hot vertices captures much of the benefit of a full reordering
// at a fraction of the ordering cost.
//
// The implementations live in parallel.go: each one runs as a
// parallel bucket fill over a fixed chunk grid, so the *Ctx variants
// take a worker count and a context while these wrappers keep the
// original serial signatures. The permutation is identical at any
// worker count.

// HubSort places the hot vertices (in-degree above average) first,
// sorted by descending in-degree, and keeps every cold vertex after
// them in original order — preserving whatever locality the original
// order had among the cold majority.
func HubSort(g *graph.Graph) Permutation {
	p, _ := HubSortCtx(context.Background(), g, 0)
	return p
}

// HubCluster moves the hot vertices to the front *without sorting
// them* — hot and cold blocks both keep original relative order. See
// HubClusterCtx.
func HubCluster(g *graph.Graph) Permutation {
	p, _ := HubClusterCtx(context.Background(), g, 0)
	return p
}

// DBG computes Degree-Based Grouping: vertices are binned into
// coarse in-degree classes (powers of two around the average degree),
// classes are laid out hottest-first, and the original order is kept
// inside each class. Unlike a full sort it never reorders vertices of
// similar degree, so it preserves intra-class locality — the property
// Balaji & Lucia identify as the reason DBG is hard to beat.
func DBG(g *graph.Graph) Permutation {
	p, _ := DBGCtx(context.Background(), g, 0)
	return p
}
