package order

import (
	"sort"

	"gorder/internal/graph"
)

// Hub-aware lightweight orderings from the follow-up literature the
// replication cites (Balaji & Lucia, "When is Graph Reordering an
// Optimization?", IISWC 2018; Faldu et al.'s HubSort/HubCluster
// family). They cost a single pass plus a sort of the hot vertices,
// and our wall-clock experiments (EXPERIMENTS.md, "host effect") show
// why they matter: clustering the hot vertices captures much of the
// benefit of a full reordering at a fraction of the ordering cost.

// HubSort places the hot vertices (in-degree above average) first,
// sorted by descending in-degree, and keeps every cold vertex after
// them in original order — preserving whatever locality the original
// order had among the cold majority.
func HubSort(g *graph.Graph) Permutation {
	n := g.NumNodes()
	if n == 0 {
		return Permutation{}
	}
	avg := float64(g.NumEdges()) / float64(n)
	var hot, cold []graph.NodeID
	for v := 0; v < n; v++ {
		if float64(g.InDegree(graph.NodeID(v))) > avg {
			hot = append(hot, graph.NodeID(v))
		} else {
			cold = append(cold, graph.NodeID(v))
		}
	}
	sort.SliceStable(hot, func(a, b int) bool {
		return g.InDegree(hot[a]) > g.InDegree(hot[b])
	})
	return FromSequence(append(hot, cold...))
}

// DBG computes Degree-Based Grouping: vertices are binned into
// coarse in-degree classes (powers of two around the average degree),
// classes are laid out hottest-first, and the original order is kept
// inside each class. Unlike a full sort it never reorders vertices of
// similar degree, so it preserves intra-class locality — the property
// Balaji & Lucia identify as the reason DBG is hard to beat.
func DBG(g *graph.Graph) Permutation {
	n := g.NumNodes()
	if n == 0 {
		return Permutation{}
	}
	avg := float64(g.NumEdges()) / float64(n)
	if avg < 1 {
		avg = 1
	}
	// Class 0: deg > 32·avg; class 1: > 16·avg; ... class 6: > avg/2;
	// class 7: the rest. Thresholds follow the DBG paper's geometric
	// spacing.
	thresholds := []float64{32 * avg, 16 * avg, 8 * avg, 4 * avg, 2 * avg, avg, avg / 2}
	classes := make([][]graph.NodeID, len(thresholds)+1)
	for v := 0; v < n; v++ {
		d := float64(g.InDegree(graph.NodeID(v)))
		placed := false
		for c, th := range thresholds {
			if d > th {
				classes[c] = append(classes[c], graph.NodeID(v))
				placed = true
				break
			}
		}
		if !placed {
			classes[len(thresholds)] = append(classes[len(thresholds)], graph.NodeID(v))
		}
	}
	seq := make([]graph.NodeID, 0, n)
	for _, class := range classes {
		seq = append(seq, class...)
	}
	return FromSequence(seq)
}
