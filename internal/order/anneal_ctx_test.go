package order

import (
	"context"
	"errors"
	"testing"
	"time"

	"gorder/internal/gen"
)

// The annealing loops are the most expensive baselines after Gorder;
// service deadlines must be able to interrupt them mid-run, not just
// refuse to start them.
func TestAnnealCtxShortDeadlineReturnsFast(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 6, 1)
	for name, run := range map[string]func(ctx context.Context) (Permutation, error){
		"MinLA": func(ctx context.Context) (Permutation, error) {
			// Far more steps than a few ms allow, so only cancellation
			// can explain a fast return.
			return MinLACtx(ctx, g, AnnealOptions{Steps: 200_000_000, Seed: 1})
		},
		"MinLogA": func(ctx context.Context) (Permutation, error) {
			return MinLogACtx(ctx, g, AnnealOptions{Steps: 200_000_000, Seed: 1})
		},
	} {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		start := time.Now()
		p, err := run(ctx)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want DeadlineExceeded", name, err)
		}
		if p != nil {
			t.Errorf("%s: canceled run returned a permutation", name)
		}
		// Generous bound: the run must end promptly after the 10 ms
		// deadline, nowhere near the hundreds of seconds the full step
		// count would take.
		if elapsed > 2*time.Second {
			t.Errorf("%s: deadline-exceeded run took %s", name, elapsed)
		}
	}
}

func TestAnnealCtxCanceledBeforeStart(t *testing.T) {
	g := gen.BarabasiAlbert(50, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinLACtx(ctx, g, AnnealOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("MinLACtx on canceled ctx: %v", err)
	}
}

// The ctx variants with a background context must match the plain
// entry points exactly (same RNG stream, same result).
func TestAnnealCtxMatchesPlain(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 2)
	plain := MinLA(g, AnnealOptions{Seed: 7})
	withCtx, err := MinLACtx(context.Background(), g, AnnealOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatal("MinLACtx(Background) diverges from MinLA")
		}
	}
}
