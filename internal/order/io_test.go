package order

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPermutationRoundTrip(t *testing.T) {
	p := Permutation{2, 0, 1, 3}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPermutation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("round trip = %v, want %v", q, p)
		}
	}
}

func TestReadPermutationRejects(t *testing.T) {
	cases := map[string]string{
		"non-numeric":  "0\nx\n",
		"duplicate":    "0\n0\n",
		"out of range": "0\n5\n",
		"negative":     "-1\n",
	}
	for name, in := range cases {
		if _, err := ReadPermutation(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWritePermutationRoundTrip(t *testing.T) {
	p := Permutation{3, 1, 4, 0, 2}
	var buf bytes.Buffer
	if err := WritePermutation(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPermutation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("round trip = %v, want %v", q, p)
		}
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(b []byte) (int, error) {
	if w.after -= len(b); w.after <= 0 {
		return 0, errors.New("disk full")
	}
	return len(b), nil
}

func TestWritePermutationPropagatesWriteError(t *testing.T) {
	p := Permutation(Identity(10000))
	if err := WritePermutation(&failWriter{after: 16}, p); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestReadPermutationShortFile(t *testing.T) {
	// A valid 4-vertex file truncated after two lines: the surviving
	// values reference positions past the truncated length, so the
	// validator must reject it rather than yield a 2-vertex "perm".
	full := "2\n0\n1\n3\n"
	if _, err := ReadPermutation(strings.NewReader(full)); err != nil {
		t.Fatalf("full file rejected: %v", err)
	}
	if _, err := ReadPermutation(strings.NewReader(full[:4])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

type failReader struct{ r io.Reader }

func (f *failReader) Read(b []byte) (int, error) {
	n, err := f.r.Read(b)
	if err == io.EOF {
		err = errors.New("connection reset")
	}
	return n, err
}

func TestReadPermutationPropagatesReadError(t *testing.T) {
	if _, err := ReadPermutation(&failReader{strings.NewReader("0\n1\n")}); err == nil {
		t.Fatal("read error swallowed")
	}
}

func TestReadPermutationSkipsBlankLines(t *testing.T) {
	p, err := ReadPermutation(strings.NewReader("1\n\n0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0] != 1 || p[1] != 0 {
		t.Fatalf("parsed %v", p)
	}
}

func TestQuickPermutationIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		p := Permutation(randPerm(rng, n))
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			return false
		}
		q, err := ReadPermutation(&buf)
		if err != nil || len(q) != n {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
