package order

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPermutationRoundTrip(t *testing.T) {
	p := Permutation{2, 0, 1, 3}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPermutation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("round trip = %v, want %v", q, p)
		}
	}
}

func TestReadPermutationRejects(t *testing.T) {
	cases := map[string]string{
		"non-numeric":  "0\nx\n",
		"duplicate":    "0\n0\n",
		"out of range": "0\n5\n",
		"negative":     "-1\n",
	}
	for name, in := range cases {
		if _, err := ReadPermutation(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadPermutationSkipsBlankLines(t *testing.T) {
	p, err := ReadPermutation(strings.NewReader("1\n\n0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0] != 1 || p[1] != 0 {
		t.Fatalf("parsed %v", p)
	}
}

func TestQuickPermutationIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		p := Permutation(randPerm(rng, n))
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			return false
		}
		q, err := ReadPermutation(&buf)
		if err != nil || len(q) != n {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
