package order

import (
	"context"

	"gorder/internal/graph"
)

// Graph partitioners for the partition-parallel Gorder in
// internal/core. Both return k disjoint vertex sets covering the
// graph; the partitioned greedy orders each set independently and
// stitches the per-partition orders by inter-partition edge weight.
// Both are deterministic functions of (g, k) — they never depend on
// worker counts — which is what makes the partitioned ordering
// reproducible on any machine.

// bfsCancelInterval is how many BFS pops separate context checks.
const bfsCancelInterval = 4096

// BFSPartition cuts the graph into k near-equal contiguous chunks of
// a breadth-first visit sequence. BFS groups vertices by hop distance
// — neighbours land near each other in the sequence — so contiguous
// chunks of it make meaningful locality-preserving partitions at
// O(n+m) cost (the same rationale as RCM's traversal, without the
// degree sorting). The traversal explores out- then in-neighbours in
// ascending ID order and restarts from the lowest unvisited vertex,
// so the partition is deterministic. k is clamped to [1, n].
func BFSPartition(ctx context.Context, g *graph.Graph, k int) ([][]graph.NodeID, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ctx.Err()
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	seq := make([]graph.NodeID, 0, n)
	visited := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], graph.NodeID(s))
		for head := 0; head < len(queue); head++ {
			if len(seq)%bfsCancelInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			v := queue[head]
			seq = append(seq, v)
			for _, w := range g.OutNeighbors(v) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
			for _, w := range g.InNeighbors(v) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return ChunkPartition(seq, k), nil
}

// ChunkPartition cuts a vertex sequence into k near-equal contiguous
// chunks — the shared tail of every sequence-guided partitioner (BFS
// visit order, BOBA first-appearance order, …). Empty chunks are
// skipped, so at most min(k, len(seq)) partitions return.
func ChunkPartition(seq []graph.NodeID, k int) [][]graph.NodeID {
	n := len(seq)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	parts := make([][]graph.NodeID, 0, k)
	for c := 0; c < k; c++ {
		lo, hi := c*n/k, (c+1)*n/k
		if lo == hi {
			continue
		}
		parts = append(parts, seq[lo:hi:hi])
	}
	return parts
}

// LDGPartition streams the vertices through the Linear Deterministic
// Greedy placement with bin capacity ceil(n/k) and returns the bins
// as partitions — the same edge-locality greedy the LDG *ordering*
// uses, repurposed as a partitioner. Costlier than BFSPartition (it
// scores every vertex against its neighbours' bins) but cuts fewer
// edges on clustered graphs. Empty bins are dropped, so fewer than k
// partitions may return. k is clamped to [1, n].
func LDGPartition(ctx context.Context, g *graph.Graph, k int) ([][]graph.NodeID, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	bins := ldgBins(g, (n+k-1)/k)
	parts := make([][]graph.NodeID, 0, len(bins))
	for _, b := range bins {
		if len(b) > 0 {
			parts = append(parts, b)
		}
	}
	return parts, nil
}
