package order

import (
	"sort"

	"gorder/internal/graph"
)

// SlashBurnFull implements the original SlashBurn ordering (Lim, Kang,
// Faloutsos, TKDE 2014), which the replication simplified: each
// iteration removes the k highest-degree hubs to the front of the
// order, then moves every vertex outside the giant connected
// component ("spokes") to the back, and recurses on the giant
// component. k is the paper's hub-count parameter; it uses 0.5% of n,
// which k <= 0 selects here.
//
// Compared to the simplified variant (SlashBurn), the full algorithm
// burns whole non-giant components, not just isolated vertices, which
// groups the spoke structure attached to each wave of hubs. Both are
// kept so the divergence the replication reports (its simplified
// version performed *better* than the original paper's) can be
// reproduced and studied.
func SlashBurnFull(g *graph.Graph, k int) Permutation {
	u := g.Undirected()
	n := u.NumNodes()
	if n == 0 {
		return Permutation{}
	}
	if k <= 0 {
		k = n / 200 // the paper's 0.5% of n
		if k < 1 {
			k = 1
		}
	}
	perm := make(Permutation, n)
	assigned := make([]bool, n)
	frontNext := 0    // next front position
	backNext := n - 1 // next back position

	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(u.OutDegree(graph.NodeID(v)))
	}
	alive := make([]bool, n)
	live := make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		live = append(live, graph.NodeID(v))
	}

	placeFront := func(v graph.NodeID) {
		perm[v] = graph.NodeID(frontNext)
		frontNext++
		assigned[v] = true
		alive[v] = false
	}
	placeBack := func(v graph.NodeID) {
		perm[v] = graph.NodeID(backNext)
		backNext--
		assigned[v] = true
		alive[v] = false
	}

	comp := make([]int32, n)
	queue := make([]graph.NodeID, 0, n)

	for len(live) > 0 {
		if len(live) <= k {
			// Terminal wave: everything left is hub-sized; place by
			// degree descending at the front.
			sort.SliceStable(live, func(a, b int) bool {
				if deg[live[a]] != deg[live[b]] {
					return deg[live[a]] > deg[live[b]]
				}
				return live[a] < live[b]
			})
			for _, v := range live {
				placeFront(v)
			}
			break
		}
		// 1. Slash: remove the k highest-degree live vertices.
		hubs := append([]graph.NodeID(nil), live...)
		sort.SliceStable(hubs, func(a, b int) bool {
			if deg[hubs[a]] != deg[hubs[b]] {
				return deg[hubs[a]] > deg[hubs[b]]
			}
			return hubs[a] < hubs[b]
		})
		hubs = hubs[:k]
		for _, h := range hubs {
			for _, w := range u.OutNeighbors(h) {
				if alive[w] {
					deg[w]--
				}
			}
			placeFront(h)
		}
		// 2. Find connected components of the remainder.
		for _, v := range live {
			if alive[v] {
				comp[v] = -1
			}
		}
		type cc struct {
			id   int32
			size int
		}
		var comps []cc
		var nextComp int32
		for _, s := range live {
			if !alive[s] || comp[s] != -1 {
				continue
			}
			id := nextComp
			nextComp++
			size := 0
			comp[s] = id
			queue = append(queue[:0], s)
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				size++
				for _, w := range u.OutNeighbors(v) {
					if alive[w] && comp[w] == -1 {
						comp[w] = id
						queue = append(queue, w)
					}
				}
			}
			comps = append(comps, cc{id, size})
		}
		if len(comps) == 0 {
			break
		}
		// 3. Burn: all but the giant component go to the back,
		// smallest components outermost, vertices within a component
		// by degree descending (the paper's "hub ordering" inside
		// spokes).
		giant := comps[0]
		for _, c := range comps {
			if c.size > giant.size {
				giant = c
			}
		}
		sort.SliceStable(comps, func(a, b int) bool { return comps[a].size < comps[b].size })
		byComp := make(map[int32][]graph.NodeID, len(comps))
		for _, v := range live {
			if alive[v] && comp[v] != giant.id {
				byComp[comp[v]] = append(byComp[comp[v]], v)
			}
		}
		for _, c := range comps {
			if c.id == giant.id {
				continue
			}
			members := byComp[c.id]
			sort.SliceStable(members, func(a, b int) bool {
				if deg[members[a]] != deg[members[b]] {
					return deg[members[a]] > deg[members[b]]
				}
				return members[a] < members[b]
			})
			for _, v := range members {
				for _, w := range u.OutNeighbors(v) {
					if alive[w] {
						deg[w]--
					}
				}
				placeBack(v)
			}
		}
		// 4. Recurse on the giant component.
		nextLive := live[:0]
		for _, v := range live {
			if alive[v] {
				nextLive = append(nextLive, v)
			}
		}
		live = nextLive
	}
	// Safety: anything unassigned (cannot happen) goes front.
	for v := 0; v < n; v++ {
		if !assigned[v] {
			placeFront(graph.NodeID(v))
		}
	}
	return perm
}
