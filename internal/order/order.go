// Package order defines the vertex-ordering framework: the Permutation
// type every ordering method produces, the cost metrics orderings
// optimise (MinLA/MinLogA energy, bandwidth, the Gorder score F), and
// all the baseline ordering methods the paper compares Gorder against:
// Original, Random, MinLA, MinLogA, RCM, InDegSort, ChDFS, SlashBurn
// (simplified) and LDG. Gorder itself lives in gorder/internal/core.
//
// Metis is deliberately absent: both the original paper (on its large
// datasets) and the replication drop it because its memory use does
// not scale; see DESIGN.md §2.
package order

import (
	"fmt"

	"gorder/internal/graph"
)

// Permutation maps old vertex IDs to new ones: perm[u] is the new ID
// of vertex u. Applying it to a graph is graph.Relabel(perm).
type Permutation []graph.NodeID

// Identity returns the identity permutation on n vertices — the
// "Original" ordering of the paper.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = graph.NodeID(i)
	}
	return p
}

// Validate returns an error unless p is a permutation of 0..len(p)-1.
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for u, v := range p {
		if int(v) >= len(p) {
			return fmt.Errorf("order: perm[%d] = %d out of range", u, v)
		}
		if seen[v] {
			return fmt.Errorf("order: value %d assigned twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns q with q[p[u]] = u: the map from new IDs back to
// old ones.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for u, v := range p {
		q[v] = graph.NodeID(u)
	}
	return q
}

// Compose returns the permutation "p then q": result[u] = q[p[u]].
// It panics if lengths differ.
func (p Permutation) Compose(q Permutation) Permutation {
	if len(p) != len(q) {
		panic("order: composing permutations of different length")
	}
	r := make(Permutation, len(p))
	for u, v := range p {
		r[u] = q[v]
	}
	return r
}

// FromSequence builds the permutation that places seq[i] at position
// i: perm[seq[i]] = i. seq must contain each vertex exactly once.
// Ordering algorithms naturally produce visit sequences; this converts
// them.
func FromSequence(seq []graph.NodeID) Permutation {
	p := make(Permutation, len(seq))
	for i := range p {
		p[i] = graph.NodeID(len(seq)) // sentinel: unassigned
	}
	for pos, u := range seq {
		if int(u) >= len(seq) || p[u] != graph.NodeID(len(seq)) {
			panic("order: sequence is not a permutation of vertices")
		}
		p[u] = graph.NodeID(pos)
	}
	return p
}

// Sequence is the inverse of FromSequence: seq[i] is the vertex placed
// at position i.
func (p Permutation) Sequence() []graph.NodeID {
	return []graph.NodeID(p.Inverse())
}
