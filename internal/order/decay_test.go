package order

import (
	"math/rand"
	"testing"

	"gorder/internal/graph"
)

// evolve applies random edits to g, appending extra vertices, and
// returns the new graph plus the add/del lists.
func evolveForDelta(rng *rand.Rand, g *graph.Graph, extra int) (*graph.Graph, []graph.Edge, []graph.Edge) {
	n := g.NumNodes()
	var del []graph.Edge
	g.Edges(func(u, v graph.NodeID) bool {
		if rng.Intn(8) == 0 {
			del = append(del, graph.Edge{From: u, To: v})
		}
		return true
	})
	var add []graph.Edge
	n2 := n + extra
	for i := 0; i < 3+rng.Intn(3*n2); i++ {
		add = append(add, graph.Edge{
			From: graph.NodeID(rng.Intn(n2)),
			To:   graph.NodeID(rng.Intn(n2)),
		})
	}
	// Make sure every new vertex has at least one edge.
	for v := n; v < n2; v++ {
		add = append(add, graph.Edge{From: graph.NodeID(v), To: graph.NodeID(rng.Intn(n))})
	}
	g2, _, err := graph.ApplyEdits(g, extra, add, del)
	if err != nil {
		panic(err)
	}
	return g2, add, del
}

// extendPerm appends the new vertices to pOld's sequence in random
// order — the position-preserving extension shape ScoreDelta requires.
func extendPerm(rng *rand.Rand, pOld Permutation, nNew int) Permutation {
	seq := pOld.Sequence()
	tail := make([]graph.NodeID, 0, nNew-len(pOld))
	for v := len(pOld); v < nNew; v++ {
		tail = append(tail, graph.NodeID(v))
	}
	rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	return FromSequence(append(seq, tail...))
}

func TestScoreDeltaMatchesFullRescore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		edges := make([]graph.Edge, rng.Intn(6*n))
		for i := range edges {
			edges[i] = graph.Edge{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n))}
		}
		g := graph.FromEdgesDedup(n, edges)
		pOld := randPerm(rng, n)
		extra := rng.Intn(6)
		g2, add, del := evolveForDelta(rng, g, extra)
		p := extendPerm(rng, pOld, g2.NumNodes())
		w := 1 + rng.Intn(7)
		got := ScoreDelta(g, g2, p, w, add, del)
		want := Score(g2, p, w) - Score(g, pOld, w)
		if got != want {
			t.Fatalf("trial %d (n=%d extra=%d w=%d): ScoreDelta=%d, full rescore diff=%d",
				trial, n, extra, w, got, want)
		}
	}
}

func TestScoreDeltaNoEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := graph.FromEdgesDedup(10, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}})
	p := randPerm(rng, 10)
	if d := ScoreDelta(g, g, p, 5, nil, nil); d != 0 {
		t.Fatalf("no-op delta = %d", d)
	}
}

func TestScoreDeltaNoOpEditsTolerated(t *testing.T) {
	// Adds of present edges and deletes of absent ones must contribute
	// zero, so callers can pass raw client batches.
	g := graph.FromEdgesDedup(6, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	rng := rand.New(rand.NewSource(11))
	p := randPerm(rng, 6)
	phantom := []graph.Edge{{From: 0, To: 1}}          // already present "add"
	missing := []graph.Edge{{From: 3, To: 4}}          // absent "delete"
	if d := ScoreDelta(g, g, p, 3, phantom, missing); d != 0 {
		t.Fatalf("no-op edits produced delta %d", d)
	}
}
