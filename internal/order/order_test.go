package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/graph"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	for i, v := range p {
		if int(v) != i {
			t.Fatalf("Identity[%d] = %d", i, v)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Permutation{1, 0, 2}).Validate(); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if err := (Permutation{0, 0, 2}).Validate(); err == nil {
		t.Error("duplicate accepted")
	}
	if err := (Permutation{0, 3, 1}).Validate(); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	q := p.Inverse()
	want := Permutation{1, 2, 0}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("Inverse = %v, want %v", q, want)
		}
	}
}

func TestCompose(t *testing.T) {
	p := Permutation{1, 2, 0}
	q := Permutation{2, 0, 1}
	r := p.Compose(q)
	// r[u] = q[p[u]]: r[0]=q[1]=0, r[1]=q[2]=1, r[2]=q[0]=2.
	want := Permutation{0, 1, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Compose = %v, want %v", r, want)
		}
	}
}

func TestFromSequenceRoundTrip(t *testing.T) {
	seq := []graph.NodeID{3, 1, 0, 2}
	p := FromSequence(seq)
	got := p.Sequence()
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("Sequence = %v, want %v", got, seq)
		}
	}
	if p[3] != 0 || p[2] != 3 {
		t.Fatalf("FromSequence = %v", p)
	}
}

func TestFromSequencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on repeated vertex")
		}
	}()
	FromSequence([]graph.NodeID{0, 0, 1})
}

// Inverse and composition laws, checked on random permutations.
func TestQuickPermutationLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		p := Permutation(randPerm(rng, n))
		inv := p.Inverse()
		// p ∘ p⁻¹ = id and p⁻¹ ∘ p = id.
		for _, c := range []Permutation{p.Compose(inv), inv.Compose(p)} {
			for i, v := range c {
				if int(v) != i {
					return false
				}
			}
		}
		return p.Validate() == nil && inv.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randPerm(rng *rand.Rand, n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := range p {
		p[i] = graph.NodeID(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func randGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n))}
	}
	return graph.FromEdgesDedup(n, edges)
}
