package exec

import (
	"context"

	"gorder/internal/graph"
)

// TriangleCount counts the triangles of the undirected view of g with
// the same compact-forward algorithm as the serial algos.TriangleCount,
// parallelised in its two heavy phases: the forward-list build (a
// count/prefix-sum/fill two-pass into one flat CSR-like array, each
// vertex's slot written exclusively by its chunk's owner) and the
// intersection sweep (per-chunk int64 partial counts). The degree-rank
// counting sort stays serial — it is O(n) and fixes the global rank
// order every chunk reads. Triangle counts are exact integer sums, so
// the result is bit-identical to the serial oracle at any worker count.
func TriangleCount(ctx context.Context, g *graph.Graph, workers int, sc *Scratch) (int64, error) {
	u := g.Undirected()
	n := u.NumNodes()
	if n == 0 {
		return 0, ctx.Err()
	}
	if sc == nil {
		sc = new(Scratch)
	}

	// Rank by degree ascending (stable counting sort), identical to the
	// serial kernel: high-degree vertices come last so intersections run
	// over the two smaller forward lists.
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	maxd := 0
	for _, v := range order {
		if d := u.OutDegree(v); d > maxd {
			maxd = d
		}
	}
	buckets := make([][]graph.NodeID, maxd+1)
	for _, v := range order {
		buckets[u.OutDegree(v)] = append(buckets[u.OutDegree(v)], v)
	}
	rank := make([]int32, n)
	pos := 0
	for _, b := range buckets {
		for _, v := range b {
			order[pos] = v
			rank[v] = int32(pos)
			pos++
		}
	}

	chunks := ChunksFor(n)

	// Pass 1: count each vertex's higher-rank neighbours.
	fwdIdx := make([]int64, n+1)
	if err := forChunks(ctx, workers, chunks, func(c int) {
		lo, hi := ChunkRange(n, chunks, c)
		for v := lo; v < hi; v++ {
			cnt := int64(0)
			for _, w := range u.OutNeighbors(graph.NodeID(v)) {
				if rank[w] > rank[v] {
					cnt++
				}
			}
			fwdIdx[v+1] = cnt
		}
	}); err != nil {
		return 0, err
	}
	// Serial prefix sum turns counts into offsets.
	for v := 0; v < n; v++ {
		fwdIdx[v+1] += fwdIdx[v]
	}

	// Pass 2: fill each vertex's slot (exclusively owned by its chunk)
	// and sort it by rank, matching the serial forward lists.
	fwdAdj := make([]graph.NodeID, fwdIdx[n])
	if err := forChunks(ctx, workers, chunks, func(c int) {
		lo, hi := ChunkRange(n, chunks, c)
		for v := lo; v < hi; v++ {
			at := fwdIdx[v]
			for _, w := range u.OutNeighbors(graph.NodeID(v)) {
				if rank[w] > rank[v] {
					fwdAdj[at] = w
					at++
				}
			}
			sortNodesByRank(rank, fwdAdj[fwdIdx[v]:at])
		}
	}); err != nil {
		return 0, err
	}

	// Count: per-chunk partial sums, exact integer reduce in chunk order.
	partial := make([]int64, chunks)
	if err := forChunks(ctx, workers, chunks, func(c int) {
		lo, hi := ChunkRange(n, chunks, c)
		var t int64
		for v := lo; v < hi; v++ {
			fv := fwdAdj[fwdIdx[v]:fwdIdx[v+1]]
			for _, w := range fv {
				t += intersectNodesByRank(rank, fv, fwdAdj[fwdIdx[w]:fwdIdx[w+1]])
			}
		}
		partial[c] = t
	}); err != nil {
		return 0, err
	}
	var triangles int64
	for _, t := range partial {
		triangles += t
	}
	return triangles, nil
}

func sortNodesByRank(rank []int32, list []graph.NodeID) {
	// Insertion sort: forward lists are short on sparse graphs.
	for i := 1; i < len(list); i++ {
		v := list[i]
		j := i - 1
		for j >= 0 && rank[list[j]] > rank[v] {
			list[j+1] = list[j]
			j--
		}
		list[j+1] = v
	}
}

func intersectNodesByRank(rank []int32, a, b []graph.NodeID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ra, rb := rank[a[i]], rank[b[j]]
		switch {
		case ra < rb:
			i++
		case ra > rb:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}
