package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gorder/internal/algos"
	"gorder/internal/gen"
	"gorder/internal/graph"
)

// The parity table: three generator shapes (random, skewed, local)
// crossed with worker counts {1, 2, 4, 8}. Every parallel kernel must
// reproduce its serial oracle exactly — bit-identical distances,
// counts, and (because the dangling fold is serial) PageRank floats —
// regardless of the worker count or GOMAXPROCS. ci.sh runs this file
// under -race and again with GOMAXPROCS=1.

var parityGraphs = []struct {
	name  string
	build func() *graph.Graph
}{
	{"erdos-renyi", func() *graph.Graph { return gen.ErdosRenyi(600, 3000, 11) }},
	{"barabasi-albert", func() *graph.Graph { return gen.BarabasiAlbert(600, 4, 12) }},
	{"web", func() *graph.Graph { return gen.Web(600, gen.WebConfig{}, 13) }},
}

var parityWorkers = []int{1, 2, 4, 8}

func forParityCases(t *testing.T, fn func(t *testing.T, g *graph.Graph, workers int, sc *Scratch)) {
	t.Helper()
	for _, pg := range parityGraphs {
		g := pg.build()
		for _, w := range parityWorkers {
			t.Run(fmt.Sprintf("%s/workers=%d", pg.name, w), func(t *testing.T) {
				var sc Scratch
				fn(t, g, w, &sc)
			})
		}
	}
}

func TestPageRankParity(t *testing.T) {
	forParityCases(t, func(t *testing.T, g *graph.Graph, workers int, sc *Scratch) {
		want := algos.PageRank(g, 30, algos.DefaultDamping)
		got, err := PageRank(context.Background(), g, 30, algos.DefaultDamping, workers, sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank[%d] = %v, serial %v (not bit-identical)", i, got[i], want[i])
			}
		}
	})
}

func TestDOBFSParity(t *testing.T) {
	forParityCases(t, func(t *testing.T, g *graph.Graph, workers int, sc *Scratch) {
		for _, src := range []graph.NodeID{0, 7} {
			wantDist, wantReached := algos.DOBFS(g, src)
			gotDist, gotReached, err := DOBFS(context.Background(), g, src, workers, sc)
			if err != nil {
				t.Fatal(err)
			}
			if gotReached != wantReached {
				t.Fatalf("src %d: reached %d, serial %d", src, gotReached, wantReached)
			}
			for i := range wantDist {
				if gotDist[i] != wantDist[i] {
					t.Fatalf("src %d: dist[%d] = %d, serial %d", src, i, gotDist[i], wantDist[i])
				}
			}
		}
	})
}

func TestShortestPathsParity(t *testing.T) {
	forParityCases(t, func(t *testing.T, g *graph.Graph, workers int, sc *Scratch) {
		want := algos.BellmanFord(g, 0)
		got, err := ShortestPaths(context.Background(), g, 0, workers, sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dist[%d] = %d, serial %d", i, got[i], want[i])
			}
		}
	})
}

func TestDeltaSteppingWeightedParity(t *testing.T) {
	forParityCases(t, func(t *testing.T, g *graph.Graph, workers int, sc *Scratch) {
		weights := algos.RandomWeights(g, 40, 99)
		want := algos.DijkstraWeighted(g, weights, 0)
		for _, delta := range []int64{0, 1, 7} { // 0 = auto-pick
			got, err := DeltaStepping(context.Background(), g, weights, 0, delta, workers, sc)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("delta %d: dist[%d] = %d, serial %d", delta, i, got[i], want[i])
				}
			}
		}
	})
}

func TestTriangleCountParity(t *testing.T) {
	forParityCases(t, func(t *testing.T, g *graph.Graph, workers int, sc *Scratch) {
		want := algos.TriangleCount(g)
		got, err := TriangleCount(context.Background(), g, workers, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("triangles = %d, serial %d", got, want)
		}
	})
}

// Parity on degenerate shapes: singleton, no-edge graph, a ring whose
// BFS runs many levels, and a star whose hub makes one chunk heavy.
func TestParityDegenerateShapes(t *testing.T) {
	shapes := []*graph.Graph{
		graph.FromEdges(1, nil),
		graph.FromEdges(5, nil),
		gen.Ring(50),
		gen.Grid(8, 8),
	}
	ctx := context.Background()
	for _, g := range shapes {
		var sc Scratch
		wantPR := algos.PageRank(g, 10, algos.DefaultDamping)
		gotPR, err := PageRank(ctx, g, 10, algos.DefaultDamping, 4, &sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantPR {
			if gotPR[i] != wantPR[i] {
				t.Fatalf("n=%d: rank[%d] = %v, serial %v", g.NumNodes(), i, gotPR[i], wantPR[i])
			}
		}
		wantD, wantR := algos.DOBFS(g, 0)
		gotD, gotR, err := DOBFS(ctx, g, 0, 4, &sc)
		if err != nil {
			t.Fatal(err)
		}
		if gotR != wantR {
			t.Fatalf("n=%d: reached %d, serial %d", g.NumNodes(), gotR, wantR)
		}
		for i := range wantD {
			if gotD[i] != wantD[i] {
				t.Fatalf("n=%d: dist[%d] = %d, serial %d", g.NumNodes(), i, gotD[i], wantD[i])
			}
		}
		wantT := algos.TriangleCount(g)
		gotT, err := TriangleCount(ctx, g, 4, &sc)
		if err != nil {
			t.Fatal(err)
		}
		if gotT != wantT {
			t.Fatalf("n=%d: triangles %d, serial %d", g.NumNodes(), gotT, wantT)
		}
		wantS := algos.BellmanFord(g, 0)
		gotS, err := ShortestPaths(ctx, g, 0, 4, &sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantS {
			if gotS[i] != wantS[i] {
				t.Fatalf("n=%d: sp[%d] = %d, serial %d", g.NumNodes(), i, gotS[i], wantS[i])
			}
		}
	}
}

// Scratch reuse across different kernels and graph sizes must not leak
// state between runs.
func TestScratchReuseAcrossKernels(t *testing.T) {
	ctx := context.Background()
	var sc Scratch
	big := gen.ErdosRenyi(400, 2000, 21)
	small := gen.ErdosRenyi(40, 100, 22)
	for _, g := range []*graph.Graph{big, small, big} {
		want := algos.PageRank(g, 5, algos.DefaultDamping)
		got, err := PageRank(ctx, g, 5, algos.DefaultDamping, 4, &sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PageRank diverged after scratch reuse at %d", i)
			}
		}
		wd, _ := algos.DOBFS(g, 0)
		gd, _, err := DOBFS(ctx, g, 0, 4, &sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wd {
			if gd[i] != wd[i] {
				t.Fatalf("DOBFS diverged after scratch reuse at %d", i)
			}
		}
	}
}

// An already-cancelled context must abort before any work.
func TestCancelledContextAborts(t *testing.T) {
	g := gen.ErdosRenyi(200, 1000, 31)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PageRank(ctx, g, 10, algos.DefaultDamping, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("PageRank err = %v, want context.Canceled", err)
	}
	if _, _, err := DOBFS(ctx, g, 0, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("DOBFS err = %v, want context.Canceled", err)
	}
	if _, err := ShortestPaths(ctx, g, 0, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ShortestPaths err = %v, want context.Canceled", err)
	}
	if _, err := TriangleCount(ctx, g, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("TriangleCount err = %v, want context.Canceled", err)
	}
}

// A deadline expiring mid-run stops parallel PageRank between chunks:
// the run returns DeadlineExceeded instead of finishing all its
// iterations. The iteration count is set high enough that the work
// cannot complete inside the deadline on any plausible machine.
func TestDeadlineStopsPageRankMidIteration(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 8, 41)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	ranks, err := PageRank(ctx, g, 1_000_000, algos.DefaultDamping, 4, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded (elapsed %v)", err, time.Since(start))
	}
	if ranks != nil {
		t.Fatal("cancelled PageRank must not return a partial result")
	}
	// The abort must happen promptly — between chunks, not after all
	// 1e6 iterations (which would take minutes).
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; not stopping mid-iteration", elapsed)
	}
}

func TestDeltaSteppingNegativeWeight(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	if _, err := DeltaStepping(context.Background(), g, []int32{-3}, 0, 1, 2, nil); err == nil {
		t.Fatal("negative weight must error")
	}
}

// The chunk grid must cover [0, total) exactly: contiguous,
// non-overlapping, machine-independent.
func TestChunkGridCoverage(t *testing.T) {
	for _, total := range []int{0, 1, 5, 255, 256, 257, 1000, 65536} {
		chunks := ChunksFor(total)
		prev := 0
		for c := 0; c < chunks; c++ {
			lo, hi := ChunkRange(total, chunks, c)
			if lo != prev {
				t.Fatalf("total %d chunk %d: lo %d, want %d", total, c, lo, prev)
			}
			if total > 0 && chunks == gridChunkTarget && hi <= lo {
				t.Fatalf("total %d chunk %d empty", total, c)
			}
			prev = hi
		}
		if prev != total {
			t.Fatalf("total %d: grid covers %d", total, prev)
		}
	}
}
