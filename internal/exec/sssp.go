package exec

import (
	"context"
	"math"
	"sync/atomic"

	"gorder/internal/graph"
)

// Infinity marks unreachable vertices in weighted distance arrays,
// matching algos.WeightedInfinity.
const Infinity = int64(-1)

// relaxReq is one successful relaxation: vertex v now tentatively at
// distance d, to be filed into bucket d/delta.
type relaxReq struct {
	v graph.NodeID
	d int64
}

// relaxList is one chunk's relaxation requests for a round.
type relaxList []relaxReq

// DeltaStepping computes single-source shortest paths over
// non-negative edge weights with parallel delta-stepping and lazy
// buckets (Meyer & Sanders; the ordered-algorithm form GraphIt/
// PriorityGraph optimize, arXiv 1911.07260). weights aligns with g's
// CSR out-adjacency; nil means unit weights. delta <= 0 picks the
// average edge weight (at least 1).
//
// Buckets are lazy twice over: they are allocated only when a distance
// first lands in them, and entries are never deleted on improvement —
// a popped vertex is re-checked against its bucket's range and skipped
// if stale. Each round chunks the current bucket's frontier, relaxes
// out-edges with an atomic compare-and-swap min on the distance array,
// and files improvements into per-chunk request lists that merge
// serially after the round. The final distances are the shortest-path
// fixed point — exact integers, so the result is bit-identical to
// the serial Dijkstra/Bellman–Ford oracles at any worker count.
//
// It returns -1 (Infinity) for unreachable vertices and an error if a
// negative weight is found or ctx is cancelled mid-run.
func DeltaStepping(ctx context.Context, g *graph.Graph, weights []int32, src graph.NodeID, delta int64, workers int, sc *Scratch) ([]int64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ctx.Err()
	}
	if sc == nil {
		sc = new(Scratch)
	}
	outIdx, outAdj := g.OutIndex(), g.OutAdjacency()
	if delta <= 0 {
		delta = 1
		if weights != nil && n > 0 {
			var sum int64
			for _, w := range weights {
				sum += int64(w)
			}
			if m := int64(len(weights)); m > 0 && sum/m > 1 {
				delta = sum / m
			}
		}
	}

	const unreached = int64(math.MaxInt64)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = unreached
	}
	dist[src] = 0

	// buckets[i] holds vertices tentatively in [i*delta, (i+1)*delta);
	// grown on demand, entries validated on pop.
	buckets := [][]graph.NodeID{{src}}
	file := func(v graph.NodeID, d int64) {
		b := int(d / delta)
		for b >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[b] = append(buckets[b], v)
	}

	frontier, _ := sc.frontiers()
	defer func() { sc.storeFrontiers(frontier, sc.next) }()

	var negErr atomic.Bool
	for i := 0; i < len(buckets); i++ {
		// Inner loop: light-edge relaxations can refile vertices into
		// the current bucket, so drain it until it stays empty.
		for len(buckets[i]) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lo, hi := int64(i)*delta, int64(i+1)*delta
			frontier = frontier[:0]
			for _, v := range buckets[i] {
				// Lazy deletion: skip entries whose distance moved to
				// another bucket (or was already settled below lo).
				if d := dist[v]; d >= lo && d < hi {
					frontier = append(frontier, v)
				}
			}
			buckets[i] = buckets[i][:0]
			if len(frontier) == 0 {
				break
			}
			chunks := ChunksFor(len(frontier))
			if cap(sc.relax) < chunks {
				sc.relax = make([]relaxList, chunks)
			}
			sc.relax = sc.relax[:chunks]
			for c := range sc.relax {
				sc.relax[c] = sc.relax[c][:0]
			}
			relax := sc.relax
			if err := forChunks(ctx, workers, chunks, func(c int) {
				clo, chi := ChunkRange(len(frontier), chunks, c)
				buf := relax[c]
				for _, u := range frontier[clo:chi] {
					du := atomic.LoadInt64(&dist[u])
					if du >= hi {
						continue // improved mid-round; it will re-run later
					}
					for p := outIdx[u]; p < outIdx[u+1]; p++ {
						w := int64(1)
						if weights != nil {
							w = int64(weights[p])
							if w < 0 {
								negErr.Store(true)
								return
							}
						}
						v := outAdj[p]
						nd := du + w
						for {
							cur := atomic.LoadInt64(&dist[v])
							if cur <= nd {
								break
							}
							if atomic.CompareAndSwapInt64(&dist[v], cur, nd) {
								buf = append(buf, relaxReq{v, nd})
								break
							}
						}
					}
				}
				relax[c] = buf
			}); err != nil {
				return nil, err
			}
			if negErr.Load() {
				return nil, errNegativeWeight
			}
			// Serial merge in chunk order: duplicates are fine (lazy
			// deletion skips stale entries), and a vertex improved twice
			// files twice — only its final bucket's pass relaxes it.
			for _, buf := range relax {
				for _, r := range buf {
					file(r.v, r.d)
				}
			}
		}
	}

	for i := range dist {
		if dist[i] == unreached {
			dist[i] = Infinity
		}
	}
	return dist, nil
}

// errNegativeWeight mirrors the serial Dijkstra's panic as an error.
var errNegativeWeight = errorString("exec: negative weight in delta-stepping")

type errorString string

func (e errorString) Error() string { return string(e) }

// ShortestPaths is the parallel form of the paper's SP kernel:
// unit-weight shortest paths from src, computed by delta-stepping with
// delta = 1 (buckets degenerate to BFS levels). The int32 hop
// distances are bit-identical to algos.BellmanFord at any worker
// count; -1 marks unreachable vertices.
func ShortestPaths(ctx context.Context, g *graph.Graph, src graph.NodeID, workers int, sc *Scratch) ([]int32, error) {
	d64, err := DeltaStepping(ctx, g, nil, src, 1, workers, sc)
	if err != nil {
		return nil, err
	}
	dist := make([]int32, len(d64))
	for i, d := range d64 {
		if d == Infinity {
			dist[i] = -1
		} else {
			dist[i] = int32(d)
		}
	}
	return dist, nil
}
