package exec

import (
	"context"

	"gorder/internal/graph"
)

// PageRank runs the pull-mode power iteration over `workers`
// goroutines with per-worker range ownership: the vertex space is cut
// into contiguous chunks of the current ordering, each chunk's `next`
// entries are written only by the worker that claimed it, and every
// per-vertex in-neighbour sum runs in CSR order — so there are no
// atomics on `next` and the per-vertex summation order is fixed. The
// dangling-mass fold (the only cross-range reduction) is kept serial
// over the precomputed dangling-vertex list, which makes the result
// bit-identical to algos.PageRank at any worker count and GOMAXPROCS.
//
// ctx is checked between chunks and between iterations; cancellation
// returns ctx.Err() mid-computation with a nil slice.
func PageRank(ctx context.Context, g *graph.Graph, iters int, damping float64, workers int, sc *Scratch) ([]float64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ctx.Err()
	}
	if sc == nil {
		sc = new(Scratch)
	}
	// rank and next are fresh allocations: the final array is handed to
	// the caller (and may be cached), so neither can come from scratch.
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	contrib, invDeg := sc.floats(n)

	// Reciprocal out-degrees and the dangling list are loop-invariant:
	// one division per vertex for the whole run, mirroring the serial
	// kernel (the parity tests compare bitwise).
	var dangling []graph.NodeID
	outIdx := g.OutIndex()
	for u := 0; u < n; u++ {
		if d := outIdx[u+1] - outIdx[u]; d > 0 {
			invDeg[u] = 1 / float64(d)
		} else {
			invDeg[u] = 0
			dangling = append(dangling, graph.NodeID(u))
		}
	}

	inIdx := g.InIndex()
	inAdj := g.InAdjacency()
	chunks := ChunksFor(n)
	for it := 0; it < iters; it++ {
		if err := forChunks(ctx, workers, chunks, func(c int) {
			lo, hi := ChunkRange(n, chunks, c)
			for u := lo; u < hi; u++ {
				contrib[u] = rank[u] * invDeg[u]
			}
		}); err != nil {
			return nil, err
		}
		// Serial fold in ascending-ID order: identical association to
		// the serial kernel, so the base term matches bit for bit.
		danglingMass := 0.0
		for _, u := range dangling {
			danglingMass += rank[u]
		}
		base := (1-damping)/float64(n) + damping*danglingMass/float64(n)
		if err := forChunks(ctx, workers, chunks, func(c int) {
			lo, hi := ChunkRange(n, chunks, c)
			for v := lo; v < hi; v++ {
				sum := 0.0
				for p := inIdx[v]; p < inIdx[v+1]; p++ {
					sum += contrib[inAdj[p]]
				}
				next[v] = base + damping*sum
			}
		}); err != nil {
			return nil, err
		}
		rank, next = next, rank
	}
	return rank, nil
}
