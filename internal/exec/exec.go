// Package exec is the parallel kernel execution engine: it runs the
// hot benchmark kernels over multiple cores by partitioning the vertex
// space into contiguous chunks of the *current ordering*. Kernels
// execute over relabeled graphs, so vertex IDs are ordering positions
// and a contiguous ID range is a Gorder-localized window — each
// worker's working set is exactly the cache-friendly block the
// ordering built, which is how frontier parallelism compounds with
// locality instead of destroying it (PriorityGraph/GraphIt, arXiv
// 1911.07260; Faldu et al., arXiv 2001.08448).
//
// Every kernel in this package follows the contract the parallel
// orderings in internal/order established:
//
//   - workers sets the goroutine count (<= 0 selects GOMAXPROCS) and
//     never changes the result: PageRank fixes the summation order per
//     vertex and folds cross-range reductions serially in range order,
//     traversals write integer distances whose fixed point is
//     schedule-independent, and triangle counts are exact integer
//     sums. BFS/SP/Tri outputs are bit-identical to the serial
//     oracles in internal/algos at any worker count and GOMAXPROCS;
//     PageRank matches the serial kernel bitwise because the dangling
//     fold is kept serial.
//   - ctx is checked between chunks and between iterations/levels;
//     the first cancellation aborts with ctx.Err() and a nil result.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"gorder/internal/graph"
)

// gridChunkTarget is the fixed upper bound on the chunk grid, shared
// with internal/order's parallel family: a constant (not a function of
// the worker count) so chunk boundaries — and therefore any
// order-sensitive intermediate state — are machine-independent. 256
// chunks keep every core busy far past the core counts we target while
// amortizing the per-chunk claim overhead.
const gridChunkTarget = 256

// ChunksFor returns the chunk count for an input of the given size:
// gridChunkTarget, shrunk so no chunk is empty, and at least 1.
func ChunksFor(total int) int {
	chunks := gridChunkTarget
	if total < chunks {
		chunks = total
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// ChunkRange returns the half-open [lo, hi) range of chunk c in an
// even split of total items over the grid — one contiguous window of
// the current ordering.
func ChunkRange(total, chunks, c int) (lo, hi int) {
	return c * total / chunks, (c + 1) * total / chunks
}

// resolveWorkers maps the public workers knob to a goroutine count.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// forChunks runs fn(c) for every chunk index in [0, chunks) on up to
// `workers` goroutines. Chunks are claimed from a shared counter, so
// scheduling is dynamic (a straggler chunk never idles the other
// workers) but fn must only write state owned by its chunk. ctx is
// polled before each claimed chunk; once it is done the remaining
// chunks are skipped and ctx.Err() is returned.
func forChunks(ctx context.Context, workers, chunks int, fn func(c int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = resolveWorkers(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(c)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks || ctx.Err() != nil {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Scratch holds the reusable per-chunk buffers the parallel kernels
// borrow between calls: frontier segments, relaxation request lists,
// and PageRank's contribution array. The zero value is ready; not safe
// for concurrent use. Output vectors are never drawn from the scratch
// — results handed to callers (and cached by the query tier) are
// always freshly allocated.
type Scratch struct {
	locals   [][]graph.NodeID // per-chunk output segments
	frontier []graph.NodeID   // current frontier (double-buffered
	next     []graph.NodeID   // with next)
	contrib  []float64        // PageRank rank/outdeg per vertex
	invDeg   []float64        // PageRank reciprocal out-degrees
	relax    []relaxList      // per-chunk bucket-insertion requests
}

// segments returns at least `chunks` per-chunk buffers, each truncated
// to zero length with its capacity kept.
func (s *Scratch) segments(chunks int) [][]graph.NodeID {
	if cap(s.locals) < chunks {
		s.locals = make([][]graph.NodeID, chunks)
	}
	s.locals = s.locals[:chunks]
	for i := range s.locals {
		s.locals[i] = s.locals[i][:0]
	}
	return s.locals
}

// floats returns the two float64 work arrays sized for n vertices.
func (s *Scratch) floats(n int) (contrib, invDeg []float64) {
	if cap(s.contrib) < n {
		s.contrib = make([]float64, n)
	}
	if cap(s.invDeg) < n {
		s.invDeg = make([]float64, n)
	}
	return s.contrib[:n], s.invDeg[:n]
}

// frontiers returns the two frontier buffers, truncated to zero length.
func (s *Scratch) frontiers() (cur, next []graph.NodeID) {
	return s.frontier[:0], s.next[:0]
}

// storeFrontiers hands the (possibly regrown) frontier buffers back so
// their capacity survives to the next call.
func (s *Scratch) storeFrontiers(cur, next []graph.NodeID) {
	s.frontier, s.next = cur, next
}
