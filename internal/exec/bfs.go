package exec

import (
	"context"
	"sync/atomic"

	"gorder/internal/graph"
)

// The switching heuristics, identical to the serial DOBFS in
// internal/algos: go bottom-up when the frontier's out-edges exceed
// 1/alpha of the unexplored edges; return top-down when the frontier
// shrinks below n/beta vertices. Both inputs are set-derived (sizes
// and degree sums), so the parallel traversal takes exactly the same
// direction decisions as the serial one.
const (
	dobfsAlpha = 14
	dobfsBeta  = 24
)

// unvisited marks not-yet-reached vertices in the distance array while
// the traversal runs; it equals algos.Unreached.
const unvisited = int32(-1)

// DOBFS runs a direction-optimising BFS from src over `workers`
// goroutines and returns hop distances over out-edges (-1 where
// unreachable) plus the number of vertices reached — bit-identical to
// the serial algos.DOBFS and algos.BFSFrom at any worker count,
// because every vertex's distance is its BFS level regardless of which
// worker discovers it first.
//
// Top-down levels chunk the frontier: workers claim contiguous
// frontier segments, win vertices with an atomic compare-and-swap on
// the distance entry, and append discoveries to per-chunk segments
// that concatenate in chunk order. Bottom-up levels range-partition
// the vertex space along contiguous ordering windows: each worker
// scans only its own chunk's unvisited vertices (sole writer — no
// atomics on the stores it owns) looking for a parent on the previous
// level through the in-CSR.
func DOBFS(ctx context.Context, g *graph.Graph, src graph.NodeID, workers int, sc *Scratch) (dist []int32, reached int, err error) {
	n := g.NumNodes()
	if sc == nil {
		sc = new(Scratch)
	}
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = unvisited
	}
	dist[src] = 0
	reached = 1

	frontier, next := sc.frontiers()
	defer func() { sc.storeFrontiers(frontier, next) }()
	frontier = append(frontier, src)
	frontierEdges := int64(g.OutDegree(src))
	unexploredEdges := g.NumEdges() - frontierEdges
	level := int32(0)

	outIdx, outAdj := g.OutIndex(), g.OutAdjacency()
	inIdx, inAdj := g.InIndex(), g.InAdjacency()

	for len(frontier) > 0 {
		level++
		next = next[:0]
		if frontierEdges > unexploredEdges/dobfsAlpha && len(frontier) > n/dobfsBeta {
			// Bottom-up: each chunk owns a contiguous vertex window;
			// only the owner writes those distances, everyone reads the
			// previous level's entries through atomic loads.
			chunks := ChunksFor(n)
			locals := sc.segments(chunks)
			degs := make([]int64, chunks)
			if err := forChunks(ctx, workers, chunks, func(c int) {
				lo, hi := ChunkRange(n, chunks, c)
				buf := locals[c]
				var deg int64
				for v := lo; v < hi; v++ {
					if dist[v] != unvisited {
						continue
					}
					for p := inIdx[v]; p < inIdx[v+1]; p++ {
						u := inAdj[p]
						if atomic.LoadInt32(&dist[u]) == level-1 {
							atomic.StoreInt32(&dist[v], level)
							buf = append(buf, graph.NodeID(v))
							deg += outIdx[v+1] - outIdx[v]
							break
						}
					}
				}
				locals[c], degs[c] = buf, deg
			}); err != nil {
				return nil, 0, err
			}
			frontierEdges = 0
			for c, buf := range locals {
				next = append(next, buf...)
				frontierEdges += degs[c]
			}
		} else {
			// Top-down: chunk the frontier; discoveries are won by CAS
			// so each vertex lands in exactly one chunk's segment.
			chunks := ChunksFor(len(frontier))
			locals := sc.segments(chunks)
			degs := make([]int64, chunks)
			if err := forChunks(ctx, workers, chunks, func(c int) {
				lo, hi := ChunkRange(len(frontier), chunks, c)
				buf := locals[c]
				var deg int64
				for _, u := range frontier[lo:hi] {
					for p := outIdx[u]; p < outIdx[u+1]; p++ {
						v := outAdj[p]
						if atomic.LoadInt32(&dist[v]) == unvisited &&
							atomic.CompareAndSwapInt32(&dist[v], unvisited, level) {
							buf = append(buf, v)
							deg += outIdx[v+1] - outIdx[v]
						}
					}
				}
				locals[c], degs[c] = buf, deg
			}); err != nil {
				return nil, 0, err
			}
			frontierEdges = 0
			for c, buf := range locals {
				next = append(next, buf...)
				frontierEdges += degs[c]
			}
		}
		reached += len(next)
		unexploredEdges -= frontierEdges
		if unexploredEdges < 0 {
			unexploredEdges = 0
		}
		frontier, next = next, frontier
	}
	return dist, reached, nil
}
