package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny returns a one-level cache with 2 sets × 2 ways of 64-byte
// lines (256 bytes), small enough to reason about exactly.
func tiny() *Hierarchy {
	return New(Config{
		Levels:        []LevelConfig{{Name: "L1", Size: 256, LineSize: 64, Ways: 2, Latency: 1}},
		MemoryLatency: 100,
	})
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny()
	h.Access(0)
	h.Access(0)
	h.Access(8) // same line
	r := h.Report()
	if r.Accesses != 3 {
		t.Fatalf("accesses = %d, want 3", r.Accesses)
	}
	if r.Levels[0].Misses != 1 || r.MemRefs != 1 {
		t.Fatalf("misses = %d memrefs = %d, want 1, 1", r.Levels[0].Misses, r.MemRefs)
	}
	if r.Cycles != 100+1+1 {
		t.Fatalf("cycles = %d, want 102", r.Cycles)
	}
}

func TestLRUEviction(t *testing.T) {
	h := tiny()
	// Lines 0, 2, 4 map to set 0 (even line numbers, 2 sets). With 2
	// ways, accessing 0, 2, 4 evicts 0.
	h.Access(0 * 64)
	h.Access(2 * 64)
	h.Access(4 * 64) // evicts line 0
	h.Access(0 * 64) // miss again
	r := h.Report()
	if r.Levels[0].Misses != 4 {
		t.Fatalf("misses = %d, want 4 (LRU evicted line 0)", r.Levels[0].Misses)
	}
	// Re-inserting 0 evicted 2 (LRU), leaving [0, 4]. Accessing 2
	// misses and evicts 4; accessing 4 then misses as well — the
	// classic capacity thrash on a cyclic pattern one larger than the
	// set.
	h.Access(2 * 64)
	h.Access(4 * 64)
	r = h.Report()
	if r.Levels[0].Misses != 6 {
		t.Fatalf("misses = %d, want 6", r.Levels[0].Misses)
	}
}

func TestLRUMoveToFront(t *testing.T) {
	h := tiny()
	h.Access(0 * 64)
	h.Access(2 * 64)
	h.Access(0 * 64) // refresh 0 → now 2 is LRU
	h.Access(4 * 64) // evicts 2
	h.Access(0 * 64) // must still hit
	r := h.Report()
	if r.Levels[0].Misses != 3 {
		t.Fatalf("misses = %d, want 3", r.Levels[0].Misses)
	}
}

func TestMultiLevelFill(t *testing.T) {
	h := New(Config{
		Levels: []LevelConfig{
			{Name: "L1", Size: 128, LineSize: 64, Ways: 1, Latency: 1},
			{Name: "L2", Size: 512, LineSize: 64, Ways: 2, Latency: 10},
		},
		MemoryLatency: 100,
	})
	h.Access(0)      // miss both → RAM
	h.Access(2 * 64) // maps to L1 set 0, evicts line 0 from L1; L2 keeps both
	h.Access(0)      // L1 miss, L2 hit
	r := h.Report()
	if r.MemRefs != 2 {
		t.Fatalf("memrefs = %d, want 2", r.MemRefs)
	}
	if r.Levels[1].Refs != 3 || r.Levels[1].Misses != 2 {
		t.Fatalf("L2 refs=%d misses=%d, want 3, 2", r.Levels[1].Refs, r.Levels[1].Misses)
	}
	if r.Cycles != 100+100+10 {
		t.Fatalf("cycles = %d, want 210", r.Cycles)
	}
}

func TestSequentialStreamMissRate(t *testing.T) {
	h := New(ReplicationMachine())
	// Stream 1 MB of 4-byte elements: 16 accesses per 64-byte line →
	// miss rate ≈ 1/16 at L1 (cold misses only; the stream exceeds L1).
	for i := 0; i < 1<<20; i += 4 {
		h.Access(uint64(i))
	}
	r := h.Report()
	got := r.L1MissRate()
	if got < 0.055 || got > 0.07 {
		t.Errorf("sequential stream L1 miss rate = %v, want ≈ 1/16", got)
	}
}

func TestRandomVsSequential(t *testing.T) {
	// The whole premise of the paper: random access misses far more
	// than sequential access over the same working set.
	const span = 8 << 20 // 8 MB, larger than SmallMachine's LLC
	seq := New(SmallMachine())
	for i := 0; i < 1<<18; i++ {
		seq.Access(uint64(i*4) % span)
	}
	rnd := New(SmallMachine())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<18; i++ {
		rnd.Access(uint64(rng.Intn(span)))
	}
	if rnd.Report().MissRate() < 4*seq.Report().MissRate() {
		t.Errorf("random miss rate %v not well above sequential %v",
			rnd.Report().MissRate(), seq.Report().MissRate())
	}
}

func TestAccessRange(t *testing.T) {
	h := tiny()
	h.AccessRange(60, 8) // straddles the line boundary at 64
	r := h.Report()
	if r.Accesses != 2 {
		t.Fatalf("AccessRange touched %d lines, want 2", r.Accesses)
	}
}

func TestReset(t *testing.T) {
	h := tiny()
	h.Access(0)
	h.Reset()
	r := h.Report()
	if r.Accesses != 0 || r.Cycles != 0 || r.MemRefs != 0 {
		t.Fatal("Reset did not clear stats")
	}
	h.Access(0)
	if h.Report().Levels[0].Misses != 1 {
		t.Fatal("Reset did not clear cache contents")
	}
}

func TestReportDerivedRates(t *testing.T) {
	h := New(ReplicationMachine())
	for i := 0; i < 1000; i++ {
		h.Access(uint64(i * 64)) // all cold misses
	}
	r := h.Report()
	if r.L1MissRate() != 1 || r.MissRate() != 1 || r.LLCRatio() != 1 {
		t.Errorf("cold-miss rates = %v %v %v, want 1 1 1",
			r.L1MissRate(), r.MissRate(), r.LLCRatio())
	}
	if r.LLCRefs() != 1000 {
		t.Errorf("LLC refs = %d, want 1000", r.LLCRefs())
	}
	cfg := ReplicationMachine()
	if r.StallCycles(cfg) != 1000*250-1000*4+0 {
		// every access cost 250; ideal 4 each
		t.Errorf("stall = %d, want %d", r.StallCycles(cfg), 1000*(250-4))
	}
	if r.CPUCycles(cfg) != 4000 {
		t.Errorf("cpu = %d, want 4000", r.CPUCycles(cfg))
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no levels", func() { New(Config{}) })
	mustPanic("bad line size", func() {
		New(Config{Levels: []LevelConfig{{Size: 128, LineSize: 48, Ways: 2, Latency: 1}}})
	})
	mustPanic("mismatched line sizes", func() {
		New(Config{Levels: []LevelConfig{
			{Size: 128, LineSize: 64, Ways: 2, Latency: 1},
			{Size: 256, LineSize: 32, Ways: 2, Latency: 2},
		}})
	})
}

// Hits can never exceed references, misses are monotone in time, and
// total cycles are consistent with the per-level accounting.
func TestQuickCounterInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(SmallMachine())
		for i := 0; i < 5000; i++ {
			h.Access(uint64(rng.Intn(1 << 22)))
		}
		r := h.Report()
		if r.Levels[0].Refs != r.Accesses {
			return false
		}
		// Refs at level i+1 == misses at level i.
		for i := 0; i+1 < len(r.Levels); i++ {
			if r.Levels[i+1].Refs != r.Levels[i].Misses {
				return false
			}
		}
		if r.MemRefs != r.Levels[len(r.Levels)-1].Misses {
			return false
		}
		// Cycle accounting: sum of (hits at level i × latency_i) + mem.
		cfg := SmallMachine()
		var cycles uint64
		for i, ls := range r.Levels {
			hits := ls.Refs - ls.Misses
			cycles += hits * uint64(cfg.Levels[i].Latency)
		}
		cycles += r.MemRefs * uint64(cfg.MemoryLatency)
		return cycles == r.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestObserverSeesEveryLine(t *testing.T) {
	h := tiny()
	var lines []uint64
	h.SetObserver(func(line uint64) { lines = append(lines, line) })
	h.Access(0)
	h.Access(64)
	h.Access(65)
	if len(lines) != 3 || lines[0] != 0 || lines[1] != 1 || lines[2] != 1 {
		t.Fatalf("observer saw %v", lines)
	}
	h.SetObserver(nil)
	h.Access(0)
	if len(lines) != 3 {
		t.Fatal("nil observer still invoked")
	}
}

func TestTLBBasics(t *testing.T) {
	cfg := Config{
		Levels:        []LevelConfig{{Name: "L1", Size: 1 << 20, LineSize: 64, Ways: 8, Latency: 1}},
		MemoryLatency: 100,
		TLB:           &TLBConfig{Entries: 2, PageSize: 4096, MissLatency: 30},
	}
	h := New(cfg)
	h.Access(0)        // page 0: TLB miss
	h.Access(64)       // page 0: TLB hit
	h.Access(4096)     // page 1: miss
	h.Access(2 * 4096) // page 2: miss, evicts page 0 (LRU)
	h.Access(0)        // page 0: miss again
	r := h.Report()
	if r.TLBMisses != 4 {
		t.Fatalf("TLB misses = %d, want 4", r.TLBMisses)
	}
	if got := r.TLBMissRate(); got != 0.8 {
		t.Fatalf("TLB miss rate = %v, want 0.8", got)
	}
	// Cycle accounting includes the page walks: four distinct cache
	// lines cold-miss (the final access re-hits line 0), plus four
	// page walks.
	wantCycles := uint64(4*30) + uint64(4*100+1*1)
	if r.Cycles != wantCycles {
		t.Fatalf("cycles = %d, want %d", r.Cycles, wantCycles)
	}
}

func TestTLBDisabledByDefault(t *testing.T) {
	h := tiny()
	h.Access(0)
	h.Access(1 << 30)
	if h.Report().TLBMisses != 0 || h.Report().TLBMissRate() != 0 {
		t.Fatal("TLB active without configuration")
	}
}

func TestTLBResetAndValidation(t *testing.T) {
	cfg := Config{
		Levels:        []LevelConfig{{Name: "L1", Size: 1 << 12, LineSize: 64, Ways: 4, Latency: 1}},
		MemoryLatency: 50,
		TLB:           DefaultTLB(),
	}
	h := New(cfg)
	h.Access(0)
	h.Reset()
	if h.Report().TLBMisses != 0 {
		t.Fatal("Reset kept TLB misses")
	}
	h.Access(0)
	if h.Report().TLBMisses != 1 {
		t.Fatal("Reset did not clear TLB contents")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid TLB geometry accepted")
		}
	}()
	cfg.TLB = &TLBConfig{Entries: 4, PageSize: 3000, MissLatency: 1}
	New(cfg)
}

func TestTLBSequentialVsScattered(t *testing.T) {
	mk := func() *Hierarchy {
		return New(Config{
			Levels:        []LevelConfig{{Name: "L1", Size: 1 << 12, LineSize: 64, Ways: 4, Latency: 1}},
			MemoryLatency: 50,
			TLB:           DefaultTLB(),
		})
	}
	seq := mk()
	for i := 0; i < 1<<16; i += 8 {
		seq.Access(uint64(i))
	}
	rng := rand.New(rand.NewSource(2))
	sc := mk()
	for i := 0; i < 1<<13; i++ {
		sc.Access(uint64(rng.Intn(1 << 28)))
	}
	if sc.Report().TLBMissRate() < 10*seq.Report().TLBMissRate() {
		t.Errorf("scattered TLB rate %v not far above sequential %v",
			sc.Report().TLBMissRate(), seq.Report().TLBMissRate())
	}
}
