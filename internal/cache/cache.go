// Package cache implements a software model of a multi-level,
// set-associative, LRU CPU data cache. It substitutes for the
// hardware performance counters the paper reads with perf: the traced
// kernel variants in internal/algos replay their data accesses through
// a Hierarchy, which then reports the same statistics the paper's
// Tables 3-4 do (L1 references, L1 miss rate, L3 references, L3 ratio,
// overall cache-miss rate) plus a latency model for the CPU-vs-stall
// breakdown of Figure 1.
package cache

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name     string
	Size     int64 // total bytes
	LineSize int64 // bytes per line
	Ways     int   // associativity
	// Latency is the cost in cycles of a hit at this level.
	Latency int64
}

// Config describes a full hierarchy plus main memory.
type Config struct {
	Levels []LevelConfig
	// MemoryLatency is the cost in cycles of going to RAM.
	MemoryLatency int64
	// TLB, when non-nil, adds a data-TLB model: a fully-associative
	// LRU translation cache probed by every access. TLB misses are
	// the mechanism behind the wall-clock advantage of hot-vertex
	// groupings (HubSort/DBG/InDegSort) on real machines — see
	// EXPERIMENTS.md "host effect" — so modelling them lets the
	// simulator reproduce that ranking too.
	TLB *TLBConfig
}

// TLBConfig describes the translation lookaside buffer model.
type TLBConfig struct {
	Entries     int   // translation entries (fully associative)
	PageSize    int64 // bytes per page; must be a power of two
	MissLatency int64 // cycles per TLB miss (page-walk cost)
}

// DefaultTLB matches a typical 64-entry 4 KB-page L1 dTLB with a
// ~30-cycle page walk.
func DefaultTLB() *TLBConfig {
	return &TLBConfig{Entries: 64, PageSize: 4 << 10, MissLatency: 30}
}

// ReplicationMachine returns the hierarchy of the replication's
// evaluation machine: 32 KB 8-way L1, 256 KB 8-way L2, 20 MB 16-way
// L3, 64-byte lines, with the latencies from the paper's footnote
// (≈4 cycles L1, ≈12 L2, ≈42 L3, ≈250 cycles ≈62 ns RAM at 4 GHz).
func ReplicationMachine() Config {
	return Config{
		Levels: []LevelConfig{
			{Name: "L1", Size: 32 << 10, LineSize: 64, Ways: 8, Latency: 4},
			{Name: "L2", Size: 256 << 10, LineSize: 64, Ways: 8, Latency: 12},
			{Name: "L3", Size: 20 << 20, LineSize: 64, Ways: 16, Latency: 42},
		},
		MemoryLatency: 250,
	}
}

// SmallMachine returns a deliberately tiny hierarchy (4 KB L1, 32 KB
// L2, 256 KB L3) so that laptop-scale graphs exhibit the same
// pressure ratios billion-edge graphs put on a real 20 MB L3. The
// cache experiments default to it; see DESIGN.md §4.
func SmallMachine() Config {
	return Config{
		Levels: []LevelConfig{
			{Name: "L1", Size: 4 << 10, LineSize: 64, Ways: 8, Latency: 4},
			{Name: "L2", Size: 32 << 10, LineSize: 64, Ways: 8, Latency: 12},
			{Name: "L3", Size: 256 << 10, LineSize: 64, Ways: 16, Latency: 42},
		},
		MemoryLatency: 250,
	}
}

// level is one set-associative cache. Each set stores line tags in
// MRU-first order.
type level struct {
	cfg      LevelConfig
	numSets  uint64
	sets     [][]uint64
	refs     uint64
	misses   uint64
	lineBits uint
}

func newLevel(cfg LevelConfig) *level {
	if cfg.LineSize <= 0 || cfg.Ways <= 0 || cfg.Size <= 0 {
		panic("cache: non-positive level geometry")
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	numSets := cfg.Size / (cfg.LineSize * int64(cfg.Ways))
	if numSets == 0 {
		numSets = 1
	}
	lineBits := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		lineBits++
	}
	sets := make([][]uint64, numSets)
	for i := range sets {
		sets[i] = make([]uint64, 0, cfg.Ways)
	}
	return &level{cfg: cfg, numSets: uint64(numSets), sets: sets, lineBits: lineBits}
}

// access probes the level with a line address (addr >> lineBits).
// On hit the line moves to MRU. On miss it is inserted, evicting LRU.
// Set indexing is line mod numSets, which also handles the sliced,
// non-power-of-two LLCs of real processors.
func (l *level) access(line uint64) (hit bool) {
	l.refs++
	si := line % l.numSets
	set := l.sets[si]
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	l.misses++
	if len(set) < l.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	l.sets[si] = set
	return false
}

// Hierarchy is an inclusive multi-level cache with main memory behind
// it. The zero value is not usable; construct with New.
type Hierarchy struct {
	cfg      Config
	levels   []*level
	accesses uint64
	memRefs  uint64
	cycles   uint64
	lineBits uint
	observer func(line uint64)

	tlbPages  []uint64 // MRU-first page numbers; nil when disabled
	tlbBits   uint
	tlbMisses uint64
}

// SetObserver installs a callback invoked with the line address of
// every access, before the cache lookup. It lets side analyses — the
// reuse-distance profiler in internal/reuse — see the same stream the
// simulator sees. Pass nil to remove.
func (h *Hierarchy) SetObserver(fn func(line uint64)) { h.observer = fn }

// New builds a hierarchy from cfg. All levels must share one line
// size (as on real machines).
func New(cfg Config) *Hierarchy {
	if len(cfg.Levels) == 0 {
		panic("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{cfg: cfg}
	if t := cfg.TLB; t != nil {
		if t.Entries <= 0 || t.PageSize <= 0 || t.PageSize&(t.PageSize-1) != 0 {
			panic("cache: invalid TLB geometry")
		}
		h.tlbPages = make([]uint64, 0, t.Entries)
		for p := t.PageSize; p > 1; p >>= 1 {
			h.tlbBits++
		}
	}
	for i, lc := range cfg.Levels {
		if lc.LineSize != cfg.Levels[0].LineSize {
			panic("cache: levels disagree on line size")
		}
		lv := newLevel(lc)
		if i == 0 {
			h.lineBits = lv.lineBits
		}
		h.levels = append(h.levels, lv)
	}
	return h
}

// Access simulates one data access at byte address addr. The line is
// filled into every level on its way in (inclusive hierarchy), and the
// latency of the level that served the access is added to the cycle
// count.
func (h *Hierarchy) Access(addr uint64) {
	h.accesses++
	line := addr >> h.lineBits
	if h.observer != nil {
		h.observer(line)
	}
	if h.cfg.TLB != nil {
		h.probeTLB(addr >> h.tlbBits)
	}
	for _, lv := range h.levels {
		if lv.access(line) {
			h.cycles += uint64(lv.cfg.Latency)
			return
		}
	}
	h.memRefs++
	h.cycles += uint64(h.cfg.MemoryLatency)
}

// probeTLB looks the page up in the fully-associative LRU TLB,
// charging the page-walk latency on a miss.
func (h *Hierarchy) probeTLB(page uint64) {
	for i, p := range h.tlbPages {
		if p == page {
			copy(h.tlbPages[1:i+1], h.tlbPages[:i])
			h.tlbPages[0] = page
			return
		}
	}
	h.tlbMisses++
	h.cycles += uint64(h.cfg.TLB.MissLatency)
	if len(h.tlbPages) < h.cfg.TLB.Entries {
		h.tlbPages = append(h.tlbPages, 0)
	}
	copy(h.tlbPages[1:], h.tlbPages)
	h.tlbPages[0] = page
}

// AccessRange simulates a sequential access to size bytes starting at
// addr, touching each cache line once (how a streaming read of a
// struct or a few adjacent elements behaves).
func (h *Hierarchy) AccessRange(addr uint64, size int64) {
	first := addr >> h.lineBits
	last := (addr + uint64(size) - 1) >> h.lineBits
	for line := first; line <= last; line++ {
		h.Access(line << h.lineBits)
	}
}

// Reset clears statistics and cache contents.
func (h *Hierarchy) Reset() {
	for i, lv := range h.levels {
		nl := newLevel(lv.cfg)
		h.levels[i] = nl
	}
	h.accesses, h.memRefs, h.cycles = 0, 0, 0
	h.tlbMisses = 0
	if h.tlbPages != nil {
		h.tlbPages = h.tlbPages[:0]
	}
}

// LevelStats is the per-level counter snapshot.
type LevelStats struct {
	Name   string
	Refs   uint64
	Misses uint64
}

// MissRate returns Misses/Refs, or 0 for an idle level.
func (s LevelStats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Refs)
}

// Report is the full statistics snapshot, mirroring the columns of
// the paper's cache tables.
type Report struct {
	Accesses  uint64       // total data accesses = L1 references
	MemRefs   uint64       // accesses served by RAM
	Cycles    uint64       // modelled total access latency
	Levels    []LevelStats // per-level refs and misses
	TLBMisses uint64       // TLB misses (0 when the TLB is disabled)
}

// Report returns the current statistics.
func (h *Hierarchy) Report() Report {
	r := Report{Accesses: h.accesses, MemRefs: h.memRefs, Cycles: h.cycles, TLBMisses: h.tlbMisses}
	for _, lv := range h.levels {
		r.Levels = append(r.Levels, LevelStats{Name: lv.cfg.Name, Refs: lv.refs, Misses: lv.misses})
	}
	return r
}

// L1MissRate is the paper's "L1-mr": fraction of accesses not served
// by L1.
func (r Report) L1MissRate() float64 {
	if len(r.Levels) == 0 {
		return 0
	}
	return r.Levels[0].MissRate()
}

// LLCRefs is the paper's "L3-ref": the number of accesses that
// reached the last cache level.
func (r Report) LLCRefs() uint64 {
	if len(r.Levels) == 0 {
		return 0
	}
	return r.Levels[len(r.Levels)-1].Refs
}

// LLCRatio is the paper's "L3-r": LLC references over L1 references.
func (r Report) LLCRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.LLCRefs()) / float64(r.Accesses)
}

// MissRate is the paper's "Cache-mr": the fraction of accesses that
// had to go to main memory.
func (r Report) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.MemRefs) / float64(r.Accesses)
}

// TLBMissRate returns TLB misses over accesses (0 with no TLB).
func (r Report) TLBMissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.TLBMisses) / float64(r.Accesses)
}

// StallCycles models time lost to the memory system: total modelled
// latency minus what the same accesses would cost if every one hit L1.
func (r Report) StallCycles(cfg Config) uint64 {
	ideal := r.Accesses * uint64(cfg.Levels[0].Latency)
	if r.Cycles <= ideal {
		return 0
	}
	return r.Cycles - ideal
}

// CPUCycles models the compute component of Figure 1 as the all-hit
// cost of the access stream.
func (r Report) CPUCycles(cfg Config) uint64 {
	return r.Accesses * uint64(cfg.Levels[0].Latency)
}
