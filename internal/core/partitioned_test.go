package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

func TestQuickPartitionedValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		g := randGraph(rng, n, rng.Intn(4*n))
		for _, po := range []PartitionedOptions{
			{},
			{Workers: 1, Partitions: 2},
			{Workers: 3, Partitions: 5},
			{Workers: 8, Partitions: n},
			{Partitions: 4, Partitioner: PartitionerBFS},
			{Partitions: 4, Partitioner: PartitionerLDG},
		} {
			perm := OrderPartitioned(g, Options{}, po)
			if len(perm) != n || perm.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// The permutation is a function of (graph, Options, Partitions,
// Partitioner) only — bit-identical at every worker count and
// GOMAXPROCS setting. This is the contract that lets the artifact
// cache ignore Workers.
func TestPartitionedWorkerIndependent(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"web": gen.Web(400, gen.DefaultWeb, 7),
		"ba":  gen.BarabasiAlbert(300, 5, 11),
		"sbm": gen.SBM(350, 5, 8, 2, 3),
	}
	for gname, g := range graphs {
		for _, part := range []Partitioner{PartitionerGuide, PartitionerBFS, PartitionerLDG} {
			po := PartitionedOptions{Workers: 1, Partitions: 6, Partitioner: part}
			base := OrderPartitioned(g, Options{}, po)
			if err := base.Validate(); err != nil {
				t.Fatalf("%s: %v", gname, err)
			}
			for _, workers := range []int{2, 3, 8, 0} {
				po.Workers = workers
				p := OrderPartitioned(g, Options{}, po)
				for u := range base {
					if base[u] != p[u] {
						t.Fatalf("%s (partitioner=%d): workers=%d diverges from workers=1 at vertex %d",
							gname, part, workers, u)
					}
				}
			}
		}
	}
}

// Same contract across GOMAXPROCS: shrinking the scheduler to one
// thread must not change the output (the CI gate runs the whole suite
// under GOMAXPROCS=1 as well).
func TestPartitionedGOMAXPROCSIndependent(t *testing.T) {
	g := gen.Web(400, gen.DefaultWeb, 7)
	po := PartitionedOptions{Workers: 4, Partitions: 6}
	base := OrderPartitioned(g, Options{}, po)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	p := OrderPartitioned(g, Options{}, po)
	for u := range base {
		if base[u] != p[u] {
			t.Fatalf("GOMAXPROCS=1 diverges at vertex %d", u)
		}
	}
}

// Partitions IS part of the result: different counts give different
// permutations on a graph large enough to split differently.
func TestPartitionedPartitionCountMatters(t *testing.T) {
	g := gen.Web(4000, gen.DefaultWeb, 6)
	a := OrderPartitioned(g, Options{}, PartitionedOptions{Partitions: 2})
	b := OrderPartitioned(g, Options{}, PartitionedOptions{Partitions: 16})
	same := true
	for u := range a {
		if a[u] != b[u] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("partition counts 2 and 16 produced identical permutations")
	}
}

// Small graphs collapse to a single partition (minPartitionVertices)
// and must then match the exact sequential greedy.
func TestPartitionedSmallGraphIsExact(t *testing.T) {
	g := gen.BarabasiAlbert(40, 3, 5)
	want := Order(g)
	got := OrderPartitioned(g, Options{}, PartitionedOptions{Partitions: 8})
	for u := range want {
		if want[u] != got[u] {
			t.Fatalf("small-graph partitioned diverges from exact at vertex %d", u)
		}
	}
}

func TestPartitionedCanceled(t *testing.T) {
	g := gen.BarabasiAlbert(5000, 6, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := OrderPartitionedCtx(ctx, g, Options{}, PartitionedOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p != nil {
		t.Fatal("canceled run returned a permutation")
	}
}

func TestPartitionedDeadline(t *testing.T) {
	// Large enough that the per-partition greedies cannot finish in a
	// microsecond; the deadline must interrupt them mid-run.
	g := gen.BarabasiAlbert(20000, 8, 7)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := OrderPartitionedCtx(ctx, g, Options{}, PartitionedOptions{Workers: 4})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("OrderPartitionedCtx ignored its deadline")
	}
}

// stitchOrder places heavily connected partitions adjacently: on a
// block-structured graph whose partitions coincide with the blocks,
// the chain must follow the inter-block edge weights, not the index
// order the partitions arrived in.
func TestStitchFollowsWeight(t *testing.T) {
	// Three clusters: 0 and 2 heavily linked, 1 attached only to 2.
	edges := []graph.Edge{}
	cluster := func(base int) {
		for i := 0; i < 9; i++ {
			edges = append(edges, graph.Edge{From: graph.NodeID(base + i), To: graph.NodeID(base + i + 1)})
		}
	}
	cluster(0)
	cluster(10)
	cluster(20)
	for i := 0; i < 8; i++ { // heavy 0<->2 link
		edges = append(edges, graph.Edge{From: graph.NodeID(i), To: graph.NodeID(20 + i)})
	}
	edges = append(edges, graph.Edge{From: 10, To: 20}) // light 1->2 link
	g := graph.FromEdges(30, edges)
	parts := [][]graph.NodeID{idRange(0, 10), idRange(10, 20), idRange(20, 30)}
	chain := stitchOrder(g, parts)
	// Start partition holds the max-in-degree vertex; whatever it is,
	// partition 1 (the weakly linked one) must come last.
	if chain[len(chain)-1] != 1 {
		t.Fatalf("chain = %v; weakly connected partition 1 should stitch last", chain)
	}
}

func idRange(lo, hi int) []graph.NodeID {
	out := make([]graph.NodeID, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, graph.NodeID(v))
	}
	return out
}

// Quality guard for the default configuration on a mid-size web graph:
// the partitioned score must stay close to exact and far above random.
// TestParallelSmokeMidSize is the CI race-detector smoke: order a
// mid-size web graph with the two headline parallel methods at
// workers=4 and validate the permutations. Run by scripts/ci.sh with
// -race so any data race in the worker fan-out or the chunked
// passes surfaces.
func TestParallelSmokeMidSize(t *testing.T) {
	g := gen.Web(20000, gen.DefaultWeb, 0xC1)
	perm, err := order.BOBACtx(context.Background(), g, 4)
	if err != nil {
		t.Fatalf("boba: %v", err)
	}
	if err := perm.Validate(); err != nil {
		t.Fatalf("boba permutation: %v", err)
	}
	perm, err = OrderPartitionedCtx(context.Background(), g, Options{},
		PartitionedOptions{Workers: 4})
	if err != nil {
		t.Fatalf("gorder-partitioned: %v", err)
	}
	if err := perm.Validate(); err != nil {
		t.Fatalf("gorder-partitioned permutation: %v", err)
	}
}

func TestPartitionedQualityDefault(t *testing.T) {
	g := gen.Web(4000, gen.DefaultWeb, 6)
	w := DefaultWindow
	exact := WindowScore(g, Order(g), w)
	part := WindowScore(g, OrderPartitioned(g, Options{}, PartitionedOptions{}), w)
	if float64(part) < 0.8*float64(exact) {
		t.Errorf("default partitioned F=%d below 80%% of exact %d", part, exact)
	}
}
