package core

import "testing"

// Add with a positive delta lands at the class tail (Inc-like), a
// negative delta at the class head (Dec-like), and zero is a no-op that
// must not move the item within its class.
func TestUnitHeapAddDeltaSigns(t *testing.T) {
	h := NewUnitHeap(4)
	h.Add(2, 3)
	if got := h.Key(2); got != 3 {
		t.Fatalf("Key(2) = %d after Add(+3), want 3", got)
	}
	h.Add(1, 3)
	// Both at key 3; item 2 was raised first, so it extracts first.
	h.Add(2, 0)
	if item, key, _ := h.ExtractMax(); item != 2 || key != 3 {
		t.Fatalf("ExtractMax = (%d, %d), want (2, 3): Add(2, 0) must not relocate", item, key)
	}
	h.Add(1, -3)
	if got := h.Key(1); got != 0 {
		t.Fatalf("Key(1) = %d after Add(-3), want 0", got)
	}
	// Item 1 moved down to key class 0 as a Dec-run would: to its head,
	// ahead of items 0 and 3 that have sat there since construction.
	if item, key, _ := h.ExtractMax(); item != 1 || key != 0 {
		t.Fatalf("ExtractMax = (%d, %d), want (1, 0): negative Add must prepend", item, key)
	}
}

func TestUnitHeapAddPanics(t *testing.T) {
	h := NewUnitHeap(2)
	h.Delete(0)
	for name, f := range map[string]func(){
		"absent":   func() { h.Add(0, 1) },
		"negative": func() { h.Add(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add on %s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Large Add deltas must grow the dense class indices on demand, far
// past the initial capacity, and keep extraction order correct across
// the sparse key range.
func TestUnitHeapKeyRangeGrowth(t *testing.T) {
	h := NewUnitHeap(5)
	h.Add(3, 1<<16)
	h.Add(1, 1<<12)
	h.Add(4, 1<<16) // joins item 3's class at the tail
	h.Inc(2)
	want := []struct {
		item int
		key  int32
	}{{3, 1 << 16}, {4, 1 << 16}, {1, 1 << 12}, {2, 1}, {0, 0}}
	for _, w := range want {
		item, key, ok := h.ExtractMax()
		if !ok || item != w.item || key != w.key {
			t.Fatalf("ExtractMax = (%d, %d, %v), want (%d, %d, true)",
				item, key, ok, w.item, w.key)
		}
	}
}

// Interleaving Delete with ExtractMax down to exhaustion must keep the
// linked list and class indices consistent: sizes track, no dead item
// resurfaces, and the heap reports empty exactly once both paths have
// consumed everything.
func TestUnitHeapDeleteExtractExhaustion(t *testing.T) {
	const n = 33
	h := NewUnitHeap(n)
	for i := 0; i < n; i++ {
		for j := 0; j < i%5; j++ {
			h.Inc(i)
		}
	}
	seen := make([]bool, n)
	alive := n
	for i := 0; alive > 0; i++ {
		if i%3 == 1 {
			// Delete the lowest-numbered live item.
			for v := 0; v < n; v++ {
				if h.Contains(v) {
					h.Delete(v)
					seen[v] = true
					alive--
					break
				}
			}
			continue
		}
		item, _, ok := h.ExtractMax()
		if !ok {
			t.Fatalf("ExtractMax empty with %d items live", alive)
		}
		if seen[item] {
			t.Fatalf("item %d came out twice", item)
		}
		seen[item] = true
		alive--
		if h.Len() != alive {
			t.Fatalf("Len = %d, want %d", h.Len(), alive)
		}
	}
	if _, _, ok := h.ExtractMax(); ok {
		t.Fatal("ExtractMax on exhausted heap returned ok")
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			t.Fatalf("item %d never came out", v)
		}
	}
}
