package core

// lazyHeap is the ablation alternative to the unit heap: a standard
// binary max-heap with lazy entries. Inc/Dec adjust the authoritative
// key array and push a fresh entry on increments; stale entries are
// discarded at extraction time. The paper argues the unit heap's O(1)
// updates matter because the greedy algorithm performs a key update
// per edge-relation per window slide; BenchmarkAblationQueue measures
// that claim.
type lazyHeap struct {
	key   []int32
	alive []bool
	size  int
	entry []lazyEntry
}

type lazyEntry struct {
	key  int32
	item int32
}

func newLazyHeap(n int) *lazyHeap {
	h := &lazyHeap{
		key:   make([]int32, n),
		alive: make([]bool, n),
		size:  n,
		entry: make([]lazyEntry, 0, 2*n),
	}
	// Seed entries in reverse so ties pop lowest item first (matching
	// the initial unit-heap order closely enough for tests).
	for i := n - 1; i >= 0; i-- {
		h.alive[i] = true
		h.push(lazyEntry{0, int32(i)})
	}
	return h
}

func (h *lazyHeap) Len() int            { return h.size }
func (h *lazyHeap) Contains(i int) bool { return h.alive[i] }
func (h *lazyHeap) Key(i int) int32     { return h.key[i] }

func (h *lazyHeap) Inc(item int) {
	h.key[item]++
	h.push(lazyEntry{h.key[item], int32(item)})
}

// Dec lowers the key without pushing: the stale higher entry is
// filtered at pop time by comparing against the authoritative key.
func (h *lazyHeap) Dec(item int) { h.key[item]-- }

// Add moves item's key by delta in one step — the counterpart of
// UnitHeap.Add, so the cross-implementation fuzz test can drive both
// queues through identical op sequences. A raised key pushes one fresh
// entry; a lowered key is corrected lazily at extraction time.
func (h *lazyHeap) Add(item int, delta int32) {
	h.key[item] += delta
	if delta > 0 {
		h.push(lazyEntry{h.key[item], int32(item)})
	}
}

func (h *lazyHeap) Delete(item int) {
	h.alive[item] = false
	h.size--
}

func (h *lazyHeap) ExtractMax() (item int, key int32, ok bool) {
	for len(h.entry) > 0 {
		top := h.entry[0]
		h.pop()
		if h.alive[top.item] && h.key[top.item] == top.key {
			h.alive[top.item] = false
			h.size--
			return int(top.item), top.key, true
		}
		// Stale or dead entry; a live item whose key decreased has no
		// matching entry left, so re-push the corrected one lazily.
		if h.alive[top.item] && h.key[top.item] < top.key {
			h.push(lazyEntry{h.key[top.item], top.item})
		}
	}
	return 0, 0, false
}

// less orders entries by key descending, then item ascending, so the
// heap is deterministic.
func (h *lazyHeap) less(a, b lazyEntry) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	return a.item < b.item
}

func (h *lazyHeap) push(e lazyEntry) {
	h.entry = append(h.entry, e)
	i := len(h.entry) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.entry[i], h.entry[p]) {
			break
		}
		h.entry[i], h.entry[p] = h.entry[p], h.entry[i]
		i = p
	}
}

func (h *lazyHeap) pop() {
	last := len(h.entry) - 1
	h.entry[0] = h.entry[last]
	h.entry = h.entry[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.entry) && h.less(h.entry[l], h.entry[best]) {
			best = l
		}
		if r < len(h.entry) && h.less(h.entry[r], h.entry[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.entry[i], h.entry[best] = h.entry[best], h.entry[i]
		i = best
	}
}
