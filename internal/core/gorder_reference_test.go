package core

import (
	"gorder/internal/graph"
	"gorder/internal/order"
)

// orderReference is the seed implementation of the Gorder greedy,
// kept verbatim as the parity oracle: one interface-dispatched queue
// operation per ±1 score bump, per-call closures and all. The
// optimized production loop (batched deltas over the concrete
// *UnitHeap) must reproduce its permutation bit for bit —
// TestOrderOptimizedMatchesReference holds the two together.
func orderReference(g *graph.Graph, opt Options) order.Permutation {
	n := g.NumNodes()
	if n == 0 {
		return order.Permutation{}
	}
	w := opt.Window
	if w <= 0 {
		w = DefaultWindow
	}
	var q maxQueue
	if opt.UseLazyHeap {
		q = newLazyHeap(n)
	} else {
		q = NewUnitHeap(n)
	}

	seq := make([]graph.NodeID, 0, n)
	// Start from the vertex with maximum in-degree (the most shared
	// data structure in the graph), lowest ID on ties.
	start := graph.NodeID(0)
	for v := 1; v < n; v++ {
		if g.InDegree(graph.NodeID(v)) > g.InDegree(start) {
			start = graph.NodeID(v)
		}
	}
	q.Delete(int(start))
	seq = append(seq, start)

	// apply adds (delta=+1) or removes (delta=-1) vertex v's score
	// contributions to every candidate still in the queue:
	//   - out-neighbours and in-neighbours of v gain Sn,
	//   - out-neighbours of v's in-neighbours gain Ss (one shared
	//     in-neighbour each).
	apply := func(v graph.NodeID, delta int) {
		bump := func(u graph.NodeID) {
			if int(u) < n && q.Contains(int(u)) {
				if delta > 0 {
					q.Inc(int(u))
				} else {
					q.Dec(int(u))
				}
			}
		}
		for _, u := range g.OutNeighbors(v) {
			bump(u)
		}
		for _, x := range g.InNeighbors(v) {
			bump(x)
			if opt.HubThreshold > 0 && g.OutDegree(x) > opt.HubThreshold {
				continue
			}
			for _, u := range g.OutNeighbors(x) {
				if u != v {
					bump(u)
				}
			}
		}
	}

	for i := 1; i < n; i++ {
		apply(seq[i-1], +1)
		if i-1 >= w {
			apply(seq[i-1-w], -1)
		}
		v, _, ok := q.ExtractMax()
		if !ok {
			break
		}
		seq = append(seq, graph.NodeID(v))
	}
	return order.FromSequence(seq)
}
