package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

// grow extends g with extra new vertices, each linking to a few
// existing ones (and some back-links), mimicking graph evolution.
func grow(rng *rand.Rand, g *graph.Graph, extra int) *graph.Graph {
	n := g.NumNodes()
	var edges []graph.Edge
	g.Edges(func(u, v graph.NodeID) bool {
		edges = append(edges, graph.Edge{From: u, To: v})
		return true
	})
	for v := n; v < n+extra; v++ {
		links := 1 + rng.Intn(4)
		for j := 0; j < links; j++ {
			t := graph.NodeID(rng.Intn(v))
			edges = append(edges, graph.Edge{From: graph.NodeID(v), To: t})
			if rng.Intn(2) == 0 {
				edges = append(edges, graph.Edge{From: t, To: graph.NodeID(v)})
			}
		}
	}
	return graph.FromEdgesDedup(n+extra, edges)
}

// churn applies random edge deletions to g (no vertex changes) and
// returns the new graph plus the dirty endpoints of deleted edges.
func churn(rng *rand.Rand, g *graph.Graph, dels int) (*graph.Graph, []graph.NodeID) {
	var edges []graph.Edge
	g.Edges(func(u, v graph.NodeID) bool {
		edges = append(edges, graph.Edge{From: u, To: v})
		return true
	})
	var dirty []graph.NodeID
	for i := 0; i < dels && len(edges) > 1; i++ {
		j := rng.Intn(len(edges))
		dirty = append(dirty, edges[j].From, edges[j].To)
		edges[j] = edges[len(edges)-1]
		edges = edges[:len(edges)-1]
	}
	return graph.FromEdgesDedup(g.NumNodes(), edges), dirty
}

func mustIncremental(t *testing.T, g *graph.Graph, base order.Permutation, opt Options) order.Permutation {
	t.Helper()
	p, err := OrderIncremental(g, base, opt)
	if err != nil {
		t.Fatalf("OrderIncremental: %v", err)
	}
	return p
}

func TestIncrementalPreservesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 40, 150)
	base := Order(g)
	g2 := grow(rng, g, 15)
	p := mustIncremental(t, g2, base, Options{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 40; u++ {
		if p[u] != base[u] {
			t.Fatalf("old vertex %d moved: %d → %d", u, base[u], p[u])
		}
	}
	// New vertices occupy the suffix positions.
	for u := 40; u < 55; u++ {
		if int(p[u]) < 40 {
			t.Fatalf("new vertex %d placed at prefix position %d", u, p[u])
		}
	}
}

func TestIncrementalEmptyBaseFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 30, 100)
	full := Order(g)
	inc := mustIncremental(t, g, order.Permutation{}, Options{})
	for u := range full {
		if full[u] != inc[u] {
			t.Fatal("empty base did not reduce to the full algorithm")
		}
	}
}

func TestIncrementalNoNewVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 25, 80)
	base := Order(g)
	p := mustIncremental(t, g, base, Options{})
	for u := range base {
		if p[u] != base[u] {
			t.Fatal("no-op increment changed the permutation")
		}
	}
}

func TestIncrementalRejectsBadInput(t *testing.T) {
	g := graph.FromEdges(3, nil)
	for name, base := range map[string]order.Permutation{
		"too long": {0, 1, 2, 3},
		"invalid":  {0, 0},
	} {
		if _, err := OrderIncremental(g, base, Options{}); err == nil {
			t.Errorf("%s base accepted", name)
		}
	}
	base := order.Permutation{0, 1}
	for name, dirty := range map[string][]graph.NodeID{
		"negative":     {0, graph.NodeID(^uint32(0))},
		"out of range": {3},
	} {
		if _, err := OrderIncrementalCtx(context.Background(), g, base, dirty, Options{}); err == nil {
			t.Errorf("%s dirty vertex accepted", name)
		}
	}
}

func TestIncrementalCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randGraph(rng, 50, 200)
	base := Order(g)
	g2 := grow(rng, g, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if p, err := OrderIncrementalCtx(ctx, g2, base, nil, Options{}); err == nil || p != nil {
		t.Fatalf("canceled context: got perm=%v err=%v, want nil, ctx error", p, err)
	}
}

// Dirty vertices are re-placed; clean vertices keep their relative
// order from the base permutation.
func TestIncrementalDirtyReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randGraph(rng, 60, 300)
	base := Order(g)
	g2, dirty := churn(rng, g, 30)
	p, err := OrderIncrementalCtx(context.Background(), g2, base, dirty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	isDirty := make(map[graph.NodeID]bool)
	for _, d := range dirty {
		isDirty[d] = true
	}
	// Clean vertices appear in the same relative order as in base.
	var cleanBase, cleanNew []graph.NodeID
	for _, v := range base.Sequence() {
		if !isDirty[v] {
			cleanBase = append(cleanBase, v)
		}
	}
	for _, v := range p.Sequence() {
		if !isDirty[v] {
			cleanNew = append(cleanNew, v)
		}
	}
	if len(cleanBase) != len(cleanNew) {
		t.Fatalf("clean count changed: %d → %d", len(cleanBase), len(cleanNew))
	}
	for i := range cleanBase {
		if cleanBase[i] != cleanNew[i] {
			t.Fatalf("clean vertex order changed at %d: %d vs %d", i, cleanBase[i], cleanNew[i])
		}
	}
	// Dirty vertices occupy the suffix.
	seq := p.Sequence()
	for _, v := range seq[len(cleanBase):] {
		if !isDirty[v] {
			t.Fatalf("clean vertex %d in the re-placement suffix", v)
		}
	}
}

// The repair move the daemon's quality monitor fires: after several
// growth batches extended one at a time, jointly re-placing everything
// added since the baseline recovers at least the per-batch extension's
// objective, at a fraction of a full recompute's work.
func TestIncrementalRepairSinceBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gen.BarabasiAlbert(2000, 4, 21)
	perm := Order(g)
	baseN := g.NumNodes()
	w := DefaultWindow
	for batch := 0; batch < 3; batch++ {
		g = grow(rng, g, g.NumNodes()/25)
		var err error
		perm, err = OrderIncrementalCtx(context.Background(), g, perm, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	var dirty []graph.NodeID
	for v := baseN; v < g.NumNodes(); v++ {
		dirty = append(dirty, graph.NodeID(v))
	}
	repaired, err := OrderIncrementalCtx(context.Background(), g, perm, dirty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := repaired.Validate(); err != nil {
		t.Fatal(err)
	}
	fExt := order.Score(g, perm, w)
	fRep := order.Score(g, repaired, w)
	if fRep < fExt {
		t.Errorf("joint repair F=%d below accumulated extensions F=%d", fRep, fExt)
	}
	fFull := order.Score(g, Order(g), w)
	if float64(fRep) < 0.9*float64(fFull) {
		t.Errorf("repair F=%d under 0.9 of full recompute F=%d", fRep, fFull)
	}
}

// The new suffix is placed greedy-optimally given the frozen prefix:
// each placed new vertex has the maximum windowed score among the
// remaining new vertices.
func TestIncrementalSuffixGreedyOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		k := 15 + rng.Intn(20)
		g := randGraph(rng, k, 3*k)
		base := Order(g)
		extra := 5 + rng.Intn(15)
		g2 := grow(rng, g, extra)
		w := 4
		p := mustIncremental(t, g2, base, Options{Window: w})
		seq := p.Sequence()
		placed := make([]bool, g2.NumNodes())
		for _, v := range seq[:k] {
			placed[v] = true
		}
		for i := k; i < len(seq); i++ {
			lo := i - w
			if lo < 0 {
				lo = 0
			}
			window := seq[lo:i]
			scoreOf := func(u graph.NodeID) int64 {
				var s int64
				for _, x := range window {
					s += order.PairScore(g2, u, x)
				}
				return s
			}
			chosen := scoreOf(seq[i])
			for u := k; u < g2.NumNodes(); u++ {
				if !placed[u] {
					if s := scoreOf(graph.NodeID(u)); s > chosen {
						t.Fatalf("trial %d step %d: placed %d (score %d) over %d (score %d)",
							trial, i, seq[i], chosen, u, s)
					}
				}
			}
			placed[seq[i]] = true
		}
	}
}

// Incremental placement beats appending the new vertices in arbitrary
// order on the objective.
func TestIncrementalBeatsNaiveAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.BarabasiAlbert(300, 4, 8)
	base := Order(g)
	g2 := grow(rng, g, 150)
	w := DefaultWindow
	inc := mustIncremental(t, g2, base, Options{})
	naive := make(order.Permutation, g2.NumNodes())
	copy(naive, base)
	for u := 300; u < g2.NumNodes(); u++ {
		naive[u] = graph.NodeID(u) // append in ID order
	}
	if fi, fn := order.Score(g2, inc, w), order.Score(g2, naive, w); fi <= fn {
		t.Errorf("incremental F=%d not above naive append F=%d", fi, fn)
	}
}

// Property: always a valid permutation preserving the prefix.
func TestQuickIncrementalValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(30)
		g := randGraph(rng, k, rng.Intn(4*k))
		base := Order(g)
		g2 := grow(rng, g, rng.Intn(20))
		p, err := OrderIncremental(g2, base, Options{Window: 1 + rng.Intn(6)})
		if err != nil {
			return false
		}
		if len(p) != g2.NumNodes() || p.Validate() != nil {
			return false
		}
		for u := 0; u < k; u++ {
			if p[u] != base[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
