package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

// grow extends g with extra new vertices, each linking to a few
// existing ones (and some back-links), mimicking graph evolution.
func grow(rng *rand.Rand, g *graph.Graph, extra int) *graph.Graph {
	n := g.NumNodes()
	var edges []graph.Edge
	g.Edges(func(u, v graph.NodeID) bool {
		edges = append(edges, graph.Edge{From: u, To: v})
		return true
	})
	for v := n; v < n+extra; v++ {
		links := 1 + rng.Intn(4)
		for j := 0; j < links; j++ {
			t := graph.NodeID(rng.Intn(v))
			edges = append(edges, graph.Edge{From: graph.NodeID(v), To: t})
			if rng.Intn(2) == 0 {
				edges = append(edges, graph.Edge{From: t, To: graph.NodeID(v)})
			}
		}
	}
	return graph.FromEdgesDedup(n+extra, edges)
}

func TestIncrementalPreservesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 40, 150)
	base := Order(g)
	g2 := grow(rng, g, 15)
	p := OrderIncremental(g2, base, Options{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 40; u++ {
		if p[u] != base[u] {
			t.Fatalf("old vertex %d moved: %d → %d", u, base[u], p[u])
		}
	}
	// New vertices occupy the suffix positions.
	for u := 40; u < 55; u++ {
		if int(p[u]) < 40 {
			t.Fatalf("new vertex %d placed at prefix position %d", u, p[u])
		}
	}
}

func TestIncrementalEmptyBaseFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 30, 100)
	full := Order(g)
	inc := OrderIncremental(g, order.Permutation{}, Options{})
	for u := range full {
		if full[u] != inc[u] {
			t.Fatal("empty base did not reduce to the full algorithm")
		}
	}
}

func TestIncrementalNoNewVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 25, 80)
	base := Order(g)
	p := OrderIncremental(g, base, Options{})
	for u := range base {
		if p[u] != base[u] {
			t.Fatal("no-op increment changed the permutation")
		}
	}
}

func TestIncrementalPanicsOnBadBase(t *testing.T) {
	g := graph.FromEdges(3, nil)
	for name, base := range map[string]order.Permutation{
		"too long": {0, 1, 2, 3},
		"invalid":  {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s base accepted", name)
				}
			}()
			OrderIncremental(g, base, Options{})
		}()
	}
}

// The new suffix is placed greedy-optimally given the frozen prefix:
// each placed new vertex has the maximum windowed score among the
// remaining new vertices.
func TestIncrementalSuffixGreedyOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		k := 15 + rng.Intn(20)
		g := randGraph(rng, k, 3*k)
		base := Order(g)
		extra := 5 + rng.Intn(15)
		g2 := grow(rng, g, extra)
		w := 4
		p := OrderIncremental(g2, base, Options{Window: w})
		seq := p.Sequence()
		placed := make([]bool, g2.NumNodes())
		for _, v := range seq[:k] {
			placed[v] = true
		}
		for i := k; i < len(seq); i++ {
			lo := i - w
			if lo < 0 {
				lo = 0
			}
			window := seq[lo:i]
			scoreOf := func(u graph.NodeID) int64 {
				var s int64
				for _, x := range window {
					s += order.PairScore(g2, u, x)
				}
				return s
			}
			chosen := scoreOf(seq[i])
			for u := k; u < g2.NumNodes(); u++ {
				if !placed[u] {
					if s := scoreOf(graph.NodeID(u)); s > chosen {
						t.Fatalf("trial %d step %d: placed %d (score %d) over %d (score %d)",
							trial, i, seq[i], chosen, u, s)
					}
				}
			}
			placed[seq[i]] = true
		}
	}
}

// Incremental placement beats appending the new vertices in arbitrary
// order on the objective.
func TestIncrementalBeatsNaiveAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.BarabasiAlbert(300, 4, 8)
	base := Order(g)
	g2 := grow(rng, g, 150)
	w := DefaultWindow
	inc := OrderIncremental(g2, base, Options{})
	naive := make(order.Permutation, g2.NumNodes())
	copy(naive, base)
	for u := 300; u < g2.NumNodes(); u++ {
		naive[u] = graph.NodeID(u) // append in ID order
	}
	if fi, fn := order.Score(g2, inc, w), order.Score(g2, naive, w); fi <= fn {
		t.Errorf("incremental F=%d not above naive append F=%d", fi, fn)
	}
}

// Property: always a valid permutation preserving the prefix.
func TestQuickIncrementalValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(30)
		g := randGraph(rng, k, rng.Intn(4*k))
		base := Order(g)
		g2 := grow(rng, g, rng.Intn(20))
		p := OrderIncremental(g2, base, Options{Window: 1 + rng.Intn(6)})
		if len(p) != g2.NumNodes() || p.Validate() != nil {
			return false
		}
		for u := 0; u < k; u++ {
			if p[u] != base[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
