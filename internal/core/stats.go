package core

import (
	"context"
	"sync/atomic"
)

// OrderStats accumulates operation counts across Gorder greedy runs:
// how many priority-queue mutations (bulk Adds, Inc/Decs, extractions,
// deletions) the runs performed and how many vertices they placed.
// Attach one to a context with WithOrderStats; every greedy run under
// that context adds its counts on return (including cancelled runs,
// which report the work done so far). The counters are atomic so the
// concurrent per-chunk runs of OrderParallelCtx can share one carrier.
type OrderStats struct {
	heapOps    atomic.Int64
	placements atomic.Int64
}

func (s *OrderStats) add(heapOps, placements int64) {
	s.heapOps.Add(heapOps)
	s.placements.Add(placements)
}

// HeapOps returns the accumulated priority-queue operation count.
func (s *OrderStats) HeapOps() int64 { return s.heapOps.Load() }

// Placements returns the accumulated number of placed vertices.
func (s *OrderStats) Placements() int64 { return s.placements.Load() }

type orderStatsKey struct{}

// WithOrderStats returns a context under which every Gorder greedy run
// (OrderWithCtx, and each chunk of OrderParallelCtx) adds its
// operation counts to st — an httptrace-style carrier, so the
// instrumentation costs nothing when absent and needs no change to the
// ordering signatures. The registry's ComputeObserved uses it to put
// heap-op and placement counts on every Observation.
func WithOrderStats(ctx context.Context, st *OrderStats) context.Context {
	return context.WithValue(ctx, orderStatsKey{}, st)
}

// orderStatsFrom retrieves the carrier, or nil when none is attached.
func orderStatsFrom(ctx context.Context) *OrderStats {
	st, _ := ctx.Value(orderStatsKey{}).(*OrderStats)
	return st
}
