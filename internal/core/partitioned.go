package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// Partition-parallel Gorder: the multi-core answer to the sequential
// greedy's superlinear cost (Table 2). The graph is cut into
// partitions, the PR 5 unit-heap greedy runs on every partition's
// subgraph concurrently — each run owns its heap and scratch arrays,
// nothing is shared — and the per-partition orders are stitched into
// one sequence by inter-partition edge weight, so heavily connected
// partitions end up adjacent in the final ID space.
//
// Two design points carry the ordering quality; both were measured on
// the 1M-edge web workload (see BENCH_parallel_order.json):
//
//   - Guide partitioning. Chunking a BFS visit sequence keeps only
//     ~42% of the exact ordering's same-partition score on web graphs:
//     Gorder's score is dominated by hub-sibling groups, and hop-order
//     scatters each hub's out-neighbourhood across chunks. Chunking
//     the BOBA sequence instead — vertices in first-appearance-as-
//     destination order, so each hub's siblings sit consecutively —
//     lifts that to ~56%, for two O(m) passes.
//   - Ghost hubs. An induced subgraph drops the partition's external
//     in-neighbours, which blinds the per-partition greedy to sibling
//     relations through out-of-partition hubs — even when both
//     siblings are in the partition. Each external in-neighbour with
//     at least minGhostChildren member children therefore enters the
//     subgraph as a ghost vertex with its member out-edges, restoring
//     those shared-in-neighbour scores; ghosts are dropped from the
//     final sequence after ordering. Ghosts roughly double the
//     subgraph but raise the retained score from ~45% to >90% of
//     exact.
//
// Two properties matter for the serving layer:
//
//   - Workers is pure scheduling. The partition grid depends only on
//     (graph, Options, PartitionedOptions minus Workers), partition
//     runs write into per-partition slots, and the stitch is a
//     deterministic greedy over partition weights — so the permutation
//     is bit-identical at any worker count and GOMAXPROCS, and the
//     artifact cache can ignore Workers.
//   - The speedup is twofold: concurrency across partitions, plus the
//     work reduction of running a superlinear greedy on k small
//     subproblems instead of one large one. Even a single core orders
//     several times faster at the default partition count.

// DefaultPartitions is the default partition count. It is a fixed
// constant — never derived from GOMAXPROCS — so the permutation does
// not depend on the machine; 16 partitions give 8 workers headroom
// for load balancing while keeping cross-partition score loss small.
const DefaultPartitions = 16

// minPartitionVertices keeps partitions from degenerating below the
// scale where the windowed greedy has anything to optimise.
const minPartitionVertices = 32

// minGhostChildren is the member-children count below which an
// external in-neighbour gets no ghost vertex. A hub with c member
// children can contribute at most c-1 within-window sibling scores, so
// single-child hubs are pure overhead; the threshold of 2 keeps every
// hub that can still produce a sibling pair.
const minGhostChildren = 2

// defaultPartitionHubThreshold is the HubThreshold applied to the
// per-partition greedy runs when the caller left Options.HubThreshold
// at zero. The partitioned ordering is already an approximation, so it
// defaults to the paper's hub optimisation: skipping sibling expansion
// through in-neighbours above this out-degree cut per-partition
// ordering time by ~40% and cost ~0.3% of the final score on the
// 1M-edge web workload.
const defaultPartitionHubThreshold = 1024

// Partitioner selects how OrderPartitioned cuts the graph.
type Partitioner int

const (
	// PartitionerGuide (the default) chunks the BOBA first-appearance
	// sequence: each hub's out-neighbourhood lands in one chunk, which
	// preserves by far the most sibling score on power-law graphs.
	PartitionerGuide Partitioner = iota
	// PartitionerBFS chunks a BFS visit sequence — hop-locality
	// partitions, the natural choice for mesh- and road-like graphs.
	PartitionerBFS
	// PartitionerLDG uses Linear Deterministic Greedy streaming bins:
	// slowest to build, cuts the fewest edges on clustered graphs.
	PartitionerLDG
)

// PartitionedOptions configures OrderPartitioned beyond the Gorder
// Options the per-partition greedy consumes.
type PartitionedOptions struct {
	// Workers bounds the number of concurrent partition runs
	// (<= 0 selects GOMAXPROCS). It never affects the permutation.
	Workers int
	// Partitions is the partition count (<= 0 selects
	// DefaultPartitions). Part of the result: more partitions order
	// faster and forfeit more cross-partition score.
	Partitions int
	// Partitioner selects the partitioning strategy; the zero value is
	// PartitionerGuide.
	Partitioner Partitioner
}

func (po PartitionedOptions) partitions(n int) int {
	k := po.Partitions
	if k <= 0 {
		k = DefaultPartitions
	}
	if max := n / minPartitionVertices; k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	return k
}

// OrderPartitioned computes the partition-parallel Gorder permutation
// with background context; see OrderPartitionedCtx.
func OrderPartitioned(g *graph.Graph, opt Options, po PartitionedOptions) order.Permutation {
	p, _ := OrderPartitionedCtx(context.Background(), g, opt, po)
	return p
}

// OrderPartitionedCtx computes the partition-parallel Gorder
// permutation: partition along the configured guide, order every
// partition's ghost-extended subgraph with the unit-heap greedy on up
// to po.Workers goroutines, stitch by inter-partition edge weight.
// Cancellation propagates into the partitioner and every partition's
// greedy loop; the first error aborts the whole run.
//
// opt.HubThreshold keeps its OrderWith meaning inside each partition,
// with one twist: zero selects defaultPartitionHubThreshold rather
// than exact scoring (pass a negative value to force exact scores).
// Graphs that collapse to a single partition run the plain exact
// greedy with opt unchanged.
func OrderPartitionedCtx(ctx context.Context, g *graph.Graph, opt Options, po PartitionedOptions) (order.Permutation, error) {
	n := g.NumNodes()
	if n == 0 {
		return order.Permutation{}, ctx.Err()
	}
	k := po.partitions(n)
	if k == 1 {
		return OrderWithCtx(ctx, g, opt)
	}
	var parts [][]graph.NodeID
	var err error
	switch po.Partitioner {
	case PartitionerBFS:
		parts, err = order.BFSPartition(ctx, g, k)
	case PartitionerLDG:
		parts, err = order.LDGPartition(ctx, g, k)
	default:
		var guide order.Permutation
		guide, err = order.BOBACtx(ctx, g, po.Workers)
		if err == nil {
			parts = order.ChunkPartition(guide.Sequence(), k)
		}
	}
	if err != nil {
		return nil, err
	}
	popt := opt
	switch {
	case popt.HubThreshold == 0:
		popt.HubThreshold = defaultPartitionHubThreshold
	case popt.HubThreshold < 0:
		popt.HubThreshold = 0
	}
	ordered, err := orderPartitions(ctx, g, popt, po.Workers, parts)
	if err != nil {
		return nil, err
	}
	chain := stitchOrder(g, parts)
	seq := make([]graph.NodeID, 0, n)
	for _, pi := range chain {
		seq = append(seq, ordered[pi]...)
	}
	return order.FromSequence(seq), nil
}

// resolveWorkers maps the workers knob to a goroutine count.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ghostScratch holds one worker goroutine's reusable per-partition
// buffers: the global-to-local vertex map, the external in-neighbour
// child counts, the list of touched externals (for O(touched) reset),
// and the subgraph edge buffer.
type ghostScratch struct {
	local    []int32 // -1, or local ID (members first, then ghosts)
	ghostCnt []int32
	touched  []graph.NodeID
	edges    []graph.Edge
}

func newGhostScratch(n int) *ghostScratch {
	sc := &ghostScratch{
		local:    make([]int32, n),
		ghostCnt: make([]int32, n),
	}
	for i := range sc.local {
		sc.local[i] = -1
	}
	return sc
}

// orderPartitions runs the greedy on every partition's ghost-extended
// subgraph, up to `workers` at a time, and returns each partition's
// ordered member sequence in global IDs. Results land in per-partition
// slots, so the claim order does not affect the output.
func orderPartitions(ctx context.Context, g *graph.Graph, opt Options, workers int, parts [][]graph.NodeID) ([][]graph.NodeID, error) {
	workers = resolveWorkers(workers)
	if workers > len(parts) {
		workers = len(parts)
	}
	ordered := make([][]graph.NodeID, len(parts))
	var firstErr error
	var errMu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newGhostScratch(g.NumNodes())
			for {
				i := int(next.Add(1)) - 1
				if i >= len(parts) || ctx.Err() != nil {
					return
				}
				out, err := orderOnePartition(ctx, g, opt, parts[i], sc)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				ordered[i] = out
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ordered, nil
}

// orderOnePartition builds the partition's ghost-extended subgraph —
// members keep their induced out-edges; every external in-neighbour
// with >= minGhostChildren member children joins as a ghost vertex
// carrying its member edges — orders it with the exact greedy, and
// returns the member sequence in global IDs with ghosts filtered out.
// Ghost IDs are assigned in first-touch scan order (members in
// partition order, in-neighbours in CSR order), so the subgraph and
// hence the result are deterministic.
func orderOnePartition(ctx context.Context, g *graph.Graph, opt Options, members []graph.NodeID, sc *ghostScratch) ([]graph.NodeID, error) {
	nm := len(members)
	for li, v := range members {
		sc.local[v] = int32(li)
	}
	sc.touched = sc.touched[:0]
	for _, v := range members {
		for _, h := range g.InNeighbors(v) {
			if sc.local[h] < 0 {
				if sc.ghostCnt[h] == 0 {
					sc.touched = append(sc.touched, h)
				}
				sc.ghostCnt[h]++
			}
		}
	}
	nextID := int32(nm)
	for _, h := range sc.touched {
		if sc.ghostCnt[h] >= minGhostChildren {
			sc.local[h] = nextID
			nextID++
		}
	}
	edges := sc.edges[:0]
	for _, v := range members {
		lv := graph.NodeID(sc.local[v])
		for _, x := range g.OutNeighbors(v) {
			if lx := sc.local[x]; lx >= 0 && int(lx) < nm {
				edges = append(edges, graph.Edge{From: lv, To: graph.NodeID(lx)})
			}
		}
		for _, h := range g.InNeighbors(v) {
			if gh := sc.local[h]; gh >= int32(nm) {
				edges = append(edges, graph.Edge{From: graph.NodeID(gh), To: lv})
			}
		}
	}
	sc.edges = edges
	sub := graph.FromEdges(int(nextID), edges)
	perm, err := OrderWithCtx(ctx, sub, opt)
	// Reset the scratch before any return so the next partition starts
	// clean even after an error.
	for _, v := range members {
		sc.local[v] = -1
	}
	for _, h := range sc.touched {
		sc.ghostCnt[h] = 0
		sc.local[h] = -1
	}
	if err != nil {
		return nil, err
	}
	out := make([]graph.NodeID, 0, nm)
	for _, lv := range perm.Sequence() {
		if int(lv) < nm {
			out = append(out, members[lv])
		}
	}
	return out, nil
}

// stitchOrder decides the partition concatenation order: a greedy
// chain over inter-partition edge weights. The chain starts at the
// partition holding the greedy's usual start vertex (maximum
// in-degree, lowest ID on ties) and repeatedly appends the unplaced
// partition with the heaviest connection to the chain's tail —
// falling back to the heaviest connection to the whole placed set,
// then to the lowest index — so boundary-crossing edges tend to land
// between adjacent blocks of the final ID space, where they still
// score within the window.
func stitchOrder(g *graph.Graph, parts [][]graph.NodeID) []int {
	k := len(parts)
	if k == 1 {
		return []int{0}
	}
	partOf := make([]int32, g.NumNodes())
	for i, members := range parts {
		for _, v := range members {
			partOf[v] = int32(i)
		}
	}
	// Symmetric inter-partition edge weights; k is small (tens), so a
	// dense k×k matrix is fine.
	weight := make([][]int64, k)
	for i := range weight {
		weight[i] = make([]int64, k)
	}
	outIdx, outAdj := g.OutIndex(), g.OutAdjacency()
	for u := 0; u < g.NumNodes(); u++ {
		pu := partOf[u]
		for _, v := range outAdj[outIdx[u]:outIdx[u+1]] {
			if pv := partOf[v]; pv != pu {
				weight[pu][pv]++
				weight[pv][pu]++
			}
		}
	}
	start := int(partOf[startVertex(g)])
	chain := make([]int, 0, k)
	placed := make([]bool, k)
	toPlaced := make([]int64, k) // connection of each partition to the placed set
	add := func(i int) {
		placed[i] = true
		chain = append(chain, i)
		for j := 0; j < k; j++ {
			toPlaced[j] += weight[i][j]
		}
	}
	add(start)
	for len(chain) < k {
		tail := chain[len(chain)-1]
		best := -1
		for j := 0; j < k; j++ {
			if placed[j] {
				continue
			}
			if best < 0 {
				best = j
				continue
			}
			switch {
			case weight[tail][j] != weight[tail][best]:
				if weight[tail][j] > weight[tail][best] {
					best = j
				}
			case toPlaced[j] != toPlaced[best]:
				if toPlaced[j] > toPlaced[best] {
					best = j
				}
			}
		}
		add(best)
	}
	return chain
}
