package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

// TestOrderOptimizedMatchesReference is the tentpole's safety net: the
// optimized greedy (dense-index unit heap, batched per-placement
// deltas, devirtualized loop) must return a permutation identical to
// the seed per-bump implementation — not merely one of equal score —
// across random graphs, the full window sweep, the hub ablation, and
// both queue engines. Any tie-break drift in the batched relocation
// order shows up here as a hard mismatch.
func TestOrderOptimizedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	graphs := []*graph.Graph{
		gen.Web(400, gen.DefaultWeb, 7),
		gen.BarabasiAlbert(300, 5, 11),
		gen.SBM(350, 5, 8, 2, 3),
	}
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(120)
		graphs = append(graphs, randGraph(rng, n, rng.Intn(6*n)))
	}
	for gi, g := range graphs {
		for _, w := range []int{1, 2, 5, 8, 16} {
			for _, hub := range []int{0, 4} {
				for _, lazy := range []bool{false, true} {
					opt := Options{Window: w, HubThreshold: hub, UseLazyHeap: lazy}
					name := fmt.Sprintf("g%d/w=%d/hub=%d/lazy=%v", gi, w, hub, lazy)
					want := orderReference(g, opt)
					got := OrderWith(g, opt)
					if len(got) != len(want) {
						t.Fatalf("%s: length %d vs reference %d", name, len(got), len(want))
					}
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("%s: permutation diverges from reference at vertex %d: %d vs %d",
								name, v, got[v], want[v])
						}
					}
				}
			}
		}
	}
}

// The batched loop reports its work through the context stats carrier;
// the generic per-bump loop of the reference performs one queue op per
// bump, so the batched op count must be no larger (and for any window
// above 1, strictly smaller on a non-trivial graph).
func TestOrderStatsCarrier(t *testing.T) {
	g := gen.Web(800, gen.DefaultWeb, 5)
	var st OrderStats
	ctx := WithOrderStats(context.Background(), &st)
	if _, err := OrderWithCtx(ctx, g, Options{}); err != nil {
		t.Fatal(err)
	}
	if st.Placements() != int64(g.NumNodes()) {
		t.Errorf("placements = %d, want %d", st.Placements(), g.NumNodes())
	}
	ops := st.HeapOps()
	if ops <= int64(g.NumNodes()) {
		t.Errorf("heap ops = %d, implausibly low for %d vertices", ops, g.NumNodes())
	}

	// The lazy path runs the per-bump generic loop: same placements,
	// at least as many queue ops as the batched unit-heap loop.
	var lazySt OrderStats
	if _, err := OrderWithCtx(WithOrderStats(context.Background(), &lazySt), g,
		Options{UseLazyHeap: true}); err != nil {
		t.Fatal(err)
	}
	if lazySt.Placements() != int64(g.NumNodes()) {
		t.Errorf("lazy placements = %d, want %d", lazySt.Placements(), g.NumNodes())
	}
	if lazySt.HeapOps() < ops {
		t.Errorf("per-bump ops %d < batched ops %d; batching should not add ops",
			lazySt.HeapOps(), ops)
	}

	// Without a carrier the context lookup is a no-op.
	if _, err := OrderWithCtx(context.Background(), g, Options{}); err != nil {
		t.Fatal(err)
	}

	// The parallel variant shares one carrier across its partitions.
	// Every vertex is placed at least once; ghost hubs in the extended
	// partition subgraphs account for the surplus.
	var parSt OrderStats
	if _, err := OrderParallelCtx(WithOrderStats(context.Background(), &parSt), g,
		Options{}, 4); err != nil {
		t.Fatal(err)
	}
	if parSt.Placements() < int64(g.NumNodes()) {
		t.Errorf("parallel placements = %d, want >= %d", parSt.Placements(), g.NumNodes())
	}
}
