package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/order"
)

func TestQuickParallelValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		g := randGraph(rng, n, rng.Intn(4*n))
		for _, p := range []int{0, 1, 2, 4, n + 3} {
			perm := OrderParallel(g, Options{}, p)
			if len(perm) != n || perm.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelEmpty(t *testing.T) {
	g := randGraph(rand.New(rand.NewSource(1)), 1, 0)
	if p := OrderParallel(g, Options{}, 4); len(p) != 1 {
		t.Errorf("singleton graph: %v", p)
	}
}

func TestParallelDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(600, 4, 3)
	a := OrderParallel(g, Options{}, 4)
	b := OrderParallel(g, Options{}, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel ordering not deterministic")
		}
	}
}

// The partition-parallel approximation retains most of the objective:
// within a factor of the sequential exact greedy, and far above
// random.
func TestParallelQuality(t *testing.T) {
	g := gen.Web(4000, gen.DefaultWeb, 6)
	w := DefaultWindow
	exact := WindowScore(g, Order(g), w)
	rnd := WindowScore(g, order.Random(g.NumNodes(), 1), w)
	// Quality degrades gracefully with partition count: boundary pairs
	// (especially hub-sibling relations spanning chunks) are
	// forfeited, and chunks shrink as parallelism grows.
	for _, tc := range []struct {
		par      int
		fraction float64
	}{{2, 0.55}, {4, 0.45}, {8, 0.35}} {
		par := WindowScore(g, OrderParallel(g, Options{}, tc.par), w)
		if float64(par) < tc.fraction*float64(exact) {
			t.Errorf("parallelism %d: F=%d below %.0f%% of exact %d",
				tc.par, par, 100*tc.fraction, exact)
		}
		if par <= rnd*2 {
			t.Errorf("parallelism %d: F=%d not well above random %d", tc.par, par, rnd)
		}
	}
}

// Every vertex of every chunk stays inside its chunk's position range
// — partitions must not interleave.
func TestParallelChunksContiguous(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 9)
	const par = 5
	perm := OrderParallel(g, Options{}, par)
	seq := perm.Sequence()
	chunk := (len(seq) + par - 1) / par
	// Recompute the pre-pass partition and check membership per range.
	pre := order.ChDFS(g).Sequence()
	for c := 0; c*chunk < len(seq); c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(seq) {
			hi = len(seq)
		}
		want := map[uint32]bool{}
		for _, v := range pre[lo:hi] {
			want[v] = true
		}
		for _, v := range seq[lo:hi] {
			if !want[v] {
				t.Fatalf("chunk %d contains foreign vertex %d", c, v)
			}
		}
	}
}
