package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/order"
)

func TestQuickParallelValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		g := randGraph(rng, n, rng.Intn(4*n))
		for _, p := range []int{0, 1, 2, 4, n + 3} {
			perm := OrderParallel(g, Options{}, p)
			if len(perm) != n || perm.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelEmpty(t *testing.T) {
	g := randGraph(rand.New(rand.NewSource(1)), 1, 0)
	if p := OrderParallel(g, Options{}, 4); len(p) != 1 {
		t.Errorf("singleton graph: %v", p)
	}
}

func TestParallelDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(600, 4, 3)
	a := OrderParallel(g, Options{}, 4)
	b := OrderParallel(g, Options{}, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel ordering not deterministic")
		}
	}
}

// The partition-parallel approximation retains most of the objective:
// within a factor of the sequential exact greedy, and far above
// random.
func TestParallelQuality(t *testing.T) {
	g := gen.Web(4000, gen.DefaultWeb, 6)
	w := DefaultWindow
	exact := WindowScore(g, Order(g), w)
	rnd := WindowScore(g, order.Random(g.NumNodes(), 1), w)
	// Quality degrades gracefully with partition count: boundary pairs
	// are forfeited and chunks shrink as parallelism grows, but the
	// guide partitioner plus ghost hubs keep sibling relations scoring
	// (measured: 0.98/0.96/0.92 of exact on this graph).
	for _, tc := range []struct {
		par      int
		fraction float64
	}{{2, 0.90}, {4, 0.85}, {8, 0.80}} {
		par := WindowScore(g, OrderParallel(g, Options{}, tc.par), w)
		if float64(par) < tc.fraction*float64(exact) {
			t.Errorf("parallelism %d: F=%d below %.0f%% of exact %d",
				tc.par, par, 100*tc.fraction, exact)
		}
		if par <= rnd*2 {
			t.Errorf("parallelism %d: F=%d not well above random %d", tc.par, par, rnd)
		}
	}
}

// Every partition occupies one contiguous block of the final position
// space — partitions are stitched whole, never interleaved.
func TestParallelPartitionsContiguous(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 9)
	const par = 5
	perm := OrderParallel(g, Options{}, par)
	seq := perm.Sequence()
	// Recompute the default (guide) partition and check that the
	// stitched sequence is a concatenation of the partitions, each
	// block holding exactly one partition's members.
	parts := order.ChunkPartition(order.BOBA(g).Sequence(), par)
	memberOf := make([]int, g.NumNodes())
	for i, members := range parts {
		for _, v := range members {
			memberOf[v] = i
		}
	}
	pos := 0
	seen := make([]bool, len(parts))
	for pos < len(seq) {
		p := memberOf[seq[pos]]
		if seen[p] {
			t.Fatalf("partition %d appears in two separate blocks (position %d)", p, pos)
		}
		seen[p] = true
		for i := 0; i < len(parts[p]); i++ {
			if got := memberOf[seq[pos]]; got != p {
				t.Fatalf("position %d holds vertex of partition %d inside partition %d's block",
					pos, got, p)
			}
			pos++
		}
	}
}
