package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnitHeapInitialOrder(t *testing.T) {
	h := NewUnitHeap(4)
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	for want := 0; want < 4; want++ {
		item, key, ok := h.ExtractMax()
		if !ok || item != want || key != 0 {
			t.Fatalf("ExtractMax = (%d, %d, %v), want (%d, 0, true)", item, key, ok, want)
		}
	}
	if _, _, ok := h.ExtractMax(); ok {
		t.Fatal("ExtractMax on empty heap returned ok")
	}
}

func TestUnitHeapIncPromotes(t *testing.T) {
	h := NewUnitHeap(3)
	h.Inc(2)
	item, key, ok := h.ExtractMax()
	if !ok || item != 2 || key != 1 {
		t.Fatalf("ExtractMax = (%d, %d, %v), want (2, 1, true)", item, key, ok)
	}
}

func TestUnitHeapIncDecRoundTrip(t *testing.T) {
	h := NewUnitHeap(3)
	h.Inc(1)
	h.Inc(1)
	h.Dec(1)
	if got := h.Key(1); got != 1 {
		t.Fatalf("Key(1) = %d, want 1", got)
	}
	item, _, _ := h.ExtractMax()
	if item != 1 {
		t.Fatalf("max = %d, want 1", item)
	}
}

func TestUnitHeapDelete(t *testing.T) {
	h := NewUnitHeap(3)
	h.Inc(0)
	h.Delete(0)
	if h.Contains(0) {
		t.Fatal("deleted item still contained")
	}
	item, _, _ := h.ExtractMax()
	if item == 0 {
		t.Fatal("extracted a deleted item")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
}

func TestUnitHeapPanicsOnAbsent(t *testing.T) {
	h := NewUnitHeap(2)
	h.Delete(0)
	for name, f := range map[string]func(){
		"Inc":    func() { h.Inc(0) },
		"Dec":    func() { h.Dec(0) },
		"Delete": func() { h.Delete(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on absent item did not panic", name)
				}
			}()
			f()
		}()
	}
}

// queueImpl lets the same randomized test drive both queue
// implementations.
type queueImpl struct {
	name string
	make func(n int) maxQueue
}

var queueImpls = []queueImpl{
	{"unit", func(n int) maxQueue { return NewUnitHeap(n) }},
	{"lazy", func(n int) maxQueue { return newLazyHeap(n) }},
}

// Random operation sequences against a reference map: every extraction
// must return a maximum-key item, keys must track exactly, sizes must
// match.
func TestQuickQueueAgainstReference(t *testing.T) {
	for _, impl := range queueImpls {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(100)
				q := impl.make(n)
				ref := make(map[int]int32)
				for i := 0; i < n; i++ {
					ref[i] = 0
				}
				for op := 0; op < 600; op++ {
					item := rng.Intn(n)
					switch rng.Intn(5) {
					case 0, 1:
						if _, ok := ref[item]; ok {
							q.Inc(item)
							ref[item]++
						}
					case 2:
						// Only decrement above zero, as Gorder does.
						if k, ok := ref[item]; ok && k > 0 {
							q.Dec(item)
							ref[item]--
						}
					case 3:
						if len(ref) == 0 {
							continue
						}
						it, key, ok := q.ExtractMax()
						if !ok {
							return false
						}
						want, present := ref[it]
						if !present || want != key {
							return false
						}
						for _, k := range ref {
							if k > key {
								return false
							}
						}
						delete(ref, it)
					case 4:
						if _, ok := ref[item]; ok && rng.Intn(4) == 0 {
							q.Delete(item)
							delete(ref, item)
						}
					}
					if q.Len() != len(ref) {
						return false
					}
					for it, k := range ref {
						if !q.Contains(it) || q.Key(it) != k {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Draining a queue after random updates yields non-increasing keys.
func TestQuickQueueDrainMonotone(t *testing.T) {
	for _, impl := range queueImpls {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(80)
				q := impl.make(n)
				for op := 0; op < 300; op++ {
					item := rng.Intn(n)
					if rng.Intn(3) == 0 && q.Key(item) > 0 && q.Contains(item) {
						q.Dec(item)
					} else if q.Contains(item) {
						q.Inc(item)
					}
				}
				prev := int32(1 << 30)
				for q.Len() > 0 {
					_, key, ok := q.ExtractMax()
					if !ok || key > prev {
						return false
					}
					prev = key
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}
