package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

func randGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n))}
	}
	return graph.FromEdgesDedup(n, edges)
}

func TestOrderEmptyAndTiny(t *testing.T) {
	if p := Order(graph.FromEdges(0, nil)); len(p) != 0 {
		t.Errorf("empty graph: perm = %v", p)
	}
	p := Order(graph.FromEdges(1, nil))
	if len(p) != 1 || p[0] != 0 {
		t.Errorf("single vertex: perm = %v", p)
	}
	p = Order(graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}}))
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestOrderStartsAtMaxInDegree(t *testing.T) {
	// Vertex 2 has in-degree 3.
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 2}, {From: 1, To: 2}, {From: 3, To: 2}, {From: 0, To: 1},
	})
	p := Order(g)
	if p[2] != 0 {
		t.Errorf("start vertex position = %d, want 0", p[2])
	}
}

// Every ordering Gorder produces must be a valid permutation, under
// any option combination.
func TestQuickOrderValid(t *testing.T) {
	opts := []Options{
		{},
		{Window: 1},
		{Window: 8},
		{HubThreshold: 3},
		{UseLazyHeap: true},
		{Window: 3, HubThreshold: 2, UseLazyHeap: true},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randGraph(rng, n, rng.Intn(4*n))
		for _, o := range opts {
			p := OrderWith(g, o)
			if len(p) != n || p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// greedyOptimal replays the produced sequence and verifies that every
// placed vertex had the maximum score to the window at its placement —
// the defining property of the greedy algorithm, independent of
// tie-breaking and of the queue implementation.
func greedyOptimal(t *testing.T, g *graph.Graph, p order.Permutation, w int) {
	t.Helper()
	n := g.NumNodes()
	seq := p.Sequence()
	placed := make([]bool, n)
	placed[seq[0]] = true
	for i := 1; i < n; i++ {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		window := seq[lo:i]
		scoreOf := func(u graph.NodeID) int64 {
			var s int64
			for _, x := range window {
				s += order.PairScore(g, u, x)
			}
			return s
		}
		chosen := scoreOf(seq[i])
		for u := 0; u < n; u++ {
			if !placed[u] {
				if s := scoreOf(graph.NodeID(u)); s > chosen {
					t.Fatalf("step %d: placed %v with score %d but %d scores %d",
						i, seq[i], chosen, u, s)
				}
			}
		}
		placed[seq[i]] = true
	}
}

func TestOrderGreedyOptimalUnitHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		g := randGraph(rng, n, 2*n+rng.Intn(3*n))
		for _, w := range []int{1, 3, 5} {
			greedyOptimal(t, g, OrderWith(g, Options{Window: w}), w)
		}
	}
}

func TestOrderGreedyOptimalLazyHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		g := randGraph(rng, n, 2*n+rng.Intn(3*n))
		greedyOptimal(t, g, OrderWith(g, Options{Window: 4, UseLazyHeap: true}), 4)
	}
}

// Gorder must beat a random ordering on the objective it optimises.
func TestOrderBeatsRandomOnScore(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 7)
	w := DefaultWindow
	gord := WindowScore(g, Order(g), w)
	rnd := WindowScore(g, order.Random(g.NumNodes(), 3), w)
	orig := WindowScore(g, order.Identity(g.NumNodes()), w)
	if gord <= rnd {
		t.Errorf("Gorder score %d not above random %d", gord, rnd)
	}
	if gord <= orig {
		t.Errorf("Gorder score %d not above original %d", gord, orig)
	}
}

// The hub-skip optimisation must stay close to the exact objective.
func TestHubThresholdNearExact(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 9)
	w := DefaultWindow
	exact := WindowScore(g, OrderWith(g, Options{Window: w}), w)
	approx := WindowScore(g, OrderWith(g, Options{Window: w, HubThreshold: 32}), w)
	if float64(approx) < 0.8*float64(exact) {
		t.Errorf("hub-skip score %d below 80%% of exact %d", approx, exact)
	}
}

// Larger windows never see the algorithm crash and produce sane
// scores; the score evaluated at the algorithm's own window should
// broadly improve with w on a structured graph.
func TestWindowSweepSane(t *testing.T) {
	g := gen.Web(300, gen.DefaultWeb, 11)
	var prev int64 = -1
	for _, w := range []int{1, 2, 4, 8} {
		p := OrderWith(g, Options{Window: w})
		if err := p.Validate(); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		s := WindowScore(g, p, 8) // fixed evaluation window
		if s < prev/2 {
			t.Errorf("w=%d: score %d collapsed from %d", w, s, prev)
		}
		prev = s
	}
}

func TestWindowScoreDefaultsWindow(t *testing.T) {
	g := gen.Ring(10)
	p := order.Identity(10)
	if WindowScore(g, p, 0) != WindowScore(g, p, DefaultWindow) {
		t.Error("WindowScore(w=0) does not default")
	}
}

func TestMultilevelOrderValidAndUseful(t *testing.T) {
	g := gen.SBM(3000, 30, 10, 1, 8)
	p := MultilevelOrder(g, Options{}, 256)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := DefaultWindow
	if f, r := WindowScore(g, p, w), WindowScore(g, order.Random(g.NumNodes(), 1), w); f <= 3*r {
		t.Errorf("multilevel Gorder F=%d not well above random %d", f, r)
	}
}
