package core

import (
	"math/rand"
	"testing"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// instrumentedOrder re-implements the greedy loop around a UnitHeap
// but checks, at every step, that EVERY candidate's key equals the
// ground-truth windowed score computed from scratch with
// order.PairScore. This validates the incremental ±1 bookkeeping
// itself, not just the extraction order.
func instrumentedOrder(t *testing.T, g *graph.Graph, w int) {
	t.Helper()
	n := g.NumNodes()
	if n == 0 {
		return
	}
	q := NewUnitHeap(n)
	seq := make([]graph.NodeID, 0, n)
	start := graph.NodeID(0)
	for v := 1; v < n; v++ {
		if g.InDegree(graph.NodeID(v)) > g.InDegree(start) {
			start = graph.NodeID(v)
		}
	}
	q.Delete(int(start))
	seq = append(seq, start)
	apply := func(v graph.NodeID, delta int) {
		bump := func(u graph.NodeID) {
			if q.Contains(int(u)) {
				if delta > 0 {
					q.Inc(int(u))
				} else {
					q.Dec(int(u))
				}
			}
		}
		for _, u := range g.OutNeighbors(v) {
			bump(u)
		}
		for _, x := range g.InNeighbors(v) {
			bump(x)
			for _, u := range g.OutNeighbors(x) {
				if u != v {
					bump(u)
				}
			}
		}
	}
	for i := 1; i < n; i++ {
		apply(seq[i-1], +1)
		if i-1 >= w {
			apply(seq[i-1-w], -1)
		}
		// Ground truth: every live candidate's key must equal its
		// summed pair score against the current window.
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		window := seq[lo:i]
		for u := 0; u < n; u++ {
			if !q.Contains(u) {
				continue
			}
			var want int64
			for _, x := range window {
				want += order.PairScore(g, graph.NodeID(u), x)
			}
			if got := int64(q.Key(u)); got != want {
				t.Fatalf("step %d: key(%d) = %d, ground truth %d", i, u, got, want)
			}
		}
		v, _, ok := q.ExtractMax()
		if !ok {
			t.Fatal("queue exhausted early")
		}
		seq = append(seq, graph.NodeID(v))
	}
}

func TestIncrementalScoreBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(30)
		m := rng.Intn(4 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n))}
		}
		g := graph.FromEdgesDedup(n, edges)
		for _, w := range []int{1, 2, 5} {
			instrumentedOrder(t, g, w)
		}
	}
}

// The two queue engines must agree on the achieved objective to
// within tie-breaking noise: both are exact greedy, so each step's
// chosen key matches; over the whole run F can differ only through
// tie choices, whose cascades cost a few percent on small random
// graphs. We assert both land within 15%.
func TestQueueEnginesAgreeOnObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(100)
		edges := make([]graph.Edge, 4*n)
		for i := range edges {
			edges[i] = graph.Edge{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n))}
		}
		g := graph.FromEdgesDedup(n, edges)
		w := 4
		fUnit := WindowScore(g, OrderWith(g, Options{Window: w}), w)
		fLazy := WindowScore(g, OrderWith(g, Options{Window: w, UseLazyHeap: true}), w)
		lo, hi := fUnit, fLazy
		if lo > hi {
			lo, hi = hi, lo
		}
		if float64(lo) < 0.85*float64(hi) {
			t.Errorf("engines diverge: unit F=%d lazy F=%d", fUnit, fLazy)
		}
	}
}
