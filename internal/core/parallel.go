package core

import (
	"context"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// OrderParallel is the historical entry point for multi-core Gorder,
// folded into the partitioned path (see partitioned.go and
// OrderPartitionedCtx, which is what the registry's
// "gorder-partitioned" method runs). parallelism maps onto both the
// partition count and the worker bound, preserving this function's
// original contract: parallelism p cuts the graph into p partitions
// and orders them on up to p goroutines.
//
// Three things changed with the fold, all improvements over the old
// DFS-chunk implementation this file used to hold:
//
//   - partitions come from the guide partitioner (chunks of the BOBA
//     first-appearance sequence, which keep hub-sibling groups
//     together, rather than DFS chains),
//   - each partition is ordered on its ghost-extended subgraph, so
//     sibling relations through out-of-partition hubs still score, and
//   - partition orders are stitched by inter-partition edge weight
//     instead of being concatenated in discovery order, so
//     cross-partition edges tend to land between adjacent blocks.
//
// parallelism <= 0 selects GOMAXPROCS workers over the fixed
// DefaultPartitions grid — the permutation no longer depends on the
// machine's core count, at any parallelism value.
func OrderParallel(g *graph.Graph, opt Options, parallelism int) order.Permutation {
	p, _ := OrderParallelCtx(context.Background(), g, opt, parallelism)
	return p
}

// OrderParallelCtx is OrderParallel with cooperative cancellation:
// the partitioner and each partition's greedy run check ctx, and the
// first cancellation aborts the whole computation with ctx.Err().
func OrderParallelCtx(ctx context.Context, g *graph.Graph, opt Options, parallelism int) (order.Permutation, error) {
	return OrderPartitionedCtx(ctx, g, opt, PartitionedOptions{
		Workers:    parallelism,
		Partitions: parallelism,
	})
}
