package core

import (
	"context"
	"runtime"
	"sync"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// OrderParallel computes a partition-parallel approximation of Gorder
// — the parallel variant the papers' discussion asks for, trading a
// little ordering quality for multi-core ordering time on graphs
// where the sequential greedy is the bottleneck (Table 2).
//
// The graph is first cut into `parallelism` contiguous chunks of a
// depth-first vertex sequence (so chunks already group related
// vertices), then the exact greedy runs independently on each chunk's
// induced subgraph, and the chunk orders are concatenated. Score
// pairs crossing chunk boundaries are forfeited; with chunks much
// larger than the window the loss is a small fraction of F (see
// TestParallelQuality and BenchmarkParallelGorder).
//
// parallelism <= 0 selects GOMAXPROCS. parallelism == 1 degenerates
// to running the exact greedy on a single DFS-localised chunk, which
// equals OrderWith up to tie-breaking.
func OrderParallel(g *graph.Graph, opt Options, parallelism int) order.Permutation {
	p, _ := OrderParallelCtx(context.Background(), g, opt, parallelism)
	return p
}

// OrderParallelCtx is OrderParallel with cooperative cancellation: each
// chunk's greedy run checks ctx, and the first cancellation aborts the
// whole computation with ctx.Err().
func OrderParallelCtx(ctx context.Context, g *graph.Graph, opt Options, parallelism int) (order.Permutation, error) {
	n := g.NumNodes()
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return order.Permutation{}, ctx.Err()
	}
	if parallelism > n {
		parallelism = n
	}
	// Localising pre-pass: a DFS sequence groups connected vertices,
	// so contiguous chunks of it make meaningful partitions.
	seq := order.ChDFS(g).Sequence()
	chunkSize := (n + parallelism - 1) / parallelism

	type chunkResult struct {
		start   int // position offset in the final sequence
		ordered []graph.NodeID
	}
	results := make([]chunkResult, 0, parallelism)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunkSize {
		end := start + chunkSize
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start int, members []graph.NodeID) {
			defer wg.Done()
			sub, toGlobal := g.InducedSubgraph(members)
			perm, err := OrderWithCtx(ctx, sub, opt)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			local := perm.Sequence()
			ordered := make([]graph.NodeID, len(local))
			for i, lv := range local {
				ordered[i] = toGlobal[lv]
			}
			mu.Lock()
			results = append(results, chunkResult{start, ordered})
			mu.Unlock()
		}(start, seq[start:end])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	final := make([]graph.NodeID, n)
	for _, res := range results {
		copy(final[res.start:], res.ordered)
	}
	return order.FromSequence(final), nil
}
