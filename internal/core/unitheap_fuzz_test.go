package core

import (
	"testing"
)

// FuzzUnitHeapVsLazy drives the unit heap and the lazy binary heap
// through the same operation sequence decoded from the fuzz input,
// cross-checking them against each other and a plain map oracle.
// Tie-breaking on extraction legitimately differs between the two
// engines, so on an extract op both heaps pop independently, each
// result is validated against the oracle (correct key, maximal), and
// then the union of the popped items is removed from heaps and oracle
// alike to keep the three membership sets identical.
func FuzzUnitHeapVsLazy(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0xC1, 0x02, 0x55})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0x80, 0x80, 0x80})
	f.Add([]byte{0xC0, 0xC1, 0xC2, 0xC3, 0x01, 0x01, 0x41, 0x81})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 16
		unit := NewUnitHeap(n)
		lazy := newLazyHeap(n)
		ref := make(map[int]int32, n)
		for i := 0; i < n; i++ {
			ref[i] = 0
		}
		check := func(item int, key int32, ok bool, name string) int {
			if !ok {
				if len(ref) != 0 {
					t.Fatalf("%s: ExtractMax empty with %d items live", name, len(ref))
				}
				return -1
			}
			want, present := ref[item]
			if !present {
				t.Fatalf("%s: extracted dead item %d", name, item)
			}
			if want != key {
				t.Fatalf("%s: extracted key %d, oracle has %d", name, key, want)
			}
			for _, k := range ref {
				if k > key {
					t.Fatalf("%s: extracted key %d but %d is live", name, key, k)
				}
			}
			return item
		}
		for _, b := range data {
			item := int(b) % n
			_, live := ref[item]
			switch b >> 6 {
			case 0: // Inc
				if live {
					unit.Inc(item)
					lazy.Inc(item)
					ref[item]++
				}
			case 1: // Dec, only above zero as the greedy guarantees
				if live && ref[item] > 0 {
					unit.Dec(item)
					lazy.Dec(item)
					ref[item]--
				}
			case 2: // batched Add, clamped to keep the key non-negative
				if live {
					delta := int32(b>>3&7) - 3
					if ref[item]+delta < 0 {
						delta = -ref[item]
					}
					unit.Add(item, delta)
					lazy.Add(item, delta)
					ref[item] += delta
				}
			case 3: // ExtractMax on both, then reconcile membership
				ui, uk, uok := unit.ExtractMax()
				li, lk, lok := lazy.ExtractMax()
				if uok != lok {
					t.Fatalf("extract disagreement: unit ok=%v lazy ok=%v", uok, lok)
				}
				u := check(ui, uk, uok, "unit")
				l := check(li, lk, lok, "lazy")
				if u >= 0 {
					delete(ref, u)
					if l != u && lazy.Contains(u) {
						lazy.Delete(u)
					}
				}
				if l >= 0 && l != u {
					delete(ref, l)
					if unit.Contains(l) {
						unit.Delete(l)
					}
				}
			}
			if unit.Len() != len(ref) || lazy.Len() != len(ref) {
				t.Fatalf("size drift: unit=%d lazy=%d oracle=%d", unit.Len(), lazy.Len(), len(ref))
			}
			for it, k := range ref {
				if !unit.Contains(it) || unit.Key(it) != k {
					t.Fatalf("unit: item %d key %d, oracle %d", it, unit.Key(it), k)
				}
				if !lazy.Contains(it) || lazy.Key(it) != k {
					t.Fatalf("lazy: item %d key %d, oracle %d", it, lazy.Key(it), k)
				}
			}
		}
	})
}
