// Package core implements the paper's primary contribution: the Gorder
// vertex ordering. The greedy algorithm (GO in the paper) repeatedly
// places the vertex with the highest locality score S to the last w
// placed vertices. Its priority queue is the paper's unit heap — a
// doubly linked list of vertices sorted by key, with per-key-class
// head/tail pointers, so that the only operations the algorithm needs
// (increment a key by one, decrement by one, extract the maximum) all
// run in O(1).
package core

import "fmt"

// UnitHeap is the paper's O(1) priority queue over items 0..n-1 with
// integer keys. Items start with key 0. Keys change only in ±1 steps,
// which is exactly what the windowed score maintenance produces.
type UnitHeap struct {
	key      []int32
	prev     []int32 // doubly linked list over 0..n-1 plus two sentinels
	next     []int32
	headerOf map[int32]int32 // first item of each key class (closest to max)
	tailOf   map[int32]int32 // last item of each key class
	inHeap   []bool
	size     int
	sentHead int32
	sentTail int32
}

// NewUnitHeap returns a heap containing items 0..n-1, all with key 0,
// ordered by item number (smaller items extract first among ties).
func NewUnitHeap(n int) *UnitHeap {
	h := &UnitHeap{
		key:      make([]int32, n),
		prev:     make([]int32, n+2),
		next:     make([]int32, n+2),
		headerOf: make(map[int32]int32),
		tailOf:   make(map[int32]int32),
		inHeap:   make([]bool, n),
		size:     n,
		sentHead: int32(n),
		sentTail: int32(n + 1),
	}
	last := h.sentHead
	for i := 0; i < n; i++ {
		h.next[last] = int32(i)
		h.prev[i] = last
		h.inHeap[i] = true
		last = int32(i)
	}
	h.next[last] = h.sentTail
	h.prev[h.sentTail] = last
	if n > 0 {
		h.headerOf[0] = 0
		h.tailOf[0] = int32(n - 1)
	}
	return h
}

// Len returns the number of items still in the heap.
func (h *UnitHeap) Len() int { return h.size }

// Contains reports whether item is still in the heap.
func (h *UnitHeap) Contains(item int) bool { return h.inHeap[item] }

// Key returns item's current key. Valid only while the item is in the
// heap.
func (h *UnitHeap) Key(item int) int32 { return h.key[item] }

func (h *UnitHeap) unlink(e int32) {
	p, nx := h.prev[e], h.next[e]
	h.next[p] = nx
	h.prev[nx] = p
}

func (h *UnitHeap) insertBefore(e, f int32) {
	p := h.prev[f]
	h.next[p] = e
	h.prev[e] = p
	h.next[e] = f
	h.prev[f] = e
}

func (h *UnitHeap) insertAfter(e, l int32) {
	nx := h.next[l]
	h.next[l] = e
	h.prev[e] = l
	h.next[e] = nx
	h.prev[nx] = e
}

// detachFromClass fixes the class head/tail pointers before e leaves
// its current key class.
func (h *UnitHeap) detachFromClass(e int32) {
	k := h.key[e]
	hd, tl := h.headerOf[k], h.tailOf[k]
	switch {
	case hd == e && tl == e:
		delete(h.headerOf, k)
		delete(h.tailOf, k)
	case hd == e:
		h.headerOf[k] = h.next[e]
	case tl == e:
		h.tailOf[k] = h.prev[e]
	}
}

// Inc increases item's key by one in O(1): the item moves to the
// boundary between its old class and the class above.
func (h *UnitHeap) Inc(item int) {
	e := int32(item)
	if !h.inHeap[item] {
		panic(fmt.Sprintf("core: Inc of item %d not in heap", item))
	}
	k := h.key[e]
	f := h.headerOf[k] // class is non-empty: e belongs to it
	h.detachFromClass(e)
	if f != e {
		h.unlink(e)
		h.insertBefore(e, f)
	}
	h.key[e] = k + 1
	if _, ok := h.headerOf[k+1]; !ok {
		h.headerOf[k+1] = e
	}
	h.tailOf[k+1] = e
}

// Dec decreases item's key by one in O(1), symmetric to Inc.
func (h *UnitHeap) Dec(item int) {
	e := int32(item)
	if !h.inHeap[item] {
		panic(fmt.Sprintf("core: Dec of item %d not in heap", item))
	}
	k := h.key[e]
	l := h.tailOf[k]
	h.detachFromClass(e)
	if l != e {
		h.unlink(e)
		h.insertAfter(e, l)
	}
	h.key[e] = k - 1
	if _, ok := h.tailOf[k-1]; !ok {
		h.tailOf[k-1] = e
	}
	h.headerOf[k-1] = e
}

// ExtractMax removes and returns an item with the maximum key, or
// ok=false if the heap is empty. Among equal keys the item that has
// been at the front longest is taken, which makes extraction
// deterministic.
func (h *UnitHeap) ExtractMax() (item int, key int32, ok bool) {
	e := h.next[h.sentHead]
	if e == h.sentTail {
		return 0, 0, false
	}
	h.detachFromClass(e)
	h.unlink(e)
	h.inHeap[e] = false
	h.size--
	return int(e), h.key[e], true
}

// Delete removes an arbitrary item from the heap (used to seed the
// ordering with a chosen start vertex).
func (h *UnitHeap) Delete(item int) {
	e := int32(item)
	if !h.inHeap[item] {
		panic(fmt.Sprintf("core: Delete of item %d not in heap", item))
	}
	h.detachFromClass(e)
	h.unlink(e)
	h.inHeap[item] = false
	h.size--
}
