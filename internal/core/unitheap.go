// Package core implements the paper's primary contribution: the Gorder
// vertex ordering. The greedy algorithm (GO in the paper) repeatedly
// places the vertex with the highest locality score S to the last w
// placed vertices. Its priority queue is the paper's unit heap — a
// doubly linked list of vertices sorted by key, with per-key-class
// head/tail pointers, so that the only operations the algorithm needs
// (increment a key by one, decrement by one, extract the maximum) all
// run in O(1).
package core

import "fmt"

// noItem marks an empty key class in the dense head/tail indices.
// Item indices are >= 0 and the two list sentinels are n and n+1, so
// -1 is free.
const noItem = int32(-1)

// UnitHeap is the paper's O(1) priority queue over items 0..n-1 with
// integer keys. Items start with key 0 and keys never go negative —
// exactly the windowed-score maintenance regime, where a key is a sum
// of still-active +1 contributions. Keys are therefore a dense bounded
// range, and the per-key-class head/tail indices are plain slices
// indexed by key (grown on demand), not maps: every heap operation is
// a handful of array reads with no hashing.
type UnitHeap struct {
	key    []int32
	prev   []int32 // doubly linked list over 0..n-1 plus two sentinels
	next   []int32
	head   []int32 // head[k]: first item of key class k (closest to max), noItem if empty
	tail   []int32 // tail[k]: last item of key class k
	inHeap []bool
	size   int
	// top is an upper bound on the highest non-empty key class; it
	// bounds the empty-class scan in relocate and decays lazily as the
	// top classes drain.
	top      int32
	sentHead int32
	sentTail int32
}

// NewUnitHeap returns a heap containing items 0..n-1, all with key 0,
// ordered by item number (smaller items extract first among ties).
func NewUnitHeap(n int) *UnitHeap {
	h := &UnitHeap{
		key:      make([]int32, n),
		prev:     make([]int32, n+2),
		next:     make([]int32, n+2),
		head:     make([]int32, 1, 64),
		tail:     make([]int32, 1, 64),
		inHeap:   make([]bool, n),
		size:     n,
		sentHead: int32(n),
		sentTail: int32(n + 1),
	}
	last := h.sentHead
	for i := 0; i < n; i++ {
		h.next[last] = int32(i)
		h.prev[i] = last
		h.inHeap[i] = true
		last = int32(i)
	}
	h.next[last] = h.sentTail
	h.prev[h.sentTail] = last
	h.head[0], h.tail[0] = noItem, noItem
	if n > 0 {
		h.head[0], h.tail[0] = 0, int32(n-1)
	}
	return h
}

// Len returns the number of items still in the heap.
func (h *UnitHeap) Len() int { return h.size }

// Contains reports whether item is still in the heap.
func (h *UnitHeap) Contains(item int) bool { return h.inHeap[item] }

// Key returns item's current key. Valid only while the item is in the
// heap.
func (h *UnitHeap) Key(item int) int32 { return h.key[item] }

// growTo extends the dense class indices to cover key k.
func (h *UnitHeap) growTo(k int32) {
	for int(k) >= len(h.head) {
		h.head = append(h.head, noItem)
		h.tail = append(h.tail, noItem)
	}
}

func (h *UnitHeap) unlink(e int32) {
	p, nx := h.prev[e], h.next[e]
	h.next[p] = nx
	h.prev[nx] = p
}

func (h *UnitHeap) insertBefore(e, f int32) {
	p := h.prev[f]
	h.next[p] = e
	h.prev[e] = p
	h.next[e] = f
	h.prev[f] = e
}

func (h *UnitHeap) insertAfter(e, l int32) {
	nx := h.next[l]
	h.next[l] = e
	h.prev[e] = l
	h.next[e] = nx
	h.prev[nx] = e
}

// detachFromClass fixes the class head/tail pointers before e leaves
// its current key class.
func (h *UnitHeap) detachFromClass(e int32) {
	k := h.key[e]
	hd, tl := h.head[k], h.tail[k]
	switch {
	case hd == e && tl == e:
		h.head[k], h.tail[k] = noItem, noItem
	case hd == e:
		h.head[k] = h.next[e]
	case tl == e:
		h.tail[k] = h.prev[e]
	}
}

// decayTop lowers the top-class bound past drained classes.
func (h *UnitHeap) decayTop() {
	for h.top > 0 && h.head[h.top] == noItem {
		h.top--
	}
}

// Inc increases item's key by one in O(1): the item moves to the
// boundary between its old class and the class above, becoming the
// tail of the class above.
func (h *UnitHeap) Inc(item int) {
	e := int32(item)
	if !h.inHeap[item] {
		panic(fmt.Sprintf("core: Inc of item %d not in heap", item))
	}
	k := h.key[e]
	h.growTo(k + 1)
	f := h.head[k] // class is non-empty: e belongs to it
	h.detachFromClass(e)
	if f != e {
		h.unlink(e)
		h.insertBefore(e, f)
	}
	h.key[e] = k + 1
	if h.head[k+1] == noItem {
		h.head[k+1] = e
	}
	h.tail[k+1] = e
	if k+1 > h.top {
		h.top = k + 1
	}
}

// Dec decreases item's key by one in O(1), symmetric to Inc: the item
// becomes the head of the class below. Keys never go negative in the
// windowed-score regime; decrementing a zero key panics.
func (h *UnitHeap) Dec(item int) {
	e := int32(item)
	if !h.inHeap[item] {
		panic(fmt.Sprintf("core: Dec of item %d not in heap", item))
	}
	k := h.key[e]
	if k == 0 {
		panic(fmt.Sprintf("core: Dec of item %d would make its key negative", item))
	}
	l := h.tail[k]
	h.detachFromClass(e)
	if l != e {
		h.unlink(e)
		h.insertAfter(e, l)
	}
	h.key[e] = k - 1
	if h.tail[k-1] == noItem {
		h.tail[k-1] = e
	}
	h.head[k-1] = e
}

// Add moves item's key by delta in one bulk class relocation — the
// batched equivalent of |delta| individual Inc or Dec calls issued
// back to back. A positive delta appends the item to the tail of the
// target class (as a run of Incs would); a negative delta prepends it
// to the head (as a run of Decs would); delta zero is a no-op. The
// target key must not be negative.
func (h *UnitHeap) Add(item int, delta int32) {
	if !h.inHeap[item] {
		panic(fmt.Sprintf("core: Add of item %d not in heap", item))
	}
	if delta == 0 {
		return
	}
	h.relocate(int32(item), delta, delta < 0)
}

// addTail relocates e by delta, appending it to the tail of the target
// class — the batched path's stand-in for a run of Incs (the item's
// last individual bump would have been an Inc).
func (h *UnitHeap) addTail(e, delta int32) { h.relocate(e, delta, false) }

// addFront relocates e by delta, prepending it to the head of the
// target class — the batched path's stand-in for a bump run ending in
// a Dec. delta may be positive, zero, or negative: what matters for
// the within-class position is that the final individual bump would
// have been a Dec, which always prepends.
func (h *UnitHeap) addFront(e, delta int32) { h.relocate(e, delta, true) }

// relocate moves e to key class key[e]+delta in one splice. front
// selects head (Dec-like) vs tail (Inc-like) placement within the
// target class; when the target class is empty both coincide: the slot
// just below the nearest non-empty class above.
func (h *UnitHeap) relocate(e, delta int32, front bool) {
	k := h.key[e]
	nk := k + delta
	if nk < 0 {
		panic(fmt.Sprintf("core: Add of item %d would make its key %d negative", e, nk))
	}
	h.growTo(nk)
	h.detachFromClass(e)
	h.unlink(e)
	h.key[e] = nk
	if front {
		if hd := h.head[nk]; hd != noItem {
			h.insertBefore(e, hd)
			h.head[nk] = e
			return
		}
	} else {
		if tl := h.tail[nk]; tl != noItem {
			h.insertAfter(e, tl)
			h.tail[nk] = e
			return
		}
	}
	// Empty target class: the classes are contiguous runs of the list
	// in descending key order, so the slot is right after the tail of
	// the nearest non-empty class above nk — or the global front when
	// nothing is above.
	j := nk + 1
	for j <= h.top && h.head[j] == noItem {
		j++
	}
	if j <= h.top {
		h.insertAfter(e, h.tail[j])
	} else {
		h.insertAfter(e, h.sentHead)
	}
	h.head[nk], h.tail[nk] = e, e
	if nk > h.top {
		h.top = nk
	}
}

// ExtractMax removes and returns an item with the maximum key, or
// ok=false if the heap is empty. Among equal keys the item that has
// been at the front longest is taken, which makes extraction
// deterministic.
func (h *UnitHeap) ExtractMax() (item int, key int32, ok bool) {
	e := h.next[h.sentHead]
	if e == h.sentTail {
		return 0, 0, false
	}
	h.detachFromClass(e)
	h.unlink(e)
	h.inHeap[e] = false
	h.size--
	h.decayTop()
	return int(e), h.key[e], true
}

// Delete removes an arbitrary item from the heap (used to seed the
// ordering with a chosen start vertex).
func (h *UnitHeap) Delete(item int) {
	e := int32(item)
	if !h.inHeap[item] {
		panic(fmt.Sprintf("core: Delete of item %d not in heap", item))
	}
	h.detachFromClass(e)
	h.unlink(e)
	h.inHeap[item] = false
	h.size--
	h.decayTop()
}
