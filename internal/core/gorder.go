package core

import (
	"context"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// DefaultWindow is the window size w the papers settle on: larger
// windows score slightly better but cost more to compute (the paper's
// Figure 8 / the replication's Figure 4), and the greedy algorithm's
// approximation bound 1/(2w) tightens as w shrinks.
const DefaultWindow = 5

// Options configures the Gorder computation.
type Options struct {
	// Window is the window size w. Zero means DefaultWindow.
	Window int
	// HubThreshold, when positive, skips the sibling-score expansion
	// through in-neighbours whose out-degree exceeds the threshold.
	// This is the paper's practical optimisation for power-law graphs:
	// a hub with out-degree d contributes d sibling updates per window
	// event, and a handful of hubs dominate the runtime while barely
	// changing the ordering. Zero computes exact scores.
	HubThreshold int
	// UseLazyHeap replaces the unit heap with a lazy binary heap; the
	// result is the same ordering (identical keys and tie-breaking is
	// near-identical), but updates cost O(log n). Exposed for the
	// ablation benchmark; this path runs the generic per-bump loop
	// rather than the batched unit-heap specialisation.
	UseLazyHeap bool
}

// maxQueue is the priority-queue contract the generic greedy loop
// needs; both UnitHeap and lazyHeap satisfy it. The production path
// does not dispatch through it: the unit-heap loop is specialised on
// *UnitHeap (batched deltas, no interface calls), and this interface
// survives for the UseLazyHeap ablation and the queue tests.
type maxQueue interface {
	Len() int
	Contains(item int) bool
	Key(item int) int32
	Inc(item int)
	Dec(item int)
	Delete(item int)
	ExtractMax() (item int, key int32, ok bool)
}

// cancelCheckInterval is how many vertex placements the greedy loop
// performs between context-cancellation checks. The interval keeps the
// ctx.Err() cost off the per-insertion hot path while still bounding
// the latency of a cancellation to a few hundred heap operations.
const cancelCheckInterval = 128

// Order computes the Gorder permutation of g with default options.
func Order(g *graph.Graph) order.Permutation {
	return OrderWith(g, Options{})
}

// OrderWith computes the Gorder permutation of g: a relabeling that
// greedily maximises F(pi), the sum of S(u,v) over vertex pairs whose
// new IDs are within the window w of each other, where S counts
// neighbour relations and shared in-neighbours.
func OrderWith(g *graph.Graph, opt Options) order.Permutation {
	p, _ := OrderWithCtx(context.Background(), g, opt)
	return p
}

// OrderWithCtx is OrderWith with cooperative cancellation: the greedy
// loop checks ctx every cancelCheckInterval insertions and returns
// ctx.Err() (with a nil permutation) once the context is done. This is
// what lets a serving layer bound ordering jobs with deadlines instead
// of tying up a worker for the full O(superlinear) run.
func OrderWithCtx(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
	n := g.NumNodes()
	if n == 0 {
		return order.Permutation{}, ctx.Err()
	}
	w := opt.Window
	if w <= 0 {
		w = DefaultWindow
	}
	var p order.Permutation
	var heapOps, placements int64
	var err error
	if opt.UseLazyHeap {
		p, heapOps, placements, err = orderGeneric(ctx, g, w, opt.HubThreshold, newLazyHeap(n))
	} else {
		p, heapOps, placements, err = orderUnitHeap(ctx, g, w, opt.HubThreshold)
	}
	if st := orderStatsFrom(ctx); st != nil {
		st.add(heapOps, placements)
	}
	return p, err
}

// startVertex returns the vertex with maximum in-degree (the most
// shared data structure in the graph), lowest ID on ties, reading the
// in-CSR offsets directly instead of issuing n InDegree calls.
func startVertex(g *graph.Graph) int32 {
	inIdx := g.InIndex()
	start, best := int32(0), inIdx[1]-inIdx[0]
	for v := 1; v < g.NumNodes(); v++ {
		if d := inIdx[v+1] - inIdx[v]; d > best {
			start, best = int32(v), d
		}
	}
	return start
}

// orderUnitHeap is the production greedy loop, specialised on the
// concrete *UnitHeap and batched: instead of issuing one heap splice
// per ±1 score bump, each placement accumulates net deltas in scratch
// arrays and relocates every touched candidate once.
//
// The batching preserves the per-bump loop's permutation bit for bit,
// which takes care, because a UnitHeap breaks ties by list position
// and every individual bump moves the item: an Inc appends the item to
// the tail of the class above, a Dec prepends it to the head of the
// class below. The final list is therefore determined by each touched
// item's *last* bump: its final class, whether that last bump was an
// Inc (append) or a Dec (prepend), and the order of those final bumps.
// The loop reproduces exactly that: the accumulate pass counts
// occurrences and net deltas in scratch arrays while recording the
// bump sequence in a fixed-capacity log, and the apply pass replays
// the sequence, relocating each item exactly at its last occurrence —
// addTail for items whose bumps were all +1, addFront (even at net
// delta zero, which still moves the item to its class head) for items
// the -phase touched. A placement whose bump count overflows the log
// (a hub placement can produce ~m bump events) falls back to
// re-traversing its adjacency ranges in the same order, so the log
// never grows and the loop performs no per-placement allocation.
// TestOrderOptimizedMatchesReference holds the bit-for-bit equivalence
// against the retained per-bump reference implementation.
func orderUnitHeap(ctx context.Context, g *graph.Graph, w, hub int) (perm order.Permutation, heapOps, placements int64, err error) {
	n := g.NumNodes()
	s := &greedyState{
		h:      NewUnitHeap(n),
		outIdx: g.OutIndex(), outAdj: g.OutAdjacency(),
		inIdx: g.InIndex(), inAdj: g.InAdjacency(),
		hub:   int64(hub),
		delta: make([]int32, n),
		pc:    make([]int32, n),
		mc:    make([]int32, n),
		log:    make([]int32, 0, greedyLogCap),
		logged: true,
	}

	seq := make([]graph.NodeID, 0, n)
	start := startVertex(g)
	s.h.Delete(int(start))
	s.heapOps++
	seq = append(seq, graph.NodeID(start))

	for i := 1; i < n; i++ {
		if i%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, s.heapOps, int64(len(seq)), err
			}
		}
		v := seq[i-1]
		plusEnd := s.accumulate(v, false)
		minusEnd := plusEnd
		hasMinus := i-1 >= w
		var ov graph.NodeID
		if hasMinus {
			ov = seq[i-1-w]
			minusEnd = s.accumulate(ov, true)
		}
		if s.logged {
			s.applyPlusLog(s.log[:plusEnd])
			s.applyMinusLog(s.log[plusEnd:minusEnd])
		} else {
			s.applyPlusRescan(v)
			if hasMinus {
				s.applyMinusRescan(ov)
			}
		}
		s.log = s.log[:0]
		s.logged = true

		next, _, ok := s.h.ExtractMax()
		s.heapOps++
		if !ok {
			break
		}
		seq = append(seq, graph.NodeID(next))
	}
	return order.FromSequence(seq), s.heapOps, int64(len(seq)), nil
}

// greedyLogCap bounds the per-placement bump log: one preallocated
// buffer shared by the +phase and -phase, never grown. Typical
// placements produce tens to hundreds of bumps; only hub placements
// overflow into the rescan fallback.
const greedyLogCap = 1 << 14

// greedyState carries the batched greedy loop's scratch state so the
// accumulate/apply passes stay readable without per-call closures.
type greedyState struct {
	h      *UnitHeap
	outIdx []int64
	outAdj []graph.NodeID
	inIdx  []int64
	inAdj  []graph.NodeID
	hub    int64 // 0 = exact scores

	// delta holds each touched item's net key change this placement;
	// pc and mc hold its remaining +phase / -phase occurrence counts.
	// The apply pass drives every touched entry back to zero, so the
	// arrays never need a clearing pass.
	delta []int32
	pc    []int32
	mc    []int32

	// log records the bump sequence of the current placement while it
	// fits; logged reports whether it is complete (capacity never
	// overflowed this placement).
	log    []int32
	logged bool

	heapOps int64
}

// accumulate walks v's score contributions in the reference traversal
// order — out-neighbours, then each in-neighbour followed by its
// non-hub sibling expansion — counting occurrences and net deltas for
// every candidate still in the heap. Candidates already extracted are
// skipped here once instead of per heap op: no extraction happens
// between accumulation and apply, so membership cannot change. It
// returns the log length after this phase.
func (s *greedyState) accumulate(v graph.NodeID, minus bool) int {
	inHeap := s.h.inHeap
	cnt := s.pc
	d := int32(1)
	if minus {
		cnt = s.mc
		d = -1
	}
	for _, u := range s.outAdj[s.outIdx[v]:s.outIdx[v+1]] {
		if inHeap[u] {
			cnt[u]++
			s.delta[u] += d
			s.logBump(int32(u))
		}
	}
	for _, x := range s.inAdj[s.inIdx[v]:s.inIdx[v+1]] {
		if inHeap[x] {
			cnt[x]++
			s.delta[x] += d
			s.logBump(int32(x))
		}
		if s.hub > 0 && s.outIdx[x+1]-s.outIdx[x] > s.hub {
			continue
		}
		for _, u := range s.outAdj[s.outIdx[x]:s.outIdx[x+1]] {
			if u != v && inHeap[u] {
				cnt[u]++
				s.delta[u] += d
				s.logBump(int32(u))
			}
		}
	}
	return len(s.log)
}

func (s *greedyState) logBump(u int32) {
	if len(s.log) < cap(s.log) {
		s.log = append(s.log, u)
	} else {
		s.logged = false
	}
}

// applyPlusLog relocates each all-plus item at its last logged
// occurrence with a class-tail append, as a trailing Inc would have
// left it. Items the -phase also touched relocate in the -phase apply
// instead.
func (s *greedyState) applyPlusLog(log []int32) {
	for _, u := range log {
		s.pc[u]--
		if s.pc[u] == 0 && s.mc[u] == 0 {
			s.h.addTail(u, s.delta[u])
			s.heapOps++
			s.delta[u] = 0
		}
	}
}

// applyMinusLog relocates every -phase-touched item at its last logged
// occurrence with a class-head prepend, as a trailing Dec would have
// left it — even at net delta zero, which still moves the item to its
// class head.
func (s *greedyState) applyMinusLog(log []int32) {
	for _, u := range log {
		s.mc[u]--
		if s.mc[u] == 0 {
			s.h.addFront(u, s.delta[u])
			s.heapOps++
			s.delta[u] = 0
		}
	}
}

// applyPlusRescan is applyPlusLog for placements whose bump sequence
// overflowed the log: re-walking v's contributions in accumulate order
// visits exactly the logged sequence.
func (s *greedyState) applyPlusRescan(v graph.NodeID) {
	inHeap := s.h.inHeap
	for _, u := range s.outAdj[s.outIdx[v]:s.outIdx[v+1]] {
		if inHeap[u] {
			s.applyPlusOne(int32(u))
		}
	}
	for _, x := range s.inAdj[s.inIdx[v]:s.inIdx[v+1]] {
		if inHeap[x] {
			s.applyPlusOne(int32(x))
		}
		if s.hub > 0 && s.outIdx[x+1]-s.outIdx[x] > s.hub {
			continue
		}
		for _, u := range s.outAdj[s.outIdx[x]:s.outIdx[x+1]] {
			if u != v && inHeap[u] {
				s.applyPlusOne(int32(u))
			}
		}
	}
}

func (s *greedyState) applyPlusOne(u int32) {
	s.pc[u]--
	if s.pc[u] == 0 && s.mc[u] == 0 {
		s.h.addTail(u, s.delta[u])
		s.heapOps++
		s.delta[u] = 0
	}
}

// applyMinusRescan is applyMinusLog's rescan fallback.
func (s *greedyState) applyMinusRescan(ov graph.NodeID) {
	inHeap := s.h.inHeap
	for _, u := range s.outAdj[s.outIdx[ov]:s.outIdx[ov+1]] {
		if inHeap[u] {
			s.applyMinusOne(int32(u))
		}
	}
	for _, x := range s.inAdj[s.inIdx[ov]:s.inIdx[ov+1]] {
		if inHeap[x] {
			s.applyMinusOne(int32(x))
		}
		if s.hub > 0 && s.outIdx[x+1]-s.outIdx[x] > s.hub {
			continue
		}
		for _, u := range s.outAdj[s.outIdx[x]:s.outIdx[x+1]] {
			if u != ov && inHeap[u] {
				s.applyMinusOne(int32(u))
			}
		}
	}
}

func (s *greedyState) applyMinusOne(u int32) {
	s.mc[u]--
	if s.mc[u] == 0 {
		s.h.addFront(u, s.delta[u])
		s.heapOps++
		s.delta[u] = 0
	}
}

// applyQueue adds (inc) or removes (!inc) vertex v's score
// contributions to every candidate still in q, one queue operation per
// ±1 bump:
//   - out-neighbours and in-neighbours of v gain Sn,
//   - out-neighbours of v's in-neighbours gain Ss (one shared
//     in-neighbour each).
//
// It returns the number of queue operations performed. This is the
// generic (interface-dispatched) update the UseLazyHeap ablation runs;
// the unit-heap production path uses the batched loop above.
func applyQueue(g *graph.Graph, q maxQueue, hub int, v graph.NodeID, inc bool) int64 {
	var ops int64
	bump := func(u graph.NodeID) {
		if q.Contains(int(u)) {
			if inc {
				q.Inc(int(u))
			} else {
				q.Dec(int(u))
			}
			ops++
		}
	}
	for _, u := range g.OutNeighbors(v) {
		bump(u)
	}
	for _, x := range g.InNeighbors(v) {
		bump(x)
		if hub > 0 && g.OutDegree(x) > hub {
			continue
		}
		for _, u := range g.OutNeighbors(x) {
			if u != v {
				bump(u)
			}
		}
	}
	return ops
}

// orderGeneric is the greedy loop over the maxQueue interface — the
// seed algorithm's shape, kept for the UseLazyHeap ablation where the
// queue cannot relocate an item across several classes in one splice.
func orderGeneric(ctx context.Context, g *graph.Graph, w, hub int, q maxQueue) (perm order.Permutation, heapOps, placements int64, err error) {
	n := g.NumNodes()
	seq := make([]graph.NodeID, 0, n)
	start := startVertex(g)
	q.Delete(int(start))
	heapOps++
	seq = append(seq, graph.NodeID(start))

	for i := 1; i < n; i++ {
		if i%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, heapOps, int64(len(seq)), err
			}
		}
		heapOps += applyQueue(g, q, hub, seq[i-1], true)
		if i-1 >= w {
			heapOps += applyQueue(g, q, hub, seq[i-1-w], false)
		}
		v, _, ok := q.ExtractMax()
		heapOps++
		if !ok {
			break
		}
		seq = append(seq, graph.NodeID(v))
	}
	return order.FromSequence(seq), heapOps, int64(len(seq)), nil
}

// WindowScore evaluates F(pi) for the given permutation and window —
// a convenience re-export of the independent evaluator in the order
// package, so callers of core need not know where the metric lives.
func WindowScore(g *graph.Graph, p order.Permutation, w int) int64 {
	if w <= 0 {
		w = DefaultWindow
	}
	return order.Score(g, p, w)
}

// MultilevelOrder runs Gorder on a coarsened graph and projects the
// order back — a scalable approximation for graphs where the exact
// greedy is too slow (Table 2's superlinear growth). It combines the
// multilevel machinery in the order package with Gorder as the
// coarse-level solver, the ordering analogue of the multilevel
// partitioners the papers could not scale.
func MultilevelOrder(g *graph.Graph, opt Options, coarsenTo int) order.Permutation {
	return order.Multilevel(g, order.MultilevelOptions{
		CoarsenTo: coarsenTo,
		OrderCoarse: func(cg *graph.Graph) order.Permutation {
			return OrderWith(cg, opt)
		},
	})
}
