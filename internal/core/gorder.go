package core

import (
	"context"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// DefaultWindow is the window size w the papers settle on: larger
// windows score slightly better but cost more to compute (the paper's
// Figure 8 / the replication's Figure 4), and the greedy algorithm's
// approximation bound 1/(2w) tightens as w shrinks.
const DefaultWindow = 5

// Options configures the Gorder computation.
type Options struct {
	// Window is the window size w. Zero means DefaultWindow.
	Window int
	// HubThreshold, when positive, skips the sibling-score expansion
	// through in-neighbours whose out-degree exceeds the threshold.
	// This is the paper's practical optimisation for power-law graphs:
	// a hub with out-degree d contributes d sibling updates per window
	// event, and a handful of hubs dominate the runtime while barely
	// changing the ordering. Zero computes exact scores.
	HubThreshold int
	// UseLazyHeap replaces the unit heap with a lazy binary heap; the
	// result is the same ordering (identical keys and tie-breaking is
	// near-identical), but updates cost O(log n). Exposed for the
	// ablation benchmark.
	UseLazyHeap bool
}

// maxQueue is the priority-queue contract the greedy loop needs; both
// UnitHeap and lazyHeap satisfy it.
type maxQueue interface {
	Len() int
	Contains(item int) bool
	Key(item int) int32
	Inc(item int)
	Dec(item int)
	Delete(item int)
	ExtractMax() (item int, key int32, ok bool)
}

// cancelCheckInterval is how many vertex placements the greedy loop
// performs between context-cancellation checks. The interval keeps the
// ctx.Err() cost off the per-insertion hot path while still bounding
// the latency of a cancellation to a few hundred heap operations.
const cancelCheckInterval = 128

// Order computes the Gorder permutation of g with default options.
func Order(g *graph.Graph) order.Permutation {
	return OrderWith(g, Options{})
}

// OrderWith computes the Gorder permutation of g: a relabeling that
// greedily maximises F(pi), the sum of S(u,v) over vertex pairs whose
// new IDs are within the window w of each other, where S counts
// neighbour relations and shared in-neighbours.
func OrderWith(g *graph.Graph, opt Options) order.Permutation {
	p, _ := OrderWithCtx(context.Background(), g, opt)
	return p
}

// OrderWithCtx is OrderWith with cooperative cancellation: the greedy
// loop checks ctx every cancelCheckInterval insertions and returns
// ctx.Err() (with a nil permutation) once the context is done. This is
// what lets a serving layer bound ordering jobs with deadlines instead
// of tying up a worker for the full O(superlinear) run.
func OrderWithCtx(ctx context.Context, g *graph.Graph, opt Options) (order.Permutation, error) {
	n := g.NumNodes()
	if n == 0 {
		return order.Permutation{}, ctx.Err()
	}
	w := opt.Window
	if w <= 0 {
		w = DefaultWindow
	}
	var q maxQueue
	if opt.UseLazyHeap {
		q = newLazyHeap(n)
	} else {
		q = NewUnitHeap(n)
	}

	seq := make([]graph.NodeID, 0, n)
	// Start from the vertex with maximum in-degree (the most shared
	// data structure in the graph), lowest ID on ties.
	start := graph.NodeID(0)
	for v := 1; v < n; v++ {
		if g.InDegree(graph.NodeID(v)) > g.InDegree(start) {
			start = graph.NodeID(v)
		}
	}
	q.Delete(int(start))
	seq = append(seq, start)

	// apply adds (delta=+1) or removes (delta=-1) vertex v's score
	// contributions to every candidate still in the queue:
	//   - out-neighbours and in-neighbours of v gain Sn,
	//   - out-neighbours of v's in-neighbours gain Ss (one shared
	//     in-neighbour each).
	apply := func(v graph.NodeID, delta int) {
		bump := func(u graph.NodeID) {
			if int(u) < n && q.Contains(int(u)) {
				if delta > 0 {
					q.Inc(int(u))
				} else {
					q.Dec(int(u))
				}
			}
		}
		for _, u := range g.OutNeighbors(v) {
			bump(u)
		}
		for _, x := range g.InNeighbors(v) {
			bump(x)
			if opt.HubThreshold > 0 && g.OutDegree(x) > opt.HubThreshold {
				continue
			}
			for _, u := range g.OutNeighbors(x) {
				if u != v {
					bump(u)
				}
			}
		}
	}

	for i := 1; i < n; i++ {
		if i%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		apply(seq[i-1], +1)
		if i-1 >= w {
			apply(seq[i-1-w], -1)
		}
		v, _, ok := q.ExtractMax()
		if !ok {
			break
		}
		seq = append(seq, graph.NodeID(v))
	}
	return order.FromSequence(seq), nil
}

// WindowScore evaluates F(pi) for the given permutation and window —
// a convenience re-export of the independent evaluator in the order
// package, so callers of core need not know where the metric lives.
func WindowScore(g *graph.Graph, p order.Permutation, w int) int64 {
	if w <= 0 {
		w = DefaultWindow
	}
	return order.Score(g, p, w)
}

// MultilevelOrder runs Gorder on a coarsened graph and projects the
// order back — a scalable approximation for graphs where the exact
// greedy is too slow (Table 2's superlinear growth). It combines the
// multilevel machinery in the order package with Gorder as the
// coarse-level solver, the ordering analogue of the multilevel
// partitioners the papers could not scale.
func MultilevelOrder(g *graph.Graph, opt Options, coarsenTo int) order.Permutation {
	return order.Multilevel(g, order.MultilevelOptions{
		CoarsenTo: coarsenTo,
		OrderCoarse: func(cg *graph.Graph) order.Permutation {
			return OrderWith(cg, opt)
		},
	})
}
