package core

import (
	"fmt"
	"testing"

	"gorder/internal/gen"
	"gorder/internal/graph"
)

// orderBenchGraphs are the synthetic ordering workloads
// scripts/bench_gorder.sh records to BENCH_gorder.json: a small
// web graph for fast iteration and the 1M-edge web graph that
// dominates bench_results.txt's ordering times (Table 2's regime).
var orderBenchGraphs = []struct {
	name string
	gen  func() *graph.Graph
}{
	{"web120k", func() *graph.Graph { return gen.Web(12000, gen.DefaultWeb, 0x90DE) }},
	{"web1M", func() *graph.Graph { return gen.Web(100000, gen.DefaultWeb, 0x90DE) }},
}

// orderBenchConfigs sweep the window (the paper's Figure 8 dimension)
// at exact scores, plus one hub-threshold ablation at the default
// window (the practical power-law optimisation).
var orderBenchConfigs = []Options{
	{Window: 1},
	{Window: 5},
	{Window: 16},
	{Window: 5, HubThreshold: 64},
}

// BenchmarkOrderWith measures the Gorder greedy itself — the system's
// dominant cost — reporting placements/sec alongside ns/op so runs of
// different graph sizes stay comparable.
func BenchmarkOrderWith(b *testing.B) {
	for _, ds := range orderBenchGraphs {
		g := ds.gen()
		for _, opt := range orderBenchConfigs {
			name := fmt.Sprintf("%s/w=%d/hub=%d", ds.name, opt.Window, opt.HubThreshold)
			b.Run(name, func(b *testing.B) {
				b.ReportMetric(float64(g.NumEdges()), "edges")
				for i := 0; i < b.N; i++ {
					OrderWith(g, opt)
				}
				placements := float64(g.NumNodes()-1) * float64(b.N)
				b.ReportMetric(placements/b.Elapsed().Seconds(), "placements/s")
			})
		}
	}
}

// BenchmarkUnitHeapChurn isolates the queue: a deterministic mix of
// Inc/Dec/batched Add/ExtractMax in the proportions the greedy loop
// produces, without graph traversal — the microbenchmark that shows
// the dense class index vs the old map-backed one.
func BenchmarkUnitHeapChurn(b *testing.B) {
	const n = 1 << 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := NewUnitHeap(n)
		x := uint64(0x9E3779B97F4A7C15)
		for ops := 0; ops < 4*n; ops++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			item := int(x % n)
			if !h.Contains(item) {
				continue
			}
			switch x >> 60 & 3 {
			case 0, 1:
				h.Inc(item)
			case 2:
				if h.Key(item) > 0 {
					h.Dec(item)
				}
			case 3:
				h.ExtractMax()
			}
		}
		for h.Len() > 0 {
			h.ExtractMax()
		}
	}
}
