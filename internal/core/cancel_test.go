package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"gorder/internal/gen"
)

func TestOrderWithCtxMatchesOrderWith(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 3)
	want := OrderWith(g, Options{})
	got, err := OrderWithCtx(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if want[u] != got[u] {
			t.Fatalf("perm[%d] = %d, want %d", u, got[u], want[u])
		}
	}
}

func TestOrderWithCtxCanceled(t *testing.T) {
	g := gen.BarabasiAlbert(5000, 6, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := OrderWithCtx(ctx, g, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p != nil {
		t.Fatalf("canceled run returned a permutation of %d vertices", len(p))
	}
}

func TestOrderWithCtxDeadline(t *testing.T) {
	// Large enough that the greedy loop cannot finish in a microsecond;
	// the deadline must interrupt it rather than letting it run on.
	g := gen.BarabasiAlbert(20000, 8, 7)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := OrderWithCtx(ctx, g, Options{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("OrderWithCtx ignored its deadline")
	}
}

func TestOrderParallelCtxCanceled(t *testing.T) {
	g := gen.BarabasiAlbert(5000, 6, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OrderParallelCtx(ctx, g, Options{}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOrderParallelCtxMatchesOrderParallel(t *testing.T) {
	g := gen.SBM(2000, 20, 8, 1, 4)
	want := OrderParallel(g, Options{}, 4)
	got, err := OrderParallelCtx(context.Background(), g, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if want[u] != got[u] {
			t.Fatalf("perm[%d] = %d, want %d", u, got[u], want[u])
		}
	}
}
