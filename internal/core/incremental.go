package core

import (
	"context"
	"fmt"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// OrderIncremental extends an existing Gorder-style permutation to a
// grown graph without recomputing it from scratch — the adaptation
// the papers' discussion calls for on evolving networks, where the
// full greedy run is too expensive to repeat on every batch of new
// vertices. It is OrderIncrementalCtx with no dirty set and no
// cancellation: pure growth, every previously ordered vertex keeps its
// position.
func OrderIncremental(g *graph.Graph, base order.Permutation, opt Options) (order.Permutation, error) {
	return OrderIncrementalCtx(context.Background(), g, base, nil, opt)
}

// OrderIncrementalCtx repairs an existing Gorder-style permutation
// after the graph changed, without a full recompute.
//
// g must contain the previously ordered vertices as IDs
// 0..len(base)-1 (their edges may have changed) plus any number of
// new vertices appended after them. dirty lists old vertices whose
// neighbourhoods changed enough that their placement should be
// reconsidered — typically the endpoints of inserted and deleted
// edges. Vertices neither new nor dirty keep their relative order
// from base (compacted over the holes the dirty vertices leave); the
// dirty and new vertices are then re-placed greedily after them, each
// chosen to maximise the windowed score S against the last w placed
// vertices — the same objective and bookkeeping as the full
// algorithm, restricted to the re-placement set. Because dirty
// vertices are re-scored on the *current* graph, the repair tolerates
// edge deletions, not just appended suffixes.
//
// The re-placement set is ordered exactly as the full greedy would
// order it given the frozen prefix, so quality degrades only as much
// as the frozen prefix is stale; monitor F(pi) and re-run OrderWith
// when churn accumulates.
//
// Malformed input — a base that is not a valid permutation, covers
// more vertices than g has, or a dirty vertex out of range — returns
// an error instead of panicking, so a service can feed it client
// mutation batches directly. Cancellation via ctx returns ctx.Err()
// with a nil permutation, like OrderWithCtx.
func OrderIncrementalCtx(ctx context.Context, g *graph.Graph, base order.Permutation, dirty []graph.NodeID, opt Options) (order.Permutation, error) {
	n := g.NumNodes()
	k := len(base)
	if k > n {
		return nil, fmt.Errorf("core: base permutation covers %d vertices but graph has %d", k, n)
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid base permutation: %w", err)
	}
	for _, d := range dirty {
		if int(d) < 0 || int(d) >= n {
			return nil, fmt.Errorf("core: dirty vertex %d out of range [0, %d)", d, n)
		}
	}
	if k == 0 {
		return OrderWithCtx(ctx, g, opt)
	}
	w := opt.Window
	if w <= 0 {
		w = DefaultWindow
	}

	// The re-placement set R: dirty old vertices plus every new vertex.
	// mark[v] for old vertices only; new vertices are implicit.
	mark := make([]bool, k)
	for _, d := range dirty {
		if int(d) < k {
			mark[d] = true
		}
	}

	// seq starts as the compacted clean prefix: base order with the
	// dirty vertices' slots squeezed out.
	seq := make([]graph.NodeID, 0, n)
	for _, v := range base.Sequence() {
		if !mark[v] {
			seq = append(seq, v)
		}
	}
	frozen := len(seq)
	if frozen == n {
		return order.FromSequence(seq), ctx.Err()
	}

	// R in ascending vertex ID — the deterministic slot order the unit
	// heap breaks ties by.
	slot := make([]int32, n)
	for i := range slot {
		slot[i] = -1
	}
	r := make([]graph.NodeID, 0, n-frozen)
	for v := 0; v < n; v++ {
		if v >= k || mark[v] {
			slot[v] = int32(len(r))
			r = append(r, graph.NodeID(v))
		}
	}

	q := NewUnitHeap(len(r))
	apply := func(v graph.NodeID, delta int) {
		bump := func(u graph.NodeID) {
			if s := slot[u]; s >= 0 && q.Contains(int(s)) {
				if delta > 0 {
					q.Inc(int(s))
				} else {
					q.Dec(int(s))
				}
			}
		}
		for _, u := range g.OutNeighbors(v) {
			bump(u)
		}
		for _, x := range g.InNeighbors(v) {
			bump(x)
			if opt.HubThreshold > 0 && g.OutDegree(x) > opt.HubThreshold {
				continue
			}
			for _, u := range g.OutNeighbors(x) {
				if u != v {
					bump(u)
				}
			}
		}
	}
	// Prime the window with the tail of the frozen prefix.
	lo := frozen - w
	if lo < 0 {
		lo = 0
	}
	for _, v := range seq[lo:frozen] {
		apply(v, +1)
	}
	seq = seq[:n]
	for i := frozen; i < n; i++ {
		if (i-frozen)%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if i > frozen {
			apply(seq[i-1], +1)
			if i-1-w >= 0 {
				apply(seq[i-1-w], -1)
			}
		}
		v, _, ok := q.ExtractMax()
		if !ok {
			break
		}
		seq[i] = r[v]
	}
	return order.FromSequence(seq), nil
}
