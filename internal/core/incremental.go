package core

import (
	"fmt"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// OrderIncremental extends an existing Gorder-style permutation to a
// grown graph without recomputing it from scratch — the adaptation
// the papers' discussion calls for on evolving networks, where the
// full greedy run is too expensive to repeat on every batch of new
// vertices.
//
// g must contain the previously ordered vertices as IDs 0..len(base)-1
// (their edges may have changed) plus any number of new vertices
// appended after them. The old vertices keep their base positions;
// the new vertices are placed greedily after them, each chosen to
// maximise the windowed score S against the last w placed vertices —
// the same objective and bookkeeping as the full algorithm, restricted
// to the new suffix.
//
// The suffix is ordered exactly as the full greedy would order it
// given the frozen prefix, so quality degrades only as much as the
// frozen prefix is stale; re-run OrderWith when churn accumulates.
func OrderIncremental(g *graph.Graph, base order.Permutation, opt Options) order.Permutation {
	n := g.NumNodes()
	k := len(base)
	if k > n {
		panic(fmt.Sprintf("core: base permutation covers %d vertices but graph has %d", k, n))
	}
	if err := base.Validate(); err != nil {
		panic("core: invalid base permutation: " + err.Error())
	}
	if k == 0 {
		return OrderWith(g, opt)
	}
	w := opt.Window
	if w <= 0 {
		w = DefaultWindow
	}
	// Sequence starts as the frozen prefix.
	seq := make([]graph.NodeID, n)
	copy(seq, base.Sequence())

	if k == n {
		return order.FromSequence(seq)
	}
	// Queue over the new vertices only; queue index = vertex - k.
	q := NewUnitHeap(n - k)
	apply := func(v graph.NodeID, delta int) {
		bump := func(u graph.NodeID) {
			if int(u) >= k && q.Contains(int(u)-k) {
				if delta > 0 {
					q.Inc(int(u) - k)
				} else {
					q.Dec(int(u) - k)
				}
			}
		}
		for _, u := range g.OutNeighbors(v) {
			bump(u)
		}
		for _, x := range g.InNeighbors(v) {
			bump(x)
			if opt.HubThreshold > 0 && g.OutDegree(x) > opt.HubThreshold {
				continue
			}
			for _, u := range g.OutNeighbors(x) {
				if u != v {
					bump(u)
				}
			}
		}
	}
	// Prime the window with the tail of the frozen prefix.
	lo := k - w
	if lo < 0 {
		lo = 0
	}
	for _, v := range seq[lo:k] {
		apply(v, +1)
	}
	for i := k; i < n; i++ {
		if i > k {
			apply(seq[i-1], +1)
			if i-1-w >= 0 {
				apply(seq[i-1-w], -1)
			}
		}
		v, _, ok := q.ExtractMax()
		if !ok {
			break
		}
		seq[i] = graph.NodeID(v + k)
	}
	return order.FromSequence(seq)
}
