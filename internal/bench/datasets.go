package bench

import (
	"gorder/internal/gen"
	"gorder/internal/graph"
)

// Dataset is a named synthetic benchmark graph. Each entry is a
// scaled-down structural stand-in for one of the paper's real
// datasets (DESIGN.md §4.1): social graphs get preferential-attachment
// or R-MAT structure with skewed in-degrees; web graphs get the
// copying model whose original numbering has crawl locality.
type Dataset struct {
	Name     string
	Category string // "social" or "web", as in Table 1
	// Counterpart is the paper dataset this one stands in for.
	Counterpart string
	// Build generates the graph; scale multiplies the vertex count
	// (1.0 = the default laptop-friendly size).
	Build func(scale float64) *graph.Graph
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 16 {
		v = 16
	}
	return v
}

// Datasets returns the benchmark registry in size order, mirroring
// the eight datasets of the paper's Table 1 plus the replication's
// added small "epinion".
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "epinion-s", Category: "social", Counterpart: "epinion",
			Build: func(s float64) *graph.Graph {
				return gen.BarabasiAlbert(scaled(1500, s), 6, 0xE01)
			},
		},
		{
			Name: "pokec-s", Category: "social", Counterpart: "pokec",
			Build: func(s float64) *graph.Graph {
				return gen.BarabasiAlbert(scaled(25000, s), 9, 0xB0EC)
			},
		},
		{
			Name: "flickr-s", Category: "social", Counterpart: "flickr",
			Build: func(s float64) *graph.Graph {
				return gen.RMAT(rmScale(32768, s), 7, gen.DefaultRMAT, 0xF11C)
			},
		},
		{
			Name: "livejournal-s", Category: "social", Counterpart: "livejournal",
			Build: func(s float64) *graph.Graph {
				return gen.SBM(scaled(40000, s), 60, 9, 3, 0x117E)
			},
		},
		{
			Name: "wiki-s", Category: "web", Counterpart: "wiki",
			Build: func(s float64) *graph.Graph {
				return gen.Web(scaled(60000, s), gen.WebConfig{OutDegree: 14, PCopy: 0.55, Locality: 32}, 0x3117)
			},
		},
		{
			Name: "gplus-s", Category: "social", Counterpart: "gplus",
			Build: func(s float64) *graph.Graph {
				return gen.BarabasiAlbert(scaled(70000, s), 10, 0x6B15)
			},
		},
		{
			Name: "pldarc-s", Category: "web", Counterpart: "pldarc",
			Build: func(s float64) *graph.Graph {
				return gen.Web(scaled(90000, s), gen.WebConfig{OutDegree: 12, PCopy: 0.6, Locality: 48}, 0x97D0)
			},
		},
		{
			Name: "twitter-s", Category: "social", Counterpart: "twitter",
			Build: func(s float64) *graph.Graph {
				return gen.RMAT(rmScale(98304, s), 10, gen.DefaultRMAT, 0x7317)
			},
		},
		{
			Name: "sdarc-s", Category: "web", Counterpart: "sdarc",
			Build: func(s float64) *graph.Graph {
				return gen.Web(scaled(120000, s), gen.WebConfig{OutDegree: 16, PCopy: 0.6, Locality: 64}, 0x5DA0)
			},
		},
	}
}

// rmScale converts a target vertex count into the nearest R-MAT scale
// exponent after applying the size multiplier.
func rmScale(n int, scale float64) int {
	target := float64(n) * scale
	s := 4
	for (1 << uint(s+1)) <= int(target) {
		s++
	}
	return s
}

// DatasetByName finds a registry entry.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}
