package bench

import (
	"fmt"
	"runtime"

	"gorder/internal/core"
	"gorder/internal/gen"
	"gorder/internal/order"
)

// ParallelOrderRow is one configuration of the parallel-ordering
// scaling experiment: a method at a worker bound, with its wall-clock,
// quality (F and packing factor) and ratios against the exact Gorder
// reference row.
type ParallelOrderRow struct {
	Method     string  `json:"method"`
	Workers    int     `json:"workers"`
	Partitions int     `json:"partitions,omitempty"`
	Seconds    float64 `json:"seconds"`
	ScoreF     int64   `json:"score_F"`
	FOfExact   float64 `json:"F_of_exact"`
	Packing    float64 `json:"packing_factor"`
	Speedup    float64 `json:"speedup_vs_exact"`
}

// ParallelOrderReport is the JSON shape bench_parallel_order.sh
// persists as BENCH_parallel_order.json.
type ParallelOrderReport struct {
	GeneratedBy string             `json:"generated_by"`
	Dataset     string             `json:"dataset"`
	Nodes       int                `json:"nodes"`
	Edges       int64              `json:"edges"`
	Window      int                `json:"window"`
	Cores       int                `json:"cores"`
	Reps        int                `json:"reps"`
	Rows        []ParallelOrderRow `json:"rows"`
}

// parallelOrderWorkers is the scaling grid of the experiment.
var parallelOrderWorkers = []int{1, 2, 4, 8}

// ParallelOrder quantifies the quality-vs-wall-clock trade of the
// partition-parallel Gorder and the lightweight parallel family on the
// 1M-edge web workload (the same graph as BenchmarkOrderWith/web1M).
// Rows: exact Gorder as the reference, gorder-partitioned at 1/2/4/8
// workers (default partition grid — the permutation is
// worker-independent, so F is constant across those rows and only the
// wall-clock moves), and BOBA. On a single-core host the partitioned
// speedup is pure work reduction: ordering k small ghost-extended
// subgraphs is cheaper than one large exact greedy.
func (r *Runner) ParallelOrder() (Table, *ParallelOrderReport) {
	n := int(100000 * r.Scale)
	if n < 1000 {
		n = 1000
	}
	g := gen.Web(n, gen.DefaultWeb, 0x90DE)
	w := core.DefaultWindow
	reps := r.Reps
	if reps < 1 {
		reps = 1
	}

	// timeBest runs f reps times and keeps the fastest wall-clock; every
	// method here is deterministic, so the permutation is rep-invariant.
	timeBest := func(f func() order.Permutation) (float64, order.Permutation) {
		best, p := 0.0, order.Permutation(nil)
		for i := 0; i < reps; i++ {
			secs, perm := timeIt(f)
			if p == nil || secs < best {
				best, p = secs, perm
			}
		}
		return best, p
	}

	rep := &ParallelOrderReport{
		GeneratedBy: "scripts/bench_parallel_order.sh",
		Dataset:     fmt.Sprintf("gen.Web(%d, DefaultWeb, 0x90DE)", n),
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Window:      w,
		Cores:       runtime.NumCPU(),
		Reps:        reps,
	}
	addRow := func(method string, workers, partitions int, secs float64, p order.Permutation) ParallelOrderRow {
		row := ParallelOrderRow{
			Method: method, Workers: workers, Partitions: partitions,
			Seconds: secs,
			ScoreF:  order.Score(g, p, w),
			Packing: order.PackingFactor(g, p),
		}
		rep.Rows = append(rep.Rows, row)
		return row
	}

	exactSecs, exactPerm := timeBest(func() order.Permutation {
		return core.OrderWith(g, core.Options{Window: w})
	})
	exact := addRow("gorder", 1, 0, exactSecs, exactPerm)
	r.logf("parallel gorder exact done (%.2fs)", exactSecs)

	for _, workers := range parallelOrderWorkers {
		wk := workers
		secs, perm := timeBest(func() order.Permutation {
			return core.OrderPartitioned(g, core.Options{Window: w},
				core.PartitionedOptions{Workers: wk})
		})
		addRow("gorder-partitioned", wk, core.DefaultPartitions, secs, perm)
		r.logf("parallel gorder-partitioned workers=%d done (%.2fs)", wk, secs)
	}

	bobaSecs, bobaPerm := timeBest(func() order.Permutation { return order.BOBA(g) })
	addRow("boba", runtime.GOMAXPROCS(0), 0, bobaSecs, bobaPerm)
	r.logf("parallel boba done (%.4fs)", bobaSecs)

	t := Table{
		ID: "parallel",
		Title: fmt.Sprintf("Parallel ordering scaling on web n=%d m=%d (window %d)",
			g.NumNodes(), g.NumEdges(), w),
		Header: []string{"method", "workers", "time", "F(pi)", "F/exact", "packing", "speedup"},
		Notes: []string{
			"gorder-partitioned permutation is worker-independent: F is identical across worker rows",
			fmt.Sprintf("host has %d core(s); single-core speedup is work reduction, multi-core adds concurrency on top", runtime.NumCPU()),
		},
	}
	for i := range rep.Rows {
		row := &rep.Rows[i]
		row.FOfExact = float64(row.ScoreF) / float64(exact.ScoreF)
		row.Speedup = exact.Seconds / row.Seconds
		t.Rows = append(t.Rows, []string{
			row.Method, fmt.Sprintf("%d", row.Workers), fmtSecs(row.Seconds),
			fmt.Sprintf("%d", row.ScoreF), fmt.Sprintf("%.3f", row.FOfExact),
			fmt.Sprintf("%.2f", row.Packing), fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	return t, rep
}
