package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyRunner keeps integration tests fast: two datasets at 1/20 of
// the default size, one rep, scaled-down kernels.
func tinyRunner() *Runner {
	r := NewRunner()
	r.Scale = 0.05
	r.Reps = 1
	r.MaxDatasets = 2
	r.Params.PageRankIters = 5
	r.Params.DiameterSamples = 3
	return r
}

func TestRegistriesComplete(t *testing.T) {
	if got := len(Datasets()); got != 9 {
		t.Errorf("datasets = %d, want 9 (Table 1 has 8 + epinion)", got)
	}
	if got := len(Orderings()); got != 10 {
		t.Errorf("orderings = %d, want 10", got)
	}
	if got := len(Kernels()); got != 9 {
		t.Errorf("kernels = %d, want 9", got)
	}
	names := map[string]bool{}
	for _, o := range Orderings() {
		names[o.Name] = true
	}
	for _, want := range []string{"Original", "Random", "MinLA", "MinLogA", "RCM",
		"InDegSort", "ChDFS", "SlashBurn", "LDG", GorderName} {
		if !names[want] {
			t.Errorf("missing ordering %q", want)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	if _, ok := DatasetByName("flickr-s"); !ok {
		t.Error("flickr-s not found")
	}
	if _, ok := DatasetByName("nope"); ok {
		t.Error("bogus dataset found")
	}
}

func TestDatasetsBuildAndAreSimple(t *testing.T) {
	for _, ds := range Datasets() {
		g := ds.Build(0.02)
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", ds.Name)
		}
		// Deterministic in the (fixed) seed.
		if !g.Equal(ds.Build(0.02)) {
			t.Errorf("%s: not deterministic", ds.Name)
		}
	}
}

func TestMatrixShape(t *testing.T) {
	r := tinyRunner()
	m := r.RunMatrix()
	if len(m.Kernels) != 9 || len(m.Orderings) != 10 || len(m.Datasets) != 2 {
		t.Fatalf("matrix dims %dx%dx%d", len(m.Kernels), len(m.Datasets), len(m.Orderings))
	}
	for _, k := range m.Kernels {
		for _, ds := range m.Datasets {
			for _, o := range m.Orderings {
				if m.Seconds[k][ds][o] <= 0 {
					t.Fatalf("cell %s/%s/%s not measured", k, ds, o)
				}
			}
		}
	}
	// Matrix is cached: second call returns the same object.
	if r.RunMatrix() != m {
		t.Error("RunMatrix not cached")
	}
}

func TestAllExperimentTablesRender(t *testing.T) {
	r := tinyRunner()
	tables := []Table{r.Table1(), r.Table2(), r.Fig6Table()}
	tables = append(tables, r.Fig5Tables()...)
	tables = append(tables, r.FigS1Tables()...)
	for _, tb := range tables {
		var buf bytes.Buffer
		if err := tb.Render(&buf); err != nil {
			t.Fatalf("%s: %v", tb.ID, err)
		}
		if !strings.Contains(buf.String(), tb.ID) {
			t.Errorf("%s: render missing id", tb.ID)
		}
		if md := tb.Markdown(); !strings.Contains(md, "|") {
			t.Errorf("%s: markdown not tabular", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: ragged row %v", tb.ID, row)
			}
		}
	}
}

func TestCacheExperiments(t *testing.T) {
	r := tinyRunner()
	for _, tb := range r.Table3Tables() {
		if len(tb.Rows) != 10 {
			t.Errorf("table3 rows = %d, want 10 orderings", len(tb.Rows))
		}
	}
	fig1 := r.Fig1Table()
	if len(fig1.Rows) != 9 {
		t.Errorf("fig1 rows = %d, want 9 kernels", len(fig1.Rows))
	}
}

func TestFig4AndFig3(t *testing.T) {
	r := tinyRunner()
	fig4 := r.Fig4Table()
	if len(fig4.Rows) == 0 {
		t.Error("fig4 empty")
	}
	fig3 := r.Fig3Table()
	if len(fig3.Rows) != 4 {
		t.Errorf("fig3 rows = %d, want 4 step settings", len(fig3.Rows))
	}
}

func TestTable3DatasetsPicksSocialAndWeb(t *testing.T) {
	r := NewRunner()
	names := r.Table3Datasets()
	if len(names) != 2 {
		t.Fatalf("Table3Datasets = %v, want one social + one web", names)
	}
	a, _ := DatasetByName(names[0])
	b, _ := DatasetByName(names[1])
	if a.Category != "social" || b.Category != "web" {
		t.Errorf("categories = %s, %s", a.Category, b.Category)
	}
}

func TestCompressAndDialTables(t *testing.T) {
	r := tinyRunner()
	ct := r.CompressTable()
	if len(ct.Rows) != 10 {
		t.Errorf("compress rows = %d, want 10", len(ct.Rows))
	}
	if testing.Short() {
		t.Skip("dial is slower")
	}
	dt := r.DialTable()
	if len(dt.Rows) != 6 {
		t.Errorf("dial rows = %d, want 6", len(dt.Rows))
	}
}

func TestTLBTable(t *testing.T) {
	r := tinyRunner()
	tables := r.TLBTable()
	if len(tables) == 0 {
		t.Fatal("no TLB tables")
	}
	for _, tb := range tables {
		if len(tb.Rows) != 10 {
			t.Errorf("tlb rows = %d, want 10", len(tb.Rows))
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("ragged row %v", row)
			}
		}
	}
}

func TestCacheGridTable(t *testing.T) {
	r := tinyRunner()
	tb := r.CacheGridTable()
	if len(tb.Rows) != 10 || len(tb.Header) != 10 {
		t.Errorf("cachegrid shape %dx%d, want 10x10", len(tb.Rows), len(tb.Header))
	}
}
