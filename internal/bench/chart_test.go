package bench

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestBar(t *testing.T) {
	if Bar(0, 10) != "" {
		t.Errorf("Bar(0) = %q", Bar(0, 10))
	}
	full := Bar(1, 10)
	if utf8.RuneCountInString(full) != 10 || !strings.HasPrefix(full, "██") {
		t.Errorf("Bar(1) = %q", full)
	}
	half := Bar(0.5, 10)
	if n := utf8.RuneCountInString(half); n < 5 || n > 6 {
		t.Errorf("Bar(0.5) rune count = %d", n)
	}
	// Clamping.
	if Bar(-1, 5) != "" || utf8.RuneCountInString(Bar(2, 5)) != 5 {
		t.Error("Bar does not clamp")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := BarChart(&buf, "test", []string{"alpha", "b"}, []float64{2, 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "test") {
		t.Errorf("chart output missing content:\n%s", out)
	}
	// The larger value's bar must be longer.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if utf8.RuneCountInString(lines[1]) <= utf8.RuneCountInString(lines[2]) {
		t.Errorf("bar lengths not ordered:\n%s", out)
	}
}

func TestBarChartMismatched(t *testing.T) {
	if err := BarChart(&bytes.Buffer{}, "x", []string{"a"}, nil, 10); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestParseLenient(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"1.5", 1.5, true},
		{"45ms", 0.045, true},
		{"2.5s", 2.5, true},
		{"3µs", 3e-6, true},
		{"1.5m", 90, true},
		{"31.9%", 0.319, true},
		{"12.6M", 12.6e6, true},
		{"1.5k", 1500, true},
		{"2G", 2e9, true},
		{"social", 0, false},
	}
	for _, c := range cases {
		got, ok := parseLenient(c.in)
		if ok != c.ok {
			t.Errorf("parseLenient(%q) ok = %v", c.in, ok)
			continue
		}
		if ok && (got < c.want*0.999 || got > c.want*1.001) {
			t.Errorf("parseLenient(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestChartColumn(t *testing.T) {
	tb := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"who", "time"},
		Rows:   [][]string{{"a", "10ms"}, {"b", "20ms"}, {"skip", "n/a"}},
	}
	var buf bytes.Buffer
	if err := ChartColumn(&buf, tb, 1, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("chart missing rows:\n%s", out)
	}
	if strings.Contains(out, "skip") {
		t.Errorf("unparseable row not skipped:\n%s", out)
	}
	if err := ChartColumn(&buf, tb, 5, 20); err == nil {
		t.Error("out-of-range column accepted")
	}
}
