package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"gorder/internal/algos"
	"gorder/internal/cache"
	"gorder/internal/graph"
	"gorder/internal/mem"
	"gorder/internal/order"
	"gorder/internal/registry"
	"gorder/internal/stats"
)

// Runner drives the experiments. The zero value is not usable; create
// one with NewRunner and adjust fields before the first experiment
// call (results are cached inside the runner afterwards).
type Runner struct {
	// Scale multiplies every dataset's vertex count (1.0 = default).
	Scale float64
	// Reps is the number of timed repetitions per cell; the median is
	// reported, as in the replication.
	Reps int
	// Seed drives the stochastic orderings and kernels.
	Seed uint64
	// MaxDatasets truncates the dataset list (0 = all nine); the quick
	// modes of the benchmarks use it.
	MaxDatasets int
	// Params are the kernel parameters.
	Params Params
	// CacheCfg is the simulated hierarchy for the cache experiments.
	CacheCfg cache.Config
	// Progress, when non-nil, receives one line per completed step so
	// long runs show life.
	Progress io.Writer
	// Ctx, when non-nil, bounds the ordering computations; a canceled
	// run panics out of prepare (the harness has no partial-result
	// mode). Nil means context.Background().
	Ctx context.Context

	prepared map[string]*prepared
	matrix   *Matrix
}

// NewRunner returns a Runner with the defaults the EXPERIMENTS.md
// results were produced with.
func NewRunner() *Runner {
	return &Runner{
		Scale:    1.0,
		Reps:     3,
		Seed:     42,
		Params:   DefaultParams(),
		CacheCfg: cache.SmallMachine(),
	}
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, format+"\n", args...)
	}
}

// prepared is one dataset with all orderings computed and applied.
type prepared struct {
	ds        Dataset
	g         *graph.Graph
	perms     map[string]order.Permutation
	relabeled map[string]*graph.Graph
	orderSecs map[string]float64
}

// DatasetList returns the datasets this runner covers.
func (r *Runner) DatasetList() []Dataset {
	ds := Datasets()
	if r.MaxDatasets > 0 && r.MaxDatasets < len(ds) {
		ds = ds[:r.MaxDatasets]
	}
	return ds
}

// prepare builds (once) a dataset and every ordering of it.
func (r *Runner) prepare(ds Dataset) *prepared {
	if r.prepared == nil {
		r.prepared = make(map[string]*prepared)
	}
	if p, ok := r.prepared[ds.Name]; ok {
		return p
	}
	g := ds.Build(r.Scale)
	p := &prepared{
		ds:        ds,
		g:         g,
		perms:     make(map[string]order.Permutation),
		relabeled: make(map[string]*graph.Graph),
		orderSecs: make(map[string]float64),
	}
	ctx := r.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	for _, o := range Orderings() {
		// The registry's instrumented path both computes and times the
		// ordering, so bench and gorderd report from one code path.
		perm, obs, err := registry.ComputeObserved(ctx, g, o.Name, registry.Options{Seed: r.Seed})
		if err != nil {
			panic(fmt.Sprintf("bench: ordering %s on %s: %v", o.Name, ds.Name, err))
		}
		p.orderSecs[o.Name] = obs.Duration.Seconds()
		p.perms[o.Name] = perm
		p.relabeled[o.Name] = g.Relabel(perm)
		r.logf("prepared %s/%s in %.2fs", ds.Name, o.Name, p.orderSecs[o.Name])
	}
	r.prepared[ds.Name] = p
	return p
}

// Matrix holds the full runtime grid: median seconds for every
// (kernel, dataset, ordering) cell plus ordering computation times.
// Figures 5, 6, S1 and Table 2 are all views of it.
type Matrix struct {
	Kernels   []string
	Datasets  []string
	Orderings []string
	// Seconds[kernel][dataset][ordering] = median runtime.
	Seconds map[string]map[string]map[string]float64
	// OrderSeconds[dataset][ordering] = time to compute the ordering.
	OrderSeconds map[string]map[string]float64
}

// RunMatrix measures (once per Runner) the full grid.
func (r *Runner) RunMatrix() *Matrix {
	if r.matrix != nil {
		return r.matrix
	}
	m := &Matrix{
		Seconds:      make(map[string]map[string]map[string]float64),
		OrderSeconds: make(map[string]map[string]float64),
	}
	for _, k := range Kernels() {
		m.Kernels = append(m.Kernels, k.Name)
		m.Seconds[k.Name] = make(map[string]map[string]float64)
	}
	for _, o := range Orderings() {
		m.Orderings = append(m.Orderings, o.Name)
	}
	for _, ds := range r.DatasetList() {
		m.Datasets = append(m.Datasets, ds.Name)
		p := r.prepare(ds)
		m.OrderSeconds[ds.Name] = p.orderSecs
		for _, k := range Kernels() {
			cells := make(map[string]float64)
			for _, o := range Orderings() {
				g := p.relabeled[o.Name]
				cells[o.Name] = r.timeKernel(k, g)
			}
			m.Seconds[k.Name][ds.Name] = cells
			r.logf("timed %s on %s", k.Name, ds.Name)
		}
	}
	r.matrix = m
	return m
}

// timeKernel returns the median wall-clock seconds of Reps runs.
// Fast kernels are batched testing.B-style — each rep times enough
// consecutive runs to exceed minBatch, then divides — so sub-
// millisecond cells are not drowned in timer and scheduler noise.
func (r *Runner) timeKernel(k Kernel, g *graph.Graph) float64 {
	const minBatch = 30 * time.Millisecond
	reps := r.Reps
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	k.Run(g, r.Params)
	first := time.Since(start)
	batch := 1
	if first < minBatch && first > 0 {
		batch = int(minBatch/first) + 1
	}
	times := make([]float64, 0, reps)
	times = append(times, first.Seconds())
	for i := 1; i < reps; i++ {
		start := time.Now()
		for j := 0; j < batch; j++ {
			k.Run(g, r.Params)
		}
		times = append(times, time.Since(start).Seconds()/float64(batch))
	}
	if reps == 1 {
		return first.Seconds()
	}
	// The cold first run is kept only if it is not an outlier; the
	// median makes that decision for us.
	return stats.Median(times[1:])
}

// CacheRun executes kernel k on graph g under the runner's simulated
// hierarchy and returns the cache report.
func (r *Runner) CacheRun(k Kernel, g *graph.Graph) cache.Report {
	return r.CacheRunWith(r.CacheCfg, k, g)
}

// CacheRunWith is CacheRun under an explicit hierarchy configuration
// (the TLB experiment varies it).
func (r *Runner) CacheRunWith(cfg cache.Config, k Kernel, g *graph.Graph) cache.Report {
	h := cache.New(cfg)
	s := mem.NewSpace(h)
	t := algos.NewTracedGraph(g, s)
	k.RunTraced(g, t, s, r.Params)
	return h.Report()
}
