package bench

import (
	"fmt"
	"math"
	"sort"

	"gorder/internal/core"
	"gorder/internal/graph"
	"gorder/internal/order"
	"gorder/internal/stats"
)

// Formatting helpers shared by the experiment drivers.

func fmtSecs(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1e3)
	case s < 60:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.1fm", s/60)
	}
}

func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func fmtCount(x uint64) string {
	switch {
	case x >= 1e9:
		return fmt.Sprintf("%.2fG", float64(x)/1e9)
	case x >= 1e6:
		return fmt.Sprintf("%.2fM", float64(x)/1e6)
	case x >= 1e3:
		return fmt.Sprintf("%.1fk", float64(x)/1e3)
	default:
		return fmt.Sprintf("%d", x)
	}
}

// Table1 reports the features of the synthetic datasets, mirroring
// the paper's Table 1.
func (r *Runner) Table1() Table {
	t := Table{
		ID:     "table1",
		Title:  "Dataset features (synthetic stand-ins for the paper's Table 1)",
		Header: []string{"dataset", "category", "stands for", "nodes", "edges", "avg deg", "max in", "max out"},
		Notes: []string{
			"Real datasets are substituted by seeded generators; see DESIGN.md §4.",
		},
	}
	for _, ds := range r.DatasetList() {
		g := r.prepare(ds).g
		s := graph.ComputeStats(g)
		t.Rows = append(t.Rows, []string{
			ds.Name, ds.Category, ds.Counterpart,
			fmtCount(uint64(s.Nodes)), fmtCount(uint64(s.Edges)),
			fmt.Sprintf("%.1f", s.AvgDegree),
			fmtCount(uint64(s.MaxInDegree)), fmtCount(uint64(s.MaxOutDegree)),
		})
	}
	return t
}

// table2Orderings are the rows of the replication's Table 2: the
// orderings that actually compute something (Original and Random are
// trivial and excluded there).
var table2Orderings = []string{
	"MinLA", "MinLogA", "RCM", "InDegSort", "ChDFS", "SlashBurn", "LDG", GorderName,
}

// Table2 reports ordering computation time, mirroring the
// replication's Table 2 (original paper's Table 9).
func (r *Runner) Table2() Table {
	m := r.RunMatrix()
	t := Table{
		ID:     "table2",
		Title:  "Graph ordering time (seconds)",
		Header: append([]string{"ordering"}, m.Datasets...),
	}
	for _, o := range table2Orderings {
		row := []string{o}
		for _, ds := range m.Datasets {
			row = append(row, fmtSecs(m.OrderSeconds[ds][o]))
		}
		t.Rows = append(t.Rows, row)
	}
	edgeRow := []string{"edges m"}
	for _, ds := range m.Datasets {
		edgeRow = append(edgeRow, fmtCount(uint64(r.prepared[ds].g.NumEdges())))
	}
	t.Rows = append(t.Rows, edgeRow)
	return t
}

// Fig5Tables reports, for each kernel, the runtime of every ordering
// relative to Gorder (the replication's Figure 5 / the original's
// Figure 9). The first row gives Gorder's absolute runtime.
func (r *Runner) Fig5Tables() []Table {
	m := r.RunMatrix()
	var tables []Table
	for _, k := range m.Kernels {
		t := Table{
			ID:     "fig5",
			Title:  fmt.Sprintf("%s: runtime relative to Gorder (=1.00)", k),
			Header: append([]string{"ordering"}, m.Datasets...),
		}
		abs := []string{"Gorder abs"}
		for _, ds := range m.Datasets {
			abs = append(abs, fmtSecs(m.Seconds[k][ds][GorderName]))
		}
		t.Rows = append(t.Rows, abs)
		for _, o := range m.Orderings {
			row := []string{o}
			for _, ds := range m.Datasets {
				ref := m.Seconds[k][ds][GorderName]
				row = append(row, fmt.Sprintf("%.2f", m.Seconds[k][ds][o]/ref))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// FigS1Tables regroups the Figure 5 data by ordering (the
// replication's supplementary Figure S1): for each kernel, rows are
// datasets and columns orderings.
func (r *Runner) FigS1Tables() []Table {
	m := r.RunMatrix()
	var tables []Table
	for _, k := range m.Kernels {
		t := Table{
			ID:     "figs1",
			Title:  fmt.Sprintf("%s: relative runtime grouped by ordering", k),
			Header: append([]string{"dataset"}, m.Orderings...),
		}
		for _, ds := range m.Datasets {
			row := []string{ds}
			ref := m.Seconds[k][ds][GorderName]
			for _, o := range m.Orderings {
				row = append(row, fmt.Sprintf("%.2f", m.Seconds[k][ds][o]/ref))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig6Table aggregates the Figure 5 matrix into rank counts per
// ordering (the replication's Figure 6): how many of the
// kernel×dataset series each ordering finished 1st, 2nd, ... in.
func (r *Runner) Fig6Table() Table {
	m := r.RunMatrix()
	var series [][]float64
	for _, k := range m.Kernels {
		for _, ds := range m.Datasets {
			row := make([]float64, len(m.Orderings))
			for i, o := range m.Orderings {
				row[i] = m.Seconds[k][ds][o]
			}
			series = append(series, row)
		}
	}
	hist := stats.RankHistogram(series)
	meanRank := stats.MeanRank(series)
	// Present orderings best-first by mean rank, as the figure does.
	idx := make([]int, len(m.Orderings))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return meanRank[idx[a]] < meanRank[idx[b]] })

	t := Table{
		ID:    "fig6",
		Title: fmt.Sprintf("Ordering rank histogram over %d series (rank 1 = fastest)", len(series)),
		Notes: []string{"rows sorted by mean rank; compare to the replication's Figure 6"},
	}
	t.Header = []string{"ordering", "mean rank"}
	for rk := 1; rk <= len(m.Orderings); rk++ {
		t.Header = append(t.Header, fmt.Sprintf("#%d", rk))
	}
	for _, i := range idx {
		row := []string{m.Orderings[i], fmt.Sprintf("%.2f", meanRank[i])}
		for _, c := range hist[i] {
			row = append(row, fmt.Sprintf("%d", c))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3Datasets picks the cache-statistics datasets: the largest
// social graph and the largest web graph, like the replication's
// Tables 3a (flickr) and 3b (sdarc). The registry is size-ordered, so
// "largest" is the last of each category — small graphs fit the
// simulated LLC and show flat rates.
func (r *Runner) Table3Datasets() []string {
	list := r.DatasetList()
	social, web := "", ""
	for _, ds := range list {
		if ds.Category == "social" {
			social = ds.Name
		}
		if ds.Category == "web" {
			web = ds.Name
		}
	}
	var out []string
	if social != "" {
		out = append(out, social)
	}
	if web != "" && web != social {
		out = append(out, web)
	}
	return out
}

// cacheParams scales the kernel parameters for simulated runs: the
// steady-state access pattern of PageRank repeats every iteration, so
// a few iterations give the same rates as 100 at a fraction of the
// simulation cost.
func (r *Runner) cacheParams() Params {
	p := r.Params
	if p.PageRankIters > 10 {
		p.PageRankIters = 10
	}
	if p.DiameterSamples > 5 {
		p.DiameterSamples = 5
	}
	return p
}

// Table3Tables reports simulated cache statistics for the PageRank
// kernel under every ordering, mirroring the replication's Table 3
// (original's Tables 3–4): L1 references, L1 miss rate, L3 (LLC)
// references, L3 ratio and overall cache-miss rate.
func (r *Runner) Table3Tables() []Table {
	var tables []Table
	var pr Kernel
	for _, k := range Kernels() {
		if k.Name == "PR" {
			pr = k
		}
	}
	saved := r.Params
	r.Params = r.cacheParams()
	defer func() { r.Params = saved }()
	for _, dsName := range r.Table3Datasets() {
		ds, _ := DatasetByName(dsName)
		p := r.prepare(ds)
		t := Table{
			ID:     "table3",
			Title:  fmt.Sprintf("Cache statistics for PageRank on %s (simulated hierarchy)", dsName),
			Header: []string{"ordering", "L1-ref", "L1-mr", "L3-ref", "L3-r", "Cache-mr"},
			Notes: []string{
				"simulated set-associative LRU hierarchy; see internal/cache",
			},
		}
		for _, o := range Orderings() {
			rep := r.CacheRun(pr, p.relabeled[o.Name])
			t.Rows = append(t.Rows, []string{
				o.Name,
				fmtCount(rep.Accesses),
				fmtPct(rep.L1MissRate()),
				fmtCount(rep.LLCRefs()),
				fmtPct(rep.LLCRatio()),
				fmtPct(rep.MissRate()),
			})
			r.logf("table3 %s/%s done", dsName, o.Name)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig1Table reports the CPU-execute vs cache-stall breakdown for all
// nine kernels under the Original order and under Gorder, mirroring
// Figure 1. Shares are of the modelled memory-system cycle total.
func (r *Runner) Fig1Table() Table {
	list := r.DatasetList()
	ds := list[len(list)-1] // the largest (web) dataset, like sdarc in the paper
	p := r.prepare(ds)
	saved := r.Params
	r.Params = r.cacheParams()
	defer func() { r.Params = saved }()
	t := Table{
		ID:    "fig1",
		Title: fmt.Sprintf("CPU execute vs cache stall on %s (fraction of cycles)", ds.Name),
		Header: []string{"kernel",
			"orig CPU", "orig stall", "gorder CPU", "gorder stall", "cycle speedup"},
		Notes: []string{
			"CPU = all-L1-hit cost of the access stream; stall = modelled excess latency",
		},
	}
	for _, k := range Kernels() {
		orig := r.CacheRun(k, p.relabeled["Original"])
		gord := r.CacheRun(k, p.relabeled[GorderName])
		oc, os := float64(orig.CPUCycles(r.CacheCfg)), float64(orig.StallCycles(r.CacheCfg))
		gc, gs := float64(gord.CPUCycles(r.CacheCfg)), float64(gord.StallCycles(r.CacheCfg))
		t.Rows = append(t.Rows, []string{
			k.Name,
			fmtPct(oc / (oc + os)), fmtPct(os / (oc + os)),
			fmtPct(gc / (gc + gs)), fmtPct(gs / (gc + gs)),
			fmt.Sprintf("%.2fx", (oc+os)/(gc+gs)),
		})
		r.logf("fig1 %s done", k.Name)
	}
	return t
}

// Fig4Windows is the window-size sweep of the replication's Figure 4
// (original's Figure 8).
var Fig4Windows = []int{1, 2, 3, 5, 8, 16, 64, 256, 1024}

// Fig4Table reports PageRank runtime and the locality score F for
// Gorder computed with varying window sizes, on the flickr stand-in
// (as in the papers).
func (r *Runner) Fig4Table() Table {
	ds, ok := DatasetByName("flickr-s")
	if !ok {
		ds = r.DatasetList()[0]
	}
	g := ds.Build(r.Scale)
	var prk Kernel
	for _, k := range Kernels() {
		if k.Name == "PR" {
			prk = k
		}
	}
	t := Table{
		ID:     "fig4",
		Title:  fmt.Sprintf("Gorder window-size sweep on %s: PR runtime and score F", ds.Name),
		Header: []string{"w", "order time", "PR median", "F(pi) @w=8"},
		Notes:  []string{"compare shape to the replication's Figure 4 (plateau past w≈5)"},
	}
	for _, w := range Fig4Windows {
		if w >= g.NumNodes() {
			continue
		}
		secs, perm := timeIt(func() order.Permutation {
			return core.OrderWith(g, core.Options{Window: w})
		})
		rel := g.Relabel(perm)
		pr := r.timeKernel(prk, rel)
		score := order.Score(g, perm, 8)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w), fmtSecs(secs), fmtSecs(pr), fmt.Sprintf("%d", score),
		})
		r.logf("fig4 w=%d done", w)
	}
	return t
}

// Fig3Table reports the simulated-annealing tuning grid of the
// replication's Figure 3: final MinLA energy for combinations of step
// count S and standard energy k, on the epinion stand-in.
func (r *Runner) Fig3Table() Table {
	ds := r.DatasetList()[0]
	g := ds.Build(r.Scale)
	n := float64(g.NumNodes())
	m := float64(g.NumEdges())
	stepGrid := []struct {
		label string
		steps int
	}{
		{"n", int(n)},
		{"m/2", int(m / 2)},
		{"m", int(m)},
		{"m·logn", int(m * math.Log(n))},
	}
	kGrid := []struct {
		label string
		k     float64
	}{
		{"0 (local)", 0},
		{"m/n ÷100", m / n / 100},
		{"m/n", m / n},
		{"m/n ×100", m / n * 100},
		{"m·n", m * n},
	}
	t := Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Simulated-annealing tuning on %s: final MinLA energy", ds.Name),
		Header: []string{"steps \\ k"},
		Notes: []string{
			"low k ≈ local search performs best; huge k accepts everything (random)",
			"compare to the replication's Figure 3",
		},
	}
	for _, kg := range kGrid {
		t.Header = append(t.Header, kg.label)
	}
	for _, sg := range stepGrid {
		row := []string{sg.label}
		for _, kg := range kGrid {
			p := order.MinLA(g, order.AnnealOptions{Steps: sg.steps, K: kg.k, Seed: r.Seed})
			row = append(row, fmtCount(uint64(order.LinearCost(g, p))))
		}
		t.Rows = append(t.Rows, row)
		r.logf("fig3 S=%s done", sg.label)
	}
	return t
}

func timeIt(f func() order.Permutation) (float64, order.Permutation) {
	start := nowSeconds()
	p := f()
	return nowSeconds() - start, p
}
