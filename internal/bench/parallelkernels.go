package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gorder/internal/algos"
	"gorder/internal/core"
	"gorder/internal/exec"
	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/stats"
)

// ParallelKernelRow is one (kernel, workers) cell of the multicore
// kernel-engine scaling experiment. Workers 0 is the serial oracle
// from internal/algos; everything else runs on internal/exec.
type ParallelKernelRow struct {
	Kernel  string  `json:"kernel"`
	Workers int     `json:"workers"` // 0 = serial oracle
	Seconds float64 `json:"seconds"`
	// SpeedupVsSerial is serial-seconds / this-row-seconds; on a 1-core
	// host it reads as engine overhead (≈1.0 when the chunked engine
	// costs nothing over the serial loop).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// Parity records the per-run result check against the serial
	// oracle: "bit-identical" or a diff description.
	Parity string `json:"parity"`
}

// ParallelKernelsReport is the JSON shape bench_kernels.sh persists as
// BENCH_kernels.json. Beyond the timing rows it carries the
// work-partition evidence that stands in for wall-clock speedup on
// single-core hosts (see EXPERIMENTS.md): the chunk grid's edge
// balance bounds the achievable parallel speedup independently of how
// many cores this machine happens to have.
type ParallelKernelsReport struct {
	GeneratedBy string `json:"generated_by"`
	Dataset     string `json:"dataset"`
	Nodes       int    `json:"nodes"`
	Edges       int64  `json:"edges"`
	Cores       int    `json:"cores"`
	Reps        int    `json:"reps"`
	PRIters     int    `json:"pr_iters"`
	Ordering    string `json:"ordering"`
	// Chunk-grid work partition over the ordered graph: chunks in the
	// grid, mean and max in-edges per chunk (the pull-kernel work
	// unit), and the imbalance ratio max/mean. With dynamic chunk
	// claiming, speedup at w workers is bounded by
	// totalWork / (totalWork/w + maxChunk) — near-ideal while
	// imbalance stays near 1 and chunks stay plentiful.
	Chunks         int                 `json:"chunks"`
	MeanChunkEdges float64             `json:"mean_chunk_edges"`
	MaxChunkEdges  int64               `json:"max_chunk_edges"`
	EdgeImbalance  float64             `json:"edge_imbalance"`
	SpeedupBound4  float64             `json:"speedup_bound_4workers"`
	ParityAllExact bool                `json:"parity_all_exact"`
	Rows           []ParallelKernelRow `json:"rows"`
}

// parallelKernelWorkers is the scaling grid of the experiment.
var parallelKernelWorkers = []int{1, 2, 4, 8}

// ParallelKernels measures the multicore kernel engine against the
// serial oracles on the 1M-edge web workload (the same graph family as
// ParallelOrder), relabeled by Gorder so the engine's contiguous
// chunks are exactly the ordering's cache-friendly windows. For every
// kernel with a parallel variant (PR, BFS, SP, Tri) it times the
// serial kernel and the engine at 1/2/4/8 workers, verifies
// bit-identical results per run, and computes the chunk-grid work
// balance that bounds multicore speedup on any host.
func (r *Runner) ParallelKernels() (Table, *ParallelKernelsReport) {
	n := int(100000 * r.Scale)
	if n < 1000 {
		n = 1000
	}
	g0 := gen.Web(n, gen.DefaultWeb, 0x90DE)
	perm := core.OrderWith(g0, core.Options{Window: core.DefaultWindow})
	g := g0.Relabel(perm)
	r.logf("parallel-kernels graph ready: n=%d m=%d (gorder-relabeled)", g.NumNodes(), g.NumEdges())

	reps := r.Reps
	if reps < 1 {
		reps = 1
	}
	prIters := r.Params.PageRankIters
	if prIters <= 0 || prIters > 20 {
		prIters = 20 // the scaling shape is iteration-count-invariant
	}
	ctx := context.Background()

	rep := &ParallelKernelsReport{
		GeneratedBy:    "scripts/bench_kernels.sh",
		Dataset:        fmt.Sprintf("gen.Web(%d, DefaultWeb, 0x90DE) + gorder", n),
		Nodes:          g.NumNodes(),
		Edges:          g.NumEdges(),
		Cores:          runtime.NumCPU(),
		Reps:           reps,
		PRIters:        prIters,
		Ordering:       "gorder",
		ParityAllExact: true,
	}

	// Work-partition evidence: in-edges per chunk of the engine's grid
	// (the pull-PageRank work unit — the dominant parallel section).
	chunks := exec.ChunksFor(g.NumNodes())
	inIdx := g.InIndex()
	var maxChunk int64
	for c := 0; c < chunks; c++ {
		lo, hi := exec.ChunkRange(g.NumNodes(), chunks, c)
		if w := inIdx[hi] - inIdx[lo]; w > maxChunk {
			maxChunk = w
		}
	}
	total := float64(g.NumEdges())
	rep.Chunks = chunks
	rep.MeanChunkEdges = total / float64(chunks)
	rep.MaxChunkEdges = maxChunk
	rep.EdgeImbalance = float64(maxChunk) / rep.MeanChunkEdges
	rep.SpeedupBound4 = total / (total/4 + float64(maxChunk))

	median := func(f func()) float64 {
		times := make([]float64, reps)
		for i := range times {
			start := time.Now()
			f()
			times[i] = time.Since(start).Seconds()
		}
		return stats.Median(times)
	}
	src := graph.NodeID(0)

	type kernelCase struct {
		name     string
		serial   func() any
		parallel func(workers int) (any, error)
		equal    func(a, b any) bool
	}
	cases := []kernelCase{
		{
			name:   "PR",
			serial: func() any { return algos.PageRank(g, prIters, algos.DefaultDamping) },
			parallel: func(w int) (any, error) {
				return exec.PageRank(ctx, g, prIters, algos.DefaultDamping, w, nil)
			},
			equal: func(a, b any) bool {
				x, y := a.([]float64), b.([]float64)
				for i := range x {
					if x[i] != y[i] {
						return false
					}
				}
				return true
			},
		},
		{
			name:   "BFS",
			serial: func() any { d, _ := algos.DOBFS(g, src); return d },
			parallel: func(w int) (any, error) {
				d, _, err := exec.DOBFS(ctx, g, src, w, nil)
				return d, err
			},
			equal: func(a, b any) bool {
				x, y := a.([]int32), b.([]int32)
				for i := range x {
					if x[i] != y[i] {
						return false
					}
				}
				return true
			},
		},
		{
			name:   "SP",
			serial: func() any { return algos.BellmanFord(g, src) },
			parallel: func(w int) (any, error) {
				return exec.ShortestPaths(ctx, g, src, w, nil)
			},
			equal: func(a, b any) bool {
				x, y := a.([]int32), b.([]int32)
				for i := range x {
					if x[i] != y[i] {
						return false
					}
				}
				return true
			},
		},
		{
			name:   "Tri",
			serial: func() any { return algos.TriangleCount(g) },
			parallel: func(w int) (any, error) {
				return exec.TriangleCount(ctx, g, w, nil)
			},
			equal: func(a, b any) bool { return a.(int64) == b.(int64) },
		},
	}

	for _, kc := range cases {
		var serialOut any
		serialSecs := median(func() { serialOut = kc.serial() })
		rep.Rows = append(rep.Rows, ParallelKernelRow{
			Kernel: kc.name, Workers: 0, Seconds: serialSecs,
			SpeedupVsSerial: 1, Parity: "oracle",
		})
		r.logf("parallel-kernels %s serial done (%.3fs)", kc.name, serialSecs)
		for _, w := range parallelKernelWorkers {
			var parOut any
			var perr error
			secs := median(func() { parOut, perr = kc.parallel(w) })
			if perr != nil {
				panic(fmt.Sprintf("bench: parallel %s workers=%d: %v", kc.name, w, perr))
			}
			parity := "bit-identical"
			if !kc.equal(serialOut, parOut) {
				parity = "DIVERGED"
				rep.ParityAllExact = false
			}
			rep.Rows = append(rep.Rows, ParallelKernelRow{
				Kernel: kc.name, Workers: w, Seconds: secs,
				SpeedupVsSerial: serialSecs / secs, Parity: parity,
			})
			r.logf("parallel-kernels %s workers=%d done (%.3fs)", kc.name, w, secs)
		}
	}

	t := Table{
		ID: "kernels",
		Title: fmt.Sprintf("Parallel kernel engine on gorder-ordered web n=%d m=%d",
			g.NumNodes(), g.NumEdges()),
		Header: []string{"kernel", "workers", "time", "speedup", "parity"},
		Notes: []string{
			fmt.Sprintf("host has %d core(s); chunk grid: %d chunks, edge imbalance %.2f, 4-worker speedup bound %.2fx",
				runtime.NumCPU(), rep.Chunks, rep.EdgeImbalance, rep.SpeedupBound4),
			"workers 0 is the serial internal/algos oracle; parallel rows must be bit-identical to it",
		},
	}
	for _, row := range rep.Rows {
		w := fmt.Sprintf("%d", row.Workers)
		if row.Workers == 0 {
			w = "serial"
		}
		t.Rows = append(t.Rows, []string{
			row.Kernel, w, fmtSecs(row.Seconds),
			fmt.Sprintf("%.2fx", row.SpeedupVsSerial), row.Parity,
		})
	}
	return t, rep
}
