// Package bench is the experiment harness: it owns the synthetic
// dataset registry (the stand-ins for the paper's Table 1), the
// ordering and kernel registries, and a driver per table/figure of the
// evaluation (see DESIGN.md §3 for the index). The cmd/bench binary
// and the root bench_test.go benchmarks are thin wrappers over this
// package.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper
// table or figure reports.
type Table struct {
	ID     string // experiment id, e.g. "table2", "fig5"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\nnote: %s", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown returns the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
