package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The paper's figures are bar charts; these helpers render the same
// series as Unicode bars so cmd/bench output reads like the figures.

// Bar renders a horizontal bar of the given fractional width (0..1)
// using eighth-block characters, width cells wide.
func Bar(fraction float64, width int) string {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	eighths := int(fraction*float64(width)*8 + 0.5)
	full := eighths / 8
	rem := eighths % 8
	blocks := []rune{' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉'}
	var b strings.Builder
	for i := 0; i < full; i++ {
		b.WriteRune('█')
	}
	if rem > 0 {
		b.WriteRune(blocks[rem])
	}
	return b.String()
}

// BarChart renders labelled values as a right-aligned label column,
// the numeric value, and a bar scaled to the maximum value.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("bench: %d labels vs %d values", len(labels), len(values))
	}
	if width <= 0 {
		width = 40
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, l := range labels {
		frac := 0.0
		if maxVal > 0 {
			frac = values[i] / maxVal
		}
		fmt.Fprintf(&b, "  %-*s %8.2f %s\n", maxLabel, l, values[i], Bar(frac, width))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ChartColumn renders one numeric column of a Table as a bar chart,
// using the first column as labels. Non-numeric cells (unit-suffixed
// times, percentages) are parsed leniently; rows that do not parse
// are skipped.
func ChartColumn(w io.Writer, t Table, col int, width int) error {
	if col <= 0 || col >= len(t.Header) {
		return fmt.Errorf("bench: chart column %d out of range", col)
	}
	var labels []string
	var values []float64
	for _, row := range t.Rows {
		if v, ok := parseLenient(row[col]); ok {
			labels = append(labels, row[0])
			values = append(values, v)
		}
	}
	title := fmt.Sprintf("%s — %s (%s)", t.ID, t.Title, t.Header[col])
	return BarChart(w, title, labels, values, width)
}

// parseLenient extracts a float from strings like "1.23", "45ms",
// "2.5s", "31.9%", "12.6M", "1.5k".
func parseLenient(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "µs"):
		s, mult = strings.TrimSuffix(s, "µs"), 1e-6
	case strings.HasSuffix(s, "ms"):
		s, mult = strings.TrimSuffix(s, "ms"), 1e-3
	case strings.HasSuffix(s, "%"):
		s, mult = strings.TrimSuffix(s, "%"), 0.01
	case strings.HasSuffix(s, "s"):
		s, mult = strings.TrimSuffix(s, "s"), 1
	case strings.HasSuffix(s, "m"):
		s, mult = strings.TrimSuffix(s, "m"), 60
	case strings.HasSuffix(s, "k"):
		s, mult = strings.TrimSuffix(s, "k"), 1e3
	case strings.HasSuffix(s, "M"):
		s, mult = strings.TrimSuffix(s, "M"), 1e6
	case strings.HasSuffix(s, "G"):
		s, mult = strings.TrimSuffix(s, "G"), 1e9
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}
