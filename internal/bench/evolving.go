package bench

import (
	"context"
	"fmt"

	"gorder/internal/core"
	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

// EvolvingBatch is one edit batch of the evolving-graph experiment:
// the graph after the batch, the cost of extending the ordering to it,
// and the quality decay as the incremental monitor tracks it (via
// ScoreDelta) next to the ground truth (a full Score pass).
type EvolvingBatch struct {
	Batch        int     `json:"batch"`
	Nodes        int     `json:"nodes"`
	Edges        int64   `json:"edges"`
	EdgesAdded   int     `json:"edges_added"`
	EdgesDeleted int     `json:"edges_deleted"`
	ExtendSecs   float64 `json:"extend_seconds"`
	TrackedDecay float64 `json:"tracked_decay"`
	TrueDecay    float64 `json:"true_decay"`
}

// EvolvingReport is the JSON shape bench_evolving.sh persists as
// BENCH_evolving.json: the per-batch extension trace plus the
// repair-vs-recompute comparison on the final graph.
type EvolvingReport struct {
	GeneratedBy string          `json:"generated_by"`
	Dataset     string          `json:"dataset"`
	BaseNodes   int             `json:"base_nodes"`
	BaseEdges   int64           `json:"base_edges"`
	Window      int             `json:"window"`
	BaseOrder   float64         `json:"base_order_seconds"`
	BaseF       int64           `json:"base_score_F"`
	Batches     []EvolvingBatch `json:"batches"`
	// Final-graph comparison: suffix repair (re-place everything added
	// since the baseline jointly) against a from-scratch recompute.
	RepairSecs    float64 `json:"repair_seconds"`
	RepairF       int64   `json:"repair_score_F"`
	FullSecs      float64 `json:"full_recompute_seconds"`
	FullF         int64   `json:"full_recompute_score_F"`
	FRetention    float64 `json:"repair_F_of_full"`
	RepairSpeedup float64 `json:"repair_speedup_vs_full"`
}

// evolvingBatchEdits builds one deterministic growth batch against g:
// `grow` new vertices, each following fanout spread-out existing
// vertices, plus `dels` deletions of existing edges (an arithmetic
// stride through the edge list, so deletions touch many regions of
// the ordering).
func evolvingBatchEdits(g *graph.Graph, grow, fanout, dels int, salt uint64) (add, del []graph.Edge) {
	n := g.NumNodes()
	for v := n; v < n+grow; v++ {
		for j := 0; j < fanout; j++ {
			t := (uint64(v)*2654435761 + uint64(j)*40503 + salt) % uint64(n)
			add = append(add, graph.Edge{From: graph.NodeID(v), To: graph.NodeID(t)})
		}
	}
	if dels > 0 {
		m := g.NumEdges()
		stride := m/int64(dels) + 1
		var i, taken int64
		g.Edges(func(u, v graph.NodeID) bool {
			if i%stride == 0 && taken < int64(dels) {
				del = append(del, graph.Edge{From: u, To: v})
				taken++
			}
			i++
			return taken < int64(dels)
		})
	}
	return add, del
}

// Evolving measures the mutable-graph extension end-to-end: a Gorder
// baseline on a social graph, ten edit batches (growth plus scattered
// deletions) each absorbed by a pure incremental extension, the
// monitor's ScoreDelta-tracked decay against ground truth, and finally
// a suffix repair vs a full recompute on the grown graph. The repair
// is the daemon's policy verbatim: re-place every vertex added since
// the baseline jointly, leave the clean prefix alone.
func (r *Runner) Evolving() (Table, *EvolvingReport) {
	n := int(50000 * r.Scale)
	if n < 2000 {
		n = 2000
	}
	g0 := gen.BarabasiAlbert(n, 8, 0xEE07)
	w := core.DefaultWindow
	const batches = 10
	grow := n / 100 // 1% growth per batch
	if grow < 20 {
		grow = 20
	}
	dels := grow / 4

	rep := &EvolvingReport{
		GeneratedBy: "scripts/bench_evolving.sh",
		Dataset:     fmt.Sprintf("gen.BarabasiAlbert(%d, 8, seed)", n),
		BaseNodes:   g0.NumNodes(),
		BaseEdges:   g0.NumEdges(),
		Window:      w,
	}
	rep.BaseOrder, _ = timeIt(func() order.Permutation { return core.OrderWith(g0, core.Options{Window: w}) })
	perm := core.OrderWith(g0, core.Options{Window: w})
	rep.BaseF = order.Score(g0, perm, w)
	r.logf("evolving baseline done (%.2fs, F=%d)", rep.BaseOrder, rep.BaseF)

	// Decay is tracked exactly as the server does: F deltas from
	// ScoreDelta, normalised per edge against the baseline density.
	baseDensity := float64(rep.BaseF) / float64(rep.BaseEdges)
	curF := rep.BaseF
	g := g0
	for b := 1; b <= batches; b++ {
		add, del := evolvingBatchEdits(g, grow, 4, dels, uint64(b)*7919)
		g2, st, err := graph.ApplyEdits(g, grow, add, del)
		if err != nil {
			panic(fmt.Sprintf("bench: evolving batch %d: %v", b, err))
		}
		var p2 order.Permutation
		secs, _ := timeIt(func() order.Permutation {
			q, err := core.OrderIncrementalCtx(context.Background(), g2, perm, nil, core.Options{Window: w})
			if err != nil {
				panic(fmt.Sprintf("bench: evolving extend %d: %v", b, err))
			}
			p2 = q
			return q
		})
		curF += order.ScoreDelta(g, g2, p2, w, add, del)
		g, perm = g2, p2
		row := EvolvingBatch{
			Batch: b, Nodes: g.NumNodes(), Edges: g.NumEdges(),
			EdgesAdded: st.Added, EdgesDeleted: st.Deleted,
			ExtendSecs:   secs,
			TrackedDecay: (float64(curF) / float64(g.NumEdges())) / baseDensity,
			TrueDecay:    (float64(order.Score(g, perm, w)) / float64(g.NumEdges())) / baseDensity,
		}
		rep.Batches = append(rep.Batches, row)
		r.logf("evolving batch %d: n=%d decay=%.3f (true %.3f, extend %.3fs)",
			b, row.Nodes, row.TrackedDecay, row.TrueDecay, secs)
	}

	// Repair: re-place the whole grown suffix jointly against the clean
	// prefix — the daemon's suffix-repair policy.
	dirty := make([]graph.NodeID, 0, g.NumNodes()-n)
	for v := n; v < g.NumNodes(); v++ {
		dirty = append(dirty, graph.NodeID(v))
	}
	var repaired order.Permutation
	rep.RepairSecs, _ = timeIt(func() order.Permutation {
		q, err := core.OrderIncrementalCtx(context.Background(), g, perm[:n], dirty, core.Options{Window: w})
		if err != nil {
			panic(fmt.Sprintf("bench: evolving repair: %v", err))
		}
		repaired = q
		return q
	})
	rep.RepairF = order.Score(g, repaired, w)

	var full order.Permutation
	rep.FullSecs, _ = timeIt(func() order.Permutation {
		full = core.OrderWith(g, core.Options{Window: w})
		return full
	})
	rep.FullF = order.Score(g, full, w)
	rep.FRetention = float64(rep.RepairF) / float64(rep.FullF)
	rep.RepairSpeedup = rep.FullSecs / rep.RepairSecs
	r.logf("evolving repair %.3fs F=%d vs full %.2fs F=%d (retention %.3f, %.1fx)",
		rep.RepairSecs, rep.RepairF, rep.FullSecs, rep.FullF, rep.FRetention, rep.RepairSpeedup)

	t := Table{
		ID: "evolving",
		Title: fmt.Sprintf("Evolving graph: incremental ordering on BA n=%d..%d (window %d)",
			rep.BaseNodes, g.NumNodes(), w),
		Header: []string{"batch", "nodes", "edges", "extend", "tracked decay", "true decay"},
		Notes: []string{
			fmt.Sprintf("suffix repair: %.3fs F=%d; full recompute: %.2fs F=%d — retention %.3f at %.1fx",
				rep.RepairSecs, rep.RepairF, rep.FullSecs, rep.FullF, rep.FRetention, rep.RepairSpeedup),
			"tracked decay is the daemon's ScoreDelta monitor; true decay recomputes F from scratch",
		},
	}
	for _, b := range rep.Batches {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b.Batch), fmt.Sprintf("%d", b.Nodes), fmt.Sprintf("%d", b.Edges),
			fmtSecs(b.ExtendSecs),
			fmt.Sprintf("%.3f", b.TrackedDecay), fmt.Sprintf("%.3f", b.TrueDecay),
		})
	}
	return t, rep
}
