package bench

import (
	"fmt"

	"gorder/internal/compress"
)

// CompressTable is the extension experiment from the papers'
// discussion sections: locality orderings also shrink gap-encoded
// graph representations (the WebGraph connection). It reports
// bits/edge of the varint gap encoding for every ordering on every
// dataset — smaller is better, and the ranking should echo the cache
// ranking.
func (r *Runner) CompressTable() Table {
	t := Table{
		ID:     "compress",
		Title:  "Gap-encoded size by ordering (bits per edge; extension experiment)",
		Header: []string{"ordering"},
		Notes: []string{
			"varint gap encoding of out-adjacency (internal/compress)",
			"extension from the papers' discussion: orderings as a compression input",
		},
	}
	list := r.DatasetList()
	for _, ds := range list {
		t.Header = append(t.Header, ds.Name)
	}
	for _, o := range Orderings() {
		row := []string{o.Name}
		for _, ds := range list {
			p := r.prepare(ds)
			row = append(row, fmt.Sprintf("%.1f", compress.BitsPerEdge(p.relabeled[o.Name])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
