package bench

import (
	"context"
	"testing"

	"gorder/internal/cache"
	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

// These tests assert the *shapes* of the paper's headline results on
// mid-size graphs — the qualitative claims EXPERIMENTS.md records
// quantitatively. They take a few seconds; skipped under -short.

func cacheStatsFor(t *testing.T, r *Runner, g *graph.Graph, perm order.Permutation) cache.Report {
	t.Helper()
	var pr Kernel
	for _, k := range Kernels() {
		if k.Name == "PR" {
			pr = k
		}
	}
	return r.CacheRun(pr, g.Relabel(perm))
}

// Gorder yields the lowest L1 miss rate for PageRank among
// {Gorder, Original, Random}, and Random the highest — the core of
// the paper's Tables 3–4.
func TestShapeGorderReducesMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := NewRunner()
	r.Params = r.cacheParams()
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"social", gen.BarabasiAlbert(30000, 8, 3)},
		{"web", gen.Web(30000, gen.DefaultWeb, 3)},
	} {
		g := tc.g
		gord := cacheStatsFor(t, r, g, computePerm(t, orderingByName(t, GorderName), g))
		orig := cacheStatsFor(t, r, g, order.Identity(g.NumNodes()))
		rnd := cacheStatsFor(t, r, g, order.Random(g.NumNodes(), 5))
		if !(gord.L1MissRate() < orig.L1MissRate()) {
			t.Errorf("%s: L1mr gorder %.3f !< original %.3f", tc.name, gord.L1MissRate(), orig.L1MissRate())
		}
		if !(gord.L1MissRate() < rnd.L1MissRate()) {
			t.Errorf("%s: L1mr gorder %.3f !< random %.3f", tc.name, gord.L1MissRate(), rnd.L1MissRate())
		}
		if !(orig.L1MissRate() < rnd.L1MissRate()) {
			t.Errorf("%s: L1mr original %.3f !< random %.3f", tc.name, orig.L1MissRate(), rnd.L1MissRate())
		}
		// L1 references barely differ: same algorithm, same work.
		ratio := float64(gord.Accesses) / float64(orig.Accesses)
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("%s: access counts diverge: %.3f", tc.name, ratio)
		}
	}
}

// The stall share of modelled cycles drops under Gorder while the CPU
// component stays fixed — Figure 1's message.
func TestShapeStallDominatesAndDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := NewRunner()
	r.Params = r.cacheParams()
	g := gen.BarabasiAlbert(30000, 8, 9)
	gord := cacheStatsFor(t, r, g, computePerm(t, orderingByName(t, GorderName), g))
	orig := cacheStatsFor(t, r, g, order.Identity(g.NumNodes()))
	cfg := r.CacheCfg
	if gord.StallCycles(cfg) >= orig.StallCycles(cfg) {
		t.Errorf("stall cycles did not drop: %d → %d", orig.StallCycles(cfg), gord.StallCycles(cfg))
	}
	// CPU cycles (all-hit cost) within 2%: the ordering changes where
	// data lives, not how much work runs.
	ratio := float64(gord.CPUCycles(cfg)) / float64(orig.CPUCycles(cfg))
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("CPU cycles diverge: ratio %.3f", ratio)
	}
}

func computePerm(t *testing.T, o Ordering, g *graph.Graph) order.Permutation {
	t.Helper()
	p, err := o.Compute(context.Background(), g, 1)
	if err != nil {
		t.Fatalf("%s: %v", o.Name, err)
	}
	return p
}

func orderingByName(t *testing.T, name string) Ordering {
	t.Helper()
	for _, o := range Orderings() {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("ordering %q not registered", name)
	return Ordering{}
}
