package bench

import (
	"fmt"

	"gorder/internal/cache"
)

// TLBTable extends the cache statistics with a data-TLB model: for
// PageRank on the Table-3 datasets it reports, per ordering, the TLB
// miss rate and the modelled cycle total with page walks included.
// This experiment exists because of the "host effect" documented in
// EXPERIMENTS.md: hot-vertex groupings (InDegSort and friends) win
// wall-clock on machines where TLB reach, not cache capacity, is the
// binding constraint — a mechanism the paper's cache-only analysis
// does not cover.
func (r *Runner) TLBTable() []Table {
	cfg := r.CacheCfg
	cfg.TLB = cache.DefaultTLB()
	saved := r.Params
	r.Params = r.cacheParams()
	defer func() { r.Params = saved }()
	var pr Kernel
	for _, k := range Kernels() {
		if k.Name == "PR" {
			pr = k
		}
	}
	var tables []Table
	for _, dsName := range r.Table3Datasets() {
		ds, _ := DatasetByName(dsName)
		p := r.prepare(ds)
		t := Table{
			ID:     "tlb",
			Title:  fmt.Sprintf("PageRank with a %d-entry TLB on %s", cfg.TLB.Entries, dsName),
			Header: []string{"ordering", "L1-mr", "TLB-mr", "cycles (G)", "vs Original"},
			Notes: []string{
				"TLB: fully-associative LRU, 4 KB pages, 30-cycle walk",
				"hot-vertex groupings shine here; see EXPERIMENTS.md 'host effect'",
			},
		}
		var baseCycles float64
		for _, o := range Orderings() {
			rep := r.CacheRunWith(cfg, pr, p.relabeled[o.Name])
			if o.Name == "Original" {
				baseCycles = float64(rep.Cycles)
			}
			speedup := "-"
			if baseCycles > 0 {
				speedup = fmt.Sprintf("%.2fx", baseCycles/float64(rep.Cycles))
			}
			t.Rows = append(t.Rows, []string{
				o.Name,
				fmtPct(rep.L1MissRate()),
				fmtPct(rep.TLBMissRate()),
				fmt.Sprintf("%.2f", float64(rep.Cycles)/1e9),
				speedup,
			})
			r.logf("tlb %s/%s done", dsName, o.Name)
		}
		tables = append(tables, t)
	}
	return tables
}
