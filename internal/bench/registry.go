package bench

import (
	"gorder/internal/algos"
	"gorder/internal/core"
	"gorder/internal/graph"
	"gorder/internal/mem"
	"gorder/internal/order"
)

// Ordering is one contender in the comparison: a named permutation
// generator.
type Ordering struct {
	Name string
	// Compute returns the permutation for g. Stochastic methods use
	// seed; deterministic ones ignore it.
	Compute func(g *graph.Graph, seed uint64) order.Permutation
}

// GorderName is the reference ordering every relative-runtime figure
// normalises against.
const GorderName = "Gorder"

// Orderings returns the ten contenders of the replication's
// experiments, in the presentation order of its figures. Metis is
// omitted for the reasons both papers give (see DESIGN.md §2).
func Orderings() []Ordering {
	return []Ordering{
		{Name: "Original", Compute: func(g *graph.Graph, _ uint64) order.Permutation {
			return order.Identity(g.NumNodes())
		}},
		{Name: "Random", Compute: func(g *graph.Graph, seed uint64) order.Permutation {
			return order.Random(g.NumNodes(), seed)
		}},
		{Name: "MinLA", Compute: func(g *graph.Graph, seed uint64) order.Permutation {
			return order.MinLA(g, order.AnnealOptions{Seed: seed}) // S=m, local search
		}},
		{Name: "MinLogA", Compute: func(g *graph.Graph, seed uint64) order.Permutation {
			return order.MinLogA(g, order.AnnealOptions{Seed: seed})
		}},
		{Name: "RCM", Compute: func(g *graph.Graph, _ uint64) order.Permutation {
			return order.RCM(g)
		}},
		{Name: "InDegSort", Compute: func(g *graph.Graph, _ uint64) order.Permutation {
			return order.InDegSort(g)
		}},
		{Name: "ChDFS", Compute: func(g *graph.Graph, _ uint64) order.Permutation {
			return order.ChDFS(g)
		}},
		{Name: "SlashBurn", Compute: func(g *graph.Graph, _ uint64) order.Permutation {
			return order.SlashBurn(g)
		}},
		{Name: "LDG", Compute: func(g *graph.Graph, _ uint64) order.Permutation {
			return order.LDG(g, 64)
		}},
		{Name: GorderName, Compute: func(g *graph.Graph, _ uint64) order.Permutation {
			return core.Order(g)
		}},
	}
}

// Kernel is one of the paper's nine benchmark algorithms, with a
// native entry point for wall-clock timing and a traced entry point
// for the cache-statistics experiments. Parameters (PageRank
// iterations, diameter samples) are fields so experiments can scale
// them.
type Kernel struct {
	Name string
	Run  func(g *graph.Graph, p Params)
	// RunTraced receives both the traced view and the source graph
	// (for order-invariant setup such as picking the SP source or
	// building Kcore's undirected view).
	RunTraced func(g *graph.Graph, t *algos.TracedGraph, s *mem.Space, p Params)
}

// Params carries the kernel parameters experiments may scale down
// from the paper's defaults.
type Params struct {
	PageRankIters   int
	DiameterSamples int
	Seed            uint64
}

// DefaultParams are the paper's kernel parameters with the
// laptop-scale diameter sample count.
func DefaultParams() Params {
	return Params{
		PageRankIters:   algos.DefaultPageRankIters,
		DiameterSamples: algos.DefaultDiameterSamples,
		Seed:            1,
	}
}

// spSource picks the Bellman–Ford source: the vertex with the
// largest out-degree (lowest ID on ties). Degree is preserved by
// relabeling, so every ordering runs SP from the same logical hub.
func spSource(g *graph.Graph) graph.NodeID {
	best := graph.NodeID(0)
	for v := 1; v < g.NumNodes(); v++ {
		if g.OutDegree(graph.NodeID(v)) > g.OutDegree(best) {
			best = graph.NodeID(v)
		}
	}
	return best
}

// Kernels returns the nine benchmark kernels in the paper's order.
func Kernels() []Kernel {
	return []Kernel{
		{
			Name: "NQ",
			Run:  func(g *graph.Graph, _ Params) { algos.NeighbourQuery(g) },
			RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ Params) {
				algos.TracedNeighbourQuery(t, s)
			},
		},
		{
			Name: "BFS",
			Run:  func(g *graph.Graph, _ Params) { algos.BFSAll(g) },
			RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ Params) {
				algos.TracedBFSAll(t, s)
			},
		},
		{
			Name: "DFS",
			Run:  func(g *graph.Graph, _ Params) { algos.DFSAll(g) },
			RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ Params) {
				algos.TracedDFSAll(t, s)
			},
		},
		{
			Name: "SCC",
			Run:  func(g *graph.Graph, _ Params) { algos.SCC(g) },
			RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ Params) {
				algos.TracedSCC(t, s)
			},
		},
		{
			Name: "SP",
			Run: func(g *graph.Graph, _ Params) {
				algos.BellmanFord(g, spSource(g))
			},
			RunTraced: func(g *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ Params) {
				algos.TracedBellmanFord(t, s, spSource(g))
			},
		},
		{
			Name: "PR",
			Run: func(g *graph.Graph, p Params) {
				algos.PageRank(g, p.PageRankIters, algos.DefaultDamping)
			},
			RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, p Params) {
				algos.TracedPageRank(t, s, p.PageRankIters, algos.DefaultDamping)
			},
		},
		{
			Name: "DS",
			Run:  func(g *graph.Graph, _ Params) { algos.DominatingSet(g) },
			RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, _ Params) {
				algos.TracedDominatingSet(t, s)
			},
		},
		{
			Name: "Kcore",
			Run:  func(g *graph.Graph, _ Params) { algos.CoreNumbers(g) },
			RunTraced: func(g *graph.Graph, _ *algos.TracedGraph, s *mem.Space, _ Params) {
				algos.TracedCoreNumbers(g, s)
			},
		},
		{
			Name: "Diam",
			Run: func(g *graph.Graph, p Params) {
				algos.Diameter(g, p.DiameterSamples, p.Seed)
			},
			RunTraced: func(_ *graph.Graph, t *algos.TracedGraph, s *mem.Space, p Params) {
				algos.TracedDiameter(t, s, p.DiameterSamples, p.Seed)
			},
		},
	}
}
