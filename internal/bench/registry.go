package bench

import (
	"context"

	"gorder/internal/graph"
	"gorder/internal/order"
	"gorder/internal/registry"
)

// Ordering is one contender in the comparison, resolved from the
// central registry. Name is the canonical registry name; Compute runs
// the registry descriptor with the harness seed.
type Ordering struct {
	Name string
	// Compute returns the permutation for g. Stochastic methods use
	// seed; deterministic ones ignore it. ctx bounds the computation
	// for the cancellable methods.
	Compute func(ctx context.Context, g *graph.Graph, seed uint64) (order.Permutation, error)
}

// GorderName is the reference ordering every relative-runtime figure
// normalises against.
const GorderName = registry.GorderName

// Orderings returns the ten contenders of the replication's
// experiments, in the presentation order of its figures, resolved
// from the registry catalog. Metis is omitted for the reasons both
// papers give (see DESIGN.md §2).
func Orderings() []Ordering {
	paper := registry.PaperContenders()
	out := make([]Ordering, len(paper))
	for i, desc := range paper {
		name := desc.Name
		out[i] = Ordering{
			Name: name,
			Compute: func(ctx context.Context, g *graph.Graph, seed uint64) (order.Permutation, error) {
				return registry.Compute(ctx, g, name, registry.Options{Seed: seed})
			},
		}
	}
	return out
}

// Kernel is one of the paper's nine benchmark algorithms; see
// registry.Kernel.
type Kernel = registry.Kernel

// Params carries the kernel parameters experiments may scale down
// from the paper's defaults; see registry.KernelParams.
type Params = registry.KernelParams

// DefaultParams are the paper's kernel parameters with the
// laptop-scale diameter sample count.
func DefaultParams() Params {
	return registry.DefaultKernelParams()
}

// Kernels returns the nine benchmark kernels in the paper's order,
// from the registry catalog.
func Kernels() []Kernel {
	return registry.PaperKernels()
}
