package bench

import (
	"fmt"

	"gorder/internal/core"
	"gorder/internal/gen"
	"gorder/internal/order"
)

// DialTable is an extension experiment unique to this reproduction:
// Watts–Strogatz rewiring dials the *intrinsic* locality of the
// original vertex order from perfect (beta = 0, ring lattice) to none
// (beta = 1), and the table shows how much of the destroyed locality
// Gorder recovers — in the objective F and in the simulated L1 miss
// rate of PageRank. It generalises the papers' observation that
// "Original" performs well on web crawls: that is just the beta≈0 end
// of this dial.
func (r *Runner) DialTable() Table {
	const (
		n = 20000
		k = 8
	)
	saved := r.Params
	r.Params = r.cacheParams()
	defer func() { r.Params = saved }()
	var pr Kernel
	for _, kr := range Kernels() {
		if kr.Name == "PR" {
			pr = kr
		}
	}
	t := Table{
		ID:    "dial",
		Title: fmt.Sprintf("Locality dial: Watts–Strogatz n=%d k=%d, rewiring beta vs Gorder recovery", n, k),
		Header: []string{"beta", "F original", "F gorder", "F random",
			"L1-mr orig", "L1-mr gorder"},
		Notes: []string{
			"extension experiment: beta=0 is a perfect-locality lattice, beta=1 destroys it",
			"Original stays ahead while lattice remnants survive; Gorder overtakes once beta nears 1",
		},
	}
	for _, beta := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1.0} {
		g := gen.WattsStrogatz(n, k, beta, r.Seed)
		w := core.DefaultWindow
		orig := order.Identity(g.NumNodes())
		gord := core.Order(g)
		rnd := order.Random(g.NumNodes(), r.Seed+1)
		repOrig := r.CacheRun(pr, g)
		repGord := r.CacheRun(pr, g.Relabel(gord))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", beta),
			fmt.Sprintf("%d", order.Score(g, orig, w)),
			fmt.Sprintf("%d", order.Score(g, gord, w)),
			fmt.Sprintf("%d", order.Score(g, rnd, w)),
			fmtPct(repOrig.L1MissRate()),
			fmtPct(repGord.L1MissRate()),
		})
		r.logf("dial beta=%.1f done", beta)
	}
	return t
}
