package bench

import "fmt"

// CacheGridTable extends Table 3 from PageRank to every kernel: the
// simulated L1 miss rate for all nine kernels under all ten orderings
// on one mid-size dataset. It answers the "does the PR result
// generalise?" question the original paper's wider tables address.
func (r *Runner) CacheGridTable() Table {
	list := r.DatasetList()
	ds := list[len(list)/2] // a mid-size dataset keeps this affordable
	p := r.prepare(ds)
	saved := r.Params
	r.Params = r.cacheParams()
	defer func() { r.Params = saved }()

	t := Table{
		ID:     "cachegrid",
		Title:  fmt.Sprintf("Simulated L1 miss rate, all kernels × all orderings on %s", ds.Name),
		Header: []string{"ordering"},
	}
	kernels := Kernels()
	for _, k := range kernels {
		t.Header = append(t.Header, k.Name)
	}
	for _, o := range Orderings() {
		row := []string{o.Name}
		g := p.relabeled[o.Name]
		for _, k := range kernels {
			rep := r.CacheRun(k, g)
			row = append(row, fmtPct(rep.L1MissRate()))
		}
		t.Rows = append(t.Rows, row)
		r.logf("cachegrid %s done", o.Name)
	}
	return t
}
